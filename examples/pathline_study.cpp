/// \file pathline_study.cpp
/// Unsteady particle tracing with the DMS Markov prefetcher (paper
/// Sec. 6.3 / 7.3): seeds a cloud of particles into the Engine intake flow,
/// integrates pathlines across the time steps twice — the second run shows
/// the warm cache and the learned block-transition graph at work — and
/// writes the traces as OBJ polylines.
///
/// Run:  ./pathline_study [output.obj]

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "algo/cfd_command.hpp"
#include "core/backend.hpp"
#include "grid/synthetic.hpp"
#include "viz/assembly.hpp"
#include "viz/session.hpp"

int main(int argc, char** argv) {
  using namespace vira;
  const std::string output = argc > 1 ? argv[1] : "pathlines.obj";

  const auto dataset =
      (std::filesystem::temp_directory_path() / "vira_example_engine_t8").string();
  if (!std::filesystem::exists(dataset + "/dataset.vmi")) {
    std::printf("generating unsteady Engine dataset (8 time steps)...\n");
    grid::GeneratorConfig config;
    config.directory = dataset;
    config.timesteps = 8;
    config.ni = 12;
    config.nj = 9;
    config.nk = 8;
    grid::generate_engine(config);
  }

  algo::register_builtin_commands();
  core::BackendConfig config;
  config.workers = 2;
  core::Backend backend(config);
  viz::ExtractionSession session(backend.connect());

  util::ParamList params;
  params.set("dataset", dataset);
  params.set_int("workers", 2);
  // Seed a ring of particles inside the swirl (r = 22 mm, upper cylinder).
  std::vector<double> seeds;
  for (int n = 0; n < 12; ++n) {
    const double angle = 2.0 * 3.14159265358979 * n / 12.0;
    seeds.push_back(0.022 * std::cos(angle));
    seeds.push_back(0.022 * std::sin(angle));
    seeds.push_back(0.065);
  }
  params.set_doubles("seeds", seeds);
  params.set_int("step0", 0);
  params.set_int("step1", 7);
  params.set("prefetch", "markov");
  params.set_double("tolerance", 1e-4);

  auto run_once = [&](const char* label) {
    auto stream = session.submit("pathlines.dataman", params);
    std::vector<util::ByteBuffer> fragments;
    const auto stats = stream->wait(&fragments);
    if (!stats.success) {
      std::fprintf(stderr, "%s run failed: %s\n", label, stats.error.c_str());
      std::exit(1);
    }
    const auto counters = backend.dms_counters();
    std::printf("%-12s runtime %.3fs | DMS so far: %llu requests, %.0f%% hits, "
                "%llu prefetches (%llu useful)\n",
                label, stats.total_runtime,
                static_cast<unsigned long long>(counters.requests),
                100.0 * counters.hit_rate(),
                static_cast<unsigned long long>(counters.prefetch_issued),
                static_cast<unsigned long long>(counters.prefetch_useful));
    return fragments;
  };

  // Cold run: compulsory misses; the Markov prefetcher is still learning.
  auto fragments = run_once("cold run");
  // Warm run: caches hold the blocks, the transition graph is populated.
  fragments = run_once("warm run");

  // Assemble and export the traces.
  viz::GeometryCollector collector;
  for (auto& buffer : fragments) {
    viz::Packet packet;
    packet.kind = viz::Packet::Kind::kFinal;
    packet.payload = std::move(buffer);
    collector.consume(packet);
  }
  const auto& lines = collector.lines();
  lines.write_obj(output);
  std::printf("%zu pathlines (%zu points) -> %s\n", lines.line_count(), lines.total_points(),
              output.c_str());

  // A little physics: report residence time per particle.
  for (std::size_t l = 0; l < std::min<std::size_t>(4, lines.line_count()); ++l) {
    const auto times = lines.line_times(l);
    if (!times.empty()) {
      std::printf("  particle %zu: %zu points, t = %.4f .. %.4f s\n", l, times.size(),
                  times.front(), times.back());
    }
  }
  return 0;
}
