/// \file engine_isosurface.cpp
/// Figure 4 scenario: view-dependent isosurface STREAMING on the Engine
/// dataset. The parts of the surface nearest the viewer arrive first
/// ("left: first results, right: final isosurface"); this example captures
/// the progression as OBJ snapshots after 10%, 50% and 100% of the
/// fragments.
///
/// Run:  ./engine_isosurface [snapshot-prefix]

#include <cstdio>
#include <filesystem>

#include "algo/cfd_command.hpp"
#include "core/backend.hpp"
#include "grid/synthetic.hpp"
#include "viz/assembly.hpp"
#include "viz/session.hpp"

int main(int argc, char** argv) {
  using namespace vira;
  const std::string prefix = argc > 1 ? argv[1] : "engine_iso";

  // A reduced Engine (23 blocks, 2 steps) generated on the fly.
  const auto dataset = (std::filesystem::temp_directory_path() / "vira_example_engine").string();
  if (!std::filesystem::exists(dataset + "/dataset.vmi")) {
    std::printf("generating Engine dataset (23 blocks)...\n");
    grid::GeneratorConfig config;
    config.directory = dataset;
    config.timesteps = 2;
    config.ni = 14;
    config.nj = 11;
    config.nk = 9;
    grid::generate_engine(config);
  }

  // Pick a valid iso value from the density range.
  grid::DatasetReader reader(dataset);
  float lo = 1e30f;
  float hi = -1e30f;
  for (int b = 0; b < reader.meta().block_count(); ++b) {
    const auto [blo, bhi] = reader.read_block(0, b).scalar_range("density");
    lo = std::min(lo, blo);
    hi = std::max(hi, bhi);
  }
  const double iso = 0.5 * (lo + hi);

  algo::register_builtin_commands();
  core::BackendConfig config;
  config.workers = 4;
  core::Backend backend(config);
  viz::ExtractionSession session(backend.connect());

  // The viewer looks into the cylinder from below the piston.
  util::ParamList params;
  params.set("dataset", dataset);
  params.set("field", "density");
  params.set_double("iso", iso);
  params.set_int("workers", 4);
  params.set_doubles("viewpoint", {0.0, -0.15, -0.05});
  params.set_int("stream_cells", 96);
  auto stream = session.submit("iso.viewer", params);

  viz::GeometryCollector collector;
  std::vector<viz::Packet> packets;
  core::CommandStats stats;
  while (true) {
    auto packet = stream->next();
    if (!packet) {
      return 1;
    }
    if (packet->kind == viz::Packet::Kind::kComplete) {
      stats = packet->stats;
      break;
    }
    if (packet->kind == viz::Packet::Kind::kPartial) {
      packets.push_back(std::move(*packet));
    }
  }
  if (!stats.success) {
    std::fprintf(stderr, "command failed: %s\n", stats.error.c_str());
    return 1;
  }

  // Re-play the stream into snapshots (exactly what a render loop would
  // have shown at those moments).
  const std::size_t milestones[] = {packets.size() / 10, packets.size() / 2, packets.size()};
  const char* labels[] = {"first", "half", "final"};
  std::size_t cursor = 0;
  for (int m = 0; m < 3; ++m) {
    for (; cursor < milestones[m]; ++cursor) {
      collector.consume(packets[cursor]);
    }
    const auto mesh = collector.flat_mesh();
    const std::string path = prefix + "_" + labels[m] + ".obj";
    mesh.write_obj(path, labels[m]);
    std::printf("%-6s %6zu triangles -> %s\n", labels[m], mesh.triangle_count(), path.c_str());
  }
  std::printf("streamed %llu fragments; latency %.3fs of %.3fs total\n",
              static_cast<unsigned long long>(stats.partial_packets), stats.latency,
              stats.total_runtime);
  return 0;
}
