/// \file tcp_backend_demo.cpp
/// The distributed deployment of paper Fig. 2: the Viracocha backend
/// serves on a real TCP socket; the "visualization host" connects through
/// the network stack (here: loopback), submits a cut-plane command and
/// receives streamed fragments — byte-identical protocol to the in-process
/// path thanks to the layer-1 transport abstraction.
///
/// Run:  ./tcp_backend_demo [port]

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "algo/cfd_command.hpp"
#include "core/backend.hpp"
#include "grid/synthetic.hpp"
#include "viz/assembly.hpp"
#include "viz/session.hpp"

int main(int argc, char** argv) {
  using namespace vira;
  const auto requested_port = static_cast<std::uint16_t>(argc > 1 ? std::atoi(argv[1]) : 0);

  const auto dataset = (std::filesystem::temp_directory_path() / "vira_example_tcp").string();
  if (!std::filesystem::exists(dataset + "/dataset.vmi")) {
    grid::AbcFlow flow;
    grid::generate_box(dataset, flow, 1, 13, 13, 13, {0, 0, 0}, {6.28, 6.28, 6.28}, 0.1,
                       /*nblocks=*/4);
  }

  // --- server side ---------------------------------------------------------
  algo::register_builtin_commands();
  core::BackendConfig config;
  config.workers = 2;
  core::Backend backend(config);
  const auto port = backend.serve_tcp(requested_port);
  std::printf("backend listening on 127.0.0.1:%u\n", port);

  // --- client side (would normally be another process / machine) -----------
  auto link = comm::tcp_connect("127.0.0.1", port);
  viz::ExtractionSession session(std::shared_ptr<comm::ClientLink>(link.release()));
  std::printf("client connected over TCP\n");

  util::ParamList params;
  params.set("dataset", dataset);
  params.set_int("workers", 2);
  params.set_doubles("origin", {3.14, 3.14, 3.14});
  params.set_doubles("normal", {0.0, 0.0, 1.0});
  auto stream = session.submit("cutplane.dataman", params);

  viz::GeometryCollector collector;
  core::CommandStats stats;
  while (true) {
    auto packet = stream->next();
    if (!packet) {
      std::fprintf(stderr, "connection lost\n");
      return 1;
    }
    if (packet->kind == viz::Packet::Kind::kComplete) {
      stats = packet->stats;
      break;
    }
    collector.consume(*packet);
  }
  if (!stats.success) {
    std::fprintf(stderr, "command failed: %s\n", stats.error.c_str());
    return 1;
  }

  collector.flat_mesh().write_obj("tcp_cutplane.obj", "cutplane");
  std::printf("cut plane: %zu triangles over %llu streamed fragments -> tcp_cutplane.obj\n",
              collector.flat_mesh().triangle_count(),
              static_cast<unsigned long long>(stats.partial_packets));
  std::printf("runtime %.3fs, latency %.3fs — measured on the server, shipped over TCP\n",
              stats.total_runtime, stats.latency);
  return 0;
}
