/// \file explorative_session.cpp
/// The paper's motivating workflow (Sec. 1.1): "the user continuously
/// defines parameter values to extract features, which are thereafter
/// often rejected because of unsatisfying results. Then, the parameters
/// are modified for a renewed computation."
///
/// This example replays such a trial-and-error session against a live
/// backend: a sweep of iso values, a λ2 threshold adjustment, a cut plane,
/// a jump to another time step — and prints how the DMS turns every query
/// after the first into a cache-served one ("a global instance that caches
/// this data is very helpful to reduce the I/O part of commands
/// enormously", Sec. 8).
///
/// Run:  ./explorative_session

#include <cstdio>
#include <filesystem>

#include "algo/cfd_command.hpp"
#include "core/backend.hpp"
#include "grid/synthetic.hpp"
#include "viz/assembly.hpp"
#include "viz/session.hpp"

namespace {

struct Query {
  const char* what;
  std::string command;
  vira::util::ParamList params;
};

}  // namespace

int main() {
  using namespace vira;

  const auto dataset =
      (std::filesystem::temp_directory_path() / "vira_example_session").string();
  if (!std::filesystem::exists(dataset + "/dataset.vmi")) {
    std::printf("generating Engine dataset...\n");
    grid::GeneratorConfig config;
    config.directory = dataset;
    config.timesteps = 3;
    config.ni = 14;
    config.nj = 11;
    config.nk = 9;
    grid::generate_engine(config);
  }

  algo::register_builtin_commands();
  core::BackendConfig config;
  config.workers = 4;
  config.read_delay_us_per_mb = 150000.0;  // emulate a remote file server
  core::Backend backend(config);
  viz::ExtractionSession session(backend.connect());

  // A real VR client cannot read the server's files: ask the backend for
  // the field range to place the iso-value slider.
  float lo = 0.0f;
  float hi = 0.0f;
  {
    util::ParamList params;
    params.set("dataset", dataset);
    params.set("field", "density");
    params.set_int("workers", 4);
    std::vector<util::ByteBuffer> fragments;
    const auto stats = session.submit("query.field_range", params)->wait(&fragments);
    if (!stats.success || fragments.empty()) {
      std::fprintf(stderr, "field range query failed\n");
      return 1;
    }
    (void)fragments[0].read_string();
    (void)fragments[0].read_string();
    lo = fragments[0].read<float>();
    hi = fragments[0].read<float>();
    std::printf("density range (served by the backend): [%.4f, %.4f]\n", lo, hi);
  }

  auto iso_query = [&](double fraction, int step) {
    util::ParamList params;
    params.set("dataset", dataset);
    params.set("field", "density");
    params.set_double("iso", lo + (hi - lo) * fraction);
    params.set_int("step", step);
    params.set_int("workers", 4);
    return params;
  };

  std::vector<Query> script;
  script.push_back({"first look: density isosurface (cold caches)", "iso.dataman",
                    iso_query(0.5, 0)});
  script.push_back({"too coarse — nudge the iso value", "iso.dataman", iso_query(0.55, 0)});
  script.push_back({"still unconvincing — nudge again", "iso.dataman", iso_query(0.45, 0)});
  {
    util::ParamList params = iso_query(0.5, 0);
    params.set_double("iso", -0.05);
    Query q{"switch feature: lambda-2 vortex regions", "vortex.dataman", params};
    q.params.set("field", "");
    script.push_back(q);
  }
  {
    util::ParamList params;
    params.set("dataset", dataset);
    params.set_int("workers", 4);
    params.set_doubles("origin", {0.0, 0.0, 0.05});
    params.set_doubles("normal", {0.0, 0.0, 1.0});
    script.push_back({"inspect a cut plane through the cylinder", "cutplane.dataman", params});
  }
  script.push_back({"advance time: same isosurface at step 1 (compulsory misses)",
                    "iso.dataman", iso_query(0.5, 1)});
  script.push_back({"and refine there once more", "iso.dataman", iso_query(0.53, 1)});

  std::printf("\n%-58s %10s %10s %8s\n", "query", "runtime", "hit rate", "misses");
  dms::DmsCounters previous{};
  for (auto& query : script) {
    auto stream = session.submit(query.command, query.params);
    const auto stats = stream->wait();
    if (!stats.success) {
      std::fprintf(stderr, "query failed: %s\n", stats.error.c_str());
      return 1;
    }
    const auto counters = backend.dms_counters();
    const auto delta_requests = counters.requests - previous.requests;
    const auto delta_hits =
        (counters.l1_hits + counters.l2_hits) - (previous.l1_hits + previous.l2_hits);
    const auto delta_misses = counters.misses - previous.misses;
    previous = counters;
    std::printf("%-58s %9.3fs %9.0f%% %8llu\n", query.what, stats.total_runtime,
                delta_requests > 0 ? 100.0 * delta_hits / delta_requests : 0.0,
                static_cast<unsigned long long>(delta_misses));
  }

  const auto counters = backend.dms_counters();
  std::printf("\nsession totals: %llu block requests, %.0f%% served from cache\n",
              static_cast<unsigned long long>(counters.requests),
              100.0 * counters.hit_rate());
  std::printf("(the first query and the time-step jump paid the I/O; everything else "
              "ran at memory speed)\n");
  return 0;
}
