/// \file propfan_vortices.cpp
/// Figure 5 scenario: "Multiple steps of streamed Lambda-2 vortices inside
/// the Propfan". Runs the StreamedVortex command on the 144-block Propfan
/// dataset and dumps snapshots of the growing vortex system as fragments
/// arrive — plus the DMS statistics the run produced.
///
/// Run:  ./propfan_vortices [snapshot-prefix]

#include <cstdio>
#include <filesystem>

#include "algo/cfd_command.hpp"
#include "algo/lambda2.hpp"
#include "core/backend.hpp"
#include "grid/synthetic.hpp"
#include "viz/assembly.hpp"
#include "viz/session.hpp"

int main(int argc, char** argv) {
  using namespace vira;
  const std::string prefix = argc > 1 ? argv[1] : "propfan_vortices";

  const auto dataset = (std::filesystem::temp_directory_path() / "vira_example_propfan").string();
  if (!std::filesystem::exists(dataset + "/dataset.vmi")) {
    std::printf("generating Propfan dataset (144 blocks)...\n");
    grid::GeneratorConfig config;
    config.directory = dataset;
    config.timesteps = 1;
    config.ni = 10;
    config.nj = 8;
    config.nk = 7;
    grid::generate_propfan(config);
  }

  // λ2 threshold "about zero": a small way into the vortical range.
  grid::DatasetReader reader(dataset);
  float lambda2_min = 0.0f;
  for (int b = 0; b < reader.meta().block_count(); ++b) {
    auto block = reader.read_block(0, b);
    lambda2_min = std::min(lambda2_min, algo::compute_lambda2_field(block).first);
  }
  const double threshold = 0.02 * lambda2_min;
  std::printf("lambda2 range minimum %.3g, threshold %.3g\n", lambda2_min, threshold);

  algo::register_builtin_commands();
  core::BackendConfig config;
  config.workers = 4;
  core::Backend backend(config);
  viz::ExtractionSession session(backend.connect());

  util::ParamList params;
  params.set("dataset", dataset);
  params.set_double("iso", threshold);
  params.set_int("workers", 4);
  params.set_int("stream_cells", 128);
  auto stream = session.submit("vortex.streamed", params);

  viz::GeometryCollector collector;
  core::CommandStats stats;
  int snapshot = 0;
  std::size_t fragments = 0;
  while (true) {
    auto packet = stream->next();
    if (!packet) {
      return 1;
    }
    if (packet->kind == viz::Packet::Kind::kComplete) {
      stats = packet->stats;
      break;
    }
    if (collector.consume(*packet)) {
      ++fragments;
      // Snapshot every 8 fragments ("multiple steps of streamed vortices").
      if (fragments % 8 == 1 && snapshot < 4) {
        const std::string path = prefix + "_step" + std::to_string(snapshot++) + ".obj";
        collector.flat_mesh().write_obj(path, "vortices");
        std::printf("snapshot after %3zu fragments: %6zu triangles -> %s\n", fragments,
                    collector.flat_mesh().triangle_count(), path.c_str());
      }
    }
  }
  if (!stats.success) {
    std::fprintf(stderr, "command failed: %s\n", stats.error.c_str());
    return 1;
  }

  const std::string final_path = prefix + "_final.obj";
  collector.flat_mesh().write_obj(final_path, "vortices");
  std::printf("final vortex system: %zu triangles -> %s\n",
              collector.flat_mesh().triangle_count(), final_path.c_str());
  std::printf("latency %.3fs of %.3fs total, %llu fragments\n", stats.latency,
              stats.total_runtime, static_cast<unsigned long long>(stats.partial_packets));

  const auto counters = backend.dms_counters();
  std::printf("DMS: %llu requests, %.0f%% hit rate, %llu prefetches (%llu useful)\n",
              static_cast<unsigned long long>(counters.requests), 100.0 * counters.hit_rate(),
              static_cast<unsigned long long>(counters.prefetch_issued),
              static_cast<unsigned long long>(counters.prefetch_useful));
  return 0;
}
