/// \file quickstart.cpp
/// Smallest end-to-end tour of the Viracocha API:
///   1. generate a small synthetic CFD dataset,
///   2. start a post-processing backend (scheduler + workers, in-process),
///   3. submit an isosurface command through an extraction session,
///   4. assemble the result and write it to an OBJ file.
///
/// Run:  ./quickstart [output.obj]

#include <cstdio>
#include <filesystem>

#include "algo/cfd_command.hpp"
#include "core/backend.hpp"
#include "grid/synthetic.hpp"
#include "viz/assembly.hpp"
#include "viz/session.hpp"

int main(int argc, char** argv) {
  using namespace vira;
  const std::string output = argc > 1 ? argv[1] : "quickstart_isosurface.obj";

  // 1. A tiny dataset: one Lamb–Oseen vortex sampled on a 3-block box.
  const auto dataset =
      (std::filesystem::temp_directory_path() / "vira_quickstart_data").string();
  std::filesystem::remove_all(dataset);
  grid::LambOseenVortex vortex({0.5, 0.5, 0.5}, {0, 0, 1}, 2.0, 0.15);
  grid::generate_box(dataset, vortex, /*timesteps=*/1, 17, 17, 17, {0, 0, 0}, {1, 1, 1}, 0.05,
                     /*nblocks=*/3);
  std::printf("dataset written to %s\n", dataset.c_str());

  // 2. Backend: 2 workers, FBR caches, OBL prefetch — the paper's defaults.
  algo::register_builtin_commands();
  core::BackendConfig config;
  config.workers = 2;
  core::Backend backend(config);

  // 3. Submit IsoDataMan on the pressure field.
  viz::ExtractionSession session(backend.connect());
  util::ParamList params;
  params.set("dataset", dataset);
  params.set("field", "pressure");
  params.set_double("iso", 0.9);
  params.set_int("workers", 2);
  auto stream = session.submit("iso.dataman", params);

  // 4. Drain the stream, assemble, export.
  viz::GeometryCollector collector;
  core::CommandStats stats;
  while (true) {
    auto packet = stream->next();
    if (!packet) {
      std::fprintf(stderr, "stream ended unexpectedly\n");
      return 1;
    }
    if (packet->kind == viz::Packet::Kind::kComplete) {
      stats = packet->stats;
      break;
    }
    collector.consume(*packet);
  }

  if (!stats.success) {
    std::fprintf(stderr, "command failed: %s\n", stats.error.c_str());
    return 1;
  }
  const auto& mesh = collector.flat_mesh();
  mesh.write_obj(output, "isosurface");
  std::printf("isosurface: %zu triangles, area %.4f -> %s\n", mesh.triangle_count(),
              mesh.surface_area(), output.c_str());
  std::printf("server-side runtime %.3fs, %d workers, result %.1f KB\n", stats.total_runtime,
              stats.workers, stats.result_bytes / 1024.0);

  const auto counters = backend.dms_counters();
  std::printf("DMS: %llu requests, %llu hits, %llu misses\n",
              static_cast<unsigned long long>(counters.requests),
              static_cast<unsigned long long>(counters.l1_hits + counters.l2_hits),
              static_cast<unsigned long long>(counters.misses));
  return 0;
}
