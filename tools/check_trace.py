#!/usr/bin/env python3
"""Validates a vira::obs Chrome-trace export.

Invariants checked (ISSUE 2 satellite):
  * the file is well-formed Chrome trace_event JSON (object with a
    "traceEvents" list of "X"/"M" events),
  * every complete ("X") event carries ts >= 0, dur >= 0 and the obs args
    (span_id, parent_id, request_id, rank),
  * span ids are unique,
  * no orphans: every nonzero parent_id resolves to an exported span,
  * request consistency: a child annotates the same request_id as its
    parent whenever both are nonzero (request-0 spans — e.g. async
    prefetches — are exempt),
  * scheduler nesting: every sched.* span that has a parent at all nests
    under the submitting client.request span (directly, or through other
    sched.* spans) — scheduler work is always attributable to a client,
  * result-cache nesting: every result_cache.lookup span with a parent is
    a direct child of a sched.request span — the memoization decision is
    always attributable to the request it decided for,
  * net nesting: every net.send span (the event-loop frontend's queue +
    socket time for one frame) with a parent reaches a client.request span
    walking up — wire time is always attributable to the request that paid
    for it.

Usage: check_trace.py TRACE.json [--require NAME ...] [--min-spans N]
Exit status 0 = all invariants hold.
"""

import argparse
import json
import sys


def fail(message):
    print("check_trace: FAIL: %s" % message)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("trace")
    parser.add_argument("--require", action="append", default=[],
                        help="span name that must appear at least once")
    parser.add_argument("--min-spans", type=int, default=1)
    args = parser.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as error:
        fail("cannot parse %s: %s" % (args.trace, error))

    events = document.get("traceEvents")
    if not isinstance(events, list):
        fail("no traceEvents list")

    spans = {}
    for event in events:
        phase = event.get("ph")
        if phase == "M":
            continue
        if phase != "X":
            fail("unexpected event phase %r" % phase)
        for key in ("name", "ts", "dur", "pid", "tid", "args"):
            if key not in event:
                fail("X event missing %r: %r" % (key, event))
        if event["ts"] < 0 or event["dur"] < 0:
            fail("negative ts/dur in %r" % event)
        span_args = event["args"]
        for key in ("span_id", "parent_id", "request_id", "rank"):
            if key not in span_args:
                fail("span %r missing arg %r" % (event["name"], key))
        span_id = span_args["span_id"]
        if span_id in spans:
            fail("duplicate span_id %d" % span_id)
        spans[span_id] = event

    if len(spans) < args.min_spans:
        fail("only %d spans exported (need >= %d)" % (len(spans), args.min_spans))

    names = set()
    for span_id, event in spans.items():
        names.add(event["name"])
        parent_id = event["args"]["parent_id"]
        if parent_id == 0:
            continue
        parent = spans.get(parent_id)
        if parent is None:
            fail("span %d (%s) has orphan parent %d" %
                 (span_id, event["name"], parent_id))
        child_request = event["args"]["request_id"]
        parent_request = parent["args"]["request_id"]
        if child_request and parent_request and child_request != parent_request:
            fail("span %d (%s) request %d != parent request %d" %
                 (span_id, event["name"], child_request, parent_request))
        if event["name"].startswith("sched."):
            # Walk up through scheduler spans; the first non-sched ancestor
            # must be the client.request span that submitted the work.
            # (Headless runs — e.g. DST — submit with parent 0 and are
            # exempt via the `continue` above.)
            ancestor = parent
            while ancestor["name"].startswith("sched."):
                ancestor_parent = ancestor["args"]["parent_id"]
                if ancestor_parent == 0:
                    ancestor = None
                    break
                ancestor = spans.get(ancestor_parent)
                if ancestor is None:
                    break  # orphan; reported by the parent's own check
            if ancestor is not None and ancestor["name"] != "client.request":
                fail("sched span %d (%s) nests under %r, not client.request" %
                     (span_id, event["name"], ancestor["name"]))
        if event["name"] == "result_cache.lookup" and parent["name"] != "sched.request":
            fail("result_cache.lookup span %d nests under %r, not sched.request" %
                 (span_id, parent["name"]))
        if event["name"] == "net.send":
            # Walk all the way up; a net.send must be attributable to the
            # client.request that paid for the bytes. (Roots with parent 0
            # along the way — headless runs — are exempt.)
            ancestor = parent
            while ancestor is not None and ancestor["name"] != "client.request":
                ancestor_parent = ancestor["args"]["parent_id"]
                if ancestor_parent == 0:
                    ancestor = None
                    break
                ancestor = spans.get(ancestor_parent)
            if ancestor is not None and ancestor["name"] != "client.request":
                fail("net.send span %d does not reach client.request" % span_id)

    for required in args.require:
        if required not in names:
            fail("required span %r not present (have: %s)" %
                 (required, ", ".join(sorted(names))))

    print("check_trace: OK: %d spans, %d names" % (len(spans), len(names)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
