// vira-dst: deterministic-simulation-test runner (DESIGN.md "Testing
// strategy"). Runs the real scheduler/worker/DMS stack under virtual time
// against seeded scenarios and checks the invariant oracles.
//
// Modes:
//   vira-dst --seeds A:B [--verify-every K]   fuzz a seed range
//   vira-dst --seed N                         run one generated scenario
//   vira-dst --scenario "STR"                 replay a scenario string
//   vira-dst --shrink-demo                    prove the shrinker works on a
//                                             deliberately broken config
//   vira-dst --seed N --trace-out FILE        export a Chrome trace of a run
//
// Exit status: 0 = every scenario passed all oracles, 1 = violations or
// nondeterminism, 2 = bad usage.

#include <cstdint>
#include <iostream>
#include <string>

#include "obs/tracer.hpp"
#include "sim/dst_fuzz.hpp"
#include "sim/dst_harness.hpp"
#include "util/log.hpp"

namespace {

void print_result(const vira::sim::Scenario& scenario, const vira::sim::ScenarioResult& result) {
  std::cout << "scenario: " << scenario.to_string() << "\n"
            << "  trajectory_hash=" << std::hex << result.trajectory_hash << std::dec
            << " transport_events=" << result.transport_events
            << " context_switches=" << result.context_switches
            << " virtual_ms=" << result.virtual_end_ns / 1000000 << "\n"
            << "  completed=" << result.completed << " succeeded=" << result.succeeded
            << " failed=" << result.failed << " degraded=" << result.degraded
            << " fragments=" << result.fragments << " killed=" << result.ranks_killed << "\n"
            << "  faults: forwarded=" << result.faults.forwarded
            << " dropped=" << result.faults.dropped << " duplicated=" << result.faults.duplicated
            << " delayed=" << result.faults.delayed
            << " suppressed_dead=" << result.faults.suppressed_dead << "\n";
  for (const auto& violation : result.violations) {
    std::cout << "  VIOLATION: " << violation << "\n";
  }
}

int run_one(const vira::sim::Scenario& scenario, const std::string& trace_out) {
  std::cout << "running: " << scenario.to_string() << std::endl;
  if (!trace_out.empty()) {
    vira::obs::Tracer::instance().enable();
  }
  const auto result = vira::sim::run_scenario(scenario);
  print_result(scenario, result);
  if (!trace_out.empty()) {
    vira::obs::Tracer::instance().disable();
    if (!vira::obs::write_chrome_trace_file(trace_out)) {
      std::cerr << "vira-dst: cannot write trace to " << trace_out << "\n";
      return 1;
    }
    std::cout << "  trace written to " << trace_out << "\n";
  }
  return result.ok() ? 0 : 1;
}

int run_range(std::uint64_t first, std::uint64_t last, int verify_every) {
  vira::sim::FuzzOptions options;
  options.first_seed = first;
  options.count = static_cast<int>(last - first + 1);
  options.verify_every = verify_every;
  const auto report = vira::sim::run_fuzz(options);
  std::cout << "vira-dst: " << report.scenarios_run << " scenarios (seeds " << first << ".."
            << last << "), " << report.determinism_checks << " determinism checks, "
            << report.total_transport_events << " transport events\n";
  for (const auto& failure : report.failures) {
    std::cout << "FAILURE seed=" << failure.seed << "\n  scenario: " << failure.scenario << "\n";
    for (const auto& violation : failure.violations) {
      std::cout << "  violation: " << violation << "\n";
    }
    if (!failure.shrunk.empty()) {
      std::cout << "  shrunk: " << failure.shrunk << "\n";
    }
    std::cout << "  replay: vira-dst --seed " << failure.seed << "\n";
  }
  for (const auto seed : report.nondeterministic_seeds) {
    std::cout << "NONDETERMINISTIC seed=" << seed << " (trajectory hash changed on replay)\n";
  }
  if (report.ok()) {
    std::cout << "all oracles passed\n";
  }
  return report.ok() ? 0 : 1;
}

// The acceptance demo for the shrinker: disable the scheduler's fragment
// dedup on a duplicating transport, let the exactly-once oracle fire, and
// shrink the failure to a minimal reproduction.
int run_shrink_demo() {
  vira::sim::Scenario scenario = vira::sim::generate_scenario(7);
  scenario.fragment_dedup = false;
  scenario.duplicate_rate = 0.35;
  scenario.drop_rate = 0.0;
  scenario.request_timeout_ms = 0;
  // A couple of chatty requests so duplicates have fragments to hit.
  scenario.requests.clear();
  for (int i = 0; i < 3; ++i) {
    vira::sim::DstRequest r;
    r.partials = 4;
    r.payload = 64;
    r.dms_items = 2;
    r.barrier = i == 1;
    r.submit_at_ms = i * 20;
    scenario.requests.push_back(r);
  }

  const auto first = vira::sim::run_scenario(scenario);
  std::cout << "shrink-demo: deliberate violation (fragment_dedup=0, duplicate_rate=0.35)\n";
  print_result(scenario, first);
  if (first.ok()) {
    std::cout << "shrink-demo: expected an exactly-once violation, got none\n";
    return 1;
  }

  const auto shrunk = vira::sim::shrink_scenario(scenario);
  std::cout << "shrink-demo: " << shrunk.attempts << " attempts, " << shrunk.accepted
            << " simplifications accepted\n"
            << "minimal scenario: " << shrunk.minimal.to_string() << "\n";
  for (const auto& violation : shrunk.failure.violations) {
    std::cout << "  still violates: " << violation << "\n";
  }
  std::cout << "replay: vira-dst --scenario '" << shrunk.minimal.to_string() << "'\n";

  // The demo passes when the shrinker (a) kept the violation, (b) actually
  // simplified, and (c) produced a replayable string.
  const auto reparsed = vira::sim::Scenario::parse(shrunk.minimal.to_string());
  if (shrunk.failure.ok() || shrunk.accepted == 0 || !reparsed) {
    std::cout << "shrink-demo: FAILED\n";
    return 1;
  }
  const auto replay = vira::sim::run_scenario(*reparsed);
  if (replay.ok() || replay.trajectory_hash != shrunk.failure.trajectory_hash) {
    std::cout << "shrink-demo: FAILED (replay of minimal scenario diverged)\n";
    return 1;
  }
  std::cout << "shrink-demo: OK (minimal scenario replays the violation bit-identically)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Fault scenarios are *supposed* to log rivers of warnings; keep stdout
  // for the verdicts.
  vira::util::Logger::instance().set_level(vira::util::LogLevel::kError);

  std::uint64_t seed = 0;
  bool have_seed = false;
  std::uint64_t first = 1;
  std::uint64_t last = 0;
  bool have_range = false;
  int verify_every = 0;
  std::string scenario_text;
  std::string trace_out;
  bool shrink_demo = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "vira-dst: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      seed = std::stoull(value());
      have_seed = true;
    } else if (arg == "--seeds") {
      const std::string range = value();
      const auto colon = range.find(':');
      if (colon == std::string::npos) {
        std::cerr << "vira-dst: --seeds wants A:B\n";
        return 2;
      }
      first = std::stoull(range.substr(0, colon));
      last = std::stoull(range.substr(colon + 1));
      have_range = true;
    } else if (arg == "--verify-every") {
      verify_every = std::stoi(value());
    } else if (arg == "--scenario") {
      scenario_text = value();
    } else if (arg == "--trace-out") {
      trace_out = value();
    } else if (arg == "--shrink-demo") {
      shrink_demo = true;
    } else if (arg == "--log") {
      // 0=trace .. 4=error; fault scenarios are loud below 4.
      vira::util::Logger::instance().set_level(
          static_cast<vira::util::LogLevel>(std::stoi(value())));
    } else {
      std::cerr << "vira-dst: unknown argument " << arg << "\n";
      return 2;
    }
  }

  if (shrink_demo) {
    return run_shrink_demo();
  }
  if (!scenario_text.empty()) {
    const auto scenario = vira::sim::Scenario::parse(scenario_text);
    if (!scenario) {
      std::cerr << "vira-dst: cannot parse scenario string\n";
      return 2;
    }
    return run_one(*scenario, trace_out);
  }
  if (have_seed) {
    return run_one(vira::sim::generate_scenario(seed), trace_out);
  }
  if (have_range && last >= first) {
    return run_range(first, last, verify_every);
  }
  std::cerr << "usage: vira-dst --seeds A:B [--verify-every K] | --seed N [--trace-out F] | "
               "--scenario STR | --shrink-demo\n";
  return 2;
}
