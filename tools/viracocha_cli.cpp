/// \file viracocha_cli.cpp
/// Command-line Viracocha client.
///
/// Connects to a running viracocha-server, submits one command and writes
/// the assembled geometry to an OBJ file — the smallest possible
/// "visualization host".
///
///   viracocha-cli --host H --port N --command NAME [--out FILE]
///                 [key=value ...]
///
/// Examples:
///   viracocha-cli --port 5999 --command query.field_range
///       dataset=/data/engine field=density
///   viracocha-cli --port 5999 --command iso.dataman --out surface.obj
///       dataset=/data/engine field=density iso=0.85 workers=4

#include <cstdio>
#include <cstring>
#include <string>

#include "viz/assembly.hpp"
#include "viz/session.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: viracocha-cli [--host H] [--port N] --command NAME [--out FILE]\n"
               "                     [key=value ...]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vira;

  std::string host = "127.0.0.1";
  std::uint16_t port = 5999;
  std::string command;
  std::string out_path;
  util::ParamList params;

  for (int arg = 1; arg < argc; ++arg) {
    const std::string token = argv[arg];
    auto next = [&]() -> const char* {
      if (arg + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++arg];
    };
    if (token == "--host") {
      host = next();
    } else if (token == "--port") {
      port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (token == "--command") {
      command = next();
    } else if (token == "--out") {
      out_path = next();
    } else if (token == "--help" || token == "-h") {
      usage();
      return 0;
    } else if (token.find('=') != std::string::npos) {
      const auto split = token.find('=');
      params.set(token.substr(0, split), token.substr(split + 1));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", token.c_str());
      usage();
      return 2;
    }
  }
  if (command.empty()) {
    usage();
    return 2;
  }

  std::unique_ptr<comm::ClientLink> link;
  try {
    link = comm::tcp_connect(host, port);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "connection failed: %s\n", e.what());
    return 1;
  }
  viz::ExtractionSession session(std::shared_ptr<comm::ClientLink>(link.release()));

  auto stream = session.submit(command, params);
  viz::GeometryCollector collector;
  core::CommandStats stats;
  std::vector<util::ByteBuffer> raw_finals;
  while (true) {
    auto packet = stream->next(std::chrono::milliseconds(600000));
    if (!packet) {
      std::fprintf(stderr, "connection lost / timeout\n");
      return 1;
    }
    if (packet->kind == viz::Packet::Kind::kProgress) {
      std::fprintf(stderr, "\rprogress: %3.0f%%", packet->progress * 100.0);
      continue;
    }
    if (packet->kind == viz::Packet::Kind::kComplete) {
      stats = packet->stats;
      break;
    }
    if (packet->kind == viz::Packet::Kind::kFinal) {
      // Keep a copy for non-geometry payloads (query results).
      util::ByteBuffer copy = packet->payload;
      copy.seek(0);
      raw_finals.push_back(std::move(copy));
    }
    collector.consume(*packet);
  }
  std::fprintf(stderr, "\r");

  if (!stats.success) {
    std::fprintf(stderr, "command failed: %s\n", stats.error.c_str());
    return 1;
  }
  std::printf("%s: %.3fs total, %.3fs latency, %d workers, %llu fragments\n", command.c_str(),
              stats.total_runtime, stats.latency, stats.workers,
              static_cast<unsigned long long>(stats.partial_packets));

  // Query result payloads.
  for (auto& payload : raw_finals) {
    try {
      const auto kind = payload.read_string();
      if (kind == "field_range") {
        const auto field = payload.read_string();
        const auto lo = payload.read<float>();
        const auto hi = payload.read<float>();
        std::printf("%s range: [%g, %g]\n", field.c_str(), lo, hi);
      }
    } catch (const std::exception&) {
      // Geometry payload; handled by the collector below.
    }
  }

  if (collector.flat_mesh().triangle_count() > 0) {
    const auto path = out_path.empty() ? command + ".obj" : out_path;
    collector.current_mesh().write_obj(path, command);
    std::printf("mesh: %zu triangles -> %s\n", collector.flat_mesh().triangle_count(),
                path.c_str());
  }
  if (collector.lines().line_count() > 0) {
    const auto path = out_path.empty() ? command + ".obj" : out_path;
    collector.lines().write_obj(path);
    std::printf("lines: %zu polylines -> %s\n", collector.lines().line_count(), path.c_str());
  }
  if (collector.have_summary()) {
    std::printf("summary: %llu triangles, %llu active cells\n",
                static_cast<unsigned long long>(collector.summary_triangles()),
                static_cast<unsigned long long>(collector.summary_active_cells()));
  }
  return 0;
}
