/// \file viracocha_cli.cpp
/// Command-line Viracocha client.
///
/// Connects to a running viracocha-server, submits one command and writes
/// the assembled geometry to an OBJ file — the smallest possible
/// "visualization host". Can also run self-contained (--local-workers)
/// with an in-process backend, which is how the vira-obs-smoke ctest
/// exercises the tracing pipeline end-to-end.
///
///   viracocha-cli --host H --port N --command NAME [--out FILE]
///                 [--local-workers N] [--synthetic DIR]
///                 [--kernel scalar|simd|auto]
///                 [--trace-out FILE] [--metrics-out FILE]
///                 [key=value ...]
///
/// Examples:
///   viracocha-cli --port 5999 --command query.field_range
///       dataset=/data/engine field=density
///   viracocha-cli --port 5999 --command iso.dataman --out surface.obj
///       dataset=/data/engine field=density iso=0.85 workers=4
///   viracocha-cli --local-workers 2 --synthetic /tmp/ds --command iso.viewer
///       --trace-out trace.json --metrics-out metrics.txt field=density

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>

#include "algo/cfd_command.hpp"
#include "core/backend.hpp"
#include "grid/dataset_io.hpp"
#include "grid/synthetic.hpp"
#include "obs/tracer.hpp"
#include "simd/simd.hpp"
#include "viz/assembly.hpp"
#include "viz/session.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: viracocha-cli [--host H] [--port N] --command NAME [--out FILE]\n"
               "                     [--local-workers N] [--synthetic DIR]\n"
               "                     [--kernel scalar|simd|auto]\n"
               "                     [--trace-out FILE] [--metrics-out FILE]\n"
               "                     [key=value ...]\n");
}

/// Generates the small synthetic Engine dataset at `dir` unless one is
/// already there (same fixture recipe the test-suite uses).
void ensure_synthetic_dataset(const std::string& dir) {
  namespace fs = std::filesystem;
  if (fs::exists(fs::path(dir) / "dataset.vmi")) {
    return;
  }
  fs::remove_all(dir);
  vira::grid::GeneratorConfig config;
  config.directory = dir;
  config.timesteps = 2;
  config.ni = 9;
  config.nj = 7;
  config.nk = 6;
  vira::grid::generate_engine(config);
}

/// Mid-range "density" iso value for a dataset — a level that always cuts
/// the synthetic Engine flow, so smoke runs stream real geometry.
double density_iso_mid(const std::string& dir, const std::string& field) {
  vira::grid::DatasetReader reader(dir);
  float lo = 1e30f;
  float hi = -1e30f;
  for (int b = 0; b < reader.meta().block_count(); ++b) {
    const auto [blo, bhi] = reader.read_block(0, b).scalar_range(field);
    lo = std::min(lo, blo);
    hi = std::max(hi, bhi);
  }
  return 0.5 * (static_cast<double>(lo) + static_cast<double>(hi));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vira;

  std::string host = "127.0.0.1";
  std::uint16_t port = 5999;
  std::string command;
  std::string out_path;
  std::string trace_out;
  std::string metrics_out;
  std::string synthetic_dir;
  int local_workers = 0;
  util::ParamList params;

  for (int arg = 1; arg < argc; ++arg) {
    const std::string token = argv[arg];
    auto next = [&]() -> const char* {
      if (arg + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++arg];
    };
    if (token == "--host") {
      host = next();
    } else if (token == "--port") {
      port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (token == "--command") {
      command = next();
    } else if (token == "--out") {
      out_path = next();
    } else if (token == "--trace-out") {
      trace_out = next();
    } else if (token == "--metrics-out") {
      metrics_out = next();
    } else if (token == "--local-workers") {
      local_workers = std::atoi(next());
    } else if (token == "--synthetic") {
      synthetic_dir = next();
    } else if (token == "--kernel") {
      const std::string value = next();
      const auto kernel = vira::simd::parse_kernel(value);
      if (!kernel) {
        std::fprintf(stderr, "unknown --kernel: %s (want scalar|simd|auto)\n", value.c_str());
        return 2;
      }
      vira::simd::set_default_kernel(*kernel);
    } else if (token == "--help" || token == "-h") {
      usage();
      return 0;
    } else if (token.find('=') != std::string::npos) {
      const auto split = token.find('=');
      params.set(token.substr(0, split), token.substr(split + 1));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", token.c_str());
      usage();
      return 2;
    }
  }
  if (command.empty()) {
    usage();
    return 2;
  }

  if (!trace_out.empty()) {
    obs::Tracer::instance().enable();
  }

  if (!synthetic_dir.empty()) {
    try {
      ensure_synthetic_dataset(synthetic_dir);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot generate synthetic dataset: %s\n", e.what());
      return 1;
    }
    if (!params.contains("dataset")) {
      params.set("dataset", synthetic_dir);
    }
    const std::string field = params.get_or("field", "density");
    if (command.rfind("iso.", 0) == 0 && !params.contains("iso")) {
      params.set_double("iso", density_iso_mid(params.get_or("dataset", ""), field));
    }
  }

  // Local mode hosts the whole backend in this process (scheduler + worker
  // threads over the in-proc transport); otherwise connect to a server.
  std::unique_ptr<core::Backend> backend;
  std::shared_ptr<comm::ClientLink> link;
  if (local_workers > 0) {
    algo::register_builtin_commands();
    core::BackendConfig backend_config;
    backend_config.workers = local_workers;
    // Local sessions memoize repeat queries (a re-run of the same command
    // with identical params replays instantly); remote servers opt in via
    // their own config.
    backend_config.scheduler.result_cache.enabled = true;
    backend = std::make_unique<core::Backend>(backend_config);
    link = backend->connect();
  } else {
    try {
      link = comm::tcp_connect(host, port);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "connection failed: %s\n", e.what());
      return 1;
    }
  }

  int exit_code = 0;
  {
    viz::ExtractionSession session(link);

    auto stream = session.submit(command, params);
    viz::GeometryCollector collector;
    core::CommandStats stats;
    std::vector<util::ByteBuffer> raw_finals;
    bool finished = false;
    while (true) {
      auto packet = stream->next(std::chrono::milliseconds(600000));
      if (!packet) {
        std::fprintf(stderr, "connection lost / timeout\n");
        exit_code = 1;
        break;
      }
      if (packet->kind == viz::Packet::Kind::kProgress) {
        std::fprintf(stderr, "\rprogress: %3.0f%%", packet->progress * 100.0);
        continue;
      }
      if (packet->kind == viz::Packet::Kind::kComplete) {
        stats = packet->stats;
        finished = true;
        break;
      }
      if (packet->kind == viz::Packet::Kind::kFinal) {
        // Keep a copy for non-geometry payloads (query results).
        util::ByteBuffer copy = packet->payload;
        copy.seek(0);
        raw_finals.push_back(std::move(copy));
      }
      collector.consume(*packet);
    }
    std::fprintf(stderr, "\r");

    if (finished && !stats.success) {
      std::fprintf(stderr, "command failed: %s\n", stats.error.c_str());
      exit_code = 1;
    }

    if (finished && stats.success) {
      std::printf("%s: %.3fs total, %.3fs latency, %d workers, %llu fragments\n",
                  command.c_str(), stats.total_runtime, stats.latency, stats.workers,
                  static_cast<unsigned long long>(stats.partial_packets));

      // Query result payloads.
      for (auto& payload : raw_finals) {
        try {
          const auto kind = payload.read_string();
          if (kind == "field_range") {
            const auto field = payload.read_string();
            const auto lo = payload.read<float>();
            const auto hi = payload.read<float>();
            std::printf("%s range: [%g, %g]\n", field.c_str(), lo, hi);
          }
        } catch (const std::exception&) {
          // Geometry payload; handled by the collector below.
        }
      }

      if (collector.flat_mesh().triangle_count() > 0) {
        const auto path = out_path.empty() ? command + ".obj" : out_path;
        collector.current_mesh().write_obj(path, command);
        std::printf("mesh: %zu triangles -> %s\n", collector.flat_mesh().triangle_count(),
                    path.c_str());
      }
      if (collector.lines().line_count() > 0) {
        const auto path = out_path.empty() ? command + ".obj" : out_path;
        collector.lines().write_obj(path);
        std::printf("lines: %zu polylines -> %s\n", collector.lines().line_count(),
                    path.c_str());
      }
      if (collector.have_summary()) {
        std::printf("summary: %llu triangles, %llu active cells\n",
                    static_cast<unsigned long long>(collector.summary_triangles()),
                    static_cast<unsigned long long>(collector.summary_active_cells()));
      }
    }
    session.close();
  }
  if (backend) {
    backend->shutdown();
  }

  // Export observability artifacts after the backend quiesced, so every
  // span (including the scheduler's) has committed.
  if (!trace_out.empty()) {
    if (obs::write_chrome_trace_file(trace_out)) {
      std::printf("trace: %zu spans -> %s\n", obs::Tracer::instance().size(),
                  trace_out.c_str());
    } else {
      exit_code = 1;
    }
  }
  if (!metrics_out.empty()) {
    if (obs::write_metrics_file(metrics_out)) {
      std::printf("metrics -> %s\n", metrics_out.c_str());
    } else {
      exit_code = 1;
    }
  }
  return exit_code;
}
