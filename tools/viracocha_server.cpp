/// \file viracocha_server.cpp
/// Standalone Viracocha post-processing server.
///
/// Runs the scheduler + worker backend and serves visualization clients on
/// a TCP port — the HPC-side half of the paper's Figure 2 as its own
/// process.
///
///   viracocha-server [--port N] [--workers N] [--cache-mb N]
///                    [--policy lru|lfu|fbr] [--l2-dir PATH]
///                    [--dms-messages]
///
/// The server runs until stdin reaches EOF (or the process is signalled),
/// so `viracocha-server < /dev/null` starts and stops immediately while
/// `viracocha-server` under a terminal serves until Ctrl-D.

#include <cstdio>
#include <cstring>
#include <string>

#include "algo/cfd_command.hpp"
#include "core/backend.hpp"
#include "util/log.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: viracocha-server [--port N] [--workers N] [--cache-mb N]\n"
               "                        [--policy lru|lfu|fbr] [--l2-dir PATH]\n"
               "                        [--dms-messages] [--verbose]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vira;

  core::BackendConfig config;
  std::uint16_t port = 5999;

  for (int arg = 1; arg < argc; ++arg) {
    const std::string flag = argv[arg];
    auto next = [&]() -> const char* {
      if (arg + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++arg];
    };
    if (flag == "--port") {
      port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (flag == "--workers") {
      config.workers = std::atoi(next());
    } else if (flag == "--cache-mb") {
      config.l1_cache_bytes = static_cast<std::uint64_t>(std::atoll(next())) << 20;
    } else if (flag == "--policy") {
      config.cache_policy = next();
    } else if (flag == "--l2-dir") {
      config.l2_directory = next();
    } else if (flag == "--dms-messages") {
      config.dms_over_messages = true;
    } else if (flag == "--verbose") {
      util::Logger::instance().set_level(util::LogLevel::kDebug);
    } else if (flag == "--help" || flag == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      usage();
      return 2;
    }
  }

  algo::register_builtin_commands();
  core::Backend backend(config);
  std::uint16_t bound = 0;
  try {
    bound = backend.serve_tcp(port);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "viracocha-server: cannot listen on port %u: %s\n", port, e.what());
    return 1;
  }
  std::printf("viracocha-server: %d workers, %s caches, listening on 127.0.0.1:%u\n",
              config.workers, config.cache_policy.c_str(), bound);
  std::printf("(serving until stdin closes)\n");
  std::fflush(stdout);

  // Serve until EOF on stdin.
  char buffer[256];
  while (std::fgets(buffer, sizeof(buffer), stdin) != nullptr) {
    if (std::strncmp(buffer, "quit", 4) == 0) {
      break;
    }
  }
  std::printf("viracocha-server: shutting down\n");
  return 0;
}
