/// \file viracocha_server.cpp
/// Standalone Viracocha post-processing server.
///
/// Runs the scheduler + worker backend and serves visualization clients on
/// a TCP port — the HPC-side half of the paper's Figure 2 as its own
/// process.
///
///   viracocha-server [--port N] [--workers N] [--cache-mb N]
///                    [--policy lru|lfu|fbr] [--l2-dir PATH]
///                    [--net epoll|blocking] [--net-threads N]
///                    [--no-compression]
///                    [--dms-messages] [--shards N] [--repl N]
///                    [--kernel scalar|simd|auto]
///                    [--trace-out FILE] [--metrics-out FILE]
///
/// The server runs until stdin reaches EOF (or the process is signalled),
/// so `viracocha-server < /dev/null` starts and stops immediately while
/// `viracocha-server` under a terminal serves until Ctrl-D.
///
/// Observability: with --trace-out / --metrics-out, the server dumps the
/// Chrome trace and the metrics text on shutdown, and SIGUSR1 triggers a
/// live dump at any time without stopping service.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "algo/cfd_command.hpp"
#include "core/backend.hpp"
#include "obs/tracer.hpp"
#include "simd/simd.hpp"
#include "util/log.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: viracocha-server [--port N] [--workers N] [--cache-mb N]\n"
               "                        [--policy lru|lfu|fbr] [--l2-dir PATH]\n"
               "                        [--net epoll|blocking] [--net-threads N]\n"
               "                        [--no-compression] [--dms-messages] [--verbose]\n"
               "                        [--shards N] [--repl N]\n"
               "                        [--kernel scalar|simd|auto]\n"
               "                        [--trace-out FILE] [--metrics-out FILE]\n");
}

volatile std::sig_atomic_t g_dump_requested = 0;
volatile std::sig_atomic_t g_exit_requested = 0;

void on_sigusr1(int) { g_dump_requested = 1; }
void on_terminate(int) { g_exit_requested = 1; }

std::string g_trace_out;
std::string g_metrics_out;

void dump_observability() {
  if (!g_trace_out.empty()) {
    if (vira::obs::write_chrome_trace_file(g_trace_out)) {
      std::printf("viracocha-server: trace (%zu spans) -> %s\n",
                  vira::obs::Tracer::instance().size(), g_trace_out.c_str());
    }
  }
  if (!g_metrics_out.empty()) {
    if (vira::obs::write_metrics_file(g_metrics_out)) {
      std::printf("viracocha-server: metrics -> %s\n", g_metrics_out.c_str());
    }
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vira;

  core::BackendConfig config;
  std::uint16_t port = 5999;

  for (int arg = 1; arg < argc; ++arg) {
    const std::string flag = argv[arg];
    auto next = [&]() -> const char* {
      if (arg + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++arg];
    };
    if (flag == "--port") {
      port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (flag == "--workers") {
      config.workers = std::atoi(next());
    } else if (flag == "--cache-mb") {
      config.l1_cache_bytes = static_cast<std::uint64_t>(std::atoll(next())) << 20;
    } else if (flag == "--policy") {
      config.cache_policy = next();
    } else if (flag == "--l2-dir") {
      config.l2_directory = next();
    } else if (flag == "--net") {
      const std::string frontend = next();
      if (frontend == "epoll") {
        config.net_frontend = core::BackendConfig::NetFrontend::kEpoll;
      } else if (frontend == "blocking") {
        config.net_frontend = core::BackendConfig::NetFrontend::kBlocking;
      } else {
        std::fprintf(stderr, "unknown --net frontend: %s\n", frontend.c_str());
        usage();
        return 2;
      }
    } else if (flag == "--net-threads") {
      config.net.threads = std::atoi(next());
    } else if (flag == "--no-compression") {
      config.net.allow_compression = false;
    } else if (flag == "--dms-messages") {
      config.dms_over_messages = true;
    } else if (flag == "--shards") {
      config.dms_shards = std::atoi(next());
    } else if (flag == "--repl") {
      config.dms_replication = std::atoi(next());
    } else if (flag == "--trace-out") {
      g_trace_out = next();
    } else if (flag == "--metrics-out") {
      g_metrics_out = next();
    } else if (flag == "--kernel") {
      const std::string value = next();
      const auto kernel = vira::simd::parse_kernel(value);
      if (!kernel) {
        std::fprintf(stderr, "unknown --kernel: %s (want scalar|simd|auto)\n", value.c_str());
        usage();
        return 2;
      }
      vira::simd::set_default_kernel(*kernel);
    } else if (flag == "--verbose") {
      util::Logger::instance().set_level(util::LogLevel::kDebug);
    } else if (flag == "--help" || flag == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      usage();
      return 2;
    }
  }

  if (!g_trace_out.empty()) {
    obs::Tracer::instance().enable();
  }
  // No SA_RESTART: a signal must interrupt the blocking fgets below so
  // SIGUSR1 dumps promptly and SIGINT/SIGTERM shuts down with a dump.
  struct sigaction dump_action {};
  dump_action.sa_handler = on_sigusr1;
  sigaction(SIGUSR1, &dump_action, nullptr);
  struct sigaction exit_action {};
  exit_action.sa_handler = on_terminate;
  sigaction(SIGINT, &exit_action, nullptr);
  sigaction(SIGTERM, &exit_action, nullptr);

  algo::register_builtin_commands();
  core::Backend backend(config);
  std::uint16_t bound = 0;
  try {
    bound = backend.serve_tcp(port);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "viracocha-server: cannot listen on port %u: %s\n", port, e.what());
    return 1;
  }
  std::printf("viracocha-server: %d workers, %s caches, listening on 127.0.0.1:%u\n",
              config.workers, config.cache_policy.c_str(), bound);
  std::printf("(serving until stdin closes)\n");
  std::fflush(stdout);

  // Serve until EOF on stdin, SIGINT or SIGTERM. A SIGUSR1 interrupts the
  // read, dumps the trace/metrics and resumes service.
  char buffer[256];
  while (!g_exit_requested) {
    if (std::fgets(buffer, sizeof(buffer), stdin) != nullptr) {
      if (std::strncmp(buffer, "quit", 4) == 0) {
        break;
      }
      continue;
    }
    if (g_dump_requested) {
      g_dump_requested = 0;
      dump_observability();
      std::clearerr(stdin);  // EINTR marks stdin EOF-ish; keep serving
      continue;
    }
    break;  // genuine EOF (or termination signal)
  }
  std::printf("viracocha-server: shutting down\n");
  backend.shutdown();
  dump_observability();
  return 0;
}
