file(REMOVE_RECURSE
  "CMakeFiles/explorative_session.dir/explorative_session.cpp.o"
  "CMakeFiles/explorative_session.dir/explorative_session.cpp.o.d"
  "explorative_session"
  "explorative_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explorative_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
