# Empty compiler generated dependencies file for explorative_session.
# This may be replaced when dependencies are built.
