file(REMOVE_RECURSE
  "CMakeFiles/engine_isosurface.dir/engine_isosurface.cpp.o"
  "CMakeFiles/engine_isosurface.dir/engine_isosurface.cpp.o.d"
  "engine_isosurface"
  "engine_isosurface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_isosurface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
