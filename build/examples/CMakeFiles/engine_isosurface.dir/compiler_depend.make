# Empty compiler generated dependencies file for engine_isosurface.
# This may be replaced when dependencies are built.
