file(REMOVE_RECURSE
  "CMakeFiles/tcp_backend_demo.dir/tcp_backend_demo.cpp.o"
  "CMakeFiles/tcp_backend_demo.dir/tcp_backend_demo.cpp.o.d"
  "tcp_backend_demo"
  "tcp_backend_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_backend_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
