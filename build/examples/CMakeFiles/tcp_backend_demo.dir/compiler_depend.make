# Empty compiler generated dependencies file for tcp_backend_demo.
# This may be replaced when dependencies are built.
