file(REMOVE_RECURSE
  "CMakeFiles/pathline_study.dir/pathline_study.cpp.o"
  "CMakeFiles/pathline_study.dir/pathline_study.cpp.o.d"
  "pathline_study"
  "pathline_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pathline_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
