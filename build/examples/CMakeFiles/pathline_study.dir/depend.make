# Empty dependencies file for pathline_study.
# This may be replaced when dependencies are built.
