# Empty dependencies file for propfan_vortices.
# This may be replaced when dependencies are built.
