file(REMOVE_RECURSE
  "CMakeFiles/propfan_vortices.dir/propfan_vortices.cpp.o"
  "CMakeFiles/propfan_vortices.dir/propfan_vortices.cpp.o.d"
  "propfan_vortices"
  "propfan_vortices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/propfan_vortices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
