# Empty dependencies file for bench_cache_policies.
# This may be replaced when dependencies are built.
