file(REMOVE_RECURSE
  "../bench/bench_fig9_engine_vortex"
  "../bench/bench_fig9_engine_vortex.pdb"
  "CMakeFiles/bench_fig9_engine_vortex.dir/bench_fig9_engine_vortex.cpp.o"
  "CMakeFiles/bench_fig9_engine_vortex.dir/bench_fig9_engine_vortex.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_engine_vortex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
