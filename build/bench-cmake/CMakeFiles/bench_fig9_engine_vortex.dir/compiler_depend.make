# Empty compiler generated dependencies file for bench_fig9_engine_vortex.
# This may be replaced when dependencies are built.
