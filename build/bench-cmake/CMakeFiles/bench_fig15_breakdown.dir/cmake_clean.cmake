file(REMOVE_RECURSE
  "../bench/bench_fig15_breakdown"
  "../bench/bench_fig15_breakdown.pdb"
  "CMakeFiles/bench_fig15_breakdown.dir/bench_fig15_breakdown.cpp.o"
  "CMakeFiles/bench_fig15_breakdown.dir/bench_fig15_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
