# Empty compiler generated dependencies file for bench_fig10_propfan_vortex.
# This may be replaced when dependencies are built.
