file(REMOVE_RECURSE
  "../bench/bench_fig10_propfan_vortex"
  "../bench/bench_fig10_propfan_vortex.pdb"
  "CMakeFiles/bench_fig10_propfan_vortex.dir/bench_fig10_propfan_vortex.cpp.o"
  "CMakeFiles/bench_fig10_propfan_vortex.dir/bench_fig10_propfan_vortex.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_propfan_vortex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
