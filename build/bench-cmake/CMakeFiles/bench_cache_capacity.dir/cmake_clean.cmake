file(REMOVE_RECURSE
  "../bench/bench_cache_capacity"
  "../bench/bench_cache_capacity.pdb"
  "CMakeFiles/bench_cache_capacity.dir/bench_cache_capacity.cpp.o"
  "CMakeFiles/bench_cache_capacity.dir/bench_cache_capacity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cache_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
