# Empty compiler generated dependencies file for bench_cache_capacity.
# This may be replaced when dependencies are built.
