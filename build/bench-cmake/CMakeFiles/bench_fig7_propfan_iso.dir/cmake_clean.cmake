file(REMOVE_RECURSE
  "../bench/bench_fig7_propfan_iso"
  "../bench/bench_fig7_propfan_iso.pdb"
  "CMakeFiles/bench_fig7_propfan_iso.dir/bench_fig7_propfan_iso.cpp.o"
  "CMakeFiles/bench_fig7_propfan_iso.dir/bench_fig7_propfan_iso.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_propfan_iso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
