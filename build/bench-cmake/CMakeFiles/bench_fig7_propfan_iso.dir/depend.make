# Empty dependencies file for bench_fig7_propfan_iso.
# This may be replaced when dependencies are built.
