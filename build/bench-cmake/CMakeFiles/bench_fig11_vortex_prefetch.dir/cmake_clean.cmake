file(REMOVE_RECURSE
  "../bench/bench_fig11_vortex_prefetch"
  "../bench/bench_fig11_vortex_prefetch.pdb"
  "CMakeFiles/bench_fig11_vortex_prefetch.dir/bench_fig11_vortex_prefetch.cpp.o"
  "CMakeFiles/bench_fig11_vortex_prefetch.dir/bench_fig11_vortex_prefetch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_vortex_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
