# Empty dependencies file for bench_fig11_vortex_prefetch.
# This may be replaced when dependencies are built.
