# Empty dependencies file for bench_fig14_pathline_prefetch.
# This may be replaced when dependencies are built.
