file(REMOVE_RECURSE
  "../bench/bench_stream_granularity"
  "../bench/bench_stream_granularity.pdb"
  "CMakeFiles/bench_stream_granularity.dir/bench_stream_granularity.cpp.o"
  "CMakeFiles/bench_stream_granularity.dir/bench_stream_granularity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stream_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
