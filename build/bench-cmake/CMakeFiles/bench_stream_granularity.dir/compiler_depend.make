# Empty compiler generated dependencies file for bench_stream_granularity.
# This may be replaced when dependencies are built.
