# Empty dependencies file for bench_loading_strategies.
# This may be replaced when dependencies are built.
