file(REMOVE_RECURSE
  "../bench/bench_loading_strategies"
  "../bench/bench_loading_strategies.pdb"
  "CMakeFiles/bench_loading_strategies.dir/bench_loading_strategies.cpp.o"
  "CMakeFiles/bench_loading_strategies.dir/bench_loading_strategies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loading_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
