file(REMOVE_RECURSE
  "../bench/bench_fig6_engine_iso"
  "../bench/bench_fig6_engine_iso.pdb"
  "CMakeFiles/bench_fig6_engine_iso.dir/bench_fig6_engine_iso.cpp.o"
  "CMakeFiles/bench_fig6_engine_iso.dir/bench_fig6_engine_iso.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_engine_iso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
