# Empty dependencies file for bench_fig6_engine_iso.
# This may be replaced when dependencies are built.
