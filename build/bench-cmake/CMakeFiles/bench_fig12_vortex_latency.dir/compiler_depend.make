# Empty compiler generated dependencies file for bench_fig12_vortex_latency.
# This may be replaced when dependencies are built.
