# Empty dependencies file for bench_fig13_pathlines.
# This may be replaced when dependencies are built.
