file(REMOVE_RECURSE
  "../bench/bench_fig13_pathlines"
  "../bench/bench_fig13_pathlines.pdb"
  "CMakeFiles/bench_fig13_pathlines.dir/bench_fig13_pathlines.cpp.o"
  "CMakeFiles/bench_fig13_pathlines.dir/bench_fig13_pathlines.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_pathlines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
