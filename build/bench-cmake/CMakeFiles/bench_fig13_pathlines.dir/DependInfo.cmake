
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig13_pathlines.cpp" "bench-cmake/CMakeFiles/bench_fig13_pathlines.dir/bench_fig13_pathlines.cpp.o" "gcc" "bench-cmake/CMakeFiles/bench_fig13_pathlines.dir/bench_fig13_pathlines.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perf/CMakeFiles/vira_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/vira_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vira_core.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/vira_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/vira_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/vira_math.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vira_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dms/CMakeFiles/vira_dms.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vira_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
