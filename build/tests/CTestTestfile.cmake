# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(util_test "/root/repo/build/tests/util_test")
set_tests_properties(util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;7;vira_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(math_test "/root/repo/build/tests/math_test")
set_tests_properties(math_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;10;vira_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;13;vira_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(grid_test "/root/repo/build/tests/grid_test")
set_tests_properties(grid_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;16;vira_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(comm_test "/root/repo/build/tests/comm_test")
set_tests_properties(comm_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;19;vira_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(dms_test "/root/repo/build/tests/dms_test")
set_tests_properties(dms_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;22;vira_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;25;vira_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(algo_test "/root/repo/build/tests/algo_test")
set_tests_properties(algo_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;28;vira_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(commands_test "/root/repo/build/tests/commands_test")
set_tests_properties(commands_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;31;vira_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(perf_test "/root/repo/build/tests/perf_test")
set_tests_properties(perf_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;34;vira_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(compression_test "/root/repo/build/tests/compression_test")
set_tests_properties(compression_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;37;vira_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(viz_test "/root/repo/build/tests/viz_test")
set_tests_properties(viz_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;40;vira_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;43;vira_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tools_test "/root/repo/build/tests/tools_test")
set_tests_properties(tools_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;46;vira_add_test;/root/repo/tests/CMakeLists.txt;0;")
