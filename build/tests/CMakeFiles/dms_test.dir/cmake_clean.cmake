file(REMOVE_RECURSE
  "CMakeFiles/dms_test.dir/dms_test.cpp.o"
  "CMakeFiles/dms_test.dir/dms_test.cpp.o.d"
  "dms_test"
  "dms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
