# Empty compiler generated dependencies file for dms_test.
# This may be replaced when dependencies are built.
