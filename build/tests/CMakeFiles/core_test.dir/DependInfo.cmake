
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/core_test.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vira_core.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/vira_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/vira_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/vira_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/dms/CMakeFiles/vira_dms.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/vira_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/vira_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vira_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
