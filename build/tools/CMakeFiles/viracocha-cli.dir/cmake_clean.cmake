file(REMOVE_RECURSE
  "CMakeFiles/viracocha-cli.dir/viracocha_cli.cpp.o"
  "CMakeFiles/viracocha-cli.dir/viracocha_cli.cpp.o.d"
  "viracocha-cli"
  "viracocha-cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viracocha-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
