# Empty compiler generated dependencies file for viracocha-cli.
# This may be replaced when dependencies are built.
