# Empty dependencies file for viracocha-server.
# This may be replaced when dependencies are built.
