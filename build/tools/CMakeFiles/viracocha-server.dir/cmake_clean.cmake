file(REMOVE_RECURSE
  "CMakeFiles/viracocha-server.dir/viracocha_server.cpp.o"
  "CMakeFiles/viracocha-server.dir/viracocha_server.cpp.o.d"
  "viracocha-server"
  "viracocha-server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viracocha-server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
