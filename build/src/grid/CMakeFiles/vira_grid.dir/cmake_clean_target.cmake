file(REMOVE_RECURSE
  "libvira_grid.a"
)
