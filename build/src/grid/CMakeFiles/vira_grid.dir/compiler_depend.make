# Empty compiler generated dependencies file for vira_grid.
# This may be replaced when dependencies are built.
