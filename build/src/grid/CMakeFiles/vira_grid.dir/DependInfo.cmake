
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/bsp_tree.cpp" "src/grid/CMakeFiles/vira_grid.dir/bsp_tree.cpp.o" "gcc" "src/grid/CMakeFiles/vira_grid.dir/bsp_tree.cpp.o.d"
  "/root/repo/src/grid/cell_locator.cpp" "src/grid/CMakeFiles/vira_grid.dir/cell_locator.cpp.o" "gcc" "src/grid/CMakeFiles/vira_grid.dir/cell_locator.cpp.o.d"
  "/root/repo/src/grid/dataset_io.cpp" "src/grid/CMakeFiles/vira_grid.dir/dataset_io.cpp.o" "gcc" "src/grid/CMakeFiles/vira_grid.dir/dataset_io.cpp.o.d"
  "/root/repo/src/grid/structured_block.cpp" "src/grid/CMakeFiles/vira_grid.dir/structured_block.cpp.o" "gcc" "src/grid/CMakeFiles/vira_grid.dir/structured_block.cpp.o.d"
  "/root/repo/src/grid/synthetic.cpp" "src/grid/CMakeFiles/vira_grid.dir/synthetic.cpp.o" "gcc" "src/grid/CMakeFiles/vira_grid.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/vira_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vira_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
