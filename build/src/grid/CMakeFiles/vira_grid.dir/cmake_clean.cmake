file(REMOVE_RECURSE
  "CMakeFiles/vira_grid.dir/bsp_tree.cpp.o"
  "CMakeFiles/vira_grid.dir/bsp_tree.cpp.o.d"
  "CMakeFiles/vira_grid.dir/cell_locator.cpp.o"
  "CMakeFiles/vira_grid.dir/cell_locator.cpp.o.d"
  "CMakeFiles/vira_grid.dir/dataset_io.cpp.o"
  "CMakeFiles/vira_grid.dir/dataset_io.cpp.o.d"
  "CMakeFiles/vira_grid.dir/structured_block.cpp.o"
  "CMakeFiles/vira_grid.dir/structured_block.cpp.o.d"
  "CMakeFiles/vira_grid.dir/synthetic.cpp.o"
  "CMakeFiles/vira_grid.dir/synthetic.cpp.o.d"
  "libvira_grid.a"
  "libvira_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vira_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
