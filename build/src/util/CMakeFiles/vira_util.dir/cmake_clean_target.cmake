file(REMOVE_RECURSE
  "libvira_util.a"
)
