file(REMOVE_RECURSE
  "CMakeFiles/vira_util.dir/byte_buffer.cpp.o"
  "CMakeFiles/vira_util.dir/byte_buffer.cpp.o.d"
  "CMakeFiles/vira_util.dir/compression.cpp.o"
  "CMakeFiles/vira_util.dir/compression.cpp.o.d"
  "CMakeFiles/vira_util.dir/log.cpp.o"
  "CMakeFiles/vira_util.dir/log.cpp.o.d"
  "CMakeFiles/vira_util.dir/param_list.cpp.o"
  "CMakeFiles/vira_util.dir/param_list.cpp.o.d"
  "CMakeFiles/vira_util.dir/stats.cpp.o"
  "CMakeFiles/vira_util.dir/stats.cpp.o.d"
  "CMakeFiles/vira_util.dir/string_util.cpp.o"
  "CMakeFiles/vira_util.dir/string_util.cpp.o.d"
  "CMakeFiles/vira_util.dir/timer.cpp.o"
  "CMakeFiles/vira_util.dir/timer.cpp.o.d"
  "libvira_util.a"
  "libvira_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vira_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
