# Empty compiler generated dependencies file for vira_util.
# This may be replaced when dependencies are built.
