
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/byte_buffer.cpp" "src/util/CMakeFiles/vira_util.dir/byte_buffer.cpp.o" "gcc" "src/util/CMakeFiles/vira_util.dir/byte_buffer.cpp.o.d"
  "/root/repo/src/util/compression.cpp" "src/util/CMakeFiles/vira_util.dir/compression.cpp.o" "gcc" "src/util/CMakeFiles/vira_util.dir/compression.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/util/CMakeFiles/vira_util.dir/log.cpp.o" "gcc" "src/util/CMakeFiles/vira_util.dir/log.cpp.o.d"
  "/root/repo/src/util/param_list.cpp" "src/util/CMakeFiles/vira_util.dir/param_list.cpp.o" "gcc" "src/util/CMakeFiles/vira_util.dir/param_list.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/util/CMakeFiles/vira_util.dir/stats.cpp.o" "gcc" "src/util/CMakeFiles/vira_util.dir/stats.cpp.o.d"
  "/root/repo/src/util/string_util.cpp" "src/util/CMakeFiles/vira_util.dir/string_util.cpp.o" "gcc" "src/util/CMakeFiles/vira_util.dir/string_util.cpp.o.d"
  "/root/repo/src/util/timer.cpp" "src/util/CMakeFiles/vira_util.dir/timer.cpp.o" "gcc" "src/util/CMakeFiles/vira_util.dir/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
