file(REMOVE_RECURSE
  "libvira_perf.a"
)
