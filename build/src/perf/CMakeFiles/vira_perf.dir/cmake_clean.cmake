file(REMOVE_RECURSE
  "CMakeFiles/vira_perf.dir/profile.cpp.o"
  "CMakeFiles/vira_perf.dir/profile.cpp.o.d"
  "CMakeFiles/vira_perf.dir/replay.cpp.o"
  "CMakeFiles/vira_perf.dir/replay.cpp.o.d"
  "CMakeFiles/vira_perf.dir/report.cpp.o"
  "CMakeFiles/vira_perf.dir/report.cpp.o.d"
  "CMakeFiles/vira_perf.dir/testbed.cpp.o"
  "CMakeFiles/vira_perf.dir/testbed.cpp.o.d"
  "libvira_perf.a"
  "libvira_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vira_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
