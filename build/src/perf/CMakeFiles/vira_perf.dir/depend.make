# Empty dependencies file for vira_perf.
# This may be replaced when dependencies are built.
