# Empty compiler generated dependencies file for vira_comm.
# This may be replaced when dependencies are built.
