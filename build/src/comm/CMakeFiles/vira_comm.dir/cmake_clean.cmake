file(REMOVE_RECURSE
  "CMakeFiles/vira_comm.dir/client_link.cpp.o"
  "CMakeFiles/vira_comm.dir/client_link.cpp.o.d"
  "CMakeFiles/vira_comm.dir/communicator.cpp.o"
  "CMakeFiles/vira_comm.dir/communicator.cpp.o.d"
  "CMakeFiles/vira_comm.dir/transport.cpp.o"
  "CMakeFiles/vira_comm.dir/transport.cpp.o.d"
  "libvira_comm.a"
  "libvira_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vira_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
