file(REMOVE_RECURSE
  "libvira_comm.a"
)
