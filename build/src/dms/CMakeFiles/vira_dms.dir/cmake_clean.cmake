file(REMOVE_RECURSE
  "CMakeFiles/vira_dms.dir/block_cache.cpp.o"
  "CMakeFiles/vira_dms.dir/block_cache.cpp.o.d"
  "CMakeFiles/vira_dms.dir/cache_policy.cpp.o"
  "CMakeFiles/vira_dms.dir/cache_policy.cpp.o.d"
  "CMakeFiles/vira_dms.dir/data_proxy.cpp.o"
  "CMakeFiles/vira_dms.dir/data_proxy.cpp.o.d"
  "CMakeFiles/vira_dms.dir/data_server.cpp.o"
  "CMakeFiles/vira_dms.dir/data_server.cpp.o.d"
  "CMakeFiles/vira_dms.dir/loading.cpp.o"
  "CMakeFiles/vira_dms.dir/loading.cpp.o.d"
  "CMakeFiles/vira_dms.dir/name_service.cpp.o"
  "CMakeFiles/vira_dms.dir/name_service.cpp.o.d"
  "CMakeFiles/vira_dms.dir/prefetcher.cpp.o"
  "CMakeFiles/vira_dms.dir/prefetcher.cpp.o.d"
  "CMakeFiles/vira_dms.dir/two_tier_cache.cpp.o"
  "CMakeFiles/vira_dms.dir/two_tier_cache.cpp.o.d"
  "libvira_dms.a"
  "libvira_dms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vira_dms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
