# Empty compiler generated dependencies file for vira_dms.
# This may be replaced when dependencies are built.
