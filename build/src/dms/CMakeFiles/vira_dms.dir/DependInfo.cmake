
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dms/block_cache.cpp" "src/dms/CMakeFiles/vira_dms.dir/block_cache.cpp.o" "gcc" "src/dms/CMakeFiles/vira_dms.dir/block_cache.cpp.o.d"
  "/root/repo/src/dms/cache_policy.cpp" "src/dms/CMakeFiles/vira_dms.dir/cache_policy.cpp.o" "gcc" "src/dms/CMakeFiles/vira_dms.dir/cache_policy.cpp.o.d"
  "/root/repo/src/dms/data_proxy.cpp" "src/dms/CMakeFiles/vira_dms.dir/data_proxy.cpp.o" "gcc" "src/dms/CMakeFiles/vira_dms.dir/data_proxy.cpp.o.d"
  "/root/repo/src/dms/data_server.cpp" "src/dms/CMakeFiles/vira_dms.dir/data_server.cpp.o" "gcc" "src/dms/CMakeFiles/vira_dms.dir/data_server.cpp.o.d"
  "/root/repo/src/dms/loading.cpp" "src/dms/CMakeFiles/vira_dms.dir/loading.cpp.o" "gcc" "src/dms/CMakeFiles/vira_dms.dir/loading.cpp.o.d"
  "/root/repo/src/dms/name_service.cpp" "src/dms/CMakeFiles/vira_dms.dir/name_service.cpp.o" "gcc" "src/dms/CMakeFiles/vira_dms.dir/name_service.cpp.o.d"
  "/root/repo/src/dms/prefetcher.cpp" "src/dms/CMakeFiles/vira_dms.dir/prefetcher.cpp.o" "gcc" "src/dms/CMakeFiles/vira_dms.dir/prefetcher.cpp.o.d"
  "/root/repo/src/dms/two_tier_cache.cpp" "src/dms/CMakeFiles/vira_dms.dir/two_tier_cache.cpp.o" "gcc" "src/dms/CMakeFiles/vira_dms.dir/two_tier_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vira_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
