file(REMOVE_RECURSE
  "libvira_dms.a"
)
