file(REMOVE_RECURSE
  "libvira_math.a"
)
