# Empty compiler generated dependencies file for vira_math.
# This may be replaced when dependencies are built.
