file(REMOVE_RECURSE
  "CMakeFiles/vira_math.dir/eigen_sym3.cpp.o"
  "CMakeFiles/vira_math.dir/eigen_sym3.cpp.o.d"
  "libvira_math.a"
  "libvira_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vira_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
