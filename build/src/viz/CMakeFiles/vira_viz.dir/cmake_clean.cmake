file(REMOVE_RECURSE
  "CMakeFiles/vira_viz.dir/session.cpp.o"
  "CMakeFiles/vira_viz.dir/session.cpp.o.d"
  "libvira_viz.a"
  "libvira_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vira_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
