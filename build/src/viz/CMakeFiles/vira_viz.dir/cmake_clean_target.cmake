file(REMOVE_RECURSE
  "libvira_viz.a"
)
