# Empty dependencies file for vira_viz.
# This may be replaced when dependencies are built.
