file(REMOVE_RECURSE
  "CMakeFiles/vira_core.dir/backend.cpp.o"
  "CMakeFiles/vira_core.dir/backend.cpp.o.d"
  "CMakeFiles/vira_core.dir/command.cpp.o"
  "CMakeFiles/vira_core.dir/command.cpp.o.d"
  "CMakeFiles/vira_core.dir/remote_server_api.cpp.o"
  "CMakeFiles/vira_core.dir/remote_server_api.cpp.o.d"
  "CMakeFiles/vira_core.dir/scheduler.cpp.o"
  "CMakeFiles/vira_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/vira_core.dir/vmb_data_source.cpp.o"
  "CMakeFiles/vira_core.dir/vmb_data_source.cpp.o.d"
  "CMakeFiles/vira_core.dir/worker.cpp.o"
  "CMakeFiles/vira_core.dir/worker.cpp.o.d"
  "libvira_core.a"
  "libvira_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vira_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
