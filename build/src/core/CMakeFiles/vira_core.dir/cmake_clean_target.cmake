file(REMOVE_RECURSE
  "libvira_core.a"
)
