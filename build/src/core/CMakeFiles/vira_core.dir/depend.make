# Empty dependencies file for vira_core.
# This may be replaced when dependencies are built.
