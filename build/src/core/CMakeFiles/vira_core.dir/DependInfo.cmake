
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/backend.cpp" "src/core/CMakeFiles/vira_core.dir/backend.cpp.o" "gcc" "src/core/CMakeFiles/vira_core.dir/backend.cpp.o.d"
  "/root/repo/src/core/command.cpp" "src/core/CMakeFiles/vira_core.dir/command.cpp.o" "gcc" "src/core/CMakeFiles/vira_core.dir/command.cpp.o.d"
  "/root/repo/src/core/remote_server_api.cpp" "src/core/CMakeFiles/vira_core.dir/remote_server_api.cpp.o" "gcc" "src/core/CMakeFiles/vira_core.dir/remote_server_api.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/vira_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/vira_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/vmb_data_source.cpp" "src/core/CMakeFiles/vira_core.dir/vmb_data_source.cpp.o" "gcc" "src/core/CMakeFiles/vira_core.dir/vmb_data_source.cpp.o.d"
  "/root/repo/src/core/worker.cpp" "src/core/CMakeFiles/vira_core.dir/worker.cpp.o" "gcc" "src/core/CMakeFiles/vira_core.dir/worker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/comm/CMakeFiles/vira_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/dms/CMakeFiles/vira_dms.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/vira_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/vira_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vira_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
