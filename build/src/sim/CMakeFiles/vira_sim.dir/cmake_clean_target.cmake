file(REMOVE_RECURSE
  "libvira_sim.a"
)
