file(REMOVE_RECURSE
  "CMakeFiles/vira_sim.dir/engine.cpp.o"
  "CMakeFiles/vira_sim.dir/engine.cpp.o.d"
  "libvira_sim.a"
  "libvira_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vira_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
