# Empty dependencies file for vira_sim.
# This may be replaced when dependencies are built.
