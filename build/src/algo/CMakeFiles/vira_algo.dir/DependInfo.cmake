
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/block_sampler.cpp" "src/algo/CMakeFiles/vira_algo.dir/block_sampler.cpp.o" "gcc" "src/algo/CMakeFiles/vira_algo.dir/block_sampler.cpp.o.d"
  "/root/repo/src/algo/cfd_command.cpp" "src/algo/CMakeFiles/vira_algo.dir/cfd_command.cpp.o" "gcc" "src/algo/CMakeFiles/vira_algo.dir/cfd_command.cpp.o.d"
  "/root/repo/src/algo/extra_commands.cpp" "src/algo/CMakeFiles/vira_algo.dir/extra_commands.cpp.o" "gcc" "src/algo/CMakeFiles/vira_algo.dir/extra_commands.cpp.o.d"
  "/root/repo/src/algo/geometry.cpp" "src/algo/CMakeFiles/vira_algo.dir/geometry.cpp.o" "gcc" "src/algo/CMakeFiles/vira_algo.dir/geometry.cpp.o.d"
  "/root/repo/src/algo/integrator.cpp" "src/algo/CMakeFiles/vira_algo.dir/integrator.cpp.o" "gcc" "src/algo/CMakeFiles/vira_algo.dir/integrator.cpp.o.d"
  "/root/repo/src/algo/iso_commands.cpp" "src/algo/CMakeFiles/vira_algo.dir/iso_commands.cpp.o" "gcc" "src/algo/CMakeFiles/vira_algo.dir/iso_commands.cpp.o.d"
  "/root/repo/src/algo/isosurface.cpp" "src/algo/CMakeFiles/vira_algo.dir/isosurface.cpp.o" "gcc" "src/algo/CMakeFiles/vira_algo.dir/isosurface.cpp.o.d"
  "/root/repo/src/algo/lambda2.cpp" "src/algo/CMakeFiles/vira_algo.dir/lambda2.cpp.o" "gcc" "src/algo/CMakeFiles/vira_algo.dir/lambda2.cpp.o.d"
  "/root/repo/src/algo/pathline_commands.cpp" "src/algo/CMakeFiles/vira_algo.dir/pathline_commands.cpp.o" "gcc" "src/algo/CMakeFiles/vira_algo.dir/pathline_commands.cpp.o.d"
  "/root/repo/src/algo/query_commands.cpp" "src/algo/CMakeFiles/vira_algo.dir/query_commands.cpp.o" "gcc" "src/algo/CMakeFiles/vira_algo.dir/query_commands.cpp.o.d"
  "/root/repo/src/algo/register.cpp" "src/algo/CMakeFiles/vira_algo.dir/register.cpp.o" "gcc" "src/algo/CMakeFiles/vira_algo.dir/register.cpp.o.d"
  "/root/repo/src/algo/streakline_commands.cpp" "src/algo/CMakeFiles/vira_algo.dir/streakline_commands.cpp.o" "gcc" "src/algo/CMakeFiles/vira_algo.dir/streakline_commands.cpp.o.d"
  "/root/repo/src/algo/vortex_commands.cpp" "src/algo/CMakeFiles/vira_algo.dir/vortex_commands.cpp.o" "gcc" "src/algo/CMakeFiles/vira_algo.dir/vortex_commands.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vira_core.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/vira_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/vira_math.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/vira_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/dms/CMakeFiles/vira_dms.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vira_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
