file(REMOVE_RECURSE
  "CMakeFiles/vira_algo.dir/block_sampler.cpp.o"
  "CMakeFiles/vira_algo.dir/block_sampler.cpp.o.d"
  "CMakeFiles/vira_algo.dir/cfd_command.cpp.o"
  "CMakeFiles/vira_algo.dir/cfd_command.cpp.o.d"
  "CMakeFiles/vira_algo.dir/extra_commands.cpp.o"
  "CMakeFiles/vira_algo.dir/extra_commands.cpp.o.d"
  "CMakeFiles/vira_algo.dir/geometry.cpp.o"
  "CMakeFiles/vira_algo.dir/geometry.cpp.o.d"
  "CMakeFiles/vira_algo.dir/integrator.cpp.o"
  "CMakeFiles/vira_algo.dir/integrator.cpp.o.d"
  "CMakeFiles/vira_algo.dir/iso_commands.cpp.o"
  "CMakeFiles/vira_algo.dir/iso_commands.cpp.o.d"
  "CMakeFiles/vira_algo.dir/isosurface.cpp.o"
  "CMakeFiles/vira_algo.dir/isosurface.cpp.o.d"
  "CMakeFiles/vira_algo.dir/lambda2.cpp.o"
  "CMakeFiles/vira_algo.dir/lambda2.cpp.o.d"
  "CMakeFiles/vira_algo.dir/pathline_commands.cpp.o"
  "CMakeFiles/vira_algo.dir/pathline_commands.cpp.o.d"
  "CMakeFiles/vira_algo.dir/query_commands.cpp.o"
  "CMakeFiles/vira_algo.dir/query_commands.cpp.o.d"
  "CMakeFiles/vira_algo.dir/register.cpp.o"
  "CMakeFiles/vira_algo.dir/register.cpp.o.d"
  "CMakeFiles/vira_algo.dir/streakline_commands.cpp.o"
  "CMakeFiles/vira_algo.dir/streakline_commands.cpp.o.d"
  "CMakeFiles/vira_algo.dir/vortex_commands.cpp.o"
  "CMakeFiles/vira_algo.dir/vortex_commands.cpp.o.d"
  "libvira_algo.a"
  "libvira_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vira_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
