file(REMOVE_RECURSE
  "libvira_algo.a"
)
