# Empty dependencies file for vira_algo.
# This may be replaced when dependencies are built.
