// Deterministic simulation tests (DESIGN.md "Testing strategy"): the real
// scheduler/worker/DMS stack under sim::VirtualClock, driven by seeded
// fault schedules, checked by invariant oracles, minimized by the shrinker.
//
// Everything here is bit-deterministic: the same seed always produces the
// same trajectory hash, so there are no timing assumptions to flake on.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "sim/dst_clock.hpp"
#include "sim/dst_fuzz.hpp"
#include "sim/dst_harness.hpp"
#include "util/log.hpp"

namespace vira {
namespace {

// Fault scenarios log rivers of intentional warnings/errors; keep the test
// output readable.
struct QuietLogs {
  QuietLogs() { util::Logger::instance().set_level(util::LogLevel::kError); }
} quiet_logs;

// --- VirtualClock unit behavior ---------------------------------------------

TEST(VirtualClockTest, SleepAdvancesVirtualTimeExactly) {
  sim::VirtualClock clock;
  clock.register_driver();
  EXPECT_EQ(clock.now_ns(), 0);
  clock.sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(clock.now_ns(), 5'000'000);
  clock.sleep_for(std::chrono::microseconds(250));
  EXPECT_EQ(clock.now_ns(), 5'250'000);
  clock.unregister_driver();
}

TEST(VirtualClockTest, TimersFireInDueThenRegistrationOrder) {
  sim::VirtualClock clock;
  clock.register_driver();
  std::vector<int> order;
  {
    auto lock = clock.acquire();
    // Registered out of due order; two share a due instant.
    clock.add_timer_locked(3'000'000, [&] { order.push_back(3); });
    clock.add_timer_locked(1'000'000, [&] { order.push_back(1); });
    clock.add_timer_locked(3'000'000, [&] { order.push_back(4); });
    clock.add_timer_locked(2'000'000, [&] { order.push_back(2); });
  }
  // Sleeping past every due time forces the machine to advance through the
  // timers; they must fire in (due, registration) order, and all of them
  // before the driver's own deadline resumes it.
  clock.sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(clock.now_ns(), 10'000'000);
  clock.unregister_driver();
}

// --- Scenario encoding -------------------------------------------------------

TEST(DstScenarioTest, StringRoundtripIsIdentity) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL, 9001ULL}) {
    const sim::Scenario scenario = sim::generate_scenario(seed);
    const std::string text = scenario.to_string();
    const auto parsed = sim::Scenario::parse(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(parsed->to_string(), text);
  }
}

// --- Determinism -------------------------------------------------------------

TEST(DstDeterminismTest, SameSeedReplaysIdenticalTrajectory) {
  for (const std::uint64_t seed : {1ULL, 3ULL, 11ULL, 29ULL, 64ULL}) {
    const sim::Scenario scenario = sim::generate_scenario(seed);
    const auto first = sim::run_scenario(scenario);
    const auto second = sim::run_scenario(scenario);
    EXPECT_EQ(first.trajectory_hash, second.trajectory_hash) << "seed " << seed;
    EXPECT_EQ(first.transport_events, second.transport_events) << "seed " << seed;
    EXPECT_EQ(first.context_switches, second.context_switches) << "seed " << seed;
    EXPECT_EQ(first.virtual_end_ns, second.virtual_end_ns) << "seed " << seed;
    EXPECT_EQ(first.completed, second.completed) << "seed " << seed;
  }
}

TEST(DstDeterminismTest, DifferentSeedsDiverge) {
  // Not a hard guarantee for any pair, but across three seeds at least two
  // distinct trajectories is the absolute minimum sanity bar.
  const auto a = sim::run_scenario(sim::generate_scenario(5));
  const auto b = sim::run_scenario(sim::generate_scenario(6));
  const auto c = sim::run_scenario(sim::generate_scenario(8));
  EXPECT_TRUE(a.trajectory_hash != b.trajectory_hash ||
              b.trajectory_hash != c.trajectory_hash);
}

// --- Oracles over a seed sweep ----------------------------------------------

TEST(DstOracleTest, FuzzSweepPassesAllOracles) {
  sim::FuzzOptions options;
  options.first_seed = 1;
  options.count = 40;
  options.verify_every = 10;
  options.shrink_failures = true;
  const auto report = sim::run_fuzz(options);
  EXPECT_EQ(report.scenarios_run, 40);
  EXPECT_EQ(report.determinism_checks, 4);
  for (const auto& failure : report.failures) {
    ADD_FAILURE() << "seed " << failure.seed << " violated: "
                  << (failure.violations.empty() ? "?" : failure.violations.front())
                  << "\n  scenario: " << failure.scenario
                  << (failure.shrunk.empty() ? "" : "\n  shrunk: " + failure.shrunk);
  }
  for (const auto seed : report.nondeterministic_seeds) {
    ADD_FAILURE() << "seed " << seed << " replayed with a different trajectory hash";
  }
}

// --- Targeted fault behavior -------------------------------------------------

TEST(DstFaultTest, CommandFailureSurfacesErrorToClient) {
  sim::Scenario scenario;
  scenario.seed = 77;
  scenario.workers = 2;
  sim::DstRequest request;
  request.width = 2;
  request.partials = 2;
  request.fail_rank = 1;  // rank 1 of the group throws mid-command
  scenario.requests.push_back(request);
  const auto result = sim::run_scenario(scenario);
  EXPECT_TRUE(result.ok()) << (result.violations.empty() ? "" : result.violations.front());
  EXPECT_EQ(result.completed, 1);
  EXPECT_EQ(result.succeeded, 0);
  EXPECT_EQ(result.failed, 1);
}

TEST(DstFaultTest, WorkerKillIsRecoveredByRetry) {
  sim::Scenario scenario;
  scenario.seed = 1234;
  scenario.workers = 3;
  scenario.request_timeout_ms = 400;
  scenario.kills.push_back({20, 1});  // kill rank 1 at virtual 20ms
  sim::DstRequest request;
  request.width = 2;
  request.partials = 3;
  request.item_sleep_us = 20000;  // long enough that the kill lands mid-attempt
  request.dms_items = 2;
  scenario.requests.push_back(request);
  const auto result = sim::run_scenario(scenario);
  EXPECT_TRUE(result.ok()) << (result.violations.empty() ? "" : result.violations.front());
  EXPECT_EQ(result.ranks_killed, 1u);
  EXPECT_EQ(result.completed, 1);
  // Two workers survive and the width-2 request is retried onto them.
  EXPECT_EQ(result.succeeded, 1);
  EXPECT_EQ(result.degraded, 1);
}

// --- Pipelined executor under DST --------------------------------------------

TEST(DstPipelineTest, AsyncExecutorIsDeterministicAndPassesOracles) {
  // Pool threads run under the virtual clock (announced participants), so
  // the overlapped load path must replay bit-identically and satisfy the
  // async accounting oracle (all submissions settle, peak in-flight bytes
  // bounded by window + pool threads).
  sim::Scenario scenario;
  scenario.seed = 4242;
  scenario.workers = 3;
  scenario.pipeline_threads = 2;
  scenario.pipeline_window = 3;
  sim::DstRequest request;
  request.width = 3;
  request.partials = 3;
  request.dms_items = 4;
  request.item_sleep_us = 500;
  scenario.requests.push_back(request);

  const auto first = sim::run_scenario(scenario);
  EXPECT_TRUE(first.ok()) << (first.violations.empty() ? "" : first.violations.front());
  EXPECT_EQ(first.succeeded, 1);

  const auto second = sim::run_scenario(scenario);
  EXPECT_EQ(first.trajectory_hash, second.trajectory_hash);
  EXPECT_EQ(first.virtual_end_ns, second.virtual_end_ns);
  EXPECT_EQ(first.context_switches, second.context_switches);
}

TEST(DstPipelineTest, KillCancelsQueuedLoadsWithBalancedAccounting) {
  // A worker dies while its pipeline has loads queued and in flight. The
  // async oracle then requires every submitted load to settle anyway —
  // queued ones via cancellation (the dropped callable releases its
  // in-flight token), running ones by completing — and the retry on the
  // survivors must still succeed.
  sim::Scenario scenario;
  scenario.seed = 9001;
  scenario.workers = 3;
  scenario.request_timeout_ms = 400;
  scenario.pipeline_threads = 1;
  scenario.pipeline_window = 4;
  scenario.kills.push_back({20, 1});
  sim::DstRequest request;
  request.width = 2;
  request.partials = 3;
  request.dms_items = 3;
  request.item_sleep_us = 20000;  // the kill lands mid-attempt
  scenario.requests.push_back(request);

  const auto result = sim::run_scenario(scenario);
  EXPECT_TRUE(result.ok()) << (result.violations.empty() ? "" : result.violations.front());
  EXPECT_EQ(result.ranks_killed, 1u);
  EXPECT_EQ(result.completed, 1);
  EXPECT_EQ(result.succeeded, 1);
  EXPECT_EQ(result.degraded, 1);
}

TEST(DstPipelineTest, PipelineKnobsRoundTripThroughScenarioString) {
  sim::Scenario scenario;
  scenario.pipeline_threads = 2;
  scenario.pipeline_window = 7;
  scenario.requests.push_back(sim::DstRequest{});
  const auto reparsed = sim::Scenario::parse(scenario.to_string());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->pipeline_threads, 2);
  EXPECT_EQ(reparsed->pipeline_window, 7);
  EXPECT_EQ(reparsed->to_string(), scenario.to_string());
}

// --- Result cache under DST --------------------------------------------------
// Virtual-time coverage of core::ResultCache behind the scheduler: repeat
// queries replay without a work group, dataset-version bumps invalidate,
// and a cancel racing a cache hit still answers exactly once.

TEST(DstResultCacheTest, RepeatQueryIsServedFromCacheWithoutRecompute) {
  sim::Scenario scenario;
  scenario.seed = 41001;
  scenario.workers = 2;
  scenario.result_cache_kb = 64;
  sim::DstRequest original;
  original.partials = 2;
  original.dms_items = 2;
  original.item_sleep_us = 20000;  // >= 80 ms of virtual compute per run
  scenario.requests.push_back(original);
  sim::DstRequest repeat = original;
  repeat.submit_at_ms = 300;  // well after the original completed
  scenario.requests.push_back(repeat);

  const auto result = sim::run_scenario(scenario);
  EXPECT_TRUE(result.ok()) << (result.violations.empty() ? "" : result.violations.front());
  EXPECT_EQ(result.completed, 2);
  EXPECT_EQ(result.cache_hits, 1);
  const auto& first = result.terminals.at(1);
  const auto& second = result.terminals.at(2);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_TRUE(second.success);
  EXPECT_EQ(second.data_version, 1u);
  // The replay skips the compute entirely: its virtual latency is polling
  // overhead, nowhere near the original's sleep-driven runtime.
  const std::int64_t original_latency = first.at_ns;
  const std::int64_t replay_latency = second.at_ns - 300'000'000;
  EXPECT_GE(original_latency, 40'000'000);
  EXPECT_LT(replay_latency, 20'000'000);
}

TEST(DstResultCacheTest, VersionBumpInvalidatesBeforeTheRepeat) {
  sim::Scenario scenario;
  scenario.seed = 41002;
  scenario.workers = 2;
  scenario.result_cache_kb = 64;
  scenario.bumps.push_back(150);  // after the original, before the repeat
  sim::DstRequest original;
  original.partials = 2;
  original.dms_items = 1;
  original.item_sleep_us = 5000;
  scenario.requests.push_back(original);
  sim::DstRequest repeat = original;
  repeat.submit_at_ms = 300;
  scenario.requests.push_back(repeat);

  const auto result = sim::run_scenario(scenario);
  EXPECT_TRUE(result.ok()) << (result.violations.empty() ? "" : result.violations.front());
  EXPECT_EQ(result.completed, 2);
  EXPECT_EQ(result.cache_hits, 0) << "a bumped dataset version must not replay stale results";
  EXPECT_EQ(result.terminals.at(1).data_version, 1u);
  EXPECT_EQ(result.terminals.at(2).data_version, 2u);
}

TEST(DstResultCacheTest, CancelRacingACacheHitAnswersExactlyOnce) {
  // Twin of DstQosTest.QueuedCancelAnswersWithinVirtualSecond for the hit
  // path: the cancel lands right as the repeat is being served from the
  // cache. Whatever the interleaving resolves to — hit already streamed
  // (cancel is a no-op) or cancel got there first (request fails from the
  // queue) — the terminal-answer and replay-identical oracles must hold.
  sim::Scenario scenario;
  scenario.seed = 41003;
  scenario.workers = 1;
  scenario.result_cache_kb = 64;
  sim::DstRequest original;
  original.partials = 2;
  original.item_sleep_us = 10000;
  scenario.requests.push_back(original);
  sim::DstRequest repeat = original;
  repeat.submit_at_ms = 200;
  repeat.cancel_at_ms = 200;  // same tick: maximally racy
  scenario.requests.push_back(repeat);

  const auto result = sim::run_scenario(scenario);
  EXPECT_TRUE(result.ok()) << (result.violations.empty() ? "" : result.violations.front());
  EXPECT_EQ(result.completed, 2);
  ASSERT_EQ(result.terminals.count(2), 1u);
  const auto& repeat_terminal = result.terminals.at(2);
  // Either outcome is legal, but a served hit must be a clean success and a
  // cancelled request must be a clean failure — never a hybrid.
  if (repeat_terminal.cache_hit) {
    EXPECT_TRUE(repeat_terminal.success);
  }
}

TEST(DstResultCacheTest, CacheKnobsRoundTripThroughScenarioString) {
  sim::Scenario scenario;
  scenario.result_cache_kb = 48;
  scenario.bumps = {120, 450};
  scenario.requests.push_back(sim::DstRequest{});
  const auto reparsed = sim::Scenario::parse(scenario.to_string());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->result_cache_kb, 48);
  EXPECT_EQ(reparsed->bumps, (std::vector<int>{120, 450}));
  EXPECT_EQ(reparsed->to_string(), scenario.to_string());
}

// --- QoS scheduling under DST ------------------------------------------------
// Virtual-time twins of the SchedulerQos cases in core_test.cpp: the same
// behaviors, but with exact (deterministic) completion times to assert on.

TEST(DstQosTest, QueuedCancelAnswersWithinVirtualSecond) {
  // One worker, a 2-virtual-second blocker, and a queued request cancelled
  // 10 ms after submission. The cancel must answer from the queue — the
  // acceptance bound is < 1 s of virtual time, nowhere near the blocker.
  sim::Scenario scenario;
  scenario.seed = 31001;
  scenario.workers = 1;
  sim::DstRequest blocker;
  blocker.width = 1;
  blocker.partials = 4;
  blocker.item_sleep_us = 500000;  // 4 x 0.5 s = 2 s virtual
  scenario.requests.push_back(blocker);
  sim::DstRequest cancelled;
  cancelled.width = 1;
  cancelled.partials = 1;
  cancelled.submit_at_ms = 10;
  cancelled.cancel_at_ms = 20;
  scenario.requests.push_back(cancelled);

  const auto result = sim::run_scenario(scenario);
  EXPECT_TRUE(result.ok()) << (result.violations.empty() ? "" : result.violations.front());
  EXPECT_EQ(result.completed, 2);
  EXPECT_EQ(result.failed, 1);  // the cancelled request answers with an error
  const auto& cancelled_terminal = result.terminals.at(2);
  const auto& blocker_terminal = result.terminals.at(1);
  EXPECT_FALSE(cancelled_terminal.success);
  EXPECT_LT(cancelled_terminal.at_ns, 1'000'000'000) << "cancel rode out the blocker";
  EXPECT_LT(cancelled_terminal.at_ns, blocker_terminal.at_ns);
}

TEST(DstQosTest, FairShareBeatsFifoForNarrowClient) {
  // Client 0 streams three wide requests; client 1 submits one narrow one
  // just after. Same workload under both disciplines: fair share must
  // answer the narrow client strictly earlier than the seed FIFO, and the
  // molding that makes room must be recorded in the stats.
  sim::Scenario scenario;
  scenario.seed = 31002;
  scenario.workers = 4;
  scenario.clients = 2;
  for (int i = 0; i < 3; ++i) {
    sim::DstRequest wide;
    wide.width = 4;
    wide.partials = 4;
    wide.item_sleep_us = 100000;  // ~400 ms virtual each
    wide.submit_at_ms = i;
    wide.client = 0;
    scenario.requests.push_back(wide);
  }
  sim::DstRequest narrow;
  narrow.width = 1;
  narrow.partials = 1;
  narrow.item_sleep_us = 1000;
  narrow.submit_at_ms = 5;
  narrow.client = 1;
  scenario.requests.push_back(narrow);

  scenario.qos_fair = true;
  const auto fair = sim::run_scenario(scenario);
  EXPECT_TRUE(fair.ok()) << (fair.violations.empty() ? "" : fair.violations.front());
  scenario.qos_fair = false;
  const auto fifo = sim::run_scenario(scenario);
  EXPECT_TRUE(fifo.ok()) << (fifo.violations.empty() ? "" : fifo.violations.front());

  EXPECT_LT(fair.terminals.at(4).at_ns, fifo.terminals.at(4).at_ns);
  EXPECT_GE(fair.backfills, 1u);
  EXPECT_EQ(fifo.backfills, 0u);
  bool molded = false;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    const auto& terminal = fair.terminals.at(id);
    EXPECT_TRUE(terminal.success);
    molded = molded || terminal.workers < terminal.requested_workers;
  }
  EXPECT_TRUE(molded) << "no wide request was molded below its requested width";
}

TEST(DstQosTest, AgingBoundHoldsUnderNarrowFlood) {
  // Two pinned workers leave one free; client 0's wide request heads the
  // queue (molds to the 2-worker share, cannot fit) while client 1 floods
  // narrow work. Backfilling may bypass the head only max_head_bypass
  // times; the no-starvation oracle checks the bound, and the wide request
  // must still complete once the pins drain.
  sim::Scenario scenario;
  scenario.seed = 31003;
  scenario.workers = 3;
  scenario.clients = 2;
  scenario.head_bypass = 2;
  for (int client = 0; client < 2; ++client) {
    sim::DstRequest pin;
    pin.width = 1;
    pin.partials = 4;
    pin.item_sleep_us = 100000;  // ~400 ms virtual
    pin.client = client;
    scenario.requests.push_back(pin);
  }
  sim::DstRequest wide;
  wide.width = 3;
  wide.partials = 1;
  wide.item_sleep_us = 1000;
  wide.submit_at_ms = 5;
  wide.client = 0;
  scenario.requests.push_back(wide);
  for (int i = 0; i < 6; ++i) {
    sim::DstRequest flood;
    flood.width = 1;
    flood.partials = 1;
    flood.item_sleep_us = 10000;
    flood.submit_at_ms = 10 + 2 * i;
    flood.client = 1;
    scenario.requests.push_back(flood);
  }

  const auto result = sim::run_scenario(scenario);
  EXPECT_TRUE(result.ok()) << (result.violations.empty() ? "" : result.violations.front());
  EXPECT_EQ(result.completed, static_cast<int>(scenario.requests.size()));
  EXPECT_EQ(result.succeeded, static_cast<int>(scenario.requests.size()));
  EXPECT_GE(result.backfills, 1u);
  EXPECT_LE(result.max_head_bypass_seen, scenario.head_bypass);
  EXPECT_TRUE(result.terminals.at(3).success);
}

TEST(DstQosTest, AdmissionRejectsBeyondQueueBound) {
  // Per-client bound of one queued request: behind the blocker, the first
  // submission queues and the next two are refused with kTagRejected —
  // which the terminal-answer and rejection-integrity oracles then audit.
  sim::Scenario scenario;
  scenario.seed = 31004;
  scenario.workers = 1;
  scenario.max_queue = 1;
  sim::DstRequest blocker;
  blocker.width = 1;
  blocker.partials = 4;
  blocker.item_sleep_us = 100000;
  scenario.requests.push_back(blocker);
  for (int i = 0; i < 3; ++i) {
    sim::DstRequest burst;
    burst.width = 1;
    burst.partials = 1;
    burst.submit_at_ms = 10 + 2 * i;
    scenario.requests.push_back(burst);
  }

  const auto result = sim::run_scenario(scenario);
  EXPECT_TRUE(result.ok()) << (result.violations.empty() ? "" : result.violations.front());
  EXPECT_EQ(result.rejected, 2);
  EXPECT_EQ(result.completed, 2);
  EXPECT_TRUE(result.terminals.at(1).success);
  EXPECT_TRUE(result.terminals.at(2).success);
  EXPECT_TRUE(result.terminals.at(3).rejected);
  EXPECT_TRUE(result.terminals.at(4).rejected);
}

TEST(DstQosTest, QosKnobsRoundTripThroughScenarioString) {
  sim::Scenario scenario;
  scenario.clients = 2;
  scenario.qos_fair = false;
  scenario.max_queue = 3;
  scenario.head_bypass = 5;
  sim::DstRequest request;
  request.client = 1;
  request.cancel_at_ms = 17;
  scenario.requests.push_back(request);
  const auto reparsed = sim::Scenario::parse(scenario.to_string());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->clients, 2);
  EXPECT_FALSE(reparsed->qos_fair);
  EXPECT_EQ(reparsed->max_queue, 3);
  EXPECT_EQ(reparsed->head_bypass, 5);
  ASSERT_EQ(reparsed->requests.size(), 1u);
  EXPECT_EQ(reparsed->requests[0].client, 1);
  EXPECT_EQ(reparsed->requests[0].cancel_at_ms, 17);
  EXPECT_EQ(reparsed->to_string(), scenario.to_string());
}

// --- Sharded DMS under DST (DESIGN.md §12) -----------------------------------

TEST(DstShardTest, ShardKnobsRoundTripThroughScenarioString) {
  sim::Scenario scenario;
  scenario.shards = 3;
  scenario.repl = 2;
  scenario.requests.push_back(sim::DstRequest{});
  const auto reparsed = sim::Scenario::parse(scenario.to_string());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->shards, 3);
  EXPECT_EQ(reparsed->repl, 2);
  EXPECT_EQ(reparsed->to_string(), scenario.to_string());

  // Pre-shard scenario strings (no shards=/repl= keys) parse to the legacy
  // central path, so every recorded repro stays replayable.
  std::string legacy = scenario.to_string();
  const auto pos = legacy.find(";shards=3;repl=2");
  ASSERT_NE(pos, std::string::npos);
  legacy.erase(pos, std::string(";shards=3;repl=2").size());
  const auto old_format = sim::Scenario::parse(legacy);
  ASSERT_TRUE(old_format.has_value());
  EXPECT_EQ(old_format->shards, 1);
  EXPECT_EQ(old_format->repl, 1);
}

TEST(DstShardTest, FaultFreeShardedRunServesPeersWithoutRetries) {
  // Regression for the communicator pump-slice bug: the peer service thread
  // pumping a worker's communicator used to delay kTagExecute delivery by a
  // full 50ms transport wait — past the 40ms idle grace below — so even a
  // fault-free sharded run retried its request. Deterministic replay: any
  // reappearance of that delivery latency shows up here as degraded != 0.
  sim::Scenario scenario;
  scenario.seed = 7;
  scenario.workers = 3;
  scenario.shards = 3;
  scenario.repl = 2;
  scenario.l1_bytes = 64 * 1024;
  scenario.item_count = 16;
  scenario.idle_grace_ms = 40;
  sim::DstRequest request;
  request.partials = 2;
  request.dms_items = 8;
  scenario.requests.push_back(request);

  const auto result = sim::run_scenario(scenario);
  EXPECT_TRUE(result.ok()) << (result.violations.empty() ? "" : result.violations.front());
  EXPECT_EQ(result.completed, 1);
  EXPECT_EQ(result.succeeded, 1);
  EXPECT_EQ(result.degraded, 0) << "a fault-free sharded run must not retry";
  EXPECT_GT(result.peer_fetches, 0u);
  EXPECT_GT(result.peer_pushes, 0u);
}

TEST(DstShardTest, ReplicaFailoverCoversKilledRankWithoutDiskRespill) {
  // The acceptance scenario: R=2 over two owner shards, warm the replicas,
  // kill one owner, then run a wide request whose non-owner member must
  // fetch every block. Blocks whose primary died re-serve from the
  // surviving replica (dms.replica_promotions), and nothing respills from
  // disk after the kill — the replica-consistency oracle checks the bytes.
  sim::Scenario scenario;
  scenario.seed = 4242;
  scenario.workers = 3;
  scenario.shards = 2;  // owners are proxies 0 and 1
  scenario.repl = 2;    // every block lives on both
  scenario.l1_bytes = 64 * 1024;
  scenario.item_count = 8;
  scenario.kills.push_back({250, 1});  // rank 1 = proxy 0, after the warmup

  sim::DstRequest warmup;  // loads every block, seeding both owner replicas
  warmup.width = 1;
  warmup.partials = 2;
  warmup.dms_items = 8;
  scenario.requests.push_back(warmup);

  sim::DstRequest wide;  // after the kill: survivors are proxies 1 and 2
  wide.width = 2;
  wide.partials = 2;
  wide.dms_items = 8;
  wide.submit_at_ms = 600;
  scenario.requests.push_back(wide);

  const auto result = sim::run_scenario(scenario);
  EXPECT_TRUE(result.ok()) << (result.violations.empty() ? "" : result.violations.front());
  EXPECT_EQ(result.ranks_killed, 1u);
  EXPECT_EQ(result.completed, 2);
  EXPECT_EQ(result.succeeded, 2);
  EXPECT_GT(result.peer_pushes, 0u) << "warmup never replicated its loads";
  EXPECT_GT(result.replica_promotions, 0u)
      << "no block was ever served by a promoted surviving replica";
  EXPECT_EQ(result.peer_fallback_disk_after_kill, 0u)
      << "replica-covered blocks respilled from disk after the kill";
}

TEST(DstShardTest, KillDuringPeerFetchIsRecovered) {
  // The kill lands while the wide request is actively peer-fetching (long
  // per-item compute keeps the group mid-flight). Whatever instant the
  // fetch is interrupted at, the oracles must hold and the request must
  // still complete via retry or replica failover.
  sim::Scenario scenario;
  scenario.seed = 777;
  scenario.workers = 3;
  scenario.shards = 2;
  scenario.repl = 2;
  scenario.l1_bytes = 64 * 1024;
  scenario.item_count = 8;
  scenario.request_timeout_ms = 2000;
  scenario.kills.push_back({30, 1});  // mid-attempt
  sim::DstRequest request;
  request.width = 2;
  request.partials = 3;
  request.dms_items = 8;
  request.item_sleep_us = 20000;
  scenario.requests.push_back(request);

  const auto result = sim::run_scenario(scenario);
  EXPECT_TRUE(result.ok()) << (result.violations.empty() ? "" : result.violations.front());
  EXPECT_EQ(result.ranks_killed, 1u);
  EXPECT_EQ(result.completed, 1);
  EXPECT_EQ(result.succeeded, 1);
}

// --- Shrinker ----------------------------------------------------------------

TEST(DstShrinkTest, MinimizesInjectedExactlyOnceViolation) {
  // Deliberately broken stack: fragment dedup off on a duplicating
  // transport. The exactly-once oracle must fire, and the shrinker must
  // hand back a smaller scenario that still fires it, bit-reproducibly.
  sim::Scenario scenario = sim::generate_scenario(7);
  scenario.fragment_dedup = false;
  scenario.duplicate_rate = 0.35;
  scenario.drop_rate = 0.0;
  scenario.delay_rate = 0.0;
  scenario.request_timeout_ms = 0;
  scenario.kills.clear();
  scenario.requests.clear();
  for (int i = 0; i < 2; ++i) {
    sim::DstRequest request;
    request.partials = 4;
    request.payload = 64;
    request.submit_at_ms = i * 20;
    scenario.requests.push_back(request);
  }

  const auto broken = sim::run_scenario(scenario);
  ASSERT_FALSE(broken.ok());
  EXPECT_NE(broken.violations.front().find("exactly-once"), std::string::npos)
      << broken.violations.front();

  const auto shrunk = sim::shrink_scenario(scenario, /*max_attempts=*/100);
  EXPECT_FALSE(shrunk.failure.ok());
  EXPECT_GT(shrunk.accepted, 0);
  EXPECT_LE(shrunk.minimal.requests.size(), scenario.requests.size());

  // The minimal scenario must replay its violation bit-identically from the
  // replayable string alone.
  const auto reparsed = sim::Scenario::parse(shrunk.minimal.to_string());
  ASSERT_TRUE(reparsed.has_value());
  const auto replay = sim::run_scenario(*reparsed);
  EXPECT_FALSE(replay.ok());
  EXPECT_EQ(replay.trajectory_hash, shrunk.failure.trajectory_hash);
}

}  // namespace
}  // namespace vira
