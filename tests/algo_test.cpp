#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>

#include "algo/block_sampler.hpp"
#include "algo/cfd_command.hpp"
#include "algo/geometry.hpp"
#include "algo/integrator.hpp"
#include "algo/isosurface.hpp"
#include "algo/lambda2.hpp"
#include "algo/payloads.hpp"
#include "grid/synthetic.hpp"
#include "util/rng.hpp"

namespace va = vira::algo;
namespace vg = vira::grid;
namespace vm = vira::math;

namespace {

/// Box block [0,1]^3 with a scalar field f(p).
vg::StructuredBlock field_block(int n, const std::function<double(const vm::Vec3&)>& f,
                                const std::string& name = "s", double perturb = 0.0,
                                std::uint64_t seed = 3) {
  vg::StructuredBlock block(n, n, n);
  vira::util::Rng rng(seed);
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        vm::Vec3 p{static_cast<double>(i) / (n - 1), static_cast<double>(j) / (n - 1),
                   static_cast<double>(k) / (n - 1)};
        const bool interior = i > 0 && i < n - 1 && j > 0 && j < n - 1 && k > 0 && k < n - 1;
        if (interior && perturb > 0.0) {
          p += vm::Vec3{rng.uniform(-perturb, perturb), rng.uniform(-perturb, perturb),
                        rng.uniform(-perturb, perturb)};
        }
        block.set_point(i, j, k, p);
        block.set_scalar_at(name, i, j, k, static_cast<float>(f(p)));
      }
    }
  }
  return block;
}

/// Counts boundary edges (edges used by exactly one triangle) after
/// welding. A closed surface must have zero.
std::size_t boundary_edge_count(va::TriangleMesh mesh) {
  mesh.weld(1e-7);
  std::map<std::pair<std::uint32_t, std::uint32_t>, int> edge_use;
  for (std::size_t t = 0; t < mesh.triangle_count(); ++t) {
    const auto tri = mesh.triangle(t);
    for (int e = 0; e < 3; ++e) {
      auto a = tri[e];
      auto b = tri[(e + 1) % 3];
      if (a > b) {
        std::swap(a, b);
      }
      if (a != b) {
        ++edge_use[{a, b}];
      }
    }
  }
  std::size_t boundary = 0;
  for (const auto& [edge, count] : edge_use) {
    if (count == 1) {
      ++boundary;
    }
  }
  return boundary;
}

}  // namespace

// ---------------------------------------------------------------------------
// TriangleMesh / PolylineSet
// ---------------------------------------------------------------------------

TEST(TriangleMesh, AddAndMerge) {
  va::TriangleMesh a;
  a.add_triangle({0, 0, 0}, {1, 0, 0}, {0, 1, 0});
  va::TriangleMesh b;
  b.add_triangle({0, 0, 1}, {1, 0, 1}, {0, 1, 1});
  a.merge(b);
  EXPECT_EQ(a.triangle_count(), 2u);
  EXPECT_EQ(a.vertex_count(), 6u);
  EXPECT_NEAR(a.surface_area(), 1.0, 1e-12);
  const auto tri = a.triangle(1);
  EXPECT_EQ(tri[0], 3u);  // indices shifted by merge
}

TEST(TriangleMesh, WeldMergesDuplicates) {
  va::TriangleMesh mesh;
  // Two triangles sharing an edge, added as soup (6 vertices, 2 shared).
  mesh.add_triangle({0, 0, 0}, {1, 0, 0}, {0, 1, 0});
  mesh.add_triangle({1, 0, 0}, {1, 1, 0}, {0, 1, 0});
  const auto removed = mesh.weld();
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(mesh.vertex_count(), 4u);
  EXPECT_EQ(mesh.triangle_count(), 2u);
}

TEST(TriangleMesh, SerializationRoundTrip) {
  va::TriangleMesh mesh;
  mesh.add_triangle({0, 0, 0}, {1, 0, 0}, {0, 1, 0});
  vira::util::ByteBuffer buf;
  mesh.serialize(buf);
  const auto restored = va::TriangleMesh::deserialize(buf);
  EXPECT_EQ(restored.triangle_count(), 1u);
  EXPECT_NEAR(restored.surface_area(), 0.5, 1e-9);
}

TEST(TriangleMesh, DeserializeRejectsBadIndices) {
  vira::util::ByteBuffer buf;
  buf.write_vector<float>({0, 0, 0});             // one vertex
  buf.write_vector<float>({});                    // no normals
  buf.write_vector<std::uint32_t>({0, 1, 2});     // refers to missing vertices
  EXPECT_THROW(va::TriangleMesh::deserialize(buf), std::runtime_error);
}

TEST(TriangleMesh, DeserializeRejectsNormalCountMismatch) {
  vira::util::ByteBuffer buf;
  buf.write_vector<float>({0, 0, 0, 1, 0, 0, 0, 1, 0});  // three vertices
  buf.write_vector<float>({0, 0, 1});                    // only one normal
  buf.write_vector<std::uint32_t>({0, 1, 2});
  EXPECT_THROW(va::TriangleMesh::deserialize(buf), std::runtime_error);
}

TEST(TriangleMesh, NormalsSurviveMergeWeldAndSerialization) {
  va::TriangleMesh a;
  a.add_triangle(a.add_vertex({0, 0, 0}, {0, 0, 1}), a.add_vertex({1, 0, 0}, {0, 0, 1}),
                 a.add_vertex({0, 1, 0}, {0, 0, 1}));
  va::TriangleMesh b;
  b.add_triangle(b.add_vertex({1, 0, 0}, {0, 0, 1}), b.add_vertex({1, 1, 0}, {0, 0, 1}),
                 b.add_vertex({0, 1, 0}, {0, 0, 1}));
  a.merge(b);
  ASSERT_TRUE(a.has_normals());
  a.weld();
  EXPECT_EQ(a.vertex_count(), 4u);
  for (std::size_t v = 0; v < a.vertex_count(); ++v) {
    EXPECT_NEAR((a.normal(v) - vm::Vec3{0, 0, 1}).norm(), 0.0, 1e-6);
  }
  vira::util::ByteBuffer buf;
  a.serialize(buf);
  const auto restored = va::TriangleMesh::deserialize(buf);
  ASSERT_TRUE(restored.has_normals());
  EXPECT_NEAR(restored.normal(0).z, 1.0, 1e-6);
}

TEST(TriangleMesh, MergeRejectsMixedNormalPresence) {
  va::TriangleMesh with;
  with.add_triangle(with.add_vertex({0, 0, 0}, {0, 0, 1}), with.add_vertex({1, 0, 0}, {0, 0, 1}),
                    with.add_vertex({0, 1, 0}, {0, 0, 1}));
  va::TriangleMesh without;
  without.add_triangle({0, 0, 1}, {1, 0, 1}, {0, 1, 1});
  EXPECT_THROW(with.merge(without), std::logic_error);
}

TEST(TriangleMesh, ObjExport) {
  va::TriangleMesh mesh;
  mesh.add_triangle({0, 0, 0}, {1, 0, 0}, {0, 1, 0});
  const auto path = (std::filesystem::temp_directory_path() / "vira_mesh.obj").string();
  mesh.write_obj(path, "test");
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("o test"), std::string::npos);
  EXPECT_NE(content.find("f 1 2 3"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(PolylineSet, LinesAndMerge) {
  va::PolylineSet lines;
  lines.begin_line();
  lines.add_point({0, 0, 0}, 0.0);
  lines.add_point({1, 0, 0}, 1.0);
  lines.begin_line();
  lines.add_point({2, 2, 2}, 0.5);

  EXPECT_EQ(lines.line_count(), 2u);
  EXPECT_EQ(lines.line(0).size(), 2u);
  EXPECT_EQ(lines.line(1).size(), 1u);
  EXPECT_DOUBLE_EQ(lines.line_times(0)[1], 1.0);

  va::PolylineSet other;
  other.begin_line();
  other.add_point({5, 5, 5}, 2.0);
  lines.merge(other);
  EXPECT_EQ(lines.line_count(), 3u);
  EXPECT_NEAR(lines.line(2)[0].x, 5.0, 1e-6);
}

TEST(PolylineSet, AddPointWithoutLineThrows) {
  va::PolylineSet lines;
  EXPECT_THROW(lines.add_point({0, 0, 0}), std::logic_error);
}

TEST(PolylineSet, SerializationRoundTrip) {
  va::PolylineSet lines;
  lines.begin_line();
  lines.add_point({1, 2, 3}, 0.25);
  vira::util::ByteBuffer buf;
  lines.serialize(buf);
  const auto restored = va::PolylineSet::deserialize(buf);
  EXPECT_EQ(restored.line_count(), 1u);
  EXPECT_DOUBLE_EQ(restored.line_times(0)[0], 0.25);
}

// ---------------------------------------------------------------------------
// Isosurface extraction
// ---------------------------------------------------------------------------

TEST(Isosurface, PlaneFieldGivesFlatSurface) {
  // f = x: iso 0.5 must produce the plane x = 0.5 with area ~1.
  auto block = field_block(9, [](const vm::Vec3& p) { return p.x; });
  va::TriangleMesh mesh;
  const auto active = va::extract_isosurface(block, "s", 0.5f, mesh);
  EXPECT_GT(active, 0u);
  EXPECT_NEAR(mesh.surface_area(), 1.0, 1e-3);
  for (std::size_t v = 0; v < mesh.vertex_count(); ++v) {
    EXPECT_NEAR(mesh.vertex(v).x, 0.5, 1e-6);
  }
}

TEST(Isosurface, SphereFieldIsClosedAndAccurate) {
  // f = |p - c|: iso r produces a sphere (closed surface, area ~ 4πr²).
  const vm::Vec3 center{0.5, 0.5, 0.5};
  auto block = field_block(21, [&](const vm::Vec3& p) { return (p - center).norm(); });
  va::TriangleMesh mesh;
  va::extract_isosurface(block, "s", 0.3f, mesh);
  EXPECT_GT(mesh.triangle_count(), 100u);
  EXPECT_NEAR(mesh.surface_area(), 4.0 * M_PI * 0.09, 0.05);
  // Watertight: no boundary edges.
  EXPECT_EQ(boundary_edge_count(mesh), 0u);
  // All vertices on the sphere.
  for (std::size_t v = 0; v < mesh.vertex_count(); ++v) {
    EXPECT_NEAR((mesh.vertex(v) - center).norm(), 0.3, 5e-3);
  }
}

TEST(Isosurface, WatertightOnRandomSmoothFields) {
  // Property: for smooth fields whose level set does not hit the block
  // boundary, the surface must be closed — across cells AND across the
  // per-cell tetrahedra. Run several random trigonometric fields.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    vira::util::Rng rng(seed);
    const double a = rng.uniform(1.0, 3.0);
    const double b = rng.uniform(1.0, 3.0);
    const double c = rng.uniform(1.0, 3.0);
    const vm::Vec3 center{0.5, 0.5, 0.5};
    auto block = field_block(
        15,
        [&](const vm::Vec3& p) {
          const auto r = p - center;
          return r.norm() + 0.05 * std::sin(a * 6.0 * r.x) * std::sin(b * 6.0 * r.y) *
                                std::sin(c * 6.0 * r.z);
        },
        "s", /*perturb=*/0.01, seed);
    va::TriangleMesh mesh;
    va::extract_isosurface(block, "s", 0.25f, mesh);
    ASSERT_GT(mesh.triangle_count(), 0u) << "seed " << seed;
    EXPECT_EQ(boundary_edge_count(mesh), 0u) << "seed " << seed;
  }
}

TEST(Isosurface, RangeExtractionMatchesWholeBlock) {
  const vm::Vec3 center{0.5, 0.5, 0.5};
  auto block = field_block(13, [&](const vm::Vec3& p) { return (p - center).norm(); });

  va::TriangleMesh whole;
  const auto active_whole = va::extract_isosurface(block, "s", 0.3f, whole);

  // Split into two ranges: results must combine to the same triangle count.
  va::TriangleMesh left;
  va::TriangleMesh right;
  const auto active_left = va::extract_isosurface_range(
      block, "s", 0.3f, {0, 6, 0, block.cells_j(), 0, block.cells_k()}, left);
  const auto active_right = va::extract_isosurface_range(
      block, "s", 0.3f, {6, block.cells_i(), 0, block.cells_j(), 0, block.cells_k()}, right);

  EXPECT_EQ(active_whole, active_left + active_right);
  EXPECT_EQ(whole.triangle_count(), left.triangle_count() + right.triangle_count());
}

TEST(Isosurface, InactiveCellProducesNothing) {
  auto block = field_block(5, [](const vm::Vec3&) { return 1.0; });
  EXPECT_FALSE(va::cell_is_active(block, "s", 0.0f, 0, 0, 0));
  va::TriangleMesh mesh;
  EXPECT_EQ(va::triangulate_cell(block, "s", 0.0f, 0, 0, 0, mesh), 0u);
  EXPECT_TRUE(mesh.empty());
}

TEST(Isosurface, NormalsPointRadiallyOnSphere) {
  // f = |p - c|: ∇f is the outward radial direction, so every vertex
  // normal of the iso sphere must align with (p - c).
  const vm::Vec3 center{0.5, 0.5, 0.5};
  auto block = field_block(17, [&](const vm::Vec3& p) { return (p - center).norm(); });
  va::TriangleMesh mesh;
  va::extract_isosurface(block, "s", 0.3f, mesh, /*with_normals=*/true);
  ASSERT_TRUE(mesh.has_normals());
  ASSERT_GT(mesh.vertex_count(), 50u);
  for (std::size_t v = 0; v < mesh.vertex_count(); ++v) {
    const vm::Vec3 radial = (mesh.vertex(v) - center).normalized();
    EXPECT_GT(mesh.normal(v).dot(radial), 0.97) << "vertex " << v;
    EXPECT_NEAR(mesh.normal(v).norm(), 1.0, 1e-6);
  }
}

TEST(Isosurface, NormalsOffByDefault) {
  auto block = field_block(7, [](const vm::Vec3& p) { return p.x; });
  va::TriangleMesh mesh;
  va::extract_isosurface(block, "s", 0.5f, mesh);
  EXPECT_FALSE(mesh.has_normals());
}

TEST(Isosurface, VerticesInterpolateToIsoValue) {
  auto block = field_block(9, [](const vm::Vec3& p) { return p.x * p.x + p.y; });
  va::TriangleMesh mesh;
  va::extract_isosurface(block, "s", 0.8f, mesh);
  ASSERT_GT(mesh.vertex_count(), 0u);
  for (std::size_t v = 0; v < mesh.vertex_count(); ++v) {
    const auto p = mesh.vertex(v);
    // Trilinear field error is O(h²); vertices must track the level set.
    EXPECT_NEAR(p.x * p.x + p.y, 0.8, 0.02);
  }
}

// ---------------------------------------------------------------------------
// λ2
// ---------------------------------------------------------------------------

TEST(Lambda2, DetectsLambOseenCore) {
  vg::LambOseenVortex vortex({0.5, 0.5, 0.5}, {0, 0, 1}, 2.0, 0.15);
  vg::StructuredBlock block(17, 17, 9);
  for (int k = 0; k < 9; ++k) {
    for (int j = 0; j < 17; ++j) {
      for (int i = 0; i < 17; ++i) {
        block.set_point(i, j, k, {i / 16.0, j / 16.0, k / 8.0});
      }
    }
  }
  vg::sample_fields(block, vortex, 0.0);
  const auto [lo, hi] = va::compute_lambda2_field(block);
  EXPECT_LT(lo, 0.0);  // vortical region exists
  EXPECT_GT(hi, lo);
  // Center node (on the axis) is deep inside the vortex.
  EXPECT_LT(block.scalar_at(va::kLambda2Field, 8, 8, 4), 0.0);
  // Far corner is outside.
  EXPECT_GE(block.scalar_at(va::kLambda2Field, 0, 0, 4), lo * 1e-3 - 1e-9);
}

TEST(Lambda2, UniformFlowHasNoVortex) {
  vg::UniformFlow flow({3, 2, 1});
  vg::StructuredBlock block(7, 7, 7);
  for (int k = 0; k < 7; ++k) {
    for (int j = 0; j < 7; ++j) {
      for (int i = 0; i < 7; ++i) {
        block.set_point(i, j, k, {i / 6.0, j / 6.0, k / 6.0});
      }
    }
  }
  vg::sample_fields(block, flow, 0.0);
  const auto [lo, hi] = va::compute_lambda2_field(block);
  EXPECT_NEAR(lo, 0.0, 1e-6);
  EXPECT_NEAR(hi, 0.0, 1e-6);
}

TEST(Lambda2, VortexBoundarySurfaceIsExtractable) {
  vg::LambOseenVortex vortex({0.5, 0.5, 0.5}, {0, 0, 1}, 2.0, 0.12);
  vg::StructuredBlock block(21, 21, 9);
  for (int k = 0; k < 9; ++k) {
    for (int j = 0; j < 21; ++j) {
      for (int i = 0; i < 21; ++i) {
        block.set_point(i, j, k, {i / 20.0, j / 20.0, k / 8.0});
      }
    }
  }
  vg::sample_fields(block, vortex, 0.0);
  va::compute_lambda2_field(block);
  va::TriangleMesh mesh;
  const auto active = va::extract_isosurface(block, va::kLambda2Field, -1e-4f, mesh);
  EXPECT_GT(active, 0u);
  EXPECT_GT(mesh.triangle_count(), 10u);
  // The vortex tube surrounds the axis: extracted vertices stay within the
  // core's vicinity (radial distance bounded).
  for (std::size_t v = 0; v < mesh.vertex_count(); ++v) {
    const auto p = mesh.vertex(v);
    const double r = std::hypot(p.x - 0.5, p.y - 0.5);
    EXPECT_LT(r, 0.45);
  }
}

// ---------------------------------------------------------------------------
// Integration
// ---------------------------------------------------------------------------

TEST(Integrator, Rk4StepMatchesAnalyticCircle) {
  // Rigid rotation ω=1: a particle at radius 1 follows the unit circle.
  vg::RigidRotation rotation({0, 0, 0}, {0, 0, 1}, 1.0);
  va::AnalyticProvider provider(rotation);
  const double h = 0.01;
  vm::Vec3 p{1, 0, 0};
  double t = 0.0;
  for (int step = 0; step < 100; ++step) {
    const auto next = va::rk4_step(provider, p, t, h);
    ASSERT_TRUE(next.has_value());
    p = *next;
    t += h;
  }
  EXPECT_NEAR(p.x, std::cos(1.0), 1e-8);
  EXPECT_NEAR(p.y, std::sin(1.0), 1e-8);
}

TEST(Integrator, Rk4HasFourthOrderConvergence) {
  vg::RigidRotation rotation({0, 0, 0}, {0, 0, 1}, 1.0);
  va::AnalyticProvider provider(rotation);
  auto error_for = [&](double h) {
    vm::Vec3 p{1, 0, 0};
    double t = 0.0;
    const int steps = static_cast<int>(std::llround(1.0 / h));
    for (int s = 0; s < steps; ++s) {
      p = *va::rk4_step(provider, p, t, h);
      t += h;
    }
    return (p - vm::Vec3{std::cos(1.0), std::sin(1.0), 0.0}).norm();
  };
  const double e1 = error_for(0.1);
  const double e2 = error_for(0.05);
  const double order = std::log2(e1 / e2);
  EXPECT_GT(order, 3.5);
  EXPECT_LT(order, 4.8);
}

TEST(Integrator, AdaptiveStepKeepsErrorBounded) {
  vg::AbcFlow abc;
  va::AnalyticProvider provider(abc);
  va::IntegratorParams params;
  params.tolerance = 1e-8;
  params.h_init = 0.05;
  params.h_max = 0.5;
  const auto coarse = va::integrate_pathline(provider, {0.1, 0.2, 0.3}, 0.0, 2.0, params);

  // Reference with a tiny fixed step.
  vm::Vec3 p{0.1, 0.2, 0.3};
  double t = 0.0;
  const double h = 1e-4;
  while (t < 2.0 - 1e-12) {
    p = *va::rk4_step(provider, p, t, std::min(h, 2.0 - t));
    t += std::min(h, 2.0 - t);
  }
  ASSERT_GT(coarse.size(), 3u);
  EXPECT_NEAR(coarse.back().t, 2.0, 1e-9);
  EXPECT_NEAR((coarse.back().position - p).norm(), 0.0, 1e-5);
}

TEST(Integrator, AdaptiveStepGrowsOnEasyFields) {
  vg::UniformFlow flow({1, 0, 0});
  va::AnalyticProvider provider(flow);
  va::IntegratorParams params;
  params.h_init = 1e-3;
  params.h_max = 0.25;
  const auto path = va::integrate_pathline(provider, {0, 0, 0}, 0.0, 10.0, params);
  // Constant field: the controller should open up to h_max quickly, so far
  // fewer steps than 10 / h_init.
  EXPECT_LT(path.size(), 100u);
  EXPECT_NEAR(path.back().position.x, 10.0, 1e-9);
}

TEST(Integrator, DomainExitStopsIntegration) {
  vg::UniformFlow flow({1, 0, 0});
  va::AnalyticProvider provider(flow, vm::Aabb({0, -1, -1}, {1, 1, 1}));
  va::IntegratorParams params;
  const auto path = va::integrate_pathline(provider, {0.5, 0, 0}, 0.0, 100.0, params);
  ASSERT_GT(path.size(), 1u);
  EXPECT_LT(path.back().position.x, 1.0 + 1e-6);
  EXPECT_LT(path.back().t, 100.0);
}

TEST(Integrator, TwoLevelStepInterpolatesBetweenFields) {
  vg::UniformFlow flow_a({1, 0, 0});
  vg::UniformFlow flow_b({0, 1, 0});
  va::AnalyticProvider a(flow_a);
  va::AnalyticProvider b(flow_b);
  // alpha = 0 -> pure A; alpha = 1 -> pure B; alpha = 0.5 -> average.
  const auto p0 = va::two_level_rk4_step(a, b, {0, 0, 0}, 0.0, 1.0, 0.0);
  EXPECT_NEAR(p0->x, 1.0, 1e-12);
  EXPECT_NEAR(p0->y, 0.0, 1e-12);
  const auto p1 = va::two_level_rk4_step(a, b, {0, 0, 0}, 0.0, 1.0, 1.0);
  EXPECT_NEAR(p1->x, 0.0, 1e-12);
  EXPECT_NEAR(p1->y, 1.0, 1e-12);
  const auto ph = va::two_level_rk4_step(a, b, {0, 0, 0}, 0.0, 1.0, 0.5);
  EXPECT_NEAR(ph->x, 0.5, 1e-12);
  EXPECT_NEAR(ph->y, 0.5, 1e-12);
}

TEST(Integrator, TwoLevelIntervalConvergesToTrueUnsteadySolution) {
  // Time-varying field u = (t, 0, 0). Exact: x(t) = x0 + t²/2.
  // Two-level integration between snapshots at t=0 and t=1 reproduces the
  // linear-in-time interpolation the paper's scheme implies.
  vg::UniformFlow level_a_field({0, 0, 0});
  vg::UniformFlow level_b_field({1, 0, 0});
  va::AnalyticProvider a(level_a_field);
  va::AnalyticProvider b(level_b_field);
  vm::Vec3 p{0, 0, 0};
  double h = 0.01;
  va::IntegratorParams params;
  params.tolerance = 1e-10;
  std::vector<va::PathPoint> out;
  ASSERT_TRUE(va::integrate_interval_two_level(a, b, 0.0, 1.0, p, h, params, out));
  EXPECT_NEAR(p.x, 0.5, 1e-3);  // ∫ t dt over [0,1]
  ASSERT_FALSE(out.empty());
  EXPECT_NEAR(out.back().t, 1.0, 1e-9);
}

TEST(Integrator, StreamlineOnFrozenTime) {
  vg::RigidRotation rotation({0, 0, 0}, {0, 0, 1}, 2.0 * M_PI);
  va::AnalyticProvider provider(rotation);
  va::IntegratorParams params;
  params.tolerance = 1e-9;
  const auto line = va::integrate_streamline(provider, {1, 0, 0}, 0.0, 1.0, params);
  // One full revolution.
  EXPECT_NEAR((line.back().position - vm::Vec3{1, 0, 0}).norm(), 0.0, 1e-5);
}

// ---------------------------------------------------------------------------
// BlockSampler (multi-block velocity lookup)
// ---------------------------------------------------------------------------

class BlockSamplerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = (std::filesystem::temp_directory_path() / "vira_algo_sampler_ds").string();
    std::filesystem::remove_all(dir_);
    vg::RigidRotation rotation({1.0, 0.5, 0.5}, {0, 0, 1}, 1.0);
    vg::generate_box(dir_, rotation, 2, 9, 9, 9, {0, 0, 0}, {2, 1, 1}, 0.1, /*nblocks=*/4);
  }
  static std::string dir_;
};
std::string BlockSamplerTest::dir_;

TEST_F(BlockSamplerTest, SamplesAcrossBlocks) {
  vg::DatasetReader reader(dir_);
  const auto& info = reader.meta().steps[0];
  int fetches = 0;
  va::BlockSampler sampler(info, [&](int b) {
    ++fetches;
    return std::make_shared<const vg::StructuredBlock>(reader.read_block(0, b));
  });

  // Probe points in different slabs of the box; velocity must match the
  // analytic rotation field.
  vg::RigidRotation rotation({1.0, 0.5, 0.5}, {0, 0, 1}, 1.0);
  for (double x : {0.2, 0.7, 1.3, 1.9}) {
    const vm::Vec3 p{x, 0.4, 0.6};
    const auto u = sampler.velocity(p, 0.0);
    ASSERT_TRUE(u.has_value()) << "x=" << x;
    const auto expected = rotation.velocity(p, 0.0);
    EXPECT_NEAR((*u - expected).norm(), 0.0, 5e-3) << "x=" << x;
  }
  EXPECT_EQ(sampler.blocks_touched(), 4u);
  EXPECT_EQ(fetches, 4);  // each block fetched exactly once
}

TEST_F(BlockSamplerTest, HintAvoidsRefetch) {
  vg::DatasetReader reader(dir_);
  const auto& info = reader.meta().steps[0];
  int fetches = 0;
  va::BlockSampler sampler(info, [&](int b) {
    ++fetches;
    return std::make_shared<const vg::StructuredBlock>(reader.read_block(0, b));
  });
  // Many queries inside one slab: one fetch.
  for (double s = 0.05; s < 0.45; s += 0.01) {
    ASSERT_TRUE(sampler.velocity({s, 0.5, 0.5}, 0.0).has_value());
  }
  EXPECT_EQ(fetches, 1);
}

TEST_F(BlockSamplerTest, OutsideDomainReturnsNothing) {
  vg::DatasetReader reader(dir_);
  const auto& info = reader.meta().steps[0];
  va::BlockSampler sampler(info, [&](int b) {
    return std::make_shared<const vg::StructuredBlock>(reader.read_block(0, b));
  });
  EXPECT_FALSE(sampler.velocity({5, 5, 5}, 0.0).has_value());
  EXPECT_FALSE(sampler.velocity({-0.5, 0.5, 0.5}, 0.0).has_value());
}

// ---------------------------------------------------------------------------
// Payload encoding
// ---------------------------------------------------------------------------

TEST(Payloads, MeshFragmentRoundTrip) {
  va::TriangleMesh mesh;
  mesh.add_triangle({0, 0, 0}, {1, 0, 0}, {0, 1, 0});
  auto buffer = va::encode_mesh_fragment(mesh, 2);
  const auto decoded = va::decode_fragment(buffer);
  EXPECT_EQ(decoded.kind, va::kPayloadMesh);
  EXPECT_EQ(decoded.level, 2);
  EXPECT_EQ(decoded.mesh.triangle_count(), 1u);
}

TEST(Payloads, LinesFragmentRoundTrip) {
  va::PolylineSet lines;
  lines.begin_line();
  lines.add_point({1, 2, 3}, 0.5);
  auto buffer = va::encode_lines_fragment(lines);
  const auto decoded = va::decode_fragment(buffer);
  EXPECT_EQ(decoded.kind, va::kPayloadLines);
  EXPECT_EQ(decoded.lines.line_count(), 1u);
}

TEST(Payloads, SummaryRoundTrip) {
  auto buffer = va::encode_summary(100, 42, 7);
  const auto decoded = va::decode_fragment(buffer);
  EXPECT_EQ(decoded.kind, va::kPayloadSummary);
  EXPECT_EQ(decoded.triangles, 100u);
  EXPECT_EQ(decoded.active_cells, 42u);
  EXPECT_EQ(decoded.points, 7u);
}

// ---------------------------------------------------------------------------
// Block distribution properties (chunk_range / owns_position)
// ---------------------------------------------------------------------------

TEST(BlockDistribution, ChunkRangePartitionsExhaustively) {
  // Exhaustive small-N sweep: for every (total, group_size) the per-rank
  // ranges must be contiguous, disjoint, cover [0, total) exactly, and
  // have sizes differing by at most one.
  for (int total = 0; total <= 40; ++total) {
    for (int size = 1; size <= 8; ++size) {
      int covered = 0;
      int min_size = total + 1;
      int max_size = -1;
      int expected_begin = 0;
      for (int rank = 0; rank < size; ++rank) {
        const auto [begin, end] = va::chunk_range(total, rank, size);
        ASSERT_LE(begin, end) << "total=" << total << " rank=" << rank << "/" << size;
        ASSERT_EQ(begin, expected_begin) << "gap/overlap at rank " << rank;
        expected_begin = end;
        const int chunk = end - begin;
        covered += chunk;
        min_size = std::min(min_size, chunk);
        max_size = std::max(max_size, chunk);
      }
      ASSERT_EQ(expected_begin, total) << "total=" << total << " size=" << size;
      ASSERT_EQ(covered, total);
      ASSERT_LE(max_size - min_size, 1) << "unbalanced: total=" << total << " size=" << size;
    }
  }
}

TEST(BlockDistribution, ChunkRangeDegenerateGroup) {
  // group_size <= 1 means "everything is mine" (also the size-0 guard).
  EXPECT_EQ(va::chunk_range(17, 0, 1), (std::pair<int, int>{0, 17}));
  EXPECT_EQ(va::chunk_range(17, 3, 0), (std::pair<int, int>{0, 17}));
  EXPECT_EQ(va::chunk_range(0, 0, 4), (std::pair<int, int>{0, 0}));
}

TEST(BlockDistribution, OwnsPositionPartitionsExhaustively) {
  for (int size = 1; size <= 8; ++size) {
    std::vector<int> counts(static_cast<std::size_t>(size), 0);
    const std::size_t positions = 8 * 8 * 3;  // several full round-robin cycles
    for (std::size_t position = 0; position < positions; ++position) {
      int owners = 0;
      for (int rank = 0; rank < size; ++rank) {
        if (va::owns_position(position, rank, size)) {
          ++owners;
          ++counts[static_cast<std::size_t>(rank)];
        }
      }
      ASSERT_EQ(owners, 1) << "position " << position << " size " << size;
    }
    const auto [lo, hi] = std::minmax_element(counts.begin(), counts.end());
    ASSERT_LE(*hi - *lo, 1) << "unbalanced ownership for size " << size;
  }
}

// ---------------------------------------------------------------------------
// Zero-copy block decode
// ---------------------------------------------------------------------------

TEST(DecodeBlock, DecodesFromSharedBlobWithoutMutatingIt) {
  const auto block = field_block(5, [](const vm::Vec3& p) { return p.x + 2 * p.y; });
  auto buffer = std::make_shared<vira::util::ByteBuffer>();
  block.serialize(*buffer);
  const vira::dms::Blob blob = buffer;

  const auto first = va::decode_block(blob);
  // The blob is immutable and shared: decoding must not consume it, so a
  // second decode of the same cached bytes yields the same block.
  const auto second = va::decode_block(blob);
  EXPECT_EQ(blob->read_pos(), 0u);

  for (const auto* decoded : {&first, &second}) {
    ASSERT_EQ(decoded->ni(), block.ni());
    ASSERT_EQ(decoded->nj(), block.nj());
    ASSERT_EQ(decoded->nk(), block.nk());
    ASSERT_TRUE(decoded->has_scalar("s"));
    const auto got = decoded->scalar("s");
    const auto want = block.scalar("s");
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end()));
  }
}

TEST(DecodeBlock, NullBlobThrows) {
  EXPECT_THROW((void)va::decode_block(vira::dms::Blob{}), std::runtime_error);
}

TEST(DecodeBlock, ByteReaderPathMatchesByteBufferPath) {
  const auto block = field_block(4, [](const vm::Vec3& p) { return p.z; });
  vira::util::ByteBuffer stream;
  block.serialize(stream);
  block.serialize(stream);  // two consecutive records in one buffer

  // The ByteBuffer overload must advance its cursor exactly one record so
  // back-to-back records decode cleanly.
  const auto a = vg::StructuredBlock::deserialize(stream);
  const auto b = vg::StructuredBlock::deserialize(stream);
  EXPECT_EQ(stream.remaining(), 0u);
  const auto want = block.scalar("s");
  const auto sa = a.scalar("s");
  const auto sb = b.scalar("s");
  EXPECT_TRUE(std::equal(sa.begin(), sa.end(), want.begin(), want.end()));
  EXPECT_TRUE(std::equal(sb.begin(), sb.end(), want.begin(), want.end()));
}
