#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>

#include "algo/payloads.hpp"
#include "viz/assembly.hpp"
#include "viz/session.hpp"

namespace va = vira::algo;
namespace vv = vira::viz;

namespace {

vv::Packet mesh_packet(const va::TriangleMesh& mesh, int level = -1,
                       vv::Packet::Kind kind = vv::Packet::Kind::kPartial) {
  vv::Packet packet;
  packet.kind = kind;
  packet.payload = va::encode_mesh_fragment(mesh, level);
  return packet;
}

va::TriangleMesh one_triangle(double z) {
  va::TriangleMesh mesh;
  mesh.add_triangle({0, 0, z}, {1, 0, z}, {0, 1, z});
  return mesh;
}

}  // namespace

TEST(GeometryCollector, AccumulatesFlatMeshFragments) {
  vv::GeometryCollector collector;
  auto p1 = mesh_packet(one_triangle(0.0));
  auto p2 = mesh_packet(one_triangle(1.0), -1, vv::Packet::Kind::kFinal);
  EXPECT_TRUE(collector.consume(p1));
  EXPECT_TRUE(collector.consume(p2));
  EXPECT_EQ(collector.flat_mesh().triangle_count(), 2u);
  EXPECT_EQ(collector.fragment_count(), 2u);
}

TEST(GeometryCollector, ProgressiveLevelsReplaceNotAppend) {
  vv::GeometryCollector collector;
  // Coarse level: 1 triangle; fine level: 3 triangles.
  auto coarse = mesh_packet(one_triangle(0.0), 0);
  collector.consume(coarse);
  EXPECT_EQ(collector.current_mesh().triangle_count(), 1u);

  va::TriangleMesh fine;
  fine.merge(one_triangle(0.0));
  fine.merge(one_triangle(0.5));
  fine.merge(one_triangle(1.0));
  auto fine_packet = mesh_packet(fine, 2);
  collector.consume(fine_packet);
  // current_mesh shows the finest level only, not coarse+fine.
  EXPECT_EQ(collector.current_mesh().triangle_count(), 3u);
  EXPECT_EQ(collector.levels().size(), 2u);
}

TEST(GeometryCollector, ProgressiveLevelAccumulatesWithinLevel) {
  vv::GeometryCollector collector;
  auto a = mesh_packet(one_triangle(0.0), 1);
  auto b = mesh_packet(one_triangle(2.0), 1);
  collector.consume(a);
  collector.consume(b);
  EXPECT_EQ(collector.levels().at(1).triangle_count(), 2u);
}

TEST(GeometryCollector, CollectsLines) {
  va::PolylineSet lines;
  lines.begin_line();
  lines.add_point({0, 0, 0}, 0.0);
  lines.add_point({1, 1, 1}, 1.0);
  vv::Packet packet;
  packet.kind = vv::Packet::Kind::kFinal;
  packet.payload = va::encode_lines_fragment(lines);
  vv::GeometryCollector collector;
  EXPECT_TRUE(collector.consume(packet));
  EXPECT_EQ(collector.lines().line_count(), 1u);
}

TEST(GeometryCollector, SummaryIsKeptButNotGeometry) {
  vv::Packet packet;
  packet.kind = vv::Packet::Kind::kFinal;
  packet.payload = va::encode_summary(123, 45, 6);
  vv::GeometryCollector collector;
  EXPECT_FALSE(collector.consume(packet));  // no geometry carried
  EXPECT_TRUE(collector.have_summary());
  EXPECT_EQ(collector.summary_triangles(), 123u);
  EXPECT_EQ(collector.summary_active_cells(), 45u);
}

TEST(GeometryCollector, IgnoresNonDataPackets) {
  vv::Packet progress;
  progress.kind = vv::Packet::Kind::kProgress;
  progress.progress = 0.5;
  vv::GeometryCollector collector;
  EXPECT_FALSE(collector.consume(progress));
  EXPECT_EQ(collector.fragment_count(), 0u);
}

// ---------------------------------------------------------------------------
// ResultStream / ExtractionSession over a bare link (no backend)
// ---------------------------------------------------------------------------

TEST(ExtractionSession, SubmitWritesRequestFrame) {
  auto [client_side, server_side] = vira::comm::make_inproc_link_pair();
  vv::ExtractionSession session(client_side);
  vira::util::ParamList params;
  params.set("dataset", "/x");
  auto stream = session.submit("iso.dataman", params);
  EXPECT_GT(stream->request_id(), 0u);

  auto msg = server_side->recv(std::chrono::milliseconds(1000));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->tag, vira::core::kTagSubmit);
  const auto request = vira::core::CommandRequest::deserialize(msg->payload);
  EXPECT_EQ(request.command, "iso.dataman");
  EXPECT_EQ(request.params.get_or("dataset", ""), "/x");
  EXPECT_EQ(request.request_id, stream->request_id());
  session.close();
}

TEST(ExtractionSession, CancelSendsCancelFrame) {
  auto [client_side, server_side] = vira::comm::make_inproc_link_pair();
  vv::ExtractionSession session(client_side);
  session.cancel(42);
  auto msg = server_side->recv(std::chrono::milliseconds(1000));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->tag, vira::core::kTagCancel);
  EXPECT_EQ(msg->payload.read<std::uint64_t>(), 42u);
  session.close();
}

TEST(ExtractionSession, LinkCloseUnblocksWaiters) {
  auto [client_side, server_side] = vira::comm::make_inproc_link_pair();
  vv::ExtractionSession session(client_side);
  auto stream = session.submit("whatever", {});
  server_side->close();
  // The stream must end (nullopt) rather than hang.
  const auto packet = stream->next(std::chrono::milliseconds(2000));
  EXPECT_FALSE(packet.has_value());
  session.close();
}

TEST(ExtractionSession, CompleteClosesTheStream) {
  auto [client_side, server_side] = vira::comm::make_inproc_link_pair();
  vv::ExtractionSession session(client_side);
  auto stream = session.submit("x", {});

  // Fake a backend: reply with a Complete packet for that request.
  auto submit = server_side->recv(std::chrono::milliseconds(1000));
  ASSERT_TRUE(submit.has_value());
  const auto request = vira::core::CommandRequest::deserialize(submit->payload);
  vira::core::CommandStats stats;
  stats.request_id = request.request_id;
  stats.success = true;
  stats.total_runtime = 1.5;
  vira::comm::Message reply;
  reply.tag = vira::core::kTagComplete;
  stats.serialize(reply.payload);
  server_side->send(std::move(reply));

  auto packet = stream->next(std::chrono::milliseconds(2000));
  ASSERT_TRUE(packet.has_value());
  EXPECT_EQ(packet->kind, vv::Packet::Kind::kComplete);
  EXPECT_DOUBLE_EQ(packet->stats.total_runtime, 1.5);
  // Stream is closed afterwards.
  EXPECT_FALSE(stream->next(std::chrono::milliseconds(50)).has_value());
  session.close();
}

TEST(ExtractionSession, WaitFailsFastOnClosedStream) {
  // Regression: wait() on a closed-and-drained stream hot-spun — pop_for
  // returns nullopt immediately once the queue is closed, and the old loop
  // just retried until the full (minutes-long) timeout. It must fail fast.
  auto [client_side, server_side] = vira::comm::make_inproc_link_pair();
  vv::ExtractionSession session(client_side);
  auto stream = session.submit("whatever", {});
  server_side->close();
  // Let the receiver notice the dead link and close the stream queues.
  while (stream->next(std::chrono::milliseconds(2000)).has_value()) {
  }

  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(stream->wait(nullptr, std::chrono::milliseconds(60000)), std::runtime_error);
  const auto elapsed = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_LT(elapsed, 50.0) << "wait() rode out its timeout on a closed stream";
  session.close();
}

TEST(ExtractionSession, SubmitAfterCloseIsRejectedTerminally) {
  // Regression: submit() after close() registered a stream on a dead
  // session — the receiver thread was already gone, the kTagSubmit send
  // was dropped on the closed link, and wait() hung until timeout. It must
  // answer locally with a terminal "session closed" rejection.
  auto [client_side, server_side] = vira::comm::make_inproc_link_pair();
  vv::ExtractionSession session(client_side);
  session.close();

  auto stream = session.submit("whatever", {});
  ASSERT_NE(stream, nullptr);
  const auto start = std::chrono::steady_clock::now();
  const auto stats = stream->wait(nullptr, std::chrono::milliseconds(60000));
  const auto elapsed = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_FALSE(stats.success);
  EXPECT_EQ(stats.error, "session closed");
  EXPECT_LT(elapsed, 50.0);
  // And nothing reached the wire.
  EXPECT_FALSE(server_side->recv(std::chrono::milliseconds(10)).has_value());
}

TEST(ExtractionSession, PacketsForUnknownRequestsAreDropped) {
  auto [client_side, server_side] = vira::comm::make_inproc_link_pair();
  vv::ExtractionSession session(client_side);
  // Progress for a request nobody submitted.
  vira::comm::Message stray;
  stray.tag = vira::core::kTagProgress;
  stray.payload.write<std::uint64_t>(999);
  stray.payload.write<double>(0.5);
  server_side->send(std::move(stray));
  // Session stays healthy: a later real exchange still works.
  auto stream = session.submit("x", {});
  auto submit = server_side->recv(std::chrono::milliseconds(1000));
  ASSERT_TRUE(submit.has_value());
  session.close();
}
