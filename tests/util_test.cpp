#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "util/blocking_queue.hpp"
#include "util/byte_buffer.hpp"
#include "util/log.hpp"
#include "util/param_list.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"
#include "util/task_pool.hpp"
#include "util/timer.hpp"

namespace vu = vira::util;

// ---------------------------------------------------------------------------
// ByteBuffer
// ---------------------------------------------------------------------------

TEST(ByteBuffer, RoundTripsScalars) {
  vu::ByteBuffer buf;
  buf.write<std::int32_t>(-42);
  buf.write<double>(3.25);
  buf.write<std::uint8_t>(0xff);
  EXPECT_EQ(buf.read<std::int32_t>(), -42);
  EXPECT_EQ(buf.read<double>(), 3.25);
  EXPECT_EQ(buf.read<std::uint8_t>(), 0xff);
  EXPECT_EQ(buf.remaining(), 0u);
}

TEST(ByteBuffer, RoundTripsStringsAndVectors) {
  vu::ByteBuffer buf;
  buf.write_string("viracocha");
  buf.write_string("");
  buf.write_vector<float>({1.0f, 2.0f, 3.5f});
  buf.write_vector<std::int64_t>({});
  EXPECT_EQ(buf.read_string(), "viracocha");
  EXPECT_EQ(buf.read_string(), "");
  EXPECT_EQ(buf.read_vector<float>(), (std::vector<float>{1.0f, 2.0f, 3.5f}));
  EXPECT_TRUE(buf.read_vector<std::int64_t>().empty());
}

TEST(ByteBuffer, ReadPastEndThrows) {
  vu::ByteBuffer buf;
  buf.write<std::int16_t>(7);
  (void)buf.read<std::int16_t>();
  EXPECT_THROW((void)buf.read<std::int16_t>(), std::out_of_range);
}

TEST(ByteBuffer, CorruptStringLengthThrows) {
  vu::ByteBuffer buf;
  buf.write<std::uint64_t>(1u << 30);  // length prefix with no payload
  EXPECT_THROW((void)buf.read_string(), std::out_of_range);
}

TEST(ByteBuffer, SeekAllowsRereading) {
  vu::ByteBuffer buf;
  buf.write<int>(1);
  buf.write<int>(2);
  EXPECT_EQ(buf.read<int>(), 1);
  buf.seek(0);
  EXPECT_EQ(buf.read<int>(), 1);
  EXPECT_EQ(buf.read<int>(), 2);
  EXPECT_THROW(buf.seek(1000), std::out_of_range);
}

TEST(ByteBuffer, CopyOfCopiesRawBytes) {
  const std::uint32_t value = 0xdeadbeef;
  auto buf = vu::ByteBuffer::copy_of(&value, sizeof(value));
  EXPECT_EQ(buf.size(), sizeof(value));
  EXPECT_EQ(buf.read<std::uint32_t>(), value);
}

// ---------------------------------------------------------------------------
// ParamList
// ---------------------------------------------------------------------------

TEST(ParamList, TypedAccessors) {
  vu::ParamList params;
  params.set_double("iso", 0.25);
  params.set_int("timestep", 12);
  params.set_bool("stream", true);
  params.set("field", "density");

  EXPECT_DOUBLE_EQ(params.get_double("iso", 0.0), 0.25);
  EXPECT_EQ(params.get_int("timestep", -1), 12);
  EXPECT_TRUE(params.get_bool("stream", false));
  EXPECT_EQ(params.get_or("field", ""), "density");
  EXPECT_EQ(params.get_int("missing", 99), 99);
  EXPECT_FALSE(params.get("missing").has_value());
}

TEST(ParamList, DoubleVectorRoundTrip) {
  vu::ParamList params;
  params.set_doubles("seed", {1.5, -2.0, 0.25});
  const auto seed = params.get_doubles("seed");
  ASSERT_EQ(seed.size(), 3u);
  EXPECT_DOUBLE_EQ(seed[0], 1.5);
  EXPECT_DOUBLE_EQ(seed[1], -2.0);
  EXPECT_DOUBLE_EQ(seed[2], 0.25);
}

TEST(ParamList, CanonicalIsOrderIndependent) {
  vu::ParamList a;
  a.set("b", "2");
  a.set("a", "1");
  vu::ParamList b;
  b.set("a", "1");
  b.set("b", "2");
  EXPECT_EQ(a.canonical(), b.canonical());
  EXPECT_EQ(a.canonical(), "a=1;b=2");
}

TEST(ParamList, SerializationRoundTrip) {
  vu::ParamList params;
  params.set_double("iso", 0.125);
  params.set("viewpoint", "1,2,3");
  vu::ByteBuffer buf;
  params.serialize(buf);
  const auto restored = vu::ParamList::deserialize(buf);
  EXPECT_EQ(restored, params);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  vu::Rng a(123);
  vu::Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, UniformStaysInRange) {
  vu::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 5.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, NormalHasReasonableMoments) {
  vu::Rng rng(42);
  vu::RunningStat stat;
  for (int i = 0; i < 20000; ++i) {
    stat.add(rng.normal());
  }
  EXPECT_NEAR(stat.mean(), 0.0, 0.05);
  EXPECT_NEAR(stat.stddev(), 1.0, 0.05);
}

TEST(Rng, ForkedStreamsDiffer) {
  vu::Rng rng(9);
  auto a = rng.fork(1);
  auto b = rng.fork(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(RunningStat, MatchesClosedForm) {
  vu::RunningStat stat;
  for (double x : {1.0, 2.0, 3.0, 4.0}) {
    stat.add(x);
  }
  EXPECT_EQ(stat.count(), 4u);
  EXPECT_DOUBLE_EQ(stat.mean(), 2.5);
  EXPECT_DOUBLE_EQ(stat.sum(), 10.0);
  EXPECT_NEAR(stat.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(stat.min(), 1.0);
  EXPECT_DOUBLE_EQ(stat.max(), 4.0);
}

TEST(RunningStat, EmptyIsZero) {
  vu::RunningStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_EQ(stat.mean(), 0.0);
  EXPECT_EQ(stat.variance(), 0.0);
}

TEST(Histogram, CountsAndQuantiles) {
  vu::Histogram hist(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) {
    hist.add(static_cast<double>(i % 10) + 0.5);
  }
  EXPECT_EQ(hist.total(), 100u);
  for (std::size_t b = 0; b < 10; ++b) {
    EXPECT_EQ(hist.bucket(b), 10u);
  }
  EXPECT_NEAR(hist.quantile(0.5), 4.5, 1.01);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  vu::Histogram hist(0.0, 1.0, 4);
  hist.add(-100.0);
  hist.add(100.0);
  EXPECT_EQ(hist.bucket(0), 1u);
  EXPECT_EQ(hist.bucket(3), 1u);
}

// ---------------------------------------------------------------------------
// string_util
// ---------------------------------------------------------------------------

TEST(StringUtil, HumanBytes) {
  EXPECT_EQ(vu::human_bytes(512), "512 B");
  EXPECT_EQ(vu::human_bytes(2048), "2.00 KB");
  EXPECT_EQ(vu::human_bytes(static_cast<std::uint64_t>(1.12 * 1024 * 1024 * 1024)), "1.12 GB");
}

TEST(StringUtil, SplitAndJoin) {
  const auto parts = vu::split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(vu::join({"x", "y", "z"}, "-"), "x-y-z");
}

TEST(StringUtil, PadWidths) {
  EXPECT_EQ(vu::pad("ab", 5), "ab   ");
  EXPECT_EQ(vu::pad("ab", 5, false), "   ab");
  EXPECT_EQ(vu::pad("abcdef", 3), "abc");
}

// ---------------------------------------------------------------------------
// Timer
// ---------------------------------------------------------------------------

TEST(PhaseTimer, AttributesTimeToPhases) {
  vu::PhaseTimer timer;
  timer.enter("compute");
  timer.enter("read");
  timer.stop();
  EXPECT_GE(timer.seconds("compute"), 0.0);
  EXPECT_GE(timer.seconds("read"), 0.0);
  EXPECT_EQ(timer.seconds("send"), 0.0);
  EXPECT_EQ(timer.phases().size(), 2u);
}

TEST(PhaseTimer, MergeAccumulates) {
  vu::PhaseTimer a;
  a.enter("compute");
  a.stop();
  vu::PhaseTimer b;
  b.enter("compute");
  b.enter("send");
  b.stop();
  a.merge(b);
  EXPECT_EQ(a.phases().size(), 2u);
}

TEST(PhaseTimer, AddRejectsGarbageSamples) {
  vu::PhaseTimer timer;
  timer.add("compute", 1.5);
  timer.add("compute", -3.0);  // negative: dropped
  timer.add("compute", std::numeric_limits<double>::quiet_NaN());
  timer.add("compute", std::numeric_limits<double>::infinity());
  timer.add("", 2.0);  // unnamed phase: dropped
  EXPECT_DOUBLE_EQ(timer.seconds("compute"), 1.5);
  EXPECT_EQ(timer.phases().size(), 1u);
}

TEST(PhaseTimer, MergeSaturatesInsteadOfOverflowing) {
  vu::PhaseTimer a;
  a.add("compute", std::numeric_limits<double>::max());
  vu::PhaseTimer b;
  b.add("compute", std::numeric_limits<double>::max());
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.seconds("compute"), std::numeric_limits<double>::max());
  EXPECT_TRUE(std::isfinite(a.seconds("compute")));
}

TEST(PhaseTimer, ListenerSeesEveryTransition) {
  vu::PhaseTimer timer;
  std::vector<std::pair<std::string, std::string>> transitions;
  timer.set_listener([&](const std::string& from, const std::string& to) {
    transitions.emplace_back(from, to);
  });
  timer.enter("read");
  timer.enter("read");  // same phase: no transition
  timer.enter("compute");
  timer.reset();  // open phase closes with an empty "next"
  ASSERT_EQ(transitions.size(), 3u);
  EXPECT_EQ(transitions[0], (std::pair<std::string, std::string>{"", "read"}));
  EXPECT_EQ(transitions[1], (std::pair<std::string, std::string>{"read", "compute"}));
  EXPECT_EQ(transitions[2], (std::pair<std::string, std::string>{"compute", ""}));
}

TEST(ScopedPhase, RestoresPreviousPhase) {
  vu::PhaseTimer timer;
  timer.enter("outer");
  {
    vu::ScopedPhase inner(timer, "inner");
    EXPECT_EQ(timer.current(), "inner");
  }
  EXPECT_EQ(timer.current(), "outer");
  timer.stop();
}

TEST(WallTimer, PauseStopsAccumulation) {
  vu::WallTimer timer;
  timer.pause();
  const double t0 = timer.seconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_DOUBLE_EQ(timer.seconds(), t0);
  timer.resume();
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_GT(timer.seconds(), t0);
}

// ---------------------------------------------------------------------------
// BlockingQueue
// ---------------------------------------------------------------------------

TEST(BlockingQueue, FifoOrder) {
  vu::BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(BlockingQueue, CloseReleasesConsumers) {
  vu::BlockingQueue<int> q;
  std::thread consumer([&] {
    const auto item = q.pop();
    EXPECT_FALSE(item.has_value());
  });
  q.close();
  consumer.join();
  EXPECT_FALSE(q.push(1));
}

TEST(BlockingQueue, PopForTimesOut) {
  vu::BlockingQueue<int> q;
  const auto item = q.pop_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(item.has_value());
}

TEST(BlockingQueue, ManyProducersOneConsumer) {
  vu::BlockingQueue<int> q;
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.push(p * kPerProducer + i);
      }
    });
  }
  int count = 0;
  long long sum = 0;
  while (count < kProducers * kPerProducer) {
    auto item = q.pop();
    ASSERT_TRUE(item.has_value());
    sum += *item;
    ++count;
  }
  for (auto& t : producers) {
    t.join();
  }
  const long long n = kProducers * kPerProducer;
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST(BlockingQueue, CloseUnblocksPopForPromptly) {
  // Shutdown race: a consumer parked in pop_for() with a long timeout must
  // be released by close() right away, not after the timeout expires.
  vu::BlockingQueue<int> q;
  std::atomic<bool> released{false};
  std::thread consumer([&] {
    const auto item = q.pop_for(std::chrono::seconds(30));
    EXPECT_FALSE(item.has_value());
    released.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto before = std::chrono::steady_clock::now();
  q.close();
  consumer.join();
  const auto waited = std::chrono::steady_clock::now() - before;
  EXPECT_TRUE(released.load());
  EXPECT_LT(waited, std::chrono::seconds(5));
}

TEST(BlockingQueue, CloseIsIdempotentAndDrainsBufferedItems) {
  vu::BlockingQueue<int> q;
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  q.close();  // second close is a no-op
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(3));  // late push dropped
  // Items enqueued before the close still drain (end-of-stream afterwards).
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop_for(std::chrono::milliseconds(10)).value(), 2);
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BlockingQueue, ConcurrentPushPopCloseDoesNotLoseDeliveredItems) {
  // Producers racing close(): every pop()ed value must be one that push()
  // acknowledged, and all consumers must terminate.
  vu::BlockingQueue<int> q;
  constexpr int kProducers = 4;
  std::atomic<int> accepted{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  threads.reserve(kProducers + 2);
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, &accepted, p] {
      for (int i = 0; i < 1000; ++i) {
        if (q.push(p * 1000 + i)) {
          accepted.fetch_add(1);
        }
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&q, &popped] {
      while (q.pop().has_value()) {
        popped.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  q.close();
  for (auto& t : threads) {
    t.join();
  }
  // Consumers saw at most what was accepted; whatever is left is buffered.
  int drained = 0;
  while (q.try_pop().has_value()) {
    ++drained;
  }
  EXPECT_EQ(popped.load() + drained, accepted.load());
}

// ---------------------------------------------------------------------------
// Logger
// ---------------------------------------------------------------------------

TEST(Logger, RespectsLevelAndComponent) {
  std::ostringstream sink;
  auto& logger = vu::Logger::instance();
  logger.set_stream(&sink);
  logger.set_level(vu::LogLevel::kWarn);

  VIRA_INFO("test") << "hidden";
  VIRA_WARN("test") << "visible " << 42;

  logger.set_stream(nullptr);
  logger.set_level(vu::LogLevel::kInfo);

  const std::string output = sink.str();
  EXPECT_EQ(output.find("hidden"), std::string::npos);
  EXPECT_NE(output.find("visible 42"), std::string::npos);
  EXPECT_NE(output.find("[test]"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ByteReader (zero-copy cursor)
// ---------------------------------------------------------------------------

TEST(ByteReader, ReadsWithoutCopyingBuffer) {
  vu::ByteBuffer buf;
  buf.write<std::int32_t>(-7);
  buf.write_string("cursor");
  buf.write_vector<float>({1.5f, 2.5f});

  vu::ByteReader reader(buf);
  EXPECT_EQ(reader.read<std::int32_t>(), -7);
  EXPECT_EQ(reader.read_string(), "cursor");
  EXPECT_EQ(reader.read_vector<float>(), (std::vector<float>{1.5f, 2.5f}));
  EXPECT_EQ(reader.remaining(), 0u);
  // The source buffer's own read position is untouched by the cursor.
  EXPECT_EQ(buf.read<std::int32_t>(), -7);
}

TEST(ByteReader, TracksPositionAndThrowsPastEnd) {
  vu::ByteBuffer buf;
  buf.write<std::uint16_t>(9);
  vu::ByteReader reader(buf);
  EXPECT_EQ(reader.pos(), 0u);
  (void)reader.read<std::uint16_t>();
  EXPECT_EQ(reader.pos(), sizeof(std::uint16_t));
  EXPECT_THROW((void)reader.read<std::uint16_t>(), std::out_of_range);
}

TEST(ByteReader, CorruptLengthPrefixThrows) {
  vu::ByteBuffer buf;
  buf.write<std::uint64_t>(1ull << 40);  // vector count with no payload
  vu::ByteReader reader(buf);
  EXPECT_THROW((void)reader.read_vector<double>(), std::out_of_range);
}

TEST(ByteReader, StartsAtBufferReadPosition) {
  vu::ByteBuffer buf;
  buf.write<std::int32_t>(1);
  buf.write<std::int32_t>(2);
  (void)buf.read<std::int32_t>();  // advance the buffer's own cursor
  vu::ByteReader reader(buf);
  EXPECT_EQ(reader.read<std::int32_t>(), 2);
  EXPECT_EQ(reader.remaining(), 0u);
}

// ---------------------------------------------------------------------------
// TaskPool / Future
// ---------------------------------------------------------------------------

TEST(TaskPool, SubmitReturnsValues) {
  vu::TaskPool pool(2, "test.pool.values");
  std::vector<vu::Future<int>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(TaskPool, ZeroThreadsRunsInline) {
  vu::TaskPool pool(0, "test.pool.inline");
  std::thread::id task_thread;
  auto future = pool.submit([&] {
    task_thread = std::this_thread::get_id();
    return 1;
  });
  EXPECT_TRUE(future.ready());  // executed during submit
  EXPECT_EQ(task_thread, std::this_thread::get_id());
  EXPECT_EQ(future.get(), 1);
}

TEST(TaskPool, ExceptionsPropagateThroughGet) {
  vu::TaskPool pool(1, "test.pool.throw");
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)future.get(), std::runtime_error);
}

TEST(TaskPool, CancelQueuedTaskDropsCallable) {
  vu::TaskPool pool(1, "test.pool.cancel");
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  // Occupy the single thread so the next submit stays queued.
  auto blocker = pool.submit([&] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return 0;
  });
  // Track callable destruction: cancel must release captured resources
  // immediately (the DMS in-flight token pattern relies on this).
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  auto queued = pool.submit([&ran, token] {
    ++ran;
    return *token;
  });
  token.reset();

  EXPECT_TRUE(queued.cancel());
  EXPECT_TRUE(queued.ready());
  EXPECT_TRUE(watch.expired());  // callable (and its captures) dropped
  EXPECT_THROW((void)queued.get(), vu::TaskCancelled);

  release = true;
  EXPECT_EQ(blocker.get(), 0);
  EXPECT_EQ(ran.load(), 0);
}

TEST(TaskPool, RunningTaskCannotBeCancelled) {
  vu::TaskPool pool(1, "test.pool.nocancel");
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  auto future = pool.submit([&] {
    started = true;
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return 7;
  });
  while (!started.load()) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  EXPECT_FALSE(future.cancel());
  release = true;
  EXPECT_EQ(future.get(), 7);
}

TEST(TaskPool, CloseCancelsQueuedAndRejectsNew) {
  vu::TaskPool pool(1, "test.pool.close");
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  auto blocker = pool.submit([&] {
    started = true;
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return 0;
  });
  // Park the queued task behind the running blocker so close() finds it
  // still queued; release the blocker only once close() is joining.
  while (!started.load()) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  auto queued = pool.submit([] { return 1; });
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    release = true;
  });
  pool.close();
  releaser.join();
  EXPECT_THROW((void)queued.get(), vu::TaskCancelled);
  // Post-close submissions settle immediately as cancelled.
  auto rejected = pool.submit([] { return 2; });
  EXPECT_TRUE(rejected.ready());
  EXPECT_THROW((void)rejected.get(), vu::TaskCancelled);
  EXPECT_EQ(blocker.get(), 0);
}

TEST(TaskPool, FutureWaitForAndReadyValue) {
  auto ready = vu::Future<std::string>::ready_value("hit");
  EXPECT_TRUE(ready.valid());
  EXPECT_TRUE(ready.ready());
  EXPECT_TRUE(ready.wait_for(std::chrono::nanoseconds(0)));
  EXPECT_EQ(ready.get(), "hit");

  vu::Future<int> invalid;
  EXPECT_FALSE(invalid.valid());
  EXPECT_FALSE(invalid.wait_for(std::chrono::milliseconds(1)));
  EXPECT_THROW((void)invalid.get(), std::logic_error);

  vu::TaskPool pool(1, "test.pool.wait");
  std::atomic<bool> release{false};
  auto slow = pool.submit([&] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return 3;
  });
  EXPECT_FALSE(slow.wait_for(std::chrono::milliseconds(2)));
  release = true;
  EXPECT_TRUE(slow.wait_for(std::chrono::seconds(10)));
  EXPECT_EQ(slow.get(), 3);
}

// ---------------------------------------------------------------------------
// PhaseTimer listener exception safety
// ---------------------------------------------------------------------------

TEST(PhaseTimer, ThrowingListenerDoesNotCorruptAccounting) {
  vu::PhaseTimer timer;
  int calls = 0;
  timer.set_listener([&](const std::string&, const std::string&) {
    ++calls;
    throw std::runtime_error("listener bug");
  });

  EXPECT_NO_THROW(timer.enter("compute"));
  EXPECT_EQ(timer.current(), "compute");
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_NO_THROW(timer.enter("read"));
  EXPECT_EQ(timer.current(), "read");
  EXPECT_GT(timer.seconds("compute"), 0.0);
  EXPECT_NO_THROW(timer.reset());
  EXPECT_EQ(timer.current(), "");
  EXPECT_EQ(timer.total(), 0.0);
  EXPECT_GE(calls, 3);
}

TEST(PhaseTimer, ListenerSeesTransitionPair) {
  vu::PhaseTimer timer;
  std::vector<std::pair<std::string, std::string>> transitions;
  timer.set_listener([&](const std::string& prev, const std::string& next) {
    transitions.emplace_back(prev, next);
  });
  timer.enter("a");
  timer.enter("b");
  timer.stop();
  ASSERT_EQ(transitions.size(), 3u);
  EXPECT_EQ(transitions[0], (std::pair<std::string, std::string>{"", "a"}));
  EXPECT_EQ(transitions[1], (std::pair<std::string, std::string>{"a", "b"}));
  EXPECT_EQ(transitions[2], (std::pair<std::string, std::string>{"b", ""}));
}
