#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "grid/analytic_fields.hpp"
#include "grid/bsp_tree.hpp"
#include "grid/cell_locator.hpp"
#include "grid/dataset_io.hpp"
#include "grid/structured_block.hpp"
#include "grid/synthetic.hpp"
#include "math/eigen_sym3.hpp"
#include "util/rng.hpp"

namespace vg = vira::grid;
namespace vm = vira::math;

namespace {

/// A unit box block with optionally perturbed (curvilinear) interior nodes.
vg::StructuredBlock make_box_block(int ni, int nj, int nk, double perturb = 0.0,
                                   std::uint64_t seed = 1) {
  vg::StructuredBlock block(ni, nj, nk);
  vira::util::Rng rng(seed);
  for (int k = 0; k < nk; ++k) {
    for (int j = 0; j < nj; ++j) {
      for (int i = 0; i < ni; ++i) {
        vm::Vec3 p{static_cast<double>(i) / (ni - 1), static_cast<double>(j) / (nj - 1),
                   static_cast<double>(k) / (nk - 1)};
        const bool interior =
            i > 0 && i < ni - 1 && j > 0 && j < nj - 1 && k > 0 && k < nk - 1;
        if (interior && perturb > 0.0) {
          p += vm::Vec3{rng.uniform(-perturb, perturb), rng.uniform(-perturb, perturb),
                        rng.uniform(-perturb, perturb)};
        }
        block.set_point(i, j, k, p);
      }
    }
  }
  return block;
}

std::string temp_dir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / ("vira_grid_test_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

}  // namespace

// ---------------------------------------------------------------------------
// StructuredBlock basics
// ---------------------------------------------------------------------------

TEST(StructuredBlock, DimensionsAndCounts) {
  vg::StructuredBlock block(4, 3, 5);
  EXPECT_EQ(block.node_count(), 60);
  EXPECT_EQ(block.cell_count(), 3 * 2 * 4);
  EXPECT_THROW(vg::StructuredBlock(1, 3, 3), std::invalid_argument);
}

TEST(StructuredBlock, PointAndVelocityRoundTrip) {
  vg::StructuredBlock block(3, 3, 3);
  block.set_point(1, 2, 0, {1.5, -2.0, 0.25});
  block.set_velocity(1, 2, 0, {3.0, 4.0, 5.0});
  EXPECT_NEAR(block.point(1, 2, 0).x, 1.5, 1e-6);
  EXPECT_NEAR(block.velocity(1, 2, 0).z, 5.0, 1e-6);
}

TEST(StructuredBlock, ScalarFieldsCreatedOnDemand) {
  vg::StructuredBlock block(2, 2, 2);
  EXPECT_FALSE(block.has_scalar("pressure"));
  block.set_scalar_at("pressure", 0, 0, 0, 7.0f);
  EXPECT_TRUE(block.has_scalar("pressure"));
  EXPECT_EQ(block.scalar_at("pressure", 0, 0, 0), 7.0f);
  EXPECT_EQ(block.scalar_at("pressure", 1, 1, 1), 0.0f);
  const auto& cblock = block;
  EXPECT_THROW((void)cblock.scalar("missing"), std::out_of_range);
}

TEST(StructuredBlock, ScalarRange) {
  vg::StructuredBlock block(2, 2, 2);
  const auto field = block.scalar("s");
  for (std::size_t n = 0; n < field.size(); ++n) {
    field[n] = static_cast<float>(n);
  }
  const auto [lo, hi] = block.scalar_range("s");
  EXPECT_EQ(lo, 0.0f);
  EXPECT_EQ(hi, 7.0f);
}

TEST(StructuredBlock, BoundsTrackEdits) {
  auto block = make_box_block(3, 3, 3);
  EXPECT_NEAR(block.bounds().hi.x, 1.0, 1e-6);
  block.set_point(2, 2, 2, {5, 5, 5});
  EXPECT_NEAR(block.bounds().hi.x, 5.0, 1e-6);
}

TEST(StructuredBlock, SerializationRoundTrip) {
  auto block = make_box_block(4, 5, 3, 0.05);
  block.set_block_id(17);
  block.set_time(1.25);
  block.set_velocity(1, 1, 1, {9, 8, 7});
  block.set_scalar_at("pressure", 2, 2, 1, 3.5f);

  vira::util::ByteBuffer buf;
  block.serialize(buf);
  EXPECT_EQ(buf.size(), block.serialized_size());

  const auto restored = vg::StructuredBlock::deserialize(buf);
  EXPECT_EQ(restored.block_id(), 17);
  EXPECT_DOUBLE_EQ(restored.time(), 1.25);
  EXPECT_EQ(restored.ni(), 4);
  EXPECT_NEAR(restored.velocity(1, 1, 1).x, 9.0, 1e-6);
  EXPECT_EQ(restored.scalar_at("pressure", 2, 2, 1), 3.5f);
  EXPECT_NEAR(restored.point(3, 4, 2).x, block.point(3, 4, 2).x, 1e-9);
}

TEST(StructuredBlock, DeserializeRejectsGarbage) {
  vira::util::ByteBuffer buf;
  buf.write<std::uint32_t>(0xbadc0de);
  EXPECT_THROW(vg::StructuredBlock::deserialize(buf), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Interpolation and inversion
// ---------------------------------------------------------------------------

TEST(StructuredBlock, InterpolatePositionMatchesCorners) {
  auto block = make_box_block(3, 3, 3, 0.1);
  const vg::CellCoord corner{1, 1, 1, 0.0, 0.0, 0.0};
  EXPECT_NEAR((block.interpolate_position(corner) - block.point(1, 1, 1)).norm(), 0.0, 1e-7);
  const vg::CellCoord far{1, 1, 1, 1.0, 1.0, 1.0};
  EXPECT_NEAR((block.interpolate_position(far) - block.point(2, 2, 2)).norm(), 0.0, 1e-7);
}

TEST(StructuredBlock, WorldToLocalRoundTripOnCurvilinearCells) {
  auto block = make_box_block(5, 5, 5, 0.04);
  vira::util::Rng rng(33);
  int tested = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const vg::CellCoord truth{static_cast<int>(rng.next_below(4)),
                              static_cast<int>(rng.next_below(4)),
                              static_cast<int>(rng.next_below(4)),
                              rng.uniform(0.05, 0.95), rng.uniform(0.05, 0.95),
                              rng.uniform(0.05, 0.95)};
    const vm::Vec3 p = block.interpolate_position(truth);
    const auto found = block.world_to_local(truth.i, truth.j, truth.k, p);
    ASSERT_TRUE(found.has_value());
    EXPECT_NEAR(found->u, truth.u, 1e-6);
    EXPECT_NEAR(found->v, truth.v, 1e-6);
    EXPECT_NEAR(found->w, truth.w, 1e-6);
    ++tested;
  }
  EXPECT_EQ(tested, 200);
}

TEST(StructuredBlock, WorldToLocalRejectsOutsidePoints) {
  auto block = make_box_block(3, 3, 3);
  EXPECT_FALSE(block.world_to_local(0, 0, 0, {5.0, 5.0, 5.0}).has_value());
  // Point in a *different* cell must be rejected for this cell.
  EXPECT_FALSE(block.world_to_local(0, 0, 0, {0.9, 0.9, 0.9}).has_value());
}

TEST(StructuredBlock, InterpolateVelocityIsTrilinear) {
  auto block = make_box_block(2, 2, 2);
  for (int k = 0; k < 2; ++k) {
    for (int j = 0; j < 2; ++j) {
      for (int i = 0; i < 2; ++i) {
        // A field linear in position is reproduced exactly by trilinear
        // interpolation on a unit cell.
        const auto p = block.point(i, j, k);
        block.set_velocity(i, j, k, {2 * p.x + 1, 3 * p.y, -p.z});
      }
    }
  }
  const vg::CellCoord mid{0, 0, 0, 0.3, 0.6, 0.2};
  const auto u = block.interpolate_velocity(mid);
  EXPECT_NEAR(u.x, 2 * 0.3 + 1, 1e-6);
  EXPECT_NEAR(u.y, 3 * 0.6, 1e-6);
  EXPECT_NEAR(u.z, -0.2, 1e-6);
}

// ---------------------------------------------------------------------------
// Gradients
// ---------------------------------------------------------------------------

TEST(StructuredBlock, VelocityGradientOfLinearField) {
  // u = A x exactly recoverable on any grid, including curvilinear ones.
  auto block = make_box_block(6, 6, 6, 0.03);
  const vm::Mat3 a = vm::Mat3::from_rows({1, 2, 0}, {0, -1, 3}, {2, 0, 1});
  for (int k = 0; k < 6; ++k) {
    for (int j = 0; j < 6; ++j) {
      for (int i = 0; i < 6; ++i) {
        block.set_velocity(i, j, k, a * block.point(i, j, k));
      }
    }
  }
  for (auto [i, j, k] : {std::array<int, 3>{2, 3, 2}, {0, 0, 0}, {5, 5, 5}, {1, 4, 3}}) {
    const vm::Mat3 g = block.velocity_gradient(i, j, k);
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < 3; ++c) {
        EXPECT_NEAR(g(r, c), a(r, c), 5e-4) << "node " << i << "," << j << "," << k;
      }
    }
  }
}

TEST(StructuredBlock, Lambda2NegativeInsideAnalyticVortexCore) {
  // Sample a Lamb–Oseen vortex; λ2 of the gradient must be negative near
  // the core and non-negative far outside.
  vg::LambOseenVortex vortex({0.5, 0.5, 0.5}, {0, 0, 1}, 2.0, 0.15);
  auto block = make_box_block(17, 17, 9);
  vg::sample_fields(block, vortex, 0.0);

  const vm::Mat3 g_core = block.velocity_gradient(8, 8, 4);  // on the axis
  EXPECT_LT(vm::lambda2_of(g_core), 0.0);

  const vm::Mat3 g_far = block.velocity_gradient(0, 0, 4);  // far corner
  EXPECT_GT(vm::lambda2_of(g_far), -1e-3);
}

// ---------------------------------------------------------------------------
// Coarsening
// ---------------------------------------------------------------------------

TEST(StructuredBlock, CoarsenedKeepsBoundariesAndFields) {
  auto block = make_box_block(9, 9, 9);
  block.set_block_id(3);
  block.scalar("pressure");
  const auto coarse = block.coarsened(4);
  EXPECT_EQ(coarse.ni(), 3);  // 0, 4, 8
  EXPECT_EQ(coarse.block_id(), 3);
  EXPECT_TRUE(coarse.has_scalar("pressure"));
  EXPECT_NEAR((coarse.point(2, 2, 2) - block.point(8, 8, 8)).norm(), 0.0, 1e-7);
  EXPECT_NEAR((coarse.point(0, 0, 0) - block.point(0, 0, 0)).norm(), 0.0, 1e-7);
}

TEST(StructuredBlock, CoarsenedStrideOneIsIdentityShape) {
  auto block = make_box_block(5, 4, 3);
  const auto coarse = block.coarsened(1);
  EXPECT_EQ(coarse.ni(), 5);
  EXPECT_EQ(coarse.nj(), 4);
  EXPECT_EQ(coarse.nk(), 3);
}

// ---------------------------------------------------------------------------
// CellLocator
// ---------------------------------------------------------------------------

TEST(CellLocator, FindsRandomInteriorPoints) {
  auto block = make_box_block(8, 8, 8, 0.02);
  vg::CellLocator locator(block);
  vira::util::Rng rng(5);
  for (int trial = 0; trial < 300; ++trial) {
    const vg::CellCoord truth{static_cast<int>(rng.next_below(7)),
                              static_cast<int>(rng.next_below(7)),
                              static_cast<int>(rng.next_below(7)),
                              rng.uniform(0.1, 0.9), rng.uniform(0.1, 0.9),
                              rng.uniform(0.1, 0.9)};
    const vm::Vec3 p = block.interpolate_position(truth);
    const auto found = locator.locate(p);
    ASSERT_TRUE(found.has_value()) << "trial " << trial;
    const vm::Vec3 back = block.interpolate_position(*found);
    EXPECT_NEAR((back - p).norm(), 0.0, 1e-6);
  }
}

TEST(CellLocator, RejectsOutsidePoints) {
  auto block = make_box_block(4, 4, 4);
  vg::CellLocator locator(block);
  EXPECT_FALSE(locator.locate({2.0, 0.5, 0.5}).has_value());
  EXPECT_FALSE(locator.locate({-0.5, 0.5, 0.5}).has_value());
}

TEST(CellLocator, HintAcceleratedLookupAgrees) {
  auto block = make_box_block(8, 8, 8, 0.02);
  vg::CellLocator locator(block);
  // Walk a straight path; each step uses the previous cell as hint.
  vg::CellCoord hint{0, 0, 0, 0.5, 0.5, 0.5};
  for (double s = 0.05; s < 0.95; s += 0.02) {
    const vm::Vec3 p{s, s, s};
    const auto found = locator.locate(p, hint);
    ASSERT_TRUE(found.has_value());
    const vm::Vec3 back = block.interpolate_position(*found);
    EXPECT_NEAR((back - p).norm(), 0.0, 1e-6);
    hint = *found;
  }
}

// ---------------------------------------------------------------------------
// BspTree
// ---------------------------------------------------------------------------

TEST(BspTree, LeafRangesPartitionTheBlock) {
  auto block = make_box_block(9, 7, 5);
  const auto field = block.scalar("s");
  for (std::size_t n = 0; n < field.size(); ++n) {
    field[n] = static_cast<float>(n % 17);
  }
  vg::BspTree tree(block, "s", {16});
  std::int64_t covered = 0;
  tree.traverse_unordered(/*iso=*/8.0f, [&](const vg::CellRange& range) {
    covered += range.cell_count();
  });
  // iso=8 lies inside every leaf's range for this synthetic field, so the
  // leaves must cover all cells exactly once.
  EXPECT_EQ(covered, block.cell_count());
}

TEST(BspTree, PrunesOutOfRangeIso) {
  auto block = make_box_block(9, 9, 9);
  const auto field = block.scalar("s");
  for (std::size_t n = 0; n < field.size(); ++n) {
    field[n] = 1.0f;
  }
  vg::BspTree tree(block, "s", {8});
  int visits = 0;
  tree.traverse({0, 0, 0}, 5.0f, [&](const vg::CellRange&) { ++visits; });
  EXPECT_EQ(visits, 0);
  const auto [lo, hi] = tree.root_range();
  EXPECT_EQ(lo, 1.0f);
  EXPECT_EQ(hi, 1.0f);
}

TEST(BspTree, FrontToBackOrderRespectsViewpoint) {
  auto block = make_box_block(17, 3, 3);
  const auto field = block.scalar("s");
  for (std::size_t n = 0; n < field.size(); ++n) {
    field[n] = 0.0f;  // all leaves active at iso 0
  }
  vg::BspTree tree(block, "s", {4});

  auto collect = [&](const vm::Vec3& viewpoint) {
    std::vector<double> centers;
    tree.traverse(viewpoint, 0.0f, [&](const vg::CellRange& range) {
      centers.push_back(0.5 * (range.i0 + range.i1));
    });
    return centers;
  };

  // Viewer on the -x side: leaves must arrive with ascending x.
  const auto from_left = collect({-10, 0.5, 0.5});
  for (std::size_t n = 1; n < from_left.size(); ++n) {
    EXPECT_LE(from_left[n - 1], from_left[n]);
  }
  // Viewer on the +x side: descending x.
  const auto from_right = collect({10, 0.5, 0.5});
  for (std::size_t n = 1; n < from_right.size(); ++n) {
    EXPECT_GE(from_right[n - 1], from_right[n]);
  }
}

TEST(BspTree, LeafSizeRespected) {
  auto block = make_box_block(17, 17, 17);
  block.scalar("s");
  vg::BspTree tree(block, "s", {32});
  tree.traverse_unordered(0.0f, [&](const vg::CellRange& range) {
    EXPECT_LE(range.cell_count(), 32);
    EXPECT_GT(range.cell_count(), 0);
  });
  EXPECT_GT(tree.leaf_count(), 1u);
}

// ---------------------------------------------------------------------------
// Dataset I/O
// ---------------------------------------------------------------------------

TEST(DatasetIo, WriteReadRoundTrip) {
  const auto dir = temp_dir("roundtrip");
  vg::UniformFlow flow({1, 2, 3});
  const auto meta = vg::generate_box(dir, flow, /*timesteps=*/3, 5, 4, 3, {0, 0, 0}, {1, 1, 1},
                                     0.1, /*nblocks=*/2);
  EXPECT_EQ(meta.timestep_count(), 3);
  EXPECT_EQ(meta.block_count(), 2);
  EXPECT_GT(meta.total_bytes(), 0u);

  vg::DatasetReader reader(dir);
  EXPECT_EQ(reader.meta().name, "Box");
  const auto block = reader.read_block(1, 1);
  EXPECT_EQ(block.block_id(), 1);
  EXPECT_NEAR(block.time(), 0.1, 1e-12);
  EXPECT_NEAR(block.velocity(0, 0, 0).y, 2.0, 1e-6);
  EXPECT_TRUE(block.has_scalar("pressure"));
  EXPECT_TRUE(block.has_scalar("density"));
  std::filesystem::remove_all(dir);
}

TEST(DatasetIo, PartialBlockReadMatchesFullDecode) {
  const auto dir = temp_dir("partial");
  vg::AbcFlow flow;
  vg::generate_box(dir, flow, 2, 4, 4, 4, {0, 0, 0}, {1, 1, 1}, 0.1, 3);
  vg::DatasetReader reader(dir);
  // Raw bytes of block 2 decode to the same content as read_block.
  auto bytes = reader.read_block_bytes(1, 2);
  const auto from_bytes = vg::StructuredBlock::deserialize(bytes);
  const auto direct = reader.read_block(1, 2);
  EXPECT_EQ(from_bytes.block_id(), direct.block_id());
  EXPECT_NEAR((from_bytes.point(3, 3, 3) - direct.point(3, 3, 3)).norm(), 0.0, 1e-12);
  std::filesystem::remove_all(dir);
}

TEST(DatasetIo, MetaSerializationRoundTrip) {
  vg::DatasetMeta meta;
  meta.name = "Test";
  meta.scalar_fields = {"pressure", "density"};
  vg::TimestepInfo step;
  step.time = 0.5;
  step.filename = "step_0000.vmb";
  vg::BlockInfo block;
  block.id = 7;
  block.ni = 4;
  block.nj = 5;
  block.nk = 6;
  block.offset = 128;
  block.size = 4096;
  block.bounds = vm::Aabb({0, 0, 0}, {1, 2, 3});
  step.blocks.push_back(block);
  meta.steps.push_back(step);

  vira::util::ByteBuffer buf;
  meta.serialize(buf);
  const auto restored = vg::DatasetMeta::deserialize(buf);
  EXPECT_EQ(restored.name, "Test");
  ASSERT_EQ(restored.steps.size(), 1u);
  EXPECT_EQ(restored.steps[0].blocks[0].size, 4096u);
  EXPECT_NEAR(restored.steps[0].blocks[0].bounds.hi.z, 3.0, 1e-12);
}

TEST(DatasetIo, ReaderRejectsMissingDirectory) {
  EXPECT_THROW(vg::DatasetReader("/nonexistent/vira/dir"), std::runtime_error);
}

TEST(DatasetIo, WriterEnforcesProtocol) {
  const auto dir = temp_dir("protocol");
  vg::DatasetWriter writer(dir, "X");
  EXPECT_THROW(writer.end_timestep(), std::logic_error);
  writer.begin_timestep(0.0);
  EXPECT_THROW(writer.begin_timestep(1.0), std::logic_error);
  EXPECT_THROW(writer.finish(), std::logic_error);
  writer.end_timestep();
  (void)writer.finish();
  EXPECT_THROW(writer.finish(), std::logic_error);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Synthetic datasets
// ---------------------------------------------------------------------------

TEST(Synthetic, EngineHasPaperBlockAndStepCounts) {
  const auto dir = temp_dir("engine");
  vg::GeneratorConfig config;
  config.directory = dir;
  config.timesteps = 2;  // keep the test fast; default is 63
  config.ni = 8;
  config.nj = 6;
  config.nk = 5;
  const auto meta = vg::generate_engine(config);
  EXPECT_EQ(meta.block_count(), 23);
  EXPECT_EQ(meta.timestep_count(), 2);
  EXPECT_EQ(meta.name, "Engine");
  // Every block decodes and has the expected fields.
  vg::DatasetReader reader(dir);
  const auto block = reader.read_block(0, 11);
  EXPECT_TRUE(block.has_scalar("pressure"));
  EXPECT_TRUE(block.has_scalar("density"));
  EXPECT_GT(block.bounds().diagonal(), 0.0);
  std::filesystem::remove_all(dir);
}

TEST(Synthetic, PropfanHasPaperBlockAndStepCounts) {
  const auto dir = temp_dir("propfan");
  vg::GeneratorConfig config;
  config.directory = dir;
  config.timesteps = 1;
  config.ni = 6;
  config.nj = 5;
  config.nk = 4;
  const auto meta = vg::generate_propfan(config);
  EXPECT_EQ(meta.block_count(), 144);
  EXPECT_EQ(meta.timestep_count(), 1);
  std::filesystem::remove_all(dir);
}

TEST(Synthetic, EngineFlowIsUnsteady) {
  const auto flow = vg::make_engine_flow();
  const vm::Vec3 p{0.01, 0.01, 0.05};
  const auto u0 = flow->velocity(p, 0.0);
  const auto u1 = flow->velocity(p, 0.05);
  EXPECT_GT((u1 - u0).norm(), 1e-6);
}

TEST(Synthetic, PropfanRowsCounterRotate) {
  const auto flow = vg::make_propfan_flow();
  // Tangential velocity near the front rotor vs the rear rotor has opposite
  // swirl sense. Probe at (x=∓0.25, y=0.6, z=0): swirl shows up in z.
  const auto front = flow->velocity({-0.25, 0.6, 0.0}, 0.0);
  const auto rear = flow->velocity({0.25, 0.6, 0.0}, 0.0);
  EXPECT_LT(front.z * rear.z, 0.0);
}

TEST(Synthetic, BlocksTileWithoutHugeGaps) {
  // Adjacent engine sector blocks must share their interface surfaces —
  // consecutive sectors touch along constant-θ faces.
  const auto dir = temp_dir("tiling");
  vg::GeneratorConfig config;
  config.directory = dir;
  config.timesteps = 1;
  config.ni = 6;
  config.nj = 6;
  config.nk = 4;
  vg::generate_engine(config);
  vg::DatasetReader reader(dir);
  const auto meta = reader.meta();
  // Bounding boxes of consecutive annular sectors overlap (shared face).
  for (int b = 1; b + 1 < 12; ++b) {
    const auto& first = meta.steps[0].blocks[b].bounds;
    const auto& second = meta.steps[0].blocks[b + 1].bounds;
    EXPECT_TRUE(first.overlaps(second)) << "blocks " << b << " and " << b + 1;
  }
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Analytic fields
// ---------------------------------------------------------------------------

TEST(AnalyticFields, RigidRotationOrthogonalToRadius) {
  vg::RigidRotation rot({0, 0, 0}, {0, 0, 1}, 2.0);
  const vm::Vec3 p{1.0, 0.0, 0.0};
  const auto u = rot.velocity(p, 0.0);
  EXPECT_NEAR(u.dot(p), 0.0, 1e-12);
  EXPECT_NEAR(u.norm(), 2.0, 1e-12);
}

TEST(AnalyticFields, LambOseenPeaksNearCore) {
  vg::LambOseenVortex vortex({0, 0, 0}, {0, 0, 1}, 1.0, 0.1);
  const double v_core = vortex.velocity({0.11, 0, 0}, 0.0).norm();
  const double v_far = vortex.velocity({2.0, 0, 0}, 0.0).norm();
  const double v_center = vortex.velocity({1e-14, 0, 0}, 0.0).norm();
  EXPECT_GT(v_core, v_far);
  EXPECT_NEAR(v_center, 0.0, 1e-9);
}

TEST(AnalyticFields, SuperpositionAddsComponents) {
  vg::SuperposedFlow flow;
  flow.add(std::make_shared<vg::UniformFlow>(vm::Vec3{1, 0, 0}));
  flow.add(std::make_shared<vg::UniformFlow>(vm::Vec3{0, 2, 0}));
  const auto u = flow.velocity({0, 0, 0}, 0.0);
  EXPECT_NEAR(u.x, 1.0, 1e-12);
  EXPECT_NEAR(u.y, 2.0, 1e-12);
}

TEST(AnalyticFields, PressureDropsWithSpeed) {
  vg::UniformFlow fast({10, 0, 0});
  vg::UniformFlow slow({1, 0, 0});
  EXPECT_LT(fast.pressure({0, 0, 0}, 0.0), slow.pressure({0, 0, 0}, 0.0));
}

// ---------------------------------------------------------------------------
// Curvilinear sector geometry (the real Engine/Propfan block shapes)
// ---------------------------------------------------------------------------

class SectorGeometryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = temp_dir("sector_geom");
    vg::GeneratorConfig config;
    config.directory = dir_;
    config.timesteps = 1;
    config.ni = 10;
    config.nj = 9;
    config.nk = 7;
    vg::generate_engine(config);
  }
  static void TearDownTestSuite() { std::filesystem::remove_all(dir_); }
  static std::string dir_;
};
std::string SectorGeometryTest::dir_;

TEST_F(SectorGeometryTest, LocatorRoundTripsOnAnnularSector) {
  vg::DatasetReader reader(dir_);
  // Block 5: an annular sector (curvilinear in all directions).
  const auto block = reader.read_block(0, 5);
  vg::CellLocator locator(block);
  vira::util::Rng rng(17);
  int located = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const vg::CellCoord truth{static_cast<int>(rng.next_below(block.cells_i())),
                              static_cast<int>(rng.next_below(block.cells_j())),
                              static_cast<int>(rng.next_below(block.cells_k())),
                              rng.uniform(0.1, 0.9), rng.uniform(0.1, 0.9),
                              rng.uniform(0.1, 0.9)};
    const auto p = block.interpolate_position(truth);
    const auto found = locator.locate(p);
    ASSERT_TRUE(found.has_value()) << "trial " << trial;
    EXPECT_NEAR((block.interpolate_position(*found) - p).norm(), 0.0, 1e-6);
    ++located;
  }
  EXPECT_EQ(located, 200);
}

TEST_F(SectorGeometryTest, GradientMatchesAnalyticFlowOnSector) {
  vg::DatasetReader reader(dir_);
  auto block = reader.read_block(0, 8);
  // Overwrite velocity with a pure rigid rotation (known gradient).
  vg::RigidRotation rotation({0, 0, 0}, {0, 0, 1}, 3.0);
  for (int k = 0; k < block.nk(); ++k) {
    for (int j = 0; j < block.nj(); ++j) {
      for (int i = 0; i < block.ni(); ++i) {
        block.set_velocity(i, j, k, rotation.velocity(block.point(i, j, k), 0.0));
      }
    }
  }
  // grad u = [[0,-3,0],[3,0,0],[0,0,0]] everywhere, even on the wavy
  // curvilinear sector mesh (metric terms must cancel exactly for a linear
  // field).
  const auto g = block.velocity_gradient(4, 4, 3);
  EXPECT_NEAR(g(0, 1), -3.0, 0.05);
  EXPECT_NEAR(g(1, 0), 3.0, 0.05);
  EXPECT_NEAR(g(0, 0), 0.0, 0.05);
  EXPECT_NEAR(g(2, 2), 0.0, 0.05);
}

TEST_F(SectorGeometryTest, BspTreeOnSectorBlockCoversActiveCells) {
  vg::DatasetReader reader(dir_);
  const auto block = reader.read_block(0, 3);
  const auto [lo, hi] = block.scalar_range("density");
  const float iso = 0.5f * (lo + hi);
  vg::BspTree tree(block, "density", vg::BspTree::BuildParams{32});

  // Every active cell must appear in exactly one visited leaf range.
  std::vector<char> visited(static_cast<std::size_t>(block.cell_count()), 0);
  tree.traverse_unordered(iso, [&](const vg::CellRange& range) {
    for (int k = range.k0; k < range.k1; ++k) {
      for (int j = range.j0; j < range.j1; ++j) {
        for (int i = range.i0; i < range.i1; ++i) {
          const auto index = (static_cast<std::size_t>(k) * block.cells_j() + j) *
                                 block.cells_i() + i;
          EXPECT_EQ(visited[index], 0) << "cell visited twice";
          visited[index] = 1;
        }
      }
    }
  });
  // Check coverage: every cell whose range straddles iso was visited.
  const auto& field = block.scalar("density");
  for (int k = 0; k < block.cells_k(); ++k) {
    for (int j = 0; j < block.cells_j(); ++j) {
      for (int i = 0; i < block.cells_i(); ++i) {
        bool below = false;
        bool above = false;
        for (const auto corner : block.cell_corners(i, j, k)) {
          (field[corner] < iso ? below : above) = true;
        }
        if (below && above) {
          const auto index = (static_cast<std::size_t>(k) * block.cells_j() + j) *
                                 block.cells_i() + i;
          EXPECT_EQ(visited[index], 1)
              << "active cell (" << i << "," << j << "," << k << ") missed";
        }
      }
    }
  }
}

TEST_F(SectorGeometryTest, CoarsenedSectorKeepsBounds) {
  vg::DatasetReader reader(dir_);
  const auto block = reader.read_block(0, 12);
  const auto coarse = block.coarsened(2);
  // Bounding box of the coarse block is contained in (and close to) the
  // fine block's box — boundary nodes are kept.
  EXPECT_TRUE(block.bounds().contains(coarse.bounds().lo, 1e-9));
  EXPECT_TRUE(block.bounds().contains(coarse.bounds().hi, 1e-9));
  EXPECT_GT(coarse.bounds().diagonal(), 0.8 * block.bounds().diagonal());
}

// ---------------------------------------------------------------------------
// Propfan annular geometry (axis = x, 144 blocks)
// ---------------------------------------------------------------------------

TEST(PropfanGeometry, SectorBlocksWrapTheAnnulus) {
  const auto dir = temp_dir("propfan_geom");
  vg::GeneratorConfig config;
  config.directory = dir;
  config.timesteps = 1;
  config.ni = 6;
  config.nj = 5;
  config.nk = 4;
  const auto meta = vg::generate_propfan(config);
  ASSERT_EQ(meta.block_count(), 144);

  // Union of block bounds covers the annulus: radius extremes near hub/tip.
  const auto bounds = meta.bounds();
  EXPECT_NEAR(bounds.lo.x, -0.6, 0.05);
  EXPECT_NEAR(bounds.hi.x, 0.6, 0.05);
  EXPECT_NEAR(bounds.hi.y, 1.0, 0.05);
  EXPECT_NEAR(bounds.lo.y, -1.0, 0.05);

  // Every block decodes, is non-degenerate, and holds the machine-axis
  // freestream (positive x velocity on average).
  vg::DatasetReader reader(dir);
  double mean_ux = 0.0;
  int samples = 0;
  for (int b = 0; b < 144; b += 17) {
    const auto block = reader.read_block(0, b);
    EXPECT_GT(block.bounds().diagonal(), 0.0);
    mean_ux += block.velocity(2, 2, 2).x;
    ++samples;
  }
  EXPECT_GT(mean_ux / samples, 10.0);
  std::filesystem::remove_all(dir);
}

TEST(PropfanGeometry, Lambda2FindsTipVortices) {
  const auto dir = temp_dir("propfan_l2");
  vg::GeneratorConfig config;
  config.directory = dir;
  config.timesteps = 1;
  config.ni = 8;
  config.nj = 7;
  config.nk = 6;
  vg::generate_propfan(config);
  vg::DatasetReader reader(dir);

  // Somewhere in the annulus λ2 must go clearly negative (the rotating
  // blade-tip vortices of Fig. 5).
  float min_lambda2 = 0.0f;
  for (int b = 0; b < reader.meta().block_count(); b += 7) {
    auto block = reader.read_block(0, b);
    for (int k = 1; k < block.nk() - 1; k += 2) {
      for (int j = 1; j < block.nj() - 1; j += 2) {
        for (int i = 1; i < block.ni() - 1; i += 2) {
          min_lambda2 = std::min(
              min_lambda2,
              static_cast<float>(vm::lambda2_of(block.velocity_gradient(i, j, k))));
        }
      }
    }
  }
  EXPECT_LT(min_lambda2, -1.0f);
  std::filesystem::remove_all(dir);
}
