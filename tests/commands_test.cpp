#include <gtest/gtest.h>

#include <filesystem>

#include "algo/cfd_command.hpp"
#include "core/backend.hpp"
#include "grid/synthetic.hpp"
#include "viz/assembly.hpp"
#include "viz/session.hpp"

namespace va = vira::algo;
namespace vc = vira::core;
namespace vg = vira::grid;
namespace vu = vira::util;
namespace vv = vira::viz;

namespace {

/// Small Engine-like dataset shared by every test in this binary.
class CommandsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    va::register_builtin_commands();
    dataset_ = (std::filesystem::temp_directory_path() / "vira_commands_engine").string();
    if (!std::filesystem::exists(dataset_ + "/dataset.vmi")) {
      std::filesystem::remove_all(dataset_);
      vg::GeneratorConfig config;
      config.directory = dataset_;
      config.timesteps = 4;
      config.ni = 10;
      config.nj = 8;
      config.nk = 6;
      vg::generate_engine(config);
    }
  }

  static std::unique_ptr<vc::Backend> make_backend(int workers) {
    vc::BackendConfig config;
    config.workers = workers;
    return std::make_unique<vc::Backend>(config);
  }

  /// Runs a command to completion, returning (collector, stats).
  static std::pair<vv::GeometryCollector, vc::CommandStats> run(
      vv::ExtractionSession& session, const std::string& command, vu::ParamList params) {
    auto stream = session.submit(command, params);
    vv::GeometryCollector collector;
    while (true) {
      auto packet = stream->next(std::chrono::milliseconds(60000));
      if (!packet) {
        ADD_FAILURE() << command << ": stream dried up";
        return {collector, {}};
      }
      if (packet->kind == vv::Packet::Kind::kComplete) {
        return {std::move(collector), packet->stats};
      }
      collector.consume(*packet);
    }
  }

  static vu::ParamList iso_params(int workers, double iso = 0.0) {
    vu::ParamList params;
    params.set("dataset", dataset_);
    params.set_int("step", 0);
    params.set("field", "density");
    params.set_double("iso", iso != 0.0 ? iso : density_iso_mid());
    params.set_int("workers", workers);
    return params;
  }

  /// Midpoint of the global density range at step 0 — always a valid,
  /// surface-producing iso value for the fixture dataset.
  static double density_iso_mid() {
    if (iso_mid_ == 0.0) {
      vg::DatasetReader reader(dataset_);
      float lo = std::numeric_limits<float>::max();
      float hi = std::numeric_limits<float>::lowest();
      for (int b = 0; b < reader.meta().block_count(); ++b) {
        const auto block = reader.read_block(0, b);
        const auto [blo, bhi] = block.scalar_range("density");
        lo = std::min(lo, blo);
        hi = std::max(hi, bhi);
      }
      iso_mid_ = 0.5 * (lo + hi);
    }
    return iso_mid_;
  }

  static std::string dataset_;
  static double iso_mid_;
};
std::string CommandsTest::dataset_;
double CommandsTest::iso_mid_ = 0.0;

}  // namespace

// ---------------------------------------------------------------------------
// Isosurface commands
// ---------------------------------------------------------------------------

TEST_F(CommandsTest, SimpleIsoProducesSurface) {
  auto backend = make_backend(2);
  vv::ExtractionSession session(backend->connect());
  auto [collector, stats] = run(session, "iso.simple", iso_params(2));
  ASSERT_TRUE(stats.success) << stats.error;
  EXPECT_GT(collector.flat_mesh().triangle_count(), 0u);
  // Simple commands bypass the DMS entirely.
  EXPECT_EQ(backend->dms_counters().requests, 0u);
}

TEST_F(CommandsTest, IsoDataManMatchesSimpleIso) {
  auto backend = make_backend(2);
  vv::ExtractionSession session(backend->connect());
  auto [simple, simple_stats] = run(session, "iso.simple", iso_params(2));
  auto [dataman, dataman_stats] = run(session, "iso.dataman", iso_params(2));
  ASSERT_TRUE(simple_stats.success);
  ASSERT_TRUE(dataman_stats.success);
  // Identical geometry regardless of the data path.
  EXPECT_EQ(simple.flat_mesh().triangle_count(), dataman.flat_mesh().triangle_count());
  EXPECT_NEAR(simple.flat_mesh().surface_area(), dataman.flat_mesh().surface_area(), 1e-6);
  EXPECT_GT(backend->dms_counters().requests, 0u);
}

TEST_F(CommandsTest, IsoResultIndependentOfWorkerCount) {
  auto backend = make_backend(4);
  vv::ExtractionSession session(backend->connect());
  auto [one, stats_one] = run(session, "iso.dataman", iso_params(1));
  auto [four, stats_four] = run(session, "iso.dataman", iso_params(4));
  ASSERT_TRUE(stats_one.success);
  ASSERT_TRUE(stats_four.success);
  EXPECT_EQ(stats_one.workers, 1);
  EXPECT_EQ(stats_four.workers, 4);
  EXPECT_EQ(one.flat_mesh().triangle_count(), four.flat_mesh().triangle_count());
  EXPECT_NEAR(one.flat_mesh().surface_area(), four.flat_mesh().surface_area(), 1e-6);
}

TEST_F(CommandsTest, ViewerIsoStreamsSameSurface) {
  auto backend = make_backend(2);
  vv::ExtractionSession session(backend->connect());
  auto [monolithic, mono_stats] = run(session, "iso.dataman", iso_params(2));

  auto params = iso_params(2);
  params.set_doubles("viewpoint", {0.0, 0.0, 0.5});
  params.set_int("stream_cells", 64);
  auto [streamed, stream_stats] = run(session, "iso.viewer", params);

  ASSERT_TRUE(mono_stats.success);
  ASSERT_TRUE(stream_stats.success) << stream_stats.error;
  // The streamed fragments reassemble the same surface.
  EXPECT_EQ(streamed.flat_mesh().triangle_count(), monolithic.flat_mesh().triangle_count());
  EXPECT_NEAR(streamed.flat_mesh().surface_area(), monolithic.flat_mesh().surface_area(), 1e-6);
  // And it really streamed: multiple partial packets, latency < runtime.
  EXPECT_GT(stream_stats.partial_packets, 1u);
  EXPECT_LT(stream_stats.latency, stream_stats.total_runtime + 1e-9);
  // Summary triangle count matches the received geometry.
  EXPECT_TRUE(streamed.have_summary());
  EXPECT_EQ(streamed.summary_triangles(), streamed.flat_mesh().triangle_count());
}

TEST_F(CommandsTest, ViewerIsoFirstFragmentsAreNearViewer) {
  auto backend = make_backend(1);
  vv::ExtractionSession session(backend->connect());
  const vira::math::Vec3 viewpoint{0.0, 0.0, 0.0};
  auto params = iso_params(1);
  params.set_doubles("viewpoint", {viewpoint.x, viewpoint.y, viewpoint.z});
  params.set_int("stream_cells", 32);

  auto stream = session.submit("iso.viewer", params);
  std::vector<double> fragment_distances;
  while (true) {
    auto packet = stream->next(std::chrono::milliseconds(60000));
    ASSERT_TRUE(packet.has_value());
    if (packet->kind == vv::Packet::Kind::kComplete) {
      break;
    }
    if (packet->kind == vv::Packet::Kind::kPartial) {
      auto fragment = va::decode_fragment(packet->payload);
      if (fragment.kind == va::kPayloadMesh && !fragment.mesh.empty()) {
        fragment_distances.push_back(
            std::sqrt(fragment.mesh.bounds().distance2(viewpoint)));
      }
    }
  }
  ASSERT_GT(fragment_distances.size(), 2u);
  // Front-to-back tendency: the first fragment is closer than the last.
  EXPECT_LT(fragment_distances.front(), fragment_distances.back() + 1e-9);
}

// ---------------------------------------------------------------------------
// Vortex commands
// ---------------------------------------------------------------------------

TEST_F(CommandsTest, VortexCommandsAgree) {
  auto backend = make_backend(2);
  vv::ExtractionSession session(backend->connect());
  vu::ParamList params;
  params.set("dataset", dataset_);
  params.set_int("step", 0);
  params.set_double("iso", -1.0);  // λ2 threshold inside the vortical range
  params.set_int("workers", 2);

  auto [simple, simple_stats] = run(session, "vortex.simple", params);
  auto [dataman, dataman_stats] = run(session, "vortex.dataman", params);
  ASSERT_TRUE(simple_stats.success) << simple_stats.error;
  ASSERT_TRUE(dataman_stats.success) << dataman_stats.error;
  EXPECT_GT(simple.flat_mesh().triangle_count(), 0u);
  EXPECT_EQ(simple.flat_mesh().triangle_count(), dataman.flat_mesh().triangle_count());

  params.set_int("stream_cells", 64);
  auto [streamed, stream_stats] = run(session, "vortex.streamed", params);
  ASSERT_TRUE(stream_stats.success) << stream_stats.error;
  EXPECT_EQ(streamed.flat_mesh().triangle_count(), simple.flat_mesh().triangle_count());
  EXPECT_GE(stream_stats.partial_packets, 1u);
  EXPECT_TRUE(streamed.have_summary());
  EXPECT_EQ(streamed.summary_triangles(), streamed.flat_mesh().triangle_count());
}

// ---------------------------------------------------------------------------
// Pathline commands
// ---------------------------------------------------------------------------

TEST_F(CommandsTest, PathlinesProduceLines) {
  auto backend = make_backend(2);
  vv::ExtractionSession session(backend->connect());
  vu::ParamList params;
  params.set("dataset", dataset_);
  params.set_int("workers", 2);
  params.set_int("seed_count", 6);
  params.set_int("step0", 0);
  params.set_int("step1", 3);
  params.set_double("h_init", 2e-4);
  params.set_double("tolerance", 1e-4);

  auto [result, stats] = run(session, "pathlines.dataman", params);
  ASSERT_TRUE(stats.success) << stats.error;
  EXPECT_EQ(result.lines().line_count(), 6u);
  // Lines advance in time.
  for (std::size_t l = 0; l < result.lines().line_count(); ++l) {
    const auto times = result.lines().line_times(l);
    ASSERT_GE(times.size(), 1u);
    for (std::size_t n = 1; n < times.size(); ++n) {
      EXPECT_GE(times[n], times[n - 1]);
    }
  }
  // Markov prefetcher was active.
  EXPECT_GT(backend->dms_counters().prefetch_issued, 0u);
}

TEST_F(CommandsTest, SimplePathlinesMatchDataMan) {
  auto backend = make_backend(1);
  vv::ExtractionSession session(backend->connect());
  vu::ParamList params;
  params.set("dataset", dataset_);
  params.set_int("workers", 1);
  params.set_doubles("seeds", {0.005, 0.005, 0.05, -0.01, 0.01, 0.06});
  params.set_int("step0", 0);
  params.set_int("step1", 2);
  params.set_double("tolerance", 1e-5);

  auto [simple, simple_stats] = run(session, "pathlines.simple", params);
  auto [dataman, dataman_stats] = run(session, "pathlines.dataman", params);
  ASSERT_TRUE(simple_stats.success) << simple_stats.error;
  ASSERT_TRUE(dataman_stats.success) << dataman_stats.error;
  ASSERT_EQ(simple.lines().line_count(), dataman.lines().line_count());
  for (std::size_t l = 0; l < simple.lines().line_count(); ++l) {
    const auto a = simple.lines().line(l);
    const auto b = dataman.lines().line(l);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t n = 0; n < a.size(); ++n) {
      EXPECT_NEAR((a[n] - b[n]).norm(), 0.0, 1e-9);
    }
  }
}

// ---------------------------------------------------------------------------
// Extension commands
// ---------------------------------------------------------------------------

TEST_F(CommandsTest, CutPlaneSlicesTheCylinder) {
  auto backend = make_backend(2);
  vv::ExtractionSession session(backend->connect());
  vu::ParamList params;
  params.set("dataset", dataset_);
  params.set_int("workers", 2);
  params.set_doubles("origin", {0.0, 0.0, 0.05});
  params.set_doubles("normal", {0.0, 0.0, 1.0});

  auto [result, stats] = run(session, "cutplane.dataman", params);
  ASSERT_TRUE(stats.success) << stats.error;
  const auto& mesh = result.flat_mesh();
  EXPECT_GT(mesh.triangle_count(), 0u);
  // Every slice vertex lies on the plane z = 0.05.
  for (std::size_t v = 0; v < mesh.vertex_count(); ++v) {
    EXPECT_NEAR(mesh.vertex(v).z, 0.05, 1e-5);
  }
}

TEST_F(CommandsTest, ProgressiveIsoRefinesMonotonically) {
  auto backend = make_backend(2);
  vv::ExtractionSession session(backend->connect());
  auto params = iso_params(2);

  auto stream = session.submit("iso.progressive", params);
  vv::GeometryCollector collector;
  std::vector<int> level_sequence;
  while (true) {
    auto packet = stream->next(std::chrono::milliseconds(60000));
    ASSERT_TRUE(packet.has_value());
    if (packet->kind == vv::Packet::Kind::kComplete) {
      ASSERT_TRUE(packet->stats.success) << packet->stats.error;
      break;
    }
    if (packet->kind == vv::Packet::Kind::kPartial) {
      const auto rewind = packet->payload.read_pos();
      auto fragment = va::decode_fragment(packet->payload);
      packet->payload.seek(rewind);
      if (fragment.kind == va::kPayloadMesh) {
        level_sequence.push_back(fragment.level);
      }
      collector.consume(*packet);
    }
  }
  // Three levels, coarse strictly before fine (the group barrier).
  ASSERT_FALSE(level_sequence.empty());
  EXPECT_TRUE(std::is_sorted(level_sequence.begin(), level_sequence.end()));
  EXPECT_EQ(level_sequence.front(), 0);
  EXPECT_EQ(level_sequence.back(), 2);
  // Refinement adds detail.
  const auto& levels = collector.levels();
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_LT(levels.at(0).triangle_count(), levels.at(2).triangle_count());
  // The finest level matches the non-progressive result.
  auto [reference, ref_stats] = run(session, "iso.dataman", iso_params(2));
  ASSERT_TRUE(ref_stats.success);
  EXPECT_EQ(levels.at(2).triangle_count(), reference.flat_mesh().triangle_count());
}

TEST_F(CommandsTest, ClearCacheCommandColdStarts) {
  auto backend = make_backend(1);
  vv::ExtractionSession session(backend->connect());
  (void)run(session, "iso.dataman", iso_params(1));
  const auto before = backend->dms_counters();

  vu::ParamList params;
  params.set_int("workers", 1);
  auto [result, stats] = run(session, "sys.clear_cache", params);
  ASSERT_TRUE(stats.success);

  (void)run(session, "iso.dataman", iso_params(1));
  const auto after = backend->dms_counters();
  EXPECT_GT(after.misses, before.misses);
}

// ---------------------------------------------------------------------------
// Error handling
// ---------------------------------------------------------------------------

TEST_F(CommandsTest, MissingDatasetParameterFails) {
  auto backend = make_backend(1);
  vv::ExtractionSession session(backend->connect());
  vu::ParamList params;
  params.set_int("workers", 1);
  auto [result, stats] = run(session, "iso.dataman", params);
  EXPECT_FALSE(stats.success);
  EXPECT_NE(stats.error.find("dataset"), std::string::npos);
}

TEST_F(CommandsTest, NonexistentDatasetFails) {
  auto backend = make_backend(1);
  vv::ExtractionSession session(backend->connect());
  vu::ParamList params;
  params.set("dataset", "/nonexistent/path/to/data");
  params.set_int("workers", 1);
  auto [result, stats] = run(session, "iso.dataman", params);
  EXPECT_FALSE(stats.success);
}

// ---------------------------------------------------------------------------
// Query commands
// ---------------------------------------------------------------------------

TEST_F(CommandsTest, FieldRangeMatchesDirectScan) {
  auto backend = make_backend(2);
  vv::ExtractionSession session(backend->connect());
  vu::ParamList params;
  params.set("dataset", dataset_);
  params.set_int("workers", 2);
  params.set("field", "density");
  std::vector<vu::ByteBuffer> fragments;
  const auto stats = session.submit("query.field_range", params)->wait(&fragments);
  ASSERT_TRUE(stats.success) << stats.error;
  ASSERT_EQ(fragments.size(), 1u);
  EXPECT_EQ(fragments[0].read_string(), "field_range");
  EXPECT_EQ(fragments[0].read_string(), "density");
  const float lo = fragments[0].read<float>();
  const float hi = fragments[0].read<float>();

  // Reference: direct dataset scan.
  vg::DatasetReader reader(dataset_);
  float ref_lo = 1e30f;
  float ref_hi = -1e30f;
  for (int b = 0; b < reader.meta().block_count(); ++b) {
    const auto [blo, bhi] = reader.read_block(0, b).scalar_range("density");
    ref_lo = std::min(ref_lo, blo);
    ref_hi = std::max(ref_hi, bhi);
  }
  EXPECT_FLOAT_EQ(lo, ref_lo);
  EXPECT_FLOAT_EQ(hi, ref_hi);
}

TEST_F(CommandsTest, FieldRangeComputesLambda2OnDemand) {
  auto backend = make_backend(2);
  vv::ExtractionSession session(backend->connect());
  vu::ParamList params;
  params.set("dataset", dataset_);
  params.set_int("workers", 2);
  params.set("field", "lambda2");
  std::vector<vu::ByteBuffer> fragments;
  const auto stats = session.submit("query.field_range", params)->wait(&fragments);
  ASSERT_TRUE(stats.success) << stats.error;
  ASSERT_EQ(fragments.size(), 1u);
  (void)fragments[0].read_string();
  (void)fragments[0].read_string();
  const float lo = fragments[0].read<float>();
  const float hi = fragments[0].read<float>();
  EXPECT_LT(lo, 0.0f);  // the engine flow has vortical regions
  EXPECT_GT(hi, lo);
}

TEST_F(CommandsTest, TimeseriesStreamsOneFramePerStep) {
  auto backend = make_backend(2);
  vv::ExtractionSession session(backend->connect());
  auto params = iso_params(2);
  params.set_int("step0", 0);
  params.set_int("step1", 3);

  auto stream = session.submit("iso.timeseries", params);
  std::map<int, std::size_t> triangles_per_step;
  while (true) {
    auto packet = stream->next(std::chrono::milliseconds(60000));
    ASSERT_TRUE(packet.has_value());
    if (packet->kind == vv::Packet::Kind::kComplete) {
      ASSERT_TRUE(packet->stats.success) << packet->stats.error;
      break;
    }
    if (packet->kind == vv::Packet::Kind::kPartial) {
      auto fragment = va::decode_fragment(packet->payload);
      if (fragment.kind == va::kPayloadMesh) {
        triangles_per_step[fragment.level] += fragment.mesh.triangle_count();
      }
    }
  }
  // Frames for steps 0..3, each matching the single-step command's output.
  ASSERT_EQ(triangles_per_step.size(), 4u);
  for (int step = 0; step <= 3; ++step) {
    auto single = iso_params(2);
    single.set_int("step", step);
    auto [collector, stats] = run(session, "iso.dataman", single);
    ASSERT_TRUE(stats.success);
    EXPECT_EQ(triangles_per_step.at(step), collector.flat_mesh().triangle_count())
        << "step " << step;
  }
}

// ---------------------------------------------------------------------------
// Property sweep: streamed/monolithic equivalence across iso values
// ---------------------------------------------------------------------------

class IsoValueSweepTest : public CommandsTest,
                          public ::testing::WithParamInterface<double> {};

TEST_P(IsoValueSweepTest, AllIsoPathsAgree) {
  // For any iso value in the field's range, every execution path — no DMS,
  // cached, view-dependent streamed — must produce the same surface.
  const double fraction = GetParam();
  vg::DatasetReader reader(dataset_);
  float lo = 1e30f;
  float hi = -1e30f;
  for (int b = 0; b < reader.meta().block_count(); ++b) {
    const auto [blo, bhi] = reader.read_block(0, b).scalar_range("density");
    lo = std::min(lo, blo);
    hi = std::max(hi, bhi);
  }
  const double iso = lo + (hi - lo) * fraction;

  auto backend = make_backend(3);
  vv::ExtractionSession session(backend->connect());
  auto params = iso_params(3, iso);

  auto [simple, simple_stats] = run(session, "iso.simple", params);
  ASSERT_TRUE(simple_stats.success) << simple_stats.error;

  auto [dataman, dataman_stats] = run(session, "iso.dataman", params);
  ASSERT_TRUE(dataman_stats.success) << dataman_stats.error;

  auto viewer_params = params;
  viewer_params.set_doubles("viewpoint", {0.05 * fraction, -0.1, 0.02});
  viewer_params.set_int("stream_cells", 48);
  auto [viewer, viewer_stats] = run(session, "iso.viewer", viewer_params);
  ASSERT_TRUE(viewer_stats.success) << viewer_stats.error;

  EXPECT_EQ(simple.flat_mesh().triangle_count(), dataman.flat_mesh().triangle_count());
  EXPECT_EQ(simple.flat_mesh().triangle_count(), viewer.flat_mesh().triangle_count());
  EXPECT_NEAR(simple.flat_mesh().surface_area(), viewer.flat_mesh().surface_area(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(IsoFractions, IsoValueSweepTest,
                         ::testing::Values(0.15, 0.35, 0.5, 0.65, 0.85),
                         [](const auto& info) {
                           return "f" + std::to_string(static_cast<int>(info.param * 100));
                         });

TEST_F(CommandsTest, IsoNormalsParameterProducesShadedSurface) {
  auto backend = make_backend(2);
  vv::ExtractionSession session(backend->connect());
  auto params = iso_params(2);
  params.set_bool("normals", true);
  auto [collector, stats] = run(session, "iso.dataman", params);
  ASSERT_TRUE(stats.success) << stats.error;
  const auto& mesh = collector.flat_mesh();
  ASSERT_GT(mesh.triangle_count(), 0u);
  ASSERT_TRUE(mesh.has_normals());
  for (std::size_t v = 0; v < std::min<std::size_t>(mesh.vertex_count(), 64); ++v) {
    EXPECT_NEAR(mesh.normal(v).norm(), 1.0, 1e-5);
  }
}
