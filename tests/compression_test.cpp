#include <gtest/gtest.h>

#include "grid/structured_block.hpp"
#include "grid/synthetic.hpp"
#include "util/compression.hpp"
#include "util/rng.hpp"

namespace vu = vira::util;

namespace {

std::vector<std::byte> bytes_of(const std::string& text) {
  std::vector<std::byte> out(text.size());
  std::memcpy(out.data(), text.data(), text.size());
  return out;
}

void expect_roundtrip(const std::vector<std::byte>& raw, vu::Codec codec) {
  const auto compressed = vu::compress(raw.data(), raw.size(), codec);
  const auto restored = vu::decompress(compressed.data(), compressed.size());
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, raw);
}

}  // namespace

class CompressionRoundTrip : public ::testing::TestWithParam<vu::Codec> {};

TEST_P(CompressionRoundTrip, EmptyInput) { expect_roundtrip({}, GetParam()); }

TEST_P(CompressionRoundTrip, ShortText) {
  expect_roundtrip(bytes_of("viracocha"), GetParam());
}

TEST_P(CompressionRoundTrip, HighlyRepetitive) {
  std::vector<std::byte> raw(10000, std::byte{0x42});
  expect_roundtrip(raw, GetParam());
  const auto compressed = vu::compress(raw.data(), raw.size(), GetParam());
  if (GetParam() != vu::Codec::kStore) {
    EXPECT_LT(compressed.size(), raw.size() / 10);
  }
}

TEST_P(CompressionRoundTrip, EscapeByteRuns) {
  // 0xFF runs of every short length stress the RLE escape path.
  std::vector<std::byte> raw;
  for (int run = 1; run <= 6; ++run) {
    raw.insert(raw.end(), static_cast<std::size_t>(run), std::byte{0xFF});
    raw.push_back(std::byte{0x00});
  }
  expect_roundtrip(raw, GetParam());
}

TEST_P(CompressionRoundTrip, RandomBytesDoNotExplode) {
  vira::util::Rng rng(7);
  std::vector<std::byte> raw(50000);
  for (auto& b : raw) {
    b = static_cast<std::byte>(rng.next_u64() & 0xFF);
  }
  expect_roundtrip(raw, GetParam());
  // Incompressible input falls back to store: header overhead only.
  const auto compressed = vu::compress(raw.data(), raw.size(), GetParam());
  EXPECT_LE(compressed.size(), raw.size() + 16);
}

TEST_P(CompressionRoundTrip, PeriodicPattern) {
  std::vector<std::byte> raw;
  for (int n = 0; n < 5000; ++n) {
    raw.push_back(static_cast<std::byte>(n % 7));
  }
  expect_roundtrip(raw, GetParam());
}

TEST_P(CompressionRoundTrip, RealCfdBlockPayload) {
  vira::grid::LambOseenVortex vortex({0.5, 0.5, 0.5}, {0, 0, 1}, 2.0, 0.15);
  vira::grid::StructuredBlock block(12, 12, 12);
  for (int k = 0; k < 12; ++k) {
    for (int j = 0; j < 12; ++j) {
      for (int i = 0; i < 12; ++i) {
        block.set_point(i, j, k, {i / 11.0, j / 11.0, k / 11.0});
      }
    }
  }
  vira::grid::sample_fields(block, vortex, 0.0);
  vu::ByteBuffer buffer;
  block.serialize(buffer);
  std::vector<std::byte> raw(buffer.bytes().begin(), buffer.bytes().end());
  expect_roundtrip(raw, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Codecs, CompressionRoundTrip,
                         ::testing::Values(vu::Codec::kStore, vu::Codec::kRle, vu::Codec::kLz),
                         [](const auto& info) {
                           switch (info.param) {
                             case vu::Codec::kStore:
                               return "store";
                             case vu::Codec::kRle:
                               return "rle";
                             case vu::Codec::kLz:
                               return "lz";
                           }
                           return "?";
                         });

TEST(Compression, LzBeatsRleOnStructuredData) {
  // Repeating 16-byte record pattern: LZ finds the long matches RLE cannot.
  std::vector<std::byte> raw;
  for (int n = 0; n < 2000; ++n) {
    for (int k = 0; k < 16; ++k) {
      raw.push_back(static_cast<std::byte>((k * 37 + (n % 3)) & 0xFF));
    }
  }
  const auto rle = vu::compress(raw.data(), raw.size(), vu::Codec::kRle);
  const auto lz = vu::compress(raw.data(), raw.size(), vu::Codec::kLz);
  EXPECT_LT(lz.size(), rle.size());
  EXPECT_LT(vu::compression_ratio(raw.size(), lz.size()), 0.2);
}

TEST(Compression, GarbageInputRejectedSafely) {
  vira::util::Rng rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::byte> garbage(rng.next_below(200));
    for (auto& b : garbage) {
      b = static_cast<std::byte>(rng.next_u64() & 0xFF);
    }
    // Must never crash; may legitimately decode if it looks like a store
    // frame, but usually returns nullopt.
    (void)vu::decompress(garbage.data(), garbage.size());
  }
  SUCCEED();
}

TEST(Compression, TruncatedStreamRejected) {
  std::vector<std::byte> raw(1000, std::byte{7});
  auto compressed = vu::compress(raw.data(), raw.size(), vu::Codec::kRle);
  compressed.resize(compressed.size() / 2);
  EXPECT_FALSE(vu::decompress(compressed.data(), compressed.size()).has_value());
}

TEST(Compression, RatioHelper) {
  EXPECT_DOUBLE_EQ(vu::compression_ratio(100, 50), 0.5);
  EXPECT_DOUBLE_EQ(vu::compression_ratio(0, 50), 1.0);
}
