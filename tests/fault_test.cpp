#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <set>
#include <utility>
#include <vector>

#include "algo/cfd_command.hpp"
#include "comm/fault_transport.hpp"
#include "core/backend.hpp"
#include "grid/synthetic.hpp"
#include "test_util.hpp"
#include "viz/session.hpp"

namespace va = vira::algo;
namespace vc = vira::core;
namespace vg = vira::grid;
namespace vm = vira::comm;
namespace vu = vira::util;
namespace vv = vira::viz;

namespace {

vm::Message tagged(int source, int tag, const std::string& text) {
  vm::Message msg;
  msg.source = source;
  msg.tag = tag;
  msg.payload.write_string(text);
  return msg;
}

// ---------------------------------------------------------------------------
// FaultInjectingTransport decorator semantics
// ---------------------------------------------------------------------------

TEST(FaultTransport, ZeroRatesArePurePassThrough) {
  auto inner = std::make_shared<vm::InProcTransport>(2);
  vm::FaultInjectingTransport transport(inner, vm::FaultInjectionConfig{});

  transport.send(1, tagged(0, 7, "hello"));
  auto msg = transport.recv(1, std::chrono::milliseconds(200));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->source, 0);
  EXPECT_EQ(msg->tag, 7);
  EXPECT_EQ(msg->payload.read_string(), "hello");
  // Nothing else shows up.
  EXPECT_FALSE(transport.recv(1, std::chrono::milliseconds(20)).has_value());

  const auto stats = transport.stats();
  EXPECT_EQ(stats.forwarded, 1u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.duplicated, 0u);
  EXPECT_EQ(stats.delayed, 0u);
  EXPECT_EQ(stats.suppressed_dead, 0u);
}

TEST(FaultTransport, DropRateOneLosesEveryMessage) {
  auto inner = std::make_shared<vm::InProcTransport>(2);
  vm::FaultInjectionConfig config;
  config.drop_rate = 1.0;
  vm::FaultInjectingTransport transport(inner, config);

  transport.send(1, tagged(0, 1, "gone"));
  transport.send(1, tagged(0, 2, "also gone"));
  EXPECT_FALSE(transport.recv(1, std::chrono::milliseconds(50)).has_value());
  EXPECT_EQ(transport.stats().dropped, 2u);
  EXPECT_EQ(transport.stats().forwarded, 0u);
}

TEST(FaultTransport, DuplicateRateOneDeliversTwice) {
  auto inner = std::make_shared<vm::InProcTransport>(2);
  vm::FaultInjectionConfig config;
  config.duplicate_rate = 1.0;
  vm::FaultInjectingTransport transport(inner, config);

  transport.send(1, tagged(0, 3, "twin"));
  auto first = transport.recv(1, std::chrono::milliseconds(200));
  auto second = transport.recv(1, std::chrono::milliseconds(200));
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->payload.read_string(), "twin");
  EXPECT_EQ(second->payload.read_string(), "twin");
  EXPECT_FALSE(transport.recv(1, std::chrono::milliseconds(20)).has_value());
  EXPECT_EQ(transport.stats().duplicated, 1u);
}

TEST(FaultTransport, DelayedMessageStillArrives) {
  auto inner = std::make_shared<vm::InProcTransport>(2);
  vm::FaultInjectionConfig config;
  config.delay_rate = 1.0;
  config.max_delay = std::chrono::milliseconds(10);
  vm::FaultInjectingTransport transport(inner, config);

  transport.send(1, tagged(0, 4, "late"));
  auto msg = transport.recv(1, std::chrono::milliseconds(1000));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload.read_string(), "late");
  EXPECT_EQ(transport.stats().delayed, 1u);
  transport.shutdown();
}

TEST(FaultTransport, KilledRankIsIsolatedBothWays) {
  auto inner = std::make_shared<vm::InProcTransport>(3);
  vm::FaultInjectingTransport transport(inner, vm::FaultInjectionConfig{});

  transport.kill_rank(1);
  EXPECT_TRUE(transport.is_dead(1));
  EXPECT_EQ(transport.dead_count(), 1u);

  transport.send(1, tagged(0, 5, "to the dead"));    // towards the corpse
  transport.send(2, tagged(1, 6, "from the dead"));  // from the corpse
  EXPECT_FALSE(transport.recv(1, std::chrono::milliseconds(50)).has_value());
  EXPECT_FALSE(transport.recv(2, std::chrono::milliseconds(50)).has_value());
  EXPECT_EQ(transport.stats().suppressed_dead, 2u);

  // Unaffected pairs still communicate.
  transport.send(2, tagged(0, 7, "alive"));
  auto msg = transport.recv(2, std::chrono::milliseconds(200));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload.read_string(), "alive");
}

TEST(FaultTransport, KillRankValidatesRange) {
  auto inner = std::make_shared<vm::InProcTransport>(2);
  vm::FaultInjectingTransport transport(inner, vm::FaultInjectionConfig{});
  EXPECT_THROW(transport.kill_rank(-1), std::out_of_range);
  EXPECT_THROW(transport.kill_rank(2), std::out_of_range);
}

// ---------------------------------------------------------------------------
// End-to-end failure recovery over a real Backend
// ---------------------------------------------------------------------------

class FaultRecoveryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    va::register_builtin_commands();
    dataset_ = (std::filesystem::temp_directory_path() / "vira_fault_ds").string();
    if (!std::filesystem::exists(dataset_ + "/dataset.vmi")) {
      std::filesystem::remove_all(dataset_);
      vg::GeneratorConfig config;
      config.directory = dataset_;
      config.timesteps = 2;
      config.ni = 10;
      config.nj = 8;
      config.nk = 6;
      vg::generate_engine(config);
    }
    vg::DatasetReader reader(dataset_);
    float lo = 1e30f;
    float hi = -1e30f;
    for (int b = 0; b < reader.meta().block_count(); ++b) {
      const auto [blo, bhi] = reader.read_block(0, b).scalar_range("density");
      lo = std::min(lo, blo);
      hi = std::max(hi, bhi);
    }
    iso_ = 0.5 * (lo + hi);
  }

  static vu::ParamList iso_params(int workers) {
    vu::ParamList params;
    params.set("dataset", dataset_);
    params.set("field", "density");
    params.set_double("iso", iso_);
    params.set_int("workers", workers);
    return params;
  }

  /// Aggressive liveness settings so recovery fits in a unit test.
  static vc::BackendConfig fast_recovery_config() {
    vc::BackendConfig config;
    config.workers = 4;
    config.worker.heartbeat_interval = std::chrono::milliseconds(10);
    config.scheduler.death_timeout = std::chrono::milliseconds(250);
    config.scheduler.idle_grace = std::chrono::milliseconds(300);
    config.scheduler.retry_backoff = std::chrono::milliseconds(5);
    config.scheduler.max_retries = 3;
    return config;
  }

  static std::string dataset_;
  static double iso_;
};
std::string FaultRecoveryTest::dataset_;
double FaultRecoveryTest::iso_ = 0.0;

using FragmentKey = std::pair<std::int32_t, std::uint32_t>;

/// Drains `stream` to completion, asserting every (partition, sequence)
/// fragment identity arrives at most once. `on_first_data` runs when the
/// first data packet shows up (the mid-request kill switch).
vc::CommandStats drain_exactly_once(vv::ResultStream& stream, std::set<FragmentKey>* seen,
                                    std::function<void()> on_first_data = {}) {
  vc::CommandStats stats;
  bool complete = false;
  while (!complete) {
    auto packet = stream.next(std::chrono::milliseconds(60000));
    if (!packet.has_value()) {
      ADD_FAILURE() << "stream stalled without a Complete";
      break;
    }
    switch (packet->kind) {
      case vv::Packet::Kind::kPartial:
      case vv::Packet::Kind::kFinal: {
        const FragmentKey key{packet->header.partition, packet->header.sequence};
        EXPECT_TRUE(seen->insert(key).second)
            << "duplicate fragment partition=" << key.first << " seq=" << key.second;
        if (on_first_data) {
          on_first_data();
          on_first_data = {};
        }
        break;
      }
      case vv::Packet::Kind::kComplete:
        stats = packet->stats;
        complete = true;
        break;
      default:
        break;  // progress / error / degraded markers
    }
  }
  return stats;
}

TEST_F(FaultRecoveryTest, WorkerKilledMidRequestStillCompletesExactlyOnce) {
  auto config = fast_recovery_config();
  // Slow the storage down so every worker is still mid-request when the
  // first fragment reaches the client and the kill lands.
  config.read_delay_us_per_mb = 3e6;
  vm::FaultInjectionConfig faults;  // no random faults — only the kill switch
  faults.seed = 42;
  config.fault_injection = faults;
  vc::Backend backend(config);
  ASSERT_NE(backend.fault_transport(), nullptr);

  vv::ExtractionSession session(backend.connect());
  auto params = iso_params(3);
  params.set_int("stream_cells", 8);  // many small fragments
  params.set_doubles("viewpoint", {0, 0, 0});
  auto stream = session.submit("iso.viewer", params);

  bool killed = false;
  std::set<FragmentKey> seen;
  const auto stats = drain_exactly_once(*stream, &seen, [&] {
    // The first work group is ranks {1, 2, 3}; rank 3 dies mid-request.
    backend.fault_transport()->kill_rank(3);
    killed = true;
  });

  EXPECT_TRUE(killed);
  EXPECT_TRUE(stats.success) << stats.error;
  EXPECT_FALSE(seen.empty());
  EXPECT_GT(stats.retries, 0u);
  EXPECT_TRUE(stats.degraded());
  EXPECT_TRUE(stream->degraded());
  EXPECT_GE(stream->retry_count(), 1u);
  // Death detection runs on the scheduler's own cadence; the client-side
  // Complete can beat the death_timeout expiry, so wait on the predicate
  // instead of asserting instantly.
  EXPECT_TRUE(vira::test::eventually(
      [&] { return backend.scheduler().lost_workers() == 1u; }))
      << "lost=" << backend.scheduler().lost_workers();
  EXPECT_GE(backend.scheduler().total_retries(), 1u);

  // The degraded backend still serves follow-up requests on the survivors.
  std::set<FragmentKey> seen2;
  auto stream2 = session.submit("iso.dataman", iso_params(2));
  const auto stats2 = drain_exactly_once(*stream2, &seen2);
  EXPECT_TRUE(stats2.success) << stats2.error;
  EXPECT_EQ(stats2.retries, 0u);
}

TEST_F(FaultRecoveryTest, ZeroFaultRatesChangeNothing) {
  auto run = [this](bool with_injector) {
    vc::BackendConfig config;
    config.workers = 2;
    if (with_injector) {
      vm::FaultInjectionConfig faults;  // all rates zero
      // The property must hold for ANY seed; draw it from the printed
      // master seed so a failing run is reproducible from the log line
      // (VIRA_TEST_SEED=<printed>).
      faults.seed = vira::test::test_seed(0xfa17);
      config.fault_injection = faults;
    }
    vc::Backend backend(config);
    vv::ExtractionSession session(backend.connect());
    std::vector<vu::ByteBuffer> fragments;
    const auto stats = session.submit("iso.dataman", iso_params(2))->wait(&fragments);
    EXPECT_TRUE(stats.success) << stats.error;
    EXPECT_EQ(stats.retries, 0u);
    EXPECT_FALSE(stats.degraded());
    EXPECT_EQ(backend.scheduler().lost_workers(), 0u);
    if (with_injector) {
      EXPECT_NE(backend.fault_transport(), nullptr);
      if (backend.fault_transport() != nullptr) {
        const auto fstats = backend.fault_transport()->stats();
        EXPECT_GT(fstats.forwarded, 0u);
        EXPECT_EQ(fstats.dropped, 0u);
        EXPECT_EQ(fstats.duplicated, 0u);
        EXPECT_EQ(fstats.delayed, 0u);
        EXPECT_EQ(fstats.suppressed_dead, 0u);
      }
    } else {
      EXPECT_EQ(backend.fault_transport(), nullptr);
    }
    return fragments.size();
  };

  const auto plain = run(false);
  const auto injected = run(true);
  EXPECT_EQ(plain, injected);
  EXPECT_EQ(plain, 1u);
}

TEST_F(FaultRecoveryTest, LossyTransportNeverHangsTheClient) {
  auto config = fast_recovery_config();
  config.scheduler.request_timeout = std::chrono::milliseconds(2000);
  config.scheduler.max_retries = 4;
  vm::FaultInjectionConfig faults;
  faults.seed = 7;
  faults.drop_rate = 0.02;
  faults.duplicate_rate = 0.05;
  faults.delay_rate = 0.2;
  faults.max_delay = std::chrono::milliseconds(3);
  config.fault_injection = faults;
  vc::Backend backend(config);

  vv::ExtractionSession session(backend.connect());
  for (int round = 0; round < 3; ++round) {
    std::set<FragmentKey> seen;
    auto stream = session.submit("iso.dataman", iso_params(2));
    // Liveness, not success: under message loss the request must still
    // terminate with a Complete (succeeded or failed after bounded retries),
    // and fragments must stay exactly-once.
    const auto stats = drain_exactly_once(*stream, &seen);
    if (!stats.success) {
      EXPECT_FALSE(stats.error.empty());
    }
  }
  const auto fstats = backend.fault_transport()->stats();
  EXPECT_GT(fstats.forwarded, 0u);
}

}  // namespace
