/// \file net_test.cpp
/// vira::net frontend tests (ISSUE 7): incremental frame parser (split /
/// truncation / fuzz properties), epoll event loop round trips, hello
/// negotiation + wire compression, backpressure / slow-link reaping,
/// event-driven scheduler pickup, and the blocking fallback's mid-stream
/// disconnect regression.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "comm/client_link.hpp"
#include "core/backend.hpp"
#include "core/command.hpp"
#include "net/event_loop.hpp"
#include "net/frame.hpp"
#include "obs/metrics.hpp"
#include "util/compression.hpp"
#include "viz/session.hpp"

namespace {

using namespace vira;
using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// In-test commands
// ---------------------------------------------------------------------------

/// Finishes immediately — measures pure request turnaround.
class QuickCommand final : public core::Command {
 public:
  std::string name() const override { return "net.quick"; }
  void execute(core::CommandContext& context) override {
    if (context.is_master()) {
      context.send_final({});
    }
  }
};

/// Master streams `count` partials of `bytes` each, `ms` apart — a paced
/// fragment stream a client can walk away from mid-flight.
class StreamCommand final : public core::Command {
 public:
  std::string name() const override { return "net.stream"; }
  void execute(core::CommandContext& context) override {
    if (context.is_master()) {
      const auto count = context.params().get_int("count", 10);
      const auto bytes = context.params().get_int("bytes", 1024);
      const auto ms = context.params().get_int("ms", 5);
      for (std::int64_t n = 0; n < count; ++n) {
        util::ByteBuffer fragment;
        fragment.write_raw(std::vector<char>(static_cast<std::size_t>(bytes), 'x').data(),
                           static_cast<std::size_t>(bytes));
        context.stream_partial(std::move(fragment));
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      }
      context.send_final({});
    }
  }
};

struct RegisterNetCommands {
  RegisterNetCommands() {
    core::CommandRegistry::global().register_command(
        "net.quick", [] { return std::make_unique<QuickCommand>(); });
    core::CommandRegistry::global().register_command(
        "net.stream", [] { return std::make_unique<StreamCommand>(); });
  }
};
RegisterNetCommands register_net_commands;  // NOLINT

// ---------------------------------------------------------------------------
// Frame parser helpers
// ---------------------------------------------------------------------------

comm::Message make_message(int source, int tag, std::size_t size, std::uint32_t seed) {
  comm::Message msg;
  msg.source = source;
  msg.tag = tag;
  std::mt19937 rng(seed);
  for (std::size_t n = 0; n < size; ++n) {
    msg.payload.write<std::uint8_t>(static_cast<std::uint8_t>(rng()));
  }
  return msg;
}

void expect_equal(const comm::Message& got, const comm::Message& want) {
  EXPECT_EQ(got.source, want.source);
  EXPECT_EQ(got.tag, want.tag);
  ASSERT_EQ(got.payload.size(), want.payload.size());
  EXPECT_EQ(0, std::memcmp(got.payload.data(), want.payload.data(), want.payload.size()));
}

TEST(FrameParserTest, SingleFrameRoundTrip) {
  const auto msg = make_message(3, 11, 257, 42);
  const auto wire = net::encode_frame(msg);
  net::FrameParser parser;
  std::vector<comm::Message> out;
  ASSERT_TRUE(parser.feed(wire.data(), wire.size(), out));
  ASSERT_EQ(out.size(), 1u);
  expect_equal(out[0], msg);
  EXPECT_TRUE(parser.at_boundary());
}

TEST(FrameParserTest, EveryByteBoundarySplit) {
  // Three frames — empty payload, small, mid-size — concatenated, then the
  // stream is split at every byte position. Reassembly must be exact at
  // every split (the satellite's property check).
  const std::vector<comm::Message> msgs = {
      make_message(0, 12, 0, 1), make_message(1, 10, 37, 2), make_message(2, 11, 300, 3)};
  std::vector<std::byte> wire;
  for (const auto& msg : msgs) {
    const auto frame = net::encode_frame(msg);
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  for (std::size_t split = 0; split <= wire.size(); ++split) {
    net::FrameParser parser;
    std::vector<comm::Message> out;
    ASSERT_TRUE(parser.feed(wire.data(), split, out));
    ASSERT_TRUE(parser.feed(wire.data() + split, wire.size() - split, out));
    ASSERT_EQ(out.size(), msgs.size()) << "split at " << split;
    for (std::size_t n = 0; n < msgs.size(); ++n) {
      expect_equal(out[n], msgs[n]);
    }
    EXPECT_TRUE(parser.at_boundary());
  }
}

TEST(FrameParserTest, ByteAtATime) {
  const auto msg = make_message(7, 10, 129, 9);
  const auto wire = net::encode_frame(msg);
  net::FrameParser parser;
  std::vector<comm::Message> out;
  for (const std::byte b : wire) {
    ASSERT_TRUE(parser.feed(&b, 1, out));
  }
  ASSERT_EQ(out.size(), 1u);
  expect_equal(out[0], msg);
}

TEST(FrameParserTest, OversizedPrefixFailsCleanly) {
  // A length prefix past the cap must poison the parser without a huge
  // allocation — the malformed header alone is enough to fail.
  std::byte header[net::kFrameHeaderBytes];
  net::encode_frame_header(header, 0, 1, net::kMaxFramePayload + 1, false);
  net::FrameParser parser;
  std::vector<comm::Message> out;
  EXPECT_FALSE(parser.feed(header, sizeof(header), out));
  EXPECT_TRUE(parser.failed());
  EXPECT_FALSE(parser.error().empty());
  EXPECT_TRUE(out.empty());
  // Poisoned: valid frames no longer parse either.
  const auto wire = net::encode_frame(make_message(0, 1, 8, 4));
  EXPECT_FALSE(parser.feed(wire.data(), wire.size(), out));
}

TEST(FrameParserTest, TruncatedFrameIsNotABoundary) {
  const auto wire = net::encode_frame(make_message(0, 10, 64, 5));
  net::FrameParser parser;
  std::vector<comm::Message> out;
  ASSERT_TRUE(parser.feed(wire.data(), wire.size() - 10, out));
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(parser.at_boundary());  // EOF here = peer truncated a frame
  EXPECT_GT(parser.buffered(), 0u);
}

TEST(FrameParserTest, GarbageCompressedPayloadFails) {
  // Compressed flag set, payload that is not a util::compress() stream.
  comm::Message msg = make_message(0, 10, 93, 6);
  const auto wire = net::encode_frame(msg, /*compressed=*/true);
  net::FrameParser parser;
  std::vector<comm::Message> out;
  EXPECT_FALSE(parser.feed(wire.data(), wire.size(), out));
  EXPECT_TRUE(parser.failed());
}

TEST(FrameParserTest, CompressedFrameRoundTrip) {
  // Highly compressible payload, flagged frame carrying the compressed
  // stream: the parser must hand back the raw bytes.
  comm::Message raw;
  raw.source = 0;
  raw.tag = 10;
  for (int n = 0; n < 5000; ++n) {
    raw.payload.write<std::uint8_t>(static_cast<std::uint8_t>(n % 7));
  }
  const auto packed = util::compress(raw.payload.data(), raw.payload.size(), util::Codec::kLz);
  ASSERT_LT(packed.size(), raw.payload.size());
  comm::Message framed;
  framed.source = raw.source;
  framed.tag = raw.tag;
  framed.payload = util::ByteBuffer(packed);
  const auto wire = net::encode_frame(framed, /*compressed=*/true);

  net::FrameParser parser;
  std::vector<comm::Message> out;
  ASSERT_TRUE(parser.feed(wire.data(), wire.size(), out));
  ASSERT_EQ(out.size(), 1u);
  expect_equal(out[0], raw);
}

TEST(FrameParserTest, RandomChunkFuzz) {
  // Seeded property fuzz: random message trains fed in random chunkings
  // reassemble byte-identically, for several seeds.
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    std::mt19937 rng(seed);
    std::vector<comm::Message> msgs;
    std::vector<std::byte> wire;
    const int count = 1 + static_cast<int>(rng() % 12);
    for (int n = 0; n < count; ++n) {
      msgs.push_back(make_message(static_cast<int>(rng() % 5), 10 + static_cast<int>(rng() % 6),
                                  rng() % 4096, rng()));
      const auto frame = net::encode_frame(msgs.back());
      wire.insert(wire.end(), frame.begin(), frame.end());
    }
    net::FrameParser parser;
    std::vector<comm::Message> out;
    std::size_t offset = 0;
    while (offset < wire.size()) {
      const std::size_t chunk = std::min<std::size_t>(1 + rng() % 1500, wire.size() - offset);
      ASSERT_TRUE(parser.feed(wire.data() + offset, chunk, out));
      offset += chunk;
    }
    ASSERT_EQ(out.size(), msgs.size()) << "seed " << seed;
    for (std::size_t n = 0; n < msgs.size(); ++n) {
      expect_equal(out[n], msgs[n]);
    }
    EXPECT_TRUE(parser.at_boundary());
  }
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

/// Collects links the loop accepts and lets tests wait for the Nth one.
struct AcceptSink {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::shared_ptr<comm::ClientLink>> links;

  void attach(net::EventLoop& loop) {
    loop.set_on_accept([this](std::shared_ptr<comm::ClientLink> link) {
      std::lock_guard<std::mutex> lock(mutex);
      links.push_back(std::move(link));
      cv.notify_all();
    });
  }

  std::shared_ptr<comm::ClientLink> wait_for(std::size_t index) {
    std::unique_lock<std::mutex> lock(mutex);
    if (!cv.wait_for(lock, 5s, [&] { return links.size() > index; })) {
      return nullptr;
    }
    return links[index];
  }
};

TEST(EventLoopTest, LegacyClientRoundTrip) {
  net::EventLoop loop(0);
  AcceptSink sink;
  sink.attach(loop);
  loop.start();

  // Legacy client: no hello, plain framing — must work unchanged.
  auto client = comm::tcp_connect("127.0.0.1", loop.port());
  auto server = sink.wait_for(0);
  ASSERT_NE(server, nullptr);

  const auto request = make_message(-1, core::kTagSubmit, 150, 21);
  comm::Message copy = request;
  client->send(std::move(copy));
  auto got = server->recv(5000ms);
  ASSERT_TRUE(got.has_value());
  expect_equal(*got, request);

  const auto reply = make_message(0, core::kTagFinal, 3000, 22);
  comm::Message reply_copy = reply;
  server->send(std::move(reply_copy));
  auto back = client->recv(5000ms);
  ASSERT_TRUE(back.has_value());
  expect_equal(*back, reply);

  client->close();
  loop.stop();
  EXPECT_EQ(loop.connections(), 0u);
}

TEST(EventLoopTest, NegotiatedCompressionRoundTrip) {
  net::NetConfig config;
  config.compress_threshold = 64;
  net::EventLoop loop(0, config);
  AcceptSink sink;
  sink.attach(loop);
  loop.start();

  const auto compressed_before =
      obs::Registry::instance().counter("net.compressed_bytes").value();

  comm::WireOptions options;
  options.compress_threshold = 64;
  auto client = comm::tcp_connect("127.0.0.1", loop.port(), options);
  auto server = sink.wait_for(0);
  ASSERT_NE(server, nullptr);

  // Server → client: a large compressible frame must arrive byte-identical
  // (compressed on the wire, transparently expanded by the client link).
  comm::Message big;
  big.source = 0;
  big.tag = core::kTagPartial;
  for (int n = 0; n < 100000; ++n) {
    big.payload.write<std::uint8_t>(static_cast<std::uint8_t>(n % 13));
  }
  comm::Message big_copy = big;
  server->send(std::move(big_copy));
  auto got = client->recv(5000ms);
  ASSERT_TRUE(got.has_value());
  expect_equal(*got, big);
  EXPECT_GT(obs::Registry::instance().counter("net.compressed_bytes").value(),
            compressed_before);

  // Client → server: the negotiated TcpLink compresses too; the loop's
  // parser must expand it before delivery.
  comm::Message up = make_message(-1, core::kTagSubmit, 0, 0);
  for (int n = 0; n < 50000; ++n) {
    up.payload.write<std::uint8_t>(static_cast<std::uint8_t>(n % 5));
  }
  comm::Message up_copy = up;
  client->send(std::move(up_copy));
  auto received = server->recv(5000ms);
  ASSERT_TRUE(received.has_value());
  expect_equal(*received, up);

  // Incompressible-data bypass: random bytes above the threshold still
  // round-trip (shipped raw behind the scenes).
  const auto noise = make_message(0, core::kTagPartial, 8192, 77);
  comm::Message noise_copy = noise;
  server->send(std::move(noise_copy));
  auto noise_back = client->recv(5000ms);
  ASSERT_TRUE(noise_back.has_value());
  expect_equal(*noise_back, noise);

  client->close();
  loop.stop();
}

TEST(EventLoopTest, SlowReaderIsReapedWithoutStallingOthers) {
  net::NetConfig config;
  config.send_budget_bytes = 128 << 10;
  config.send_cap_bytes = 512 << 10;
  config.reap_deadline = 300ms;
  net::EventLoop loop(0, config);
  AcceptSink sink;
  sink.attach(loop);
  loop.start();

  // Slow client: raw socket with a tiny receive window that never reads.
  const int slow_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(slow_fd, 0);
  const int rcvbuf = 4096;
  ::setsockopt(slow_fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(loop.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(slow_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  auto slow_server = sink.wait_for(0);
  ASSERT_NE(slow_server, nullptr);

  auto healthy = comm::tcp_connect("127.0.0.1", loop.port());
  auto healthy_server = sink.wait_for(1);
  ASSERT_NE(healthy_server, nullptr);

  // Flood the slow link far past kernel buffers + cap, interleaved with
  // healthy-client round trips that must keep flowing throughout.
  comm::Message flood;
  flood.source = 0;
  flood.tag = core::kTagPartial;
  flood.payload.write_raw(std::vector<char>(128 << 10, '\0').data(), 128 << 10);
  for (int burst = 0; burst < 16; ++burst) {
    for (int n = 0; n < 16; ++n) {
      comm::Message copy = flood;
      slow_server->send(std::move(copy));
    }
    const auto ping = make_message(0, core::kTagProgress, 64, burst);
    comm::Message ping_copy = ping;
    healthy_server->send(std::move(ping_copy));
    auto pong = healthy->recv(5000ms);
    ASSERT_TRUE(pong.has_value()) << "healthy client stalled during burst " << burst;
    expect_equal(*pong, ping);
  }
  EXPECT_GT(loop.dropped_frames(), 0u) << "cap never engaged";

  // The slow link must be reaped within the deadline (plus sweep slack).
  const auto deadline = std::chrono::steady_clock::now() + 3s;
  while (loop.reaped() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_EQ(loop.reaped(), 1u);
  EXPECT_TRUE(slow_server->closed());
  EXPECT_EQ(loop.slow_links(), 0u);

  // Other links keep working after the reap.
  const auto ping = make_message(0, core::kTagProgress, 64, 99);
  comm::Message ping_copy = ping;
  healthy_server->send(std::move(ping_copy));
  auto pong = healthy->recv(5000ms);
  ASSERT_TRUE(pong.has_value());
  expect_equal(*pong, ping);

  ::close(slow_fd);
  healthy->close();
  loop.stop();
}

TEST(EventLoopTest, EventDrivenPickupBeatsTickPolling) {
  // The scheduler's idle poll slice is cranked up to half a second; with
  // tick polling alone every submission would wait out the remainder of
  // that slice (the scheduler sits in its rank-transport try_recv, which a
  // client-link frame does not wake). The event loop's readability nudge
  // must make pickup latency independent of the slice.
  core::BackendConfig config;
  config.workers = 2;
  config.scheduler.idle_poll = 500ms;
  core::Backend backend(config);
  const auto port = backend.serve_tcp(0);
  ASSERT_NE(backend.event_loop(), nullptr);

  viz::ExtractionSession session(
      std::shared_ptr<comm::ClientLink>(comm::tcp_connect("127.0.0.1", port).release()));
  // Let attach settle so the scheduler is past its empty-client idle sleep.
  std::this_thread::sleep_for(100ms);

  util::ParamList params;
  params.set_int("workers", 1);
  for (int run = 0; run < 3; ++run) {
    const auto start = std::chrono::steady_clock::now();
    auto stream = session.submit("net.quick", params);
    const auto stats = stream->wait(nullptr, 10000ms);
    const auto elapsed = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    ASSERT_TRUE(stats.success) << stats.error;
    EXPECT_LT(elapsed, 250.0) << "request " << run
                              << " waited out the poll slice — nudge not working";
  }
  session.close();
  backend.shutdown();
}

// ---------------------------------------------------------------------------
// Blocking fallback
// ---------------------------------------------------------------------------

TEST(BlockingFallbackTest, MidStreamDisconnectDoesNotKillServer) {
  core::BackendConfig config;
  config.workers = 2;
  config.net_frontend = core::BackendConfig::NetFrontend::kBlocking;
  core::Backend backend(config);
  const auto port = backend.serve_tcp(0);
  EXPECT_EQ(backend.event_loop(), nullptr);

  // Client 1 submits a paced stream over a raw link, reads a couple of
  // fragments, then vanishes. The server-side blocking link must absorb the
  // resulting EPIPE (MSG_NOSIGNAL + partial-write handling) — not die.
  {
    auto link = comm::tcp_connect("127.0.0.1", port);
    core::CommandRequest request;
    request.request_id = 1;
    request.command = "net.stream";
    request.params.set_int("workers", 1);
    request.params.set_int("count", 100);
    request.params.set_int("bytes", 32 << 10);
    request.params.set_int("ms", 10);
    comm::Message submit;
    submit.tag = core::kTagSubmit;
    request.serialize(submit.payload);
    link->send(std::move(submit));
    for (int n = 0; n < 2; ++n) {
      auto packet = link->recv(5000ms);
      ASSERT_TRUE(packet.has_value()) << "stream never started";
    }
    link->close();  // abrupt, mid-stream
  }

  // The scheduler eventually reaps the orphaned in-flight request.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (backend.scheduler().total_reaped() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(20ms);
  }
  EXPECT_GE(backend.scheduler().total_reaped(), 1u);

  // Client 2 gets full service from the surviving server.
  viz::ExtractionSession session(
      std::shared_ptr<comm::ClientLink>(comm::tcp_connect("127.0.0.1", port).release()));
  util::ParamList params;
  params.set_int("workers", 1);
  auto stream = session.submit("net.quick", params);
  const auto stats = stream->wait(nullptr, 30000ms);
  EXPECT_TRUE(stats.success) << stats.error;
  session.close();
  backend.shutdown();
}

TEST(BlockingFallbackTest, HelloNegotiationGetsAckWithoutFeatures) {
  core::BackendConfig config;
  config.workers = 2;
  config.net_frontend = core::BackendConfig::NetFrontend::kBlocking;
  core::Backend backend(config);
  const auto port = backend.serve_tcp(0);

  // A negotiating client must not hang or die against the blocking
  // frontend: the scheduler acks with no features and the link speaks the
  // plain framing (a wrongly-granted compression would break the round
  // trip below, since the blocking server never decompresses).
  comm::WireOptions options;
  options.compress_threshold = 64;  // would compress everything if granted
  viz::ExtractionSession session(std::shared_ptr<comm::ClientLink>(
      comm::tcp_connect("127.0.0.1", port, options).release()));
  util::ParamList params;
  params.set_int("workers", 1);
  params.set_int("count", 4);
  params.set_int("bytes", 16 << 10);
  params.set_int("ms", 1);
  std::vector<util::ByteBuffer> fragments;
  auto stream = session.submit("net.stream", params);
  const auto stats = stream->wait(&fragments, 30000ms);
  EXPECT_TRUE(stats.success) << stats.error;
  EXPECT_EQ(stats.partial_packets, 4u);
  EXPECT_EQ(fragments.size(), 5u);  // 4 partials + the (empty) final
  session.close();
  backend.shutdown();
}

}  // namespace
