/// \file simd_kernel_test.cpp
/// Property tests for the SoA/SIMD extraction path (DESIGN.md §13): the
/// SIMD kernels against their scalar references over randomized blocks,
/// the batch integrator's per-lane bit-identity, the serialize round-trip
/// that pins the wire blob across the SoA refactor, and the alignment /
/// padding contract the vector loads depend on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include "algo/integrator.hpp"
#include "algo/isosurface.hpp"
#include "algo/lambda2.hpp"
#include "grid/analytic_fields.hpp"
#include "grid/field_store.hpp"
#include "grid/structured_block.hpp"
#include "grid/synthetic.hpp"
#include "simd/kernels.hpp"
#include "simd/simd.hpp"
#include "util/byte_buffer.hpp"

namespace vira {
namespace {

/// Vortex block with randomized node jitter and velocity noise so the
/// kernels see irregular (but still valid curvilinear) data, not just the
/// smooth analytic field.
grid::StructuredBlock make_random_block(int n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> jitter(-0.2, 0.2);
  grid::LambOseenVortex vortex({0.5, 0.5, 0.5}, {0, 0, 1}, 2.0, 0.15);
  grid::StructuredBlock block(n, n, n);
  const double cell = 1.0 / (n - 1);
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        // Jitter interior nodes by a fraction of a cell: the grid stays
        // non-degenerate, but metric terms differ node to node.
        const bool interior = i > 0 && i < n - 1 && j > 0 && j < n - 1 && k > 0 && k < n - 1;
        const double dx = interior ? jitter(rng) * cell : 0.0;
        const double dy = interior ? jitter(rng) * cell : 0.0;
        const double dz = interior ? jitter(rng) * cell : 0.0;
        block.set_point(i, j, k, {i * cell + dx, j * cell + dy, k * cell + dz});
      }
    }
  }
  grid::sample_fields(block, vortex, 0.0);
  std::uniform_real_distribution<double> noise(-0.05, 0.05);
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        auto u = block.velocity(i, j, k);
        block.set_velocity(i, j, k, {u.x + noise(rng), u.y + noise(rng), u.z + noise(rng)});
      }
    }
  }
  return block;
}

// --- λ2: scalar vs SIMD agreement ----------------------------------------

TEST(SimdKernelTest, Lambda2ScalarVsSimdAgreesOnRandomBlocks) {
  for (std::uint32_t seed : {1u, 7u, 42u}) {
    auto block = make_random_block(17, seed);
    const auto scalar_range =
        algo::compute_lambda2_field(block, "l2_scalar", simd::Kernel::kScalar);
    const auto simd_range = algo::compute_lambda2_field(block, "l2_simd", simd::Kernel::kSimd);

    const auto a = block.scalar("l2_scalar");
    const auto b = block.scalar("l2_simd");
    ASSERT_EQ(a.size(), b.size());
    float scale = 0.0f;
    for (float v : a) {
      scale = std::max(scale, std::abs(v));
    }
    ASSERT_GT(scale, 0.0f);
    // The SIMD path shares the stencil/adjugate formulas but runs the trig
    // eigen-solve through the fast-math TU: agreement is to rounding
    // error, not bit-exact. Bound the drift at 1e-4 of the field scale.
    const float tol = 1e-4f * scale;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_NEAR(a[i], b[i], tol) << "node " << i << " seed " << seed;
    }
    EXPECT_NEAR(scalar_range.first, simd_range.first, tol);
    EXPECT_NEAR(scalar_range.second, simd_range.second, tol);
  }
}

TEST(SimdKernelTest, EigenBatchMatchesDiagonalAndDegenerateMatrices) {
  // Diagonal, repeated-eigenvalue and scaled-identity matrices hit the
  // branch-free fast-math path's guard lanes (off == 0, p == 0).
  const std::vector<std::array<double, 6>> cases = {
      {3.0, 1.0, 2.0, 0.0, 0.0, 0.0},   // diagonal: mid = 2
      {5.0, 5.0, 5.0, 0.0, 0.0, 0.0},   // q·I: p == 0, mid = 5
      {2.0, 2.0, 8.0, 0.0, 0.0, 0.0},   // repeated low pair
      {1.0, 4.0, 9.0, 0.5, -0.25, 2.0}, // generic symmetric
      {-3.0, -3.0, -3.0, 1e-12, 0.0, 0.0},
  };
  std::vector<double> a00, a11, a22, a01, a02, a12;
  for (const auto& c : cases) {
    a00.push_back(c[0]);
    a11.push_back(c[1]);
    a22.push_back(c[2]);
    a01.push_back(c[3]);
    a02.push_back(c[4]);
    a12.push_back(c[5]);
  }
  const int n = static_cast<int>(cases.size());
  std::vector<double> got(n), want(n);
  simd::eigen_mid_sym3_batch(a00.data(), a11.data(), a22.data(), a01.data(), a02.data(),
                             a12.data(), n, got.data());
  simd::generic::eigen_mid_sym3_batch(a00.data(), a11.data(), a22.data(), a01.data(),
                                      a02.data(), a12.data(), n, want.data());
  for (int i = 0; i < n; ++i) {
    // Repeated eigenvalues sit at acos(±1), where rounding in the argument
    // amplifies to ~sqrt(eps) in the angle — tolerance reflects that, not
    // plain ulp drift.
    EXPECT_NEAR(got[i], want[i], 1e-6 + 1e-6 * std::abs(want[i])) << "case " << i;
  }
}

// --- isosurface: SIMD active-cell scan must not change the mesh ----------

TEST(SimdKernelTest, IsosurfaceScalarVsSimdMeshesIdentical) {
  for (std::uint32_t seed : {3u, 11u}) {
    auto block = make_random_block(13, seed);
    const auto range = block.scalar_range("density");
    const float iso = 0.5f * (range.first + range.second);
    for (bool with_normals : {false, true}) {
      algo::TriangleMesh scalar_mesh, simd_mesh;
      const auto scalar_active = algo::extract_isosurface(block, "density", iso, scalar_mesh,
                                                          with_normals, simd::Kernel::kScalar);
      const auto simd_active = algo::extract_isosurface(block, "density", iso, simd_mesh,
                                                        with_normals, simd::Kernel::kSimd);
      EXPECT_EQ(scalar_active, simd_active);
      ASSERT_GT(scalar_mesh.triangle_count(), 0u);
      // The SIMD path only changes *which cells get scanned how*; the
      // triangulation of each active cell is the same code. Serialized
      // meshes (vertices, normals, indices) must match byte for byte.
      util::ByteBuffer a, b;
      scalar_mesh.serialize(a);
      simd_mesh.serialize(b);
      ASSERT_EQ(a.size(), b.size());
      EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0)
          << "seed " << seed << " normals " << with_normals;
    }
  }
}

// --- batch RK4: per-lane trajectories identical to scalar ----------------

TEST(SimdKernelTest, BatchPathlinesBitIdenticalToScalar) {
  grid::LambOseenVortex vortex({0.5, 0.5, 0.5}, {0, 0, 1}, 2.0, 0.15);
  const math::Aabb domain{{0, 0, 0}, {1, 1, 1}};
  algo::IntegratorParams params;
  params.max_steps = 300;

  std::mt19937 rng(99);
  std::uniform_real_distribution<double> pos(0.05, 0.95);
  std::vector<math::Vec3> seeds;
  for (int s = 0; s < 23; ++s) {  // odd count: exercises a partial tail
    seeds.push_back({pos(rng), pos(rng), pos(rng)});
  }

  algo::AnalyticProvider batch_provider(vortex, domain);
  const auto batch = algo::integrate_pathlines_batch(batch_provider, seeds, 0.0, 1.5, params);
  ASSERT_EQ(batch.size(), seeds.size());

  for (std::size_t s = 0; s < seeds.size(); ++s) {
    algo::AnalyticProvider provider(vortex, domain);
    const auto scalar = algo::integrate_pathline(provider, seeds[s], 0.0, 1.5, params);
    ASSERT_EQ(batch[s].size(), scalar.size()) << "seed " << s;
    for (std::size_t i = 0; i < scalar.size(); ++i) {
      // Lockstep lanes replay the scalar control flow and op order
      // exactly — equality here is bitwise, not approximate.
      EXPECT_EQ(batch[s][i].position.x, scalar[i].position.x) << "seed " << s << " pt " << i;
      EXPECT_EQ(batch[s][i].position.y, scalar[i].position.y) << "seed " << s << " pt " << i;
      EXPECT_EQ(batch[s][i].position.z, scalar[i].position.z) << "seed " << s << " pt " << i;
      EXPECT_EQ(batch[s][i].t, scalar[i].t) << "seed " << s << " pt " << i;
    }
  }
}

TEST(SimdKernelTest, BatchTwoLevelIntervalBitIdenticalToScalar) {
  grid::LambOseenVortex v0({0.5, 0.5, 0.5}, {0, 0, 1}, 2.0, 0.15);
  grid::LambOseenVortex v1({0.45, 0.55, 0.5}, {0, 0, 1}, 1.8, 0.18);
  const math::Aabb domain{{0, 0, 0}, {1, 1, 1}};
  algo::IntegratorParams params;

  std::vector<math::Vec3> seeds = {
      {0.3, 0.4, 0.5}, {0.7, 0.6, 0.4}, {0.2, 0.8, 0.6}, {0.55, 0.25, 0.45}, {0.9, 0.9, 0.1}};
  const double t_a = 0.0, t_b = 0.25;

  // Batch: all lanes through one provider pair.
  const int n = static_cast<int>(seeds.size());
  std::vector<math::Vec3> p = seeds;
  std::vector<double> h(seeds.size(), params.h_init);
  std::vector<std::uint8_t> alive(seeds.size(), 1);
  std::vector<std::vector<algo::PathPoint>> outs(seeds.size());
  algo::AnalyticProvider batch_a(v0, domain), batch_b(v1, domain);
  algo::integrate_interval_two_level_batch(batch_a, batch_b, t_a, t_b, n, p.data(), h.data(),
                                           alive.data(), params, outs.data());

  for (std::size_t s = 0; s < seeds.size(); ++s) {
    algo::AnalyticProvider level_a(v0, domain), level_b(v1, domain);
    math::Vec3 sp = seeds[s];
    double sh = params.h_init;
    std::vector<algo::PathPoint> sout;
    const bool ok =
        algo::integrate_interval_two_level(level_a, level_b, t_a, t_b, sp, sh, params, sout);
    EXPECT_EQ(alive[s] != 0, ok) << "seed " << s;
    ASSERT_EQ(outs[s].size(), sout.size()) << "seed " << s;
    for (std::size_t i = 0; i < sout.size(); ++i) {
      EXPECT_EQ(outs[s][i].position.x, sout[i].position.x);
      EXPECT_EQ(outs[s][i].position.y, sout[i].position.y);
      EXPECT_EQ(outs[s][i].position.z, sout[i].position.z);
      EXPECT_EQ(outs[s][i].t, sout[i].t);
    }
    EXPECT_EQ(p[s].x, sp.x);
    EXPECT_EQ(h[s], sh);
  }
}

// --- serialization: the SoA refactor must not move a single wire byte ----

TEST(SimdKernelTest, SerializeRoundTripByteIdentical) {
  auto block = make_random_block(9, 5u);
  algo::compute_lambda2_field(block, algo::kLambda2Field, simd::Kernel::kSimd);
  block.scalar("zeta_extra");  // registered last, sorts last

  util::ByteBuffer first;
  block.serialize(first);
  auto copy = grid::StructuredBlock::deserialize(first);
  util::ByteBuffer second;
  copy.serialize(second);

  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(std::memcmp(first.data(), second.data(), first.size()), 0);
  EXPECT_EQ(copy.node_count(), block.node_count());
  EXPECT_EQ(copy.scalar_names(), block.scalar_names());
}

TEST(SimdKernelTest, SerializationIndependentOfFieldRegistrationOrder) {
  // The wire blob walks scalars in sorted-name order, so two stores that
  // interned the same fields in different orders serialize identically.
  auto fill = [](grid::StructuredBlock& b, const std::vector<std::string>& order) {
    for (const auto& name : order) {
      auto s = b.scalar(name);
      for (std::size_t i = 0; i < s.size(); ++i) {
        s[i] = static_cast<float>(name.size()) + 0.25f * static_cast<float>(i);
      }
    }
  };
  grid::StructuredBlock b1(4, 4, 4), b2(4, 4, 4);
  fill(b1, {"pressure", "alpha", "mach"});
  fill(b2, {"mach", "pressure", "alpha"});

  util::ByteBuffer blob1, blob2;
  b1.serialize(blob1);
  b2.serialize(blob2);
  ASSERT_EQ(blob1.size(), blob2.size());
  EXPECT_EQ(std::memcmp(blob1.data(), blob2.data(), blob1.size()), 0);
  EXPECT_NE(b1.field_id("pressure"), b2.field_id("pressure"));  // ids differ, bytes don't
}

// --- alignment / padding: the contract the unmasked SIMD tails rely on ---

TEST(SimdKernelTest, FieldArraysAlignedAndPadded) {
  grid::StructuredBlock block(5, 3, 7);  // 105 nodes: not a multiple of 16
  const auto id = block.ensure_field("s");
  auto values = block.field_values(id);
  std::fill(values.begin(), values.end(), 1.5f);

  auto check = [](const float* p, std::size_t logical) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % grid::kFieldAlignment, 0u);
    const std::size_t padded =
        (logical + grid::kFieldPadFloats - 1) / grid::kFieldPadFloats * grid::kFieldPadFloats;
    EXPECT_GT(padded, logical);  // 105 rounds up, so a real pad exists
    for (std::size_t i = logical; i < padded; ++i) {
      EXPECT_EQ(p[i], 0.0f) << "pad float " << i << " not zero";
    }
  };
  const std::size_t nodes = static_cast<std::size_t>(block.node_count());
  check(block.points_x().data(), nodes);
  check(block.points_y().data(), nodes);
  check(block.points_z().data(), nodes);
  check(block.velocity_x().data(), nodes);
  check(block.velocity_y().data(), nodes);
  check(block.velocity_z().data(), nodes);
  check(block.field_values(id).data(), nodes);

  grid::AlignedFloats a(21, 3.0f);
  EXPECT_EQ(a.size(), 21u);
  EXPECT_EQ(a.padded_size() % grid::kFieldPadFloats, 0u);
  EXPECT_GE(a.padded_size(), a.size());
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) % grid::kFieldAlignment, 0u);
  for (std::size_t i = a.size(); i < a.padded_size(); ++i) {
    EXPECT_EQ(a.data()[i], 0.0f);
  }
}

TEST(SimdKernelTest, KernelKnobParsesAndDispatches) {
  EXPECT_EQ(simd::parse_kernel("scalar"), simd::Kernel::kScalar);
  EXPECT_EQ(simd::parse_kernel("simd"), simd::Kernel::kSimd);
  EXPECT_EQ(simd::parse_kernel("auto"), simd::Kernel::kSimd);
  EXPECT_EQ(simd::parse_kernel("avx512"), std::nullopt);
  // Whatever the host supports, dispatch must resolve to a real level.
  EXPECT_NE(simd::level_name(simd::active_level()), nullptr);
}

}  // namespace
}  // namespace vira
