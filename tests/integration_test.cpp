#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "algo/cfd_command.hpp"
#include "core/backend.hpp"
#include "grid/synthetic.hpp"
#include "viz/assembly.hpp"
#include "viz/session.hpp"

namespace va = vira::algo;
namespace vc = vira::core;
namespace vg = vira::grid;
namespace vu = vira::util;
namespace vv = vira::viz;

namespace {

/// Occupies a worker for a fixed time (deterministic queueing tests).
class SleepCommand final : public vc::Command {
 public:
  std::string name() const override { return "test.sleep"; }
  void execute(vc::CommandContext& context) override {
    const auto ms = context.params().get_int("ms", 100);
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    if (context.is_master()) {
      context.send_final({});
    }
  }
};

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    va::register_builtin_commands();
    vc::CommandRegistry::global().register_command(
        "test.sleep", [] { return std::make_unique<SleepCommand>(); });
    dataset_ = (std::filesystem::temp_directory_path() / "vira_integration_ds").string();
    if (!std::filesystem::exists(dataset_ + "/dataset.vmi")) {
      std::filesystem::remove_all(dataset_);
      vg::GeneratorConfig config;
      config.directory = dataset_;
      config.timesteps = 5;
      config.ni = 10;
      config.nj = 8;
      config.nk = 6;
      vg::generate_engine(config);
    }
    vg::DatasetReader reader(dataset_);
    float lo = 1e30f;
    float hi = -1e30f;
    for (int b = 0; b < reader.meta().block_count(); ++b) {
      const auto [blo, bhi] = reader.read_block(0, b).scalar_range("density");
      lo = std::min(lo, blo);
      hi = std::max(hi, bhi);
    }
    iso_ = 0.5 * (lo + hi);
  }

  static vu::ParamList iso_params(int workers) {
    vu::ParamList params;
    params.set("dataset", dataset_);
    params.set("field", "density");
    params.set_double("iso", iso_);
    params.set_int("workers", workers);
    return params;
  }

  static std::string dataset_;
  static double iso_;
};
std::string IntegrationTest::dataset_;
double IntegrationTest::iso_ = 0.0;

}  // namespace

// ---------------------------------------------------------------------------
// Client lifecycle resilience
// ---------------------------------------------------------------------------

TEST_F(IntegrationTest, BackendSurvivesClientDisconnectMidCommand) {
  vc::BackendConfig config;
  config.workers = 2;
  vc::Backend backend(config);

  {
    // First client submits and walks away immediately.
    vv::ExtractionSession session(backend.connect());
    (void)session.submit("iso.dataman", iso_params(2));
    session.close();  // drops the link while the command may still run
  }

  // A fresh client can connect and get full service.
  vv::ExtractionSession session2(backend.connect());
  std::vector<vu::ByteBuffer> fragments;
  const auto stats = session2.submit("iso.dataman", iso_params(2))->wait(&fragments);
  EXPECT_TRUE(stats.success) << stats.error;
  EXPECT_EQ(fragments.size(), 1u);
}

TEST_F(IntegrationTest, CancelStopsForwardingPartials) {
  vc::BackendConfig config;
  config.workers = 1;
  vc::Backend backend(config);
  vv::ExtractionSession session(backend.connect());

  auto params = iso_params(1);
  params.set_int("stream_cells", 8);  // many fragments
  params.set_doubles("viewpoint", {0, 0, 0});
  auto stream = session.submit("iso.viewer", params);
  session.cancel(stream->request_id());

  // The stream still terminates (with a Complete), and forwarding stopped
  // at some point — we only assert clean termination here since the cancel
  // races the (fast) command.
  bool complete = false;
  std::size_t packets = 0;
  while (!complete) {
    auto packet = stream->next(std::chrono::milliseconds(30000));
    ASSERT_TRUE(packet.has_value());
    complete = packet->kind == vv::Packet::Kind::kComplete;
    ++packets;
  }
  SUCCEED() << packets << " packets before completion";
}

TEST_F(IntegrationTest, QueuedRequestCancelledBeforeStart) {
  vc::BackendConfig config;
  config.workers = 1;
  vc::Backend backend(config);
  vv::ExtractionSession session(backend.connect());

  // Occupy the only worker for a while, then queue a request and cancel it
  // before a worker frees up.
  vu::ParamList sleep_params;
  sleep_params.set_int("workers", 1);
  sleep_params.set_int("ms", 300);
  auto running = session.submit("test.sleep", sleep_params);
  auto queued = session.submit("iso.dataman", iso_params(1));
  session.cancel(queued->request_id());

  // The cancelled queued request must still terminate its stream: kTagError
  // ("request cancelled") followed by a failed kTagComplete — wait() returns
  // promptly instead of hanging until its timeout. It must not wait for the
  // running request to finish first (the entry was erased, not dispatched).
  const auto stats = queued->wait(nullptr, std::chrono::milliseconds(10000));
  EXPECT_FALSE(stats.success);
  EXPECT_NE(stats.error.find("cancelled"), std::string::npos) << stats.error;
  EXPECT_TRUE(running->wait().success);
}

// ---------------------------------------------------------------------------
// Secondary (disk) cache tier through the whole stack
// ---------------------------------------------------------------------------

TEST_F(IntegrationTest, SecondaryCacheTierSpillsAndServes) {
  vc::BackendConfig config;
  config.workers = 1;
  // L1 too small for a full step -> forced demotions into L2.
  config.l1_cache_bytes = 300 * 1024;
  config.l2_directory = "<auto>";
  config.l2_cache_bytes = 64ull << 20;
  vc::Backend backend(config);
  vv::ExtractionSession session(backend.connect());

  EXPECT_TRUE(session.submit("iso.dataman", iso_params(1))->wait().success);
  auto counters = backend.dms_counters();
  EXPECT_GT(counters.evictions_l1, 0u);

  // Second run: part of the data comes back from the disk tier.
  EXPECT_TRUE(session.submit("iso.dataman", iso_params(1))->wait().success);
  counters = backend.dms_counters();
  EXPECT_GT(counters.l2_hits, 0u);
}

// ---------------------------------------------------------------------------
// Streaklines (future-work extension)
// ---------------------------------------------------------------------------

TEST_F(IntegrationTest, StreaklinesProduceDownstreamDye) {
  vc::BackendConfig config;
  config.workers = 2;
  vc::Backend backend(config);
  vv::ExtractionSession session(backend.connect());

  vu::ParamList params;
  params.set("dataset", dataset_);
  params.set_int("workers", 2);
  params.set_doubles("seeds", {0.01, 0.0, 0.06, -0.01, 0.0, 0.05});
  params.set_int("step0", 0);
  params.set_int("step1", 4);
  params.set_int("releases_per_step", 2);
  params.set_double("tolerance", 1e-4);

  auto stream = session.submit("streaklines.dataman", params);
  vv::GeometryCollector collector;
  vc::CommandStats stats;
  while (true) {
    auto packet = stream->next(std::chrono::milliseconds(60000));
    ASSERT_TRUE(packet.has_value());
    if (packet->kind == vv::Packet::Kind::kComplete) {
      stats = packet->stats;
      break;
    }
    collector.consume(*packet);
  }
  ASSERT_TRUE(stats.success) << stats.error;
  ASSERT_EQ(collector.lines().line_count(), 2u);
  // A streak has one sample per surviving release; with 4 intervals x 2
  // releases at least a few particles must survive.
  EXPECT_GE(collector.lines().total_points(), 4u);
  // Ages (stored as times) decrease monotonically? They are stored newest
  // first: age increases along the line.
  for (std::size_t l = 0; l < collector.lines().line_count(); ++l) {
    const auto ages = collector.lines().line_times(l);
    for (std::size_t n = 1; n < ages.size(); ++n) {
      EXPECT_GE(ages[n], ages[n - 1] - 1e-12);
    }
  }
}

TEST_F(IntegrationTest, StreaklineDiffersFromPathline) {
  // In an unsteady flow the streak through a point differs from the path
  // of the first particle released there.
  vc::BackendConfig config;
  config.workers = 1;
  vc::Backend backend(config);
  vv::ExtractionSession session(backend.connect());

  vu::ParamList params;
  params.set("dataset", dataset_);
  params.set_int("workers", 1);
  params.set_doubles("seeds", {0.012, 0.004, 0.06});
  params.set_int("step0", 0);
  params.set_int("step1", 4);
  params.set_double("tolerance", 1e-4);

  auto streak_stream = session.submit("streaklines.dataman", params);
  vv::GeometryCollector streak;
  while (true) {
    auto packet = streak_stream->next(std::chrono::milliseconds(60000));
    ASSERT_TRUE(packet.has_value());
    if (packet->kind == vv::Packet::Kind::kComplete) {
      ASSERT_TRUE(packet->stats.success) << packet->stats.error;
      break;
    }
    streak.consume(*packet);
  }

  auto path_stream = session.submit("pathlines.dataman", params);
  vv::GeometryCollector path;
  while (true) {
    auto packet = path_stream->next(std::chrono::milliseconds(60000));
    ASSERT_TRUE(packet.has_value());
    if (packet->kind == vv::Packet::Kind::kComplete) {
      ASSERT_TRUE(packet->stats.success) << packet->stats.error;
      break;
    }
    path.consume(*packet);
  }

  ASSERT_EQ(streak.lines().line_count(), 1u);
  ASSERT_EQ(path.lines().line_count(), 1u);
  const auto streak_points = streak.lines().line(0);
  const auto path_points = path.lines().line(0);
  ASSERT_GE(streak_points.size(), 2u);
  ASSERT_GE(path_points.size(), 2u);
  // End of the streak (oldest dye) coincides with the pathline's end
  // position of the first released particle — but intermediate geometry
  // differs in an unsteady flow. Compare overall extent as a cheap proxy.
  const double streak_span = (streak_points.front() - streak_points.back()).norm();
  const double path_span = (path_points.front() - path_points.back()).norm();
  EXPECT_GT(streak_span + path_span, 0.0);
}

// ---------------------------------------------------------------------------
// Exploration session pattern (the paper's Sec. 1.1 trial-and-error loop)
// ---------------------------------------------------------------------------

TEST_F(IntegrationTest, ParameterStudyGetsFasterAfterFirstQuery) {
  vc::BackendConfig config;
  config.workers = 2;
  config.read_delay_us_per_mb = 200000.0;  // pretend the file server is slow
  vc::Backend backend(config);
  vv::ExtractionSession session(backend.connect());

  std::vector<double> runtimes;
  std::vector<std::uint64_t> misses_per_query;
  std::uint64_t previous_misses = 0;
  for (int query = 0; query < 4; ++query) {
    auto params = iso_params(2);
    params.set_double("iso", iso_ * (0.96 + 0.02 * query));  // user adjusts the value
    const auto stats = session.submit("iso.dataman", params)->wait();
    ASSERT_TRUE(stats.success);
    runtimes.push_back(stats.total_runtime);
    const auto misses = backend.dms_counters().misses;
    misses_per_query.push_back(misses - previous_misses);
    previous_misses = misses;
  }
  // The cold first query paid the I/O (some of its 23 blocks may have been
  // served by a racing OBL prefetch — those count as hits); every follow-up
  // ran entirely on cached raw data, deterministically miss-free. Wall-clock
  // ratios are NOT asserted: under sanitizers the scheduler's polling noise
  // dwarfs the artificial read delay.
  EXPECT_GT(misses_per_query[0], 0u);
  EXPECT_LE(misses_per_query[0], 23u);
  for (std::size_t q = 1; q < misses_per_query.size(); ++q) {
    EXPECT_EQ(misses_per_query[q], 0u) << "query " << q;
    EXPECT_GT(runtimes[q], 0.0);
  }
  const auto counters = backend.dms_counters();
  EXPECT_GT(counters.l1_hits, counters.misses);
}

// ---------------------------------------------------------------------------
// Streamed geometry over real TCP
// ---------------------------------------------------------------------------

TEST_F(IntegrationTest, StreamedVortexOverTcpMatchesInProcess) {
  vc::BackendConfig config;
  config.workers = 2;
  vc::Backend backend(config);

  vu::ParamList params;
  params.set("dataset", dataset_);
  params.set_double("iso", -0.5);
  params.set_int("workers", 2);
  params.set_int("stream_cells", 64);

  // In-process reference.
  vv::GeometryCollector reference;
  {
    vv::ExtractionSession session(backend.connect());
    auto stream = session.submit("vortex.streamed", params);
    while (true) {
      auto packet = stream->next(std::chrono::milliseconds(60000));
      ASSERT_TRUE(packet.has_value());
      if (packet->kind == vv::Packet::Kind::kComplete) {
        ASSERT_TRUE(packet->stats.success) << packet->stats.error;
        break;
      }
      reference.consume(*packet);
    }
  }

  // Same command over a real TCP loopback connection.
  const auto port = backend.serve_tcp();
  auto link = vira::comm::tcp_connect("127.0.0.1", port);
  vv::ExtractionSession session(std::shared_ptr<vira::comm::ClientLink>(link.release()));
  vv::GeometryCollector over_tcp;
  auto stream = session.submit("vortex.streamed", params);
  while (true) {
    auto packet = stream->next(std::chrono::milliseconds(60000));
    ASSERT_TRUE(packet.has_value());
    if (packet->kind == vv::Packet::Kind::kComplete) {
      ASSERT_TRUE(packet->stats.success) << packet->stats.error;
      EXPECT_GT(packet->stats.partial_packets, 0u);
      break;
    }
    over_tcp.consume(*packet);
  }

  EXPECT_EQ(over_tcp.flat_mesh().triangle_count(), reference.flat_mesh().triangle_count());
  EXPECT_NEAR(over_tcp.flat_mesh().surface_area(), reference.flat_mesh().surface_area(), 1e-6);
}

// ---------------------------------------------------------------------------
// Progress reporting reaches the client
// ---------------------------------------------------------------------------

TEST_F(IntegrationTest, ProgressPacketsArriveMonotonically) {
  vc::BackendConfig config;
  config.workers = 1;
  vc::Backend backend(config);
  vv::ExtractionSession session(backend.connect());

  auto stream = session.submit("iso.dataman", iso_params(1));
  std::vector<double> progress;
  while (true) {
    auto packet = stream->next(std::chrono::milliseconds(60000));
    ASSERT_TRUE(packet.has_value());
    if (packet->kind == vv::Packet::Kind::kComplete) {
      ASSERT_TRUE(packet->stats.success);
      break;
    }
    if (packet->kind == vv::Packet::Kind::kProgress) {
      progress.push_back(packet->progress);
    }
  }
  ASSERT_FALSE(progress.empty());
  EXPECT_TRUE(std::is_sorted(progress.begin(), progress.end()));
  EXPECT_NEAR(progress.back(), 1.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Worker-count equivalence sweep (parameterized)
// ---------------------------------------------------------------------------

class WorkerSweepTest : public IntegrationTest,
                        public ::testing::WithParamInterface<int> {};

TEST_P(WorkerSweepTest, VortexGeometryIndependentOfGroupSize) {
  const int workers = GetParam();
  vc::BackendConfig config;
  config.workers = workers;
  vc::Backend backend(config);
  vv::ExtractionSession session(backend.connect());

  vu::ParamList params;
  params.set("dataset", dataset_);
  params.set_double("iso", -0.5);
  params.set_int("workers", workers);
  std::vector<vu::ByteBuffer> fragments;
  const auto stats = session.submit("vortex.dataman", params)->wait(&fragments);
  ASSERT_TRUE(stats.success) << stats.error;
  ASSERT_EQ(fragments.size(), 1u);
  vv::Packet packet;
  packet.kind = vv::Packet::Kind::kFinal;
  packet.payload = std::move(fragments[0]);
  vv::GeometryCollector collector;
  collector.consume(packet);

  // Triangle count is a worker-count invariant (merge is exact).
  static std::size_t reference_triangles = 0;
  if (workers == 1) {
    reference_triangles = collector.flat_mesh().triangle_count();
    EXPECT_GT(reference_triangles, 0u);
  } else {
    EXPECT_EQ(collector.flat_mesh().triangle_count(), reference_triangles);
  }
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, WorkerSweepTest, ::testing::Values(1, 2, 3, 4),
                         [](const auto& info) {
                           return "workers" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Multiple concurrent clients (collaboration scenario)
// ---------------------------------------------------------------------------

TEST_F(IntegrationTest, TwoClientsGetTheirOwnResults) {
  vc::BackendConfig config;
  config.workers = 2;
  vc::Backend backend(config);

  // Both sessions assign request_id 1 to their first request — the
  // scheduler must keep them apart and route each result home.
  vv::ExtractionSession alice(backend.connect());
  vv::ExtractionSession bob(backend.connect());

  auto alice_params = iso_params(1);
  auto bob_params = iso_params(1);
  bob_params.set_double("iso", iso_ * 1.03);  // different surface

  auto alice_stream = alice.submit("iso.dataman", alice_params);
  auto bob_stream = bob.submit("iso.dataman", bob_params);
  EXPECT_EQ(alice_stream->request_id(), bob_stream->request_id());  // ids collide by design

  std::vector<vu::ByteBuffer> alice_fragments;
  std::vector<vu::ByteBuffer> bob_fragments;
  const auto alice_stats = alice_stream->wait(&alice_fragments);
  const auto bob_stats = bob_stream->wait(&bob_fragments);
  ASSERT_TRUE(alice_stats.success) << alice_stats.error;
  ASSERT_TRUE(bob_stats.success) << bob_stats.error;
  ASSERT_EQ(alice_fragments.size(), 1u);
  ASSERT_EQ(bob_fragments.size(), 1u);

  // Different iso values -> different surfaces: each client must have
  // received exactly its own.
  vv::Packet a;
  a.kind = vv::Packet::Kind::kFinal;
  a.payload = std::move(alice_fragments[0]);
  vv::Packet b;
  b.kind = vv::Packet::Kind::kFinal;
  b.payload = std::move(bob_fragments[0]);
  vv::GeometryCollector ca;
  vv::GeometryCollector cb;
  ca.consume(a);
  cb.consume(b);
  EXPECT_GT(ca.flat_mesh().triangle_count(), 0u);
  EXPECT_GT(cb.flat_mesh().triangle_count(), 0u);
  EXPECT_NE(ca.flat_mesh().triangle_count(), cb.flat_mesh().triangle_count());
}

TEST_F(IntegrationTest, MixedTcpAndInProcessClients) {
  vc::BackendConfig config;
  config.workers = 2;
  vc::Backend backend(config);
  const auto port = backend.serve_tcp();

  vv::ExtractionSession local(backend.connect());
  auto link = vira::comm::tcp_connect("127.0.0.1", port);
  vv::ExtractionSession remote(std::shared_ptr<vira::comm::ClientLink>(link.release()));

  auto local_stream = local.submit("iso.dataman", iso_params(1));
  auto remote_stream = remote.submit("iso.dataman", iso_params(1));
  EXPECT_TRUE(local_stream->wait().success);
  EXPECT_TRUE(remote_stream->wait().success);
}

// ---------------------------------------------------------------------------
// Message-based DMS wiring (the paper's distributed deployment)
// ---------------------------------------------------------------------------

TEST_F(IntegrationTest, DmsOverMessagesMatchesDirectWiring) {
  // Same command, both wirings: identical geometry, and the message path
  // really exercised the server (decision counters move).
  vu::ParamList params = iso_params(2);

  std::size_t direct_triangles = 0;
  {
    vc::BackendConfig config;
    config.workers = 2;
    vc::Backend backend(config);
    vv::ExtractionSession session(backend.connect());
    std::vector<vu::ByteBuffer> fragments;
    const auto stats = session.submit("iso.dataman", params)->wait(&fragments);
    ASSERT_TRUE(stats.success) << stats.error;
    vv::Packet packet;
    packet.kind = vv::Packet::Kind::kFinal;
    packet.payload = std::move(fragments[0]);
    vv::GeometryCollector collector;
    collector.consume(packet);
    direct_triangles = collector.flat_mesh().triangle_count();
  }

  vc::BackendConfig config;
  config.workers = 2;
  config.dms_over_messages = true;
  vc::Backend backend(config);
  vv::ExtractionSession session(backend.connect());
  std::vector<vu::ByteBuffer> fragments;
  const auto stats = session.submit("iso.dataman", params)->wait(&fragments);
  ASSERT_TRUE(stats.success) << stats.error;
  vv::Packet packet;
  packet.kind = vv::Packet::Kind::kFinal;
  packet.payload = std::move(fragments[0]);
  vv::GeometryCollector collector;
  collector.consume(packet);
  EXPECT_EQ(collector.flat_mesh().triangle_count(), direct_triangles);

  // The central server was consulted per load, over messages.
  const auto decisions = backend.data_server().decision_counts();
  std::uint64_t total_decisions = 0;
  for (const auto& [kind, count] : decisions) {
    total_decisions += count;
  }
  EXPECT_GE(total_decisions, 23u);  // at least one decision per block
}

TEST_F(IntegrationTest, DmsOverMessagesSurvivesRepeatedCommands) {
  vc::BackendConfig config;
  config.workers = 2;
  config.dms_over_messages = true;
  vc::Backend backend(config);
  vv::ExtractionSession session(backend.connect());

  for (int round = 0; round < 3; ++round) {
    auto params = iso_params(2);
    params.set_double("iso", iso_ * (0.98 + 0.02 * round));
    const auto stats = session.submit("iso.dataman", params)->wait();
    ASSERT_TRUE(stats.success) << "round " << round << ": " << stats.error;
  }
  // Repeat rounds were served from cache; the name service interned each
  // block exactly once.
  EXPECT_EQ(backend.data_server().names().size(), 23u);
  const auto counters = backend.dms_counters();
  EXPECT_GT(counters.l1_hits, counters.misses);
}

TEST_F(IntegrationTest, DmsOverMessagesWithAsyncPrefetch) {
  // The prefetch thread shares the worker's communicator with the command
  // thread — both must receive their own replies without stealing.
  vc::BackendConfig config;
  config.workers = 2;
  config.dms_over_messages = true;
  config.async_prefetch = true;
  vc::Backend backend(config);
  vv::ExtractionSession session(backend.connect());

  vu::ParamList params;
  params.set("dataset", dataset_);
  params.set_int("workers", 2);
  params.set_int("seed_count", 4);
  params.set_int("step0", 0);
  params.set_int("step1", 3);
  params.set_double("tolerance", 1e-3);
  const auto stats = session.submit("pathlines.dataman", params)->wait();
  ASSERT_TRUE(stats.success) << stats.error;
  EXPECT_GT(backend.dms_counters().prefetch_issued, 0u);
}
