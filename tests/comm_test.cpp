#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <thread>
#include <vector>

#include "comm/client_link.hpp"
#include "comm/communicator.hpp"
#include "comm/transport.hpp"
#include "test_util.hpp"

namespace vc = vira::comm;
namespace vu = vira::util;

namespace {

vu::ByteBuffer make_payload(const std::string& text) {
  vu::ByteBuffer buf;
  buf.write_string(text);
  return buf;
}

std::string read_payload(vu::ByteBuffer& buf) { return buf.read_string(); }

/// Runs `body(rank, comm)` on `size` threads over a shared InProcTransport.
void run_ranks(int size, const std::function<void(int, vc::Communicator&)>& body) {
  auto transport = std::make_shared<vc::InProcTransport>(size);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size));
  for (int rank = 0; rank < size; ++rank) {
    threads.emplace_back([&, rank] {
      vc::Communicator comm(transport, rank);
      body(rank, comm);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// InProcTransport
// ---------------------------------------------------------------------------

TEST(InProcTransport, DeliversToAddressedEndpoint) {
  vc::InProcTransport transport(3);
  vc::Message msg;
  msg.source = 0;
  msg.tag = 7;
  msg.payload = make_payload("hello");
  transport.send(2, std::move(msg));

  auto received = transport.recv(2, std::chrono::milliseconds(100));
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->source, 0);
  EXPECT_EQ(received->tag, 7);
  EXPECT_EQ(read_payload(received->payload), "hello");

  EXPECT_FALSE(transport.recv(0, std::chrono::milliseconds(1)).has_value());
}

TEST(InProcTransport, RejectsBadEndpoints) {
  vc::InProcTransport transport(2);
  vc::Message msg;
  EXPECT_THROW(transport.send(5, std::move(msg)), std::out_of_range);
  EXPECT_THROW((void)transport.recv(-1, std::chrono::milliseconds(1)), std::out_of_range);
  EXPECT_THROW(vc::InProcTransport(0), std::invalid_argument);
}

TEST(InProcTransport, ShutdownReleasesReceivers) {
  auto transport = std::make_shared<vc::InProcTransport>(1);
  std::thread receiver([&] {
    const auto msg = transport->recv(0, std::chrono::milliseconds(5000));
    EXPECT_FALSE(msg.has_value());
  });
  transport->shutdown();
  receiver.join();
  EXPECT_TRUE(transport->is_shut_down());
}

TEST(InProcTransport, SendAfterShutdownIsDroppedSilently) {
  // Teardown race contract (transport.hpp): a send that loses the race with
  // shutdown() is dropped, not an error — senders on other threads must not
  // have to synchronize with the teardown path.
  vc::InProcTransport transport(2);
  transport.shutdown();
  EXPECT_TRUE(transport.is_shut_down());
  vc::Message msg;
  msg.source = 0;
  msg.tag = 1;
  msg.payload = make_payload("too late");
  EXPECT_NO_THROW(transport.send(1, std::move(msg)));
  EXPECT_FALSE(transport.recv(1, std::chrono::milliseconds(20)).has_value());
}

TEST(InProcTransport, SendsRacingShutdownNeverThrowOrHang) {
  // Hammer send() from several threads while shutdown() lands mid-stream.
  // Every send must return cleanly (delivered or dropped) and receivers
  // drain to end-of-stream.
  auto transport = std::make_shared<vc::InProcTransport>(3);
  std::vector<std::thread> senders;
  senders.reserve(2);
  for (int s = 0; s < 2; ++s) {
    senders.emplace_back([transport, s] {
      for (int i = 0; i < 2000; ++i) {
        vc::Message msg;
        msg.source = s;
        msg.tag = i;
        msg.payload = make_payload("x");
        EXPECT_NO_THROW(transport->send(2, std::move(msg)));
      }
    });
  }
  std::atomic<int> received{0};
  std::thread receiver([transport, &received] {
    while (transport->recv(2, std::chrono::milliseconds(50)).has_value()) {
      received.fetch_add(1);
    }
  });
  // Shut down mid-stream: wait for the exchange to be demonstrably under
  // way (not a fixed sleep — on a loaded machine 2ms might be before the
  // first send, which would test nothing).
  EXPECT_TRUE(vira::test::eventually([&] { return received.load() >= 16; }));
  transport->shutdown();
  for (auto& t : senders) {
    t.join();
  }
  receiver.join();
  EXPECT_TRUE(transport->is_shut_down());
}

// ---------------------------------------------------------------------------
// Communicator point-to-point
// ---------------------------------------------------------------------------

TEST(Communicator, SendRecvWithTagMatching) {
  run_ranks(2, [](int rank, vc::Communicator& comm) {
    if (rank == 0) {
      comm.send(1, 5, make_payload("tag5"));
      comm.send(1, 9, make_payload("tag9"));
    } else {
      // Receive out of order: tag 9 first, then tag 5 from the buffer.
      auto msg9 = comm.recv(0, 9);
      EXPECT_EQ(read_payload(msg9.payload), "tag9");
      auto msg5 = comm.recv(0, 5);
      EXPECT_EQ(read_payload(msg5.payload), "tag5");
    }
  });
}

TEST(Communicator, AnySourceAndAnyTagWildcards) {
  run_ranks(3, [](int rank, vc::Communicator& comm) {
    if (rank == 0) {
      int seen = 0;
      for (int n = 0; n < 2; ++n) {
        auto msg = comm.recv(vc::kAnySource, vc::kAnyTag);
        seen += msg.source;
      }
      EXPECT_EQ(seen, 3);  // 1 + 2
    } else {
      comm.send(0, rank * 10, make_payload("x"));
    }
  });
}

TEST(Communicator, TryRecvTimesOutCleanly) {
  auto transport = std::make_shared<vc::InProcTransport>(1);
  vc::Communicator comm(transport, 0);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(comm.try_recv(vc::kAnySource, 1, std::chrono::milliseconds(30)).has_value());
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, std::chrono::milliseconds(25));
}

TEST(Communicator, ProbePeeksWithoutConsuming) {
  run_ranks(2, [](int rank, vc::Communicator& comm) {
    if (rank == 0) {
      comm.send(1, 3, make_payload("peek"));
    } else {
      std::optional<std::pair<int, int>> header;
      while (!header) {
        header = comm.probe(std::chrono::milliseconds(50));
      }
      EXPECT_EQ(header->first, 0);
      EXPECT_EQ(header->second, 3);
      auto msg = comm.recv(0, 3);
      EXPECT_EQ(read_payload(msg.payload), "peek");
    }
  });
}

TEST(Communicator, NegativeUserTagRejected) {
  auto transport = std::make_shared<vc::InProcTransport>(2);
  vc::Communicator comm(transport, 0);
  EXPECT_THROW(comm.send(1, -3, {}), std::invalid_argument);
}

TEST(Communicator, RecvThrowsAfterShutdown) {
  auto transport = std::make_shared<vc::InProcTransport>(1);
  vc::Communicator comm(transport, 0);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    transport->shutdown();
  });
  EXPECT_THROW((void)comm.recv(), vc::TransportClosed);
  closer.join();
}

TEST(Communicator, FifoPerSenderPair) {
  run_ranks(2, [](int rank, vc::Communicator& comm) {
    constexpr int kCount = 200;
    if (rank == 0) {
      for (int n = 0; n < kCount; ++n) {
        vu::ByteBuffer buf;
        buf.write<int>(n);
        comm.send(1, 1, std::move(buf));
      }
    } else {
      for (int n = 0; n < kCount; ++n) {
        auto msg = comm.recv(0, 1);
        EXPECT_EQ(msg.payload.read<int>(), n);
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Communicator collectives
// ---------------------------------------------------------------------------

TEST(Communicator, BarrierSynchronizesRepeatedly) {
  std::atomic<int> phase_counter{0};
  run_ranks(4, [&](int rank, vc::Communicator& comm) {
    for (int round = 0; round < 5; ++round) {
      if (rank == round % 4) {
        // Stagger one rank to provoke the fast-peer overtaking scenario.
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      comm.barrier();
      phase_counter.fetch_add(1);
      comm.barrier();
      EXPECT_EQ(phase_counter.load() % 4, 0) << "round " << round;
    }
  });
  EXPECT_EQ(phase_counter.load(), 20);
}

TEST(Communicator, BroadcastDeliversRootPayload) {
  run_ranks(3, [](int rank, vc::Communicator& comm) {
    vu::ByteBuffer payload;
    if (rank == 1) {
      payload = make_payload("from-root");
    }
    auto result = comm.broadcast(std::move(payload), 1);
    EXPECT_EQ(read_payload(result), "from-root");
  });
}

TEST(Communicator, GatherCollectsByRank) {
  run_ranks(4, [](int rank, vc::Communicator& comm) {
    vu::ByteBuffer mine;
    mine.write<int>(rank * rank);
    auto gathered = comm.gather(std::move(mine), 0);
    if (rank == 0) {
      ASSERT_EQ(gathered.size(), 4u);
      for (int r = 0; r < 4; ++r) {
        EXPECT_EQ(gathered[static_cast<std::size_t>(r)].read<int>(), r * r);
      }
    } else {
      EXPECT_TRUE(gathered.empty());
    }
  });
}

TEST(Communicator, ReduceSumsDoubles) {
  run_ranks(4, [](int rank, vc::Communicator& comm) {
    const double result = comm.reduce_sum(static_cast<double>(rank + 1), 2);
    if (rank == 2) {
      EXPECT_DOUBLE_EQ(result, 10.0);
    }
  });
}

TEST(Communicator, ConsecutiveGathersDoNotBleed) {
  run_ranks(3, [](int rank, vc::Communicator& comm) {
    for (int round = 0; round < 10; ++round) {
      vu::ByteBuffer mine;
      mine.write<int>(round * 100 + rank);
      auto gathered = comm.gather(std::move(mine), 0);
      if (rank == 0) {
        for (int r = 0; r < 3; ++r) {
          EXPECT_EQ(gathered[static_cast<std::size_t>(r)].read<int>(), round * 100 + r);
        }
      }
    }
  });
}

// ---------------------------------------------------------------------------
// ClientLink (in-process and TCP)
// ---------------------------------------------------------------------------

class ClientLinkTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    if (GetParam() == "inproc") {
      auto [a, b] = vc::make_inproc_link_pair();
      client_ = a;
      server_ = b;
    } else {
      listener_ = std::make_unique<vc::TcpListener>();
      auto connect_future = std::async(std::launch::async, [&] {
        return vc::tcp_connect("127.0.0.1", listener_->port());
      });
      server_ = listener_->accept(std::chrono::milliseconds(2000));
      client_ = std::shared_ptr<vc::ClientLink>(connect_future.get().release());
      ASSERT_TRUE(server_ != nullptr);
    }
  }

  std::shared_ptr<vc::ClientLink> client_;
  std::shared_ptr<vc::ClientLink> server_;
  std::unique_ptr<vc::TcpListener> listener_;
};

TEST_P(ClientLinkTest, RoundTripsFrames) {
  vc::Message msg;
  msg.source = 42;
  msg.tag = 7;
  msg.payload = make_payload("request");
  client_->send(std::move(msg));

  auto received = server_->recv(std::chrono::milliseconds(2000));
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->source, 42);
  EXPECT_EQ(received->tag, 7);
  EXPECT_EQ(read_payload(received->payload), "request");

  vc::Message reply;
  reply.tag = 8;
  reply.payload = make_payload("response");
  server_->send(std::move(reply));
  auto back = client_->recv(std::chrono::milliseconds(2000));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(read_payload(back->payload), "response");
}

TEST_P(ClientLinkTest, LargePayloadSurvives) {
  std::vector<float> big(200000);
  std::iota(big.begin(), big.end(), 0.0f);
  vc::Message msg;
  msg.tag = 1;
  msg.payload.write_vector(big);
  client_->send(std::move(msg));

  auto received = server_->recv(std::chrono::milliseconds(5000));
  ASSERT_TRUE(received.has_value());
  const auto restored = received->payload.read_vector<float>();
  ASSERT_EQ(restored.size(), big.size());
  EXPECT_EQ(restored[123456], 123456.0f);
}

TEST_P(ClientLinkTest, RecvTimesOutWithoutTraffic) {
  EXPECT_FALSE(server_->recv(std::chrono::milliseconds(20)).has_value());
}

TEST_P(ClientLinkTest, CloseUnblocksPeer) {
  client_->close();
  // The server side eventually observes end-of-stream as nullopt.
  auto msg = server_->recv(std::chrono::milliseconds(2000));
  EXPECT_FALSE(msg.has_value());
}

TEST_P(ClientLinkTest, ManyFramesKeepOrder) {
  constexpr int kCount = 500;
  std::thread sender([&] {
    for (int n = 0; n < kCount; ++n) {
      vc::Message msg;
      msg.tag = n;
      msg.payload.write<int>(n);
      client_->send(std::move(msg));
    }
  });
  for (int n = 0; n < kCount; ++n) {
    auto msg = server_->recv(std::chrono::milliseconds(2000));
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->tag, n);
    EXPECT_EQ(msg->payload.read<int>(), n);
  }
  sender.join();
}

INSTANTIATE_TEST_SUITE_P(Transports, ClientLinkTest, ::testing::Values("inproc", "tcp"),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Stress
// ---------------------------------------------------------------------------

TEST(Communicator, EightRankAllToAll) {
  constexpr int kRanks = 8;
  constexpr int kMessages = 50;
  run_ranks(kRanks, [](int rank, vc::Communicator& comm) {
    // Everyone sends kMessages to every other rank, then receives the same.
    for (int peer = 0; peer < kRanks; ++peer) {
      if (peer == rank) {
        continue;
      }
      for (int n = 0; n < kMessages; ++n) {
        vu::ByteBuffer buf;
        buf.write<int>(rank * 1000 + n);
        comm.send(peer, /*tag=*/n % 5, std::move(buf));
      }
    }
    int received = 0;
    long long sum = 0;
    while (received < (kRanks - 1) * kMessages) {
      auto msg = comm.recv(vc::kAnySource, vc::kAnyTag);
      sum += msg.payload.read<int>() % 1000;
      ++received;
    }
    // Each peer contributed sum over n of n = kMessages*(kMessages-1)/2.
    EXPECT_EQ(sum, static_cast<long long>(kRanks - 1) * kMessages * (kMessages - 1) / 2);
  });
}

TEST(Communicator, MixedCollectivesAndPointToPoint) {
  run_ranks(4, [](int rank, vc::Communicator& comm) {
    for (int round = 0; round < 5; ++round) {
      // p2p ring exchange...
      const int next = (rank + 1) % 4;
      const int prior = (rank + 3) % 4;
      vu::ByteBuffer buf;
      buf.write<int>(rank + round);
      comm.send(next, 100 + round, std::move(buf));
      auto msg = comm.recv(prior, 100 + round);
      EXPECT_EQ(msg.payload.read<int>(), prior + round);
      // ...interleaved with collectives.
      const double total = comm.reduce_sum(1.0, 0);
      if (rank == 0) {
        EXPECT_DOUBLE_EQ(total, 4.0);
      }
      comm.barrier();
    }
  });
}

// ---------------------------------------------------------------------------
// Collectives across rank counts (parameterized)
// ---------------------------------------------------------------------------

class CollectiveSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSweepTest, GatherBroadcastReduceAgree) {
  const int ranks = GetParam();
  run_ranks(ranks, [ranks](int rank, vc::Communicator& comm) {
    // Gather rank squares at the last rank.
    vu::ByteBuffer mine;
    mine.write<int>(rank * rank);
    auto gathered = comm.gather(std::move(mine), ranks - 1);
    if (rank == ranks - 1) {
      ASSERT_EQ(gathered.size(), static_cast<std::size_t>(ranks));
      for (int r = 0; r < ranks; ++r) {
        EXPECT_EQ(gathered[static_cast<std::size_t>(r)].read<int>(), r * r);
      }
    }
    // Broadcast a token from rank 0.
    vu::ByteBuffer token;
    if (rank == 0) {
      token.write<int>(ranks * 11);
    }
    auto result = comm.broadcast(std::move(token), 0);
    EXPECT_EQ(result.read<int>(), ranks * 11);
    // Reduce: Σ r = n(n-1)/2.
    const double sum = comm.reduce_sum(static_cast<double>(rank), 0);
    if (rank == 0) {
      EXPECT_DOUBLE_EQ(sum, ranks * (ranks - 1) / 2.0);
    }
    comm.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveSweepTest, ::testing::Values(2, 3, 5, 8),
                         [](const auto& info) {
                           return "ranks" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Multi-thread receive on one rank (the sharded-DMS wiring: worker loop,
// heartbeat poller and peer-transfer service all share a communicator)
// ---------------------------------------------------------------------------

TEST(Communicator, MessageStolenBySiblingThreadStillReachesItsAddressee) {
  // A thread polling for tag A pulls a tag-B message off the transport and
  // buffers it in the unexpected-message queue. The tag-B receiver must get
  // it from there — a stolen message may never be lost.
  auto transport = std::make_shared<vc::InProcTransport>(2);
  vc::Communicator sender(transport, 0);
  vc::Communicator receiver(transport, 1);

  sender.send(1, /*tag=*/7, make_payload("stolen"));
  // Poll for the wrong tag until the pump has definitely buffered tag 7.
  ASSERT_TRUE(vira::test::eventually([&] {
    EXPECT_FALSE(receiver.try_recv(vc::kAnySource, /*tag=*/99, std::chrono::milliseconds(1)));
    return receiver.probe(std::chrono::milliseconds(0)).has_value();
  }));
  // Now a zero-timeout receive must find it without touching the transport.
  auto msg = receiver.try_recv(0, 7, std::chrono::milliseconds(0));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(read_payload(msg->payload), "stolen");
}

TEST(Communicator, ConcurrentPumpingSiblingDoesNotStarveAReceiver) {
  // Regression: try_recv used to park in a single transport wait as long as
  // its whole timeout. With a sibling thread pumping the same rank, the
  // sibling buffers the caller's message and the caller only noticed at its
  // deadline — long enough to trip the scheduler's idle-grace watchdog. The
  // wait is now sliced, so delivery happens promptly even mid-wait.
  auto transport = std::make_shared<vc::InProcTransport>(2);
  vc::Communicator sender(transport, 0);
  vc::Communicator receiver(transport, 1);

  std::atomic<bool> stop{false};
  std::thread sibling([&] {
    while (!stop.load()) {
      (void)receiver.try_recv(vc::kAnySource, /*tag=*/99, std::chrono::milliseconds(1));
    }
  });

  for (int round = 0; round < 20; ++round) {
    sender.send(1, /*tag=*/7, make_payload("round"));
    // The worker-loop shape: a timeout much longer than the delivery should
    // take. The sibling races us to the transport on every round.
    auto msg = receiver.try_recv(0, 7, std::chrono::seconds(5));
    ASSERT_TRUE(msg.has_value()) << "round " << round;
    EXPECT_EQ(read_payload(msg->payload), "round");
  }
  stop.store(true);
  sibling.join();
}
