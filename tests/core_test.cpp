#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>

#include "core/backend.hpp"
#include "core/vmb_data_source.hpp"
#include "grid/synthetic.hpp"
#include "test_util.hpp"
#include "util/log.hpp"
#include "viz/session.hpp"

namespace vc = vira::core;
namespace vg = vira::grid;
namespace vu = vira::util;

namespace {

/// Echoes its "text" parameter back, optionally streaming N partials first,
/// optionally failing, optionally touching blocks through the DMS.
class EchoCommand final : public vc::Command {
 public:
  std::string name() const override { return "test.echo"; }

  void execute(vc::CommandContext& context) override {
    const auto& params = context.params();
    if (params.get_bool("fail", false)) {
      throw std::runtime_error("echo asked to fail");
    }
    context.phases().enter(vc::kPhaseCompute);

    const auto partials = params.get_int("partials", 0);
    for (int n = 0; n < partials; ++n) {
      vu::ByteBuffer fragment;
      fragment.write_string("partial-" + std::to_string(context.group_rank()) + "-" +
                            std::to_string(n));
      context.stream_partial(std::move(fragment));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    // Touch a dataset block if requested (exercises the DMS path).
    const auto dataset = params.get_or("dataset", "");
    if (!dataset.empty()) {
      context.phases().enter(vc::kPhaseRead);
      const auto blob = context.proxy().request(vira::dms::block_item(dataset, 0, 0));
      EXPECT_NE(blob, nullptr);
      context.phases().enter(vc::kPhaseCompute);
    }

    // Gather per-worker contributions at the master.
    vu::ByteBuffer part;
    part.write<std::int32_t>(context.group_rank());
    auto parts = context.gather_at_master(std::move(part));
    if (context.is_master()) {
      vu::ByteBuffer result;
      result.write_string(params.get_or("text", ""));
      result.write<std::uint32_t>(static_cast<std::uint32_t>(parts.size()));
      context.send_final(std::move(result));
    }
    context.phases().stop();
  }
};

struct RegisterCommands {
  RegisterCommands() {
    vc::CommandRegistry::global().register_command(
        "test.echo", [] { return std::make_unique<EchoCommand>(); });
  }
};
RegisterCommands register_commands;  // NOLINT

std::string make_dataset() {
  static std::string dir;
  if (dir.empty()) {
    dir = (std::filesystem::temp_directory_path() / "vira_core_test_ds").string();
    std::filesystem::remove_all(dir);
    vg::UniformFlow flow({1, 0, 0});
    vg::generate_box(dir, flow, 2, 5, 5, 5, {0, 0, 0}, {1, 1, 1}, 0.1, 3);
  }
  return dir;
}

}  // namespace

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(CommandRegistry, CreateAndErrors) {
  auto& registry = vc::CommandRegistry::global();
  EXPECT_TRUE(registry.knows("test.echo"));
  auto command = registry.create("test.echo");
  EXPECT_EQ(command->name(), "test.echo");
  EXPECT_THROW(registry.create("no.such.command"), std::invalid_argument);
  EXPECT_FALSE(registry.knows("no.such.command"));
}

// ---------------------------------------------------------------------------
// Backend end-to-end over the in-process link
// ---------------------------------------------------------------------------

TEST(Backend, RoundTripSingleWorker) {
  vc::BackendConfig config;
  config.workers = 1;
  vc::Backend backend(config);
  vira::viz::ExtractionSession session(backend.connect());

  vu::ParamList params;
  params.set("text", "hello-viracocha");
  auto stream = session.submit("test.echo", params);

  std::vector<vu::ByteBuffer> fragments;
  const auto stats = stream->wait(&fragments);
  EXPECT_TRUE(stats.success);
  EXPECT_EQ(stats.workers, 1);
  ASSERT_EQ(fragments.size(), 1u);
  EXPECT_EQ(fragments[0].read_string(), "hello-viracocha");
  EXPECT_EQ(fragments[0].read<std::uint32_t>(), 1u);
}

TEST(Backend, WorkGroupGathersAllWorkers) {
  vc::BackendConfig config;
  config.workers = 4;
  vc::Backend backend(config);
  vira::viz::ExtractionSession session(backend.connect());

  vu::ParamList params;
  params.set("text", "group");
  params.set_int("workers", 4);
  auto stream = session.submit("test.echo", params);
  std::vector<vu::ByteBuffer> fragments;
  const auto stats = stream->wait(&fragments);
  EXPECT_TRUE(stats.success);
  EXPECT_EQ(stats.workers, 4);
  ASSERT_EQ(fragments.size(), 1u);
  (void)fragments[0].read_string();
  EXPECT_EQ(fragments[0].read<std::uint32_t>(), 4u);
}

TEST(Backend, StreamedPartialsArriveBeforeCompletion) {
  vc::BackendConfig config;
  config.workers = 2;
  vc::Backend backend(config);
  vira::viz::ExtractionSession session(backend.connect());

  vu::ParamList params;
  params.set_int("partials", 3);
  params.set_int("workers", 2);
  auto stream = session.submit("test.echo", params);

  int partials = 0;
  int finals = 0;
  bool complete = false;
  while (!complete) {
    auto packet = stream->next(std::chrono::milliseconds(10000));
    ASSERT_TRUE(packet.has_value());
    switch (packet->kind) {
      case vira::viz::Packet::Kind::kPartial:
        ++partials;
        EXPECT_FALSE(complete);
        break;
      case vira::viz::Packet::Kind::kFinal:
        ++finals;
        break;
      case vira::viz::Packet::Kind::kComplete:
        complete = true;
        EXPECT_TRUE(packet->stats.success);
        EXPECT_EQ(packet->stats.partial_packets, 6u);
        // Streaming latency must be at most the total runtime.
        EXPECT_LE(packet->stats.latency, packet->stats.total_runtime + 1e-9);
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(partials, 6);  // 3 per worker x 2 workers
  EXPECT_EQ(finals, 1);
  EXPECT_GE(stream->first_data_seconds(), 0.0);
}

TEST(Backend, CommandErrorsReachTheClient) {
  vc::BackendConfig config;
  config.workers = 2;
  vc::Backend backend(config);
  vira::viz::ExtractionSession session(backend.connect());

  vu::ParamList params;
  params.set_bool("fail", true);
  auto stream = session.submit("test.echo", params);
  const auto stats = stream->wait();
  EXPECT_FALSE(stats.success);
  EXPECT_NE(stats.error.find("echo asked to fail"), std::string::npos);
}

TEST(Backend, UnknownCommandFailsGracefully) {
  vc::BackendConfig config;
  config.workers = 1;
  vc::Backend backend(config);
  vira::viz::ExtractionSession session(backend.connect());
  auto stream = session.submit("does.not.exist", {});
  const auto stats = stream->wait();
  EXPECT_FALSE(stats.success);
}

TEST(Backend, SequentialRequestsReuseWorkers) {
  vc::BackendConfig config;
  config.workers = 2;
  vc::Backend backend(config);
  vira::viz::ExtractionSession session(backend.connect());

  for (int round = 0; round < 5; ++round) {
    vu::ParamList params;
    params.set("text", "round-" + std::to_string(round));
    auto stream = session.submit("test.echo", params);
    std::vector<vu::ByteBuffer> fragments;
    const auto stats = stream->wait(&fragments);
    EXPECT_TRUE(stats.success);
    ASSERT_EQ(fragments.size(), 1u);
    EXPECT_EQ(fragments[0].read_string(), "round-" + std::to_string(round));
    // The pool settles back to full strength between rounds. Done reports
    // arrive after the client's Complete, so this is a predicate-wait, not
    // an immediate assertion (and not a fixed sleep).
    EXPECT_TRUE(vira::test::eventually(
        [&] { return backend.scheduler().free_workers() == 2u; }))
        << "round " << round << ": free=" << backend.scheduler().free_workers();
  }
}

TEST(Backend, ConcurrentRequestsQueueWhenWorkersBusy) {
  vc::BackendConfig config;
  config.workers = 2;
  vc::Backend backend(config);
  vira::viz::ExtractionSession session(backend.connect());

  // Two requests, each wanting both workers: the second must queue and
  // still complete correctly.
  vu::ParamList params;
  params.set_int("partials", 5);
  params.set_int("workers", 2);
  auto first = session.submit("test.echo", params);
  auto second = session.submit("test.echo", params);
  EXPECT_TRUE(first->wait().success);
  EXPECT_TRUE(second->wait().success);
}

TEST(Backend, SmallerGroupsRunConcurrently) {
  vc::BackendConfig config;
  config.workers = 2;
  vc::Backend backend(config);
  vira::viz::ExtractionSession session(backend.connect());

  vu::ParamList params;
  params.set_int("partials", 3);
  params.set_int("workers", 1);
  auto a = session.submit("test.echo", params);
  auto b = session.submit("test.echo", params);
  EXPECT_TRUE(a->wait().success);
  EXPECT_TRUE(b->wait().success);
}

TEST(Backend, DmsPathWorksThroughCommands) {
  const auto dataset = make_dataset();
  vc::BackendConfig config;
  config.workers = 2;
  vc::Backend backend(config);
  vira::viz::ExtractionSession session(backend.connect());

  vu::ParamList params;
  params.set("dataset", dataset);
  params.set_int("workers", 2);
  EXPECT_TRUE(session.submit("test.echo", params)->wait().success);
  const auto counters_first = backend.dms_counters();
  EXPECT_GE(counters_first.misses, 1u);

  // Second run: cached.
  EXPECT_TRUE(session.submit("test.echo", params)->wait().success);
  const auto counters_second = backend.dms_counters();
  EXPECT_GE(counters_second.l1_hits, counters_first.l1_hits + 2);

  // Cold start switch.
  backend.clear_caches();
  EXPECT_TRUE(session.submit("test.echo", params)->wait().success);
  EXPECT_GE(backend.dms_counters().misses, counters_second.misses + 1);
}

TEST(Backend, PhaseBreakdownIsReported) {
  const auto dataset = make_dataset();
  vc::BackendConfig config;
  config.workers = 1;
  vc::Backend backend(config);
  vira::viz::ExtractionSession session(backend.connect());

  vu::ParamList params;
  params.set("dataset", dataset);
  const auto stats = session.submit("test.echo", params)->wait();
  EXPECT_TRUE(stats.success);
  EXPECT_GT(stats.phase_seconds.count(vc::kPhaseCompute), 0u);
  EXPECT_GT(stats.phase_seconds.count(vc::kPhaseRead), 0u);
}

// ---------------------------------------------------------------------------
// Backend over real TCP
// ---------------------------------------------------------------------------

TEST(Backend, TcpClientRoundTrip) {
  vc::BackendConfig config;
  config.workers = 2;
  vc::Backend backend(config);
  const auto port = backend.serve_tcp();
  ASSERT_GT(port, 0);

  auto link = vira::comm::tcp_connect("127.0.0.1", port);
  vira::viz::ExtractionSession session(std::shared_ptr<vira::comm::ClientLink>(link.release()));

  vu::ParamList params;
  params.set("text", "over-tcp");
  params.set_int("partials", 2);
  auto stream = session.submit("test.echo", params);
  std::vector<vu::ByteBuffer> fragments;
  const auto stats = stream->wait(&fragments);
  EXPECT_TRUE(stats.success);
  ASSERT_GE(fragments.size(), 1u);
  EXPECT_EQ(fragments.back().read_string(), "over-tcp");
}

// ---------------------------------------------------------------------------
// VmbDataSource
// ---------------------------------------------------------------------------

TEST(VmbDataSource, LoadsExactBlockBytes) {
  const auto dataset = make_dataset();
  vc::VmbDataSource source;
  const auto name = vira::dms::block_item(dataset, 1, 2);
  auto bytes = source.load(name);
  EXPECT_EQ(bytes.size(), source.item_bytes(name));
  const auto block = vg::StructuredBlock::deserialize(bytes);
  EXPECT_EQ(block.block_id(), 2);
}

TEST(VmbDataSource, FileBytesSumBlocks) {
  const auto dataset = make_dataset();
  vc::VmbDataSource source;
  const auto name = vira::dms::block_item(dataset, 0, 0);
  std::uint64_t sum = 0;
  for (int b = 0; b < 3; ++b) {
    sum += source.item_bytes(vira::dms::block_item(dataset, 0, b));
  }
  EXPECT_EQ(source.file_bytes(name), sum);
  EXPECT_NE(source.file_key(name), source.file_key(vira::dms::block_item(dataset, 1, 0)));
}

TEST(VmbDataSource, CollectiveLoadReturnsWholeStep) {
  const auto dataset = make_dataset();
  vc::VmbDataSource source;
  auto items = source.load_file(vira::dms::block_item(dataset, 0, 1));
  EXPECT_EQ(items.size(), 3u);
}

TEST(VmbDataSource, RejectsUnknownItemTypes) {
  vc::VmbDataSource source;
  vira::dms::DataItemName bad;
  bad.source = "somewhere";
  bad.type = "exotic";
  EXPECT_THROW((void)source.item_bytes(bad), std::invalid_argument);
}

TEST(VmbDataSource, BlockSuccessorWalksFileOrder) {
  vira::dms::NameService names;
  vira::dms::NameResolver resolver(
      [&names](const vira::dms::DataItemName& name) { return names.intern(name); });
  auto successor = vc::make_block_successor(resolver, /*blocks_per_step=*/3, /*step_count=*/2,
                                            /*wrap_steps=*/true);
  const auto id00 = resolver.resolve(vira::dms::block_item("ds", 0, 0));
  const auto id01 = resolver.resolve(vira::dms::block_item("ds", 0, 1));
  const auto id02 = resolver.resolve(vira::dms::block_item("ds", 0, 2));
  const auto id10 = resolver.resolve(vira::dms::block_item("ds", 1, 0));
  const auto id12 = resolver.resolve(vira::dms::block_item("ds", 1, 2));

  EXPECT_EQ(successor(id00).value(), id01);
  EXPECT_EQ(successor(id01).value(), id02);
  EXPECT_EQ(successor(id02).value(), id10);   // wraps into the next step
  EXPECT_FALSE(successor(id12).has_value());  // end of dataset

  auto no_wrap = vc::make_block_successor(resolver, 3, 2, /*wrap_steps=*/false);
  EXPECT_FALSE(no_wrap(id02).has_value());
}

namespace {

/// Fails on exactly one group member — the partial-failure scenario.
class FailRankCommand final : public vc::Command {
 public:
  std::string name() const override { return "test.fail_rank"; }
  void execute(vc::CommandContext& context) override {
    const auto victim = context.params().get_int("victim", 1);
    if (context.group_rank() == victim) {
      throw std::runtime_error("rank " + std::to_string(victim) + " was told to fail");
    }
    // Survivors still gather (non-victims must not deadlock: the victim
    // never reaches the gather, so survivors must not wait on it).
    if (context.is_master() && context.group_size() == 1) {
      context.send_final({});
    }
  }
};

struct RegisterFailRank {
  RegisterFailRank() {
    vc::CommandRegistry::global().register_command(
        "test.fail_rank", [] { return std::make_unique<FailRankCommand>(); });
  }
};
RegisterFailRank register_fail_rank;  // NOLINT

}  // namespace

TEST(Backend, PartialWorkerFailureFailsCommandButFreesWorkers) {
  vc::BackendConfig config;
  config.workers = 3;
  vc::Backend backend(config);
  vira::viz::ExtractionSession session(backend.connect());

  vu::ParamList params;
  params.set_int("workers", 3);
  params.set_int("victim", 1);
  const auto stats = session.submit("test.fail_rank", params)->wait();
  EXPECT_FALSE(stats.success);
  EXPECT_NE(stats.error.find("told to fail"), std::string::npos);

  // All three workers are free again: a full-width command completes.
  vu::ParamList ok_params;
  ok_params.set("text", "recovered");
  ok_params.set_int("workers", 3);
  const auto next = session.submit("test.echo", ok_params)->wait();
  EXPECT_TRUE(next.success) << next.error;
}

// ---------------------------------------------------------------------------
// QoS scheduling (DESIGN.md "Scheduling & QoS"): queued-cancel answers,
// fair-share backfilling across clients, the aging bound, admission control
// and closed-link reaping — the real stack over InProcTransport. Each case
// has a virtual-time twin in dst_test.cpp.

TEST(SchedulerQos, QueuedCancelCompletesPromptly) {
  vc::BackendConfig config;
  config.workers = 1;
  vc::Backend backend(config);
  vira::viz::ExtractionSession session(backend.connect());

  // Occupy the only worker, then queue a second request behind it.
  vu::ParamList blocker_params;
  blocker_params.set_int("partials", 150);
  auto blocker = session.submit("test.echo", blocker_params);
  vu::ParamList params;
  params.set("text", "never-runs");
  auto queued = session.submit("test.echo", params);
  ASSERT_TRUE(vira::test::eventually(
      [&] { return backend.scheduler().queued_requests() == 1u; }));

  // A cancel of a never-dispatched request answers from the queue: the
  // stream terminates with an error now, not after the blocker drains.
  session.cancel(queued->request_id());
  const auto cancel_sent = std::chrono::steady_clock::now();
  const auto stats = queued->wait(nullptr, std::chrono::milliseconds(2000));
  const auto answer_delay = std::chrono::steady_clock::now() - cancel_sent;
  EXPECT_FALSE(stats.success);
  EXPECT_NE(stats.error.find("cancelled"), std::string::npos) << stats.error;
  EXPECT_LT(answer_delay, std::chrono::milliseconds(1000));
  EXPECT_TRUE(blocker->wait().success);
}

TEST(SchedulerQos, TwoClientFairShareBackfillsNarrowRequest) {
  vc::BackendConfig config;
  config.workers = 4;
  vc::Backend backend(config);
  vira::viz::ExtractionSession wide_client(backend.connect());
  vira::viz::ExtractionSession narrow_client(backend.connect());

  // Client A streams full-width requests back to back (~800 ms each — the
  // pacing must dwarf scheduling noise on a loaded single-core CI box, or
  // the post-completion queue-state check below races the wide backlog).
  vu::ParamList wide_params;
  wide_params.set_int("workers", 4);
  wide_params.set_int("partials", 400);
  std::vector<std::shared_ptr<vira::viz::ResultStream>> wide;
  for (int i = 0; i < 3; ++i) {
    wide.push_back(wide_client.submit("test.echo", wide_params));
  }
  ASSERT_TRUE(vira::test::eventually(
      [&] { return backend.scheduler().active_groups() >= 1u; }));

  // Client B's narrow request must not wait for A's whole backlog: under
  // FIFO it would sit behind ~2.4 s of queue; fair share dispatches it as
  // soon as a worker frees. It streams ~400 ms itself so client B is still
  // an active client when the next wide request dispatches — a one-packet
  // request can slip through a single early-freed rank of A's running
  // group and depart before any wide dispatch ever sees two clients (in
  // which case nothing would mold).
  vu::ParamList narrow_params;
  narrow_params.set_int("workers", 1);
  narrow_params.set_int("partials", 200);
  auto narrow = narrow_client.submit("test.echo", narrow_params);
  const auto narrow_stats = narrow->wait(nullptr, std::chrono::milliseconds(10000));
  EXPECT_TRUE(narrow_stats.success) << narrow_stats.error;
  // The discriminating property (wall-clock-free, so sanitizer slowdowns
  // don't matter): under FIFO the narrow request would complete *after*
  // the whole wide backlog; under fair share it overtakes it.
  EXPECT_TRUE(backend.scheduler().active_groups() >= 1 ||
              backend.scheduler().queued_requests() >= 1)
      << "narrow request completed after the entire wide backlog";

  // With two active clients the derived full-width requests mold to the
  // fair share (ceil(4 / 2) = 2); the clamp is recorded in the stats.
  bool molded = false;
  for (auto& stream : wide) {
    const auto stats = stream->wait();
    EXPECT_TRUE(stats.success) << stats.error;
    EXPECT_EQ(stats.requested_workers, 4);
    molded = molded || stats.workers < stats.requested_workers;
  }
  EXPECT_TRUE(molded);
  EXPECT_GE(backend.scheduler().total_backfills(), 1u);
}

TEST(SchedulerQos, AgingBoundDispatchesBypassedHead) {
  vc::BackendConfig config;
  config.workers = 3;
  config.scheduler.max_head_bypass = 2;
  vc::Backend backend(config);
  vira::viz::ExtractionSession client_a(backend.connect());
  vira::viz::ExtractionSession client_b(backend.connect());

  // Pin two workers with long narrow streams, one per client.
  vu::ParamList pin_params;
  pin_params.set_int("workers", 1);
  pin_params.set_int("partials", 250);
  auto pin_a = client_a.submit("test.echo", pin_params);
  auto pin_b = client_b.submit("test.echo", pin_params);
  ASSERT_TRUE(vira::test::eventually(
      [&] { return backend.scheduler().free_workers() == 1u; }));

  // Client A's wide request heads the queue but cannot fit: it molds to
  // the two-client share (2) with only one worker free.
  vu::ParamList wide_params;
  wide_params.set_int("workers", 3);
  wide_params.set("text", "wide");
  auto wide = client_a.submit("test.echo", wide_params);
  // The wide request must head the queue before the flood arrives,
  // otherwise the narrows dispatch as heads and nothing is bypassed.
  ASSERT_TRUE(vira::test::eventually(
      [&] { return backend.scheduler().queued_requests() == 1u; }));

  // Client B floods narrow work that backfills past the blocked head —
  // but only max_head_bypass (2) times; then the head ages into strict
  // priority and takes the next workers that free up.
  vu::ParamList narrow_params;
  narrow_params.set_int("workers", 1);
  narrow_params.set_int("partials", 3);
  std::vector<std::shared_ptr<vira::viz::ResultStream>> narrow;
  for (int i = 0; i < 8; ++i) {
    narrow.push_back(client_b.submit("test.echo", narrow_params));
  }

  const auto wide_stats = wide->wait(nullptr, std::chrono::milliseconds(10000));
  EXPECT_TRUE(wide_stats.success) << wide_stats.error;
  for (auto& stream : narrow) {
    EXPECT_TRUE(stream->wait().success);
  }
  EXPECT_TRUE(pin_a->wait().success);
  EXPECT_TRUE(pin_b->wait().success);
  EXPECT_GE(backend.scheduler().total_backfills(), 1u);
  EXPECT_LE(backend.scheduler().max_head_bypass_observed(), 2);
}

TEST(SchedulerQos, AdmissionControlRejectsBeyondQueueBound) {
  vc::BackendConfig config;
  config.workers = 1;
  config.scheduler.max_queue_per_client = 1;
  vc::Backend backend(config);
  vira::viz::ExtractionSession session(backend.connect());

  vu::ParamList blocker_params;
  blocker_params.set_int("partials", 150);
  auto blocker = session.submit("test.echo", blocker_params);
  ASSERT_TRUE(vira::test::eventually(
      [&] { return backend.scheduler().free_workers() == 0u; }));

  vu::ParamList params;
  params.set("text", "queued");
  auto queued = session.submit("test.echo", params);
  ASSERT_TRUE(vira::test::eventually(
      [&] { return backend.scheduler().queued_requests() == 1u; }));

  // The queue bound is reached: the next submission is refused up front
  // (kTagRejected), surfaced as a failed CommandStats — no silent drop.
  auto rejected = session.submit("test.echo", params);
  const auto stats = rejected->wait(nullptr, std::chrono::milliseconds(2000));
  EXPECT_FALSE(stats.success);
  EXPECT_NE(stats.error.find("queue depth"), std::string::npos) << stats.error;
  EXPECT_EQ(backend.scheduler().total_rejected(), 1u);

  // The admitted work is unaffected.
  EXPECT_TRUE(queued->wait().success);
  EXPECT_TRUE(blocker->wait().success);
}

TEST(SchedulerQos, ClosedClientLinkReapsQueuedAndInFlightWork) {
  vc::BackendConfig config;
  config.workers = 1;
  vc::Backend backend(config);
  auto victim = std::make_unique<vira::viz::ExtractionSession>(backend.connect());
  vira::viz::ExtractionSession survivor(backend.connect());

  // The victim holds the worker and queues more work, then disconnects.
  vu::ParamList blocker_params;
  blocker_params.set_int("partials", 250);
  victim->submit("test.echo", blocker_params);
  vu::ParamList queued_params;
  queued_params.set("text", "orphaned");
  victim->submit("test.echo", queued_params);
  ASSERT_TRUE(vira::test::eventually(
      [&] { return backend.scheduler().queued_requests() == 1u; }));
  victim.reset();

  // Queued work is dropped and the in-flight group is cancelled; the pool
  // settles back to full strength instead of serving a dead link.
  EXPECT_TRUE(vira::test::eventually([&] {
    return backend.scheduler().queued_requests() == 0u &&
           backend.scheduler().free_workers() == 1u;
  })) << "queued=" << backend.scheduler().queued_requests()
      << " free=" << backend.scheduler().free_workers();
  EXPECT_GE(backend.scheduler().total_reaped(), 1u);

  // The surviving client is unaffected.
  vu::ParamList params;
  params.set("text", "alive");
  const auto stats = survivor.submit("test.echo", params)->wait();
  EXPECT_TRUE(stats.success) << stats.error;
}
