#include <gtest/gtest.h>

#include <filesystem>

#include "grid/synthetic.hpp"
#include "perf/replay.hpp"
#include "perf/testbed.hpp"

namespace vp = vira::perf;
namespace vg = vira::grid;

namespace {

/// Shared small Engine-like dataset + profiles for all replay tests.
class ReplayTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = (std::filesystem::temp_directory_path() / "vira_perf_engine").string();
    if (!std::filesystem::exists(dir_ + "/dataset.vmi")) {
      std::filesystem::remove_all(dir_);
      vg::GeneratorConfig config;
      config.directory = dir_;
      config.timesteps = 6;
      config.ni = 12;
      config.nj = 9;
      config.nk = 7;
      vg::generate_engine(config);
    }
    reader_ = std::make_unique<vg::DatasetReader>(dir_);
    const double iso = vp::density_iso_mid(*reader_);
    iso_profile_ = vp::profile_iso(*reader_, 0, "density", static_cast<float>(iso), 128);
    vortex_profile_ = vp::profile_vortex(
        *reader_, 0, static_cast<float>(vp::lambda2_threshold(*reader_)), 128);
    cluster_ = vp::calibrate_cluster(iso_profile_, 17.0);
  }

  static vp::ReplayResult run_iso(int workers, bool use_dms, bool warm, bool prefetch = false,
                                  bool streaming = false) {
    vp::ReplayConfig config;
    config.workers = workers;
    config.use_dms = use_dms;
    config.warm_cache = warm;
    config.prefetch = prefetch;
    config.streaming = streaming;
    return vp::replay_extraction(iso_profile_, cluster_, config);
  }

  static std::string dir_;
  static std::unique_ptr<vg::DatasetReader> reader_;
  static vp::ExtractionProfile iso_profile_;
  static vp::ExtractionProfile vortex_profile_;
  static vp::ClusterModel cluster_;
};
std::string ReplayTest::dir_;
std::unique_ptr<vg::DatasetReader> ReplayTest::reader_;
vp::ExtractionProfile ReplayTest::iso_profile_;
vp::ExtractionProfile ReplayTest::vortex_profile_;
vp::ClusterModel ReplayTest::cluster_;

}  // namespace

TEST_F(ReplayTest, ProfilesHaveSaneNumbers) {
  EXPECT_EQ(iso_profile_.blocks.size(), 23u);
  EXPECT_GT(iso_profile_.host_compute_seconds(), 0.0);
  EXPECT_GT(iso_profile_.total_read_bytes(), 0u);
  EXPECT_GT(iso_profile_.total_result_bytes(), 0u);
  // λ2 is substantially more expensive than plain isosurfacing (Sec. 7.2).
  EXPECT_GT(vortex_profile_.host_compute_seconds(),
            2.0 * iso_profile_.host_compute_seconds());
}

TEST_F(ReplayTest, CalibrationHitsAnchors) {
  // One virtual worker, warm DMS: runtime ≈ the anchor compute seconds.
  const auto warm = run_iso(1, true, true);
  EXPECT_NEAR(warm.total_runtime, 17.0, 4.0);
  // Cold Simple run: reads roughly double it (the 50/49 split of Fig. 15).
  const auto simple = run_iso(1, false, false);
  EXPECT_NEAR(simple.total_runtime / warm.total_runtime, 2.0, 0.5);
}

TEST_F(ReplayTest, DataManagementBeatsSimple) {
  for (int workers : {1, 2, 4, 8, 16}) {
    const auto simple = run_iso(workers, false, false);
    const auto dataman = run_iso(workers, true, true);
    EXPECT_GT(simple.total_runtime, dataman.total_runtime) << workers << " workers";
  }
}

TEST_F(ReplayTest, RuntimeScalesWithWorkers) {
  const auto w1 = run_iso(1, true, true);
  const auto w4 = run_iso(4, true, true);
  const auto w8 = run_iso(8, true, true);
  EXPECT_GT(w1.total_runtime, w4.total_runtime);
  EXPECT_GT(w4.total_runtime, w8.total_runtime);
  // Speedup is sublinear (blocks are unevenly sized, gather serializes).
  EXPECT_LT(w1.total_runtime / w8.total_runtime, 8.5);
}

TEST_F(ReplayTest, StreamingReducesLatencyButAddsOverhead) {
  for (int workers : {1, 4, 16}) {
    const auto plain = run_iso(workers, true, true, false, false);
    const auto streamed = run_iso(workers, true, true, false, true);
    // First results arrive much earlier...
    EXPECT_LT(streamed.latency, 0.6 * plain.latency) << workers << " workers";
    // ...at a (usually mild) total-runtime cost.
    EXPECT_GE(streamed.total_runtime, plain.total_runtime * 0.95) << workers << " workers";
  }
}

TEST_F(ReplayTest, StreamingLatencyIsFlatInWorkerCount) {
  const auto l1 = run_iso(1, true, true, false, true).latency;
  const auto l16 = run_iso(16, true, true, false, true).latency;
  // "The response times are almost constant with respect to the number of
  // available workers" (Sec. 7.1).
  EXPECT_LT(std::max(l1, l16) / std::max(1e-9, std::min(l1, l16)), 3.0);
}

TEST_F(ReplayTest, PrefetchOverlapsIoOnColdCaches) {
  vp::ReplayConfig config;
  config.workers = 2;
  config.use_dms = true;
  config.warm_cache = false;
  config.prefetch = false;
  const auto without = vp::replay_extraction(vortex_profile_, cluster_, config);
  config.prefetch = true;
  const auto with = vp::replay_extraction(vortex_profile_, cluster_, config);
  EXPECT_LT(with.total_runtime, without.total_runtime);
  EXPECT_GT(with.prefetch_issued, 0u);
  EXPECT_GT(with.prefetch_useful, 0u);
  // Demand misses nearly eliminated: only the first block per worker.
  EXPECT_LE(with.demand_loads, 4u);
}

TEST_F(ReplayTest, ReplayIsDeterministic) {
  const auto a = run_iso(8, true, true, false, true);
  const auto b = run_iso(8, true, true, false, true);
  EXPECT_DOUBLE_EQ(a.total_runtime, b.total_runtime);
  EXPECT_DOUBLE_EQ(a.latency, b.latency);
  EXPECT_EQ(a.fragments, b.fragments);
}

TEST_F(ReplayTest, BreakdownShiftsWithCaching) {
  const auto simple = run_iso(1, false, false);
  const auto dataman = run_iso(1, true, true);
  const double simple_read_share = simple.read_seconds / simple.phase_total();
  const double dataman_read_share = dataman.read_seconds / dataman.phase_total();
  // Fig. 15: read share collapses once the DMS serves from cache.
  EXPECT_GT(simple_read_share, 0.3);
  EXPECT_LT(dataman_read_share, 0.1);
}

// ---------------------------------------------------------------------------
// Pathline replay
// ---------------------------------------------------------------------------

TEST_F(ReplayTest, PathlineMarkovBeatsNoPrefetchCold) {
  const auto profile = vp::profile_pathlines(*reader_, 0, 5, 8);
  ASSERT_EQ(profile.seeds.size(), 8u);
  std::size_t total_requests = 0;
  for (const auto& seed : profile.seeds) {
    total_requests += seed.size();
  }
  ASSERT_GT(total_requests, 10u);

  vp::PathlineReplayConfig config;
  config.workers = 2;
  config.use_dms = true;
  config.warm_cache = false;
  config.blocks_per_step = reader_->meta().block_count();

  config.prefetcher = "none";
  const auto none = vp::replay_pathlines(profile, cluster_, config);
  config.prefetcher = "markov";
  const auto markov = vp::replay_pathlines(profile, cluster_, config);

  EXPECT_LT(markov.total_runtime, none.total_runtime);
  EXPECT_GT(markov.prefetch_useful, 0u);
  // Markov eliminates a large share of the demand loads.
  EXPECT_LT(markov.demand_loads, none.demand_loads);
}

TEST_F(ReplayTest, PathlineWarmCacheIsFast) {
  const auto profile = vp::profile_pathlines(*reader_, 0, 5, 8);
  vp::PathlineReplayConfig config;
  config.workers = 2;
  config.blocks_per_step = reader_->meta().block_count();
  config.use_dms = true;
  config.warm_cache = true;
  config.prefetcher = "none";
  const auto warm = vp::replay_pathlines(profile, cluster_, config);
  config.use_dms = false;
  config.warm_cache = false;
  const auto simple = vp::replay_pathlines(profile, cluster_, config);
  EXPECT_LT(warm.total_runtime, simple.total_runtime);
  EXPECT_EQ(warm.demand_loads, 0u);
}

TEST_F(ReplayTest, PathlineLoadImbalanceLimitsScaling) {
  const auto profile = vp::profile_pathlines(*reader_, 0, 5, 8);
  vp::PathlineReplayConfig config;
  config.blocks_per_step = reader_->meta().block_count();
  config.use_dms = true;
  config.warm_cache = true;
  config.prefetcher = "none";
  config.workers = 1;
  const auto w1 = vp::replay_pathlines(profile, cluster_, config);
  config.workers = 8;
  const auto w8 = vp::replay_pathlines(profile, cluster_, config);
  EXPECT_LT(w8.total_runtime, w1.total_runtime);
  // Sec. 7.3: "bad scalability because of load imbalance" — speedup far
  // below the worker count.
  EXPECT_LT(w1.total_runtime / w8.total_runtime, 7.0);
}

// ---------------------------------------------------------------------------
// Replay configuration knobs
// ---------------------------------------------------------------------------

TEST_F(ReplayTest, DistributedCachesDuplicateColdLoads) {
  vp::ReplayConfig config;
  config.workers = 8;
  config.use_dms = true;
  config.warm_cache = false;
  config.shared_cache = true;  // one SMP node (paper testbed)
  const auto shared = vp::replay_extraction(iso_profile_, cluster_, config);
  config.shared_cache = false;  // distributed-memory cluster
  const auto distributed = vp::replay_extraction(iso_profile_, cluster_, config);
  // With chunked ownership each worker loads only its own blocks, so cold
  // demand counts match; the shared node cache matters for *revisits*
  // (pathlines) and for prefetch sharing, not for a single linear sweep.
  EXPECT_EQ(shared.demand_loads, distributed.demand_loads);
  EXPECT_EQ(shared.demand_loads, iso_profile_.blocks.size());
}

TEST_F(ReplayTest, SharedCacheDeduplicatesPathlineLoads) {
  const auto profile = vp::profile_pathlines(*reader_, 0, 5, 8);
  vp::PathlineReplayConfig config;
  config.workers = 4;
  config.use_dms = true;
  config.warm_cache = false;
  config.prefetcher = "none";
  config.blocks_per_step = reader_->meta().block_count();

  config.shared_cache = true;
  const auto shared = vp::replay_pathlines(profile, cluster_, config);
  config.shared_cache = false;
  const auto distributed = vp::replay_pathlines(profile, cluster_, config);
  // Different workers' traces overlap in blocks: per-worker caches must
  // re-load them, the node-wide cache must not.
  EXPECT_LT(shared.demand_loads, distributed.demand_loads);
  EXPECT_LE(shared.total_runtime, distributed.total_runtime + 1e-9);
}

TEST_F(ReplayTest, ReadBytesScaleInflatesIoOnly) {
  const auto profile = vp::profile_pathlines(*reader_, 0, 5, 4);
  vp::PathlineReplayConfig config;
  config.workers = 1;
  config.use_dms = true;
  config.warm_cache = false;
  config.prefetcher = "none";
  config.blocks_per_step = reader_->meta().block_count();

  config.read_bytes_scale = 1.0;
  const auto base = vp::replay_pathlines(profile, cluster_, config);
  config.read_bytes_scale = 10.0;
  const auto scaled = vp::replay_pathlines(profile, cluster_, config);
  EXPECT_GT(scaled.read_seconds, 5.0 * base.read_seconds);
  EXPECT_NEAR(scaled.compute_seconds, base.compute_seconds, 1e-9);
}

TEST_F(ReplayTest, LearningPassesImproveMarkov) {
  const auto profile = vp::profile_pathlines(*reader_, 0, 5, 8);
  vp::PathlineReplayConfig config;
  config.workers = 2;
  config.use_dms = true;
  config.warm_cache = false;
  config.prefetcher = "markov";
  config.blocks_per_step = reader_->meta().block_count();

  config.learning_passes = 0;
  const auto untrained = vp::replay_pathlines(profile, cluster_, config);
  config.learning_passes = 1;
  const auto trained = vp::replay_pathlines(profile, cluster_, config);
  EXPECT_LE(trained.demand_loads, untrained.demand_loads);
  EXPECT_GT(trained.prefetch_useful, untrained.prefetch_useful / 2);
}

TEST_F(ReplayTest, DeeperPrefetchPipelineHidesMoreLoads) {
  const auto profile = vp::profile_pathlines(*reader_, 0, 5, 8);
  vp::PathlineReplayConfig config;
  config.workers = 1;
  config.use_dms = true;
  config.warm_cache = false;
  config.prefetcher = "markov";
  config.learning_passes = 1;
  config.blocks_per_step = reader_->meta().block_count();
  config.read_bytes_scale = 10.0;  // loads large enough that depth matters

  config.prefetch_depth = 1;
  const auto shallow = vp::replay_pathlines(profile, cluster_, config);
  config.prefetch_depth = 4;
  const auto deep = vp::replay_pathlines(profile, cluster_, config);
  EXPECT_LE(deep.total_runtime, shallow.total_runtime + 1e-9);
}

TEST_F(ReplayTest, OversubscriptionCapsAtNodeCpuCount) {
  // 48 workers on the 24-CPU node: compute throughput saturates; runtime
  // must not beat a 24-worker run by more than scheduling noise.
  const auto w24 = run_iso(24, true, true);
  const auto w48 = run_iso(48, true, true);
  // Dispatch overhead grows with group size, so oversubscription actually
  // LOSES time — the qualitative reason the paper never runs >16 workers.
  EXPECT_GE(w48.total_runtime, w24.total_runtime * 0.9);
}
