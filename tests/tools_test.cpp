#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <thread>

#include "comm/client_link.hpp"
#include "grid/synthetic.hpp"
#include "viz/session.hpp"

/// Multi-process smoke tests: launch the real viracocha-server binary,
/// talk to it over TCP from this process and through the viracocha-cli
/// binary. Binary locations are injected by CMake.

#ifndef VIRA_SERVER_BIN
#define VIRA_SERVER_BIN "viracocha-server"
#endif
#ifndef VIRA_CLI_BIN
#define VIRA_CLI_BIN "viracocha-cli"
#endif

namespace {

std::string dataset_dir() {
  static std::string dir;
  if (dir.empty()) {
    dir = (std::filesystem::temp_directory_path() / "vira_tools_ds").string();
    if (!std::filesystem::exists(dir + "/dataset.vmi")) {
      std::filesystem::remove_all(dir);
      vira::grid::GeneratorConfig config;
      config.directory = dir;
      config.timesteps = 2;
      config.ni = 9;
      config.nj = 7;
      config.nk = 6;
      vira::grid::generate_engine(config);
    }
  }
  return dir;
}

/// Starts the server in the background (auto-exits after `lifetime_s`) and
/// returns once it accepts connections. Returns the port.
std::uint16_t launch_server(int lifetime_s) {
  for (int candidate = 0; candidate < 3; ++candidate) {
    const auto port = static_cast<std::uint16_t>(
        20000 + ((::getpid() + 4099 * candidate + static_cast<int>(::time(nullptr)) % 97) %
                 20000));
    char command[1024];
    // Every descriptor of the detached pipeline is redirected: a leaked
    // stdout/stderr would make ctest wait for the server's full lifetime.
    std::snprintf(command, sizeof(command),
                  "sh -c '(sleep %d 2>/dev/null | %s --port %u --workers 2 "
                  "> /tmp/vira_tools_server.log 2>&1 &)' > /dev/null 2>&1 < /dev/null",
                  lifetime_s, VIRA_SERVER_BIN, port);
    if (std::system(command) != 0) {
      continue;
    }
    // Wait for the listener (the server exits immediately if the port is
    // taken — then try the next candidate).
    for (int attempt = 0; attempt < 50; ++attempt) {
      try {
        auto probe = vira::comm::tcp_connect("127.0.0.1", port);
        probe->close();
        return port;
      } catch (const std::exception&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    }
  }
  return 0;
}

}  // namespace

TEST(Tools, ServerAnswersDirectTcpClients) {
  const auto port = launch_server(20);
  ASSERT_NE(port, 0) << "server did not come up";

  auto link = vira::comm::tcp_connect("127.0.0.1", port);
  vira::viz::ExtractionSession session(
      std::shared_ptr<vira::comm::ClientLink>(link.release()));
  vira::util::ParamList params;
  params.set("dataset", dataset_dir());
  params.set("field", "density");
  params.set_int("workers", 2);
  const auto stats = session.submit("query.field_range", params)->wait();
  EXPECT_TRUE(stats.success) << stats.error;

  // CLI against the same live server: runs a command and writes an OBJ.
  const auto out = (std::filesystem::temp_directory_path() / "vira_tools_cli.obj").string();
  std::filesystem::remove(out);
  char command[1024];
  std::snprintf(command, sizeof(command),
                "%s --port %u --command iso.dataman --out %s dataset=%s field=density "
                "iso=0.85 workers=2 > /tmp/vira_tools_cli.log 2>&1",
                VIRA_CLI_BIN, port, out.c_str(), dataset_dir().c_str());
  EXPECT_EQ(std::system(command), 0);
  EXPECT_TRUE(std::filesystem::exists(out));
  std::filesystem::remove(out);
}

TEST(Tools, CliReportsConnectionFailure) {
  char command[512];
  std::snprintf(command, sizeof(command),
                "%s --port 1 --command iso.dataman dataset=/x > /dev/null 2>&1", VIRA_CLI_BIN);
  EXPECT_NE(std::system(command), 0);  // nothing listens on port 1
}

TEST(Tools, CliRejectsMissingCommand) {
  char command[512];
  std::snprintf(command, sizeof(command), "%s --port 5999 > /dev/null 2>&1", VIRA_CLI_BIN);
  EXPECT_NE(std::system(command), 0);
}
