#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <map>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "comm/fault_transport.hpp"
#include "comm/transport.hpp"
#include "dms/block_cache.hpp"
#include "dms/cache_policy.hpp"
#include "dms/data_proxy.hpp"
#include "dms/data_server.hpp"
#include "dms/loading.hpp"
#include "dms/name_service.hpp"
#include "dms/prefetcher.hpp"
#include "dms/shard_map.hpp"
#include "dms/two_tier_cache.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace vd = vira::dms;
namespace vu = vira::util;

namespace {

vd::Blob blob_of_size(std::size_t bytes, char fill = 'x') {
  vu::ByteBuffer buf;
  std::string payload(bytes, fill);
  buf.write_raw(payload.data(), payload.size());
  return vd::make_blob(std::move(buf));
}

vd::DataItemName item(const std::string& source, int step, int block) {
  return vd::block_item(source, step, block);
}

/// In-memory data source: items are 100-byte payloads keyed by canonical
/// name; per-source "files" group 4 items. Optionally injects failures.
class FakeSource final : public vd::DataSource {
 public:
  vu::ByteBuffer load(const vd::DataItemName& name) override {
    ++loads_;
    if (fail_next_ > 0) {
      --fail_next_;
      throw std::runtime_error("injected load failure");
    }
    std::this_thread::sleep_for(std::chrono::microseconds(load_delay_us_));
    vu::ByteBuffer buf;
    buf.write_string(name.canonical());
    std::string pad(100, 'd');
    buf.write_raw(pad.data(), pad.size());
    return buf;
  }

  std::uint64_t item_bytes(const vd::DataItemName& name) const override {
    return 108 + name.canonical().size();
  }
  std::uint64_t file_bytes(const vd::DataItemName&) const override { return 4 * 120; }
  std::string file_key(const vd::DataItemName& name) const override {
    return name.source + "#" + name.params.get_or("step", "0");
  }

  std::vector<std::pair<vd::DataItemName, vu::ByteBuffer>> load_file(
      const vd::DataItemName& name) override {
    ++file_loads_;
    std::vector<std::pair<vd::DataItemName, vu::ByteBuffer>> items;
    const int step = static_cast<int>(name.params.get_int("step", 0));
    for (int b = 0; b < 4; ++b) {
      auto sibling = vd::block_item(name.source, step, b);
      items.emplace_back(sibling, load(sibling));
    }
    return items;
  }

  int loads() const { return loads_; }
  int file_loads() const { return file_loads_; }
  void fail_next(int n) { fail_next_ = n; }
  void set_load_delay_us(int us) { load_delay_us_ = us; }

 private:
  std::atomic<int> loads_{0};
  std::atomic<int> file_loads_{0};
  std::atomic<int> fail_next_{0};
  std::atomic<int> load_delay_us_{0};
};

}  // namespace

// ---------------------------------------------------------------------------
// Name service
// ---------------------------------------------------------------------------

TEST(NameService, InternIsIdempotent) {
  vd::NameService names;
  const auto a = names.intern(item("engine", 0, 3));
  const auto b = names.intern(item("engine", 0, 3));
  const auto c = names.intern(item("engine", 0, 4));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(names.size(), 2u);
}

TEST(NameService, LookupInvertsIntern) {
  vd::NameService names;
  const auto original = item("propfan", 7, 11);
  const auto id = names.intern(original);
  const auto back = names.lookup(id);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, original);
  EXPECT_FALSE(names.lookup(999).has_value());
}

TEST(NameService, FindDoesNotAllocate) {
  vd::NameService names;
  EXPECT_FALSE(names.find(item("x", 0, 0)).has_value());
  EXPECT_EQ(names.size(), 0u);
  names.intern(item("x", 0, 0));
  EXPECT_TRUE(names.find(item("x", 0, 0)).has_value());
}

TEST(NameService, ParameterListDistinguishesItems) {
  // "Simply naming data items with file names would be inadequate."
  vd::NameService names;
  vd::DataItemName lambda2;
  lambda2.source = "engine/step_0000.vmb";
  lambda2.type = "lambda2-field";
  lambda2.params.set_double("threshold", 0.0);
  vd::DataItemName raw;
  raw.source = "engine/step_0000.vmb";
  raw.type = "block";
  EXPECT_NE(names.intern(lambda2), names.intern(raw));
}

TEST(NameResolver, CachesForwardAndBackward) {
  vd::NameService names;
  int calls = 0;
  vd::NameResolver resolver([&](const vd::DataItemName& name) {
    ++calls;
    return names.intern(name);
  });
  const auto id = resolver.resolve(item("engine", 1, 2));
  (void)resolver.resolve(item("engine", 1, 2));
  EXPECT_EQ(calls, 1);
  const auto back = resolver.reverse(id);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->params.get_int("block", -1), 2);
}

// ---------------------------------------------------------------------------
// Replacement policies
// ---------------------------------------------------------------------------

TEST(CachePolicies, LruEvictsLeastRecent) {
  vd::LruPolicy lru;
  for (vd::ItemId id : {1, 2, 3}) {
    lru.on_insert(id);
  }
  lru.on_access(1);  // order now 2, 3, 1
  auto victim = lru.victim([](vd::ItemId) { return true; });
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 2u);
  lru.on_erase(2);
  victim = lru.victim([](vd::ItemId) { return true; });
  EXPECT_EQ(*victim, 3u);
}

TEST(CachePolicies, LruRespectsPinning) {
  vd::LruPolicy lru;
  for (vd::ItemId id : {1, 2, 3}) {
    lru.on_insert(id);
  }
  auto victim = lru.victim([](vd::ItemId id) { return id != 1; });
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 2u);
  victim = lru.victim([](vd::ItemId) { return false; });
  EXPECT_FALSE(victim.has_value());
}

TEST(CachePolicies, LfuEvictsLeastFrequent) {
  vd::LfuPolicy lfu;
  for (vd::ItemId id : {1, 2, 3}) {
    lfu.on_insert(id);
  }
  lfu.on_access(1);
  lfu.on_access(1);
  lfu.on_access(3);
  auto victim = lfu.victim([](vd::ItemId) { return true; });
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 2u);
}

TEST(CachePolicies, LfuBreaksTiesByRecency) {
  vd::LfuPolicy lfu;
  lfu.on_insert(1);
  lfu.on_insert(2);
  // Equal counts; 1 was used less recently.
  auto victim = lfu.victim([](vd::ItemId) { return true; });
  EXPECT_EQ(*victim, 1u);
}

TEST(CachePolicies, FbrNewSectionDoesNotInflateCounts) {
  vd::FbrPolicy fbr(vd::FbrPolicy::Params{0.5, 0.5, 64});
  for (vd::ItemId id : {1, 2, 3, 4}) {
    fbr.on_insert(id);
  }
  // Item 4 is MRU (new section). Accessing it repeatedly must NOT bump its
  // count — that's the locality factoring of FBR.
  const auto before = fbr.count_of(4);
  fbr.on_access(4);
  fbr.on_access(4);
  EXPECT_EQ(fbr.count_of(4), before);
  // Item 1 is at the cold end (old section): re-referencing it does count.
  const auto before1 = fbr.count_of(1);
  fbr.on_access(1);
  EXPECT_EQ(fbr.count_of(1), before1 + 1);
}

TEST(CachePolicies, FbrEvictsColdInfrequentFirst) {
  vd::FbrPolicy fbr(vd::FbrPolicy::Params{0.25, 0.75, 64});
  for (vd::ItemId id : {1, 2, 3, 4}) {
    fbr.on_insert(id);
  }
  // Touch 1 from the old section several times -> high count.
  fbr.on_access(1);
  fbr.on_access(2);
  fbr.on_access(1);
  // Stack (MRU->LRU): 1, 2, 4, 3 roughly; victim should be a cold,
  // low-count entry — not item 1.
  const auto victim = fbr.victim([](vd::ItemId) { return true; });
  ASSERT_TRUE(victim.has_value());
  EXPECT_NE(*victim, 1u);
}

TEST(CachePolicies, FbrAgingHalvesCounts) {
  vd::FbrPolicy fbr(vd::FbrPolicy::Params{0.0, 1.0, 4});
  fbr.on_insert(1);
  fbr.on_insert(2);
  for (int n = 0; n < 10; ++n) {
    fbr.on_access(1);
  }
  // max_count = 4 forces halving; counts stay bounded.
  EXPECT_LE(fbr.count_of(1), 4u);
  EXPECT_GE(fbr.count_of(1), 1u);
}

TEST(CachePolicies, FactoryKnowsAllPolicies) {
  EXPECT_EQ(vd::make_policy("lru")->name(), "LRU");
  EXPECT_EQ(vd::make_policy("lfu")->name(), "LFU");
  EXPECT_EQ(vd::make_policy("fbr")->name(), "FBR");
  EXPECT_THROW(vd::make_policy("marx"), std::invalid_argument);
}

/// Property sweep: on a loopy CFD-like trace, FBR must not be worse than
/// LFU and both frequency policies should beat LRU (the paper's Sec. 4.2
/// claim). The trace alternates a hot working set with sequential sweeps —
/// the pattern repeated parameter studies produce.
class PolicyTraceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PolicyTraceTest, HitRateOnCfdLikeTraceIsSane) {
  auto policy = vd::make_policy(GetParam());
  vd::BlockCache cache(12 * 128, std::move(policy));  // room for 12 items
  std::uint64_t hits = 0;
  std::uint64_t requests = 0;
  auto touch = [&](vd::ItemId id) {
    ++requests;
    if (cache.get(id)) {
      ++hits;
    } else {
      cache.put(id, blob_of_size(128));
    }
  };
  for (int round = 0; round < 30; ++round) {
    for (int rep = 0; rep < 2; ++rep) {
      for (vd::ItemId hot : {0, 1, 2, 3}) {
        touch(hot);  // hot working set: revisited every round
      }
    }
    // Cold sequential sweep as large as the cache: never revisited.
    const auto sweep_base = static_cast<vd::ItemId>(100 + round * 12);
    for (vd::ItemId sweep = sweep_base; sweep < sweep_base + 12; ++sweep) {
      touch(sweep);
    }
  }
  const double hit_rate = static_cast<double>(hits) / static_cast<double>(requests);
  if (GetParam() == "lru") {
    // LRU lets the oversized sweep flush the hot set every round.
    EXPECT_LT(hit_rate, 0.30);
  } else {
    // Frequency-based policies keep the hot set resident (paper Sec. 4.2).
    EXPECT_GT(hit_rate, 0.32);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, PolicyTraceTest, ::testing::Values("lru", "lfu", "fbr"),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// BlockCache
// ---------------------------------------------------------------------------

TEST(BlockCache, HitAndMiss) {
  vd::BlockCache cache(1024, std::make_unique<vd::LruPolicy>());
  EXPECT_EQ(cache.get(1), nullptr);
  cache.put(1, blob_of_size(100));
  EXPECT_NE(cache.get(1), nullptr);
  EXPECT_EQ(cache.size_bytes(), 100u);
  EXPECT_EQ(cache.item_count(), 1u);
}

TEST(BlockCache, EvictsToRespectCapacity) {
  vd::BlockCache cache(250, std::make_unique<vd::LruPolicy>());
  cache.put(1, blob_of_size(100));
  cache.put(2, blob_of_size(100));
  const auto evicted = cache.put(3, blob_of_size(100));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].id, 1u);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_LE(cache.size_bytes(), 250u);
}

TEST(BlockCache, PinnedItemsSurviveEviction) {
  vd::BlockCache cache(250, std::make_unique<vd::LruPolicy>());
  cache.put(1, blob_of_size(100));
  cache.pin(1);
  cache.put(2, blob_of_size(100));
  const auto evicted = cache.put(3, blob_of_size(100));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].id, 2u);
  EXPECT_TRUE(cache.contains(1));
  cache.unpin(1);
}

TEST(BlockCache, OversizedItemRejected) {
  vd::BlockCache cache(100, std::make_unique<vd::LruPolicy>());
  bool inserted = true;
  cache.put(1, blob_of_size(500), &inserted);
  EXPECT_FALSE(inserted);
  EXPECT_FALSE(cache.contains(1));
}

TEST(BlockCache, AllPinnedRefusesInsert) {
  vd::BlockCache cache(200, std::make_unique<vd::LruPolicy>());
  cache.put(1, blob_of_size(100));
  cache.put(2, blob_of_size(100));
  cache.pin(1);
  cache.pin(2);
  bool inserted = true;
  cache.put(3, blob_of_size(100), &inserted);
  EXPECT_FALSE(inserted);
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(BlockCache, PeekDoesNotTouchPolicy) {
  vd::BlockCache cache(250, std::make_unique<vd::LruPolicy>());
  cache.put(1, blob_of_size(100));
  cache.put(2, blob_of_size(100));
  (void)cache.peek(1);  // must NOT refresh 1
  const auto evicted = cache.put(3, blob_of_size(100));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].id, 1u);
}

// ---------------------------------------------------------------------------
// TwoTierCache
// ---------------------------------------------------------------------------

namespace {
std::string l2_dir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() / ("vira_l2_" + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}
}  // namespace

TEST(TwoTierCache, DemotionAndPromotion) {
  auto stats = std::make_shared<vd::DmsStatistics>();
  vd::TwoTierCache::Config config;
  config.l1_capacity_bytes = 250;
  config.policy = "lru";
  config.l2_directory = l2_dir("promo");
  config.l2_capacity_bytes = 10000;
  vd::TwoTierCache cache(config, stats);

  cache.put(1, blob_of_size(100));
  cache.put(2, blob_of_size(100));
  cache.put(3, blob_of_size(100));  // evicts 1 -> L2

  EXPECT_FALSE(cache.contains_l1(1));
  EXPECT_TRUE(cache.contains(1));  // still reachable via L2
  EXPECT_EQ(cache.l2_item_count(), 1u);

  // L2 hit: promoted back to L1 — which in turn demotes item 2.
  const auto blob = cache.get(1);
  ASSERT_NE(blob, nullptr);
  EXPECT_TRUE(cache.contains_l1(1));
  EXPECT_EQ(cache.l2_item_count(), 1u);
  EXPECT_FALSE(cache.contains_l1(2));

  const auto counters = stats->snapshot();
  EXPECT_EQ(counters.l2_hits, 1u);
  EXPECT_EQ(counters.evictions_l1, 2u);  // 1 demoted, then another for the promotion
}

TEST(TwoTierCache, DisabledSecondaryTierMisses) {
  auto stats = std::make_shared<vd::DmsStatistics>();
  vd::TwoTierCache::Config config;
  config.l1_capacity_bytes = 250;
  config.policy = "lru";
  vd::TwoTierCache cache(config, stats);
  cache.put(1, blob_of_size(100));
  cache.put(2, blob_of_size(100));
  cache.put(3, blob_of_size(100));
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_EQ(stats->snapshot().misses, 1u);
}

TEST(TwoTierCache, L2CapacityEnforced) {
  auto stats = std::make_shared<vd::DmsStatistics>();
  vd::TwoTierCache::Config config;
  config.l1_capacity_bytes = 150;
  config.policy = "lru";
  config.l2_directory = l2_dir("cap");
  config.l2_capacity_bytes = 250;
  vd::TwoTierCache cache(config, stats);
  for (vd::ItemId id = 0; id < 6; ++id) {
    cache.put(id, blob_of_size(100));
  }
  EXPECT_LE(cache.l2_size_bytes(), 250u);
  EXPECT_GT(stats->snapshot().evictions_l2, 0u);
}

TEST(TwoTierCache, PrefetchUsefulnessTracked) {
  auto stats = std::make_shared<vd::DmsStatistics>();
  vd::TwoTierCache::Config config;
  config.l1_capacity_bytes = 1000;
  config.policy = "fbr";
  vd::TwoTierCache cache(config, stats);
  cache.put(7, blob_of_size(100), /*from_prefetch=*/true);
  EXPECT_EQ(stats->snapshot().prefetch_useful, 0u);
  (void)cache.get(7);
  EXPECT_EQ(stats->snapshot().prefetch_useful, 1u);
  (void)cache.get(7);  // second hit does not double-count
  EXPECT_EQ(stats->snapshot().prefetch_useful, 1u);
}

TEST(TwoTierCache, EvictedUnrequestedPrefetchIsCountedWastedAndUntracked) {
  // Regression: pending-prefetch bookkeeping leaked — an item prefetched
  // into L1 and then evicted (no L2) before anyone requested it stayed in
  // the pending map forever, growing it without bound on a churning
  // workload. It must be erased on leaving the hierarchy and surfaced as
  // prefetch_wasted.
  auto stats = std::make_shared<vd::DmsStatistics>();
  vd::TwoTierCache::Config config;
  config.l1_capacity_bytes = 250;  // two items resident at most
  config.policy = "lru";
  vd::TwoTierCache cache(config, stats);

  for (vd::ItemId id = 0; id < 64; ++id) {
    cache.put(id, blob_of_size(100), /*from_prefetch=*/true);
  }
  // Only the still-resident speculative inserts may be pending.
  EXPECT_LE(cache.prefetch_pending_count(), cache.l1().item_count());
  const auto counters = stats->snapshot();
  // 64 prefetched, 2 resident: everything else left unrequested.
  EXPECT_EQ(counters.prefetch_wasted, 62u);
  EXPECT_EQ(counters.prefetch_useful, 0u);

  // A requested survivor is useful, not wasted, and leaves the pending map.
  ASSERT_NE(cache.get(63), nullptr);
  EXPECT_EQ(stats->snapshot().prefetch_useful, 1u);
  EXPECT_EQ(stats->snapshot().prefetch_wasted, 62u);
  EXPECT_LE(cache.prefetch_pending_count(), 1u);
}

TEST(TwoTierCache, PrefetchDemotedToL2StaysPendingUntilGone) {
  // With a secondary tier, demotion keeps the item reachable — the
  // speculation is not yet wasted. Only falling off L2 settles it.
  auto stats = std::make_shared<vd::DmsStatistics>();
  vd::TwoTierCache::Config config;
  config.l1_capacity_bytes = 250;
  config.policy = "lru";
  config.l2_directory = l2_dir("pfpend");
  config.l2_capacity_bytes = 250;
  vd::TwoTierCache cache(config, stats);

  cache.put(1, blob_of_size(100), /*from_prefetch=*/true);
  cache.put(2, blob_of_size(100), /*from_prefetch=*/true);
  cache.put(3, blob_of_size(100), /*from_prefetch=*/true);  // 1 -> L2
  EXPECT_EQ(stats->snapshot().prefetch_wasted, 0u);
  EXPECT_EQ(cache.prefetch_pending_count(), 3u);

  // Push enough through L1 that L2 overflows and item 1 is truly gone.
  for (vd::ItemId id = 10; id < 16; ++id) {
    cache.put(id, blob_of_size(100));
  }
  EXPECT_GT(stats->snapshot().prefetch_wasted, 0u);
  EXPECT_LE(cache.prefetch_pending_count(),
            cache.l1().item_count() + cache.l2_item_count());
}

TEST(TwoTierCache, ClearDropsBothTiers) {
  auto stats = std::make_shared<vd::DmsStatistics>();
  vd::TwoTierCache::Config config;
  config.l1_capacity_bytes = 150;
  config.policy = "lru";
  config.l2_directory = l2_dir("clear");
  config.l2_capacity_bytes = 1000;
  vd::TwoTierCache cache(config, stats);
  for (vd::ItemId id = 0; id < 4; ++id) {
    cache.put(id, blob_of_size(100));
  }
  cache.clear();
  EXPECT_EQ(cache.l1().item_count(), 0u);
  EXPECT_EQ(cache.l2_item_count(), 0u);
  EXPECT_EQ(cache.get(0), nullptr);
}

TEST(TwoTierCache, PromotionAtCapacityRecordsRespill) {
  // Regression: at a full L1, promoting an L2 hit re-inserts the blob and
  // immediately demotes another resident straight back to disk. The churn
  // must be visible (l2_respills) and must not corrupt either tier.
  auto stats = std::make_shared<vd::DmsStatistics>();
  vd::TwoTierCache::Config config;
  config.l1_capacity_bytes = 250;
  config.policy = "lru";
  config.l2_directory = l2_dir("respill");
  config.l2_capacity_bytes = 10000;
  vd::TwoTierCache cache(config, stats);

  cache.put(1, blob_of_size(100));
  cache.put(2, blob_of_size(100));
  cache.put(3, blob_of_size(100));  // L1 full {2,3}; 1 spilled to L2

  // Cycle through one item more than L1 holds: every access is an L2 hit
  // whose promotion respills the current LRU victim.
  for (int round = 0; round < 2; ++round) {
    ASSERT_NE(cache.get(1), nullptr);
    ASSERT_NE(cache.get(2), nullptr);
    ASSERT_NE(cache.get(3), nullptr);
  }

  const auto counters = stats->snapshot();
  EXPECT_EQ(counters.l2_hits, 6u);
  EXPECT_EQ(counters.l2_respills, 6u);  // every promotion churned one out
  EXPECT_EQ(cache.l2_item_count(), 1u);
  // All three items are still reachable somewhere in the hierarchy.
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

TEST(TwoTierCache, OversizeDemotionIsDroppedAndCounted) {
  // A blob larger than the whole L2 budget cannot be spilled; it must be
  // dropped from the hierarchy, counted, and never indexed.
  auto stats = std::make_shared<vd::DmsStatistics>();
  vd::TwoTierCache::Config config;
  config.l1_capacity_bytes = 150;
  config.policy = "lru";
  config.l2_directory = l2_dir("oversize");
  config.l2_capacity_bytes = 50;  // smaller than any test blob
  vd::TwoTierCache cache(config, stats);

  cache.put(1, blob_of_size(100));
  cache.put(2, blob_of_size(100));  // evicts 1; demotion exceeds the L2 budget

  EXPECT_EQ(stats->snapshot().demotions_dropped_oversize, 1u);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.l2_item_count(), 0u);
  EXPECT_EQ(cache.l2_size_bytes(), 0u);
  EXPECT_EQ(cache.get(1), nullptr);  // a later request is a clean miss
}

TEST(TwoTierCache, FailedSpillWriteIsNotIndexed) {
  // If the spill file cannot be written the demotion must be dropped and
  // counted — indexing a missing/truncated file would later surface as a
  // corrupt block instead of a cache miss.
  auto stats = std::make_shared<vd::DmsStatistics>();
  vd::TwoTierCache::Config config;
  config.l1_capacity_bytes = 150;
  config.policy = "lru";
  config.l2_directory = l2_dir("badio");
  config.l2_capacity_bytes = 10000;
  vd::TwoTierCache cache(config, stats);
  // Pull the directory out from under the cache so the spill write fails.
  std::filesystem::remove_all(config.l2_directory);

  cache.put(1, blob_of_size(100));
  cache.put(2, blob_of_size(100));  // evicts 1; the spill write fails

  EXPECT_EQ(stats->snapshot().demotions_dropped_io, 1u);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.l2_item_count(), 0u);
  EXPECT_EQ(cache.get(1), nullptr);
}

// ---------------------------------------------------------------------------
// Prefetchers
// ---------------------------------------------------------------------------

namespace {
vd::SuccessorFn linear_successor(vd::ItemId limit) {
  return [limit](vd::ItemId id) -> std::optional<vd::ItemId> {
    if (id + 1 >= limit) {
      return std::nullopt;
    }
    return id + 1;
  };
}
}  // namespace

TEST(Prefetchers, OblSuggestsSuccessor) {
  vd::OblPrefetcher obl(linear_successor(100));
  obl.on_request(5, false);
  const auto suggestions = obl.suggest(4);
  ASSERT_EQ(suggestions.size(), 1u);
  EXPECT_EQ(suggestions[0], 6u);
  // No new request -> no repeated suggestion spam.
  EXPECT_TRUE(obl.suggest(4).empty());
}

TEST(Prefetchers, OblLookaheadDepth) {
  vd::OblPrefetcher obl(linear_successor(100), /*lookahead=*/3);
  obl.on_request(5, true);
  const auto suggestions = obl.suggest(8);
  EXPECT_EQ(suggestions, (std::vector<vd::ItemId>{6, 7, 8}));
}

TEST(Prefetchers, OblStopsAtSequenceEnd) {
  vd::OblPrefetcher obl(linear_successor(7));
  obl.on_request(6, false);
  EXPECT_TRUE(obl.suggest(4).empty());
}

TEST(Prefetchers, PrefetchOnMissOnlyArmsOnMisses) {
  vd::PrefetchOnMissPrefetcher pom(linear_successor(100));
  pom.on_request(3, /*was_hit=*/true);
  EXPECT_TRUE(pom.suggest(4).empty());
  pom.on_request(4, /*was_hit=*/false);
  const auto suggestions = pom.suggest(4);
  ASSERT_EQ(suggestions.size(), 1u);
  EXPECT_EQ(suggestions[0], 5u);
}

TEST(Prefetchers, MarkovLearnsTransitions) {
  vd::MarkovPrefetcher markov(nullptr);
  // Teach 1 -> 5 -> 9 twice, 1 -> 3 once.
  for (int round = 0; round < 2; ++round) {
    markov.on_request(1, false);
    markov.on_request(5, false);
    markov.on_request(9, false);
  }
  markov.on_request(1, false);
  markov.on_request(3, false);

  EXPECT_EQ(markov.transition_count(1, 5), 2u);
  EXPECT_EQ(markov.transition_count(1, 3), 1u);
  EXPECT_EQ(markov.most_likely_successor(1).value(), 5u);
  EXPECT_EQ(markov.most_likely_successor(5).value(), 9u);
}

TEST(Prefetchers, MarkovFallsBackToOblWhileLearning) {
  vd::MarkovPrefetcher markov(linear_successor(100));
  markov.on_request(10, false);  // nothing learned about 10 yet
  const auto suggestions = markov.suggest(2);
  ASSERT_EQ(suggestions.size(), 1u);
  EXPECT_EQ(suggestions[0], 11u);  // OBL fallback
}

TEST(Prefetchers, MarkovPredictsAfterLearning) {
  vd::MarkovPrefetcher markov(linear_successor(100));
  // Non-sequential pattern 2 -> 40 that OBL can never guess.
  for (int round = 0; round < 3; ++round) {
    markov.on_request(2, false);
    markov.on_request(40, false);
  }
  markov.on_request(2, false);
  const auto suggestions = markov.suggest(2);
  ASSERT_FALSE(suggestions.empty());
  EXPECT_EQ(suggestions[0], 40u);
}

TEST(Prefetchers, MarkovRanksMultipleSuccessors) {
  vd::MarkovPrefetcher markov(nullptr);
  markov.on_request(1, false);
  markov.on_request(2, false);
  markov.on_request(1, false);
  markov.on_request(2, false);
  markov.on_request(1, false);
  markov.on_request(7, false);
  markov.on_request(1, false);
  const auto suggestions = markov.suggest(5);
  ASSERT_EQ(suggestions.size(), 2u);
  EXPECT_EQ(suggestions[0], 2u);  // seen twice
  EXPECT_EQ(suggestions[1], 7u);  // seen once
}

TEST(Prefetchers, FactoryCoversAllKinds) {
  auto successor = linear_successor(10);
  EXPECT_EQ(vd::make_prefetcher("none", successor)->name(), "none");
  EXPECT_EQ(vd::make_prefetcher("obl", successor)->name(), "obl");
  EXPECT_EQ(vd::make_prefetcher("pom", successor)->name(), "prefetch-on-miss");
  EXPECT_EQ(vd::make_prefetcher("markov", successor)->name(), "markov");
  EXPECT_THROW(vd::make_prefetcher("psychic", successor), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Loading strategies / fitness
// ---------------------------------------------------------------------------

TEST(Loading, DirectDiskAlwaysApplicable) {
  vd::DirectDiskStrategy direct;
  vd::LoadEnvironment env;
  vd::LoadRequestInfo request;
  request.item_bytes = 1 << 20;
  EXPECT_GT(direct.fitness(env, request), 0.0);
}

TEST(Loading, PeerTransferRequiresHolder) {
  vd::PeerTransferStrategy peer;
  vd::LoadEnvironment env;
  vd::LoadRequestInfo request;
  request.item_bytes = 1 << 20;
  request.peer_has_item = false;
  EXPECT_EQ(peer.fitness(env, request), 0.0);
  request.peer_has_item = true;
  EXPECT_GT(peer.fitness(env, request), 0.0);
}

TEST(Loading, PeerBeatsDiskWhenNetworkIsFast) {
  vd::FitnessSelector selector;
  vd::LoadEnvironment env;
  env.peer_bandwidth = 1e9;
  env.disk_bandwidth = 20e6;
  vd::LoadRequestInfo request;
  request.item_bytes = 4 << 20;
  request.peer_has_item = true;
  EXPECT_EQ(selector.choose(env, request), vd::StrategyKind::kPeerTransfer);
}

TEST(Loading, DiskBeatsPeerWhenNetworkIsSlow) {
  vd::FitnessSelector selector;
  vd::LoadEnvironment env;
  env.peer_bandwidth = 1e6;  // ISDN-era cluster interconnect
  env.disk_bandwidth = 100e6;
  vd::LoadRequestInfo request;
  request.item_bytes = 4 << 20;
  request.peer_has_item = true;
  EXPECT_EQ(selector.choose(env, request), vd::StrategyKind::kDirectDisk);
}

TEST(Loading, CollectiveNeedsConcurrencyAndParallelFs) {
  vd::FitnessSelector selector;
  vd::LoadEnvironment env;
  env.parallel_fs = true;
  vd::LoadRequestInfo request;
  request.item_bytes = 1 << 20;
  request.file_bytes = 4 << 20;
  request.concurrent_same_file = 0;
  EXPECT_NE(selector.choose(env, request), vd::StrategyKind::kCollectiveIo);
  // Many concurrent readers of the same file on a parallel FS.
  request.concurrent_same_file = 8;
  EXPECT_EQ(selector.choose(env, request), vd::StrategyKind::kCollectiveIo);
}

TEST(Loading, CollectiveRarelyWinsWithoutParallelFs) {
  // The paper's observation: "coordinating proxies that access a file
  // together is more expensive than the benefit of collective file access"
  // without a parallel file system.
  vd::FitnessSelector selector;
  vd::LoadEnvironment env;
  env.parallel_fs = false;
  vd::LoadRequestInfo request;
  request.item_bytes = 1 << 20;
  request.file_bytes = 16 << 20;
  request.concurrent_same_file = 8;
  EXPECT_NE(selector.choose(env, request), vd::StrategyKind::kCollectiveIo);
}

TEST(Loading, ScoresAreSortedBestFirst) {
  vd::FitnessSelector selector;
  vd::LoadEnvironment env;
  vd::LoadRequestInfo request;
  request.item_bytes = 1 << 20;
  request.peer_has_item = true;
  const auto scored = selector.score(env, request);
  ASSERT_EQ(scored.size(), 3u);
  EXPECT_GE(scored[0].fitness, scored[1].fitness);
  EXPECT_GE(scored[1].fitness, scored[2].fitness);
}

// ---------------------------------------------------------------------------
// DataServer
// ---------------------------------------------------------------------------

TEST(DataServer, RegistryTracksHolders) {
  vd::DataServer server;
  EXPECT_FALSE(server.holder_of(1, 0).has_value());
  server.report_insert(2, 1);
  server.report_insert(3, 1);
  const auto holder = server.holder_of(1, 2);
  ASSERT_TRUE(holder.has_value());
  EXPECT_EQ(*holder, 3);
  server.report_evict(3, 1);
  EXPECT_FALSE(server.holder_of(1, 2).has_value());
  EXPECT_TRUE(server.holder_of(1, 9).has_value());
}

TEST(DataServer, FileReadConcurrencyGauge) {
  vd::DataServer server;
  EXPECT_EQ(server.concurrent_readers("f"), 0);
  server.begin_file_read("f");
  server.begin_file_read("f");
  EXPECT_EQ(server.concurrent_readers("f"), 2);
  server.end_file_read("f");
  EXPECT_EQ(server.concurrent_readers("f"), 1);
  server.end_file_read("f");
  EXPECT_EQ(server.concurrent_readers("f"), 0);
}

TEST(DataServer, ChoosesPeerWhenAvailable) {
  vd::LoadEnvironment env;
  env.peer_bandwidth = 1e9;
  env.disk_bandwidth = 10e6;
  vd::DataServer server(env);
  server.report_insert(5, 42);
  const auto decision = server.choose_strategy(0, 42, 1 << 20, 4 << 20, "f");
  EXPECT_EQ(decision.kind, vd::StrategyKind::kPeerTransfer);
  EXPECT_EQ(decision.peer, 5);
}

TEST(DataServer, FallsBackWhenHolderIsSelf) {
  vd::LoadEnvironment env;
  env.peer_bandwidth = 1e9;
  env.disk_bandwidth = 10e6;
  vd::DataServer server(env);
  server.report_insert(0, 42);  // only holder is the requester itself
  const auto decision = server.choose_strategy(0, 42, 1 << 20, 4 << 20, "f");
  EXPECT_EQ(decision.kind, vd::StrategyKind::kDirectDisk);
}

TEST(DataServer, BandwidthObservationMovesEnvironment) {
  vd::DataServer server;
  const double before = server.environment().disk_bandwidth;
  for (int n = 0; n < 20; ++n) {
    server.observe_disk_bandwidth(before * 3.0);
  }
  EXPECT_GT(server.environment().disk_bandwidth, before * 2.0);
  server.observe_disk_bandwidth(-5.0);  // ignored
}

// ---------------------------------------------------------------------------
// DataProxy (integration of the DMS pieces)
// ---------------------------------------------------------------------------

namespace {

struct ProxyFixture {
  std::shared_ptr<vd::DataServer> server = std::make_shared<vd::DataServer>();
  std::shared_ptr<FakeSource> source = std::make_shared<FakeSource>();

  std::unique_ptr<vd::DataProxy> make_proxy(int id, std::uint64_t l1 = 1 << 20,
                                            bool async_prefetch = false) {
    vd::DataProxyConfig config;
    config.proxy_id = id;
    config.cache.l1_capacity_bytes = l1;
    config.cache.policy = "fbr";
    config.async_prefetch = async_prefetch;
    return std::make_unique<vd::DataProxy>(config, server, source);
  }
};

}  // namespace

TEST(DataProxy, CachesRepeatedRequests) {
  ProxyFixture fx;
  auto proxy = fx.make_proxy(0);
  const auto name = item("engine", 0, 0);
  const auto first = proxy->request(name);
  const auto second = proxy->request(name);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first, second);      // same shared blob
  EXPECT_EQ(fx.source->loads(), 1);  // only one disk read
  const auto counters = proxy->stats().snapshot();
  EXPECT_EQ(counters.requests, 2u);
  EXPECT_EQ(counters.l1_hits, 1u);
  EXPECT_EQ(counters.misses, 1u);
}

TEST(DataProxy, OblPrefetchWarmsNextBlock) {
  ProxyFixture fx;
  auto proxy = fx.make_proxy(0, 1 << 20, /*async_prefetch=*/false);
  // Successor relation: next block of the same step, 4 blocks per step.
  auto& resolver = proxy->resolver();
  proxy->configure_prefetcher("obl", [&resolver](vd::ItemId id) -> std::optional<vd::ItemId> {
    const auto name = resolver.reverse(id);
    if (!name) {
      return std::nullopt;
    }
    const auto block = name->params.get_int("block", 0);
    if (block + 1 >= 4) {
      return std::nullopt;
    }
    auto next = *name;
    next.params.set_int("block", block + 1);
    return resolver.resolve(next);
  });

  (void)proxy->request(item("engine", 0, 0));
  // Synchronous prefetch: block 1 must now be resident.
  const int loads_after_first = fx.source->loads();
  EXPECT_GE(loads_after_first, 2);  // demand + prefetch
  (void)proxy->request(item("engine", 0, 1));
  EXPECT_EQ(fx.source->loads(), loads_after_first + 1);  // its own prefetch of block 2 only
  const auto counters = proxy->stats().snapshot();
  EXPECT_GE(counters.prefetch_useful, 1u);
}

TEST(DataProxy, AsyncPrefetchEventuallyLands) {
  ProxyFixture fx;
  auto proxy = fx.make_proxy(0, 1 << 20, /*async_prefetch=*/true);
  auto& resolver = proxy->resolver();
  proxy->configure_prefetcher("obl", [&resolver](vd::ItemId id) -> std::optional<vd::ItemId> {
    const auto name = resolver.reverse(id);
    if (!name) {
      return std::nullopt;
    }
    auto next = *name;
    next.params.set_int("block", name->params.get_int("block", 0) + 1);
    return resolver.resolve(next);
  });
  (void)proxy->request(item("engine", 0, 0));
  proxy->quiesce();
  EXPECT_GE(fx.source->loads(), 2);
  EXPECT_GE(proxy->stats().snapshot().prefetch_issued, 1u);
}

TEST(DataProxy, PeerTransferServesFromOtherProxy) {
  ProxyFixture fx;
  vd::LoadEnvironment env;
  env.peer_bandwidth = 1e12;  // make peer transfer irresistible
  env.disk_bandwidth = 1e6;
  fx.server->set_environment(env);

  auto proxy_a = fx.make_proxy(0);
  auto proxy_b = fx.make_proxy(1);
  // Wire peer fetch: b can peek into a and vice versa.
  vd::DataProxy* proxies[2] = {proxy_a.get(), proxy_b.get()};
  auto peer_fetch = [&proxies](int peer, vd::ItemId id) -> vd::Blob {
    return proxies[peer]->cache().peek(id);
  };
  proxy_a->set_peer_fetch(peer_fetch);
  proxy_b->set_peer_fetch(peer_fetch);

  const auto name = item("engine", 3, 2);
  (void)proxy_a->request(name);  // disk load, registers holder
  EXPECT_EQ(fx.source->loads(), 1);
  (void)proxy_b->request(name);  // must come from proxy A, not disk
  EXPECT_EQ(fx.source->loads(), 1);
  const auto decisions = fx.server->decision_counts();
  EXPECT_GE(decisions.at("peer-transfer"), 1u);
}

TEST(DataProxy, PeerRaceFallsBackToDisk) {
  ProxyFixture fx;
  vd::LoadEnvironment env;
  env.peer_bandwidth = 1e12;
  env.disk_bandwidth = 1e6;
  fx.server->set_environment(env);

  auto proxy_a = fx.make_proxy(0);
  auto proxy_b = fx.make_proxy(1);
  // Peer fetch that always fails (cache emptied between decision and fetch).
  proxy_b->set_peer_fetch([](int, vd::ItemId) -> vd::Blob { return nullptr; });

  const auto name = item("engine", 1, 1);
  (void)proxy_a->request(name);
  const auto blob = proxy_b->request(name);  // decision says peer; fetch fails
  ASSERT_NE(blob, nullptr);
  EXPECT_EQ(fx.source->loads(), 2);  // fell back to disk
}

TEST(DataProxy, LoadFailurePropagatesAndRecovers) {
  ProxyFixture fx;
  auto proxy = fx.make_proxy(0);
  fx.source->fail_next(1);
  EXPECT_THROW((void)proxy->request(item("engine", 0, 0)), std::runtime_error);
  // Next attempt succeeds and caches.
  const auto blob = proxy->request(item("engine", 0, 0));
  ASSERT_NE(blob, nullptr);
  EXPECT_NE(proxy->cache().peek(proxy->resolver().resolve(item("engine", 0, 0))), nullptr);
}

TEST(DataProxy, ConcurrentRequestsLoadOnce) {
  ProxyFixture fx;
  fx.source->set_load_delay_us(2000);
  auto proxy = fx.make_proxy(0);
  const auto name = item("engine", 2, 2);
  std::vector<std::thread> threads;
  std::atomic<int> successes{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      if (proxy->request(name) != nullptr) {
        ++successes;
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(successes.load(), 8);
  EXPECT_EQ(fx.source->loads(), 1);  // in-flight deduplication
}

TEST(DataProxy, CodePrefetchWarmsCache) {
  ProxyFixture fx;
  auto proxy = fx.make_proxy(0, 1 << 20, /*async_prefetch=*/false);
  proxy->code_prefetch(item("engine", 5, 0));
  // Demand request is now a hit: no extra load.
  const int loads = fx.source->loads();
  (void)proxy->request(item("engine", 5, 0));
  EXPECT_EQ(fx.source->loads(), loads);
  EXPECT_EQ(proxy->stats().snapshot().prefetch_useful, 1u);
}

TEST(DataProxy, ClearCacheForcesColdStart) {
  ProxyFixture fx;
  auto proxy = fx.make_proxy(0);
  (void)proxy->request(item("engine", 0, 0));
  proxy->clear_cache();
  (void)proxy->request(item("engine", 0, 0));
  EXPECT_EQ(fx.source->loads(), 2);
}

// ---------------------------------------------------------------------------
// Markov prefetching through the real proxy (pathline-style access)
// ---------------------------------------------------------------------------

TEST(DataProxy, MarkovLearnsPathlikeRequestsAcrossRuns) {
  ProxyFixture fx;
  auto proxy = fx.make_proxy(0, 1 << 20, /*async_prefetch=*/false);
  // Markov with no OBL fallback: only learned transitions fire.
  proxy->configure_prefetcher("markov", nullptr);

  // A pathline-like non-sequential block tour, repeated twice.
  const int tour[] = {3, 7, 1, 7, 2, 9};
  for (const int block : tour) {
    (void)proxy->request(item("engine", 0, block));
  }
  const auto after_first = proxy->stats().snapshot();

  proxy->clear_cache();  // cold caches, but the transition graph persists
  for (const int block : tour) {
    (void)proxy->request(item("engine", 0, block));
  }
  const auto after_second = proxy->stats().snapshot();

  // Second tour: the prefetcher predicted (almost) every next block.
  const auto useful_second = after_second.prefetch_useful - after_first.prefetch_useful;
  EXPECT_GE(useful_second, 4u);
}

TEST(DataProxy, PrefetcherSwapsAtRuntime) {
  ProxyFixture fx;
  auto proxy = fx.make_proxy(0, 1 << 20, /*async_prefetch=*/false);
  auto successor = [](vd::ItemId id) -> std::optional<vd::ItemId> { return id + 1; };
  proxy->configure_prefetcher("obl", successor);
  (void)proxy->request(item("engine", 0, 0));
  const auto with_obl = proxy->stats().snapshot().prefetch_issued;
  EXPECT_GE(with_obl, 1u);

  proxy->configure_prefetcher("none", nullptr);
  (void)proxy->request(item("engine", 0, 5));
  EXPECT_EQ(proxy->stats().snapshot().prefetch_issued, with_obl);  // no new prefetches
}

// ---------------------------------------------------------------------------
// FBR parameter validation and two-tier failure handling
// ---------------------------------------------------------------------------

TEST(CachePolicies, FbrRejectsBadParameters) {
  EXPECT_THROW(vd::FbrPolicy(vd::FbrPolicy::Params{0.7, 0.7, 64}), std::invalid_argument);
  EXPECT_THROW(vd::FbrPolicy(vd::FbrPolicy::Params{-0.1, 0.5, 64}), std::invalid_argument);
  EXPECT_THROW(vd::FbrPolicy(vd::FbrPolicy::Params{0.25, 0.5, 1}), std::invalid_argument);
}

TEST(TwoTierCache, UnreadableSpillFileDegradesToMiss) {
  auto stats = std::make_shared<vd::DmsStatistics>();
  vd::TwoTierCache::Config config;
  config.l1_capacity_bytes = 250;
  config.policy = "lru";
  config.l2_directory = l2_dir("corrupt");
  config.l2_capacity_bytes = 10000;
  vd::TwoTierCache cache(config, stats);
  cache.put(1, blob_of_size(100));
  cache.put(2, blob_of_size(100));
  cache.put(3, blob_of_size(100));  // demotes 1 to L2
  ASSERT_EQ(cache.l2_item_count(), 1u);

  // Sabotage the spill file.
  std::filesystem::remove(config.l2_directory + "/item_1.blob");

  // Promotion fails gracefully: treated as a miss, no crash.
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_GE(stats->snapshot().misses, 1u);
}

TEST(DmsStatistics, TraceRecordingCapturesRequestOrder) {
  vd::DmsStatistics stats;
  stats.enable_trace(true);
  stats.record_request(5);
  stats.record_request(2);
  stats.record_request(5);
  EXPECT_EQ(stats.trace(), (std::vector<vd::ItemId>{5, 2, 5}));
  stats.reset();
  EXPECT_TRUE(stats.trace().empty());
}

TEST(DmsStatistics, BandwidthObservation) {
  vd::DmsStatistics stats;
  stats.record_load(1000000, 0.5);
  stats.record_load(1000000, 0.5);
  EXPECT_NEAR(stats.observed_load_bandwidth(), 2e6, 1.0);
}

// ---------------------------------------------------------------------------
// Collective I/O execution path
// ---------------------------------------------------------------------------

TEST(DataProxy, CollectiveLoadWarmsSiblingBlocks) {
  ProxyFixture fx;
  vd::LoadEnvironment env;
  env.parallel_fs = true;   // collective calls only help on a parallel FS
  env.disk_bandwidth = 1e4; // slow link: byte volume dominates the decision
  fx.server->set_environment(env);
  auto proxy = fx.make_proxy(0);

  // Simulate several other proxies currently reading the same step file.
  const auto name = item("engine", 4, 1);
  const auto file_key = fx.source->file_key(name);
  for (int reader = 0; reader < 6; ++reader) {
    fx.server->begin_file_read(file_key);
  }

  const auto blob = proxy->request(name);
  ASSERT_NE(blob, nullptr);
  EXPECT_GE(fx.source->file_loads(), 1);  // whole-file read happened

  // Siblings of the collective read are already resident: no new loads.
  const int loads_before = fx.source->loads();
  for (int b = 0; b < 4; ++b) {
    ASSERT_NE(proxy->request(item("engine", 4, b)), nullptr);
  }
  EXPECT_EQ(fx.source->loads(), loads_before);
  const auto decisions = fx.server->decision_counts();
  EXPECT_GE(decisions.at("collective-io"), 1u);
  for (int reader = 0; reader < 6; ++reader) {
    fx.server->end_file_read(file_key);
  }
}

TEST(DataProxy, CollectiveNotChosenOnPlainFilesystem) {
  ProxyFixture fx;  // default env: parallel_fs = false
  auto proxy = fx.make_proxy(0);
  const auto name = item("engine", 2, 0);
  const auto file_key = fx.source->file_key(name);
  for (int reader = 0; reader < 6; ++reader) {
    fx.server->begin_file_read(file_key);
  }
  ASSERT_NE(proxy->request(name), nullptr);
  EXPECT_EQ(fx.source->file_loads(), 0);  // "of limited use in Viracocha"
  for (int reader = 0; reader < 6; ++reader) {
    fx.server->end_file_read(file_key);
  }
}

// ---------------------------------------------------------------------------
// Replacement-policy property tests (DESIGN.md "Testing strategy")
//
// Each production policy is replayed against a deliberately naive reference
// model (flat vectors, O(n) scans) over a seeded random op stream; any
// divergence in victim choice or bookkeeping is a bug in one of the two.
// The stream derives from the printed master seed, so a failure reproduces
// with VIRA_TEST_SEED=<printed>.
// ---------------------------------------------------------------------------

namespace {

struct RefLru {
  std::vector<vd::ItemId> order;  // front = LRU, back = MRU

  void insert(vd::ItemId id) { access_or_append(id); }
  void access(vd::ItemId id) {
    auto it = std::find(order.begin(), order.end(), id);
    if (it != order.end()) {
      order.erase(it);
      order.push_back(id);
    }
  }
  void erase(vd::ItemId id) {
    auto it = std::find(order.begin(), order.end(), id);
    if (it != order.end()) {
      order.erase(it);
    }
  }
  std::optional<vd::ItemId> victim(const vd::EvictableFn& evictable) const {
    for (const auto id : order) {
      if (evictable(id)) {
        return id;
      }
    }
    return std::nullopt;
  }
  std::size_t tracked() const { return order.size(); }

 private:
  void access_or_append(vd::ItemId id) {
    auto it = std::find(order.begin(), order.end(), id);
    if (it != order.end()) {
      order.erase(it);
    }
    order.push_back(id);
  }
};

struct RefLfu {
  struct Entry {
    std::uint64_t count = 0;
    std::uint64_t last = 0;
  };
  std::map<vd::ItemId, Entry> entries;
  std::uint64_t clock = 0;

  void insert(vd::ItemId id) {
    auto& e = entries[id];
    e.count += 1;
    e.last = ++clock;
  }
  void access(vd::ItemId id) {
    auto it = entries.find(id);
    if (it != entries.end()) {
      it->second.count += 1;
      it->second.last = ++clock;
    }
  }
  void erase(vd::ItemId id) { entries.erase(id); }
  std::optional<vd::ItemId> victim(const vd::EvictableFn& evictable) const {
    std::optional<vd::ItemId> best;
    std::uint64_t best_count = 0;
    std::uint64_t best_last = 0;
    for (const auto& [id, e] : entries) {
      if (!evictable(id)) {
        continue;
      }
      if (!best || e.count < best_count || (e.count == best_count && e.last < best_last)) {
        best = id;
        best_count = e.count;
        best_last = e.last;
      }
    }
    return best;
  }
  std::size_t tracked() const { return entries.size(); }
};

/// Reference FBR with the paper's semantics spelled out over flat vectors:
/// new-section membership by index, counts bumped only outside it, Amax
/// halving, victims least-frequent-then-least-recent from the old section,
/// falling back to the coldest evictable entry.
struct RefFbr {
  struct Entry {
    std::uint64_t count = 1;
    std::uint64_t last = 0;
  };
  double new_fraction = 0.25;
  double old_fraction = 0.5;
  std::uint64_t max_count = 64;
  std::vector<vd::ItemId> stack;  // front (index 0) = MRU
  std::map<vd::ItemId, Entry> entries;
  std::uint64_t clock = 0;

  std::size_t index_of(vd::ItemId id) const {
    return static_cast<std::size_t>(
        std::find(stack.begin(), stack.end(), id) - stack.begin());
  }
  bool in_new_section(vd::ItemId id) const {
    const auto new_count = static_cast<std::size_t>(
        std::ceil(new_fraction * static_cast<double>(stack.size())));
    return index_of(id) < new_count;
  }
  std::size_t old_section_start() const {
    const auto old_count = static_cast<std::size_t>(
        std::ceil(old_fraction * static_cast<double>(stack.size())));
    return stack.size() - std::min(old_count, stack.size());
  }
  void maybe_age() {
    bool needs = false;
    for (const auto& [id, e] : entries) {
      needs = needs || e.count >= max_count;
    }
    if (needs) {
      for (auto& [id, e] : entries) {
        e.count = std::max<std::uint64_t>(1, e.count / 2);
      }
    }
  }
  void touch(vd::ItemId id) {
    stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(index_of(id)));
    stack.insert(stack.begin(), id);
    entries[id].last = ++clock;
  }
  void insert(vd::ItemId id) {
    if (entries.count(id) > 0) {
      access(id);
      return;
    }
    stack.insert(stack.begin(), id);
    entries[id] = Entry{1, ++clock};
  }
  void access(vd::ItemId id) {
    if (entries.count(id) == 0) {
      return;
    }
    if (!in_new_section(id)) {
      entries[id].count += 1;
      maybe_age();
    }
    touch(id);
  }
  void erase(vd::ItemId id) {
    if (entries.count(id) > 0) {
      stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(index_of(id)));
      entries.erase(id);
    }
  }
  std::optional<vd::ItemId> victim(const vd::EvictableFn& evictable) const {
    const std::size_t start = old_section_start();
    std::optional<vd::ItemId> best;
    std::uint64_t best_count = 0;
    std::uint64_t best_last = 0;
    for (std::size_t i = start; i < stack.size(); ++i) {
      const auto id = stack[i];
      if (!evictable(id)) {
        continue;
      }
      const auto& e = entries.at(id);
      if (!best || e.count < best_count || (e.count == best_count && e.last < best_last)) {
        best = id;
        best_count = e.count;
        best_last = e.last;
      }
    }
    if (best) {
      return best;
    }
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (evictable(*it)) {
        return *it;
      }
    }
    return std::nullopt;
  }
  std::size_t tracked() const { return entries.size(); }
};

/// Drives a production policy and a reference model through the same seeded
/// op stream, comparing victim choices under randomly pinned subsets.
template <typename Model>
void run_policy_property_test(vd::ReplacementPolicy& policy, Model& model,
                              std::uint64_t seed) {
  vu::Rng rng(seed);
  constexpr int kOps = 2500;
  constexpr std::uint64_t kUniverse = 12;
  std::set<vd::ItemId> resident;
  for (int op = 0; op < kOps; ++op) {
    const auto id = rng.next_below(kUniverse);
    switch (rng.next_below(10)) {
      case 0:
      case 1:
      case 2:
      case 3:
        policy.on_insert(id);
        model.insert(id);
        resident.insert(id);
        break;
      case 4:
      case 5:
      case 6:
        policy.on_access(id);
        model.access(id);
        break;
      case 7:
        policy.on_erase(id);
        model.erase(id);
        resident.erase(id);
        break;
      default: {
        // Victim comparison under a random pinned subset.
        std::set<vd::ItemId> pinned;
        for (const auto r : resident) {
          if (rng.next_below(4) == 0) {
            pinned.insert(r);
          }
        }
        const vd::EvictableFn evictable = [&](vd::ItemId candidate) {
          return pinned.count(candidate) == 0;
        };
        const auto got = policy.victim(evictable);
        const auto want = model.victim(evictable);
        ASSERT_EQ(got, want) << policy.name() << " diverged at op " << op
                             << " (seed " << seed << ")";
        if (got) {
          EXPECT_EQ(resident.count(*got), 1u);
          EXPECT_EQ(pinned.count(*got), 0u);
        }
        break;
      }
    }
    ASSERT_EQ(policy.tracked(), model.tracked())
        << policy.name() << " bookkeeping diverged at op " << op << " (seed " << seed << ")";
  }
}

}  // namespace

TEST(CachePolicyProperties, LruMatchesReferenceModel) {
  vd::LruPolicy policy;
  RefLru model;
  run_policy_property_test(policy, model, vira::test::test_seed(0xa11ce));
}

TEST(CachePolicyProperties, LfuMatchesReferenceModel) {
  vd::LfuPolicy policy;
  RefLfu model;
  run_policy_property_test(policy, model, vira::test::test_seed(0xbeef));
}

TEST(CachePolicyProperties, FbrMatchesReferenceModel) {
  vd::FbrPolicy policy;
  RefFbr model;
  run_policy_property_test(policy, model, vira::test::test_seed(0xfb12));
}

// ---------------------------------------------------------------------------
// Markov prefetcher: OBL fallback edge cases
// ---------------------------------------------------------------------------

TEST(Prefetchers, MarkovFallbackIsPerBlockNotGlobal) {
  // The fallback applies per block: a trained graph for some blocks must
  // not stop OBL from covering blocks the graph knows nothing about.
  const vd::SuccessorFn successor = [](vd::ItemId id) -> std::optional<vd::ItemId> {
    return id + 1;
  };
  vd::MarkovPrefetcher markov(successor);
  markov.on_request(5, false);
  markov.on_request(9, false);
  markov.on_request(5, false);
  markov.on_request(9, false);
  EXPECT_EQ(markov.transition_count(5, 9), 2u);

  // A block it has never left: still falls back to OBL...
  markov.on_request(42, false);
  auto suggestions = markov.suggest(1);
  ASSERT_EQ(suggestions.size(), 1u);
  EXPECT_EQ(suggestions.front(), 43u);

  // ...while the trained block keeps its learned (non-sequential) edge.
  markov.on_request(5, false);
  suggestions = markov.suggest(2);
  ASSERT_FALSE(suggestions.empty());
  EXPECT_EQ(suggestions.front(), 9u);
}

TEST(Prefetchers, MarkovWithoutFallbackStaysQuietWhenIgnorant) {
  vd::MarkovPrefetcher markov(nullptr);
  markov.on_request(7, false);
  EXPECT_TRUE(markov.suggest(4).empty());  // nothing learned, no fallback
  markov.on_request(3, false);
  markov.on_request(7, false);
  markov.on_request(3, false);
  EXPECT_EQ(markov.suggest(4), (std::vector<vd::ItemId>{7}));
}

// ---------------------------------------------------------------------------
// ShardMap property tests (DESIGN.md §12)
//
// Brute-force reference style: the map's claims are re-checked directly over
// seeded random universes of ids instead of trusting the ring arithmetic.
// Seeds derive from the printed master seed (VIRA_TEST_SEED reproduces).
// ---------------------------------------------------------------------------

TEST(ShardMapProperties, EveryIdHasExactlyRDistinctLiveOwners) {
  vu::Rng rng(vira::test::test_seed(0x54a9d));
  for (int round = 0; round < 20; ++round) {
    vd::ShardMap::Config config;
    config.members = 1 + static_cast<int>(rng.next_below(8));
    config.replication = 1 + static_cast<int>(rng.next_below(4));
    config.seed = rng.next_u64();
    vd::ShardMap map(config);
    const auto expected = static_cast<std::size_t>(std::min(config.replication, config.members));
    for (int i = 0; i < 200; ++i) {
      const vd::ItemId id = rng.next_u64();
      const auto owners = map.owners(id);
      ASSERT_EQ(owners.size(), expected) << "members=" << config.members
                                         << " repl=" << config.replication;
      const std::set<int> distinct(owners.begin(), owners.end());
      ASSERT_EQ(distinct.size(), owners.size()) << "owner list repeats a member";
      for (const int owner : owners) {
        ASSERT_GE(owner, 0);
        ASSERT_LT(owner, config.members);
      }
      ASSERT_EQ(map.primary(id), owners.front());
      for (int member = 0; member < config.members; ++member) {
        ASSERT_EQ(map.is_owner(id, member), distinct.count(member) == 1);
      }
    }
  }
}

TEST(ShardMapProperties, IdenticalConfigsRouteIdenticallyWithoutCoordination) {
  vu::Rng rng(vira::test::test_seed(0x54a9e));
  for (int round = 0; round < 10; ++round) {
    vd::ShardMap::Config config;
    config.members = 2 + static_cast<int>(rng.next_below(7));
    config.replication = 1 + static_cast<int>(rng.next_below(3));
    config.seed = rng.next_u64();
    vd::ShardMap a(config);
    vd::ShardMap b(config);
    vd::ShardMap::Config other = config;
    other.seed = config.seed + 1;
    vd::ShardMap c(other);
    bool seed_matters = false;
    for (int i = 0; i < 200; ++i) {
      const vd::ItemId id = rng.next_u64();
      ASSERT_EQ(a.owners(id), b.owners(id)) << "same config diverged";
      if (a.owners(id) != c.owners(id)) {
        seed_matters = true;
      }
    }
    EXPECT_TRUE(seed_matters) << "a different seed never moved any of 200 ids";
  }
}

TEST(ShardMapProperties, DeathOnlyMovesKeysTheDeadOwnerServed) {
  vu::Rng rng(vira::test::test_seed(0xdead5));
  for (int round = 0; round < 10; ++round) {
    vd::ShardMap::Config config;
    config.members = 2 + static_cast<int>(rng.next_below(7));
    config.replication = 1 + static_cast<int>(rng.next_below(3));
    config.seed = rng.next_u64();
    vd::ShardMap map(config);

    constexpr int kIds = 500;
    std::vector<vd::ItemId> ids;
    std::vector<std::vector<int>> before;
    ids.reserve(kIds);
    before.reserve(kIds);
    for (int i = 0; i < kIds; ++i) {
      ids.push_back(rng.next_u64());
      before.push_back(map.owners(ids.back()));
    }

    const int dead = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(config.members)));
    map.mark_dead(dead);
    EXPECT_TRUE(map.is_dead(dead));

    int moved = 0;
    for (int i = 0; i < kIds; ++i) {
      const auto after = map.owners(ids[i]);
      const bool held = std::find(before[i].begin(), before[i].end(), dead) != before[i].end();
      if (!held) {
        // Ids the dead member never owned must be completely untouched.
        ASSERT_EQ(after, before[i]) << "unrelated id moved on death";
        continue;
      }
      ++moved;
      // The ring walk merely skips the dead member's points: the surviving
      // owners keep their order, and at most one new replica is appended.
      std::vector<int> survivors = before[i];
      survivors.erase(std::remove(survivors.begin(), survivors.end(), dead), survivors.end());
      ASSERT_GE(after.size(), survivors.size());
      ASSERT_TRUE(std::equal(survivors.begin(), survivors.end(), after.begin()))
          << "surviving owners reshuffled on death";
      ASSERT_EQ(std::find(after.begin(), after.end(), dead) == after.end(), true);
      const auto live = static_cast<std::size_t>(std::min(config.replication, config.members - 1));
      ASSERT_EQ(after.size(), live);
    }
    // Movement is the expected ≈ min(R, N)/N fraction of the keyspace, not
    // a rehash-everything event. Bounds are loose (64 vnodes ⇒ the shares
    // wobble) but rule out both extremes.
    const double expected =
        static_cast<double>(std::min(config.replication, config.members)) / config.members;
    const double fraction = static_cast<double>(moved) / kIds;
    EXPECT_LE(fraction, std::min(1.0, 3.0 * expected))
        << "death moved far more keys than the dead member owned";
    EXPECT_GE(fraction, expected / 4.0) << "death moved implausibly few keys";
  }
}

// Regression: interned ids are small sequential integers, and member 0's
// vnode inputs are also 0..vnodes-1. Before the ring/item hash domains were
// separated, the target of ItemId v was bit-for-bit equal to member 0's
// v-th ring point, so member 0 was primary for every id below `vnodes` —
// i.e. for the whole working set of any real run.
TEST(ShardMapProperties, SmallSequentialIdsSpreadAcrossMembers) {
  vd::ShardMap::Config config;
  config.members = 4;
  config.replication = 2;
  vd::ShardMap map(config);
  std::vector<int> primaries(static_cast<std::size_t>(config.members), 0);
  const int ids = 256;
  for (int id = 0; id < ids; ++id) {
    primaries[static_cast<std::size_t>(map.primary(static_cast<vd::ItemId>(id)))]++;
  }
  for (int member = 0; member < config.members; ++member) {
    EXPECT_GT(primaries[static_cast<std::size_t>(member)], 0)
        << "member " << member << " is primary for none of " << ids << " sequential ids";
    EXPECT_LT(primaries[static_cast<std::size_t>(member)], ids / 2)
        << "member " << member << " is primary for over half of " << ids
        << " sequential ids — item targets are colliding with its ring points";
  }
}

TEST(ShardMapProperties, AllDeadMeansNoOwners) {
  vd::ShardMap::Config config;
  config.members = 3;
  config.replication = 2;
  vd::ShardMap map(config);
  for (int member = 0; member < config.members; ++member) {
    map.mark_dead(member);
  }
  EXPECT_TRUE(map.owners(42).empty());
  EXPECT_EQ(map.primary(42), -1);
  map.mark_alive(1);
  EXPECT_EQ(map.owners(42), std::vector<int>{1});
}

// ---------------------------------------------------------------------------
// Sharded DMS peer wire (kTagPeerFetch / kTagPeerBlock / kTagPeerPush)
// ---------------------------------------------------------------------------

namespace {

/// `workers` proxies over one in-process wire, ownership consistently hashed
/// across the first `members` of them with replication `repl` — the same
/// wiring core::Backend does, minus scheduler and workers.
struct ShardedFixture {
  std::shared_ptr<vd::DataServer> server = std::make_shared<vd::DataServer>();
  std::shared_ptr<FakeSource> source = std::make_shared<FakeSource>();
  std::shared_ptr<vira::comm::InProcTransport> transport;
  std::shared_ptr<vira::comm::Transport> wire;
  vd::ShardMap routes;  ///< reference copy for the tests' own ownership queries
  std::vector<std::unique_ptr<vd::DataProxy>> proxies;

  ShardedFixture(int workers, int members, int repl,
                 const vira::comm::FaultInjectionConfig* faults = nullptr)
      : transport(std::make_shared<vira::comm::InProcTransport>(workers + 1)),
        wire(faults ? std::static_pointer_cast<vira::comm::Transport>(
                          std::make_shared<vira::comm::FaultInjectingTransport>(transport, *faults))
                    : transport),
        routes(shard_config(members, repl)) {
    for (int index = 0; index < workers; ++index) {
      vd::DataProxyConfig config;
      config.proxy_id = index;
      config.cache.l1_capacity_bytes = 1 << 20;
      config.cache.policy = "fbr";
      config.async_prefetch = false;
      auto proxy = std::make_unique<vd::DataProxy>(config, server, source);
      proxy->configure_sharding(std::make_shared<vd::ShardMap>(shard_config(members, repl)),
                                std::make_shared<vira::comm::Communicator>(wire, index + 1),
                                std::chrono::milliseconds(50));
      proxies.push_back(std::move(proxy));
    }
  }

  static vd::ShardMap::Config shard_config(int members, int repl) {
    vd::ShardMap::Config config;
    config.members = members;
    config.replication = repl;
    return config;
  }

  /// First block item whose primary owner is `owner`, skipping `skip` hits
  /// (for tests that need several distinct items on the same shard).
  vd::DataItemName item_owned_by(int owner, int skip = 0) {
    for (int block = 0; block < 256; ++block) {
      const auto name = item("shard", 0, block);
      if (routes.primary(proxies[0]->resolver().resolve(name)) == owner) {
        if (skip-- == 0) {
          return name;
        }
      }
    }
    throw std::logic_error("no block hashed onto the requested owner");
  }
};

bool same_bytes(const vd::Blob& a, const vd::Blob& b) {
  return a && b && a->size() == b->size() && std::memcmp(a->data(), b->data(), a->size()) == 0;
}

}  // namespace

TEST(ShardedDms, PeerFetchRoundTripServesFromOwner) {
  ShardedFixture fx(2, 2, 1);
  const auto name = fx.item_owned_by(0);
  const auto original = fx.proxies[0]->request(name);  // owner: disk load
  EXPECT_EQ(fx.source->loads(), 1);
  const auto fetched = fx.proxies[1]->request(name);  // non-owner: over the wire
  EXPECT_EQ(fx.source->loads(), 1) << "a warm owner must absorb the miss";
  EXPECT_TRUE(same_bytes(original, fetched));
  const auto counters = fx.proxies[1]->stats().snapshot();
  EXPECT_EQ(counters.peer_fetches, 1u);
  EXPECT_EQ(counters.peer_fallback_disk, 0u);
  EXPECT_EQ(counters.peer_fetch_timeouts, 0u);
}

TEST(ShardedDms, FetchRacingEvictionFallsBackToDiskAndReseedsOwner) {
  ShardedFixture fx(2, 2, 1);
  const auto name = fx.item_owned_by(0);
  const vd::ItemId id = fx.proxies[1]->resolver().resolve(name);
  // The owner is alive but cold — the steady-state shape of a fetch racing
  // an eviction. The answer must be a *signed* miss followed by a disk
  // fallback, never a hang on a silent peer.
  const auto blob = fx.proxies[1]->request(name);
  ASSERT_NE(blob, nullptr);
  EXPECT_EQ(fx.source->loads(), 1);
  const auto counters = fx.proxies[1]->stats().snapshot();
  EXPECT_EQ(counters.peer_fetch_misses, 1u);
  EXPECT_EQ(counters.peer_fallback_disk, 1u);
  EXPECT_EQ(counters.peer_fetch_timeouts, 0u);
  EXPECT_GE(counters.peer_pushes, 1u);
  // The fallback pushed a replica back to the owner (async, via its peer
  // service thread) — the next fetch for this block finds it warm.
  EXPECT_TRUE(vira::test::eventually(
      [&] { return fx.proxies[0]->cache().peek(id) != nullptr; }));
}

TEST(ShardedDms, DuplicatedPeerRepliesAreDedupedBySeq) {
  vira::comm::FaultInjectionConfig faults;
  faults.seed = 99;
  faults.duplicate_rate = 1.0;  // every wire message arrives twice
  ShardedFixture fx(2, 2, 1, &faults);
  const auto first = fx.item_owned_by(0, 0);
  const auto second = fx.item_owned_by(0, 1);
  const auto original_first = fx.proxies[0]->request(first);
  const auto original_second = fx.proxies[0]->request(second);
  EXPECT_EQ(fx.source->loads(), 2);

  // Each fetch is answered at least twice (duplicated request ⇒ the owner
  // serves it twice ⇒ duplicated replies); the stale extras carry an old
  // seq and must be discarded, not mistaken for the next fetch's answer.
  const auto fetched_first = fx.proxies[1]->request(first);
  const auto fetched_second = fx.proxies[1]->request(second);
  EXPECT_TRUE(same_bytes(original_first, fetched_first));
  EXPECT_TRUE(same_bytes(original_second, fetched_second));
  EXPECT_EQ(fx.source->loads(), 2) << "duplicates must not force disk fallbacks";
  const auto counters = fx.proxies[1]->stats().snapshot();
  EXPECT_EQ(counters.peer_fetches, 2u);
  EXPECT_EQ(counters.peer_fallback_disk, 0u);
}

TEST(ShardedDms, VersionBumpInvalidatesEveryReplica) {
  // Regression for bump routing: NameService::bump_data_version() must
  // invalidate on *all* replicas — after the PR-6 result-cache invalidation
  // fires, a stale replica may not serve a pre-bump block to anyone.
  ShardedFixture fx(3, 2, 2);  // proxies 0 and 1 own everything; 2 only requests
  fx.server->names().on_bump([&fx](std::uint64_t version) {
    for (auto& proxy : fx.proxies) {
      proxy->on_data_version(version);
    }
  });
  const auto name = fx.item_owned_by(0);
  const vd::ItemId id = fx.proxies[2]->resolver().resolve(name);

  // Cold start: both owners sign misses, the requester pays the disk once
  // and seeds both replicas.
  const auto original = fx.proxies[2]->request(name);
  ASSERT_NE(original, nullptr);
  EXPECT_EQ(fx.source->loads(), 1);
  ASSERT_TRUE(vira::test::eventually([&] {
    return fx.proxies[0]->cache().peek(id) != nullptr &&
           fx.proxies[1]->cache().peek(id) != nullptr;
  }));

  fx.server->names().bump_data_version();

  // The repeat may not touch any pre-bump copy: the requester's own cache
  // hit is evicted as stale, both replicas refuse on the wire, and the
  // bytes come fresh from the source.
  const auto reloaded = fx.proxies[2]->request(name);
  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(fx.source->loads(), 2);
  const auto rejects = fx.proxies[0]->stats().snapshot().stale_replica_rejects +
                       fx.proxies[1]->stats().snapshot().stale_replica_rejects;
  EXPECT_GE(rejects, 1u) << "no replica ever refused its stale copy";
  EXPECT_EQ(fx.proxies[2]->data_version(), 2u);
}
