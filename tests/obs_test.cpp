#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algo/cfd_command.hpp"
#include "comm/fault_transport.hpp"
#include "core/backend.hpp"
#include "grid/synthetic.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/tracer.hpp"
#include "viz/session.hpp"

namespace va = vira::algo;
namespace vc = vira::core;
namespace vg = vira::grid;
namespace vm = vira::comm;
namespace vo = vira::obs;
namespace vu = vira::util;
namespace vv = vira::viz;

namespace {

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(ObsMetrics, CounterSurvivesConcurrentHammering) {
  auto& counter = vo::Registry::instance().counter("test.concurrent_counter");
  auto& histogram = vo::Registry::instance().histogram("test.concurrent_histogram");
  counter.reset();
  histogram.reset();

  constexpr int kThreads = 8;
  constexpr int kIterations = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      // Mix registration-time lookup with pre-resolved bumping, like real
      // call sites do.
      auto& same = vo::Registry::instance().counter("test.concurrent_counter");
      for (int i = 0; i < kIterations; ++i) {
        same.add();
        histogram.observe(1e-4);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }

  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(histogram.count(), static_cast<std::uint64_t>(kThreads) * kIterations);
  EXPECT_NEAR(histogram.sum(), kThreads * kIterations * 1e-4, 1e-3);
}

TEST(ObsMetrics, NameCollisionAcrossKindsThrows) {
  vo::Registry::instance().counter("test.kind_collision");
  EXPECT_THROW(vo::Registry::instance().gauge("test.kind_collision"), std::logic_error);
  EXPECT_THROW(vo::Registry::instance().histogram("test.kind_collision"), std::logic_error);
  // Same kind re-resolves to the same instrument.
  auto& a = vo::Registry::instance().counter("test.kind_collision");
  auto& b = vo::Registry::instance().counter("test.kind_collision");
  EXPECT_EQ(&a, &b);
}

TEST(ObsMetrics, HistogramQuantilesAndDump) {
  auto& histogram =
      vo::Registry::instance().histogram("test.quantiles", std::vector<double>{0.01, 0.1, 1.0});
  histogram.reset();
  for (int i = 0; i < 98; ++i) {
    histogram.observe(0.005);  // first bucket
  }
  histogram.observe(0.5);
  histogram.observe(0.5);
  EXPECT_DOUBLE_EQ(histogram.quantile_upper_bound(0.5), 0.01);
  EXPECT_DOUBLE_EQ(histogram.quantile_upper_bound(0.99), 1.0);

  std::ostringstream dump;
  vo::Registry::instance().dump(dump);
  EXPECT_NE(dump.str().find("histogram test.quantiles count=100"), std::string::npos);
  EXPECT_NE(dump.str().find("counter test.kind_collision"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracer basics
// ---------------------------------------------------------------------------

TEST(ObsTracer, NoSinkMeansInertSpans) {
  auto& tracer = vo::Tracer::instance();
  tracer.disable();
  tracer.clear();

  auto span = tracer.start("orphan", 1, 0, 0);
  EXPECT_FALSE(span.active());
  EXPECT_EQ(span.context().span_id, 0u);
  span.arg("ignored", 7);
  span.end();

  auto child = tracer.start_child("child");
  EXPECT_FALSE(child.active());
  child.end();

  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(vo::current_context().span_id, 0u);
}

TEST(ObsTracer, ContextScopeStitchesChildren) {
  auto& tracer = vo::Tracer::instance();
  tracer.enable();
  tracer.clear();

  auto root = tracer.start("root", 42, 0, 0);
  ASSERT_TRUE(root.active());
  {
    vo::ContextScope scope(root.context());
    auto child = tracer.start_child("child");
    ASSERT_TRUE(child.active());
    EXPECT_EQ(child.context().request_id, 42u);
    child.arg("bytes", 128);
  }
  EXPECT_EQ(vo::current_context().span_id, 0u);
  root.end();

  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const auto& child = spans[0].name == "child" ? spans[0] : spans[1];
  const auto& parent = spans[0].name == "root" ? spans[0] : spans[1];
  EXPECT_EQ(child.parent_id, parent.span_id);
  EXPECT_EQ(child.request_id, 42u);
  ASSERT_EQ(child.args.size(), 1u);
  EXPECT_EQ(child.args[0].first, "bytes");
  EXPECT_EQ(child.args[0].second, 128);

  tracer.disable();
  tracer.clear();
}

TEST(ObsTracer, CapacityBoundsTheRecordStore) {
  auto& tracer = vo::Tracer::instance();
  tracer.enable();
  tracer.clear();
  tracer.set_capacity(4);
  const auto dropped_before = tracer.dropped();
  for (int i = 0; i < 10; ++i) {
    tracer.start("burst", 1, 0, 0).end();
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped() - dropped_before, 6u);
  tracer.set_capacity(1u << 20);
  tracer.disable();
  tracer.clear();
}

// ---------------------------------------------------------------------------
// Chrome export (lightweight structural parse; the vira-obs-smoke ctest does
// the strict JSON parse via tools/check_trace.py)
// ---------------------------------------------------------------------------

/// Pulls every `"key":<integer>` occurrence out of the export.
std::vector<long long> scrape_int_values(const std::string& json, const std::string& key) {
  std::vector<long long> values;
  const std::string needle = "\"" + key + "\":";
  std::size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    values.push_back(std::stoll(json.substr(pos)));
  }
  return values;
}

TEST(ObsExport, ChromeTraceHasUniqueStitchedSpans) {
  auto& tracer = vo::Tracer::instance();
  tracer.enable();
  tracer.clear();

  auto root = tracer.start("export \"root\"", 9, 0, 0);  // quote needs escaping
  {
    vo::ContextScope scope(root.context());
    tracer.start_child("export.child").end();
  }
  root.end();

  std::ostringstream out;
  vo::write_chrome_trace(out);
  const std::string json = out.str();
  tracer.disable();
  tracer.clear();

  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'), std::count(json.begin(), json.end(), '}'));
  EXPECT_NE(json.find("\"export \\\"root\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // process_name metadata

  const auto span_ids = scrape_int_values(json, "span_id");
  ASSERT_EQ(span_ids.size(), 2u);
  EXPECT_NE(span_ids[0], span_ids[1]);
  const auto parents = scrape_int_values(json, "parent_id");
  ASSERT_EQ(parents.size(), 2u);
  // One root (parent 0), one child whose parent is an exported span.
  EXPECT_EQ(std::count(parents.begin(), parents.end(), 0), 1);
  for (const auto parent : parents) {
    if (parent != 0) {
      EXPECT_NE(std::find(span_ids.begin(), span_ids.end(), parent), span_ids.end());
    }
  }
}

// ---------------------------------------------------------------------------
// TimelineReport
// ---------------------------------------------------------------------------

TEST(ObsTimeline, FromPhasesComputesShares) {
  const auto report =
      vo::TimelineReport::from_phases({{"compute", 3.0}, {"read", 1.0}}, /*wall_seconds=*/5.0);
  EXPECT_DOUBLE_EQ(report.total(), 4.0);
  EXPECT_DOUBLE_EQ(report.share("compute"), 0.75);
  EXPECT_DOUBLE_EQ(report.share("read"), 0.25);
  EXPECT_DOUBLE_EQ(report.share("send"), 0.0);
  EXPECT_DOUBLE_EQ(report.wall_seconds(), 5.0);

  std::ostringstream out;
  report.print(out, "fixture");
  EXPECT_NE(out.str().find("compute  75.0%"), std::string::npos);

  const auto empty = vo::TimelineReport::from_phases({});
  EXPECT_DOUBLE_EQ(empty.total(), 0.0);
  std::ostringstream out2;
  empty.print(out2, "empty");
  EXPECT_NE(out2.str().find("(no samples)"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: traced requests over a real Backend
// ---------------------------------------------------------------------------

class ObsBackendTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    va::register_builtin_commands();
    dataset_ = (std::filesystem::temp_directory_path() / "vira_obs_ds").string();
    if (!std::filesystem::exists(dataset_ + "/dataset.vmi")) {
      std::filesystem::remove_all(dataset_);
      vg::GeneratorConfig config;
      config.directory = dataset_;
      config.timesteps = 2;
      config.ni = 10;
      config.nj = 8;
      config.nk = 6;
      vg::generate_engine(config);
    }
    vg::DatasetReader reader(dataset_);
    float lo = 1e30f;
    float hi = -1e30f;
    for (int b = 0; b < reader.meta().block_count(); ++b) {
      const auto [blo, bhi] = reader.read_block(0, b).scalar_range("density");
      lo = std::min(lo, blo);
      hi = std::max(hi, bhi);
    }
    iso_ = 0.5 * (lo + hi);
  }

  static vu::ParamList iso_params(int workers) {
    vu::ParamList params;
    params.set("dataset", dataset_);
    params.set("field", "density");
    params.set_double("iso", iso_);
    params.set_int("workers", workers);
    return params;
  }

  static std::string dataset_;
  static double iso_;
};
std::string ObsBackendTest::dataset_;
double ObsBackendTest::iso_ = 0.0;

TEST_F(ObsBackendTest, SingleRequestStitchesAcrossRanksWithHighCoverage) {
  auto& tracer = vo::Tracer::instance();
  tracer.enable();
  tracer.clear();

  {
    vc::BackendConfig config;
    config.workers = 2;
    // Slow storage stretches the request so the traced window dwarfs the
    // client/scheduler hand-off gaps the spans cannot cover.
    config.read_delay_us_per_mb = 3e6;
    vc::Backend backend(config);
    vv::ExtractionSession session(backend.connect());
    std::vector<vu::ByteBuffer> fragments;
    const auto stats = session.submit("iso.dataman", iso_params(2))->wait(&fragments);
    EXPECT_TRUE(stats.success) << stats.error;
    session.close();
    backend.shutdown();
  }

  const auto spans = tracer.snapshot();
  tracer.disable();

  std::map<std::string, int> by_name;
  std::map<std::uint64_t, const vo::SpanRecord*> by_id;
  for (const auto& span : spans) {
    ++by_name[span.name];
    by_id[span.span_id] = &span;
  }
  ASSERT_EQ(by_name["client.request"], 1);
  ASSERT_EQ(by_name["sched.request"], 1);
  EXPECT_EQ(by_name["worker.execute"], 2);
  EXPECT_GE(by_name["compute"], 1);
  EXPECT_GE(by_name["read"], 1);
  EXPECT_GE(by_name["dms.load"], 1);
  EXPECT_GE(by_name["comm.send"], 1);

  // Every span id is unique and every parent resolves (async prefetch roots
  // have parent 0 and are fine).
  EXPECT_EQ(by_id.size(), spans.size());
  const auto client_it = std::find_if(spans.begin(), spans.end(),
                                      [](const auto& s) { return s.name == "client.request"; });
  ASSERT_NE(client_it, spans.end());
  const auto* client = &*client_it;
  for (const auto& span : spans) {
    if (span.parent_id != 0) {
      ASSERT_TRUE(by_id.count(span.parent_id)) << span.name << " has an orphan parent";
    }
  }

  // The whole tree hangs off the client span: scheduler attempt under the
  // client request, worker executes under the scheduler attempt.
  const auto& sched = *std::find_if(spans.begin(), spans.end(),
                                    [](const auto& s) { return s.name == "sched.request"; });
  EXPECT_EQ(sched.parent_id, client->span_id);
  EXPECT_EQ(sched.rank, 0);
  EXPECT_EQ(client->rank, vo::kClientRank);
  for (const auto& span : spans) {
    if (span.name == "worker.execute") {
      EXPECT_EQ(span.parent_id, sched.span_id);
      EXPECT_GE(span.rank, 1);
      EXPECT_EQ(span.request_id, client->request_id);
    }
  }

  // Server-side spans account for >= 95% of what the client waited on.
  const auto report = vo::TimelineReport::from_spans(spans, client->request_id);
  EXPECT_GT(report.wall_seconds(), 0.0);
  EXPECT_GE(report.coverage(), 0.95) << "coverage " << report.coverage() << " of "
                                     << report.wall_seconds() << "s window";
  EXPECT_GT(report.seconds("read"), 0.0);
  EXPECT_GT(report.seconds("compute"), 0.0);

  tracer.clear();
}

using FragmentKey = std::pair<std::int32_t, std::uint32_t>;

TEST_F(ObsBackendTest, KilledRankLeavesRetryVisibleInTraceAndMetrics) {
  auto& tracer = vo::Tracer::instance();
  tracer.enable();
  tracer.clear();
  const auto retries_before = vo::Registry::instance().counter("sched.retries").value();

  bool killed = false;
  {
    vc::BackendConfig config;
    config.workers = 4;
    config.worker.heartbeat_interval = std::chrono::milliseconds(10);
    config.scheduler.death_timeout = std::chrono::milliseconds(250);
    config.scheduler.idle_grace = std::chrono::milliseconds(300);
    config.scheduler.retry_backoff = std::chrono::milliseconds(5);
    config.scheduler.max_retries = 3;
    config.read_delay_us_per_mb = 3e6;
    config.fault_injection = vm::FaultInjectionConfig{};  // kill switch only
    vc::Backend backend(config);
    ASSERT_NE(backend.fault_transport(), nullptr);

    vv::ExtractionSession session(backend.connect());
    auto params = iso_params(3);
    params.set_int("stream_cells", 8);
    params.set_doubles("viewpoint", {0, 0, 0});
    auto stream = session.submit("iso.viewer", params);

    bool complete = false;
    while (!complete) {
      auto packet = stream->next(std::chrono::milliseconds(60000));
      ASSERT_TRUE(packet.has_value()) << "stream stalled";
      if (packet->kind == vv::Packet::Kind::kComplete) {
        EXPECT_TRUE(packet->stats.success) << packet->stats.error;
        EXPECT_GT(packet->stats.retries, 0u);
        complete = true;
      } else if ((packet->kind == vv::Packet::Kind::kPartial ||
                  packet->kind == vv::Packet::Kind::kFinal) &&
                 !killed) {
        backend.fault_transport()->kill_rank(3);
        killed = true;
      }
    }
    session.close();
    backend.shutdown();
  }
  EXPECT_TRUE(killed);

  const auto spans = tracer.snapshot();
  tracer.disable();

  // The retry shows up as a second sched.request attempt under the same
  // client request, and the trace still stitches: no orphans.
  const auto& client = *std::find_if(spans.begin(), spans.end(),
                                     [](const auto& s) { return s.name == "client.request"; });
  int attempts = 0;
  std::set<std::uint64_t> ids;
  for (const auto& span : spans) {
    ids.insert(span.span_id);
    if (span.name == "sched.request" && span.request_id == client.request_id) {
      ++attempts;
      EXPECT_EQ(span.parent_id, client.span_id);
    }
  }
  EXPECT_GE(attempts, 2) << "expected the retry to open a second scheduler attempt span";
  EXPECT_EQ(ids.size(), spans.size());
  for (const auto& span : spans) {
    if (span.parent_id != 0) {
      EXPECT_TRUE(ids.count(span.parent_id)) << span.name << " has an orphan parent";
    }
  }

  // The shared registry saw the retry and the degraded completion.
  EXPECT_GT(vo::Registry::instance().counter("sched.retries").value(), retries_before);
  std::ostringstream dump;
  vo::Registry::instance().dump(dump);
  EXPECT_NE(dump.str().find("counter sched.retries"), std::string::npos);
  EXPECT_NE(dump.str().find("counter sched.lost_workers"), std::string::npos);
  EXPECT_NE(dump.str().find("counter fault.killed_ranks"), std::string::npos);

  tracer.clear();
}

}  // namespace
