#include <gtest/gtest.h>

#include <cmath>

#include "math/aabb.hpp"
#include "math/eigen_sym3.hpp"
#include "math/mat3.hpp"
#include "math/vec3.hpp"
#include "util/rng.hpp"

namespace vm = vira::math;

// ---------------------------------------------------------------------------
// Vec3 / Mat3
// ---------------------------------------------------------------------------

TEST(Vec3, BasicAlgebra) {
  const vm::Vec3 a{1, 2, 3};
  const vm::Vec3 b{4, 5, 6};
  EXPECT_EQ(a + b, (vm::Vec3{5, 7, 9}));
  EXPECT_EQ(a - b, (vm::Vec3{-3, -3, -3}));
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
  EXPECT_EQ(a.cross(b), (vm::Vec3{-3, 6, -3}));
  EXPECT_DOUBLE_EQ((2.0 * a).y, 4.0);
  EXPECT_DOUBLE_EQ(vm::Vec3(3, 4, 0).norm(), 5.0);
}

TEST(Vec3, NormalizedHandlesZero) {
  EXPECT_EQ(vm::Vec3{}.normalized(), vm::Vec3{});
  const auto n = vm::Vec3(0, 0, 2).normalized();
  EXPECT_DOUBLE_EQ(n.norm(), 1.0);
}

TEST(Vec3, LerpEndpointsAndMidpoint) {
  const vm::Vec3 a{0, 0, 0};
  const vm::Vec3 b{2, 4, 6};
  EXPECT_EQ(vm::lerp(a, b, 0.0), a);
  EXPECT_EQ(vm::lerp(a, b, 1.0), b);
  EXPECT_EQ(vm::lerp(a, b, 0.5), (vm::Vec3{1, 2, 3}));
}

TEST(Mat3, MultiplyAndInverse) {
  vm::Mat3 a;
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 1) = 3;
  a(2, 2) = 4;
  a(2, 0) = 1;
  const vm::Mat3 inv = a.inverse();
  const vm::Mat3 id = a * inv;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(id(i, j), i == j ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(Mat3, DetTraceTranspose) {
  const vm::Mat3 m = vm::Mat3::from_rows({1, 2, 3}, {0, 1, 4}, {5, 6, 0});
  EXPECT_DOUBLE_EQ(m.det(), 1.0);
  EXPECT_DOUBLE_EQ(m.trace(), 2.0);
  EXPECT_DOUBLE_EQ(m.transpose()(0, 2), 5.0);
}

TEST(Mat3, SymmetricAntisymmetricSplit) {
  const vm::Mat3 m = vm::Mat3::from_rows({1, 2, 3}, {4, 5, 6}, {7, 8, 9});
  const vm::Mat3 s = m.symmetric_part();
  const vm::Mat3 q = m.antisymmetric_part();
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(s(i, j), s(j, i));
      EXPECT_DOUBLE_EQ(q(i, j), -q(j, i));
      EXPECT_DOUBLE_EQ(s(i, j) + q(i, j), m(i, j));
    }
  }
}

TEST(Mat3, MatrixVectorProduct) {
  const vm::Mat3 m = vm::Mat3::from_rows({1, 0, 0}, {0, 2, 0}, {0, 0, 3});
  EXPECT_EQ(m * vm::Vec3(1, 1, 1), (vm::Vec3{1, 2, 3}));
}

// ---------------------------------------------------------------------------
// Symmetric eigenvalues
// ---------------------------------------------------------------------------

TEST(EigenSym3, DiagonalMatrix) {
  vm::Mat3 d;
  d(0, 0) = 3;
  d(1, 1) = -1;
  d(2, 2) = 2;
  const auto ev = vm::eigenvalues_sym3(d);
  EXPECT_DOUBLE_EQ(ev[0], -1.0);
  EXPECT_DOUBLE_EQ(ev[1], 2.0);
  EXPECT_DOUBLE_EQ(ev[2], 3.0);
}

TEST(EigenSym3, KnownSymmetricMatrix) {
  // [[2,1,0],[1,2,0],[0,0,5]] has eigenvalues 1, 3, 5.
  vm::Mat3 m;
  m(0, 0) = 2;
  m(0, 1) = 1;
  m(1, 0) = 1;
  m(1, 1) = 2;
  m(2, 2) = 5;
  const auto ev = vm::eigenvalues_sym3(m);
  EXPECT_NEAR(ev[0], 1.0, 1e-12);
  EXPECT_NEAR(ev[1], 3.0, 1e-12);
  EXPECT_NEAR(ev[2], 5.0, 1e-12);
  EXPECT_NEAR(vm::middle_eigenvalue_sym3(m), 3.0, 1e-12);
}

TEST(EigenSym3, RepeatedEigenvalues) {
  // Identity scaled: all eigenvalues equal.
  const vm::Mat3 m = vm::Mat3::identity() * 4.0;
  const auto ev = vm::eigenvalues_sym3(m);
  EXPECT_NEAR(ev[0], 4.0, 1e-12);
  EXPECT_NEAR(ev[1], 4.0, 1e-12);
  EXPECT_NEAR(ev[2], 4.0, 1e-12);
}

TEST(EigenSym3, RandomMatricesSatisfyInvariants) {
  vira::util::Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    vm::Mat3 m;
    for (int i = 0; i < 3; ++i) {
      for (int j = i; j < 3; ++j) {
        const double v = rng.uniform(-5.0, 5.0);
        m(i, j) = v;
        m(j, i) = v;
      }
    }
    const auto ev = vm::eigenvalues_sym3(m);
    // Sorted.
    EXPECT_LE(ev[0], ev[1] + 1e-9);
    EXPECT_LE(ev[1], ev[2] + 1e-9);
    // Trace and determinant are preserved by similarity.
    EXPECT_NEAR(ev[0] + ev[1] + ev[2], m.trace(), 1e-9);
    EXPECT_NEAR(ev[0] * ev[1] * ev[2], m.det(), 1e-7);
    // Characteristic polynomial root check: det(A - λI) ≈ 0.
    for (const double lambda : ev) {
      vm::Mat3 shifted = m;
      shifted(0, 0) -= lambda;
      shifted(1, 1) -= lambda;
      shifted(2, 2) -= lambda;
      EXPECT_NEAR(shifted.det(), 0.0, 1e-6 * (1.0 + std::fabs(m.det())));
    }
  }
}

TEST(EigenSym3, FullDecompositionReconstructs) {
  vira::util::Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    vm::Mat3 m;
    for (int i = 0; i < 3; ++i) {
      for (int j = i; j < 3; ++j) {
        const double v = rng.uniform(-3.0, 3.0);
        m(i, j) = v;
        m(j, i) = v;
      }
    }
    const auto eig = vm::eigen_decompose_sym3(m);
    // A v_k = λ_k v_k for every eigenpair.
    for (int k = 0; k < 3; ++k) {
      const vm::Vec3 v{eig.vectors(0, k), eig.vectors(1, k), eig.vectors(2, k)};
      const vm::Vec3 av = m * v;
      const vm::Vec3 lv = v * eig.values[k];
      EXPECT_NEAR((av - lv).norm(), 0.0, 1e-8);
      EXPECT_NEAR(v.norm(), 1.0, 1e-9);
    }
    // Eigenvalues agree with the analytic path.
    const auto analytic = vm::eigenvalues_sym3(m);
    for (int k = 0; k < 3; ++k) {
      EXPECT_NEAR(eig.values[k], analytic[k], 1e-8);
    }
  }
}

// ---------------------------------------------------------------------------
// λ2 criterion
// ---------------------------------------------------------------------------

TEST(Lambda2, RigidRotationIsVortical) {
  // u = ω × r with ω = (0,0,1): grad u = [[0,-1,0],[1,0,0],[0,0,0]].
  const vm::Mat3 grad = vm::Mat3::from_rows({0, -1, 0}, {1, 0, 0}, {0, 0, 0});
  // S = 0, Q = grad, S²+Q² has eigenvalues {-1,-1,0}; λ2 = -1 < 0: vortex.
  EXPECT_NEAR(vm::lambda2_of(grad), -1.0, 1e-12);
}

TEST(Lambda2, PureShearIsNotVortical) {
  // u = (y, 0, 0): grad u = [[0,1,0],[0,0,0],[0,0,0]].
  const vm::Mat3 grad = vm::Mat3::from_rows({0, 1, 0}, {0, 0, 0}, {0, 0, 0});
  // S²+Q² = diag(1/4·..) — middle eigenvalue is 0 (boundary, not interior).
  EXPECT_GE(vm::lambda2_of(grad), -1e-12);
}

TEST(Lambda2, PureStrainIsPositive) {
  // Uniaxial extension u = (x, -y/2, -z/2): symmetric gradient, no rotation.
  const vm::Mat3 grad = vm::Mat3::from_rows({1, 0, 0}, {0, -0.5, 0}, {0, 0, -0.5});
  EXPECT_GT(vm::lambda2_of(grad), 0.0);
}

// ---------------------------------------------------------------------------
// Aabb
// ---------------------------------------------------------------------------

TEST(Aabb, ExpandAndContain) {
  vm::Aabb box;
  EXPECT_FALSE(box.valid());
  box.expand({0, 0, 0});
  box.expand({1, 2, 3});
  EXPECT_TRUE(box.valid());
  EXPECT_TRUE(box.contains({0.5, 1.0, 1.5}));
  EXPECT_FALSE(box.contains({2, 0, 0}));
  EXPECT_TRUE(box.contains({1.05, 0, 0}, 0.1));
  EXPECT_EQ(box.center(), (vm::Vec3{0.5, 1.0, 1.5}));
}

TEST(Aabb, OverlapAndDistance) {
  const vm::Aabb a({0, 0, 0}, {1, 1, 1});
  const vm::Aabb b({0.5, 0.5, 0.5}, {2, 2, 2});
  const vm::Aabb c({3, 3, 3}, {4, 4, 4});
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_DOUBLE_EQ(a.distance2({0.5, 0.5, 0.5}), 0.0);
  EXPECT_DOUBLE_EQ(a.distance2({2, 1, 1}), 1.0);
}
