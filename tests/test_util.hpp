#pragma once

/// \file test_util.hpp
/// Shared helpers for the test suite (DESIGN.md "Testing strategy").
///
///  * eventually() — bounded predicate-wait. Replaces fixed sleep_for()
///    calls in timing-sensitive tests: instead of guessing how long an
///    asynchronous effect takes (and flaking when CI is slow), poll the
///    condition until it holds or a generous deadline expires.
///  * master_seed() — the per-run randomization seed for property tests,
///    printed once so a failing run is reproducible: re-run with
///    VIRA_TEST_SEED=<printed value>.

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <thread>

namespace vira::test {

/// Polls `predicate` every `poll` until it returns true or `timeout`
/// elapses. Returns the final predicate value, so it slots directly into
/// EXPECT_TRUE(eventually(...)). The timeout is deliberately generous —
/// it only bounds the failure case; the common path returns as soon as
/// the condition holds.
template <typename Predicate>
bool eventually(Predicate&& predicate,
                std::chrono::milliseconds timeout = std::chrono::milliseconds(5000),
                std::chrono::milliseconds poll = std::chrono::milliseconds(2)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) {
      return true;
    }
    std::this_thread::sleep_for(poll);
  }
  return predicate();
}

/// The run's master randomization seed: VIRA_TEST_SEED if set, otherwise
/// derived from the wall clock. Printed exactly once per process so any
/// property-test failure comes with its reproduction recipe.
inline std::uint64_t master_seed() {
  static const std::uint64_t seed = [] {
    std::uint64_t value;
    if (const char* env = std::getenv("VIRA_TEST_SEED")) {
      value = std::strtoull(env, nullptr, 10);
    } else {
      value = static_cast<std::uint64_t>(
          std::chrono::system_clock::now().time_since_epoch().count());
    }
    std::cout << "[test] master seed = " << value
              << " (re-run with VIRA_TEST_SEED=" << value << " to reproduce)\n";
    return value;
  }();
  return seed;
}

/// A seed for one named property test, decorrelated from the other tests
/// sharing the master seed.
inline std::uint64_t test_seed(std::uint64_t salt) {
  std::uint64_t x = master_seed() ^ (salt * 0x9e3779b97f4a7c15ULL);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  return x;
}

}  // namespace vira::test
