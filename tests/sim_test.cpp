#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/channel.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace vs = vira::sim;

namespace {

vs::Task<void> record_at(vs::Engine& engine, std::vector<double>& log, double dt) {
  co_await engine.delay(dt);
  log.push_back(engine.now());
}

vs::Task<int> add_later(vs::Engine& engine, int a, int b, double dt) {
  co_await engine.delay(dt);
  co_return a + b;
}

}  // namespace

TEST(SimEngine, DelayAdvancesVirtualTime) {
  vs::Engine engine;
  std::vector<double> log;
  engine.spawn(record_at(engine, log, 5.0));
  engine.spawn(record_at(engine, log, 2.0));
  engine.spawn(record_at(engine, log, 8.0));
  engine.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_DOUBLE_EQ(log[0], 2.0);
  EXPECT_DOUBLE_EQ(log[1], 5.0);
  EXPECT_DOUBLE_EQ(log[2], 8.0);
  EXPECT_DOUBLE_EQ(engine.now(), 8.0);
}

TEST(SimEngine, ZeroDelayDoesNotSuspend) {
  vs::Engine engine;
  std::vector<double> log;
  engine.spawn([](vs::Engine& e, std::vector<double>& out) -> vs::Task<void> {
    co_await e.delay(0.0);
    out.push_back(e.now());
    co_await e.delay(-1.0);  // negative treated as zero
    out.push_back(e.now());
  }(engine, log));
  engine.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_DOUBLE_EQ(log[0], 0.0);
  EXPECT_DOUBLE_EQ(log[1], 0.0);
}

TEST(SimEngine, SubtaskReturnsValue) {
  vs::Engine engine;
  int result = 0;
  engine.spawn([](vs::Engine& e, int& out) -> vs::Task<void> {
    out = co_await add_later(e, 2, 3, 1.5);
    out += co_await add_later(e, 10, 20, 0.5);
  }(engine, result));
  engine.run();
  EXPECT_EQ(result, 35);
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
}

TEST(SimEngine, JoinWaitsForCompletion) {
  vs::Engine engine;
  std::vector<std::string> order;
  auto worker = engine.spawn([](vs::Engine& e, std::vector<std::string>& out) -> vs::Task<void> {
    co_await e.delay(3.0);
    out.push_back("worker");
  }(engine, order));
  engine.spawn([](vs::Engine& e, vs::ProcessHandle h, std::vector<std::string>& out) -> vs::Task<void> {
    co_await h.join();
    out.push_back("joiner@" + std::to_string(e.now()));
  }(engine, worker, order));
  engine.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "worker");
  EXPECT_EQ(order[1], "joiner@3.000000");
}

TEST(SimEngine, JoinOnFinishedProcessIsImmediate) {
  vs::Engine engine;
  auto worker = engine.spawn([](vs::Engine& e) -> vs::Task<void> { co_await e.delay(1.0); }(engine));
  engine.run();
  EXPECT_TRUE(worker.done());
  bool joined = false;
  engine.spawn([](vs::ProcessHandle h, bool& out) -> vs::Task<void> {
    co_await h.join();
    out = true;
  }(worker, joined));
  engine.run();
  EXPECT_TRUE(joined);
}

TEST(SimEngine, ExceptionsPropagateFromRun) {
  vs::Engine engine;
  engine.spawn([](vs::Engine& e) -> vs::Task<void> {
    co_await e.delay(1.0);
    throw std::runtime_error("boom");
  }(engine));
  EXPECT_THROW(engine.run(), std::runtime_error);
}

TEST(SimEngine, SubtaskExceptionReachesParent) {
  vs::Engine engine;
  bool caught = false;
  engine.spawn([](vs::Engine& e, bool& out) -> vs::Task<void> {
    try {
      co_await [](vs::Engine& e2) -> vs::Task<int> {
        co_await e2.delay(0.5);
        throw std::runtime_error("inner");
      }(e);
    } catch (const std::runtime_error&) {
      out = true;
    }
  }(engine, caught));
  engine.run();
  EXPECT_TRUE(caught);
}

TEST(SimEngine, RunUntilStopsAtBoundary) {
  vs::Engine engine;
  std::vector<double> log;
  engine.spawn(record_at(engine, log, 1.0));
  engine.spawn(record_at(engine, log, 10.0));
  const bool more = engine.run_until(5.0);
  EXPECT_TRUE(more);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
  engine.run();
  EXPECT_EQ(log.size(), 2u);
}

TEST(SimEngine, DeterministicEventCount) {
  auto run_once = [] {
    vs::Engine engine;
    std::vector<double> log;
    for (int i = 0; i < 20; ++i) {
      engine.spawn(record_at(engine, log, static_cast<double>((i * 7) % 5)));
    }
    engine.run();
    return std::make_pair(engine.events_processed(), log);
  };
  const auto [count_a, log_a] = run_once();
  const auto [count_b, log_b] = run_once();
  EXPECT_EQ(count_a, count_b);
  EXPECT_EQ(log_a, log_b);
}

TEST(SimEngine, FifoTieBreakAtEqualTimes) {
  vs::Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.spawn([](vs::Engine& e, std::vector<int>& out, int id) -> vs::Task<void> {
      co_await e.delay(1.0);
      out.push_back(id);
    }(engine, order, i));
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimEngine, EqualTimestampsInterleaveInRegistrationOrder) {
  // Stronger tie-break edge case than FifoTieBreakAtEqualTimes: several
  // processes repeatedly land on the SAME instants; at every instant the
  // wake order must equal registration order, even though each round's
  // events were registered while the previous round was still draining.
  vs::Engine engine;
  std::vector<std::pair<int, double>> trace;  // (process, time)
  for (int i = 0; i < 3; ++i) {
    engine.spawn([](vs::Engine& e, std::vector<std::pair<int, double>>& out,
                    int id) -> vs::Task<void> {
      for (int round = 0; round < 3; ++round) {
        co_await e.delay(1.0);
        out.emplace_back(id, e.now());
      }
    }(engine, trace, i));
  }
  engine.run();
  ASSERT_EQ(trace.size(), 9u);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 3; ++i) {
      const auto& [id, at] = trace[static_cast<std::size_t>(round * 3 + i)];
      EXPECT_EQ(id, i) << "round " << round;
      EXPECT_DOUBLE_EQ(at, round + 1.0);
    }
  }
}

// ---------------------------------------------------------------------------
// Resource
// ---------------------------------------------------------------------------

TEST(SimResource, SerializesBeyondCapacity) {
  vs::Engine engine;
  vs::Resource cpu(engine, 2, "cpu");
  std::vector<double> finish_times;
  for (int i = 0; i < 4; ++i) {
    engine.spawn([](vs::Engine& e, vs::Resource& r, std::vector<double>& out) -> vs::Task<void> {
      co_await r.acquire();
      co_await e.delay(10.0);
      r.release();
      out.push_back(e.now());
    }(engine, cpu, finish_times));
  }
  engine.run();
  ASSERT_EQ(finish_times.size(), 4u);
  // Two run in [0,10], two in [10,20].
  EXPECT_DOUBLE_EQ(finish_times[0], 10.0);
  EXPECT_DOUBLE_EQ(finish_times[1], 10.0);
  EXPECT_DOUBLE_EQ(finish_times[2], 20.0);
  EXPECT_DOUBLE_EQ(finish_times[3], 20.0);
  EXPECT_EQ(cpu.available(), 2);
}

TEST(SimResource, LeaseReleasesAutomatically) {
  vs::Engine engine;
  vs::Resource disk(engine, 1, "disk");
  std::vector<double> times;
  for (int i = 0; i < 3; ++i) {
    engine.spawn([](vs::Engine& e, vs::Resource& r, std::vector<double>& out) -> vs::Task<void> {
      auto lease = co_await r.acquire_scoped();
      co_await e.delay(1.0);
      out.push_back(e.now());
    }(engine, disk, times));
  }
  engine.run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[2], 3.0);
  EXPECT_EQ(disk.available(), 1);
}

TEST(SimResource, FifoFairnessForWaiters) {
  vs::Engine engine;
  vs::Resource r(engine, 1);
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) {
    engine.spawn([](vs::Engine& e, vs::Resource& res, std::vector<int>& out, int id) -> vs::Task<void> {
      co_await res.acquire();
      co_await e.delay(1.0);
      res.release();
      out.push_back(id);
    }(engine, r, order, i));
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(SimResource, OverCapacityAcquireThrows) {
  vs::Engine engine;
  vs::Resource r(engine, 2);
  EXPECT_THROW(r.acquire(3), std::invalid_argument);
  EXPECT_THROW(vs::Resource(engine, 0), std::invalid_argument);
}

TEST(SimResource, MultiUnitAcquireBlocksUntilEnough) {
  vs::Engine engine;
  vs::Resource r(engine, 4);
  std::vector<std::pair<int, double>> events;
  // Holder takes 3 units for 5s; big requester needs 2 and must wait.
  engine.spawn([](vs::Engine& e, vs::Resource& res, std::vector<std::pair<int, double>>& out) -> vs::Task<void> {
    co_await res.acquire(3);
    out.emplace_back(0, e.now());
    co_await e.delay(5.0);
    res.release(3);
  }(engine, r, events));
  engine.spawn([](vs::Engine& e, vs::Resource& res, std::vector<std::pair<int, double>>& out) -> vs::Task<void> {
    co_await e.delay(1.0);
    co_await res.acquire(2);
    out.emplace_back(1, e.now());
    res.release(2);
  }(engine, r, events));
  engine.run();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].second, 0.0);
  EXPECT_DOUBLE_EQ(events[1].second, 5.0);
}

// ---------------------------------------------------------------------------
// Channel
// ---------------------------------------------------------------------------

TEST(SimChannel, ProducerConsumerInVirtualTime) {
  vs::Engine engine;
  vs::Channel<int> channel(engine);
  std::vector<std::pair<int, double>> received;

  engine.spawn([](vs::Engine& e, vs::Channel<int>& ch) -> vs::Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await e.delay(2.0);
      ch.push(i);
    }
    ch.close();
  }(engine, channel));

  engine.spawn([](vs::Channel<int>& ch, vs::Engine& e,
                  std::vector<std::pair<int, double>>& out) -> vs::Task<void> {
    while (true) {
      auto item = co_await ch.pop();
      if (!item) {
        break;
      }
      out.emplace_back(*item, e.now());
    }
  }(channel, engine, received));

  engine.run();
  ASSERT_EQ(received.size(), 3u);
  EXPECT_EQ(received[0].first, 0);
  EXPECT_DOUBLE_EQ(received[0].second, 2.0);
  EXPECT_DOUBLE_EQ(received[2].second, 6.0);
}

TEST(SimChannel, CloseReleasesBlockedConsumer) {
  vs::Engine engine;
  vs::Channel<int> channel(engine);
  bool got_eos = false;
  engine.spawn([](vs::Channel<int>& ch, bool& out) -> vs::Task<void> {
    const auto item = co_await ch.pop();
    out = !item.has_value();
  }(channel, got_eos));
  engine.spawn([](vs::Engine& e, vs::Channel<int>& ch) -> vs::Task<void> {
    co_await e.delay(1.0);
    ch.close();
  }(engine, channel));
  engine.run();
  EXPECT_TRUE(got_eos);
}

TEST(SimChannel, QueuedItemsDrainAfterClose) {
  vs::Engine engine;
  vs::Channel<int> channel(engine);
  channel.push(1);
  channel.push(2);
  channel.close();
  std::vector<int> drained;
  engine.spawn([](vs::Channel<int>& ch, std::vector<int>& out) -> vs::Task<void> {
    while (true) {
      auto item = co_await ch.pop();
      if (!item) {
        break;
      }
      out.push_back(*item);
    }
  }(channel, drained));
  engine.run();
  EXPECT_EQ(drained, (std::vector<int>{1, 2}));
}

TEST(SimChannel, TwoConsumersServedFifo) {
  vs::Engine engine;
  vs::Channel<int> channel(engine);
  std::vector<std::pair<int, int>> received;  // (consumer, item)
  for (int c = 0; c < 2; ++c) {
    engine.spawn([](vs::Channel<int>& ch, std::vector<std::pair<int, int>>& out, int id) -> vs::Task<void> {
      auto item = co_await ch.pop();
      if (item) {
        out.emplace_back(id, *item);
      }
    }(channel, received, c));
  }
  engine.spawn([](vs::Engine& e, vs::Channel<int>& ch) -> vs::Task<void> {
    co_await e.delay(1.0);
    ch.push(100);
    co_await e.delay(1.0);
    ch.push(200);
    ch.close();
  }(engine, channel));
  engine.run();
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[0], (std::pair<int, int>{0, 100}));
  EXPECT_EQ(received[1], (std::pair<int, int>{1, 200}));
}

// ---------------------------------------------------------------------------
// Stress and lifetime edge cases
// ---------------------------------------------------------------------------

TEST(SimEngine, ThousandProcessesShareOneResource) {
  vs::Engine engine;
  vs::Resource resource(engine, 4);
  int completed = 0;
  for (int n = 0; n < 1000; ++n) {
    engine.spawn([](vs::Engine& e, vs::Resource& r, int& done) -> vs::Task<void> {
      co_await r.acquire();
      co_await e.delay(0.5);
      r.release();
      ++done;
    }(engine, resource, completed));
  }
  engine.run();
  EXPECT_EQ(completed, 1000);
  // 1000 jobs x 0.5s / 4 servers = 125s of virtual time.
  EXPECT_DOUBLE_EQ(engine.now(), 125.0);
  EXPECT_EQ(resource.available(), 4);
}

TEST(SimEngine, DestructionWithPendingEventsIsClean) {
  // Processes still suspended when the engine dies must be destroyed
  // without leaks or crashes (ASAN-friendly by construction).
  auto engine = std::make_unique<vs::Engine>();
  vs::Resource resource(*engine, 1);
  for (int n = 0; n < 10; ++n) {
    engine->spawn([](vs::Engine& e, vs::Resource& r) -> vs::Task<void> {
      co_await r.acquire();
      co_await e.delay(1e9);  // effectively forever
      r.release();
    }(*engine, resource));
  }
  engine->run_until(5.0);  // leaves 9 waiters + 1 sleeper pending
  engine.reset();          // must not crash
  SUCCEED();
}

TEST(SimResource, WaitersPreemptedByRunUntilResumeInFifoOrder) {
  // run_until() preempts the simulation mid-contention; resuming with
  // run() must serve the parked waiters in their original FIFO order, as
  // if the preemption never happened.
  vs::Engine engine;
  vs::Resource resource(engine, 1);
  std::vector<std::pair<int, double>> grants;  // (process, grant time)
  for (int i = 0; i < 3; ++i) {
    engine.spawn([](vs::Engine& e, vs::Resource& r,
                    std::vector<std::pair<int, double>>& out, int id) -> vs::Task<void> {
      const auto lease = co_await r.acquire_scoped();
      out.emplace_back(id, e.now());
      co_await e.delay(2.0);
    }(engine, resource, grants, i));
  }
  EXPECT_TRUE(engine.run_until(3.0));  // process 0 done, 1 mid-hold, 2 queued
  EXPECT_EQ(grants.size(), 2u);
  EXPECT_EQ(resource.queue_length(), 1u);
  engine.run();
  ASSERT_EQ(grants.size(), 3u);
  EXPECT_EQ(grants[0], (std::pair<int, double>{0, 0.0}));
  EXPECT_EQ(grants[1], (std::pair<int, double>{1, 2.0}));
  EXPECT_EQ(grants[2], (std::pair<int, double>{2, 4.0}));
  EXPECT_EQ(resource.available(), 1);
}

TEST(SimResource, CancellationWithHeldLeasesAndQueuedWaitersIsClean) {
  // Cancellation path: the engine dies while one coroutine HOLDS a lease
  // and others are queued on the resource. Destroying the suspended frames
  // runs the holder's Lease destructor, whose release() wakes the queue —
  // which by then contains handles that are being torn down. This must not
  // crash or over-release.
  auto engine = std::make_unique<vs::Engine>();
  vs::Resource resource(*engine, 1);
  for (int i = 0; i < 4; ++i) {
    engine->spawn([](vs::Engine& e, vs::Resource& r) -> vs::Task<void> {
      const auto lease = co_await r.acquire_scoped();
      co_await e.delay(100.0);
    }(*engine, resource));
  }
  EXPECT_TRUE(engine->run_until(1.0));  // one holder at t in (0, 100), three queued
  EXPECT_EQ(resource.queue_length(), 3u);
  engine.reset();
  SUCCEED();
}

TEST(SimChannel, CloseReleasesEveryBlockedConsumer) {
  // Close-while-awaiting with SEVERAL parked consumers: all of them must
  // observe end-of-stream (in FIFO order), not just the queue head.
  vs::Engine engine;
  vs::Channel<int> channel(engine);
  std::vector<int> eos_order;
  for (int c = 0; c < 3; ++c) {
    engine.spawn([](vs::Channel<int>& ch, std::vector<int>& out, int id) -> vs::Task<void> {
      const auto item = co_await ch.pop();
      if (!item) {
        out.push_back(id);
      }
    }(channel, eos_order, c));
  }
  engine.spawn([](vs::Engine& e, vs::Channel<int>& ch) -> vs::Task<void> {
    co_await e.delay(1.0);
    ch.close();
  }(engine, channel));
  engine.run();
  EXPECT_EQ(eos_order, (std::vector<int>{0, 1, 2}));
}

TEST(SimEngine, TaskMoveSemantics) {
  vs::Engine engine;
  bool ran = false;
  auto task = [](bool& flag) -> vs::Task<void> {
    flag = true;
    co_return;
  }(ran);
  vs::Task<void> moved = std::move(task);
  EXPECT_FALSE(task.valid());  // NOLINT(bugprone-use-after-move) — intentional
  EXPECT_TRUE(moved.valid());
  engine.spawn(std::move(moved));
  engine.run();
  EXPECT_TRUE(ran);
}

TEST(SimEngine, NestedSubtasksThreeDeep) {
  vs::Engine engine;
  double result = 0.0;
  engine.spawn([](vs::Engine& e, double& out) -> vs::Task<void> {
    auto inner = [](vs::Engine& e2) -> vs::Task<double> {
      auto innermost = [](vs::Engine& e3) -> vs::Task<double> {
        co_await e3.delay(1.0);
        co_return 21.0;
      }(e2);
      const double x = co_await std::move(innermost);
      co_await e2.delay(1.0);
      co_return x * 2.0;
    }(e);
    out = co_await std::move(inner);
  }(engine, result));
  engine.run();
  EXPECT_DOUBLE_EQ(result, 42.0);
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
}

TEST(SimResource, QueueLengthVisible) {
  vs::Engine engine;
  vs::Resource r(engine, 1);
  for (int n = 0; n < 3; ++n) {
    engine.spawn([](vs::Engine& e, vs::Resource& res) -> vs::Task<void> {
      co_await res.acquire();
      co_await e.delay(1.0);
      res.release();
    }(engine, r));
  }
  engine.run_until(0.5);
  EXPECT_EQ(r.queue_length(), 2u);  // one holds, two wait
  engine.run();
  EXPECT_EQ(r.queue_length(), 0u);
}

TEST(SimChannel, LargeBacklogDrains) {
  vs::Engine engine;
  vs::Channel<int> channel(engine);
  for (int n = 0; n < 10000; ++n) {
    channel.push(n);
  }
  channel.close();
  long long sum = 0;
  engine.spawn([](vs::Channel<int>& ch, long long& out) -> vs::Task<void> {
    while (auto item = co_await ch.pop()) {
      out += *item;
    }
  }(channel, sum));
  engine.run();
  EXPECT_EQ(sum, 10000LL * 9999 / 2);
}

TEST(SimChannel, PushAfterCloseIsDropped) {
  vs::Engine engine;
  vs::Channel<int> channel(engine);
  channel.close();
  channel.push(7);
  EXPECT_EQ(channel.size(), 0u);
  EXPECT_TRUE(channel.closed());
}
