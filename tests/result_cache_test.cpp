// core::ResultCache unit and property tests (DESIGN.md "Result
// memoization"): keying/canonicalization, entry serialization, admission,
// invalidation, and — since the cache stores entries through the same
// dms::TwoTierCache the data path uses — a reference-model replay of its
// replacement behavior in the style of the dms_test policy property tests.

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <string>
#include <vector>

#include "core/result_cache.hpp"
#include "util/rng.hpp"

namespace vc = vira::core;
namespace vu = vira::util;

namespace {

vc::CachedResult entry_for(int query, std::uint64_t version = 1, int fragment_bytes = 200) {
  vu::ParamList params;
  params.set_int("q", query);
  vc::CachedResult entry;
  entry.key = vc::ResultCache::make_key("test.cmd", params, version);
  entry.data_version = version;
  entry.workers = 2;
  entry.requested_workers = 2;
  entry.partial_packets = 1;
  entry.result_bytes = static_cast<std::uint64_t>(fragment_bytes);
  entry.compute_seconds = 0.25;
  vc::CachedResult::Fragment fragment;
  fragment.final = true;
  for (int i = 0; i < fragment_bytes; ++i) {
    fragment.payload.write<std::uint8_t>(static_cast<std::uint8_t>((query * 37 + i) & 0xff));
  }
  entry.fragments.push_back(std::move(fragment));
  return entry;
}

}  // namespace

TEST(ResultCacheKey, CanonicalizesParamOrder) {
  vu::ParamList forward;
  forward.set_int("level", 3);
  forward.set("dataset", "/engine");
  vu::ParamList reversed;
  reversed.set("dataset", "/engine");
  reversed.set_int("level", 3);
  EXPECT_EQ(vc::ResultCache::make_key("iso", forward, 1),
            vc::ResultCache::make_key("iso", reversed, 1));
}

TEST(ResultCacheKey, VersionCommandAndParamsAllSeparate) {
  vu::ParamList params;
  params.set_int("level", 3);
  const auto base = vc::ResultCache::make_key("iso", params, 1);
  EXPECT_NE(base, vc::ResultCache::make_key("iso", params, 2));
  EXPECT_NE(base, vc::ResultCache::make_key("vortex", params, 1));
  vu::ParamList other;
  other.set_int("level", 4);
  EXPECT_NE(base, vc::ResultCache::make_key("iso", other, 1));
  // Stable hashing: the same key always maps to the same ItemId.
  EXPECT_EQ(vc::ResultCache::key_hash(base), vc::ResultCache::key_hash(base));
}

TEST(ResultCacheEntry, SerializationRoundTrips) {
  const auto original = entry_for(7, 3);
  vu::ByteBuffer buffer;
  original.serialize(buffer);
  buffer.seek(0);
  const auto restored = vc::CachedResult::deserialize(buffer);
  EXPECT_EQ(restored.key, original.key);
  EXPECT_EQ(restored.data_version, 3u);
  EXPECT_EQ(restored.workers, 2);
  EXPECT_EQ(restored.requested_workers, 2);
  EXPECT_EQ(restored.partial_packets, 1u);
  EXPECT_EQ(restored.result_bytes, original.result_bytes);
  EXPECT_DOUBLE_EQ(restored.compute_seconds, 0.25);
  ASSERT_EQ(restored.fragments.size(), 1u);
  EXPECT_TRUE(restored.fragments[0].final);
  ASSERT_EQ(restored.fragments[0].payload.size(), original.fragments[0].payload.size());
  EXPECT_EQ(std::memcmp(restored.fragments[0].payload.data(),
                        original.fragments[0].payload.data(),
                        original.fragments[0].payload.size()),
            0);
  EXPECT_EQ(restored.payload_bytes(), original.payload_bytes());
}

TEST(ResultCache, LookupReturnsWhatWasInserted) {
  vc::ResultCacheConfig config;
  config.enabled = true;
  vc::ResultCache cache(config);
  const auto entry = entry_for(1);
  const auto key = entry.key;
  EXPECT_TRUE(cache.insert(entry_for(1)));
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_GT(cache.stored_bytes(), 0u);

  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->key, key);
  ASSERT_EQ(hit->fragments.size(), 1u);
  EXPECT_EQ(hit->fragments[0].payload.size(), entry.fragments[0].payload.size());

  EXPECT_FALSE(cache.lookup(entry_for(2).key).has_value());
}

TEST(ResultCache, OversizeEntryIsRefused) {
  vc::ResultCacheConfig config;
  config.enabled = true;
  config.max_entry_bytes = 64;
  vc::ResultCache cache(config);
  auto oversize = entry_for(1, 1, 500);
  const auto key = oversize.key;
  EXPECT_FALSE(cache.insert(std::move(oversize)));
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_FALSE(cache.lookup(key).has_value());
}

TEST(ResultCache, InvalidateAllReclaimsEverything) {
  vc::ResultCacheConfig config;
  config.enabled = true;
  vc::ResultCache cache(config);
  for (int q = 0; q < 5; ++q) {
    EXPECT_TRUE(cache.insert(entry_for(q)));
  }
  EXPECT_EQ(cache.entry_count(), 5u);
  cache.invalidate_all();
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.stored_bytes(), 0u);
  EXPECT_FALSE(cache.lookup(entry_for(0).key).has_value());
}

TEST(ResultCache, CorruptEntryThrowsOnDeserialize) {
  // The lookup path treats a deserialize failure as a miss; the failure
  // itself must be a clean throw, not UB on garbage bytes.
  vu::ByteBuffer garbage;
  for (int i = 0; i < 16; ++i) {
    garbage.write<std::uint8_t>(0xff);
  }
  garbage.seek(0);
  EXPECT_THROW(vc::CachedResult::deserialize(garbage), std::exception);
}

// --- Replacement-behavior property tests -------------------------------------
// The cache's storage IS a dms::TwoTierCache, so its replacement behavior
// is replayed against the same kind of naive reference model the dms policy
// property tests use. Under "lru" with uniform entry sizes, victim choice
// is fully determined: a flat reference LRU over keys must agree with the
// production cache on every hit and miss across a seeded op stream.

namespace {

struct RefLruCache {
  std::deque<std::string> order;  // front = LRU, back = MRU
  std::size_t capacity = 0;

  bool contains(const std::string& key) const {
    return std::find(order.begin(), order.end(), key) != order.end();
  }
  /// Mirrors ResultCache::lookup: a hit refreshes recency.
  bool lookup(const std::string& key) {
    auto it = std::find(order.begin(), order.end(), key);
    if (it == order.end()) {
      return false;
    }
    order.erase(it);
    order.push_back(key);
    return true;
  }
  /// Mirrors ResultCache::insert of a not-resident key.
  void insert(const std::string& key) {
    while (order.size() >= capacity) {
      order.pop_front();
    }
    order.push_back(key);
  }
};

}  // namespace

TEST(ResultCacheProperty, LruReplacementMatchesReferenceModel) {
  // Uniform entry sizes: measure one serialized entry, then budget the
  // cache for exactly 4 of them.
  vu::ByteBuffer probe;
  entry_for(0).serialize(probe);
  const std::uint64_t entry_bytes = probe.size();
  constexpr std::size_t kResident = 4;

  vc::ResultCacheConfig config;
  config.enabled = true;
  config.policy = "lru";
  config.memory_bytes = entry_bytes * kResident;
  vc::ResultCache cache(config);

  RefLruCache model;
  model.capacity = kResident;

  vu::Rng rng(0x5eedu);
  constexpr int kOps = 2000;
  constexpr int kUniverse = 9;  // > capacity, single-digit keys stay uniform
  for (int op = 0; op < kOps; ++op) {
    const int query = static_cast<int>(rng.next_below(kUniverse));
    const auto key = entry_for(query).key;
    if (rng.next_below(3) == 0) {
      // Lookup op: production and model must agree on hit/miss, and both
      // refresh recency on a hit.
      const bool hit = cache.lookup(key).has_value();
      EXPECT_EQ(hit, model.lookup(key)) << "op " << op << " query " << query;
    } else if (!model.contains(key)) {
      // Insert op (the scheduler only inserts after a miss ran to
      // completion, so resident keys are never re-inserted).
      EXPECT_TRUE(cache.insert(entry_for(query)));
      model.insert(key);
    }
    EXPECT_EQ(cache.entry_count(), model.order.size()) << "op " << op;
    EXPECT_LE(cache.stored_bytes(), config.memory_bytes) << "op " << op;
  }
}

TEST(ResultCacheProperty, AllPoliciesStayBoundedAndContentCorrect) {
  // lfu/fbr victims differ from LRU, but every policy must respect the
  // byte budget, and any hit must return the exact fragments originally
  // inserted for that key — churn may evict, never corrupt.
  for (const char* policy : {"lru", "lfu", "fbr"}) {
    vu::ByteBuffer probe;
    entry_for(0).serialize(probe);
    vc::ResultCacheConfig config;
    config.enabled = true;
    config.policy = policy;
    config.memory_bytes = probe.size() * 3;
    vc::ResultCache cache(config);

    vu::Rng rng(0xfeedu);
    for (int op = 0; op < 1200; ++op) {
      const int query = static_cast<int>(rng.next_below(8ull));
      const auto key = entry_for(query).key;
      if (const auto hit = cache.lookup(key)) {
        ASSERT_EQ(hit->fragments.size(), 1u) << policy;
        const auto expected = entry_for(query);
        ASSERT_EQ(hit->fragments[0].payload.size(), expected.fragments[0].payload.size())
            << policy;
        EXPECT_EQ(std::memcmp(hit->fragments[0].payload.data(),
                              expected.fragments[0].payload.data(),
                              expected.fragments[0].payload.size()),
                  0)
            << policy;
      } else {
        cache.insert(entry_for(query));
      }
      EXPECT_LE(cache.stored_bytes(), config.memory_bytes) << policy << " op " << op;
    }
  }
}
