/// \file bench_fig15_breakdown.cpp
/// Figure 15 — "Essential isosurface algorithm components applied to the
/// Engine data set, without (left) and with caching (right)": the
/// compute / read / send percentage split for SimpleIso vs IsoDataMan.
/// Paper: 50/49/1 without caching → 85/5/10 with caching.

#include <iostream>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace {

/// One obs::TimelineReport per replay — the uniform compute/read/send
/// breakdown that replaced this bench's hand-rolled percentage math.
vira::obs::TimelineReport timeline(const vira::perf::ReplayResult& result) {
  return vira::obs::TimelineReport::from_phases({{"compute", result.compute_seconds},
                                                 {"read", result.read_seconds},
                                                 {"send", result.send_seconds}},
                                                result.total_runtime);
}

}  // namespace

int main() {
  using namespace vira;
  using namespace vira::bench;

  perf::ensure_engine();
  grid::DatasetReader reader(perf::engine_dir());
  const auto iso = static_cast<float>(perf::density_iso_mid(reader));
  const auto cluster = calibrated_cluster();
  const auto profile = perf::profile_iso(reader, 0, "density", iso);

  // profile_iso ran the real extraction kernels and published the kernel
  // gauges — carry them onto both breakdown rows.
  auto& registry = obs::Registry::instance();
  const auto cells_per_sec =
      static_cast<double>(registry.gauge("kernel.cells_per_sec").value());
  const bool simd_active = registry.gauge("kernel.simd_active").value() != 0;

  perf::ReplayConfig simple;
  simple.workers = 1;
  simple.use_dms = false;
  simple.warm_cache = false;
  auto simple_report = timeline(perf::replay_extraction(profile, cluster, simple));
  simple_report.set_kernel(cells_per_sec, simd_active);

  perf::ReplayConfig dataman;
  dataman.workers = 1;
  dataman.use_dms = true;
  dataman.warm_cache = true;
  auto dataman_report = timeline(perf::replay_extraction(profile, cluster, dataman));
  dataman_report.set_kernel(cells_per_sec, simd_active);

  perf::print_banner("Figure 15",
                     "Engine isosurface component breakdown, without / with caching");
  simple_report.print(std::cout, "SimpleIso");
  dataman_report.print(std::cout, "IsoDataMan");
  perf::print_expectation("SimpleIso ≈ 50% compute / 49% read / 1% send; "
                          "IsoDataMan ≈ 85% compute / 5% read / 10% send");

  bool ok = true;
  // read ≈ compute without caching; read collapses with caching.
  ok &= simple_report.share("read") > 0.35 && simple_report.share("read") < 0.65;
  ok &= simple_report.share("compute") > 0.35 && simple_report.share("compute") < 0.65;
  ok &= dataman_report.share("read") < 0.12;
  ok &= dataman_report.share("compute") > 0.7;
  std::printf("\n  shape check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
