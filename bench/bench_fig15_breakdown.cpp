/// \file bench_fig15_breakdown.cpp
/// Figure 15 — "Essential isosurface algorithm components applied to the
/// Engine data set, without (left) and with caching (right)": the
/// compute / read / send percentage split for SimpleIso vs IsoDataMan.
/// Paper: 50/49/1 without caching → 85/5/10 with caching.

#include "bench_common.hpp"

int main() {
  using namespace vira;
  using namespace vira::bench;

  perf::ensure_engine();
  grid::DatasetReader reader(perf::engine_dir());
  const auto iso = static_cast<float>(perf::density_iso_mid(reader));
  const auto cluster = calibrated_cluster();
  const auto profile = perf::profile_iso(reader, 0, "density", iso);

  perf::ReplayConfig simple;
  simple.workers = 1;
  simple.use_dms = false;
  simple.warm_cache = false;
  const auto simple_result = perf::replay_extraction(profile, cluster, simple);

  perf::ReplayConfig dataman;
  dataman.workers = 1;
  dataman.use_dms = true;
  dataman.warm_cache = true;
  const auto dataman_result = perf::replay_extraction(profile, cluster, dataman);

  perf::print_banner("Figure 15",
                     "Engine isosurface component breakdown, without / with caching");
  perf::print_breakdown("SimpleIso", simple_result.compute_seconds, simple_result.read_seconds,
                        simple_result.send_seconds);
  perf::print_breakdown("IsoDataMan", dataman_result.compute_seconds,
                        dataman_result.read_seconds, dataman_result.send_seconds);
  perf::print_expectation("SimpleIso ≈ 50% compute / 49% read / 1% send; "
                          "IsoDataMan ≈ 85% compute / 5% read / 10% send");

  const double simple_read = simple_result.read_seconds / simple_result.phase_total();
  const double simple_compute = simple_result.compute_seconds / simple_result.phase_total();
  const double dataman_read = dataman_result.read_seconds / dataman_result.phase_total();
  const double dataman_compute = dataman_result.compute_seconds / dataman_result.phase_total();

  bool ok = true;
  ok &= simple_read > 0.35 && simple_read < 0.65;      // read ≈ compute without caching
  ok &= simple_compute > 0.35 && simple_compute < 0.65;
  ok &= dataman_read < 0.12;                           // read collapses with caching
  ok &= dataman_compute > 0.7;
  std::printf("\n  shape check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
