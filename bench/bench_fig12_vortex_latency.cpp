/// \file bench_fig12_vortex_latency.cpp
/// Figure 12 — Propfan, latency times for vortex extraction:
/// StreamedVortex vs VortexDataMan. The paper's flagship streaming number:
/// ~4.2 s to the first partial result against ~45 s to the final package
/// at 16 workers.

#include "bench_common.hpp"

int main() {
  using namespace vira;
  using namespace vira::bench;

  perf::ensure_propfan();
  grid::DatasetReader reader(perf::propfan_dir());
  const auto threshold = static_cast<float>(perf::lambda2_threshold(reader));
  const auto cluster = calibrated_cluster();
  const auto profile = perf::profile_vortex(reader, 0, threshold, 256);

  perf::print_banner("Figure 12", "Propfan, latency times for vortex extraction [s]");
  std::vector<perf::Series> series;
  series.push_back(sweep_extraction("StreamedVortex", profile, cluster, streaming_config,
                                    /*use_latency=*/true));
  series.push_back(sweep_extraction("VortexDataMan", profile, cluster, dataman_config,
                                    /*use_latency=*/true));
  perf::print_worker_series(series, "latency, s");

  const double ratio_at_16 = series[1].points.back().seconds /
                             std::max(1e-9, series[0].points.back().seconds);
  perf::print_value("final/first-result ratio at 16 workers", ratio_at_16, "x");
  perf::print_expectation(
      "~4.2 s to the first partial vs ~45 s to the final result at 16 workers "
      "(≈10x); streamed latency roughly flat in the worker count");

  bool ok = true;
  for (std::size_t r = 0; r < kWorkerSweep.size(); ++r) {
    ok &= series[0].points[r].seconds < series[1].points[r].seconds;
  }
  ok &= ratio_at_16 > 3.0;  // first results long before the final package
  std::printf("\n  shape check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
