/// \file bench_sched.cpp
/// Multi-client QoS scheduling ablation (DESIGN.md "Scheduling & QoS"):
/// the seed FIFO dispatch discipline vs. fair-share backfilling with
/// moldable widths, measured as client-side latency of a *narrow* client
/// (width-1, ~4 ms requests) competing with a *wide* client that keeps a
/// backlog of full-width requests queued. Under FIFO every narrow request
/// waits behind the wide backlog; under fair share it is molded/backfilled
/// into workers the wide stream cannot use.
///
/// Emits BENCH_sched.json (per policy: narrow-client p50/p99/mean latency,
/// wide throughput, backfill count) and exits non-zero if the shape check
/// fails: fair-share p99 must undercut FIFO p99 by at least 2x, and fair
/// share must actually have backfilled.
///
/// `--smoke` shrinks the sleeps and run count — the CI smoke run.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/backend.hpp"
#include "core/command.hpp"
#include "perf/report.hpp"
#include "viz/session.hpp"

namespace {

using namespace vira;

/// Holds its group's workers for "ms" milliseconds — pure occupancy, no
/// data path, so the bench measures scheduling policy and nothing else.
class SleepCommand final : public core::Command {
 public:
  std::string name() const override { return "bench.sleep"; }

  void execute(core::CommandContext& context) override {
    const auto ms = context.params().get_int("ms", 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    if (context.is_master()) {
      context.send_final({});
    }
  }
};

struct RegisterSleep {
  RegisterSleep() {
    core::CommandRegistry::global().register_command(
        "bench.sleep", [] { return std::make_unique<SleepCommand>(); });
  }
};
RegisterSleep register_sleep;  // NOLINT

struct PolicyResult {
  const char* policy = "";
  std::vector<double> narrow_ms;  ///< per-request submit -> terminal latency
  int wide_completed = 0;
  std::uint64_t backfills = 0;

  double percentile(double q) const {
    std::vector<double> sorted = narrow_ms;
    std::sort(sorted.begin(), sorted.end());
    const auto rank = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
  }
  double mean() const {
    double sum = 0.0;
    for (const double v : narrow_ms) {
      sum += v;
    }
    return narrow_ms.empty() ? 0.0 : sum / static_cast<double>(narrow_ms.size());
  }
};

PolicyResult run_policy(core::SchedPolicy policy, bool smoke) {
  const int wide_ms = smoke ? 30 : 60;
  const int narrow_ms = smoke ? 2 : 4;
  const int runs = smoke ? 12 : 40;
  const auto wait_budget = std::chrono::milliseconds(60000);

  core::BackendConfig config;
  config.workers = 4;
  config.scheduler.policy = policy;
  core::Backend backend(config);
  viz::ExtractionSession wide_client(backend.connect());
  viz::ExtractionSession narrow_client(backend.connect());

  PolicyResult result;
  result.policy = policy == core::SchedPolicy::kFifo ? "fifo" : "fair_share";

  // The wide client keeps one full-width request running and two queued —
  // the sustained backlog a narrow competitor has to get past.
  std::atomic<bool> stop{false};
  std::atomic<int> wide_done{0};
  std::thread wide_thread([&] {
    std::deque<std::shared_ptr<viz::ResultStream>> inflight;
    util::ParamList params;
    params.set_int("workers", 4);
    params.set_int("ms", wide_ms);
    while (!stop.load()) {
      while (inflight.size() < 3 && !stop.load()) {
        inflight.push_back(wide_client.submit("bench.sleep", params));
      }
      if (inflight.empty()) {
        break;
      }
      if (inflight.front()->wait(nullptr, wait_budget).success) {
        wide_done.fetch_add(1);
      }
      inflight.pop_front();
    }
    for (auto& stream : inflight) {
      if (stream->wait(nullptr, wait_budget).success) {
        wide_done.fetch_add(1);
      }
    }
  });

  // Let the wide backlog establish itself before measuring.
  std::this_thread::sleep_for(std::chrono::milliseconds(2 * wide_ms));

  util::ParamList narrow_params;
  narrow_params.set_int("workers", 1);
  narrow_params.set_int("ms", narrow_ms);
  for (int run = 0; run < runs; ++run) {
    const auto start = std::chrono::steady_clock::now();
    auto stream = narrow_client.submit("bench.sleep", narrow_params);
    const auto stats = stream->wait(nullptr, wait_budget);
    const auto elapsed = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    if (!stats.success) {
      std::fprintf(stderr, "%s: narrow request failed: %s\n", result.policy,
                   stats.error.c_str());
      std::exit(1);
    }
    result.narrow_ms.push_back(elapsed);
  }

  stop.store(true);
  wide_thread.join();
  result.wide_completed = wide_done.load();
  result.backfills = backend.scheduler().total_backfills();
  return result;
}

void write_json(const std::vector<PolicyResult>& results, double ratio, const char* path) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"sched\",\n  \"command\": \"bench.sleep\",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    {\"policy\": \"%s\", \"narrow_p50_ms\": %.3f, \"narrow_p99_ms\": %.3f, "
                  "\"narrow_mean_ms\": %.3f, \"wide_completed\": %d, \"backfills\": %llu}%s\n",
                  r.policy, r.percentile(0.50), r.percentile(0.99), r.mean(), r.wide_completed,
                  static_cast<unsigned long long>(r.backfills),
                  i + 1 < results.size() ? "," : "");
    out << line;
  }
  char tail[64];
  std::snprintf(tail, sizeof(tail), "  ],\n  \"p99_ratio_fifo_over_fair\": %.3f\n}\n", ratio);
  out << tail;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  const PolicyResult fifo = run_policy(core::SchedPolicy::kFifo, smoke);
  const PolicyResult fair = run_policy(core::SchedPolicy::kFairShare, smoke);
  const double ratio = fair.percentile(0.99) > 0.0
                           ? fifo.percentile(0.99) / fair.percentile(0.99)
                           : 0.0;

  perf::print_banner("Multi-client QoS scheduling",
                     "narrow-client latency behind a wide backlog: FIFO vs fair share");
  std::printf("\n  %-12s %12s %12s %12s %8s %10s\n", "policy", "p50, ms", "p99, ms",
              "mean, ms", "wide", "backfills");
  for (const auto* r : {&fifo, &fair}) {
    std::printf("  %-12s %12.2f %12.2f %12.2f %8d %10llu\n", r->policy, r->percentile(0.50),
                r->percentile(0.99), r->mean(), r->wide_completed,
                static_cast<unsigned long long>(r->backfills));
  }
  std::printf("\n  p99 ratio (fifo / fair): %.2fx\n", ratio);

  write_json({fifo, fair}, ratio, "BENCH_sched.json");
  std::printf("  wrote BENCH_sched.json\n");
  perf::print_expectation("fair-share p99 at least 2x below FIFO; fair share backfilled");

  bool ok = true;
  // The tentpole claim: the narrow client's tail latency no longer rides
  // the wide backlog. FIFO keeps ~3 wide requests ahead of every narrow
  // one; fair share molds the wide stream and backfills, so >= 2x at p99
  // has margin even on loaded CI (the unit of time is the sleep itself).
  ok = ok && ratio >= 2.0;
  ok = ok && fair.backfills >= 1;
  ok = ok && fifo.backfills == 0;  // the seed discipline must stay reachable
  std::printf("\n  shape check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
