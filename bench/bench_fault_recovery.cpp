/// \file bench_fault_recovery.cpp
/// Failure-model ablation (DESIGN.md "Failure model"): what does fault
/// recovery cost? Runs real isosurface extractions over a Backend whose
/// rank transport is wrapped in the FaultInjectingTransport and reports
/// completion time, work-group retries and fragment accounting for
///   * a clean baseline (no injector),
///   * the injector attached with all rates zero (overhead must be ~none),
///   * increasingly lossy transports (delays, drops, duplicates),
///   * a worker killed mid-request (death detection + re-dispatch).

#include <cstdio>
#include <functional>
#include <set>
#include <utility>

#include "algo/cfd_command.hpp"
#include "core/backend.hpp"
#include "perf/report.hpp"
#include "perf/testbed.hpp"
#include "util/timer.hpp"
#include "viz/session.hpp"

namespace {

using namespace vira;

struct Outcome {
  bool completed = false;    ///< the client saw a Complete
  bool success = false;
  bool exactly_once = true;  ///< no duplicate (partition, sequence) pairs
  std::uint32_t retries = 0;
  std::size_t fragments = 0;
  std::size_t lost_workers = 0;
  double seconds = 0.0;
};

core::BackendConfig recovery_config() {
  core::BackendConfig config;
  config.workers = 4;
  // Stretch block loads so a request is long enough for mid-flight faults
  // to matter (and for death detection to land while work is in progress).
  config.read_delay_us_per_mb = 2e6;
  config.worker.heartbeat_interval = std::chrono::milliseconds(10);
  config.scheduler.death_timeout = std::chrono::milliseconds(250);
  config.scheduler.idle_grace = std::chrono::milliseconds(300);
  config.scheduler.retry_backoff = std::chrono::milliseconds(5);
  config.scheduler.max_retries = 4;
  config.scheduler.request_timeout = std::chrono::milliseconds(10000);
  return config;
}

/// Submits one streamed isosurface extraction and drains it, optionally
/// killing a worker when the first fragment arrives.
Outcome run_once(core::BackendConfig config, double iso, bool kill_mid_request) {
  core::Backend backend(std::move(config));
  viz::ExtractionSession session(backend.connect());

  util::ParamList params;
  params.set("dataset", perf::engine_dir());
  params.set("field", "density");
  params.set_double("iso", iso);
  params.set_int("workers", 3);
  params.set_int("stream_cells", 64);
  params.set_doubles("viewpoint", {0, 0, 0});

  Outcome outcome;
  util::WallTimer timer;
  auto stream = session.submit("iso.viewer", params);
  std::set<std::pair<std::int32_t, std::uint32_t>> seen;
  bool killed = false;
  while (!outcome.completed) {
    auto packet = stream->next(std::chrono::milliseconds(60000));
    if (!packet.has_value()) {
      break;  // stalled — reported as completed=false
    }
    switch (packet->kind) {
      case viz::Packet::Kind::kPartial:
      case viz::Packet::Kind::kFinal:
        if (!seen.insert({packet->header.partition, packet->header.sequence}).second) {
          outcome.exactly_once = false;
        }
        if (kill_mid_request && !killed) {
          backend.fault_transport()->kill_rank(3);
          killed = true;
        }
        break;
      case viz::Packet::Kind::kComplete:
        outcome.completed = true;
        outcome.success = packet->stats.success;
        outcome.retries = packet->stats.retries;
        break;
      default:
        break;
    }
  }
  outcome.seconds = timer.seconds();
  outcome.fragments = seen.size();
  outcome.lost_workers = backend.scheduler().lost_workers();
  return outcome;
}

void print_row(const char* label, const Outcome& o) {
  std::printf("  %-26s %9.3f %9u %11zu %9zu %7s %7s\n", label, o.seconds, o.retries, o.fragments,
              o.lost_workers, o.success ? "yes" : "no", o.exactly_once ? "yes" : "no");
}

}  // namespace

int main() {
  algo::register_builtin_commands();
  perf::ensure_engine();
  grid::DatasetReader reader(perf::engine_dir());
  const double iso = perf::density_iso_mid(reader);

  perf::print_banner("Fault recovery",
                     "ViewerIso under injected transport faults and a worker death");
  std::printf("\n  %-26s %9s %9s %11s %9s %7s %7s\n", "scenario", "time, s", "retries",
              "fragments", "lost", "ok", "1x");

  const auto baseline = run_once(recovery_config(), iso, false);
  print_row("clean (no injector)", baseline);

  auto passthrough_config = recovery_config();
  passthrough_config.fault_injection = comm::FaultInjectionConfig{};  // rates all zero
  const auto passthrough = run_once(passthrough_config, iso, false);
  print_row("injector, zero rates", passthrough);

  auto delay_config = recovery_config();
  comm::FaultInjectionConfig delays;
  delays.seed = 21;
  delays.delay_rate = 0.25;
  delays.max_delay = std::chrono::milliseconds(3);
  delay_config.fault_injection = delays;
  const auto delayed = run_once(delay_config, iso, false);
  print_row("25% delayed", delayed);

  auto lossy_config = recovery_config();
  comm::FaultInjectionConfig lossy;
  lossy.seed = 22;
  lossy.drop_rate = 0.02;
  lossy.duplicate_rate = 0.05;
  lossy.delay_rate = 0.2;
  lossy.max_delay = std::chrono::milliseconds(3);
  lossy_config.fault_injection = lossy;
  const auto dropped = run_once(lossy_config, iso, false);
  print_row("2% drop + 5% dup", dropped);

  auto kill_config = recovery_config();
  comm::FaultInjectionConfig kill_faults;
  kill_faults.seed = 23;
  kill_config.fault_injection = kill_faults;
  const auto killed = run_once(kill_config, iso, true);
  print_row("worker killed mid-run", killed);

  perf::print_expectation(
      "every scenario terminates with exactly-once fragments; the zero-rate "
      "injector costs ~nothing; the killed worker costs one death timeout "
      "plus a re-run and reports retries > 0");

  bool ok = true;
  // Liveness + exactly-once everywhere.
  for (const auto* o : {&baseline, &passthrough, &delayed, &dropped, &killed}) {
    ok &= o->completed;
    ok &= o->exactly_once;
  }
  // Clean runs must not report degradation.
  ok &= baseline.success && baseline.retries == 0 && baseline.lost_workers == 0;
  ok &= passthrough.success && passthrough.retries == 0 && passthrough.lost_workers == 0;
  // Identical work either side of the pass-through injector.
  ok &= passthrough.fragments == baseline.fragments;
  // The kill must be detected and recovered from, not absorbed silently.
  ok &= killed.success && killed.retries >= 1 && killed.lost_workers == 1;
  ok &= killed.fragments == baseline.fragments;
  ok &= killed.seconds > baseline.seconds;

  std::printf("\n  shape check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
