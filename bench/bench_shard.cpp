/// \file bench_shard.cpp
/// Sharded-DMS ablation (DESIGN.md §12): N proxy ranks over one wire, a
/// Zipf(1.0) block mix per rank, three configurations:
///   * central  — the legacy path: every local miss asks the central server
///     for a strategy and pays the (contended) storage read,
///   * sharded  — consistent-hash ownership: a local miss peer-fetches the
///     block from its owner's memory instead of the disk,
///   * sharded+kill — R=2 replication, one owner killed mid-workload: its
///     blocks must re-serve from surviving replicas (dms.replica_promotions)
///     with zero disk respills after the kill.
///
/// Emits BENCH_shard.json and exits non-zero if the shape check fails:
/// peer-transfer miss latency must be >= 2x better than the central miss
/// latency under fan-in, the kill phase must promote at least one replica,
/// and it must not respill from disk.
///
/// `--smoke` shrinks the per-rank request count — the CI smoke run.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <latch>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/transport.hpp"
#include "dms/data_proxy.hpp"
#include "dms/data_server.hpp"
#include "dms/shard_map.hpp"
#include "perf/report.hpp"
#include "util/timer.hpp"

namespace {

using namespace vira;

constexpr int kRanks = 4;
constexpr int kBlocks = 64;
constexpr int kBlockBytes = 4096;
constexpr int kReadSleepUs = 1500;  ///< simulated storage latency per load

/// Deterministic in-memory blocks behind a simulated-latency "disk". The
/// sleep is what the sharded path avoids: a peer fetch is a memory copy
/// over the wire, a central miss always pays this.
class SyntheticSource final : public dms::DataSource {
 public:
  util::ByteBuffer load(const dms::DataItemName& name) override {
    std::this_thread::sleep_for(std::chrono::microseconds(kReadSleepUs));
    const auto block = name.params.get_int("block", 0);
    util::ByteBuffer buf;
    for (int i = 0; i < kBlockBytes; ++i) {
      buf.write<std::uint8_t>(static_cast<std::uint8_t>((block * 131 + i) & 0xff));
    }
    return buf;
  }
  std::uint64_t item_bytes(const dms::DataItemName&) const override { return kBlockBytes; }
  std::uint64_t file_bytes(const dms::DataItemName&) const override { return kBlockBytes; }
  std::string file_key(const dms::DataItemName& name) const override { return name.canonical(); }
};

struct Stack {
  std::shared_ptr<dms::DataServer> server = std::make_shared<dms::DataServer>();
  std::shared_ptr<SyntheticSource> source = std::make_shared<SyntheticSource>();
  std::shared_ptr<comm::InProcTransport> transport;
  std::vector<std::unique_ptr<dms::DataProxy>> proxies;

  explicit Stack(bool sharded, int repl = 1) {
    if (sharded) {
      transport = std::make_shared<comm::InProcTransport>(kRanks + 1);
    }
    dms::ShardMap::Config shard_config;
    shard_config.members = kRanks;
    shard_config.replication = repl;
    for (int index = 0; index < kRanks; ++index) {
      dms::DataProxyConfig config;
      config.proxy_id = index;
      config.cache.l1_capacity_bytes = 8 * 1024 * 1024;
      config.cache.policy = "fbr";
      config.async_prefetch = false;
      auto proxy = std::make_unique<dms::DataProxy>(config, server, source);
      if (sharded) {
        proxy->configure_sharding(std::make_shared<dms::ShardMap>(shard_config),
                                  std::make_shared<comm::Communicator>(transport, index + 1),
                                  std::chrono::milliseconds(50));
      }
      proxies.push_back(std::move(proxy));
    }
  }
};

dms::DataItemName block_name(int block) { return dms::block_item("zipf", 0, block); }

/// Zipf(1.0) block sequence, fixed per (seed, count).
std::vector<int> zipf_mix(std::uint64_t seed, int count) {
  std::vector<double> cumulative(kBlocks);
  double mass = 0.0;
  for (int i = 0; i < kBlocks; ++i) {
    mass += 1.0 / static_cast<double>(i + 1);
    cumulative[static_cast<std::size_t>(i)] = mass;
  }
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uniform(0.0, mass);
  std::vector<int> mix;
  mix.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    mix.push_back(static_cast<int>(std::lower_bound(cumulative.begin(), cumulative.end(),
                                                    uniform(rng)) -
                                   cumulative.begin()));
  }
  return mix;
}

/// Runs one rank's mix, recording the latency of every measured miss: a
/// request for a block that is neither locally resident nor owned by this
/// rank in `routes`. The same subset in every mode makes the central and
/// sharded numbers directly comparable — these are exactly the requests the
/// sharded path answers with a peer transfer and the central path with a
/// strategy round-trip plus storage read.
std::vector<double> run_rank_mix(dms::DataProxy& proxy, const dms::ShardMap& routes, int rank,
                                 const std::vector<int>& mix) {
  std::vector<double> measured_ms;
  for (const int block : mix) {
    const auto name = block_name(block);
    const auto id = proxy.resolver().resolve(name);
    const bool measure = proxy.cache().peek(id) == nullptr && !routes.is_owner(id, rank);
    util::WallTimer timer;
    (void)proxy.request(name);
    if (measure) {
      measured_ms.push_back(timer.seconds() * 1e3);
    }
  }
  return measured_ms;
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(q * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

/// All ranks run their mixes concurrently (the fan-in); returns the pooled
/// measured-miss latencies. Each rank first disk-loads the blocks it owns
/// (the steady state a long-running session converges to), so a measured
/// sharded miss compares a warm peer fetch against a central storage read —
/// not against the one-time cold fill both modes pay identically.
std::vector<double> run_all_ranks(Stack& stack, const dms::ShardMap& routes, int per_rank) {
  std::vector<std::vector<double>> latencies(kRanks);
  std::vector<std::thread> threads;
  std::latch warmed(kRanks);
  for (int rank = 0; rank < kRanks; ++rank) {
    threads.emplace_back([&, rank] {
      auto& proxy = *stack.proxies[static_cast<std::size_t>(rank)];
      for (int block = 0; block < kBlocks; ++block) {
        const auto name = block_name(block);
        if (routes.is_owner(proxy.resolver().resolve(name), rank)) {
          (void)proxy.request(name);
        }
      }
      warmed.arrive_and_wait();
      const auto mix = zipf_mix(0x5eed0 + static_cast<std::uint64_t>(rank), per_rank);
      latencies[static_cast<std::size_t>(rank)] =
          run_rank_mix(proxy, routes, rank, mix);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  std::vector<double> pooled;
  for (auto& per : latencies) {
    pooled.insert(pooled.end(), per.begin(), per.end());
  }
  return pooled;
}

struct KillOutcome {
  std::uint64_t replica_promotions = 0;
  std::uint64_t respills_after_kill = 0;
  std::uint64_t peer_fetch_timeouts = 0;
};

/// R=2 failover: the victim rank sweeps every block (seeding both owner
/// replicas via kTagPeerPush), is destroyed, and the survivors then sweep
/// every block themselves. Blocks whose primary died must be served by the
/// surviving replica — from memory, not disk.
KillOutcome run_kill_phase() {
  Stack stack(/*sharded=*/true, /*repl=*/2);
  const int victim = kRanks - 1;

  for (int block = 0; block < kBlocks; ++block) {
    (void)stack.proxies[static_cast<std::size_t>(victim)]->request(block_name(block));
  }
  // Let the one-way pushes drain into the owners' caches before the kill.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::uint64_t respills_before = 0;
  for (int rank = 0; rank < victim; ++rank) {
    respills_before +=
        stack.proxies[static_cast<std::size_t>(rank)]->stats().snapshot().peer_fallback_disk;
  }
  stack.proxies[static_cast<std::size_t>(victim)].reset();  // the kill

  std::vector<std::thread> threads;
  for (int rank = 0; rank < victim; ++rank) {
    threads.emplace_back([&, rank] {
      for (int block = 0; block < kBlocks; ++block) {
        (void)stack.proxies[static_cast<std::size_t>(rank)]->request(block_name(block));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }

  KillOutcome outcome;
  for (int rank = 0; rank < victim; ++rank) {
    const auto counters = stack.proxies[static_cast<std::size_t>(rank)]->stats().snapshot();
    outcome.replica_promotions += counters.replica_promotions;
    outcome.respills_after_kill += counters.peer_fallback_disk;
    outcome.peer_fetch_timeouts += counters.peer_fetch_timeouts;
  }
  outcome.respills_after_kill -= respills_before;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int per_rank = smoke ? 100 : 300;

  // The reference map mirrors every sharded proxy's own instance (same
  // default seed/vnodes), so "owned by rank r" means the same thing here
  // and inside the proxies.
  dms::ShardMap::Config route_config;
  route_config.members = kRanks;
  route_config.replication = 1;
  const dms::ShardMap routes(route_config);

  Stack central(/*sharded=*/false);
  const auto central_ms = run_all_ranks(central, routes, per_rank);

  Stack sharded(/*sharded=*/true, /*repl=*/1);
  const auto sharded_ms = run_all_ranks(sharded, routes, per_rank);
  std::uint64_t peer_fetches = 0;
  std::uint64_t peer_pushes = 0;
  for (const auto& proxy : sharded.proxies) {
    peer_fetches += proxy->stats().snapshot().peer_fetches;
    peer_pushes += proxy->stats().snapshot().peer_pushes;
  }

  const auto kill = run_kill_phase();

  const double central_p50 = percentile(central_ms, 0.50);
  const double sharded_p50 = percentile(sharded_ms, 0.50);
  const double speedup = sharded_p50 > 0.0 ? central_p50 / sharded_p50 : 0.0;

  perf::print_banner("Sharded DMS & peer transfer",
                     "Zipf block mix: central strategy+disk vs consistent-hash peer fetch");
  std::printf("\n  %-14s %8s %12s %12s\n", "mode", "misses", "p50, ms", "p99, ms");
  std::printf("  %-14s %8zu %12.3f %12.3f\n", "central", central_ms.size(), central_p50,
              percentile(central_ms, 0.99));
  std::printf("  %-14s %8zu %12.3f %12.3f\n", "sharded", sharded_ms.size(), sharded_p50,
              percentile(sharded_ms, 0.99));
  std::printf("\n  miss p50 speedup: %.1fx   peer fetches: %llu   pushes: %llu\n", speedup,
              static_cast<unsigned long long>(peer_fetches),
              static_cast<unsigned long long>(peer_pushes));
  std::printf("  kill phase (R=2): promotions=%llu respills=%llu timeouts=%llu\n",
              static_cast<unsigned long long>(kill.replica_promotions),
              static_cast<unsigned long long>(kill.respills_after_kill),
              static_cast<unsigned long long>(kill.peer_fetch_timeouts));

  std::ofstream out("BENCH_shard.json");
  char body[512];
  std::snprintf(body, sizeof(body),
                "{\n  \"bench\": \"shard\",\n  \"ranks\": %d,\n  \"blocks\": %d,\n"
                "  \"requests_per_rank\": %d,\n  \"central_miss_p50_ms\": %.3f,\n"
                "  \"sharded_miss_p50_ms\": %.3f,\n  \"miss_p50_speedup\": %.2f,\n"
                "  \"peer_fetches\": %llu,\n  \"peer_pushes\": %llu,\n"
                "  \"replica_promotions\": %llu,\n  \"respills_after_kill\": %llu\n}\n",
                kRanks, kBlocks, per_rank, central_p50, sharded_p50, speedup,
                static_cast<unsigned long long>(peer_fetches),
                static_cast<unsigned long long>(peer_pushes),
                static_cast<unsigned long long>(kill.replica_promotions),
                static_cast<unsigned long long>(kill.respills_after_kill));
  out << body;
  std::printf("  wrote BENCH_shard.json\n");
  perf::print_expectation(
      "peer-fetch miss p50 >= 2x better than central; kill promotes replicas, zero respills");

  bool ok = true;
  // The tentpole claim: a non-owned miss is a wire copy from the owner's
  // memory, not a strategy round-trip plus a storage read. 2x is
  // conservative — the central path sleeps kReadSleepUs under fan-in.
  ok = ok && speedup >= 2.0;
  ok = ok && peer_fetches > 0;
  // Replica failover: a killed owner's blocks re-serve from the surviving
  // replica (dms.replica_promotions), never from disk.
  ok = ok && kill.replica_promotions > 0;
  ok = ok && kill.respills_after_kill == 0;
  std::printf("\n  shape check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
