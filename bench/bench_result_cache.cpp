/// \file bench_result_cache.cpp
/// Result-memoization ablation (DESIGN.md "Result memoization"): a Zipf(1.0)
/// query mix over K distinct extraction queries against a backend with the
/// content-addressed result cache enabled. The first occurrence of each
/// query recomputes (~compute_ms of work-group occupancy); every repeat is
/// served from the scheduler's cache without forming a work group.
///
/// Emits BENCH_result_cache.json (hit/miss p50, speedup, hit fraction) and
/// exits non-zero if the shape check fails: hit-path p50 must be at least
/// 5x better than recompute p50, and at least 60% of requests must have
/// been served from the cache.
///
/// `--smoke` shrinks the query count and sleeps — the CI smoke run.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/backend.hpp"
#include "core/command.hpp"
#include "perf/report.hpp"
#include "viz/session.hpp"

namespace {

using namespace vira;

/// Simulates one extraction: occupies its group for "ms" milliseconds, then
/// streams a deterministic payload (so a cached replay is byte-identical to
/// what any recompute of the same query would produce).
class QueryCommand final : public core::Command {
 public:
  std::string name() const override { return "bench.query"; }

  void execute(core::CommandContext& context) override {
    const auto ms = context.params().get_int("ms", 1);
    const auto bytes = context.params().get_int("bytes", 256);
    const auto query = context.params().get_int("q", 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    if (context.is_master()) {
      util::ByteBuffer payload;
      for (int i = 0; i < bytes; ++i) {
        payload.write<std::uint8_t>(static_cast<std::uint8_t>((query * 131 + i) & 0xff));
      }
      context.send_final(std::move(payload));
    }
  }
};

struct RegisterQuery {
  RegisterQuery() {
    core::CommandRegistry::global().register_command(
        "bench.query", [] { return std::make_unique<QueryCommand>(); });
  }
};
RegisterQuery register_query;  // NOLINT

double percentile(std::vector<double> values, double q) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(q * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int distinct = smoke ? 12 : 50;
  const int total = smoke ? 80 : 300;
  // The hit path costs ~2 ms of scheduler polling regardless of compute,
  // so the smoke run keeps the full compute sleep — shrinking it would
  // squeeze the very ratio the shape check asserts.
  const int compute_ms = 10;
  const auto wait_budget = std::chrono::milliseconds(60000);

  core::BackendConfig config;
  config.workers = 2;
  config.scheduler.result_cache.enabled = true;
  core::Backend backend(config);
  viz::ExtractionSession client(backend.connect());

  // Zipf(1.0) over the query ids: weight of query i is 1/(i+1). The mix is
  // fixed by seed so every run measures the same request sequence.
  std::vector<double> cumulative(static_cast<std::size_t>(distinct));
  double mass = 0.0;
  for (int i = 0; i < distinct; ++i) {
    mass += 1.0 / static_cast<double>(i + 1);
    cumulative[static_cast<std::size_t>(i)] = mass;
  }
  std::mt19937_64 rng(0x5eedcac4eULL & 0xffffffffULL);
  std::uniform_real_distribution<double> uniform(0.0, mass);

  std::vector<double> hit_ms;
  std::vector<double> miss_ms;
  for (int run = 0; run < total; ++run) {
    const auto draw = uniform(rng);
    const int query = static_cast<int>(
        std::lower_bound(cumulative.begin(), cumulative.end(), draw) - cumulative.begin());
    util::ParamList params;
    params.set_int("q", query);
    params.set_int("ms", compute_ms);
    params.set_int("bytes", 512);
    const auto start = std::chrono::steady_clock::now();
    auto stream = client.submit("bench.query", params);
    const auto stats = stream->wait(nullptr, wait_budget);
    const auto elapsed =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
            .count();
    if (!stats.success) {
      std::fprintf(stderr, "query %d failed: %s\n", query, stats.error.c_str());
      return 1;
    }
    (stats.cache_hit ? hit_ms : miss_ms).push_back(elapsed);
  }

  const double hit_p50 = percentile(hit_ms, 0.50);
  const double miss_p50 = percentile(miss_ms, 0.50);
  const double speedup = hit_p50 > 0.0 ? miss_p50 / hit_p50 : 0.0;
  const double hit_fraction =
      static_cast<double>(hit_ms.size()) / static_cast<double>(total);

  perf::print_banner("Content-addressed result cache",
                     "Zipf(1.0) query mix: recompute vs memoized replay");
  std::printf("\n  %-10s %8s %12s %12s\n", "path", "count", "p50, ms", "p99, ms");
  std::printf("  %-10s %8zu %12.3f %12.3f\n", "recompute", miss_ms.size(), miss_p50,
              percentile(miss_ms, 0.99));
  std::printf("  %-10s %8zu %12.3f %12.3f\n", "cache-hit", hit_ms.size(), hit_p50,
              percentile(hit_ms, 0.99));
  std::printf("\n  hit fraction: %.1f%%   p50 speedup: %.1fx\n", 100.0 * hit_fraction, speedup);

  std::ofstream out("BENCH_result_cache.json");
  char body[512];
  std::snprintf(body, sizeof(body),
                "{\n  \"bench\": \"result_cache\",\n  \"distinct_queries\": %d,\n"
                "  \"requests\": %d,\n  \"compute_ms\": %d,\n  \"hits\": %zu,\n"
                "  \"misses\": %zu,\n  \"hit_fraction\": %.3f,\n  \"hit_p50_ms\": %.3f,\n"
                "  \"miss_p50_ms\": %.3f,\n  \"hit_p99_ms\": %.3f,\n  \"miss_p99_ms\": %.3f,\n"
                "  \"p50_speedup\": %.2f\n}\n",
                distinct, total, compute_ms, hit_ms.size(), miss_ms.size(), hit_fraction,
                hit_p50, miss_p50, percentile(hit_ms, 0.99), percentile(miss_ms, 0.99),
                speedup);
  out << body;
  std::printf("  wrote BENCH_result_cache.json\n");
  perf::print_expectation("hit p50 >= 5x better than recompute; >= 60% of requests hit");

  bool ok = true;
  // The tentpole claim: a repeat query skips the work group entirely, so
  // its latency is queue/link overhead, not compute_ms. 5x has wide margin
  // (the recompute path *sleeps* for compute_ms); the Zipf head guarantees
  // repeats dominate (misses are bounded by the distinct-query count).
  ok = ok && speedup >= 5.0;
  ok = ok && hit_fraction >= 0.6;
  ok = ok && static_cast<int>(hit_ms.size() + miss_ms.size()) == total;
  std::printf("\n  shape check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
