/// \file bench_fig13_pathlines.cpp
/// Figure 13 — Engine, pathlines, total runtime for SimplePathlines vs
/// PathlinesDataMan over {1,2,4,8} workers. The headline here is the BAD
/// scalability: "every pathline has different computational efforts and
/// strongly varying block requirements", so statically distributed seeds
/// leave workers idle.

#include "bench_common.hpp"

int main() {
  using namespace vira;
  using namespace vira::bench;

  perf::ensure_engine();
  grid::DatasetReader reader(perf::engine_dir());
  const auto cluster = calibrated_cluster();

  std::fprintf(stderr, "[bench] profiling pathline traces (real integration)...\n");
  const auto profile = perf::profile_pathlines(reader, 0, reader.meta().timestep_count() - 1,
                                               /*seed_count=*/16);

  const std::vector<int> sweep{1, 2, 4, 8};
  auto run = [&](bool use_dms, bool warm) {
    perf::Series series;
    series.label = use_dms ? "PathlinesDataMan" : "SimplePathlines";
    for (const int workers : sweep) {
      perf::PathlineReplayConfig config;
      config.workers = workers;
      config.use_dms = use_dms;
      config.warm_cache = warm;
      config.prefetcher = "none";  // Fig. 13 isolates caching from prefetch
      config.blocks_per_step = reader.meta().block_count();
      // Model loads at the paper's original block size (1.12 GB / 63 / 23);
      // integration compute does not scale with block bytes, loads do.
      config.read_bytes_scale =
          (1.12 * (1ull << 30)) / static_cast<double>(reader.meta().total_bytes());
      const auto result = perf::replay_pathlines(profile, cluster, config);
      series.points.push_back({workers, result.total_runtime});
    }
    return series;
  };

  perf::print_banner("Figure 13", "Engine, Pathlines, total runtime [s]");
  std::vector<perf::Series> series;
  series.push_back(run(true, true));    // fully cached data
  series.push_back(run(false, false));  // no data management
  perf::print_worker_series(series, "total runtime, s");

  perf::print_expectation(
      "fully cached runtimes much lower than SimplePathlines, but scalability stays "
      "bad (load imbalance from statically distributed seeds)");

  bool ok = true;
  for (std::size_t r = 0; r < sweep.size(); ++r) {
    ok &= series[1].points[r].seconds > series[0].points[r].seconds;
  }
  const double speedup8 = series[0].points[0].seconds / series[0].points[3].seconds;
  perf::print_value("PathlinesDataMan speedup at 8 workers", speedup8, "x (of 8 ideal)");
  ok &= speedup8 < 7.0;  // visibly sub-linear
  std::printf("\n  shape check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
