/// \file bench_loading_strategies.cpp
/// Ablation for Sec. 4.3: the fitness function's adaptive strategy
/// selection across environment regimes — fast/slow interconnect, peer
/// availability, concurrent readers, parallel vs plain file system.
/// Reproduces the paper's findings that peer transfer only pays on fast
/// networks and that collective I/O "is of limited use" without a parallel
/// file system.

#include <cstdio>

#include "dms/loading.hpp"
#include "perf/report.hpp"

int main() {
  using namespace vira;
  using dms::LoadEnvironment;
  using dms::LoadRequestInfo;
  using dms::StrategyKind;

  perf::print_banner("Ablation (Sec. 4.3)", "Adaptive loading-strategy selection");

  dms::FitnessSelector selector;

  struct Scenario {
    const char* name;
    LoadEnvironment env;
    LoadRequestInfo request;
    StrategyKind expected;
  };

  auto base_request = [] {
    LoadRequestInfo request;
    request.item_bytes = 2ull << 20;
    request.file_bytes = 46ull << 20;
    return request;
  };

  std::vector<Scenario> scenarios;
  {
    Scenario s{"cold start, nobody has the item", {}, base_request(),
               StrategyKind::kDirectDisk};
    scenarios.push_back(s);
  }
  {
    Scenario s{"peer holds item, fast interconnect", {}, base_request(),
               StrategyKind::kPeerTransfer};
    s.env.peer_bandwidth = 800e6;
    s.request.peer_has_item = true;
    scenarios.push_back(s);
  }
  {
    Scenario s{"peer holds item, ISDN-class network", {}, base_request(),
               StrategyKind::kDirectDisk};
    s.env.peer_bandwidth = 1e6;
    s.request.peer_has_item = true;
    scenarios.push_back(s);
  }
  {
    Scenario s{"8 readers on same file, plain FS", {}, base_request(),
               StrategyKind::kDirectDisk};
    s.request.concurrent_same_file = 8;
    scenarios.push_back(s);
  }
  {
    Scenario s{"8 readers on same file, parallel FS", {}, base_request(),
               StrategyKind::kCollectiveIo};
    s.env.parallel_fs = true;
    s.request.concurrent_same_file = 8;
    scenarios.push_back(s);
  }
  {
    Scenario s{"degraded file server (low bw, high lat)", {}, base_request(),
               StrategyKind::kPeerTransfer};
    s.env.disk_bandwidth = 5e6;
    s.env.disk_latency = 0.05;
    s.request.peer_has_item = true;
    scenarios.push_back(s);
  }

  std::printf("\n%-44s %-16s %-16s %s\n", "scenario", "chosen", "expected", "scores");
  bool ok = true;
  for (const auto& scenario : scenarios) {
    const auto chosen = selector.choose(scenario.env, scenario.request);
    const auto scored = selector.score(scenario.env, scenario.request);
    std::printf("%-44s %-16s %-16s ", scenario.name, dms::to_string(chosen).c_str(),
                dms::to_string(scenario.expected).c_str());
    for (const auto& s : scored) {
      std::printf("%s=%.2f ", s.name.c_str(), s.fitness);
    }
    std::printf("\n");
    ok &= chosen == scenario.expected;
  }

  perf::print_expectation(
      "adaptive selection reacts to environment changes; peer transfer needs a fast "
      "network; collective I/O needs a parallel file system to win");
  std::printf("\n  shape check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
