/// \file bench_fig6_engine_iso.cpp
/// Figure 6 — Engine, isosurface extraction, total runtime over
/// {1,2,4,8,16} workers for SimpleIso / ViewerIso / IsoDataMan.

#include "bench_common.hpp"

int main() {
  using namespace vira;
  using namespace vira::bench;

  perf::ensure_engine();
  grid::DatasetReader reader(perf::engine_dir());
  const auto iso = static_cast<float>(perf::density_iso_mid(reader));
  const auto cluster = calibrated_cluster();

  const auto iso_profile = perf::profile_iso(reader, 0, "density", iso, 256);
  const auto viewer_profile = perf::profile_viewer_iso(reader, 0, "density", iso, 256);

  perf::print_banner("Figure 6", "Engine, Isosurface, total runtime [s]");
  std::vector<perf::Series> series;
  series.push_back(sweep_extraction("IsoDataMan", iso_profile, cluster, dataman_config));
  series.push_back(sweep_extraction("ViewerIso", viewer_profile, cluster, streaming_config));
  series.push_back(sweep_extraction("SimpleIso", iso_profile, cluster, simple_config));
  perf::print_worker_series(series, "total runtime, s");

  perf::print_expectation(
      "SimpleIso slowest (no DMS); ViewerIso carries streaming+BSP overhead above "
      "IsoDataMan; runtime rises again at 16 workers (comm overhead exceeds profit)");

  // Shape assertions (exit code marks reproduction health).
  bool ok = true;
  for (std::size_t r = 0; r < kWorkerSweep.size(); ++r) {
    ok &= series[2].points[r].seconds > series[0].points[r].seconds;  // Simple > DataMan
    ok &= series[1].points[r].seconds >= series[0].points[r].seconds; // Viewer >= DataMan
  }
  // At 16 workers the parallel profit is gone (Fig. 6's up-tick/flattening):
  // SimpleIso sits on its serialized-read floor (16w within 10% of 8w), and
  // IsoDataMan's 8→16 gain is far below the 2x a doubling would ideally buy.
  ok &= series[2].points[4].seconds > series[2].points[3].seconds * 0.9;
  ok &= series[0].points[3].seconds / series[0].points[4].seconds < 1.7;
  std::printf("\n  shape check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
