/// \file bench_fig9_engine_vortex.cpp
/// Figure 9 — Engine, λ2 vortex extraction, total runtime for
/// SimpleVortex / StreamedVortex / VortexDataMan.

#include "bench_common.hpp"

int main() {
  using namespace vira;
  using namespace vira::bench;

  perf::ensure_engine();
  grid::DatasetReader reader(perf::engine_dir());
  const auto threshold = static_cast<float>(perf::lambda2_threshold(reader));
  const auto cluster = calibrated_cluster();

  const auto profile = perf::profile_vortex(reader, 0, threshold, 256);

  perf::print_banner("Figure 9", "Engine, Lambda-2, total runtime [s]");
  std::vector<perf::Series> series;
  series.push_back(sweep_extraction("VortexDataMan", profile, cluster, dataman_config));
  series.push_back(sweep_extraction("StreamedVortex", profile, cluster, streaming_config));
  series.push_back(sweep_extraction("SimpleVortex", profile, cluster, simple_config));
  perf::print_worker_series(series, "total runtime, s");

  perf::print_expectation(
      "runtimes significantly higher than isosurface extraction; absence of data "
      "management costs as much as in the iso case; streaming overhead is relatively "
      "small against the heavy λ2 computation");

  bool ok = true;
  for (std::size_t r = 0; r < kWorkerSweep.size(); ++r) {
    ok &= series[2].points[r].seconds > series[0].points[r].seconds;  // Simple > DataMan
    // Streamed ≈ DataMan for the λ2 command: "the additional time overhead
    // ... is relatively small compared to the overall computational cost".
    ok &= series[1].points[r].seconds >= series[0].points[r].seconds * 0.97;
  }
  // Streaming overhead (relative) smaller than in the iso case: streamed /
  // dataman at 1 worker close to 1, and visibly above it (it is a cost).
  const double overhead = series[1].points[0].seconds / series[0].points[0].seconds;
  ok &= overhead >= 1.0 && overhead < 1.3;
  std::printf("\n  shape check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
