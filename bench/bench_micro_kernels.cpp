/// \file bench_micro_kernels.cpp
/// google-benchmark micro kernels: the hot loops underneath the commands —
/// symmetric eigenvalues (λ2), velocity-gradient tensors, cell
/// triangulation, cache operations, point location, serialization. Useful
/// for tracking regressions independent of the figure harnesses.

#include <benchmark/benchmark.h>

#include "algo/isosurface.hpp"
#include "algo/lambda2.hpp"
#include "dms/block_cache.hpp"
#include "grid/cell_locator.hpp"
#include "grid/synthetic.hpp"
#include "math/eigen_sym3.hpp"
#include "sim/engine.hpp"
#include "util/compression.hpp"
#include "util/rng.hpp"

namespace {

using namespace vira;

grid::StructuredBlock make_vortex_block(int n) {
  grid::LambOseenVortex vortex({0.5, 0.5, 0.5}, {0, 0, 1}, 2.0, 0.15);
  grid::StructuredBlock block(n, n, n);
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        block.set_point(i, j, k,
                        {i / double(n - 1), j / double(n - 1), k / double(n - 1)});
      }
    }
  }
  grid::sample_fields(block, vortex, 0.0);
  return block;
}

void BM_EigenvaluesSym3(benchmark::State& state) {
  util::Rng rng(1);
  math::Mat3 m;
  for (int i = 0; i < 3; ++i) {
    for (int j = i; j < 3; ++j) {
      const double v = rng.uniform(-1.0, 1.0);
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::eigenvalues_sym3(m));
  }
}
BENCHMARK(BM_EigenvaluesSym3);

void BM_Lambda2Field(benchmark::State& state) {
  auto block = make_vortex_block(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::compute_lambda2_field(block));
  }
  state.SetItemsProcessed(state.iterations() * block.node_count());
}
BENCHMARK(BM_Lambda2Field)->Arg(8)->Arg(16);

void BM_IsosurfaceExtraction(benchmark::State& state) {
  auto block = make_vortex_block(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    algo::TriangleMesh mesh;
    benchmark::DoNotOptimize(algo::extract_isosurface(block, "density", 1.18f, mesh));
  }
  state.SetItemsProcessed(state.iterations() * block.cell_count());
}
BENCHMARK(BM_IsosurfaceExtraction)->Arg(8)->Arg(16);

void BM_VelocityGradient(benchmark::State& state) {
  auto block = make_vortex_block(12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(block.velocity_gradient(6, 6, 6));
  }
}
BENCHMARK(BM_VelocityGradient);

void BM_CellLocator(benchmark::State& state) {
  auto block = make_vortex_block(16);
  grid::CellLocator locator(block);
  util::Rng rng(2);
  for (auto _ : state) {
    const math::Vec3 p{rng.uniform(0.05, 0.95), rng.uniform(0.05, 0.95),
                       rng.uniform(0.05, 0.95)};
    benchmark::DoNotOptimize(locator.locate(p));
  }
}
BENCHMARK(BM_CellLocator);

void BM_BlockCachePutGet(benchmark::State& state) {
  const std::string policy = state.range(0) == 0 ? "lru" : (state.range(0) == 1 ? "lfu" : "fbr");
  dms::BlockCache cache(64 * 1024, dms::make_policy(policy));
  util::Rng rng(3);
  std::uint64_t id = 0;
  for (auto _ : state) {
    const dms::ItemId item = rng.next_below(128);
    if (!cache.get(item)) {
      util::ByteBuffer payload;
      payload.write<std::uint64_t>(id++);
      std::string pad(1000, 'x');
      payload.write_raw(pad.data(), pad.size());
      cache.put(item, dms::make_blob(std::move(payload)));
    }
  }
}
BENCHMARK(BM_BlockCachePutGet)->Arg(0)->Arg(1)->Arg(2);

void BM_BlockSerialization(benchmark::State& state) {
  auto block = make_vortex_block(12);
  for (auto _ : state) {
    util::ByteBuffer buf;
    block.serialize(buf);
    benchmark::DoNotOptimize(grid::StructuredBlock::deserialize(buf));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(block.serialized_size()));
}
BENCHMARK(BM_BlockSerialization);

void BM_SimEngineEventThroughput(benchmark::State& state) {
  // Raw DES throughput: N processes × M delay hops.
  const int processes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    vira::sim::Engine engine;
    for (int p = 0; p < processes; ++p) {
      engine.spawn([](vira::sim::Engine& e) -> vira::sim::Task<void> {
        for (int hop = 0; hop < 100; ++hop) {
          co_await e.delay(1.0);
        }
      }(engine));
    }
    engine.run();
    benchmark::DoNotOptimize(engine.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * processes * 100);
}
BENCHMARK(BM_SimEngineEventThroughput)->Arg(10)->Arg(100);

void BM_CompressionLz(benchmark::State& state) {
  auto block = make_vortex_block(10);
  util::ByteBuffer buf;
  block.serialize(buf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::compress(buf, util::Codec::kLz));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_CompressionLz);

}  // namespace

BENCHMARK_MAIN();
