/// \file bench_micro_kernels.cpp
/// Scalar vs SIMD extraction-kernel throughput (DESIGN.md §13): the three
/// hot loops underneath the commands — λ2 field computation, active-cell
/// isosurface extraction and batched RK4 pathline integration — each timed
/// against its scalar reference on the same synthetic vortex block.
///
/// Emits BENCH_kernels.json (per kernel: scalar and SIMD cells/s and the
/// speedup) and exits non-zero if the λ2 SIMD path fails the ≥2× shape
/// check. `--smoke` shrinks block sizes and repetitions for CI.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "algo/integrator.hpp"
#include "algo/isosurface.hpp"
#include "algo/lambda2.hpp"
#include "grid/synthetic.hpp"
#include "perf/report.hpp"
#include "simd/simd.hpp"
#include "util/timer.hpp"

namespace {

using namespace vira;

grid::StructuredBlock make_vortex_block(int n) {
  grid::LambOseenVortex vortex({0.5, 0.5, 0.5}, {0, 0, 1}, 2.0, 0.15);
  grid::StructuredBlock block(n, n, n);
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        block.set_point(i, j, k,
                        {i / double(n - 1), j / double(n - 1), k / double(n - 1)});
      }
    }
  }
  grid::sample_fields(block, vortex, 0.0);
  return block;
}

/// Best-of-`reps` wall seconds of `fn` (min damps scheduler noise).
template <typename F>
double best_seconds(F&& fn, int reps) {
  double best = std::numeric_limits<double>::max();
  for (int r = 0; r < reps; ++r) {
    util::WallTimer timer;
    fn();
    best = std::min(best, timer.seconds());
  }
  return best;
}

struct KernelResult {
  std::string kernel;
  std::string unit;
  double scalar_rate = 0.0;  ///< items/s on the scalar reference path
  double simd_rate = 0.0;    ///< items/s on the SIMD path
  double speedup() const { return scalar_rate > 0.0 ? simd_rate / scalar_rate : 0.0; }
};

KernelResult bench_lambda2(int n, int reps) {
  auto block = make_vortex_block(n);
  const auto items = static_cast<double>(block.node_count());
  KernelResult r{"lambda2", "nodes_per_sec"};
  r.scalar_rate = items / best_seconds(
                              [&] {
                                algo::compute_lambda2_field(block, algo::kLambda2Field,
                                                            simd::Kernel::kScalar);
                              },
                              reps);
  r.simd_rate = items / best_seconds(
                            [&] {
                              algo::compute_lambda2_field(block, algo::kLambda2Field,
                                                          simd::Kernel::kSimd);
                            },
                            reps);
  return r;
}

KernelResult bench_isosurface(int n, int reps, float iso) {
  auto block = make_vortex_block(n);
  const auto items = static_cast<double>(block.cell_count());
  KernelResult r{"isosurface", "cells_per_sec"};
  r.scalar_rate = items / best_seconds(
                              [&] {
                                algo::TriangleMesh mesh;
                                algo::extract_isosurface(block, "density", iso, mesh, false,
                                                         simd::Kernel::kScalar);
                              },
                              reps);
  r.simd_rate = items / best_seconds(
                            [&] {
                              algo::TriangleMesh mesh;
                              algo::extract_isosurface(block, "density", iso, mesh, false,
                                                       simd::Kernel::kSimd);
                            },
                            reps);
  return r;
}

KernelResult bench_pathlines(int seeds, int reps) {
  // Bounded analytic field: every seed integrates until t1 or domain exit.
  grid::LambOseenVortex vortex({0.5, 0.5, 0.5}, {0, 0, 1}, 2.0, 0.15);
  const math::Aabb domain{{0, 0, 0}, {1, 1, 1}};
  algo::IntegratorParams params;
  params.max_steps = 400;
  std::vector<math::Vec3> seed_points;
  for (int s = 0; s < seeds; ++s) {
    const double a = 0.15 + 0.7 * s / std::max(1, seeds - 1);
    seed_points.push_back({a, 0.35 + 0.3 * (s % 3) / 2.0, 0.5});
  }

  // Items = accepted integration steps, counted once on a reference run.
  algo::AnalyticProvider count_provider(vortex, domain);
  std::size_t steps = 0;
  for (const auto& seed : seed_points) {
    steps += algo::integrate_pathline(count_provider, seed, 0.0, 2.0, params).size();
  }
  const auto items = static_cast<double>(steps);

  KernelResult r{"rk4_pathlines", "steps_per_sec"};
  r.scalar_rate = items / best_seconds(
                              [&] {
                                algo::AnalyticProvider provider(vortex, domain);
                                for (const auto& seed : seed_points) {
                                  algo::integrate_pathline(provider, seed, 0.0, 2.0, params);
                                }
                              },
                              reps);
  r.simd_rate = items / best_seconds(
                            [&] {
                              algo::AnalyticProvider provider(vortex, domain);
                              algo::integrate_pathlines_batch(provider, seed_points, 0.0, 2.0,
                                                              params);
                            },
                            reps);
  return r;
}

void write_json(const std::vector<KernelResult>& results, const char* path) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"micro_kernels\",\n  \"simd_level\": \""
      << simd::level_name(simd::active_level()) << "\",\n  \"kernels\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    {\"kernel\": \"%s\", \"unit\": \"%s\", \"scalar\": %.0f, "
                  "\"simd\": %.0f, \"speedup\": %.2f}%s\n",
                  r.kernel.c_str(), r.unit.c_str(), r.scalar_rate, r.simd_rate, r.speedup(),
                  i + 1 < results.size() ? "," : "");
    out << line;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int n = smoke ? 32 : 64;
  const int reps = smoke ? 3 : 7;

  std::vector<KernelResult> results;
  results.push_back(bench_lambda2(n, reps));
  results.push_back(bench_isosurface(n, reps, 1.18f));
  results.push_back(bench_pathlines(smoke ? 16 : 64, reps));

  perf::print_banner("Extraction micro kernels",
                     "scalar vs SIMD throughput (vira::simd dispatch)");
  std::printf("\n  simd level: %s\n\n", simd::level_name(simd::active_level()));
  std::printf("  %-16s %-14s %14s %14s %9s\n", "kernel", "unit", "scalar", "simd", "speedup");
  for (const auto& r : results) {
    std::printf("  %-16s %-14s %14.3e %14.3e %8.2fx\n", r.kernel.c_str(), r.unit.c_str(),
                r.scalar_rate, r.simd_rate, r.speedup());
  }

  write_json(results, "BENCH_kernels.json");
  std::printf("\n  wrote BENCH_kernels.json\n");
  perf::print_expectation("lambda2 SIMD >= 2x scalar; all SIMD paths >= ~scalar");

  const bool ok = results[0].speedup() >= 2.0;
  std::printf("\n  shape check: %s (lambda2 %.2fx)\n", ok ? "PASS" : "FAIL",
              results[0].speedup());
  return ok ? 0 : 1;
}
