/// \file bench_compression.cpp
/// Ablation for the paper's Sec. 4.3 rejection: "Data compression has been
/// considered, too, but has been found ineffective due to long runtimes
/// and low compression rates compared to transmission time."
///
/// Compresses the real serialized Engine blocks with RLE and LZ77, then
/// compares (compress + transmit-compressed + decompress) against plain
/// transmission on the calibrated cluster's interconnects. Verdict printed
/// per link.

#include <cstdio>

#include "bench_common.hpp"
#include "util/compression.hpp"
#include "util/timer.hpp"

int main() {
  using namespace vira;
  using namespace vira::bench;

  perf::ensure_engine();
  grid::DatasetReader reader(perf::engine_dir());
  const auto cluster = calibrated_cluster();

  perf::print_banner("Ablation (Sec. 4.3)", "Block compression vs transmission time");

  // Gather real block payloads of step 0.
  std::vector<util::ByteBuffer> payloads;
  std::uint64_t raw_bytes = 0;
  for (int b = 0; b < reader.meta().block_count(); ++b) {
    payloads.push_back(reader.read_block_bytes(0, b));
    raw_bytes += payloads.back().size();
  }

  struct CodecResult {
    const char* name;
    util::Codec codec;
    std::uint64_t compressed_bytes = 0;
    double compress_seconds = 0.0;
    double decompress_seconds = 0.0;
  };
  std::vector<CodecResult> results{{"rle", util::Codec::kRle, 0, 0, 0},
                                   {"lz77", util::Codec::kLz, 0, 0, 0}};

  for (auto& result : results) {
    for (const auto& payload : payloads) {
      const double t0 = util::thread_cpu_seconds();
      const auto compressed = util::compress(payload, result.codec);
      result.compress_seconds += util::thread_cpu_seconds() - t0;
      result.compressed_bytes += compressed.size();
      const double t1 = util::thread_cpu_seconds();
      const auto restored = util::decompress(compressed.data(), compressed.size());
      result.decompress_seconds += util::thread_cpu_seconds() - t1;
      if (!restored || restored->size() != payload.size()) {
        std::fprintf(stderr, "codec %s corrupted a block!\n", result.name);
        return 1;
      }
    }
  }

  std::printf("\n  %u blocks, %.2f MB raw (Engine step 0)\n",
              reader.meta().block_count(), raw_bytes / 1048576.0);
  std::printf("  %-6s %-10s %-14s %-14s\n", "codec", "ratio", "compress MB/s", "decompress MB/s");
  for (const auto& result : results) {
    std::printf("  %-6s %-10.3f %-14.1f %-14.1f\n", result.name,
                util::compression_ratio(raw_bytes, result.compressed_bytes),
                raw_bytes / 1048576.0 / std::max(1e-9, result.compress_seconds),
                raw_bytes / 1048576.0 / std::max(1e-9, result.decompress_seconds));
  }

  // Verdict per interconnect: does compressing pay off on the calibrated
  // virtual cluster's links? Compress/decompress run on virtual CPUs
  // (cpu_scale slower than this host).
  std::printf("\n  link verdicts (virtual cluster, cpu_scale %.0fx):\n", cluster.cpu_scale);
  bool any_win = false;
  bool plain_wins_peer = false;
  for (const auto& result : results) {
    for (const auto& [label, bandwidth] :
         {std::pair<const char*, double>{"peer-interconnect", cluster.intra_bandwidth},
          std::pair<const char*, double>{"client-tcp-link", cluster.client_bandwidth}}) {
      const double plain = static_cast<double>(raw_bytes) / bandwidth;
      const double packed = (result.compress_seconds + result.decompress_seconds) *
                                cluster.cpu_scale +
                            static_cast<double>(result.compressed_bytes) / bandwidth;
      const bool wins = packed < plain;
      any_win |= wins;
      if (!wins && std::string(label) == "peer-interconnect") {
        plain_wins_peer = true;
      }
      std::printf("    %-5s over %-18s plain %7.2fs   compressed %7.2fs   -> %s\n",
                  result.name, label, plain, packed, wins ? "compress" : "send raw");
    }
  }

  perf::print_expectation(
      "compression rejected for peer transfer: long runtimes and low compression "
      "rates compared to transmission time");
  // The paper's context is the cluster interconnect: raw transfer must win
  // there (the finding we reproduce). Slow WAN-class links may differ.
  const bool ok = plain_wins_peer;
  std::printf("\n  shape check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
