/// \file bench_cache_policies.cpp
/// Ablation for the paper's Sec. 4.2 claim: "strategies based on frequency,
/// foremost FBR, turned out to produce less cache misses" on CFD request
/// traces. Replays an exploratory-session block-request trace — repeated
/// parameter studies on the current time step, interleaved with occasional
/// time-step advances — through the real BlockCache under LRU / LFU / FBR.

#include <cstdio>

#include "dms/block_cache.hpp"
#include "perf/report.hpp"
#include "perf/testbed.hpp"
#include "util/rng.hpp"

namespace {

using vira::dms::ItemId;

/// Exploratory session over a 23-block dataset: the user re-runs commands
/// on the same step (temporal locality), revisits a favourite region
/// (frequency skew), and sometimes advances time (sequential sweeps of new
/// blocks).
std::vector<ItemId> make_session_trace(int blocks_per_step, int steps, std::uint64_t seed) {
  vira::util::Rng rng(seed);
  std::vector<ItemId> trace;
  const int home_step = 0;  // the step the parameter study focuses on
  auto item = [&](int s, int b) {
    return static_cast<ItemId>(s) * 1000ull + static_cast<ItemId>(b);
  };
  for (int round = 0; round < 160; ++round) {
    const double dice = rng.next_double();
    if (dice < 0.55) {
      // Parameter study: full sweep of the home step (the hot working set
      // "frequently reused as input to different extraction algorithms").
      for (int b = 0; b < blocks_per_step; ++b) {
        trace.push_back(item(home_step, b));
      }
    } else if (dice < 0.80) {
      // Region-of-interest probe on the home step.
      for (int b = 0; b < 6; ++b) {
        trace.push_back(item(home_step, (b * 3) % blocks_per_step));
      }
    } else {
      // Transient time-scrub through another level. Multi-pass commands
      // touch each block several times back to back (field pass, gradient
      // pass, triangulation) — re-references inside the burst are pure
      // short-term locality. LRU is flushed by the sweep; LFU mistakes the
      // burst for popularity; FBR's new-section factoring counts each
      // burst once.
      const int scrub = 1 + static_cast<int>(rng.next_below(steps - 1));
      for (int b = 0; b < blocks_per_step; ++b) {
        for (int touch = 0; touch < 3; ++touch) {
          trace.push_back(item(scrub, b));
        }
      }
    }
  }
  return trace;
}

}  // namespace

int main() {
  using namespace vira;

  perf::print_banner("Ablation (Sec. 4.2)",
                     "Cache replacement policies on a CFD exploration trace");

  const int blocks = 23;
  const int steps = 8;
  const std::uint64_t block_bytes = 1;  // uniform block size: capacity = block count
  const std::uint64_t capacity = 30;    // ~1.3 steps resident

  double miss_rate_fbr = 1.0;
  double miss_rate_lru = 0.0;
  double miss_rate_lfu = 0.0;

  std::printf("\n%-8s %-12s %-12s %-12s\n", "policy", "requests", "misses", "miss rate");
  for (const std::string policy : {"lru", "lfu", "fbr"}) {
    std::uint64_t misses = 0;
    std::uint64_t requests = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      dms::BlockCache cache(capacity * block_bytes, dms::make_policy(policy));
      for (const auto item : make_session_trace(blocks, steps, seed)) {
        ++requests;
        if (!cache.get(item)) {
          ++misses;
          vira::util::ByteBuffer payload;
          payload.write<std::uint8_t>(1);
          cache.put(item, dms::make_blob(std::move(payload)));
        }
      }
    }
    const double rate = static_cast<double>(misses) / static_cast<double>(requests);
    std::printf("%-8s %-12llu %-12llu %-12.4f\n", policy.c_str(),
                static_cast<unsigned long long>(requests),
                static_cast<unsigned long long>(misses), rate);
    if (policy == "lru") {
      miss_rate_lru = rate;
    } else if (policy == "lfu") {
      miss_rate_lfu = rate;
    } else {
      miss_rate_fbr = rate;
    }
  }

  perf::print_expectation("frequency-based policies, foremost FBR, produce fewer misses");
  const bool ok = miss_rate_fbr < miss_rate_lru && miss_rate_fbr <= miss_rate_lfu + 1e-9;
  std::printf("\n  shape check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
