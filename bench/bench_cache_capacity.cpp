/// \file bench_cache_capacity.cpp
/// Ablation for the classification's *space requirement* axis (paper
/// Fig. 1: "Reducing Main Memory Consumption / Out of Core Schemes") and
/// the two-tier design of Sec. 4.2: how does the primary-cache budget
/// change the hit rate of an exploration session, and how much does the
/// secondary (disk) tier recover once main memory is too small?
///
/// Replays a realistic session (repeated parameter studies + time scrubs)
/// through the real TwoTierCache at several L1 budgets, with and without
/// the L2 tier.

#include <cstdio>
#include <filesystem>

#include "dms/two_tier_cache.hpp"
#include "perf/report.hpp"
#include "perf/testbed.hpp"
#include "util/rng.hpp"

namespace {

using vira::dms::ItemId;

/// Session trace over a 23-block × 8-step dataset (same structure as
/// bench_cache_policies but fixed policy, varying capacity).
std::vector<ItemId> make_trace(std::uint64_t seed) {
  vira::util::Rng rng(seed);
  std::vector<ItemId> trace;
  for (int round = 0; round < 120; ++round) {
    const double dice = rng.next_double();
    const int step = dice < 0.7 ? 0 : 1 + static_cast<int>(rng.next_below(7));
    for (int b = 0; b < 23; ++b) {
      trace.push_back(static_cast<ItemId>(step) * 1000 + static_cast<ItemId>(b));
    }
  }
  return trace;
}

struct Outcome {
  double hit_rate = 0.0;
  std::uint64_t l2_hits = 0;
};

Outcome run(double l1_step_fraction, bool with_l2, const std::string& tag) {
  const std::uint64_t block_bytes = 1000;
  vira::dms::TwoTierCache::Config config;
  config.l1_capacity_bytes =
      static_cast<std::uint64_t>(l1_step_fraction * 23.0 * block_bytes);
  config.policy = "fbr";
  if (with_l2) {
    config.l2_directory =
        (std::filesystem::temp_directory_path() / ("vira_capacity_" + tag)).string();
    config.l2_capacity_bytes = 23ull * 8ull * block_bytes;  // the whole dataset fits on disk
  }
  auto stats = std::make_shared<vira::dms::DmsStatistics>();
  vira::dms::TwoTierCache cache(config, stats);

  for (const auto item : make_trace(11)) {
    if (!cache.get(item)) {
      vira::util::ByteBuffer payload;
      std::string pad(block_bytes - 8, 'x');
      payload.write<std::uint64_t>(item);
      payload.write_raw(pad.data(), pad.size());
      cache.put(item, vira::dms::make_blob(std::move(payload)));
    }
  }
  const auto counters = stats->snapshot();
  return {counters.hit_rate(), counters.l2_hits};
}

}  // namespace

int main() {
  using namespace vira;

  perf::print_banner("Ablation (Fig. 1 / Sec. 4.2)",
                     "Primary-cache budget vs hit rate; secondary-tier recovery");

  std::printf("\n  %-22s %-16s %-16s %-12s\n", "L1 budget (steps)", "hit rate (L1)",
              "hit rate (L1+L2)", "L2 hits");
  bool ok = true;
  double previous_rate = -1.0;
  for (const double fraction : {0.25, 0.5, 1.0, 1.5, 3.0}) {
    const auto mem_only = run(fraction, false, "m" + std::to_string(int(fraction * 100)));
    const auto two_tier = run(fraction, true, "t" + std::to_string(int(fraction * 100)));
    std::printf("  %-22.2f %-16.3f %-16.3f %-12llu\n", fraction, mem_only.hit_rate,
                two_tier.hit_rate, static_cast<unsigned long long>(two_tier.l2_hits));
    ok &= two_tier.hit_rate >= mem_only.hit_rate - 1e-9;
    ok &= mem_only.hit_rate >= previous_rate - 0.02;  // monotone-ish in budget
    previous_rate = mem_only.hit_rate;
  }

  perf::print_expectation(
      "more main memory, fewer misses (the paper's speed/memory trade-off); the "
      "optional secondary cache on local drives recovers hits lost to small L1 budgets");
  std::printf("\n  shape check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
