/// \file bench_fig10_propfan_vortex.cpp
/// Figure 10 — Propfan, λ2 vortex extraction, total runtime for
/// SimpleVortex / StreamedVortex / VortexDataMan.

#include "bench_common.hpp"

int main() {
  using namespace vira;
  using namespace vira::bench;

  perf::ensure_propfan();
  grid::DatasetReader reader(perf::propfan_dir());
  const auto threshold = static_cast<float>(perf::lambda2_threshold(reader));
  const auto cluster = calibrated_cluster();

  const auto profile = perf::profile_vortex(reader, 0, threshold, 256);

  perf::print_banner("Figure 10", "Propfan, Lambda-2, total runtime [s]");
  std::vector<perf::Series> series;
  series.push_back(sweep_extraction("VortexDataMan", profile, cluster, dataman_config));
  series.push_back(sweep_extraction("StreamedVortex", profile, cluster, streaming_config));
  series.push_back(sweep_extraction("SimpleVortex", profile, cluster, simple_config));
  perf::print_worker_series(series, "total runtime, s");

  perf::print_expectation(
      "longest runtimes of all commands (up to ~900 s at 1 worker in the paper); "
      "Simple >> streamed >= DataMan at every worker count");

  bool ok = true;
  for (std::size_t r = 0; r < kWorkerSweep.size(); ++r) {
    ok &= series[2].points[r].seconds > series[0].points[r].seconds;
    ok &= series[1].points[r].seconds >= series[0].points[r].seconds * 0.97;
  }
  std::printf("\n  shape check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
