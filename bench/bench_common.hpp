#pragma once

/// \file bench_common.hpp
/// Shared plumbing for the figure benches: dataset setup, profile caching
/// and the worker sweep used by every runtime figure.

#include <functional>
#include <vector>

#include "perf/replay.hpp"
#include "perf/report.hpp"
#include "perf/testbed.hpp"

namespace vira::bench {

inline const std::vector<int> kWorkerSweep{1, 2, 4, 8, 16};

/// Runs an extraction replay across the worker sweep and returns the series.
inline perf::Series sweep_extraction(const std::string& label,
                                     const perf::ExtractionProfile& profile,
                                     const perf::ClusterModel& cluster,
                                     const std::function<perf::ReplayConfig(int)>& make_config,
                                     bool use_latency = false) {
  perf::Series series;
  series.label = label;
  for (const int workers : kWorkerSweep) {
    const auto result = perf::replay_extraction(profile, cluster, make_config(workers));
    series.points.push_back({workers, use_latency ? result.latency : result.total_runtime});
  }
  return series;
}

inline perf::ReplayConfig simple_config(int workers) {
  perf::ReplayConfig config;
  config.workers = workers;
  config.use_dms = false;
  config.warm_cache = false;
  return config;
}

inline perf::ReplayConfig dataman_config(int workers) {
  perf::ReplayConfig config;
  config.workers = workers;
  config.use_dms = true;
  config.warm_cache = true;  // Sec. 7: warm-cache measurements
  return config;
}

inline perf::ReplayConfig streaming_config(int workers) {
  perf::ReplayConfig config = dataman_config(workers);
  config.streaming = true;
  return config;
}

/// The calibrated cluster, anchored on the Engine isosurface profile.
inline perf::ClusterModel calibrated_cluster() {
  perf::ensure_engine();
  grid::DatasetReader reader(perf::engine_dir());
  const auto iso = perf::density_iso_mid(reader);
  const auto profile = perf::profile_iso(reader, 0, "density", static_cast<float>(iso));
  return perf::calibrate_cluster(profile, 17.0);
}

}  // namespace vira::bench
