/// \file bench_pipeline.cpp
/// Pipelined block executor ablation (DESIGN.md "Execution engines"):
/// serial load loop (pipeline_window = 1) vs. overlapped load→decode→
/// compute→send at window W ∈ {1, 2, 4, 8}, measured as real vortex.dataman (λ2)
/// extractions over a Backend whose storage is artificially slowed so the
/// load phase matters. Each run starts cold (caches dropped).
///
/// Emits BENCH_pipeline.json (one record per window: wall seconds, the
/// Fig. 15 compute/read/send split, read-stall fraction) and exits
/// non-zero if the shape check fails: pipelined (W=4) wall time must be
/// strictly below serial (W=1), with the phase breakdown still summing to
/// wall time.
///
/// `--smoke` shrinks the storage delay and sweeps only W ∈ {1, 4} — the
/// CI smoke run.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "algo/cfd_command.hpp"
#include "core/backend.hpp"
#include "perf/report.hpp"
#include "perf/testbed.hpp"
#include "viz/session.hpp"

namespace {

using namespace vira;

struct WindowResult {
  int window = 0;
  bool pipelined = false;  ///< window > 1 and the worker pool was enabled
  double wall = 0.0;       ///< server-side seconds, submission → completion
  double compute = 0.0;
  double read = 0.0;  ///< pipelined runs: stall-on-load time only
  double send = 0.0;
  double phase_sum() const { return compute + read + send; }
  double read_stall_fraction() const {
    const double sum = phase_sum();
    return sum > 0.0 ? read / sum : 0.0;
  }
};

/// One cold-cache vortex.dataman (λ2) extraction at the given window.
WindowResult run_window(core::Backend& backend, double iso, int window) {
  backend.clear_caches();
  viz::ExtractionSession session(backend.connect());

  util::ParamList params;
  params.set("dataset", perf::engine_dir());
  params.set("field", "density");
  params.set_double("iso", iso);
  params.set_int("workers", 1);
  params.set_int("pipeline_window", window);

  auto stream = session.submit("vortex.dataman", params);
  WindowResult result;
  result.window = window;
  result.pipelined = window > 1;
  while (true) {
    auto packet = stream->next(std::chrono::milliseconds(120000));
    if (!packet.has_value()) {
      std::fprintf(stderr, "window %d: stream stalled\n", window);
      std::exit(1);
    }
    if (packet->kind == viz::Packet::Kind::kComplete) {
      if (!packet->stats.success) {
        std::fprintf(stderr, "window %d: command failed: %s\n", window,
                     packet->stats.error.c_str());
        std::exit(1);
      }
      result.wall = packet->stats.total_runtime;
      const auto& phases = packet->stats.phase_seconds;
      const auto phase = [&](const char* name) {
        const auto it = phases.find(name);
        return it == phases.end() ? 0.0 : it->second;
      };
      result.compute = phase(core::kPhaseCompute);
      result.read = phase(core::kPhaseRead);
      result.send = phase(core::kPhaseSend);
      return result;
    }
  }
}

void write_json(const std::vector<WindowResult>& results, const char* path) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"pipeline\",\n  \"command\": \"vortex.dataman\",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    {\"window\": %d, \"pipelined\": %s, \"wall_s\": %.6f, "
                  "\"compute_s\": %.6f, \"read_s\": %.6f, \"send_s\": %.6f, "
                  "\"read_stall_fraction\": %.4f}%s\n",
                  r.window, r.pipelined ? "true" : "false", r.wall, r.compute, r.read, r.send,
                  r.read_stall_fraction(), i + 1 < results.size() ? "," : "");
    out << line;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  algo::register_builtin_commands();
  perf::ensure_engine();
  grid::DatasetReader reader(perf::engine_dir());
  const double iso = perf::density_iso_mid(reader);

  core::BackendConfig config;
  config.workers = 1;  // one worker: the window is the only variable
  config.worker.pipeline_threads = 4;  // W=2 is window-bound, W>=4 pool-bound
  // Stretch block loads so the read phase is worth hiding (the lever the
  // I/O-sensitive benches share); smoke keeps it short for CI.
  config.read_delay_us_per_mb = smoke ? 4e5 : 1.2e6;
  core::Backend backend(config);

  const std::vector<int> windows = smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
  std::vector<WindowResult> results;
  for (const int window : windows) {
    results.push_back(run_window(backend, iso, window));
  }

  perf::print_banner("Pipelined block executor",
                     "vortex.dataman wall time and read-stall share vs. pipeline window");
  std::printf("\n  %-8s %-10s %9s %9s %9s %9s %8s\n", "window", "mode", "wall, s", "compute",
              "read", "send", "stall%");
  for (const auto& r : results) {
    std::printf("  %-8d %-10s %9.3f %9.3f %9.3f %9.3f %7.1f%%\n", r.window,
                r.pipelined ? "pipelined" : "serial", r.wall, r.compute, r.read, r.send,
                100.0 * r.read_stall_fraction());
  }

  write_json(results, "BENCH_pipeline.json");
  std::printf("\n  wrote BENCH_pipeline.json\n");
  perf::print_expectation("W=4 wall strictly below W=1; read share shrinks with W; "
                          "compute+read+send ≈ wall");

  const auto* serial = &results.front();
  const WindowResult* pipelined = nullptr;
  for (const auto& r : results) {
    if (r.window == 4) {
      pipelined = &r;
    }
  }

  bool ok = pipelined != nullptr;
  // Loads are hidden, not moved: stall time and stall share must shrink.
  ok = ok && pipelined->read < serial->read;
  ok = ok && pipelined->read_stall_fraction() < serial->read_stall_fraction();
  // The tentpole claim — overlap strictly beats the serial loop — holds in
  // the I/O-bound regime the bench sets up. Under an instrumented build
  // (tsan/asan) compute inflates past the storage delay and wall time is
  // compute-bound either way, so only the stall checks above apply.
  const bool read_bound = serial->read > 0.5 * serial->phase_sum();
  ok = ok && (!read_bound || pipelined->wall < serial->wall);
  // Fig. 15 semantics: per-worker phases still account the wall time.
  for (const auto& r : results) {
    ok = ok && r.phase_sum() > 0.5 * r.wall && r.phase_sum() < 1.1 * r.wall;
  }
  std::printf("\n  shape check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
