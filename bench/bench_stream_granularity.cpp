/// \file bench_stream_granularity.cpp
/// Ablation for the streaming design choice the paper leaves to the user:
/// "Whenever a user-specified number of triangles is computed, these
/// fragments ... are directly streamed" (Sec. 6.3) and "it is therefore
/// important to find a good compromise between low latency and
/// interactivity requirements" (Sec. 5.2).
///
/// Sweeps the fragment granularity (active cells per streamed fragment)
/// for the Engine ViewerIso command and reports first-result latency vs
/// total-runtime overhead: small fragments minimize latency but flood the
/// client link; large fragments approach the non-streamed behaviour.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace vira;
  using namespace vira::bench;

  perf::ensure_engine();
  grid::DatasetReader reader(perf::engine_dir());
  const auto iso = static_cast<float>(perf::density_iso_mid(reader));
  const auto cluster = calibrated_cluster();

  perf::print_banner("Ablation (Sec. 5.2 / 6.3)",
                     "Streaming fragment granularity: latency vs overhead (Engine, 4 workers)");

  // Non-streamed reference.
  const auto reference_profile = perf::profile_iso(reader, 0, "density", iso, 0);
  perf::ReplayConfig reference_config;
  reference_config.workers = 4;
  const auto reference = perf::replay_extraction(reference_profile, cluster, reference_config);

  std::printf("\n  %-14s %-12s %-12s %-14s %-10s\n", "cells/frag", "latency[s]", "runtime[s]",
              "overhead[%]", "fragments");
  std::printf("  %-14s %-12.3f %-12.3f %-14s %-10s\n", "(no stream)", reference.latency,
              reference.total_runtime, "-", "1");

  // Profile ONCE (at the finest granularity) and derive the coarser
  // fragment counts from the measured active-cell counts — re-profiling per
  // sweep point would let host timing noise into the comparison.
  const int finest = 16;
  const auto base_profile = perf::profile_viewer_iso(reader, 0, "density", iso, finest);

  double latency_small = 0.0;
  double latency_large = 0.0;
  double overhead_small = 0.0;
  double overhead_large = 0.0;
  const int granularities[] = {16, 64, 256, 1024, 4096};
  for (const int cells : granularities) {
    auto profile = base_profile;
    for (auto& block : profile.blocks) {
      if (block.stream_fragments > 0) {
        const auto active_estimate =
            static_cast<std::int64_t>(block.stream_fragments) * finest;
        block.stream_fragments =
            static_cast<int>(std::max<std::int64_t>(1, active_estimate / cells));
      }
    }
    perf::ReplayConfig config;
    config.workers = 4;
    config.streaming = true;
    const auto result = perf::replay_extraction(profile, cluster, config);
    const double overhead =
        100.0 * (result.total_runtime - reference.total_runtime) / reference.total_runtime;
    std::printf("  %-14d %-12.3f %-12.3f %-14.1f %-10llu\n", cells, result.latency,
                result.total_runtime, overhead,
                static_cast<unsigned long long>(result.fragments));
    if (cells == granularities[0]) {
      latency_small = result.latency;
      overhead_small = overhead;
    }
    if (cells == granularities[4]) {
      latency_large = result.latency;
      overhead_large = overhead;
    }
  }

  perf::print_expectation(
      "finer fragments -> lower latency but higher total-runtime overhead; the "
      "compromise is workload-dependent, which is why it is a user parameter");

  const bool ok = latency_small <= latency_large + 1e-9 && overhead_small >= overhead_large;
  std::printf("\n  shape check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
