/// \file bench_table1_datasets.cpp
/// Table 1 — "Multi-block test data sets": time steps, blocks, size on
/// disk for Engine and Propfan. Block and time-step counts must match the
/// paper exactly; the on-disk size is resolution-scaled (DESIGN.md).

#include <cstdio>

#include "perf/report.hpp"
#include "perf/testbed.hpp"
#include "util/string_util.hpp"

int main() {
  using namespace vira;

  perf::print_banner("Table 1", "Multi-block test data sets");
  const auto engine = perf::ensure_engine();
  const auto propfan = perf::ensure_propfan();

  std::printf("\n%-18s %-14s %-14s\n", "", "Engine", "Propfan");
  std::printf("%-18s %-14d %-14d\n", "# of time steps", engine.timestep_count(),
              propfan.timestep_count());
  std::printf("%-18s %-14d %-14d\n", "# of blocks", engine.block_count(),
              propfan.block_count());
  std::printf("%-18s %-14s %-14s\n", "Size on disk",
              util::human_bytes(engine.total_bytes()).c_str(),
              util::human_bytes(propfan.total_bytes()).c_str());

  std::printf("\n");
  perf::print_expectation("63 steps / 23 blocks / 1.12 GB and 50 steps / 144 blocks / 19.5 GB");
  std::printf(
      "  note: step and block counts reproduce the paper exactly; node\n"
      "  resolution (and therefore bytes) is scaled down — the original\n"
      "  RWTH/DLR data is proprietary (see DESIGN.md, substitutions).\n");

  const bool counts_ok = engine.timestep_count() == 63 && engine.block_count() == 23 &&
                         propfan.timestep_count() == 50 && propfan.block_count() == 144;
  std::printf("\n  structure check: %s\n", counts_ok ? "PASS" : "FAIL");
  return counts_ok ? 0 : 1;
}
