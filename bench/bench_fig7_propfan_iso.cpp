/// \file bench_fig7_propfan_iso.cpp
/// Figure 7 — Propfan, isosurface extraction, total runtime over
/// {1,2,4,8,16} workers for SimpleIso / ViewerIso / IsoDataMan.

#include "bench_common.hpp"

int main() {
  using namespace vira;
  using namespace vira::bench;

  perf::ensure_propfan();
  grid::DatasetReader reader(perf::propfan_dir());
  const auto iso = static_cast<float>(perf::density_iso_mid(reader));
  const auto cluster = calibrated_cluster();  // same machine model as Fig. 6

  const auto iso_profile = perf::profile_iso(reader, 0, "density", iso, 256);
  const auto viewer_profile = perf::profile_viewer_iso(reader, 0, "density", iso, 256);

  perf::print_banner("Figure 7", "Propfan, Isosurface, total runtime [s]");
  std::vector<perf::Series> series;
  series.push_back(sweep_extraction("IsoDataMan", iso_profile, cluster, dataman_config));
  series.push_back(sweep_extraction("ViewerIso", viewer_profile, cluster, streaming_config));
  series.push_back(sweep_extraction("SimpleIso", iso_profile, cluster, simple_config));
  perf::print_worker_series(series, "total runtime, s");

  perf::print_expectation(
      "same ordering as the Engine but an order of magnitude longer (144 blocks, "
      "bigger data): Simple >> streaming >= DataMan");

  bool ok = true;
  for (std::size_t r = 0; r < kWorkerSweep.size(); ++r) {
    ok &= series[2].points[r].seconds > series[0].points[r].seconds;
    ok &= series[1].points[r].seconds >= series[0].points[r].seconds;
  }
  std::printf("\n  shape check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
