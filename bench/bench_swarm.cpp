/// \file bench_swarm.cpp
/// Client-swarm stress of the vira::net epoll frontend (ISSUE 7 tentpole):
/// N concurrent visualization clients connect over real TCP sockets with
/// the hello/compression negotiation, then fire a mixed workload —
/// isosurfaces, λ2 vortex extraction, pathline integration, and exact
/// repeats that land in the result cache — at an in-process backend whose
/// single event-loop thread owns every socket.
///
/// Measures connect latency, per-request latency (p50/p99), streamed
/// throughput, and the compressed-vs-raw wire volume; emits
/// BENCH_swarm.json and exits non-zero if the shape check fails: every
/// client must connect and every request complete (zero failures), the
/// loop must drop and reap nothing (no link got wedged behind another),
/// and the negotiated compression path must actually have carried bytes.
///
/// `--smoke` shrinks the swarm — the CI smoke run. `--net blocking` runs
/// the same swarm against the seed's thread-per-connection fallback for
/// comparison (compression is then not negotiated and not asserted).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "algo/cfd_command.hpp"
#include "core/backend.hpp"
#include "grid/dataset_io.hpp"
#include "grid/synthetic.hpp"
#include "obs/metrics.hpp"
#include "perf/report.hpp"
#include "viz/session.hpp"

namespace {

using namespace vira;

/// Small synthetic Engine fixture (the CLI's recipe): requests take
/// milliseconds, so the bench stresses the frontend, not the extractors.
std::string ensure_swarm_dataset() {
  namespace fs = std::filesystem;
  const std::string dir = (fs::temp_directory_path() / "vira_swarm_ds").string();
  if (!fs::exists(fs::path(dir) / "dataset.vmi")) {
    fs::remove_all(dir);
    grid::GeneratorConfig config;
    config.directory = dir;
    config.timesteps = 2;
    config.ni = 9;
    config.nj = 7;
    config.nk = 6;
    grid::generate_engine(config);
  }
  return dir;
}

double density_iso_mid(const std::string& dir) {
  grid::DatasetReader reader(dir);
  float lo = 1e30f;
  float hi = -1e30f;
  for (int b = 0; b < reader.meta().block_count(); ++b) {
    const auto [blo, bhi] = reader.read_block(0, b).scalar_range("density");
    lo = std::min(lo, blo);
    hi = std::max(hi, bhi);
  }
  return 0.5 * (static_cast<double>(lo) + static_cast<double>(hi));
}

struct SwarmStats {
  std::vector<double> connect_ms;
  std::vector<double> request_ms;
  std::vector<double> server_ms;  ///< CommandStats::total_runtime (queue + exec)
  std::vector<double> exec_ms;    ///< sum of CommandStats::phase_seconds
  std::uint64_t result_bytes = 0;
  std::uint64_t cache_hits = 0;
  int failures = 0;

  void merge(const SwarmStats& other) {
    connect_ms.insert(connect_ms.end(), other.connect_ms.begin(), other.connect_ms.end());
    request_ms.insert(request_ms.end(), other.request_ms.begin(), other.request_ms.end());
    server_ms.insert(server_ms.end(), other.server_ms.begin(), other.server_ms.end());
    exec_ms.insert(exec_ms.end(), other.exec_ms.begin(), other.exec_ms.end());
    result_bytes += other.result_bytes;
    cache_hits += other.cache_hits;
    failures += other.failures;
  }
};

double percentile(std::vector<double> values, double q) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(q * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

/// The per-client request mix. Request r picks slot r % 4 — every client
/// walks the same sequence, so the swarm's traffic is what the paper's
/// premise describes: a handful of distinct extractions submitted by many
/// users. The first completion of each slot primes the result cache; the
/// bulk of the swarm replays from it (slot 3 repeats slot 0 exactly, so
/// even a 1-request-per-client run produces hits).
util::ParamList make_params(const std::string& dataset, double iso, int slot) {
  util::ParamList params;
  params.set("dataset", dataset);
  params.set_int("workers", 1);
  switch (slot) {
    case 1:  // λ2 vortex regions
      params.set_double("iso", -0.5);
      break;
    case 2:  // pathline integration across both steps
      params.set_doubles("seeds", {0.012, 0.004, 0.06});
      params.set_int("step0", 0);
      params.set_int("step1", 1);
      params.set_double("tolerance", 1e-4);
      break;
    default:  // isosurface (slots 0 and 3: identical → cache fodder)
      params.set("field", "density");
      params.set_double("iso", iso);
      break;
  }
  return params;
}

const char* slot_command(int slot) {
  switch (slot) {
    case 1:
      return "vortex.dataman";
    case 2:
      return "pathlines.dataman";
    default:
      return "iso.viewer";
  }
}

void write_json(const char* path, int clients, int requests, const char* frontend,
                const SwarmStats& stats, double wall_seconds, std::uint64_t bytes_sent,
                std::uint64_t compressed_bytes, std::uint64_t compressed_raw_bytes,
                std::uint64_t dropped, std::uint64_t reaped) {
  std::ofstream out(path);
  char line[1024];
  std::snprintf(
      line, sizeof(line),
      "{\n"
      "  \"bench\": \"swarm\",\n"
      "  \"frontend\": \"%s\",\n"
      "  \"clients\": %d,\n"
      "  \"requests_per_client\": %d,\n"
      "  \"failures\": %d,\n"
      "  \"connect_p50_ms\": %.3f,\n"
      "  \"connect_p99_ms\": %.3f,\n"
      "  \"request_p50_ms\": %.3f,\n"
      "  \"request_p99_ms\": %.3f,\n"
      "  \"streamed_mb\": %.3f,\n"
      "  \"streamed_mb_per_s\": %.3f,\n"
      "  \"cache_hits\": %llu,\n"
      "  \"wire_bytes_sent\": %llu,\n"
      "  \"wire_compressed_bytes\": %llu,\n"
      "  \"wire_compressed_raw_bytes\": %llu,\n"
      "  \"backpressure_drops\": %llu,\n"
      "  \"links_reaped\": %llu\n"
      "}\n",
      frontend, clients, requests, stats.failures, percentile(stats.connect_ms, 0.50),
      percentile(stats.connect_ms, 0.99), percentile(stats.request_ms, 0.50),
      percentile(stats.request_ms, 0.99),
      static_cast<double>(stats.result_bytes) / (1024.0 * 1024.0),
      static_cast<double>(stats.result_bytes) / (1024.0 * 1024.0) / wall_seconds,
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(bytes_sent),
      static_cast<unsigned long long>(compressed_bytes),
      static_cast<unsigned long long>(compressed_raw_bytes),
      static_cast<unsigned long long>(dropped), static_cast<unsigned long long>(reaped));
  out << line;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool inproc = false;  // ablation: bypass TCP entirely (scheduler ceiling)
  int clients = 256;
  int requests = 4;
  auto frontend = core::BackendConfig::NetFrontend::kEpoll;
  for (int arg = 1; arg < argc; ++arg) {
    const std::string flag = argv[arg];
    if (flag == "--smoke") {
      smoke = true;
    } else if (flag == "--clients" && arg + 1 < argc) {
      clients = std::atoi(argv[++arg]);
    } else if (flag == "--requests" && arg + 1 < argc) {
      requests = std::atoi(argv[++arg]);
    } else if (flag == "--net" && arg + 1 < argc) {
      const std::string which = argv[++arg];
      inproc = which == "inproc";
      frontend = which == "blocking" ? core::BackendConfig::NetFrontend::kBlocking
                                     : core::BackendConfig::NetFrontend::kEpoll;
    } else {
      std::fprintf(stderr, "usage: bench_swarm [--smoke] [--clients N] [--requests N] "
                           "[--net epoll|blocking|inproc]\n");
      return 2;
    }
  }
  if (smoke) {
    clients = 24;
    requests = 2;
  }
  const bool epoll = !inproc && frontend == core::BackendConfig::NetFrontend::kEpoll;
  const char* frontend_name = inproc ? "inproc" : (epoll ? "epoll" : "blocking");

  algo::register_builtin_commands();
  const std::string dataset = ensure_swarm_dataset();
  const double iso = density_iso_mid(dataset);

  core::BackendConfig config;
  config.workers = 4;
  config.net_frontend = frontend;
  config.scheduler.result_cache.enabled = true;
  // The swarm saturates the scheduler's message queue (on CI-class machines
  // by minutes), so heartbeats are processed long after dispatch — the
  // liveness machinery then misreads the lag as lost execute orders and
  // retry-storms. The bench measures the net frontend, not the failure
  // model; run with liveness off like the other saturation benches.
  config.scheduler.liveness = false;
  core::Backend backend(config);
  const std::uint16_t port = inproc ? 0 : backend.serve_tcp(0);

  perf::print_banner("Client swarm vs. the epoll frontend",
                     "N concurrent TCP clients, mixed iso / vortex / pathline / "
                     "cache-hit traffic through one event-loop thread");
  std::printf("\n  %d clients x %d requests, %s frontend, port %u\n", clients, requests,
              frontend_name, port);

  // The swarm: every client connects (the connect storm itself is part of
  // the measurement), then issues its requests one at a time.
  std::vector<SwarmStats> per_thread(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  const auto wall_start = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto& stats = per_thread[static_cast<std::size_t>(c)];
      std::shared_ptr<comm::ClientLink> link;
      const auto connect_start = std::chrono::steady_clock::now();
      try {
        if (inproc) {
          link = backend.connect();
        } else {
          comm::WireOptions options;  // negotiated hello + compression
          link = std::shared_ptr<comm::ClientLink>(
              comm::tcp_connect("127.0.0.1", port, options).release());
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "client %d: connect failed: %s\n", c, e.what());
        stats.failures += requests;
        return;
      }
      stats.connect_ms.push_back(std::chrono::duration<double, std::milli>(
                                     std::chrono::steady_clock::now() - connect_start)
                                     .count());
      viz::ExtractionSession session(std::move(link));
      for (int r = 0; r < requests; ++r) {
        const int slot = r % 4;
        const auto params = make_params(dataset, iso, slot);
        const auto start = std::chrono::steady_clock::now();
        core::CommandStats result;
        try {
          auto stream = session.submit(slot_command(slot), params);
          result = stream->wait(nullptr, std::chrono::milliseconds(300000));
        } catch (const std::exception& e) {
          result.success = false;
          result.error = e.what();
        }
        const auto elapsed = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
        if (!result.success) {
          std::fprintf(stderr, "client %d request %d (%s): %s\n", c, r, slot_command(slot),
                       result.error.c_str());
          ++stats.failures;
          continue;
        }
        stats.request_ms.push_back(elapsed);
        stats.server_ms.push_back(result.total_runtime * 1000.0);
        double exec = 0.0;
        for (const auto& [phase, seconds] : result.phase_seconds) {
          exec += seconds;
        }
        stats.exec_ms.push_back(exec * 1000.0);
        stats.result_bytes += result.result_bytes;
        if (result.cache_hit) {
          ++stats.cache_hits;
        }
      }
      session.close();
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  SwarmStats total;
  for (const auto& stats : per_thread) {
    total.merge(stats);
  }
  const auto bytes_sent = obs::Registry::instance().counter("net.bytes_sent").value();
  const auto compressed = obs::Registry::instance().counter("net.compressed_bytes").value();
  const auto compressed_raw =
      obs::Registry::instance().counter("net.compressed_raw_bytes").value();
  const auto dropped = backend.event_loop() ? backend.event_loop()->dropped_frames() : 0;
  const auto reaped = backend.event_loop() ? backend.event_loop()->reaped() : 0;
  backend.shutdown();

  std::printf("\n  %-28s %12.2f\n", "connect p50, ms", percentile(total.connect_ms, 0.50));
  std::printf("  %-28s %12.2f\n", "connect p99, ms", percentile(total.connect_ms, 0.99));
  std::printf("  %-28s %12.2f\n", "request p50, ms", percentile(total.request_ms, 0.50));
  std::printf("  %-28s %12.2f\n", "request p99, ms", percentile(total.request_ms, 0.99));
  std::printf("  %-28s %12.2f\n", "server runtime p50, ms", percentile(total.server_ms, 0.50));
  std::printf("  %-28s %12.2f\n", "exec phases p50, ms", percentile(total.exec_ms, 0.50));
  std::printf("  %-28s %12.2f\n", "streamed, MB",
              static_cast<double>(total.result_bytes) / (1024.0 * 1024.0));
  std::printf("  %-28s %12.2f\n", "streamed, MB/s",
              static_cast<double>(total.result_bytes) / (1024.0 * 1024.0) / wall_seconds);
  std::printf("  %-28s %12llu\n", "cache hits",
              static_cast<unsigned long long>(total.cache_hits));
  std::printf("  %-28s %12llu\n", "wire bytes sent",
              static_cast<unsigned long long>(bytes_sent));
  std::printf("  %-28s %12llu (raw %llu)\n", "compressed wire bytes",
              static_cast<unsigned long long>(compressed),
              static_cast<unsigned long long>(compressed_raw));
  std::printf("  %-28s %12llu\n", "backpressure drops",
              static_cast<unsigned long long>(dropped));
  std::printf("  %-28s %12llu\n", "links reaped",
              static_cast<unsigned long long>(reaped));

  write_json("BENCH_swarm.json", clients, requests, frontend_name, total,
             wall_seconds, bytes_sent, compressed, compressed_raw, dropped, reaped);
  std::printf("  wrote BENCH_swarm.json\n");
  perf::print_expectation(
      "zero failed connects/requests; zero drops and reaps (no link wedged); "
      "cache hits served; compression negotiated and used (epoll)");

  bool ok = true;
  ok = ok && total.failures == 0;
  ok = ok && static_cast<int>(total.connect_ms.size()) == clients;
  ok = ok && static_cast<int>(total.request_ms.size()) == clients * requests;
  // The acceptance gate: a slow or stuck peer must never surface here —
  // every link healthy, nothing dropped, nothing reaped.
  ok = ok && dropped == 0 && reaped == 0;
  ok = ok && total.cache_hits > 0;
  if (epoll) {
    // The gate is that the negotiated-compression path carried frames, not
    // any particular ratio (the mix includes incompressible payloads).
    ok = ok && compressed > 0 && compressed_raw > compressed;
  }
  std::printf("\n  shape check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
