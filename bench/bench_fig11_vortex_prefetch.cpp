/// \file bench_fig11_vortex_prefetch.cpp
/// Figure 11 — Engine, λ2 runtime with and without prefetching, COLD
/// caches ("a good impression how Viracocha behaves in a total miss
/// scenario"). OBL prefetching overlaps I/O with computation; the benefit
/// shrinks with more workers ("the less time the computation takes, the
/// lower the number of prefetches that are possible").

#include "bench_common.hpp"

int main() {
  using namespace vira;
  using namespace vira::bench;

  perf::ensure_engine();
  grid::DatasetReader reader(perf::engine_dir());
  const auto threshold = static_cast<float>(perf::lambda2_threshold(reader));
  const auto cluster = calibrated_cluster();
  const auto profile = perf::profile_vortex(reader, 0, threshold);

  auto cold_config = [](bool prefetch) {
    return [prefetch](int workers) {
      perf::ReplayConfig config;
      config.workers = workers;
      config.use_dms = true;
      config.warm_cache = false;  // cold start
      config.prefetch = prefetch;
      return config;
    };
  };

  perf::print_banner("Figure 11",
                     "Engine, Lambda-2, runtime without and with prefetching (cold) [s]");
  std::vector<perf::Series> series;
  series.push_back(
      sweep_extraction("without prefetching", profile, cluster, cold_config(false)));
  series.push_back(sweep_extraction("with prefetching", profile, cluster, cold_config(true)));
  perf::print_worker_series(series, "total runtime, s");

  perf::print_expectation(
      "computation optimally overlapped with I/O: prefetching wins at every worker "
      "count, and the absolute benefit shrinks as workers increase");

  bool ok = true;
  std::vector<double> benefit;
  for (std::size_t r = 0; r < kWorkerSweep.size(); ++r) {
    // Prefetching must win (within noise; at 16 workers the chunks are so
    // small that the paper's bars are equal too).
    ok &= series[1].points[r].seconds <= series[0].points[r].seconds * 1.02;
    benefit.push_back(series[0].points[r].seconds - series[1].points[r].seconds);
  }
  // Benefit at 1 worker exceeds benefit at 16 workers.
  ok &= benefit.front() > benefit.back();
  std::printf("\n  prefetch benefit: %.2fs at 1 worker, %.2fs at 16 workers\n",
              benefit.front(), benefit.back());
  std::printf("  shape check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
