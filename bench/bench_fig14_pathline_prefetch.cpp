/// \file bench_fig14_pathline_prefetch.cpp
/// Figure 14 — prefetching influence on pathline computation (Engine),
/// COLD caches: the Markov prefetcher learns block-to-block transitions
/// and overlaps I/O with integration ("runtime savings up to 40% ... a
/// maximum of 95% cache misses could be eliminated ... naive sequential
/// prefetchers such as OBL fail in these cases").

#include "bench_common.hpp"

int main() {
  using namespace vira;
  using namespace vira::bench;

  perf::ensure_engine();
  grid::DatasetReader reader(perf::engine_dir());
  const auto cluster = calibrated_cluster();

  std::fprintf(stderr, "[bench] profiling pathline traces (real integration)...\n");
  const auto profile = perf::profile_pathlines(reader, 0, reader.meta().timestep_count() - 1,
                                               /*seed_count=*/16);

  const std::vector<int> sweep{1, 2, 4, 8};
  auto run = [&](const std::string& prefetcher) {
    perf::Series series;
    series.label = prefetcher == "none" ? "without prefetching" : "with " + prefetcher;
    for (const int workers : sweep) {
      perf::PathlineReplayConfig config;
      config.workers = workers;
      config.use_dms = true;
      config.warm_cache = false;  // uncached, "otherwise prefetching would be unnecessary"
      config.prefetcher = prefetcher;
      config.blocks_per_step = reader.meta().block_count();
      // Model loads at the paper's original block size (1.12 GB / 63 / 23);
      // integration compute does not scale with block bytes, loads do.
      config.read_bytes_scale =
          (1.12 * (1ull << 30)) / static_cast<double>(reader.meta().total_bytes());
      // One prior execution of the same command populates the Markov graph
      // ("after a learning phase ... predicted quite well", Sec. 7.3).
      config.learning_passes = prefetcher == "none" ? 0 : 1;
      const auto result = perf::replay_pathlines(profile, cluster, config);
      series.points.push_back({workers, result.total_runtime});
    }
    return series;
  };

  perf::print_banner("Figure 14", "Prefetching influence on pathline computation (Engine) [s]");
  std::vector<perf::Series> series;
  series.push_back(run("none"));
  series.push_back(run("markov"));
  series.push_back(run("obl"));
  perf::print_worker_series(series, "total runtime, s");

  // Miss elimination at 1 worker.
  perf::PathlineReplayConfig config;
  config.workers = 1;
  config.use_dms = true;
  config.warm_cache = false;
  config.blocks_per_step = reader.meta().block_count();
  config.read_bytes_scale =
      (1.12 * (1ull << 30)) / static_cast<double>(reader.meta().total_bytes());
  config.prefetcher = "none";
  config.learning_passes = 0;
  const auto baseline = perf::replay_pathlines(profile, cluster, config);
  config.prefetcher = "markov";
  config.learning_passes = 1;
  const auto markov = perf::replay_pathlines(profile, cluster, config);
  config.prefetcher = "obl";
  const auto obl = perf::replay_pathlines(profile, cluster, config);

  const double eliminated =
      100.0 * (1.0 - static_cast<double>(markov.demand_loads) /
                         static_cast<double>(baseline.demand_loads));
  const double eliminated_obl =
      100.0 * (1.0 - static_cast<double>(obl.demand_loads) /
                         static_cast<double>(baseline.demand_loads));
  perf::print_value("markov: demand misses eliminated", eliminated, "%");
  perf::print_value("obl:    demand misses eliminated", eliminated_obl, "%");
  perf::print_value("markov runtime saving at 1 worker",
                    100.0 * (1.0 - markov.total_runtime / baseline.total_runtime), "%");

  perf::print_expectation(
      "markov saves up to ~40% runtime and eliminates up to ~95% of misses; OBL is "
      "clearly weaker on the non-uniform block requests of time-dependent tracing");

  bool ok = true;
  for (std::size_t r = 0; r < sweep.size(); ++r) {
    ok &= series[1].points[r].seconds < series[0].points[r].seconds;  // markov helps
  }
  ok &= eliminated > eliminated_obl;  // markov beats OBL
  ok &= eliminated > 50.0;
  std::printf("\n  shape check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
