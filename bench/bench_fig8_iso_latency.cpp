/// \file bench_fig8_iso_latency.cpp
/// Figure 8 — Propfan, latency times for isosurface extraction:
/// ViewerIso (streamed) vs IsoDataMan (first data = the final package).

#include "bench_common.hpp"

int main() {
  using namespace vira;
  using namespace vira::bench;

  perf::ensure_propfan();
  grid::DatasetReader reader(perf::propfan_dir());
  const auto iso = static_cast<float>(perf::density_iso_mid(reader));
  const auto cluster = calibrated_cluster();

  const auto iso_profile = perf::profile_iso(reader, 0, "density", iso, 256);
  const auto viewer_profile = perf::profile_viewer_iso(reader, 0, "density", iso, 256);

  perf::print_banner("Figure 8", "Propfan, latency times for isosurface extraction [s]");
  std::vector<perf::Series> series;
  series.push_back(sweep_extraction("ViewerIso", viewer_profile, cluster, streaming_config,
                                    /*use_latency=*/true));
  series.push_back(sweep_extraction("IsoDataMan", iso_profile, cluster, dataman_config,
                                    /*use_latency=*/true));
  perf::print_worker_series(series, "latency, s");

  perf::print_expectation(
      "streamed first results appear very quickly and are almost constant in the "
      "worker count; IsoDataMan latency equals its total runtime");

  bool ok = true;
  for (std::size_t r = 0; r < kWorkerSweep.size(); ++r) {
    ok &= series[0].points[r].seconds < series[1].points[r].seconds;
  }
  // Roughly constant streamed latency. The paper itself notes "slight
  // differences ... explained by the varying sizes of selected blocks
  // processed first", so allow that spread — but it must stay an order of
  // magnitude below the non-streamed latency at 1 worker.
  double lo = 1e300;
  double hi = 0.0;
  for (const auto& p : series[0].points) {
    lo = std::min(lo, p.seconds);
    hi = std::max(hi, p.seconds);
  }
  ok &= hi / lo < 8.0;
  ok &= hi < 0.25 * series[1].points[0].seconds;
  std::printf("\n  shape check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
