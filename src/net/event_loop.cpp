#include "net/event_loop.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/frame.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "util/blocking_queue.hpp"
#include "util/compression.hpp"
#include "util/log.hpp"

namespace vira::net {

namespace {

/// Frontend instruments (resolved once; see obs::Registry contract).
struct NetMetrics {
  obs::Gauge& connections = obs::Registry::instance().gauge("net.connections");
  obs::Gauge& slow_links = obs::Registry::instance().gauge("net.slow_links");
  obs::Counter& accepts = obs::Registry::instance().counter("net.accepts");
  obs::Counter& bytes_sent = obs::Registry::instance().counter("net.bytes_sent");
  obs::Counter& bytes_received = obs::Registry::instance().counter("net.bytes_received");
  obs::Counter& compressed_bytes = obs::Registry::instance().counter("net.compressed_bytes");
  obs::Counter& compressed_raw_bytes =
      obs::Registry::instance().counter("net.compressed_raw_bytes");
  obs::Counter& backpressure_drops =
      obs::Registry::instance().counter("net.backpressure_drops");
  obs::Counter& links_reaped = obs::Registry::instance().counter("net.links_reaped");
};

NetMetrics& metrics() {
  static NetMetrics* instruments = new NetMetrics();
  return *instruments;
}

/// One queued outbound frame. Header and payload stay separate buffers —
/// flush() hands both to sendmsg as iovecs, so the payload bytes the
/// scheduler (or the result cache) handed over are written in place.
struct OutFrame {
  std::array<std::byte, kFrameHeaderBytes> header{};
  util::ByteBuffer payload;
  std::size_t offset = 0;  ///< header+payload bytes already on the wire
  obs::ActiveSpan span;    ///< "net.send": enqueue → fully written

  std::size_t wire_size() const noexcept { return kFrameHeaderBytes + payload.size(); }
};

/// Shared connection state between the owning loop thread, the NetLink the
/// scheduler holds, and any thread calling send().
struct Conn {
  int fd = -1;
  std::size_t loop = 0;  ///< owning loop-thread index

  FrameParser parser;
  util::BlockingQueue<comm::Message> incoming;

  /// Outbound queue state, guarded by out_mutex (send paths + loop flush).
  std::mutex out_mutex;
  std::deque<OutFrame> outq;
  std::size_t queued_bytes = 0;
  bool close_requested = false;
  bool slow = false;
  std::chrono::steady_clock::time_point slow_since{};

  /// Negotiated per-link wire features (loop thread writes on hello; any
  /// sender thread reads).
  std::atomic<bool> compress{false};
  std::atomic<std::uint8_t> codec{0};

  std::atomic<bool> kick_pending{false};
  std::atomic<bool> closed{false};

  /// Loop-thread-only: EPOLLOUT currently armed.
  bool want_write = false;
};

}  // namespace

struct EventLoop::Impl {
  /// One epoll instance + wakeup eventfd per loop thread. Cross-thread
  /// work (newly accepted conns, send kicks, close requests) lands in the
  /// mutex-guarded inboxes and the eventfd pops the epoll_wait.
  struct Loop {
    int epoll_fd = -1;
    int wake_fd = -1;
    std::thread thread;
    std::mutex mutex;
    std::vector<std::shared_ptr<Conn>> pending;  ///< accepted, to register
    std::vector<std::shared_ptr<Conn>> kicks;    ///< flush/close requests
    /// Loop-thread-only registry of live conns.
    std::unordered_map<int, std::shared_ptr<Conn>> conns;
  };

  NetConfig config;
  std::uint16_t port = 0;
  int listen_fd = -1;
  AcceptHandler on_accept;
  ReadableHandler on_readable;
  std::vector<std::unique_ptr<Loop>> loops;
  std::atomic<bool> running{false};
  bool started = false;

  std::atomic<std::size_t> next_loop{0};
  std::atomic<std::size_t> conn_count{0};
  std::atomic<std::size_t> slow_count{0};
  std::atomic<std::uint64_t> reap_count{0};
  std::atomic<std::uint64_t> drop_count{0};

  explicit Impl(std::uint16_t want_port, NetConfig cfg);
  ~Impl();

  void start();
  void stop();

  void run_loop(std::size_t index);
  void process_inboxes(Loop& loop, std::vector<int>& deferred_close);
  void register_conn(Loop& loop, const std::shared_ptr<Conn>& conn,
                     std::vector<int>& deferred_close);
  void accept_ready(Loop& loop);
  bool read_ready(Loop& loop, const std::shared_ptr<Conn>& conn,
                  std::vector<int>& deferred_close);
  void handle_hello(const std::shared_ptr<Conn>& conn, comm::Message& msg,
                    std::vector<int>& deferred_close, Loop& loop);
  void flush(Loop& loop, const std::shared_ptr<Conn>& conn, std::vector<int>& deferred_close);
  void set_want_write(Loop& loop, Conn& conn, bool want);
  void sweep(Loop& loop, std::chrono::steady_clock::time_point now,
             std::vector<int>& deferred_close);
  void teardown(Loop& loop, const std::shared_ptr<Conn>& conn,
                std::vector<int>* deferred_close);

  bool enqueue(const std::shared_ptr<Conn>& conn, comm::Message msg);
  void kick(const std::shared_ptr<Conn>& conn);
  void wake(Loop& loop);
};

namespace {

/// The ClientLink the scheduler holds: send() enqueues onto the conn's
/// bounded queue and kicks the owning loop; recv() pops the messages the
/// read path reassembled. The shared Conn keeps the state alive even if
/// the loop drops the connection while the scheduler still holds the link.
class NetLink final : public comm::ClientLink {
 public:
  NetLink(EventLoop::Impl* owner, std::shared_ptr<Conn> conn)
      : owner_(owner), conn_(std::move(conn)) {}

  void send(comm::Message msg) override { owner_->enqueue(conn_, std::move(msg)); }

  std::optional<comm::Message> recv(std::chrono::milliseconds timeout) override {
    return conn_->incoming.pop_for(timeout);
  }

  void close() override {
    {
      std::lock_guard<std::mutex> lock(conn_->out_mutex);
      conn_->close_requested = true;
    }
    conn_->incoming.close();
    owner_->kick(conn_);
  }

  bool closed() const override { return conn_->closed.load(std::memory_order_relaxed); }

 private:
  EventLoop::Impl* owner_;
  std::shared_ptr<Conn> conn_;
};

}  // namespace

EventLoop::Impl::Impl(std::uint16_t want_port, NetConfig cfg) : config(std::move(cfg)) {
  if (config.threads < 1) {
    config.threads = 1;
  }
  listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd < 0) {
    throw std::runtime_error("net::EventLoop: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(want_port);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd, 512) != 0) {
    ::close(listen_fd);
    throw std::runtime_error("net::EventLoop: bind/listen failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port = ntohs(addr.sin_port);

  for (int index = 0; index < config.threads; ++index) {
    auto loop = std::make_unique<Loop>();
    loop->epoll_fd = ::epoll_create1(0);
    loop->wake_fd = ::eventfd(0, EFD_NONBLOCK);
    if (loop->epoll_fd < 0 || loop->wake_fd < 0) {
      throw std::runtime_error("net::EventLoop: epoll/eventfd creation failed");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = loop->wake_fd;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd, &ev);
    loops.push_back(std::move(loop));
  }
  // The listener lives in loop 0's epoll set (level-triggered: a backlog
  // surviving one accept burst re-reports immediately).
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd;
  ::epoll_ctl(loops[0]->epoll_fd, EPOLL_CTL_ADD, listen_fd, &ev);
}

EventLoop::Impl::~Impl() {
  stop();
  for (auto& loop : loops) {
    if (loop->epoll_fd >= 0) {
      ::close(loop->epoll_fd);
    }
    if (loop->wake_fd >= 0) {
      ::close(loop->wake_fd);
    }
  }
  if (listen_fd >= 0) {
    ::close(listen_fd);
  }
}

void EventLoop::Impl::start() {
  if (started) {
    return;
  }
  started = true;
  running.store(true);
  for (std::size_t index = 0; index < loops.size(); ++index) {
    loops[index]->thread = std::thread([this, index] { run_loop(index); });
  }
  VIRA_INFO("net") << "event loop listening on 127.0.0.1:" << port << " (" << loops.size()
                   << " thread" << (loops.size() == 1 ? "" : "s") << ")";
}

void EventLoop::Impl::stop() {
  if (!running.exchange(false)) {
    return;
  }
  for (auto& loop : loops) {
    wake(*loop);
  }
  for (auto& loop : loops) {
    if (loop->thread.joinable()) {
      loop->thread.join();
    }
  }
  // Threads are down; close every remaining connection from this thread.
  for (auto& loop : loops) {
    std::vector<std::shared_ptr<Conn>> remaining;
    {
      std::lock_guard<std::mutex> lock(loop->mutex);
      remaining = loop->pending;
      loop->pending.clear();
      loop->kicks.clear();
    }
    for (auto& [fd, conn] : loop->conns) {
      (void)fd;
      remaining.push_back(conn);
    }
    for (auto& conn : remaining) {
      teardown(*loop, conn, nullptr);
    }
    loop->conns.clear();
  }
  VIRA_INFO("net") << "event loop stopped";
}

void EventLoop::Impl::wake(Loop& loop) {
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto ignored = ::write(loop.wake_fd, &one, sizeof(one));
}

void EventLoop::Impl::kick(const std::shared_ptr<Conn>& conn) {
  auto& loop = *loops[conn->loop];
  if (conn->kick_pending.exchange(true, std::memory_order_acq_rel)) {
    return;  // a kick is already queued; the loop will see the new frames
  }
  {
    std::lock_guard<std::mutex> lock(loop.mutex);
    loop.kicks.push_back(conn);
  }
  wake(loop);
}

bool EventLoop::Impl::enqueue(const std::shared_ptr<Conn>& conn, comm::Message msg) {
  if (conn->closed.load(std::memory_order_relaxed)) {
    return false;
  }
  // Compression decision happens here, outside the loop thread, so the
  // event loop itself stays pure I/O. Incompressible-data bypass: if the
  // codec cannot shrink the payload, the raw bytes ship unflagged.
  util::ByteBuffer body = std::move(msg.payload);
  bool compressed = false;
  if (conn->compress.load(std::memory_order_relaxed) && body.size() > 0 &&
      body.size() >= config.compress_threshold) {
    const std::size_t raw_size = body.size();
    auto packed =
        util::compress(body.data(), raw_size,
                       static_cast<util::Codec>(conn->codec.load(std::memory_order_relaxed)));
    if (packed.size() < raw_size) {
      metrics().compressed_raw_bytes.add(raw_size);
      metrics().compressed_bytes.add(packed.size());
      body = util::ByteBuffer(std::move(packed));
      compressed = true;
    }
  }

  OutFrame frame;
  encode_frame_header(frame.header.data(), msg.source, msg.tag, body.size(), compressed);
  const std::size_t body_size = body.size();
  frame.payload = std::move(body);
  if (msg.trace_span != 0) {
    frame.span =
        obs::Tracer::instance().start("net.send", msg.trace_request, /*rank=*/0, msg.trace_span);
    if (frame.span.active()) {
      frame.span.arg("bytes", static_cast<std::int64_t>(body_size));
      frame.span.arg("compressed", compressed ? 1 : 0);
    }
  }

  {
    std::lock_guard<std::mutex> lock(conn->out_mutex);
    if (conn->close_requested || conn->closed.load(std::memory_order_relaxed)) {
      return false;
    }
    const std::size_t wire = frame.wire_size();
    if (config.send_cap_bytes > 0 && conn->queued_bytes + wire > config.send_cap_bytes) {
      // Hard cap: the reader is this far behind, drop the frame. The link
      // is necessarily already slow and riding toward the reap deadline.
      drop_count.fetch_add(1, std::memory_order_relaxed);
      metrics().backpressure_drops.add();
      return false;
    }
    conn->outq.push_back(std::move(frame));
    conn->queued_bytes += wire;
    if (!conn->slow && config.send_budget_bytes > 0 &&
        conn->queued_bytes > config.send_budget_bytes) {
      conn->slow = true;
      conn->slow_since = std::chrono::steady_clock::now();
      slow_count.fetch_add(1, std::memory_order_relaxed);
      metrics().slow_links.add(1);
    }
  }
  kick(conn);
  return true;
}

void EventLoop::Impl::run_loop(std::size_t index) {
  auto& loop = *loops[index];
  std::array<epoll_event, 128> events;
  auto last_sweep = std::chrono::steady_clock::now();
  // fds whose ::close is deferred to the end of the event batch, so the
  // kernel cannot recycle a just-closed fd into a freshly accepted conn
  // while stale events for the old fd are still in this batch.
  std::vector<int> deferred_close;

  while (running.load(std::memory_order_relaxed)) {
    const int ready =
        ::epoll_wait(loop.epoll_fd, events.data(), static_cast<int>(events.size()), 50);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      VIRA_WARN("net") << "epoll_wait failed: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < ready; ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      const std::uint32_t mask = events[static_cast<std::size_t>(i)].events;
      if (fd == loop.wake_fd) {
        std::uint64_t drain = 0;
        while (::read(loop.wake_fd, &drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (fd == listen_fd) {
        accept_ready(loop);
        continue;
      }
      auto it = loop.conns.find(fd);
      if (it == loop.conns.end()) {
        continue;  // torn down earlier in this batch
      }
      auto conn = it->second;
      if ((mask & (EPOLLHUP | EPOLLERR)) != 0) {
        teardown(loop, conn, &deferred_close);
        continue;
      }
      if ((mask & EPOLLIN) != 0 && !read_ready(loop, conn, deferred_close)) {
        continue;  // conn died during the read
      }
      if ((mask & EPOLLOUT) != 0) {
        flush(loop, conn, deferred_close);
      }
    }
    process_inboxes(loop, deferred_close);
    const auto now = std::chrono::steady_clock::now();
    if (now - last_sweep >= std::chrono::milliseconds(50)) {
      sweep(loop, now, deferred_close);
      last_sweep = now;
    }
    for (const int fd : deferred_close) {
      ::close(fd);
    }
    deferred_close.clear();
  }
}

void EventLoop::Impl::process_inboxes(Loop& loop, std::vector<int>& deferred_close) {
  std::vector<std::shared_ptr<Conn>> pending;
  std::vector<std::shared_ptr<Conn>> kicks;
  {
    std::lock_guard<std::mutex> lock(loop.mutex);
    pending.swap(loop.pending);
    kicks.swap(loop.kicks);
  }
  for (auto& conn : pending) {
    register_conn(loop, conn, deferred_close);
  }
  for (auto& conn : kicks) {
    conn->kick_pending.store(false, std::memory_order_release);
    if (conn->closed.load(std::memory_order_relaxed)) {
      continue;
    }
    bool close_requested = false;
    {
      std::lock_guard<std::mutex> lock(conn->out_mutex);
      close_requested = conn->close_requested;
    }
    flush(loop, conn, deferred_close);
    if (close_requested && !conn->closed.load(std::memory_order_relaxed)) {
      // Graceful close: whatever the kernel accepted just now is on the
      // wire; the rest is abandoned with the link.
      teardown(loop, conn, &deferred_close);
    }
  }
}

void EventLoop::Impl::register_conn(Loop& loop, const std::shared_ptr<Conn>& conn,
                                    std::vector<int>& deferred_close) {
  if (conn->closed.load(std::memory_order_relaxed)) {
    return;
  }
  loop.conns[conn->fd] = conn;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.fd = conn->fd;
  if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, conn->fd, &ev) != 0) {
    VIRA_WARN("net") << "epoll_ctl(ADD) failed: " << std::strerror(errno);
    teardown(loop, conn, &deferred_close);
  }
}

void EventLoop::Impl::accept_ready(Loop& loop) {
  for (;;) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // EAGAIN (drained) or listener shut down
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->loop = next_loop.fetch_add(1, std::memory_order_relaxed) % loops.size();
    conn_count.fetch_add(1, std::memory_order_relaxed);
    metrics().connections.add(1);
    metrics().accepts.add();

    auto& target = *loops[conn->loop];
    {
      std::lock_guard<std::mutex> lock(target.mutex);
      target.pending.push_back(conn);
    }
    if (&target != &loop) {
      wake(target);
    }
    if (on_accept) {
      on_accept(std::make_shared<NetLink>(this, conn));
    }
  }
}

bool EventLoop::Impl::read_ready(Loop& loop, const std::shared_ptr<Conn>& conn,
                                 std::vector<int>& deferred_close) {
  std::byte buf[64 * 1024];
  std::vector<comm::Message> msgs;
  bool dead = false;
  // Edge-triggered: drain until EAGAIN, or the edge is lost.
  for (;;) {
    const ssize_t got = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (got > 0) {
      metrics().bytes_received.add(static_cast<std::uint64_t>(got));
      if (!conn->parser.feed(buf, static_cast<std::size_t>(got), msgs)) {
        VIRA_WARN("net") << "dropping link: " << conn->parser.error();
        dead = true;
        break;
      }
      continue;
    }
    if (got == 0) {
      dead = true;  // orderly EOF
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    dead = true;
    break;
  }

  bool delivered = false;
  for (auto& msg : msgs) {
    if (msg.tag == comm::kTagHello) {
      handle_hello(conn, msg, deferred_close, loop);
      continue;
    }
    conn->incoming.push(std::move(msg));
    delivered = true;
  }
  if (dead) {
    teardown(loop, conn, &deferred_close);
    return false;
  }
  if (delivered && on_readable) {
    on_readable();
  }
  return true;
}

void EventLoop::Impl::handle_hello(const std::shared_ptr<Conn>& conn, comm::Message& msg,
                                   std::vector<int>& deferred_close, Loop& loop) {
  comm::WireHello hello;
  try {
    hello = comm::WireHello::deserialize(msg.payload);
  } catch (const std::exception&) {
    hello.magic = 0;
  }
  if (hello.magic != comm::kWireMagic) {
    VIRA_WARN("net") << "dropping link: bad hello";
    teardown(loop, conn, &deferred_close);
    return;
  }
  comm::WireHello ack;
  if (config.allow_compression && (hello.features & comm::kFeatureWireCompression) != 0) {
    // Grant compression with the client's preferred codec; kStore (or an
    // unknown id) falls back to the bench_compression winner.
    util::Codec codec = hello.codec;
    if (codec != util::Codec::kRle && codec != util::Codec::kLz) {
      codec = util::Codec::kLz;
    }
    ack.features = comm::kFeatureWireCompression;
    ack.codec = codec;
    conn->codec.store(static_cast<std::uint8_t>(codec), std::memory_order_relaxed);
    conn->compress.store(true, std::memory_order_release);
  }
  comm::Message reply;
  reply.source = 0;
  reply.tag = comm::kTagHelloAck;
  ack.serialize(reply.payload);
  enqueue(conn, std::move(reply));
}

void EventLoop::Impl::set_want_write(Loop& loop, Conn& conn, bool want) {
  if (conn.want_write == want) {
    return;
  }
  conn.want_write = want;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET | (want ? EPOLLOUT : 0u);
  ev.data.fd = conn.fd;
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
}

void EventLoop::Impl::flush(Loop& loop, const std::shared_ptr<Conn>& conn,
                            std::vector<int>& deferred_close) {
  if (conn->closed.load(std::memory_order_relaxed)) {
    return;
  }
  bool error = false;
  {
    std::lock_guard<std::mutex> lock(conn->out_mutex);
    while (!conn->outq.empty()) {
      // Scatter/gather up to 16 frames per syscall: header bytes and
      // payload spans go out as separate iovecs, zero per-send coalescing.
      std::array<iovec, 32> iov;
      std::size_t iov_count = 0;
      for (auto it = conn->outq.begin(); it != conn->outq.end() && iov_count + 2 <= iov.size();
           ++it) {
        OutFrame& frame = *it;
        std::size_t offset = frame.offset;
        if (offset < kFrameHeaderBytes) {
          iov[iov_count].iov_base = frame.header.data() + offset;
          iov[iov_count].iov_len = kFrameHeaderBytes - offset;
          ++iov_count;
          offset = 0;
        } else {
          offset -= kFrameHeaderBytes;
        }
        if (frame.payload.size() > offset) {
          iov[iov_count].iov_base =
              const_cast<std::byte*>(frame.payload.data()) + offset;
          iov[iov_count].iov_len = frame.payload.size() - offset;
          ++iov_count;
        }
      }
      msghdr mh{};
      mh.msg_iov = iov.data();
      mh.msg_iovlen = iov_count;
      const ssize_t wrote = ::sendmsg(conn->fd, &mh, MSG_NOSIGNAL);
      if (wrote < 0) {
        if (errno == EINTR) {
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          set_want_write(loop, *conn, true);
          return;
        }
        error = true;  // EPIPE/ECONNRESET: the peer went away mid-stream
        break;
      }
      metrics().bytes_sent.add(static_cast<std::uint64_t>(wrote));
      std::size_t advanced = static_cast<std::size_t>(wrote);
      while (advanced > 0) {
        OutFrame& front = conn->outq.front();
        const std::size_t rest = front.wire_size() - front.offset;
        const std::size_t take = std::min(advanced, rest);
        front.offset += take;
        advanced -= take;
        if (front.offset == front.wire_size()) {
          conn->queued_bytes -= front.wire_size();
          front.span.end();
          conn->outq.pop_front();
        }
      }
      if (conn->slow && conn->queued_bytes <= config.send_budget_bytes) {
        conn->slow = false;
        slow_count.fetch_sub(1, std::memory_order_relaxed);
        metrics().slow_links.add(-1);
      }
    }
    if (!error) {
      set_want_write(loop, *conn, false);
      return;
    }
  }
  teardown(loop, conn, &deferred_close);
}

void EventLoop::Impl::sweep(Loop& loop, std::chrono::steady_clock::time_point now,
                            std::vector<int>& deferred_close) {
  std::vector<std::pair<std::shared_ptr<Conn>, std::size_t>> victims;
  for (auto& [fd, conn] : loop.conns) {
    (void)fd;
    std::lock_guard<std::mutex> lock(conn->out_mutex);
    if (conn->slow && now - conn->slow_since >= config.reap_deadline) {
      victims.emplace_back(conn, conn->queued_bytes);
    }
  }
  for (auto& [conn, queued] : victims) {
    VIRA_WARN("net") << "reaping slow link (over budget for "
                     << std::chrono::duration_cast<std::chrono::milliseconds>(
                            config.reap_deadline)
                            .count()
                     << " ms, " << queued << " bytes queued)";
    reap_count.fetch_add(1, std::memory_order_relaxed);
    metrics().links_reaped.add();
    teardown(loop, conn, &deferred_close);
  }
}

void EventLoop::Impl::teardown(Loop& loop, const std::shared_ptr<Conn>& conn,
                               std::vector<int>* deferred_close) {
  if (conn->closed.exchange(true)) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(conn->out_mutex);
    for (auto& frame : conn->outq) {
      frame.span.end();
    }
    conn->outq.clear();
    conn->queued_bytes = 0;
    if (conn->slow) {
      conn->slow = false;
      slow_count.fetch_sub(1, std::memory_order_relaxed);
      metrics().slow_links.add(-1);
    }
  }
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  loop.conns.erase(conn->fd);
  if (deferred_close != nullptr) {
    deferred_close->push_back(conn->fd);
  } else {
    ::close(conn->fd);
  }
  conn->incoming.close();
  conn_count.fetch_sub(1, std::memory_order_relaxed);
  metrics().connections.add(-1);
  // Wake the scheduler so closed-link reaping sees the disconnect promptly.
  if (on_readable) {
    on_readable();
  }
}

EventLoop::EventLoop(std::uint16_t port, NetConfig config)
    : impl_(std::make_unique<Impl>(port, std::move(config))) {}

EventLoop::~EventLoop() = default;

std::uint16_t EventLoop::port() const noexcept { return impl_->port; }

void EventLoop::set_on_accept(AcceptHandler handler) {
  impl_->on_accept = std::move(handler);
}

void EventLoop::set_on_readable(ReadableHandler handler) {
  impl_->on_readable = std::move(handler);
}

void EventLoop::start() { impl_->start(); }

void EventLoop::stop() { impl_->stop(); }

std::size_t EventLoop::connections() const noexcept {
  return impl_->conn_count.load(std::memory_order_relaxed);
}

std::size_t EventLoop::slow_links() const noexcept {
  return impl_->slow_count.load(std::memory_order_relaxed);
}

std::uint64_t EventLoop::reaped() const noexcept {
  return impl_->reap_count.load(std::memory_order_relaxed);
}

std::uint64_t EventLoop::dropped_frames() const noexcept {
  return impl_->drop_count.load(std::memory_order_relaxed);
}

}  // namespace vira::net
