#pragma once

/// \file event_loop.hpp
/// Epoll edge-triggered client frontend (ISSUE 7 tentpole).
///
/// One event-loop thread (optionally N, connections sharded round-robin)
/// owns every client socket: non-blocking accept, incremental frame
/// reassembly (net::FrameParser), and a bounded per-link send queue drained
/// by `sendmsg` scatter/gather — frame headers and payload buffers go to
/// the kernel as separate iovecs straight from the buffers the scheduler
/// handed over, so streamed geometry is never coalesced or copied per send.
///
/// Accepted connections surface as `comm::ClientLink`s (the on_accept
/// callback hands them to `Scheduler::attach_client`), so the scheduler,
/// `viz::ExtractionSession` and the server binary are unchanged — exactly
/// the protocol transparency the blocking backend provided, minus the
/// thread per connection.
///
/// Backpressure policy (DESIGN.md §11): a link whose queued-but-unsent
/// bytes exceed `send_budget_bytes` is marked *slow* (net.slow_links
/// gauge). Past `send_cap_bytes` further frames are dropped outright
/// (net.backpressure_drops) — the kernel buffer plus our budget is all the
/// lag a reader may accumulate. A link that stays slow for
/// `reap_deadline` is closed; the scheduler's closed-link reaping (PR 5)
/// then aborts its in-flight work like any disconnected client. One stuck
/// reader can therefore never wedge the loop or grow memory without bound,
/// and never stalls other links' streams.
///
/// The hello/feature negotiation (comm::kTagHello, docs/PROTOCOL.md) is
/// answered here, per link, without scheduler involvement; a granted
/// kFeatureWireCompression makes the enqueue path compress frames above
/// the configured threshold (incompressible payloads ship raw).
///
/// Timekeeping: the net frontend always talks real sockets to real
/// clients, so it deliberately uses raw steady_clock instead of the
/// util::clock DST seam — deterministic simulation never instantiates it.

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>

#include "comm/client_link.hpp"

namespace vira::net {

struct NetConfig {
  /// Event-loop threads. 1 is the design point (thousands of links per
  /// thread); >1 shards accepted connections round-robin.
  int threads = 1;
  /// Queued-but-unsent bytes beyond which a link is marked slow.
  std::size_t send_budget_bytes = 4ull << 20;
  /// Hard queue cap; frames beyond it are dropped (0 = unbounded).
  std::size_t send_cap_bytes = 16ull << 20;
  /// A link continuously slow for this long is reaped (closed).
  std::chrono::milliseconds reap_deadline{5000};
  /// Grant wire compression to clients that request it.
  bool allow_compression = true;
  /// Payload bytes below which negotiated links still send raw frames.
  std::size_t compress_threshold = 4096;
};

class EventLoop {
 public:
  using AcceptHandler = std::function<void(std::shared_ptr<comm::ClientLink>)>;
  using ReadableHandler = std::function<void()>;

  /// Binds a localhost listener (port 0 = ephemeral; read back via
  /// port()). Throws std::runtime_error on bind failure. Threads start in
  /// start().
  explicit EventLoop(std::uint16_t port, NetConfig config = NetConfig{});
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  std::uint16_t port() const noexcept;

  /// Called from a loop thread with each newly accepted link. Set before
  /// start().
  void set_on_accept(AcceptHandler handler);
  /// Called from a loop thread whenever a link has new inbound messages
  /// (or closed) — the scheduler wakeup hook. Set before start().
  void set_on_readable(ReadableHandler handler);

  void start();
  /// Joins the loop threads and closes every connection. Idempotent.
  /// Existing links turn closed(); late send()s on them are dropped.
  void stop();

  /// --- diagnostics (any thread) -------------------------------------------
  std::size_t connections() const noexcept;
  std::size_t slow_links() const noexcept;
  std::uint64_t reaped() const noexcept;
  std::uint64_t dropped_frames() const noexcept;

  /// Opaque loop state; public only so the internal link type (anonymous
  /// namespace in the .cpp) can hold a pointer to it.
  struct Impl;

 private:
  std::unique_ptr<Impl> impl_;
};

}  // namespace vira::net
