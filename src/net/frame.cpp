#include "net/frame.hpp"

#include <cstring>

#include "util/compression.hpp"

namespace vira::net {

void encode_frame_header(std::byte* out, std::int32_t source, std::int32_t tag,
                         std::uint64_t payload_size, bool compressed) {
  const std::uint64_t size_field = payload_size | (compressed ? kCompressedFlag : 0);
  std::memcpy(out, &source, sizeof(source));
  std::memcpy(out + sizeof(source), &tag, sizeof(tag));
  std::memcpy(out + sizeof(source) + sizeof(tag), &size_field, sizeof(size_field));
}

std::vector<std::byte> encode_frame(const comm::Message& msg, bool compressed) {
  std::vector<std::byte> frame(kFrameHeaderBytes + msg.payload.size());
  encode_frame_header(frame.data(), msg.source, msg.tag, msg.payload.size(), compressed);
  if (msg.payload.size() > 0) {
    std::memcpy(frame.data() + kFrameHeaderBytes, msg.payload.data(), msg.payload.size());
  }
  return frame;
}

bool FrameParser::fail(std::string reason) {
  failed_ = true;
  error_ = std::move(reason);
  payload_.clear();
  payload_.shrink_to_fit();
  return false;
}

bool FrameParser::finish_frame(std::vector<comm::Message>& out) {
  comm::Message msg;
  msg.source = source_;
  msg.tag = tag_;
  if (compressed_) {
    auto raw = util::decompress(payload_.data(), payload_fill_);
    if (!raw) {
      return fail("undecodable compressed frame payload");
    }
    msg.payload = util::ByteBuffer(std::move(*raw));
  } else {
    msg.payload = util::ByteBuffer(std::move(payload_));
  }
  out.push_back(std::move(msg));
  payload_ = {};
  payload_fill_ = 0;
  header_fill_ = 0;
  compressed_ = false;
  return true;
}

bool FrameParser::feed(const std::byte* data, std::size_t size,
                       std::vector<comm::Message>& out) {
  if (failed_) {
    return false;
  }
  while (size > 0) {
    if (header_fill_ < kFrameHeaderBytes) {
      const std::size_t take = std::min(size, kFrameHeaderBytes - header_fill_);
      std::memcpy(header_ + header_fill_, data, take);
      header_fill_ += take;
      data += take;
      size -= take;
      if (header_fill_ < kFrameHeaderBytes) {
        return true;  // header still incomplete; wait for more bytes
      }
      std::uint64_t size_field = 0;
      std::memcpy(&source_, header_, sizeof(source_));
      std::memcpy(&tag_, header_ + sizeof(source_), sizeof(tag_));
      std::memcpy(&size_field, header_ + sizeof(source_) + sizeof(tag_), sizeof(size_field));
      compressed_ = (size_field & kCompressedFlag) != 0;
      const std::uint64_t payload_size = size_field & ~kCompressedFlag;
      if (payload_size > max_payload_) {
        return fail("frame payload size " + std::to_string(payload_size) +
                    " exceeds cap " + std::to_string(max_payload_));
      }
      // Allocation happens only now, after the validated length prefix —
      // never speculatively from partial input.
      payload_.resize(static_cast<std::size_t>(payload_size));
      payload_fill_ = 0;
      if (payload_size == 0) {
        if (!finish_frame(out)) {
          return false;
        }
      }
      continue;
    }
    const std::size_t take = std::min(size, payload_.size() - payload_fill_);
    std::memcpy(payload_.data() + payload_fill_, data, take);
    payload_fill_ += take;
    data += take;
    size -= take;
    if (payload_fill_ == payload_.size()) {
      if (!finish_frame(out)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace vira::net
