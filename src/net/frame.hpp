#pragma once

/// \file frame.hpp
/// Incremental TCP frame codec for the event-loop frontend (ISSUE 7).
///
/// The wire layout is the one `comm::TcpLink` has always spoken:
/// `[i32 source][i32 tag][u64 payload_size][payload]`, native byte order.
/// This module adds two things on top of the blocking implementation:
///
///  * **Incremental parsing.** A `FrameParser` consumes whatever bytes the
///    socket produced — a header split mid-field, a megabyte of payload, ten
///    back-to-back small frames — and emits complete `comm::Message`s as
///    soon as they close. No full-message buffering before the length
///    prefix arrives: payload storage is reserved only once the 16-byte
///    header is complete and validated, so a garbage prefix can never make
///    the parser allocate gigabytes.
///
///  * **Compressed frames.** Bit 63 of the size field (`kCompressedFlag`)
///    marks a payload that is a `util::compress()` stream (self-describing:
///    codec id + raw size + data). Legacy links never set the bit — and the
///    pre-existing 4 GiB size sanity cap means a legacy receiver treats an
///    unexpected compressed frame as a corrupt header and drops the link,
///    which is exactly the safe failure mode. The flag is only used after
///    the hello/feature negotiation of docs/PROTOCOL.md.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "comm/message.hpp"

namespace vira::net {

/// Bytes of the fixed frame prefix: i32 source + i32 tag + u64 size.
inline constexpr std::size_t kFrameHeaderBytes = 16;

/// Size-field flag bit: the payload is a util::compress() stream.
inline constexpr std::uint64_t kCompressedFlag = 1ull << 63;

/// Largest accepted payload (matches the blocking TcpLink's sanity cap).
inline constexpr std::uint64_t kMaxFramePayload = 1ull << 32;

/// Writes the 16-byte frame prefix for a payload of `payload_size` bytes.
void encode_frame_header(std::byte* out, std::int32_t source, std::int32_t tag,
                         std::uint64_t payload_size, bool compressed);

/// Whole frame (header + payload copy) in one buffer — test/bench helper;
/// the event loop itself never coalesces (it scatter/gathers with writev).
std::vector<std::byte> encode_frame(const comm::Message& msg, bool compressed = false);

/// Streaming frame reassembler. Feed it raw socket bytes in any chunking;
/// complete messages append to the caller's vector. Once malformed input is
/// detected the parser poisons itself: every later feed() fails too, so a
/// desynchronized stream can never resynchronize onto garbage.
class FrameParser {
 public:
  explicit FrameParser(std::uint64_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Consumes `size` bytes. Returns false on malformed input (oversized or
  /// negative-looking length prefix, undecodable compressed payload); the
  /// stream is then unrecoverable and the link should be dropped.
  bool feed(const std::byte* data, std::size_t size, std::vector<comm::Message>& out);

  bool failed() const noexcept { return failed_; }
  const std::string& error() const noexcept { return error_; }

  /// True between frames (no partial header or payload buffered) — a clean
  /// EOF point. EOF mid-frame means the peer truncated a message.
  bool at_boundary() const noexcept {
    return !failed_ && header_fill_ == 0 && payload_.empty();
  }

  /// Bytes currently buffered for the in-progress frame (tests).
  std::size_t buffered() const noexcept { return header_fill_ + payload_fill_; }

 private:
  bool fail(std::string reason);
  bool finish_frame(std::vector<comm::Message>& out);

  std::uint64_t max_payload_;
  std::byte header_[kFrameHeaderBytes];
  std::size_t header_fill_ = 0;
  std::vector<std::byte> payload_;
  std::size_t payload_fill_ = 0;
  std::int32_t source_ = 0;
  std::int32_t tag_ = 0;
  bool compressed_ = false;
  bool failed_ = false;
  std::string error_;
};

}  // namespace vira::net
