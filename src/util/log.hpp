#pragma once

/// \file log.hpp
/// Thread-safe leveled logging for the Viracocha framework.
///
/// The logger writes single-line records to a std::ostream (stderr by
/// default). Records carry a monotonic timestamp, severity, and an optional
/// component tag so that scheduler/worker/DMS output can be told apart when
/// many threads log concurrently.

#include <mutex>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>

namespace vira::util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Returns the fixed-width human-readable name of a level ("TRACE", ...).
std::string_view to_string(LogLevel level) noexcept;

/// Process-wide logger. All members are safe to call from any thread.
class Logger {
 public:
  /// The singleton used by the VIRA_LOG macros.
  static Logger& instance();

  /// Minimum severity that is emitted; records below it are dropped.
  void set_level(LogLevel level) noexcept;
  LogLevel level() const noexcept;

  /// Redirects output. The stream must outlive all logging calls.
  /// Passing nullptr restores the default (stderr).
  void set_stream(std::ostream* stream) noexcept;

  bool enabled(LogLevel level) const noexcept { return level >= level_; }

  /// Emits one record. `component` may be empty.
  void write(LogLevel level, std::string_view component, std::string_view message);

 private:
  Logger();

  mutable std::mutex mutex_;
  LogLevel level_ = LogLevel::kInfo;
  std::ostream* stream_ = nullptr;  // nullptr => stderr
};

/// Builder used by the macros; flushes one record on destruction.
class LogRecord {
 public:
  LogRecord(LogLevel level, std::string_view component) : level_(level), component_(component) {}
  LogRecord(const LogRecord&) = delete;
  LogRecord& operator=(const LogRecord&) = delete;
  ~LogRecord() { Logger::instance().write(level_, component_, stream_.str()); }

  template <typename T>
  LogRecord& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace vira::util

#define VIRA_LOG_AT(level, component)                        \
  if (!::vira::util::Logger::instance().enabled(level)) {    \
  } else                                                     \
    ::vira::util::LogRecord(level, component)

#define VIRA_TRACE(component) VIRA_LOG_AT(::vira::util::LogLevel::kTrace, component)
#define VIRA_DEBUG(component) VIRA_LOG_AT(::vira::util::LogLevel::kDebug, component)
#define VIRA_INFO(component) VIRA_LOG_AT(::vira::util::LogLevel::kInfo, component)
#define VIRA_WARN(component) VIRA_LOG_AT(::vira::util::LogLevel::kWarn, component)
#define VIRA_ERROR(component) VIRA_LOG_AT(::vira::util::LogLevel::kError, component)
