#include "util/param_list.hpp"

#include <cstdio>
#include <sstream>

namespace vira::util {

namespace {

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

void ParamList::set_double(const std::string& key, double value) { values_[key] = format_double(value); }

void ParamList::set_int(const std::string& key, std::int64_t value) { values_[key] = std::to_string(value); }

void ParamList::set_bool(const std::string& key, bool value) { values_[key] = value ? "1" : "0"; }

void ParamList::set_doubles(const std::string& key, const std::vector<double>& values) {
  std::ostringstream out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) {
      out << ',';
    }
    out << format_double(values[i]);
  }
  values_[key] = out.str();
}

std::optional<std::string> ParamList::get(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::string ParamList::get_or(const std::string& key, const std::string& fallback) const {
  auto value = get(key);
  return value ? *value : fallback;
}

double ParamList::get_double(const std::string& key, double fallback) const {
  auto value = get(key);
  if (!value) {
    return fallback;
  }
  try {
    return std::stod(*value);
  } catch (const std::exception&) {
    return fallback;
  }
}

std::int64_t ParamList::get_int(const std::string& key, std::int64_t fallback) const {
  auto value = get(key);
  if (!value) {
    return fallback;
  }
  try {
    return std::stoll(*value);
  } catch (const std::exception&) {
    return fallback;
  }
}

bool ParamList::get_bool(const std::string& key, bool fallback) const {
  auto value = get(key);
  if (!value) {
    return fallback;
  }
  return *value == "1" || *value == "true";
}

std::vector<double> ParamList::get_doubles(const std::string& key) const {
  std::vector<double> out;
  auto value = get(key);
  if (!value) {
    return out;
  }
  std::istringstream in(*value);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (!token.empty()) {
      out.push_back(std::stod(token));
    }
  }
  return out;
}

std::string ParamList::canonical() const {
  std::ostringstream out;
  bool first = true;
  for (const auto& [key, value] : values_) {
    if (!first) {
      out << ';';
    }
    first = false;
    out << key << '=' << value;
  }
  return out.str();
}

void ParamList::serialize(ByteBuffer& out) const {
  out.write<std::uint64_t>(values_.size());
  for (const auto& [key, value] : values_) {
    out.write_string(key);
    out.write_string(value);
  }
}

ParamList ParamList::deserialize(ByteBuffer& in) {
  ParamList list;
  const auto count = in.read<std::uint64_t>();
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string key = in.read_string();
    std::string value = in.read_string();
    list.values_[std::move(key)] = std::move(value);
  }
  return list;
}

}  // namespace vira::util
