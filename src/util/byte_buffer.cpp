#include "util/byte_buffer.hpp"

namespace vira::util {

ByteBuffer ByteBuffer::copy_of(const void* src, std::size_t size) {
  ByteBuffer buffer;
  buffer.write_raw(src, size);
  return buffer;
}

void ByteBuffer::write_raw(const void* src, std::size_t size) {
  if (size == 0) {
    return;
  }
  const std::size_t offset = data_.size();
  data_.resize(offset + size);
  std::memcpy(data_.data() + offset, src, size);
}

void ByteBuffer::write_string(const std::string& s) {
  write<std::uint64_t>(s.size());
  write_raw(s.data(), s.size());
}

void ByteBuffer::seek(std::size_t pos) {
  if (pos > data_.size()) {
    throw std::out_of_range("ByteBuffer::seek past end");
  }
  read_pos_ = pos;
}

void ByteBuffer::check_available(std::size_t size) const {
  if (read_pos_ + size > data_.size()) {
    throw std::out_of_range("ByteBuffer: read past end (want " + std::to_string(size) +
                            " bytes, have " + std::to_string(data_.size() - read_pos_) + ")");
  }
}

void ByteBuffer::read_raw(void* dst, std::size_t size) {
  if (size == 0) {
    return;
  }
  check_available(size);
  std::memcpy(dst, data_.data() + read_pos_, size);
  read_pos_ += size;
}

std::string ByteBuffer::read_string() {
  const auto size = read<std::uint64_t>();
  check_available(size);
  std::string s(size, '\0');
  read_raw(s.data(), size);
  return s;
}

}  // namespace vira::util
