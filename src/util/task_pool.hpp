#pragma once

/// \file task_pool.hpp
/// Clock-seam-aware task pool with pollable futures.
///
/// TaskPool is the execution substrate of the pipelined block executor
/// (DESIGN.md "Execution engines"): worker nodes overlap DMS loads and
/// block decodes with computation by submitting them here. Two properties
/// distinguish it from a generic thread pool:
///
///   * Every pool thread participates in the util::Clock announced-thread
///     protocol (announce_thread before spawn, thread_begin/thread_end in
///     the body, join_thread on close), so the pool is schedulable by
///     sim::VirtualClock and the whole async path stays deterministic
///     under DST.
///   * All waits are clock-paced polls (clock_sleep slices), never
///     condition variables: a cooperative virtual clock can only advance
///     when blocking points release its token, which real cv waits do not.
///
/// Futures are single-producer single-consumer: get() may be called once.
/// A queued task can be cancelled (cancel() returns true iff the task will
/// never run); a running task always completes. Cancelling drops the
/// stored callable immediately, so RAII resources captured by the task
/// (e.g. DMS in-flight accounting tokens) settle at cancellation time.

#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/clock.hpp"

namespace vira::util {

template <typename T>
class Future;

/// Thrown by Future::get() when the task was cancelled before running.
struct TaskCancelled : std::runtime_error {
  TaskCancelled() : std::runtime_error("task cancelled before execution") {}
};

namespace detail {

/// Type-erased task record shared between the pool and one Future.
class TaskStateBase {
 public:
  enum class Status { kQueued, kRunning, kDone, kFailed, kCancelled };

  virtual ~TaskStateBase() = default;

  /// Pool side: runs the task if still queued (no-op if cancelled).
  void execute() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (status_ != Status::kQueued) {
        return;
      }
      status_ = Status::kRunning;
    }
    Status next = Status::kDone;
    try {
      run_impl();
    } catch (...) {
      error_ = std::current_exception();
      next = Status::kFailed;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      status_ = next;
    }
    drop_fn();  // release captured resources at completion, not future teardown
  }

  /// Consumer side: true iff the task had not started (it never will now).
  bool cancel() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (status_ != Status::kQueued) {
        return false;
      }
      status_ = Status::kCancelled;
    }
    drop_fn();
    return true;
  }

  bool settled() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return status_ == Status::kDone || status_ == Status::kFailed ||
           status_ == Status::kCancelled;
  }

 protected:
  virtual void run_impl() = 0;
  virtual void drop_fn() = 0;

  mutable std::mutex mutex_;
  Status status_ = Status::kQueued;
  std::exception_ptr error_;

  template <typename T>
  friend class TaskState;
  template <typename T>
  friend class ::vira::util::Future;
};

template <typename T>
class TaskState final : public TaskStateBase {
 public:
  explicit TaskState(std::function<T()> fn) : fn_(std::move(fn)) {}

  /// Pre-settled state (cache hits and other ready values).
  static std::shared_ptr<TaskState> make_ready(T value) {
    auto state = std::make_shared<TaskState>(std::function<T()>{});
    state->value_.emplace(std::move(value));
    state->status_ = Status::kDone;
    return state;
  }

  T take() {
    std::lock_guard<std::mutex> lock(mutex_);
    T out = std::move(*value_);
    value_.reset();
    return out;
  }

 private:
  void run_impl() override { value_.emplace(fn_()); }
  void drop_fn() override { fn_ = nullptr; }

  std::function<T()> fn_;
  std::optional<T> value_;
};

}  // namespace detail

/// Handle to one submitted task. Copyable (shared state); get() is
/// single-shot — the value is moved out.
template <typename T>
class Future {
 public:
  Future() = default;

  bool valid() const { return state_ != nullptr; }

  /// True once the task is done, failed, or cancelled.
  bool ready() const { return state_ && state_->settled(); }

  /// Clock-paced wait up to `budget`; true iff the task settled in time.
  bool wait_for(std::chrono::nanoseconds budget) const {
    if (!state_) {
      return false;
    }
    const auto deadline = clock_now() + budget;
    while (!state_->settled()) {
      const auto now = clock_now();
      if (now >= deadline) {
        return state_->settled();
      }
      clock_sleep(std::min<std::chrono::nanoseconds>(deadline - now, kWaitSlice));
    }
    return true;
  }

  /// Blocks (clock-paced) until settled, then returns the value, rethrows
  /// the task's exception, or throws TaskCancelled. Call at most once.
  T get() {
    if (!state_) {
      throw std::logic_error("Future::get on an invalid future");
    }
    while (!state_->settled()) {
      clock_sleep(kWaitSlice);
    }
    std::exception_ptr error;
    {
      std::lock_guard<std::mutex> lock(state_->mutex_);
      if (state_->status_ == detail::TaskStateBase::Status::kCancelled) {
        throw TaskCancelled();
      }
      error = state_->error_;
    }
    if (error) {
      std::rethrow_exception(error);
    }
    return state_->take();
  }

  /// True iff the task had not started and will now never run.
  bool cancel() const { return state_ && state_->cancel(); }

  /// An already-settled future holding `value` (no pool involved).
  static Future ready_value(T value) {
    Future f;
    f.state_ = detail::TaskState<T>::make_ready(std::move(value));
    return f;
  }

 private:
  static constexpr std::chrono::nanoseconds kWaitSlice = std::chrono::microseconds(500);

  friend class TaskPool;
  std::shared_ptr<detail::TaskState<T>> state_;
};

/// Fixed-size pool of clock-announced worker threads.
class TaskPool {
 public:
  /// `name` must be unique per live pool in a DST process (participant
  /// names key the virtual clock). Threads are named "<name>.<i>".
  /// `threads == 0` makes submit() run tasks inline on the caller.
  explicit TaskPool(int threads, std::string name = std::string());
  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  int thread_count() const { return static_cast<int>(threads_.size()); }
  std::size_t queued() const;

  /// Stops accepting work, cancels tasks that have not started, joins the
  /// pool threads. Idempotent; called by the destructor.
  void close();

  template <typename Fn, typename T = std::invoke_result_t<Fn>>
  Future<T> submit(Fn fn) {
    static_assert(!std::is_void_v<T>, "TaskPool futures carry a value");
    auto state = std::make_shared<detail::TaskState<T>>(std::function<T()>(std::move(fn)));
    Future<T> future;
    future.state_ = state;
    if (!enqueue(state)) {
      // Closed or zero threads: run inline (or settle as cancelled if closed).
      if (closed_.load(std::memory_order_acquire)) {
        state->cancel();
      } else {
        state->execute();
      }
    }
    return future;
  }

 private:
  bool enqueue(std::shared_ptr<detail::TaskStateBase> task);
  void worker_loop();

  static constexpr std::chrono::nanoseconds kIdleSlice = std::chrono::milliseconds(2);

  mutable std::mutex mutex_;
  std::mutex close_mutex_;  ///< serializes close(); held across thread joins
  std::deque<std::shared_ptr<detail::TaskStateBase>> queue_;
  std::atomic<bool> closed_{false};
  std::vector<std::thread> threads_;
  std::string name_;
};

}  // namespace vira::util
