#pragma once

/// \file rng.hpp
/// Deterministic pseudo-random numbers (SplitMix64 core).
///
/// Every stochastic part of this reproduction (synthetic datasets, seed
/// clouds, request traces) draws from this generator so that tests and
/// benchmarks are bit-reproducible across runs.

#include <cmath>
#include <cstdint>

namespace vira::util {

/// SplitMix64: tiny, fast, passes BigCrush when used as a stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0); }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

  /// Standard normal via Box-Muller (uses two uniforms per pair).
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    have_spare_ = true;
    return u * factor;
  }

  /// Derives an independent child stream (e.g. one per block).
  Rng fork(std::uint64_t salt) { return Rng(next_u64() ^ (salt * 0xd1342543de82ef95ull)); }

 private:
  std::uint64_t state_;
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace vira::util
