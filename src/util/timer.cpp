#include "util/timer.hpp"

#include <cmath>
#include <ctime>
#include <limits>

namespace vira::util {

std::chrono::steady_clock::time_point steady_epoch() noexcept {
  static const std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
  return epoch;
}

double thread_cpu_seconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) {
    return 0.0;
  }
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

void PhaseTimer::enter(const std::string& phase) {
  flush();
  // Commit the transition before notifying: a throwing listener must not
  // leave the timer stuck in the old phase (which would double-count it and
  // leave the mirrored obs span dangling open). Listener errors are
  // observability problems, never accounting problems — swallow them.
  const std::string previous = std::move(current_);
  current_ = phase;
  if (listener_ && previous != current_) {
    try {
      listener_(previous, current_);
    } catch (...) {
    }
  }
  entered_ = clock_now();
}

void PhaseTimer::flush() {
  if (!current_.empty()) {
    phases_[current_] += std::chrono::duration<double>(clock_now() - entered_).count();
  }
}

double PhaseTimer::seconds(const std::string& phase) const {
  auto it = phases_.find(phase);
  double value = it != phases_.end() ? it->second : 0.0;
  if (phase == current_ && !current_.empty()) {
    value += std::chrono::duration<double>(clock_now() - entered_).count();
  }
  return value;
}

double PhaseTimer::total() const {
  double sum = 0.0;
  for (const auto& [name, secs] : phases_) {
    sum += secs;
  }
  if (!current_.empty()) {
    sum += std::chrono::duration<double>(clock_now() - entered_).count();
  }
  return sum;
}

void PhaseTimer::merge(const PhaseTimer& other) {
  for (const auto& [name, secs] : other.phases_) {
    add(name, secs);
  }
}

void PhaseTimer::add(const std::string& phase, double seconds) {
  // Guard against garbage from deserialized or clock-skewed reports: drop
  // negative and non-finite contributions, saturate instead of overflowing.
  if (!std::isfinite(seconds) || seconds <= 0.0 || phase.empty()) {
    return;
  }
  double& slot = phases_[phase];
  const double next = slot + seconds;
  slot = std::isfinite(next) ? next : std::numeric_limits<double>::max();
}

void PhaseTimer::reset() {
  flush();  // keep listener symmetry: close the open phase before clearing
  const std::string previous = std::move(current_);
  current_.clear();
  phases_.clear();
  if (listener_ && !previous.empty()) {
    try {
      listener_(previous, std::string());
    } catch (...) {
    }
  }
}

ScopedPhase::ScopedPhase(PhaseTimer& timer, std::string phase)
    : timer_(timer), previous_(timer.current()) {
  timer_.enter(std::move(phase));
}

ScopedPhase::~ScopedPhase() { timer_.enter(previous_); }

}  // namespace vira::util
