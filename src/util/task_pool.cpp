#include "util/task_pool.hpp"

#include <cstdint>

namespace vira::util {

namespace {

/// Default pool names must still be unique per process: the virtual clock
/// keys participants by name, and two pools named "pool.0" would collide.
std::string default_pool_name() {
  static std::atomic<std::uint64_t> counter{0};
  return "pool" + std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

TaskPool::TaskPool(int threads, std::string name)
    : name_(name.empty() ? default_pool_name() : std::move(name)) {
  threads_.reserve(threads > 0 ? static_cast<std::size_t>(threads) : 0);
  for (int i = 0; i < threads; ++i) {
    const std::string thread_name = name_ + "." + std::to_string(i);
    // Announce from the spawning thread so a cooperative clock reserves the
    // schedule slot deterministically before the std::thread exists.
    global_clock().announce_thread(thread_name);
    threads_.emplace_back([this, thread_name] {
      global_clock().thread_begin(thread_name);
      worker_loop();
      global_clock().thread_end();
    });
  }
}

TaskPool::~TaskPool() { close(); }

std::size_t TaskPool::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void TaskPool::close() {
  // close_mutex_ serializes concurrent closers: the loser blocks here until
  // the winner has joined every thread, so close() returning always means
  // the pool is quiescent and safe to destroy. Never taken by pool threads,
  // so holding it across the joins cannot deadlock.
  std::lock_guard<std::mutex> close_lock(close_mutex_);
  std::deque<std::shared_ptr<detail::TaskStateBase>> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_.exchange(true, std::memory_order_acq_rel)) {
      return;
    }
    orphans.swap(queue_);
  }
  // Tasks that never started settle as cancelled so waiters unblock and
  // resources captured by the callables are released now.
  for (auto& task : orphans) {
    task->cancel();
  }
  for (auto& thread : threads_) {
    global_clock().join_thread(thread);
  }
  threads_.clear();
}

bool TaskPool::enqueue(std::shared_ptr<detail::TaskStateBase> task) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_.load(std::memory_order_acquire) || threads_.empty()) {
    return false;
  }
  queue_.push_back(std::move(task));
  return true;
}

void TaskPool::worker_loop() {
  for (;;) {
    std::shared_ptr<detail::TaskStateBase> task;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
      }
    }
    if (task) {
      task->execute();
      continue;
    }
    if (closed_.load(std::memory_order_acquire)) {
      return;
    }
    // Clock-paced idle poll (same idiom as the DMS prefetch worker): a cv
    // wait would block the virtual clock's token machine under DST.
    clock_sleep(kIdleSlice);
  }
}

}  // namespace vira::util
