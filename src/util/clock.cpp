#include "util/clock.hpp"

#include <atomic>

namespace vira::util {

namespace {
RealClock& real_clock() noexcept {
  static RealClock instance;
  return instance;
}

std::atomic<Clock*>& global_slot() noexcept {
  static std::atomic<Clock*> slot{nullptr};
  return slot;
}
}  // namespace

Clock& global_clock() noexcept {
  Clock* installed = global_slot().load(std::memory_order_acquire);
  return installed != nullptr ? *installed : real_clock();
}

void set_global_clock(Clock* clock) noexcept {
  global_slot().store(clock, std::memory_order_release);
}

}  // namespace vira::util
