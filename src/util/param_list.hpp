#pragma once

/// \file param_list.hpp
/// Ordered key/value parameter lists.
///
/// Commands are steered "by simple parameters" (paper Fig. 1) — an
/// iso-value, a viewpoint, seed points. ParamList is that parameter set:
/// it serializes onto the wire with the command request, and it is part of
/// the DMS data-item name (Sec. 4: "a data item is fully named by a source
/// file, a data type and format as well as an optional parameter list").

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/byte_buffer.hpp"

namespace vira::util {

class ParamList {
 public:
  ParamList() = default;

  void set(const std::string& key, const std::string& value) { values_[key] = value; }
  void set_double(const std::string& key, double value);
  void set_int(const std::string& key, std::int64_t value);
  void set_bool(const std::string& key, bool value);
  void set_doubles(const std::string& key, const std::vector<double>& values);

  bool contains(const std::string& key) const { return values_.count(key) > 0; }

  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key, const std::string& fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
  std::vector<double> get_doubles(const std::string& key) const;

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// Canonical "k1=v1;k2=v2" rendering (keys sorted); used in data-item
  /// names so identical parameter sets map to identical names.
  std::string canonical() const;

  void serialize(ByteBuffer& out) const;
  static ParamList deserialize(ByteBuffer& in);

  bool operator==(const ParamList& other) const { return values_ == other.values_; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace vira::util
