#include "util/string_util.hpp"

#include <cstdio>
#include <sstream>

namespace vira::util {

std::string human_bytes(std::uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buffer[64];
  if (unit == 0) {
    std::snprintf(buffer, sizeof(buffer), "%llu B", static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2f %s", value, units[unit]);
  }
  return buffer;
}

std::string human_seconds(double seconds) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f s", seconds);
  return buffer;
}

std::vector<std::string> split(const std::string& text, char separator) {
  std::vector<std::string> parts;
  std::string token;
  std::istringstream in(text);
  while (std::getline(in, token, separator)) {
    parts.push_back(token);
  }
  return parts;
}

std::string join(const std::vector<std::string>& parts, const std::string& separator) {
  std::ostringstream out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out << separator;
    }
    out << parts[i];
  }
  return out.str();
}

bool starts_with(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() && text.compare(0, prefix.size(), prefix) == 0;
}

std::string pad(const std::string& text, std::size_t width, bool left_align) {
  if (text.size() >= width) {
    return text.substr(0, width);
  }
  const std::string fill(width - text.size(), ' ');
  return left_align ? text + fill : fill + text;
}

}  // namespace vira::util
