#include "util/log.hpp"

#include <chrono>
#include <iostream>

#include "util/timer.hpp"

namespace vira::util {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() = default;

void Logger::set_level(LogLevel level) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  level_ = level;
}

LogLevel Logger::level() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return level_;
}

void Logger::set_stream(std::ostream* stream) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  stream_ = stream;
}

void Logger::write(LogLevel level, std::string_view component, std::string_view message) {
  // One process-wide epoch shared with obs::clock(): log timestamps and
  // trace spans line up, and the epoch no longer depends on which thread
  // logged first (the old function-local static raced to pick it).
  using Clock = std::chrono::steady_clock;
  const double elapsed = std::chrono::duration<double>(Clock::now() - steady_epoch()).count();

  std::lock_guard<std::mutex> lock(mutex_);
  if (level < level_) {
    return;
  }
  std::ostream& out = stream_ != nullptr ? *stream_ : std::cerr;
  out << '[' << to_string(level) << "] [" << elapsed << "s]";
  if (!component.empty()) {
    out << " [" << component << ']';
  }
  out << ' ' << message << '\n';
}

}  // namespace vira::util
