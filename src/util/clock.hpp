#pragma once

/// \file clock.hpp
/// The injectable time source of the runtime (DESIGN.md "Testing strategy").
///
/// Every component that reads the time or sleeps — scheduler liveness
/// deadlines, worker heartbeats, DMS prefetch pacing, wall/phase timers —
/// does so through the process-global Clock so deterministic simulation
/// testing (sim::VirtualClock) can replace real time wholesale. The default
/// RealClock forwards to std::chrono::steady_clock / this_thread::sleep_for
/// with no behavioral change.
///
/// The thread hooks exist for cooperative schedulers: a virtual clock must
/// know every participating thread to serialize them deterministically.
/// announce_thread() is called by the *spawning* thread before it creates a
/// std::thread (reserving a deterministic schedule slot under a unique
/// name); thread_begin()/thread_end() bracket the spawned thread's body;
/// join_thread() replaces a raw std::thread::join() so a cooperative clock
/// can release its scheduling token while really blocking. All four are
/// no-ops on RealClock.

#include <chrono>
#include <string>
#include <thread>

namespace vira::util {

class Clock {
 public:
  virtual ~Clock() = default;

  virtual std::chrono::steady_clock::time_point now() = 0;
  virtual void sleep_for(std::chrono::nanoseconds duration) = 0;

  /// --- cooperative-scheduling hooks (no-ops in real time) ------------------
  virtual void announce_thread(const std::string& /*name*/) {}
  virtual void thread_begin(const std::string& /*name*/) {}
  virtual void thread_end() {}
  virtual void join_thread(std::thread& thread) {
    if (thread.joinable()) {
      thread.join();
    }
  }
};

/// Real time: steady_clock + this_thread::sleep_for.
class RealClock final : public Clock {
 public:
  std::chrono::steady_clock::time_point now() override {
    return std::chrono::steady_clock::now();
  }
  void sleep_for(std::chrono::nanoseconds duration) override {
    if (duration.count() > 0) {
      std::this_thread::sleep_for(duration);
    }
  }
};

/// The process-global clock (RealClock until overridden).
Clock& global_clock() noexcept;

/// Installs `clock` as the global time source; nullptr restores RealClock.
/// Not thread-safe against concurrent time reads — install before the
/// threads under test start (the DST harness does this around each
/// scenario, on an otherwise quiescent process).
void set_global_clock(Clock* clock) noexcept;

inline std::chrono::steady_clock::time_point clock_now() { return global_clock().now(); }

template <typename Rep, typename Period>
inline void clock_sleep(std::chrono::duration<Rep, Period> duration) {
  global_clock().sleep_for(std::chrono::duration_cast<std::chrono::nanoseconds>(duration));
}

}  // namespace vira::util
