#pragma once

/// \file string_util.hpp
/// Small string / formatting helpers shared by reports and logs.

#include <cstdint>
#include <string>
#include <vector>

namespace vira::util {

/// "1.12 GB", "19.5 GB", "287 KB" — matches the paper's Table 1 style.
std::string human_bytes(std::uint64_t bytes);

/// Fixed precision seconds, e.g. "12.345 s".
std::string human_seconds(double seconds);

std::vector<std::string> split(const std::string& text, char separator);

std::string join(const std::vector<std::string>& parts, const std::string& separator);

bool starts_with(const std::string& text, const std::string& prefix);

/// Left-pads/truncates to an exact width (for ASCII tables).
std::string pad(const std::string& text, std::size_t width, bool left_align = true);

}  // namespace vira::util
