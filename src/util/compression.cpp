#include "util/compression.hpp"

#include <cstring>

namespace vira::util {

namespace {

constexpr std::size_t kHeaderSize = 1 + 8;

void write_header(std::vector<std::byte>& out, Codec codec, std::uint64_t raw_size) {
  out.resize(kHeaderSize);
  out[0] = static_cast<std::byte>(codec);
  std::memcpy(out.data() + 1, &raw_size, sizeof(raw_size));
}

/// --- RLE -------------------------------------------------------------------
/// Runs of 4..259 equal bytes become [0xFF][count-4][byte]; the escape byte
/// 0xFF itself is emitted as a run of length >= 1.

void rle_compress(const std::byte* input, std::size_t size, std::vector<std::byte>& out) {
  // Long runs (4..255) encode as [0xFF][run-4 in 0..251][byte]; the escape
  // byte itself, when appearing 1..3 times, encodes as [0xFF][252+count-1]
  // [0xFF]. The two field ranges are disjoint.
  std::size_t i = 0;
  while (i < size) {
    std::size_t run = 1;
    while (i + run < size && input[i + run] == input[i] && run < 255) {
      ++run;
    }
    if (run >= 4) {
      out.push_back(std::byte{0xFF});
      out.push_back(static_cast<std::byte>(run - 4));
      out.push_back(input[i]);
      i += run;
    } else if (input[i] == std::byte{0xFF}) {
      out.push_back(std::byte{0xFF});
      out.push_back(static_cast<std::byte>(252 + run - 1));
      out.push_back(input[i]);
      i += run;
    } else {
      out.push_back(input[i]);
      ++i;
    }
  }
}

bool rle_decompress(const std::byte* input, std::size_t size, std::vector<std::byte>& out,
                    std::size_t expected) {
  std::size_t i = 0;
  while (i < size) {
    if (input[i] == std::byte{0xFF}) {
      if (i + 2 >= size) {
        return false;
      }
      const auto field = static_cast<unsigned>(input[i + 1]);
      const std::size_t run = field >= 252 ? (field - 252 + 1) : (field + 4);
      out.insert(out.end(), run, input[i + 2]);
      i += 3;
    } else {
      out.push_back(input[i]);
      ++i;
    }
    if (out.size() > expected) {
      return false;
    }
  }
  return out.size() == expected;
}

/// --- LZ77 ------------------------------------------------------------------
/// Token stream: [literal count u8][literals...] then optionally
/// [match length u8 >= 4][offset u16]; literal count 255 means "255
/// literals and more follow". Window 64 KiB, greedy hash-chain matcher.

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 255;
constexpr std::size_t kWindow = 65535;
constexpr std::size_t kHashSize = 1 << 15;

std::uint32_t hash4(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> 17;  // into kHashSize range
}

void lz_compress(const std::byte* input, std::size_t size, std::vector<std::byte>& out) {
  std::vector<std::int64_t> head(kHashSize, -1);
  std::vector<std::int64_t> prev(size, -1);

  std::size_t literal_start = 0;
  // Literal runs: [255][255 literals] repeated while more than 254 remain,
  // then a final [n][n literals] with n in 0..254.
  auto flush_literals = [&](std::size_t end) {
    std::size_t count = end - literal_start;
    while (count >= 255) {
      out.push_back(std::byte{255});
      out.insert(out.end(), input + literal_start, input + literal_start + 255);
      literal_start += 255;
      count -= 255;
    }
    out.push_back(static_cast<std::byte>(count));
    out.insert(out.end(), input + literal_start, input + literal_start + count);
    literal_start += count;
  };

  std::size_t i = 0;
  while (i < size) {
    std::size_t best_len = 0;
    std::size_t best_offset = 0;
    if (i + kMinMatch <= size) {
      const auto bucket = hash4(input + i) % kHashSize;
      const std::int64_t old_head = head[bucket];
      std::int64_t candidate = old_head;
      int chain = 0;
      while (candidate >= 0 && chain < 32) {
        const auto offset = i - static_cast<std::size_t>(candidate);
        if (offset > kWindow) {
          break;
        }
        std::size_t len = 0;
        const std::size_t limit = std::min(size - i, kMaxMatch);
        while (len < limit && input[candidate + len] == input[i + len]) {
          ++len;
        }
        if (len > best_len) {
          best_len = len;
          best_offset = offset;
        }
        candidate = prev[static_cast<std::size_t>(candidate)];
        ++chain;
      }
      prev[i] = old_head;  // chain this position behind the previous head
      head[bucket] = static_cast<std::int64_t>(i);
    }

    if (best_len >= kMinMatch) {
      flush_literals(i);
      out.push_back(static_cast<std::byte>(best_len));
      const auto offset16 = static_cast<std::uint16_t>(best_offset);
      out.push_back(static_cast<std::byte>(offset16 & 0xFF));
      out.push_back(static_cast<std::byte>(offset16 >> 8));
      // Index the skipped positions so later matches can reference them.
      for (std::size_t k = 1; k < best_len && i + k + kMinMatch <= size; ++k) {
        const auto bucket = hash4(input + i + k) % kHashSize;
        prev[i + k] = head[bucket];
        head[bucket] = static_cast<std::int64_t>(i + k);
      }
      i += best_len;
      literal_start = i;
    } else {
      ++i;
    }
  }
  flush_literals(size);
}

bool lz_decompress(const std::byte* input, std::size_t size, std::vector<std::byte>& out,
                   std::size_t expected) {
  std::size_t i = 0;
  while (i < size) {
    // Literal run: chained [255][255 bytes] chunks, then [n][n bytes].
    while (true) {
      if (i >= size) {
        return out.size() == expected;
      }
      const std::size_t count = static_cast<unsigned>(input[i]);
      ++i;
      if (i + count > size || out.size() + count > expected) {
        return false;
      }
      out.insert(out.end(), input + i, input + i + count);
      i += count;
      if (count != 255) {
        break;
      }
    }
    if (i >= size) {
      break;
    }
    // Match.
    const std::size_t len = static_cast<unsigned>(input[i]);
    if (i + 3 > size || len < kMinMatch) {
      return false;
    }
    const std::size_t offset = static_cast<unsigned>(input[i + 1]) |
                               (static_cast<unsigned>(input[i + 2]) << 8);
    i += 3;
    if (offset == 0 || offset > out.size() || out.size() + len > expected) {
      return false;
    }
    const std::size_t start = out.size() - offset;
    for (std::size_t k = 0; k < len; ++k) {
      out.push_back(out[start + k]);  // overlapping copies are well-defined here
    }
  }
  return out.size() == expected;
}

}  // namespace

std::vector<std::byte> compress(const std::byte* input, std::size_t size, Codec codec) {
  std::vector<std::byte> out;
  write_header(out, codec, size);
  switch (codec) {
    case Codec::kStore:
      out.insert(out.end(), input, input + size);
      return out;
    case Codec::kRle:
      rle_compress(input, size, out);
      break;
    case Codec::kLz:
      lz_compress(input, size, out);
      break;
  }
  if (out.size() >= size + kHeaderSize) {
    // Expansion: store raw instead.
    out.clear();
    write_header(out, Codec::kStore, size);
    out.insert(out.end(), input, input + size);
  }
  return out;
}

std::vector<std::byte> compress(const ByteBuffer& input, Codec codec) {
  return compress(input.data(), input.size(), codec);
}

std::optional<std::vector<std::byte>> decompress(const std::byte* input, std::size_t size) {
  if (size < kHeaderSize) {
    return std::nullopt;
  }
  const auto codec = static_cast<Codec>(input[0]);
  std::uint64_t raw_size = 0;
  std::memcpy(&raw_size, input + 1, sizeof(raw_size));
  if (raw_size > (1ull << 33)) {
    return std::nullopt;  // sanity: 8 GiB cap
  }
  std::vector<std::byte> out;
  out.reserve(raw_size);
  const std::byte* payload = input + kHeaderSize;
  const std::size_t payload_size = size - kHeaderSize;
  switch (codec) {
    case Codec::kStore:
      if (payload_size != raw_size) {
        return std::nullopt;
      }
      out.assign(payload, payload + payload_size);
      return out;
    case Codec::kRle:
      if (!rle_decompress(payload, payload_size, out, raw_size)) {
        return std::nullopt;
      }
      return out;
    case Codec::kLz:
      if (!lz_decompress(payload, payload_size, out, raw_size)) {
        return std::nullopt;
      }
      return out;
  }
  return std::nullopt;
}

std::optional<ByteBuffer> decompress(const ByteBuffer& input) {
  auto bytes = decompress(input.data(), input.size());
  if (!bytes) {
    return std::nullopt;
  }
  return ByteBuffer(std::move(*bytes));
}

double compression_ratio(std::size_t raw, std::size_t compressed) {
  return raw > 0 ? static_cast<double>(compressed) / static_cast<double>(raw) : 1.0;
}

}  // namespace vira::util
