#pragma once

/// \file stats.hpp
/// Streaming statistics helpers used by the DMS statistics unit (Sec. 4.2)
/// and by the benchmark harnesses.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace vira::util {

/// Welford running mean / variance plus min and max.
class RunningStat {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ > 0 ? mean_ : 0.0; }
  double sum() const noexcept { return sum_; }
  double variance() const noexcept { return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0; }
  double stddev() const noexcept;
  double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
  double max() const noexcept { return count_ > 0 ? max_ : 0.0; }

  void reset() { *this = RunningStat(); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width histogram over [lo, hi); out-of-range samples land in the
/// first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  std::uint64_t total() const noexcept { return total_; }

  /// Approximate quantile (q in [0,1]) from bucket boundaries.
  double quantile(double q) const;

  /// Multi-line ASCII rendering, used by bench reports.
  std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace vira::util
