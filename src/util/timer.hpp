#pragma once

/// \file timer.hpp
/// Wall-clock and CPU timers plus a phase-accounting helper.
///
/// The paper's evaluation (Sec. 7, Fig. 15) splits command runtime into
/// compute / read / send shares; PhaseTimer provides exactly that
/// attribution for the real (threaded) runtime.

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "util/clock.hpp"

namespace vira::util {

/// Process-wide fixed steady_clock epoch, captured once on first use.
/// Logger timestamps and the obs trace clock (obs::clock()) both measure
/// against this epoch, so interleaved log lines and Chrome-trace spans line
/// up on a single timeline. Call it early (any logging call does) to pin
/// the epoch near process start.
std::chrono::steady_clock::time_point steady_epoch() noexcept;

/// Monotonic wall-clock stopwatch with pause/resume semantics. Reads the
/// injectable global clock so simulated runs report virtual durations.
class WallTimer {
 public:
  WallTimer() { restart(); }

  void restart() {
    accumulated_ = 0.0;
    running_ = true;
    start_ = clock_now();
  }

  void pause() {
    if (running_) {
      accumulated_ += std::chrono::duration<double>(clock_now() - start_).count();
      running_ = false;
    }
  }

  void resume() {
    if (!running_) {
      running_ = true;
      start_ = clock_now();
    }
  }

  /// Seconds accumulated so far (keeps running).
  double seconds() const {
    double total = accumulated_;
    if (running_) {
      total += std::chrono::duration<double>(clock_now() - start_).count();
    }
    return total;
  }

 private:
  std::chrono::steady_clock::time_point start_{};
  double accumulated_ = 0.0;
  bool running_ = true;
};

/// Per-thread CPU time in seconds (CLOCK_THREAD_CPUTIME_ID).
double thread_cpu_seconds();

/// Accumulates named phases ("compute", "read", "send", ...) so a command
/// can report where its runtime went. Not thread-safe; each worker keeps
/// its own instance and the master merges them.
///
/// Commands should not grow new direct uses: phase attribution now flows
/// through vira::obs spans (CommandContext installs a listener that mirrors
/// every transition into the tracer). PhaseTimer remains as the thin
/// aggregate adapter that perf::profile_* calibration and WorkerReport
/// serialization consume.
class PhaseTimer {
 public:
  /// Callback fired on every phase transition with (previous, next) names
  /// (either may be empty at the accounting boundaries). Used to mirror
  /// phases into obs spans without util depending on obs.
  using Listener = std::function<void(const std::string& previous, const std::string& next)>;
  /// Starts (or resumes) accounting the named phase, stopping the previous
  /// one. Passing an empty name stops accounting entirely.
  void enter(const std::string& phase);

  /// Stops the current phase.
  void stop() { enter(std::string()); }

  /// Seconds accumulated in a phase (0 for unknown names).
  double seconds(const std::string& phase) const;

  /// All phases with their accumulated seconds.
  const std::map<std::string, double>& phases() const { return phases_; }

  /// Name of the phase currently being accounted (empty if none).
  const std::string& current() const { return current_; }

  /// Sum over all phases.
  double total() const;

  /// Adds the phases of another timer into this one. Non-finite and
  /// negative contributions (clock skew in a deserialized report) are
  /// dropped, and saturating addition guards against overflow to inf.
  void merge(const PhaseTimer& other);

  /// Adds `seconds` into the named phase, with the same guards as merge().
  void add(const std::string& phase, double seconds);

  /// Installs (or clears, with nullptr) the transition listener.
  void set_listener(Listener listener) { listener_ = std::move(listener); }

  void reset();

 private:
  void flush();

  std::map<std::string, double> phases_;
  std::string current_;
  std::chrono::steady_clock::time_point entered_{};
  Listener listener_;
};

/// RAII phase guard: enters `phase` on construction, restores the previous
/// phase on destruction.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimer& timer, std::string phase);
  ~ScopedPhase();
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimer& timer_;
  std::string previous_;
};

}  // namespace vira::util
