#pragma once

/// \file byte_buffer.hpp
/// Growable binary buffer with separate read/write cursors.
///
/// ByteBuffer is the wire unit of the communication layer: command
/// parameters, streamed geometry fragments and DMS blocks are all encoded
/// into ByteBuffers before crossing a Transport. All multi-byte values are
/// stored in native byte order; Viracocha only ever talks to itself, so no
/// endianness conversion is performed (the original system made the same
/// assumption for its MPI payloads).

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace vira::util {

class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(std::vector<std::byte> data) : data_(std::move(data)) {}

  /// Wraps a copy of raw memory.
  static ByteBuffer copy_of(const void* src, std::size_t size);

  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }
  const std::byte* data() const noexcept { return data_.data(); }
  std::byte* data() noexcept { return data_.data(); }
  std::span<const std::byte> bytes() const noexcept { return {data_.data(), data_.size()}; }

  void clear() noexcept {
    data_.clear();
    read_pos_ = 0;
  }
  void reserve(std::size_t bytes) { data_.reserve(bytes); }

  /// --- writing -----------------------------------------------------------
  void write_raw(const void* src, std::size_t size);

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write(const T& value) {
    write_raw(&value, sizeof(T));
  }

  void write_string(const std::string& s);

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write_vector(const std::vector<T>& v) {
    write<std::uint64_t>(v.size());
    if (!v.empty()) {
      write_raw(v.data(), v.size() * sizeof(T));
    }
  }

  /// --- reading -----------------------------------------------------------
  std::size_t read_pos() const noexcept { return read_pos_; }
  void seek(std::size_t pos);
  std::size_t remaining() const noexcept { return data_.size() - read_pos_; }

  void read_raw(void* dst, std::size_t size);

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T read() {
    T value;
    read_raw(&value, sizeof(T));
    return value;
  }

  std::string read_string();

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> read_vector() {
    const auto count = read<std::uint64_t>();
    // Divide instead of multiplying: count * sizeof(T) can wrap for an
    // untrusted on-wire count, sneaking past the bounds check.
    if (count > remaining() / sizeof(T)) {
      throw std::out_of_range("ByteBuffer: vector length exceeds remaining bytes");
    }
    std::vector<T> v(count);
    if (count > 0) {
      read_raw(v.data(), count * sizeof(T));
    }
    return v;
  }

  bool operator==(const ByteBuffer& other) const noexcept { return data_ == other.data_; }

 private:
  void check_available(std::size_t size) const;

  std::vector<std::byte> data_;
  std::size_t read_pos_ = 0;
};

/// Non-owning read cursor over a span of immutable bytes.
///
/// Mirrors ByteBuffer's read API without copying the underlying storage —
/// the zero-copy decode path reads DMS blobs (immutable once cached)
/// through this view instead of deep-copying them just to get a cursor.
/// The caller must keep the referenced memory alive for the reader's
/// lifetime.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> bytes) : bytes_(bytes) {}
  /// Views the buffer's *unread* remainder (from its current read_pos).
  explicit ByteReader(const ByteBuffer& buffer)
      : bytes_(buffer.bytes().subspan(buffer.read_pos())) {}

  std::size_t pos() const noexcept { return pos_; }
  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }

  void read_raw(void* dst, std::size_t size) {
    check_available(size);
    if (size > 0) {
      std::memcpy(dst, bytes_.data() + pos_, size);
      pos_ += size;
    }
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T read() {
    T value;
    read_raw(&value, sizeof(T));
    return value;
  }

  std::string read_string() {
    const auto length = read<std::uint64_t>();
    check_available(length);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), length);
    pos_ += length;
    return s;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> read_vector() {
    const auto count = read<std::uint64_t>();
    // Divide instead of multiplying: count * sizeof(T) can wrap for an
    // untrusted on-wire count, sneaking past the bounds check.
    if (count > remaining() / sizeof(T)) {
      throw std::out_of_range("ByteReader: vector length exceeds remaining bytes");
    }
    std::vector<T> v(count);
    if (count > 0) {
      read_raw(v.data(), count * sizeof(T));
    }
    return v;
  }

  /// Zero-copy view of the next `size` bytes, advancing the cursor. Lets a
  /// decoder transform a payload (e.g. de-interleave xyz into SoA arrays)
  /// straight out of a cached blob without an intermediate vector copy.
  std::span<const std::byte> view(std::size_t size) {
    check_available(size);
    const auto out = bytes_.subspan(pos_, size);
    pos_ += size;
    return out;
  }

 private:
  void check_available(std::size_t size) const {
    if (size > remaining()) {
      throw std::out_of_range("ByteReader: read past end of view");
    }
  }

  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace vira::util
