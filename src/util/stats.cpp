#include "util/stats.hpp"

#include <cmath>
#include <sstream>

namespace vira::util {

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets == 0 ? 1 : buckets, 0) {}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  std::size_t index = 0;
  if (span > 0.0) {
    const double t = (x - lo_) / span;
    const auto scaled = static_cast<long long>(std::floor(t * static_cast<double>(counts_.size())));
    if (scaled < 0) {
      index = 0;
    } else if (scaled >= static_cast<long long>(counts_.size())) {
      index = counts_.size() - 1;
    } else {
      index = static_cast<std::size_t>(scaled);
    }
  }
  ++counts_[index];
  ++total_;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) {
    return lo_;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  const double bucket_width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += static_cast<double>(counts_[i]);
    if (cumulative >= target) {
      return lo_ + bucket_width * (static_cast<double>(i) + 0.5);
    }
  }
  return hi_;
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 0;
  for (const auto c : counts_) {
    peak = std::max(peak, c);
  }
  std::ostringstream out;
  const double bucket_width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double left = lo_ + bucket_width * static_cast<double>(i);
    const auto bar = peak > 0 ? static_cast<std::size_t>(counts_[i] * width / peak) : 0;
    out << "[" << left << ", " << (left + bucket_width) << ") " << std::string(bar, '#') << ' '
        << counts_[i] << '\n';
  }
  return out.str();
}

}  // namespace vira::util
