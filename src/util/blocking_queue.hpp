#pragma once

/// \file blocking_queue.hpp
/// Unbounded MPMC blocking queue with close semantics.
///
/// Used as the mailbox primitive of the in-process transport and as the
/// client-side stream of partial results. pop() blocks until an item is
/// available or the queue is closed; a closed, drained queue returns
/// std::nullopt, which consumers treat as end-of-stream.

#include <condition_variable>
#include <chrono>
#include <deque>
#include <mutex>
#include <optional>

namespace vira::util {

template <typename T>
class BlockingQueue {
 public:
  /// Returns false if the queue is already closed (item is dropped).
  bool push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) {
        return false;
      }
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item arrives or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Like pop() but gives up after `timeout`; returns nullopt on timeout
  /// or on closed-and-drained.
  std::optional<T> pop_for(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!cv_.wait_for(lock, timeout, [&] { return !items_.empty() || closed_; })) {
      return std::nullopt;
    }
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace vira::util
