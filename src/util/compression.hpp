#pragma once

/// \file compression.hpp
/// Lightweight lossless compressors for block payloads.
///
/// The paper evaluated compressing blocks before peer transfer and
/// rejected it: "Data compression has been considered, too, but has been
/// found ineffective due to long runtimes and low compression rates
/// compared to transmission time" (Sec. 4.3). To reproduce that *finding*
/// rather than assume it, this module provides two from-scratch codecs —
/// byte-wise RLE and a greedy LZ77 with a hash-chain matcher — and
/// `bench_compression` measures ratio and throughput against the modeled
/// interconnects on real serialized CFD blocks.
///
/// Format (both codecs): [u8 codec id][u64 raw size][payload...]; the
/// decoder dispatches on the id, so streams are self-describing.

#include <cstdint>
#include <optional>
#include <vector>

#include "util/byte_buffer.hpp"

namespace vira::util {

enum class Codec : std::uint8_t {
  kStore = 0,  ///< no compression (fallback when expansion would occur)
  kRle = 1,
  kLz = 2,
};

/// Compresses `input` with the requested codec. If the codec would expand
/// the data, the result silently falls back to kStore (the header says so).
std::vector<std::byte> compress(const std::byte* input, std::size_t size, Codec codec);
std::vector<std::byte> compress(const ByteBuffer& input, Codec codec);

/// Decompresses a buffer produced by compress(). Returns nullopt on
/// malformed input (never crashes on garbage).
std::optional<std::vector<std::byte>> decompress(const std::byte* input, std::size_t size);
std::optional<ByteBuffer> decompress(const ByteBuffer& input);

/// Achieved ratio: compressed size / raw size (1.0 = no gain).
double compression_ratio(std::size_t raw, std::size_t compressed);

}  // namespace vira::util
