#include "perf/replay.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "dms/prefetcher.hpp"
#include "sim/channel.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace vira::perf {

namespace {

/// Per-worker view of the shared disk: loads serialize on the file-server
/// link; a load in flight is joinable so a demand request never duplicates
/// a running prefetch.
struct InflightLoad {
  vira::sim::ProcessHandle handle;
  /// Set when a demand request joined this load: it is promoted to demand
  /// priority (stops yielding the disk to other speculation).
  std::shared_ptr<bool> boosted = std::make_shared<bool>(false);
};

struct WorkerCacheState {
  std::set<std::uint64_t> cached;
  std::set<std::uint64_t> prefetched_pending;  // inserted by prefetch, not yet used
  std::map<std::uint64_t, InflightLoad> inflight;
};

struct Shared {
  vira::sim::Engine engine;
  vira::sim::Resource disk;
  vira::sim::Resource client;
  vira::sim::Resource intra;
  vira::sim::Resource cpus;  ///< the node's processors (24 on the SUN Fire)
  const ClusterModel& cluster;
  ReplayResult result;
  double first_packet_time = -1.0;
  double finish_time = 0.0;
  int demand_waiting = 0;  ///< demand loads queued at the disk right now

  explicit Shared(const ClusterModel& model)
      : disk(engine, 1, "disk"),
        client(engine, 1, "client-link"),
        intra(engine, 1, "intra"),
        cpus(engine, model.cpus, "cpus"),
        cluster(model) {}
};

double load_seconds(const ClusterModel& cluster, std::uint64_t bytes) {
  return cluster.disk_latency + static_cast<double>(bytes) / cluster.disk_bandwidth;
}

/// Burns CPU time on one of the node's processors: more workers than CPUs
/// queue here (irrelevant for the paper's ≤16-worker sweeps on 24 CPUs,
/// decisive if a caller oversubscribes).
vira::sim::Task<void> burn_cpu(Shared& shared, double seconds) {
  co_await shared.cpus.acquire();
  co_await shared.engine.delay(seconds);
  shared.cpus.release();
}

/// Loads one item through the shared disk into a worker cache.
/// Prefetch loads are LOW priority: they back off while any demand load is
/// queued, so speculation can never delay a worker that is actually
/// blocked on data (with a single shared disk head a FIFO queue would let
/// prefetches hurt at high worker counts — the real DMS serves demand
/// requests first).
vira::sim::Task<void> load_item(Shared& shared, WorkerCacheState& cache, std::uint64_t item,
                                std::uint64_t bytes, bool from_prefetch,
                                std::shared_ptr<bool> boosted) {
  if (from_prefetch) {
    // Transfer in small slices, yielding the disk between slices whenever a
    // demand load is queued — speculation must never block a worker that is
    // actually starved for data. Once a demand joins this very load
    // (boosted), it stops yielding and runs at demand priority.
    double remaining = load_seconds(shared.cluster, bytes);
    const double slice = 0.02;
    while (remaining > 0.0) {
      while (!*boosted && (shared.demand_waiting > 0 || shared.disk.available() == 0)) {
        co_await shared.engine.delay(1e-3);
        if (shared.demand_waiting == 0 && shared.disk.available() > 0) {
          break;
        }
      }
      co_await shared.disk.acquire();
      const double chunk = *boosted ? remaining : std::min(slice, remaining);
      co_await shared.engine.delay(chunk);
      shared.disk.release();
      remaining -= chunk;
    }
  } else {
    co_await shared.disk.acquire();
    co_await shared.engine.delay(load_seconds(shared.cluster, bytes));
    shared.disk.release();
  }
  cache.cached.insert(item);
  if (from_prefetch) {
    cache.prefetched_pending.insert(item);
  }
  cache.inflight.erase(item);
}

/// Acquires an item for demand use; accounts wait time as read phase.
vira::sim::Task<void> demand_item(Shared& shared, WorkerCacheState& cache, std::uint64_t item,
                                  std::uint64_t bytes, bool use_dms) {
  const double wait_start = shared.engine.now();
  if (use_dms && cache.cached.count(item) > 0) {
    ++shared.result.cache_hits;
    if (cache.prefetched_pending.erase(item) > 0) {
      ++shared.result.prefetch_useful;
    }
    co_await shared.engine.delay(shared.cluster.cache_hit_seconds);
    shared.result.read_seconds += shared.engine.now() - wait_start;
    co_return;
  }
  auto inflight = cache.inflight.find(item);
  if (use_dms && inflight != cache.inflight.end()) {
    *inflight->second.boosted = true;  // promote to demand priority
    co_await inflight->second.handle.join();
    ++shared.result.cache_hits;
    if (cache.prefetched_pending.erase(item) > 0) {
      ++shared.result.prefetch_useful;
    }
    shared.result.read_seconds += shared.engine.now() - wait_start;
    co_return;
  }
  ++shared.result.demand_loads;
  ++shared.demand_waiting;
  co_await shared.disk.acquire();
  --shared.demand_waiting;
  co_await shared.engine.delay(load_seconds(shared.cluster, bytes));
  shared.disk.release();
  if (use_dms) {
    cache.cached.insert(item);
  }
  shared.result.read_seconds += shared.engine.now() - wait_start;
}

void spawn_prefetch(Shared& shared, WorkerCacheState& cache, std::uint64_t item,
                    std::uint64_t bytes) {
  if (cache.cached.count(item) > 0 || cache.inflight.count(item) > 0) {
    return;
  }
  ++shared.result.prefetch_issued;
  InflightLoad load;
  load.handle = shared.engine.spawn(load_item(shared, cache, item, bytes, true, load.boosted));
  cache.inflight.emplace(item, std::move(load));
}

vira::sim::Task<void> send_packet(Shared& shared, std::uint64_t bytes, bool record_first) {
  const double start = shared.engine.now();
  // Worker-side packing/serialization: the overhead streaming "generally
  // introduces ... compared to standard transfer methods" (paper Sec. 5).
  co_await shared.engine.delay(shared.cluster.fragment_pack_seconds);
  co_await shared.client.acquire();
  co_await shared.engine.delay(shared.cluster.client_latency +
                               static_cast<double>(bytes) / shared.cluster.client_bandwidth);
  shared.client.release();
  shared.result.send_seconds += shared.engine.now() - start;
  ++shared.result.fragments;
  if (record_first && shared.first_packet_time < 0.0) {
    shared.first_packet_time = shared.engine.now();
  }
}

// ---------------------------------------------------------------------------
// Extraction replay
// ---------------------------------------------------------------------------

struct ExtractionShared {
  Shared base;
  vira::sim::Channel<std::uint64_t> gather;  ///< result bytes per worker
  explicit ExtractionShared(const ClusterModel& model) : base(model), gather(base.engine) {}
};

std::pair<int, int> chunk(int total, int rank, int size) {
  const int base = total / size;
  const int extra = total % size;
  const int begin = rank * base + std::min(rank, extra);
  return {begin, begin + base + (rank < extra ? 1 : 0)};
}

vira::sim::Task<void> extraction_worker(ExtractionShared& shared, const ExtractionProfile& profile,
                                        const ReplayConfig& config, WorkerCacheState& cache,
                                        int rank) {
  Shared& s = shared.base;
  // The scheduler messages group members one after another; bigger groups
  // take longer to form and collect (the overhead that makes 16 workers
  // slower than 8 in Fig. 6).
  co_await s.engine.delay(s.cluster.dispatch_seconds +
                          s.cluster.per_worker_overhead * config.workers);

  const auto [begin, end] = chunk(static_cast<int>(profile.blocks.size()), rank, config.workers);
  std::uint64_t my_result_bytes = 0;

  for (int b = begin; b < end; ++b) {
    const BlockCost& cost = profile.blocks[static_cast<std::size_t>(b)];
    // System prefetch: start loading the next owned block before computing
    // on this one ("computation time can be optimally overlapped with I/O",
    // paper Sec. 7.2).
    if (config.use_dms && config.prefetch && b + 1 < end) {
      const BlockCost& next = profile.blocks[static_cast<std::size_t>(b + 1)];
      spawn_prefetch(s, cache, static_cast<std::uint64_t>(b + 1), next.read_bytes);
    }
    co_await demand_item(s, cache, static_cast<std::uint64_t>(b), cost.read_bytes,
                         config.use_dms);

    my_result_bytes += cost.result_bytes;
    if (config.streaming && cost.stream_fragments > 0) {
      // Fragments leave DURING the block's computation ("whenever a
      // user-specified number of triangles is computed, these fragments
      // ... are directly streamed", Sec. 6.3): interleave compute slices
      // with sends.
      const std::uint64_t fragment_bytes =
          cost.result_bytes / static_cast<std::uint64_t>(cost.stream_fragments);
      const double slice = cost.compute_seconds * s.cluster.cpu_scale /
                           static_cast<double>(cost.stream_fragments);
      for (int f = 0; f < cost.stream_fragments; ++f) {
        const double compute_start = s.engine.now();
        co_await burn_cpu(s, slice);
        s.result.compute_seconds += s.engine.now() - compute_start;
        co_await send_packet(s, fragment_bytes, /*record_first=*/true);
      }
    } else {
      const double compute_start = s.engine.now();
      co_await burn_cpu(s, cost.compute_seconds * s.cluster.cpu_scale);
      s.result.compute_seconds += s.engine.now() - compute_start;
    }
  }
  // Report to the master: streamed commands only send a small summary.
  shared.gather.push(config.streaming ? 64 : my_result_bytes);
}

vira::sim::Task<void> extraction_master(ExtractionShared& shared, const ReplayConfig& config) {
  Shared& s = shared.base;
  std::uint64_t total_bytes = 0;
  for (int w = 0; w < config.workers; ++w) {
    auto part = co_await shared.gather.pop();
    if (!part) {
      break;
    }
    // Receive the worker's partial result over the intra link.
    const double start = s.engine.now();
    co_await s.intra.acquire();
    co_await s.engine.delay(s.cluster.intra_latency +
                            static_cast<double>(*part) / s.cluster.intra_bandwidth);
    s.intra.release();
    s.result.send_seconds += s.engine.now() - start;
    total_bytes += *part;
  }
  // Ship the merged package (or the end-of-stream summary) to the client.
  co_await send_packet(s, total_bytes, /*record_first=*/!config.streaming);
  s.finish_time = s.engine.now();
}

}  // namespace

ReplayResult replay_extraction(const ExtractionProfile& profile, const ClusterModel& cluster,
                               const ReplayConfig& config) {
  ExtractionShared shared(cluster);
  const std::size_t cache_count =
      config.shared_cache ? 1 : static_cast<std::size_t>(config.workers);
  std::vector<WorkerCacheState> caches(cache_count);
  auto cache_of = [&](int worker) -> WorkerCacheState& {
    return caches[config.shared_cache ? 0 : static_cast<std::size_t>(worker)];
  };

  if (config.use_dms && config.warm_cache) {
    // The paper's warm runs: one identical prior call filled the caches, so
    // every owned block is already resident at its worker's proxy.
    for (int w = 0; w < config.workers; ++w) {
      const auto [begin, end] =
          chunk(static_cast<int>(profile.blocks.size()), w, config.workers);
      for (int b = begin; b < end; ++b) {
        cache_of(w).cached.insert(static_cast<std::uint64_t>(b));
      }
    }
  }

  for (int w = 0; w < config.workers; ++w) {
    shared.base.engine.spawn(extraction_worker(shared, profile, config, cache_of(w), w));
  }
  shared.base.engine.spawn(extraction_master(shared, config));
  shared.base.engine.run();

  ReplayResult result = shared.base.result;
  result.total_runtime = shared.base.finish_time;
  result.latency = shared.base.first_packet_time >= 0.0 ? shared.base.first_packet_time
                                                        : shared.base.finish_time;
  return result;
}

// ---------------------------------------------------------------------------
// Pathline replay
// ---------------------------------------------------------------------------

namespace {

std::uint64_t path_item(int step, int block) {
  return static_cast<std::uint64_t>(step) * 100000ull + static_cast<std::uint64_t>(block);
}

struct PathShared {
  Shared base;
  vira::sim::Channel<std::uint64_t> gather;
  explicit PathShared(const ClusterModel& model) : base(model), gather(base.engine) {}
};

vira::sim::Task<void> pathline_worker(PathShared& shared, const PathlineProfile& profile,
                                      const PathlineReplayConfig& config,
                                      WorkerCacheState& cache, int rank,
                                      vira::dms::Prefetcher* prefetcher) {
  Shared& s = shared.base;
  co_await s.engine.delay(s.cluster.dispatch_seconds +
                          s.cluster.per_worker_overhead * config.workers);

  std::uint64_t my_result_bytes = 0;
  const std::size_t seed_count = profile.seeds.size();
  for (std::size_t seed = rank; seed < seed_count;
       seed += static_cast<std::size_t>(config.workers)) {
    for (const PathRequest& request : profile.seeds[seed]) {
      // Compute burst since the previous request (prefetches overlap it).
      const double compute_start = s.engine.now();
      co_await burn_cpu(s, request.compute_before_seconds * s.cluster.cpu_scale);
      s.result.compute_seconds += s.engine.now() - compute_start;

      const std::uint64_t item = path_item(request.step, request.block);
      const auto bytes =
          static_cast<std::uint64_t>(request.read_bytes * config.read_bytes_scale);
      const bool was_hit = cache.cached.count(item) > 0 || cache.inflight.count(item) > 0;
      co_await demand_item(s, cache, item, bytes, config.use_dms);

      prefetcher->on_request(item, was_hit);
      if (config.use_dms && config.prefetcher != "none") {
        for (const auto suggestion :
             prefetcher->suggest(static_cast<std::size_t>(config.prefetch_depth))) {
          spawn_prefetch(s, cache, suggestion, bytes);
        }
      }
    }
    const double tail_start = s.engine.now();
    co_await burn_cpu(s, profile.tail_compute_seconds[seed] * s.cluster.cpu_scale);
    s.result.compute_seconds += s.engine.now() - tail_start;
    my_result_bytes += profile.result_bytes / std::max<std::size_t>(1, seed_count);
  }
  shared.gather.push(my_result_bytes);
}

vira::sim::Task<void> pathline_master(PathShared& shared, const PathlineReplayConfig& config) {
  Shared& s = shared.base;
  std::uint64_t total_bytes = 0;
  for (int w = 0; w < config.workers; ++w) {
    auto part = co_await shared.gather.pop();
    if (!part) {
      break;
    }
    const double start = s.engine.now();
    co_await s.intra.acquire();
    co_await s.engine.delay(s.cluster.intra_latency +
                            static_cast<double>(*part) / s.cluster.intra_bandwidth);
    s.intra.release();
    s.result.send_seconds += s.engine.now() - start;
    total_bytes += *part;
  }
  co_await send_packet(s, total_bytes, /*record_first=*/true);
  s.finish_time = s.engine.now();
}

}  // namespace

ReplayResult replay_pathlines(const PathlineProfile& profile, const ClusterModel& cluster,
                              const PathlineReplayConfig& config) {
  PathShared shared(cluster);
  const std::size_t cache_count =
      config.shared_cache ? 1 : static_cast<std::size_t>(config.workers);
  std::vector<WorkerCacheState> caches(cache_count);
  auto cache_of = [&](int worker) -> WorkerCacheState& {
    return caches[config.shared_cache ? 0 : static_cast<std::size_t>(worker)];
  };

  // Per-worker prefetcher instances — the real policy objects (Sec. 7.3).
  vira::dms::SuccessorFn successor = nullptr;
  if (config.blocks_per_step > 0) {
    const int blocks = config.blocks_per_step;
    successor = [blocks](vira::dms::ItemId id) -> std::optional<vira::dms::ItemId> {
      const auto block = id % 100000ull;
      if (static_cast<int>(block) + 1 >= blocks) {
        return std::nullopt;
      }
      return id + 1;
    };
  }
  std::vector<std::unique_ptr<vira::dms::Prefetcher>> prefetchers;
  for (int w = 0; w < config.workers; ++w) {
    if (config.prefetcher == "none" || !successor) {
      prefetchers.push_back(std::make_unique<vira::dms::NullPrefetcher>());
    } else {
      prefetchers.push_back(vira::dms::make_prefetcher(config.prefetcher, successor));
    }
  }

  // Learning passes (paper Sec. 7.3: "after a learning phase, the data
  // requests even of time-dependent particle tracing can be predicted quite
  // well"): feed earlier executions of the same command through the
  // prefetchers so the Markov graph is populated; caches stay cold.
  for (int pass = 0; pass < config.learning_passes; ++pass) {
    for (std::size_t seed = 0; seed < profile.seeds.size(); ++seed) {
      auto& prefetcher = *prefetchers[seed % static_cast<std::size_t>(config.workers)];
      for (const auto& request : profile.seeds[seed]) {
        prefetcher.on_request(path_item(request.step, request.block), false);
        (void)prefetcher.suggest(2);
      }
    }
  }

  if (config.use_dms && config.warm_cache) {
    // Warm = the identical previous run left every requested item in the
    // requesting worker's cache.
    for (std::size_t seed = 0; seed < profile.seeds.size(); ++seed) {
      auto& cache = cache_of(static_cast<int>(seed % static_cast<std::size_t>(config.workers)));
      for (const auto& request : profile.seeds[seed]) {
        cache.cached.insert(path_item(request.step, request.block));
      }
    }
  }

  for (int w = 0; w < config.workers; ++w) {
    shared.base.engine.spawn(pathline_worker(shared, profile, config, cache_of(w), w,
                                             prefetchers[static_cast<std::size_t>(w)].get()));
  }
  shared.base.engine.spawn(pathline_master(shared, config));
  shared.base.engine.run();

  ReplayResult result = shared.base.result;
  result.total_runtime = shared.base.finish_time;
  result.latency = shared.base.first_packet_time >= 0.0 ? shared.base.first_packet_time
                                                        : shared.base.finish_time;
  return result;
}

ClusterModel calibrate_cluster(const ExtractionProfile& engine_iso,
                               double anchor_compute_seconds) {
  ClusterModel cluster;
  const double host_compute = engine_iso.host_compute_seconds();
  if (host_compute > 0.0) {
    cluster.cpu_scale = anchor_compute_seconds / host_compute;
  }
  const auto read_bytes = engine_iso.total_read_bytes();
  if (read_bytes > 0) {
    // Fig. 15 anchor: cold reads ≈ compute for the Engine isosurface.
    cluster.disk_bandwidth = static_cast<double>(read_bytes) / anchor_compute_seconds;
  }
  return cluster;
}

}  // namespace vira::perf
