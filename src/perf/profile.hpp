#pragma once

/// \file profile.hpp
/// Cost profiling: runs the *real* extraction algorithms once, single
/// threaded, and records what each block (or each pathline integration
/// segment) actually cost on this host — CPU seconds, bytes read, bytes of
/// geometry produced, stream flushes. These measured costs drive the
/// cluster replay; nothing in the figures is a guessed constant except the
/// calibrated cluster model itself.

#include <cstdint>
#include <string>
#include <vector>

#include "grid/dataset_io.hpp"
#include "math/vec3.hpp"

namespace vira::perf {

struct BlockCost {
  int block = 0;
  double compute_seconds = 0.0;     ///< host CPU seconds for this block
  std::uint64_t read_bytes = 0;     ///< serialized block size on disk
  std::uint64_t result_bytes = 0;   ///< geometry bytes produced
  int stream_fragments = 0;         ///< flushes a streaming command would emit
};

struct ExtractionProfile {
  std::string command;
  std::vector<BlockCost> blocks;
  double host_compute_seconds() const;
  std::uint64_t total_read_bytes() const;
  std::uint64_t total_result_bytes() const;
};

/// Profiles plain isosurface extraction of `field` at `iso` over one step.
/// `stream_cells` > 0 additionally counts the fragment flushes the
/// streaming variant would produce. `repeats` re-times each block and keeps
/// the fastest run (suppresses host scheduling noise).
ExtractionProfile profile_iso(const grid::DatasetReader& reader, int step,
                              const std::string& field, float iso, int stream_cells = 0,
                              int repeats = 2);

/// Profiles λ2 extraction (gradient + eigenvalues + triangulation).
ExtractionProfile profile_vortex(const grid::DatasetReader& reader, int step, float threshold,
                                 int stream_cells = 0);

/// ViewerIso profile: same numbers as profile_iso plus the BSP build cost.
ExtractionProfile profile_viewer_iso(const grid::DatasetReader& reader, int step,
                                     const std::string& field, float iso, int stream_cells);

/// One DMS item request a pathline made, with the compute time spent since
/// the previous request.
struct PathRequest {
  int step = 0;
  int block = 0;
  double compute_before_seconds = 0.0;
  std::uint64_t read_bytes = 0;
};

struct PathlineProfile {
  /// One entry per seed: its full request/compute trace.
  std::vector<std::vector<PathRequest>> seeds;
  std::vector<double> tail_compute_seconds;  ///< per seed, after the last request
  std::uint64_t result_bytes = 0;
  double host_compute_seconds() const;
};

/// Integrates `seed_count` pathlines (steps [step0, step1]) recording each
/// block request with the host compute time since the previous one.
PathlineProfile profile_pathlines(const grid::DatasetReader& reader, int step0, int step1,
                                  int seed_count, std::uint64_t seed_rng = 7);

}  // namespace vira::perf
