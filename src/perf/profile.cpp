#include "perf/profile.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>

#include "algo/block_sampler.hpp"
#include "algo/isosurface.hpp"
#include "algo/kernel_stats.hpp"
#include "algo/lambda2.hpp"
#include "grid/bsp_tree.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace vira::perf {

double ExtractionProfile::host_compute_seconds() const {
  double total = 0.0;
  for (const auto& block : blocks) {
    total += block.compute_seconds;
  }
  return total;
}

std::uint64_t ExtractionProfile::total_read_bytes() const {
  std::uint64_t total = 0;
  for (const auto& block : blocks) {
    total += block.read_bytes;
  }
  return total;
}

std::uint64_t ExtractionProfile::total_result_bytes() const {
  std::uint64_t total = 0;
  for (const auto& block : blocks) {
    total += block.result_bytes;
  }
  return total;
}

namespace {

std::uint64_t block_bytes(const grid::DatasetReader& reader, int step, int block) {
  return reader.meta()
      .steps.at(static_cast<std::size_t>(step))
      .blocks.at(static_cast<std::size_t>(block))
      .size;
}

}  // namespace

ExtractionProfile profile_iso(const grid::DatasetReader& reader, int step,
                              const std::string& field, float iso, int stream_cells,
                              int repeats) {
  ExtractionProfile profile;
  profile.command = "iso";
  const int blocks = reader.meta().block_count();
  std::int64_t kernel_cells = 0;
  for (int b = 0; b < blocks; ++b) {
    const auto block = reader.read_block(step, b);
    BlockCost cost;
    cost.block = b;
    cost.read_bytes = block_bytes(reader, step, b);

    algo::TriangleMesh mesh;
    std::size_t active = 0;
    cost.compute_seconds = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < std::max(1, repeats); ++rep) {
      const double t0 = util::thread_cpu_seconds();
      algo::TriangleMesh attempt;
      active = algo::extract_isosurface(block, field, iso, attempt);
      cost.compute_seconds = std::min(cost.compute_seconds, util::thread_cpu_seconds() - t0);
      mesh = std::move(attempt);
    }
    kernel_cells += block.cell_count();

    cost.result_bytes = mesh.vertex_count() * 12 + mesh.triangle_count() * 12;
    if (stream_cells > 0) {
      cost.stream_fragments =
          static_cast<int>((active + stream_cells - 1) / static_cast<std::size_t>(stream_cells));
    }
    profile.blocks.push_back(cost);
  }
  // The profile IS a real extraction pass over the dataset — publish the
  // kernel gauges so timeline consumers (Fig. 15) can show throughput.
  algo::publish_kernel_stats(kernel_cells, profile.host_compute_seconds(),
                             simd::default_kernel());
  return profile;
}

ExtractionProfile profile_vortex(const grid::DatasetReader& reader, int step, float threshold,
                                 int stream_cells) {
  ExtractionProfile profile;
  profile.command = "vortex";
  const int blocks = reader.meta().block_count();
  for (int b = 0; b < blocks; ++b) {
    auto block = reader.read_block(step, b);
    BlockCost cost;
    cost.block = b;
    cost.read_bytes = block_bytes(reader, step, b);

    const double t0 = util::thread_cpu_seconds();
    algo::compute_lambda2_field(block);
    algo::TriangleMesh mesh;
    const auto active = algo::extract_isosurface(block, algo::kLambda2Field, threshold, mesh);
    cost.compute_seconds = util::thread_cpu_seconds() - t0;

    cost.result_bytes = mesh.vertex_count() * 12 + mesh.triangle_count() * 12;
    if (stream_cells > 0) {
      cost.stream_fragments = std::max<int>(
          active > 0 ? 1 : 0,
          static_cast<int>(active / static_cast<std::size_t>(stream_cells)));
    }
    profile.blocks.push_back(cost);
  }
  return profile;
}

ExtractionProfile profile_viewer_iso(const grid::DatasetReader& reader, int step,
                                     const std::string& field, float iso, int stream_cells) {
  ExtractionProfile profile;
  profile.command = "viewer-iso";
  const int blocks = reader.meta().block_count();
  for (int b = 0; b < blocks; ++b) {
    const auto block = reader.read_block(step, b);
    BlockCost cost;
    cost.block = b;
    cost.read_bytes = block_bytes(reader, step, b);

    const double t0 = util::thread_cpu_seconds();
    // The "true cost of streaming" includes building and traversing the
    // per-block BSP tree (paper Sec. 7.1 keeps it online on purpose).
    grid::BspTree tree(block, field, grid::BspTree::BuildParams{64});
    algo::TriangleMesh mesh;
    std::size_t active = 0;
    tree.traverse_unordered(iso, [&](const grid::CellRange& range) {
      active += algo::extract_isosurface_range(block, field, iso, range, mesh);
    });
    cost.compute_seconds = util::thread_cpu_seconds() - t0;

    cost.result_bytes = mesh.vertex_count() * 12 + mesh.triangle_count() * 12;
    if (stream_cells > 0) {
      cost.stream_fragments = std::max<int>(
          mesh.empty() ? 0 : 1,
          static_cast<int>(active / static_cast<std::size_t>(stream_cells)));
    }
    profile.blocks.push_back(cost);
  }
  return profile;
}

double PathlineProfile::host_compute_seconds() const {
  double total = 0.0;
  for (const auto& seed : seeds) {
    for (const auto& request : seed) {
      total += request.compute_before_seconds;
    }
  }
  for (const double tail : tail_compute_seconds) {
    total += tail;
  }
  return total;
}

PathlineProfile profile_pathlines(const grid::DatasetReader& reader, int step0, int step1,
                                  int seed_count, std::uint64_t seed_rng) {
  PathlineProfile profile;
  const auto& meta = reader.meta();
  const auto bounds = meta.bounds();
  util::Rng rng(seed_rng);

  // Moderate accuracy: the paper's pathline command is I/O-bound (Fig. 13
  // shows SimplePathlines ≈ 2.3x PathlinesDataMan), so the per-visit
  // integration work must not swamp the block loads.
  algo::IntegratorParams params;
  params.tolerance = 2e-3;
  params.h_init = 1e-3;

  // Per-(step, block) decode cache so profiling is not dominated by
  // repeated decodes — and so compute timing excludes the read path.
  std::map<std::pair<int, int>, std::shared_ptr<const grid::StructuredBlock>> decoded;
  auto decode = [&](int step, int block) {
    auto key = std::make_pair(step, block);
    auto it = decoded.find(key);
    if (it == decoded.end()) {
      it = decoded
               .emplace(key, std::make_shared<const grid::StructuredBlock>(
                                 reader.read_block(step, block)))
               .first;
    }
    return it->second;
  };

  for (int s = 0; s < seed_count; ++s) {
    math::Vec3 position{rng.uniform(bounds.lo.x, bounds.hi.x),
                        rng.uniform(bounds.lo.y, bounds.hi.y),
                        rng.uniform(bounds.lo.z, bounds.hi.z)};
    std::vector<PathRequest> trace;
    double compute_marker = util::thread_cpu_seconds();

    auto record_request = [&](int step, int block) {
      const double now = util::thread_cpu_seconds();
      PathRequest request;
      request.step = step;
      request.block = block;
      request.compute_before_seconds = now - compute_marker;
      request.read_bytes = block_bytes(reader, step, block);
      trace.push_back(request);
      compute_marker = util::thread_cpu_seconds();
    };

    double h = params.h_init;
    bool alive = true;
    std::vector<algo::PathPoint> path;
    for (int step = step0; step < step1 && alive; ++step) {
      const auto& info_a = meta.steps[static_cast<std::size_t>(step)];
      const auto& info_b = meta.steps[static_cast<std::size_t>(step + 1)];
      algo::BlockSampler level_a(info_a, [&](int block) {
        record_request(step, block);
        return decode(step, block);
      });
      algo::BlockSampler level_b(info_b, [&](int block) {
        record_request(step + 1, block);
        return decode(step + 1, block);
      });
      alive = algo::integrate_interval_two_level(level_a, level_b, info_a.time, info_b.time,
                                                 position, h, params, path);
    }
    profile.tail_compute_seconds.push_back(util::thread_cpu_seconds() - compute_marker);
    profile.result_bytes += path.size() * 20;
    profile.seeds.push_back(std::move(trace));
  }
  return profile;
}

}  // namespace vira::perf
