#pragma once

/// \file report.hpp
/// Paper-style console reporting for the figure benches: each bench prints
/// the rows/series of its table or figure (with ASCII bars so the shape is
/// visible at a glance) plus the paper's reference values for comparison.

#include <string>
#include <vector>

namespace vira::perf {

/// One measured series point: (#workers, seconds).
struct SeriesPoint {
  int workers = 0;
  double seconds = 0.0;
};

struct Series {
  std::string label;
  std::vector<SeriesPoint> points;
};

/// Prints a figure banner: id ("Figure 6"), caption and provenance note.
void print_banner(const std::string& figure, const std::string& caption);

/// Prints runtime series the way the paper's bar charts read: one row per
/// worker count, one bar per command.
void print_worker_series(const std::vector<Series>& series, const std::string& value_label);

/// Prints a single labelled value row.
void print_value(const std::string& label, double value, const std::string& unit);

/// Prints a percentage breakdown (Fig. 15 style pie as text).
void print_breakdown(const std::string& label, double compute, double read, double send);

/// Prints the paper's qualitative expectation next to our measurement.
void print_expectation(const std::string& text);

}  // namespace vira::perf
