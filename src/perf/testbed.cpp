#include "perf/testbed.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "algo/lambda2.hpp"
#include "grid/synthetic.hpp"

namespace vira::perf {

std::string data_root() {
  if (const char* env = std::getenv("VIRA_DATA_DIR")) {
    return env;
  }
  return (std::filesystem::temp_directory_path() / "vira_bench_data").string();
}

std::string engine_dir() { return data_root() + "/engine"; }
std::string propfan_dir() { return data_root() + "/propfan"; }

namespace {

/// Bump when the synthetic flow fields change so cached bench datasets
/// regenerate.
constexpr int kGeneratorVersion = 2;

bool dataset_ready(const std::string& dir, int steps, int blocks) {
  if (!std::filesystem::exists(dir + "/dataset.vmi")) {
    return false;
  }
  std::ifstream version_file(dir + "/GENERATOR_VERSION");
  int version = 0;
  version_file >> version;
  if (version != kGeneratorVersion) {
    return false;
  }
  try {
    grid::DatasetReader reader(dir);
    return reader.meta().timestep_count() == steps && reader.meta().block_count() == blocks;
  } catch (const std::exception&) {
    return false;
  }
}

void stamp_version(const std::string& dir) {
  std::ofstream version_file(dir + "/GENERATOR_VERSION");
  version_file << kGeneratorVersion << "\n";
}

}  // namespace

grid::DatasetMeta ensure_engine() {
  const auto dir = engine_dir();
  if (!dataset_ready(dir, 63, 23)) {
    std::cerr << "[testbed] generating Engine dataset (23 blocks x 63 steps) in " << dir
              << " ...\n";
    std::filesystem::remove_all(dir);
    grid::GeneratorConfig config;
    config.directory = dir;
    config.timesteps = 63;
    config.ni = 18;
    config.nj = 13;
    config.nk = 10;
    const auto meta = grid::generate_engine(config);
    stamp_version(dir);
    return meta;
  }
  return grid::DatasetReader(dir).meta();
}

grid::DatasetMeta ensure_propfan() {
  const auto dir = propfan_dir();
  if (!dataset_ready(dir, 50, 144)) {
    std::cerr << "[testbed] generating Propfan dataset (144 blocks x 50 steps) in " << dir
              << " ...\n";
    std::filesystem::remove_all(dir);
    grid::GeneratorConfig config;
    config.directory = dir;
    config.timesteps = 50;
    config.ni = 14;
    config.nj = 11;
    config.nk = 9;
    const auto meta = grid::generate_propfan(config);
    stamp_version(dir);
    return meta;
  }
  return grid::DatasetReader(dir).meta();
}

double density_iso_mid(const grid::DatasetReader& reader, int step) {
  float lo = std::numeric_limits<float>::max();
  float hi = std::numeric_limits<float>::lowest();
  for (int b = 0; b < reader.meta().block_count(); ++b) {
    const auto block = reader.read_block(step, b);
    const auto [blo, bhi] = block.scalar_range("density");
    lo = std::min(lo, blo);
    hi = std::max(hi, bhi);
  }
  return 0.5 * (lo + hi);
}

double lambda2_threshold(const grid::DatasetReader& reader, int step) {
  float lo = std::numeric_limits<float>::max();
  for (int b = 0; b < reader.meta().block_count(); ++b) {
    auto block = reader.read_block(step, b);
    const auto [blo, bhi] = algo::compute_lambda2_field(block);
    (void)bhi;
    lo = std::min(lo, blo);
  }
  // "About zero": a few percent into the vortical (negative) range.
  return 0.02 * static_cast<double>(lo);
}

}  // namespace vira::perf
