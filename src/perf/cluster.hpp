#pragma once

/// \file cluster.hpp
/// Virtual cluster model for the performance figures.
///
/// The paper measured on a 24-CPU SUN Fire 6800 (900 MHz UltraSPARC-III,
/// Sec. 6.2) with the data on a file server. This build machine cannot
/// reproduce those wall-clock curves (see DESIGN.md), so the figure benches
/// replay the real per-block costs — measured by running the real
/// algorithms on the real (synthetic) datasets — on this model inside the
/// vira::sim discrete-event engine.
///
/// Calibration: `calibrate` anchors the model against the measured Engine
/// isosurface profile such that (a) one virtual worker spends ≈
/// `anchor_compute_seconds` computing the Engine isosurface — the order of
/// magnitude Fig. 6 reports — and (b) reading the data cold takes about as
/// long as computing it, the 50/49 compute/read split of Fig. 15's
/// SimpleIso pie. Everything else (scaling shapes, crossovers, prefetch
/// overlap, streaming latencies) then *emerges* from the replayed policies.

#include <cstdint>

namespace vira::perf {

struct ClusterModel {
  int cpus = 24;                  ///< SUN Fire 6800 node
  /// Virtual-CPU slowdown relative to the build host. NOTE: this factor
  /// folds together (a) the 900 MHz UltraSPARC-III being slower than a
  /// modern core AND (b) the synthetic datasets being resolution-scaled
  /// (fewer cells per block than the originals, see DESIGN.md). It is a
  /// time-unit conversion, not a literal hardware claim.
  double cpu_scale = 100.0;
  double disk_bandwidth = 50e6;   ///< bytes/s, file-server link (shared)
  double disk_latency = 5e-3;     ///< per-request seek + queue
  double client_bandwidth = 12e6; ///< backend → viz host TCP link
  double client_latency = 4e-3;   ///< per-packet
  double intra_bandwidth = 250e6; ///< worker ↔ worker (gather at master)
  double intra_latency = 5e-4;
  double dispatch_seconds = 0.08; ///< scheduler work-group formation (fixed)
  double per_worker_overhead = 0.06; ///< group formation + collection per member
  double cache_hit_seconds = 2e-4;///< primary-cache lookup + hand-over
  double fragment_pack_seconds = 8e-3; ///< worker-side packing per streamed fragment
};

}  // namespace vira::perf
