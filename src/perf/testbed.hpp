#pragma once

/// \file testbed.hpp
/// Bench dataset management (paper Sec. 6: the test bed).
///
/// Benches share one generated copy of the Engine and Propfan datasets,
/// placed under $VIRA_DATA_DIR (default: <temp>/vira_bench_data) and
/// generated on first use. Block and time-step counts match Table 1; node
/// resolution is scaled (DESIGN.md documents the substitution).

#include <string>

#include "grid/dataset_io.hpp"

namespace vira::perf {

/// Root directory for bench datasets.
std::string data_root();

/// Paths of the two datasets (inside data_root()).
std::string engine_dir();
std::string propfan_dir();

/// Generates the dataset if missing (or stale); returns its metadata.
grid::DatasetMeta ensure_engine();
grid::DatasetMeta ensure_propfan();

/// Midpoint of the density range of step 0 — a guaranteed-valid iso value.
double density_iso_mid(const grid::DatasetReader& reader, int step = 0);

/// A λ2 threshold slightly below zero scaled to the dataset's λ2 range
/// ("in practice a value about zero is used", paper Sec. 1.1).
double lambda2_threshold(const grid::DatasetReader& reader, int step = 0);

}  // namespace vira::perf
