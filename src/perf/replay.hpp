#pragma once

/// \file replay.hpp
/// Discrete-event replay of Viracocha's execution on the virtual cluster.
///
/// The replay re-runs the framework's *policies* — chunked block
/// distribution, per-worker caches, prefetch overlap (loads proceed while
/// the CPU computes), streaming over the shared client link, result gather
/// at the master — as sim coroutines, with every duration taken from a
/// measured profile scaled by the calibrated cluster model. The paper's
/// figure shapes (who wins, saturation points, flat streaming latency)
/// emerge; none of them is hard-coded.

#include <cstdint>
#include <string>

#include "perf/cluster.hpp"
#include "perf/profile.hpp"

namespace vira::perf {

struct ReplayConfig {
  int workers = 1;
  bool use_dms = true;      ///< false = the Simple* commands (no caching)
  bool warm_cache = true;   ///< paper Sec. 7: "operated on cached data"
  bool prefetch = false;    ///< overlap loads of the next owned block
  bool streaming = false;   ///< ship fragments during computation
  /// One proxy cache shared by all workers — the paper's testbed is a
  /// single shared-memory node ("every computing NODE owns a data proxy",
  /// Sec. 4.1). false models a distributed-memory cluster (per-worker
  /// caches, duplicated cold loads).
  bool shared_cache = true;
};

struct ReplayResult {
  double total_runtime = 0.0;    ///< submission → final packet at client
  double latency = 0.0;          ///< submission → first data packet at client
  double compute_seconds = 0.0;  ///< summed over workers (virtual CPU time)
  double read_seconds = 0.0;     ///< demand-load wait time summed over workers
  double send_seconds = 0.0;     ///< send time summed over workers (+ master)
  std::uint64_t cache_hits = 0;
  std::uint64_t demand_loads = 0;
  std::uint64_t prefetch_issued = 0;
  std::uint64_t prefetch_useful = 0;
  std::uint64_t fragments = 0;

  double phase_total() const { return compute_seconds + read_seconds + send_seconds; }
};

/// Replays a block-sweep extraction command (the iso/vortex families).
ReplayResult replay_extraction(const ExtractionProfile& profile, const ClusterModel& cluster,
                               const ReplayConfig& config);

struct PathlineReplayConfig {
  int workers = 1;
  bool use_dms = true;
  bool warm_cache = true;
  std::string prefetcher = "none";  ///< "none" | "obl" | "markov"
  int blocks_per_step = 0;          ///< needed by the OBL successor relation
  /// Prior executions of the same command fed through the prefetchers
  /// before the measured (cold-cache) run — the Markov learning phase.
  int learning_passes = 0;
  /// Single node-wide proxy cache (the paper's SMP testbed); see
  /// ReplayConfig::shared_cache.
  bool shared_cache = true;
  /// Suggestions taken per request: deeper pipelines hide loads behind
  /// more future compute (one block's load rarely fits into one
  /// inter-request compute gap).
  int prefetch_depth = 4;
  /// Multiplier on per-request read bytes. Extraction commands scale
  /// compute AND reads together with dataset resolution, so the iso-anchored
  /// calibration covers both; pathline *integration* work scales with trace
  /// length, not block size — so loads are modeled at the paper's original
  /// block size (paper bytes-per-block / synthetic bytes-per-block). See
  /// EXPERIMENTS.md.
  double read_bytes_scale = 1.0;
};

/// Replays the pathline command: seeds round-robin across workers, each
/// seed's measured request/compute trace driven through a per-worker cache
/// and a *real* prefetcher instance (MarkovPrefetcher / OblPrefetcher).
ReplayResult replay_pathlines(const PathlineProfile& profile, const ClusterModel& cluster,
                              const PathlineReplayConfig& config);

/// Anchors the cluster model against the measured Engine isosurface
/// profile (see cluster.hpp). `anchor_compute_seconds` is what one virtual
/// worker should spend computing that surface.
ClusterModel calibrate_cluster(const ExtractionProfile& engine_iso,
                               double anchor_compute_seconds = 17.0);

}  // namespace vira::perf
