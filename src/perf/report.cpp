#include "perf/report.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "obs/timeline.hpp"

namespace vira::perf {

void print_banner(const std::string& figure, const std::string& caption) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure.c_str(), caption.c_str());
  std::printf("(measured on the calibrated virtual cluster, driven by real\n");
  std::printf(" per-block costs; see DESIGN.md / EXPERIMENTS.md)\n");
  std::printf("================================================================\n");
}

void print_worker_series(const std::vector<Series>& series, const std::string& value_label) {
  if (series.empty()) {
    return;
  }
  double peak = 0.0;
  for (const auto& s : series) {
    for (const auto& p : s.points) {
      peak = std::max(peak, p.seconds);
    }
  }
  if (peak <= 0.0) {
    peak = 1.0;
  }

  std::printf("%-10s", "#Workers");
  for (const auto& s : series) {
    std::printf("  %-18s", s.label.c_str());
  }
  std::printf("   [%s]\n", value_label.c_str());

  const std::size_t rows = series.front().points.size();
  for (std::size_t r = 0; r < rows; ++r) {
    std::printf("%-10d", series.front().points[r].workers);
    for (const auto& s : series) {
      std::printf("  %-18.3f", s.points[r].seconds);
    }
    std::printf("\n");
  }
  // ASCII shape per series.
  for (const auto& s : series) {
    std::printf("  %s\n", s.label.c_str());
    for (const auto& p : s.points) {
      const int width = static_cast<int>(46.0 * p.seconds / peak);
      std::printf("    %3d | %s %.3f\n", p.workers, std::string(width, '#').c_str(), p.seconds);
    }
  }
}

void print_value(const std::string& label, double value, const std::string& unit) {
  std::printf("  %-42s %12.4f %s\n", label.c_str(), value, unit.c_str());
}

void print_breakdown(const std::string& label, double compute, double read, double send) {
  // Thin adapter: the percentage math lives in obs::TimelineReport so every
  // bench/tool renders the same breakdown (ISSUE 2).
  obs::TimelineReport::from_phases({{"compute", compute}, {"read", read}, {"send", send}})
      .print(std::cout, label);
}

void print_expectation(const std::string& text) {
  std::printf("  paper: %s\n", text.c_str());
}

}  // namespace vira::perf
