#include "comm/fault_transport.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace vira::comm {

namespace {
/// Fault-injection instruments, mirrored into the shared registry so the
/// metrics dump shows injected chaos next to the recovery counters.
struct FaultMetrics {
  obs::Counter& dropped = obs::Registry::instance().counter("fault.dropped");
  obs::Counter& duplicated = obs::Registry::instance().counter("fault.duplicated");
  obs::Counter& delayed = obs::Registry::instance().counter("fault.delayed");
  obs::Counter& suppressed_dead = obs::Registry::instance().counter("fault.suppressed_dead");
  obs::Counter& killed = obs::Registry::instance().counter("fault.killed_ranks");
};

FaultMetrics& fault_metrics() {
  static FaultMetrics* instruments = new FaultMetrics();
  return *instruments;
}
}  // namespace

FaultInjectingTransport::FaultInjectingTransport(std::shared_ptr<Transport> inner,
                                                 FaultInjectionConfig config)
    : inner_(std::move(inner)), config_(config), rng_(config.seed) {
  if (!inner_) {
    throw std::invalid_argument("FaultInjectingTransport: inner transport required");
  }
  if (config_.drop_rate < 0.0 || config_.drop_rate > 1.0 || config_.duplicate_rate < 0.0 ||
      config_.duplicate_rate > 1.0 || config_.delay_rate < 0.0 || config_.delay_rate > 1.0) {
    throw std::invalid_argument("FaultInjectingTransport: rates must be in [0, 1]");
  }
}

FaultInjectingTransport::~FaultInjectingTransport() {
  stopping_ = true;
  delay_cv_.notify_all();
  if (delay_thread_.joinable()) {
    delay_thread_.join();
  }
}

void FaultInjectingTransport::send(int dest, Message msg) {
  bool duplicate = false;
  std::chrono::milliseconds delay{0};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (dead_.count(dest) > 0 || dead_.count(msg.source) > 0) {
      ++stats_.suppressed_dead;
      fault_metrics().suppressed_dead.add();
      return;
    }
    if (faults_possible()) {
      if (config_.drop_rate > 0.0 && rng_.next_double() < config_.drop_rate) {
        ++stats_.dropped;
        fault_metrics().dropped.add();
        return;
      }
      if (config_.duplicate_rate > 0.0 && rng_.next_double() < config_.duplicate_rate) {
        ++stats_.duplicated;
        fault_metrics().duplicated.add();
        duplicate = true;
      }
      if (config_.delay_rate > 0.0 && rng_.next_double() < config_.delay_rate) {
        ++stats_.delayed;
        fault_metrics().delayed.add();
        const auto span = std::max<std::int64_t>(1, config_.max_delay.count());
        delay = std::chrono::milliseconds(
            1 + static_cast<std::int64_t>(rng_.next_below(static_cast<std::uint64_t>(span))));
      }
    }
    ++stats_.forwarded;
  }
  if (duplicate) {
    Message copy = msg;
    if (delay.count() > 0) {
      deliver_later(dest, std::move(copy), delay);
    } else {
      inner_->send(dest, std::move(copy));
    }
  }
  if (delay.count() > 0) {
    deliver_later(dest, std::move(msg), delay);
  } else {
    inner_->send(dest, std::move(msg));
  }
}

std::optional<Message> FaultInjectingTransport::recv(int self, std::chrono::milliseconds timeout) {
  auto msg = inner_->recv(self, timeout);
  if (!msg) {
    return std::nullopt;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (dead_.count(self) > 0 || dead_.count(msg->source) > 0) {
    // A crashed rank reads nothing; mail from a crashed rank (queued before
    // the crash) is discarded, like an undelivered socket buffer.
    ++stats_.suppressed_dead;
    fault_metrics().suppressed_dead.add();
    return std::nullopt;
  }
  return msg;
}

void FaultInjectingTransport::shutdown() {
  stopping_ = true;
  delay_cv_.notify_all();
  inner_->shutdown();
}

void FaultInjectingTransport::kill_rank(int rank) {
  if (rank < 0 || rank >= size()) {
    throw std::out_of_range("FaultInjectingTransport::kill_rank: bad rank");
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    dead_.insert(rank);
  }
  fault_metrics().killed.add();
  VIRA_WARN("fault") << "rank " << rank << " killed (delivery suppressed)";
}

bool FaultInjectingTransport::is_dead(int rank) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dead_.count(rank) > 0;
}

std::size_t FaultInjectingTransport::dead_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dead_.size();
}

FaultInjectionStats FaultInjectingTransport::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void FaultInjectingTransport::deliver_later(int dest, Message msg,
                                            std::chrono::milliseconds delay) {
  {
    std::lock_guard<std::mutex> lock(delay_mutex_);
    delayed_.push_back({std::chrono::steady_clock::now() + delay, dest, std::move(msg)});
    if (!delay_thread_running_.exchange(true)) {
      delay_thread_ = std::thread([this] { delay_loop(); });
    }
  }
  delay_cv_.notify_one();
}

void FaultInjectingTransport::delay_loop() {
  std::unique_lock<std::mutex> lock(delay_mutex_);
  while (!stopping_) {
    if (delayed_.empty()) {
      delay_cv_.wait(lock, [&] { return stopping_ || !delayed_.empty(); });
      continue;
    }
    auto earliest = std::min_element(
        delayed_.begin(), delayed_.end(),
        [](const Delayed& a, const Delayed& b) { return a.due < b.due; });
    const auto now = std::chrono::steady_clock::now();
    if (earliest->due > now) {
      // Copy the deadline: wait_until releases the lock, and a concurrent
      // deliver_later() push_back may reallocate delayed_ under us —
      // wait_until re-reads its deadline argument after re-locking.
      const auto due = earliest->due;
      delay_cv_.wait_until(lock, due);
      continue;
    }
    Delayed item = std::move(*earliest);
    delayed_.erase(earliest);
    lock.unlock();
    // Re-check the death list at delivery time: the destination (or sender)
    // may have been killed while the message was in flight.
    bool suppressed = false;
    {
      std::lock_guard<std::mutex> guard(mutex_);
      if (dead_.count(item.dest) > 0 || dead_.count(item.msg.source) > 0) {
        ++stats_.suppressed_dead;
        fault_metrics().suppressed_dead.add();
        suppressed = true;
      }
    }
    if (!suppressed && !inner_->is_shut_down()) {
      inner_->send(item.dest, std::move(item.msg));
    }
    lock.lock();
  }
}

}  // namespace vira::comm
