#pragma once

/// \file client_link.hpp
/// Bidirectional framed message stream between the visualization client and
/// the Viracocha scheduler (the TCP/IP edge of the paper's Figure 2).
///
/// Two implementations share one interface, so the runtime does not care
/// whether the client lives in the same process (tests, examples) or talks
/// real TCP over a socket (tcp_backend_demo): exactly the protocol
/// transparency the paper's layer-1 design prescribes.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "comm/message.hpp"
#include "util/compression.hpp"

namespace vira::comm {

/// --- hello / feature negotiation (docs/PROTOCOL.md) -------------------------
///
/// A client that wants per-link features (today: wire compression for large
/// frames) sends kTagHello as its very first message and waits for
/// kTagHelloAck before submitting. Legacy clients skip the exchange and the
/// link speaks the original framing unchanged — negotiation is strictly
/// opt-in, so the wire stays backward compatible.

/// Client → scheduler: WireHello. Must be the first frame on the link.
inline constexpr int kTagHello = 17;
/// Scheduler/frontend → client: WireHello echo with the *granted* features.
inline constexpr int kTagHelloAck = 18;

/// "VIRA" little-endian — rejects accidental cross-protocol connects.
inline constexpr std::uint32_t kWireMagic = 0x41524956u;
inline constexpr std::uint32_t kWireVersion = 1;

/// Feature flag bits (request in hello, granted subset echoed in the ack).
inline constexpr std::uint32_t kFeatureWireCompression = 1u << 0;

/// Payload of kTagHello / kTagHelloAck.
struct WireHello {
  std::uint32_t magic = kWireMagic;
  std::uint32_t version = kWireVersion;
  std::uint32_t features = 0;
  /// Preferred (hello) / granted (ack) codec for compressed frames.
  util::Codec codec = util::Codec::kStore;

  void serialize(util::ByteBuffer& out) const;
  static WireHello deserialize(util::ByteBuffer& in);
};

/// Per-link wire options a client asks for when connecting.
struct WireOptions {
  bool compression = true;
  /// bench_compression ranks the codecs; kLz wins ratio on serialized
  /// geometry at acceptable throughput.
  util::Codec codec = util::Codec::kLz;
  /// Frames below this many payload bytes are never compressed.
  std::size_t compress_threshold = 4096;
  /// How long to wait for the server's kTagHelloAck.
  std::chrono::milliseconds hello_timeout{5000};
};

class ClientLink {
 public:
  virtual ~ClientLink() = default;

  /// Sends one framed message. Thread-safe against itself. Sends on a
  /// closed link are dropped.
  virtual void send(Message msg) = 0;

  /// Receives the next message, blocking up to `timeout`. Returns nullopt
  /// on timeout or when the link is closed and drained. Single consumer.
  virtual std::optional<Message> recv(std::chrono::milliseconds timeout) = 0;

  virtual void close() = 0;
  virtual bool closed() const = 0;
};

/// Creates a connected pair of in-process links (A→B and B→A share queues).
std::pair<std::shared_ptr<ClientLink>, std::shared_ptr<ClientLink>> make_inproc_link_pair();

/// Listening TCP socket on localhost; hands out one ClientLink per accepted
/// connection. Port 0 binds an ephemeral port (read back via port()).
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port = 0);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Accepts one connection; nullptr on timeout.
  std::unique_ptr<ClientLink> accept(std::chrono::milliseconds timeout);

  /// Wakes a thread blocked in accept() without releasing the descriptor
  /// (safe to call concurrently with accept). Subsequent accepts fail fast.
  void stop();

  /// Releases the descriptor. Only call once no thread is inside accept().
  void close();

 private:
  int fd_ = -1;
  std::atomic<bool> stopped_{false};
  std::uint16_t port_ = 0;
};

/// Connects to a TcpListener; throws std::runtime_error on failure. The
/// link speaks the legacy framing (no hello, no compression).
std::unique_ptr<ClientLink> tcp_connect(const std::string& host, std::uint16_t port);

/// Connects and performs the hello/feature negotiation before returning:
/// sends kTagHello, waits for kTagHelloAck and enables wire compression on
/// the link if (and only if) the server granted it. Throws on connect
/// failure or a missing/invalid ack.
std::unique_ptr<ClientLink> tcp_connect(const std::string& host, std::uint16_t port,
                                        const WireOptions& options);

}  // namespace vira::comm
