#pragma once

/// \file client_link.hpp
/// Bidirectional framed message stream between the visualization client and
/// the Viracocha scheduler (the TCP/IP edge of the paper's Figure 2).
///
/// Two implementations share one interface, so the runtime does not care
/// whether the client lives in the same process (tests, examples) or talks
/// real TCP over a socket (tcp_backend_demo): exactly the protocol
/// transparency the paper's layer-1 design prescribes.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "comm/message.hpp"

namespace vira::comm {

class ClientLink {
 public:
  virtual ~ClientLink() = default;

  /// Sends one framed message. Thread-safe against itself. Sends on a
  /// closed link are dropped.
  virtual void send(Message msg) = 0;

  /// Receives the next message, blocking up to `timeout`. Returns nullopt
  /// on timeout or when the link is closed and drained. Single consumer.
  virtual std::optional<Message> recv(std::chrono::milliseconds timeout) = 0;

  virtual void close() = 0;
  virtual bool closed() const = 0;
};

/// Creates a connected pair of in-process links (A→B and B→A share queues).
std::pair<std::shared_ptr<ClientLink>, std::shared_ptr<ClientLink>> make_inproc_link_pair();

/// Listening TCP socket on localhost; hands out one ClientLink per accepted
/// connection. Port 0 binds an ephemeral port (read back via port()).
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port = 0);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Accepts one connection; nullptr on timeout.
  std::unique_ptr<ClientLink> accept(std::chrono::milliseconds timeout);

  /// Wakes a thread blocked in accept() without releasing the descriptor
  /// (safe to call concurrently with accept). Subsequent accepts fail fast.
  void stop();

  /// Releases the descriptor. Only call once no thread is inside accept().
  void close();

 private:
  int fd_ = -1;
  std::atomic<bool> stopped_{false};
  std::uint16_t port_ = 0;
};

/// Connects to a TcpListener; throws std::runtime_error on failure.
std::unique_ptr<ClientLink> tcp_connect(const std::string& host, std::uint16_t port);

}  // namespace vira::comm
