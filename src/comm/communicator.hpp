#pragma once

/// \file communicator.hpp
/// Rank/tag message passing with MPI-style semantics (paper layer 1/2 glue).
///
/// One Communicator instance lives on each rank's thread. On top of a
/// Transport it provides:
///   * tagged point-to-point send / blocking receive with ANY_SOURCE /
///     ANY_TAG wildcards and out-of-order matching (unmatched messages are
///     buffered, exactly like MPI's unexpected-message queue),
///   * probe / try_recv for non-blocking progress,
///   * the collectives the Viracocha runtime needs: barrier, broadcast,
///     gather, reduce-sum — implemented with reserved negative tags so they
///     never collide with user traffic.
///
/// Throws TransportClosed from blocking calls when the transport shuts
/// down — the worker loop uses that as its orderly exit path.
///
/// Thread-safety: send() is always safe; recv/try_recv/probe may be called
/// from multiple threads of the same rank concurrently (the unexpected-
/// message queue is locked) — each message is delivered to exactly one
/// matching receiver. Waiting receivers poll in bounded slices, so a
/// message buffered by one thread is picked up by its addressee within one
/// slice.

#include <chrono>
#include <deque>
#include <mutex>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "comm/message.hpp"
#include "comm/transport.hpp"

namespace vira::comm {

class TransportClosed : public std::runtime_error {
 public:
  TransportClosed() : std::runtime_error("communicator: transport shut down") {}
};

class Communicator {
 public:
  Communicator(std::shared_ptr<Transport> transport, int rank);

  int rank() const noexcept { return rank_; }
  int size() const noexcept { return transport_->size(); }

  /// --- point to point -----------------------------------------------------
  /// Asynchronous, reliable, FIFO per destination. `tag` must be >= 0
  /// (negative tags are reserved for collectives).
  void send(int dest, int tag, util::ByteBuffer payload);

  /// Blocks until a message matching (source, tag) arrives.
  /// Throws TransportClosed if the transport shuts down while waiting.
  Message recv(int source = kAnySource, int tag = kAnyTag);

  /// Non-blocking variant with timeout; nullopt on timeout.
  std::optional<Message> try_recv(int source, int tag, std::chrono::milliseconds timeout);

  /// Returns (source, tag) of the first buffered or immediately available
  /// message without consuming it.
  std::optional<std::pair<int, int>> probe(std::chrono::milliseconds timeout =
                                               std::chrono::milliseconds(0));

  /// --- collectives ----------------------------------------------------------
  /// All ranks must call collectives in the same order (MPI rule).
  void barrier();
  /// Root's payload is delivered to every rank (including returned at root).
  util::ByteBuffer broadcast(util::ByteBuffer payload, int root);
  /// Returns size() payloads at root (indexed by rank), empty elsewhere.
  std::vector<util::ByteBuffer> gather(util::ByteBuffer payload, int root);
  /// Sum-reduction of a double at root (returns the partial value elsewhere).
  double reduce_sum(double value, int root);

 private:
  Message recv_matching(int source, int tag);
  std::optional<Message> take_buffered(int source, int tag);
  void pump(std::chrono::milliseconds timeout);
  void send_internal(int dest, int tag, util::ByteBuffer payload);

  std::shared_ptr<Transport> transport_;
  int rank_;
  std::mutex pending_mutex_;
  std::deque<Message> pending_;  // unexpected-message queue
};

/// Reserved (negative) tags used by the collectives.
inline constexpr int kTagBarrierArrive = -10;
inline constexpr int kTagBarrierRelease = -11;
inline constexpr int kTagBroadcast = -12;
inline constexpr int kTagGather = -13;
inline constexpr int kTagReduce = -14;

}  // namespace vira::comm
