#include "comm/client_link.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <stdexcept>

#include "util/blocking_queue.hpp"

namespace vira::comm {

// ---------------------------------------------------------------------------
// In-process pair
// ---------------------------------------------------------------------------

namespace {

class InProcLink final : public ClientLink {
 public:
  using Queue = util::BlockingQueue<Message>;

  InProcLink(std::shared_ptr<Queue> outgoing, std::shared_ptr<Queue> incoming)
      : outgoing_(std::move(outgoing)), incoming_(std::move(incoming)) {}

  void send(Message msg) override { outgoing_->push(std::move(msg)); }

  std::optional<Message> recv(std::chrono::milliseconds timeout) override {
    return incoming_->pop_for(timeout);
  }

  void close() override {
    outgoing_->close();
    incoming_->close();
  }

  bool closed() const override { return incoming_->closed(); }

 private:
  std::shared_ptr<Queue> outgoing_;
  std::shared_ptr<Queue> incoming_;
};

}  // namespace

std::pair<std::shared_ptr<ClientLink>, std::shared_ptr<ClientLink>> make_inproc_link_pair() {
  auto a_to_b = std::make_shared<InProcLink::Queue>();
  auto b_to_a = std::make_shared<InProcLink::Queue>();
  return {std::make_shared<InProcLink>(a_to_b, b_to_a),
          std::make_shared<InProcLink>(b_to_a, a_to_b)};
}

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------

namespace {

/// Frame layout: [i32 source][i32 tag][u64 payload bytes][payload].
class TcpLink final : public ClientLink {
 public:
  explicit TcpLink(int fd) : fd_(fd) {
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~TcpLink() override {
    close();
    // The fd itself is released only here, when no other thread can still
    // be blocked in recv()/send() on it (the owner joined its consumers).
    ::close(fd_);
  }

  void send(Message msg) override {
    std::lock_guard<std::mutex> lock(send_mutex_);
    if (closed_) {
      return;
    }
    const std::int32_t source = msg.source;
    const std::int32_t tag = msg.tag;
    const std::uint64_t size = msg.payload.size();
    if (!write_all(&source, sizeof(source)) || !write_all(&tag, sizeof(tag)) ||
        !write_all(&size, sizeof(size)) || !write_all(msg.payload.data(), size)) {
      do_close();
    }
  }

  std::optional<Message> recv(std::chrono::milliseconds timeout) override {
    if (closed_.load()) {
      return std::nullopt;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
    if (ready <= 0) {
      return std::nullopt;
    }
    std::int32_t source = 0;
    std::int32_t tag = 0;
    std::uint64_t size = 0;
    if (!read_all(&source, sizeof(source)) || !read_all(&tag, sizeof(tag)) ||
        !read_all(&size, sizeof(size))) {
      do_close();
      return std::nullopt;
    }
    if (size > (1ull << 32)) {  // sanity: 4 GiB frame cap
      do_close();
      return std::nullopt;
    }
    std::vector<std::byte> payload(size);
    if (!read_all(payload.data(), size)) {
      do_close();
      return std::nullopt;
    }
    Message msg;
    msg.source = source;
    msg.tag = tag;
    msg.payload = util::ByteBuffer(std::move(payload));
    return msg;
  }

  void close() override {
    std::lock_guard<std::mutex> lock(send_mutex_);
    do_close();
  }

  bool closed() const override { return closed_; }

 private:
  /// Half-close: wakes any thread blocked in recv()/send() via shutdown();
  /// the descriptor stays open until destruction so concurrent syscalls
  /// never race against close().
  void do_close() {
    if (!closed_.exchange(true)) {
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

  bool write_all(const void* data, std::uint64_t size) {
    const char* cursor = static_cast<const char*>(data);
    while (size > 0) {
      const ssize_t written = ::send(fd_, cursor, size, MSG_NOSIGNAL);
      if (written <= 0) {
        return false;
      }
      cursor += written;
      size -= static_cast<std::uint64_t>(written);
    }
    return true;
  }

  bool read_all(void* data, std::uint64_t size) {
    char* cursor = static_cast<char*>(data);
    while (size > 0) {
      const ssize_t got = ::recv(fd_, cursor, size, 0);
      if (got <= 0) {
        return false;
      }
      cursor += got;
      size -= static_cast<std::uint64_t>(got);
    }
    return true;
  }

  int fd_;
  std::mutex send_mutex_;
  std::atomic<bool> closed_{false};
};

}  // namespace

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error("TcpListener: socket() failed");
  }
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    throw std::runtime_error("TcpListener: bind() failed");
  }
  if (::listen(fd_, 8) != 0) {
    ::close(fd_);
    throw std::runtime_error("TcpListener: listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() { close(); }

void TcpListener::stop() {
  if (!stopped_.exchange(true) && fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

void TcpListener::close() {
  stop();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::unique_ptr<ClientLink> TcpListener::accept(std::chrono::milliseconds timeout) {
  if (fd_ < 0 || stopped_.load()) {
    return nullptr;
  }
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
  if (ready <= 0) {
    return nullptr;
  }
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) {
    return nullptr;
  }
  return std::make_unique<TcpLink>(client);
}

std::unique_ptr<ClientLink> tcp_connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error("tcp_connect: socket() failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("tcp_connect: bad host '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("tcp_connect: connect() to " + host + ":" + std::to_string(port) +
                             " failed");
  }
  return std::make_unique<TcpLink>(fd);
}

}  // namespace vira::comm
