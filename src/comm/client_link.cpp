#include "comm/client_link.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include <atomic>
#include <cstring>
#include <mutex>
#include <stdexcept>

#include "util/blocking_queue.hpp"
#include "util/log.hpp"

namespace vira::comm {

void WireHello::serialize(util::ByteBuffer& out) const {
  out.write<std::uint32_t>(magic);
  out.write<std::uint32_t>(version);
  out.write<std::uint32_t>(features);
  out.write<std::uint8_t>(static_cast<std::uint8_t>(codec));
}

WireHello WireHello::deserialize(util::ByteBuffer& in) {
  WireHello hello;
  hello.magic = in.read<std::uint32_t>();
  hello.version = in.read<std::uint32_t>();
  hello.features = in.read<std::uint32_t>();
  hello.codec = static_cast<util::Codec>(in.read<std::uint8_t>());
  return hello;
}

// ---------------------------------------------------------------------------
// In-process pair
// ---------------------------------------------------------------------------

namespace {

class InProcLink final : public ClientLink {
 public:
  using Queue = util::BlockingQueue<Message>;

  InProcLink(std::shared_ptr<Queue> outgoing, std::shared_ptr<Queue> incoming)
      : outgoing_(std::move(outgoing)), incoming_(std::move(incoming)) {}

  void send(Message msg) override { outgoing_->push(std::move(msg)); }

  std::optional<Message> recv(std::chrono::milliseconds timeout) override {
    return incoming_->pop_for(timeout);
  }

  void close() override {
    outgoing_->close();
    incoming_->close();
  }

  bool closed() const override { return incoming_->closed(); }

 private:
  std::shared_ptr<Queue> outgoing_;
  std::shared_ptr<Queue> incoming_;
};

}  // namespace

std::pair<std::shared_ptr<ClientLink>, std::shared_ptr<ClientLink>> make_inproc_link_pair() {
  auto a_to_b = std::make_shared<InProcLink::Queue>();
  auto b_to_a = std::make_shared<InProcLink::Queue>();
  return {std::make_shared<InProcLink>(a_to_b, b_to_a),
          std::make_shared<InProcLink>(b_to_a, a_to_b)};
}

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------

namespace {

/// Size-field flag bit marking a util::compress() payload (mirrors
/// net::kCompressedFlag; comm sits below net in the layer order, so the
/// constant is duplicated rather than the dependency inverted).
constexpr std::uint64_t kWireCompressedFlag = 1ull << 63;

/// Frame layout: [i32 source][i32 tag][u64 payload bytes][payload].
class TcpLink final : public ClientLink {
 public:
  explicit TcpLink(int fd) : fd_(fd) {
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~TcpLink() override {
    close();
    // The fd itself is released only here, when no other thread can still
    // be blocked in recv()/send() on it (the owner joined its consumers).
    ::close(fd_);
  }

  /// Enables compressed frames after a successful hello/ack negotiation.
  /// Call before the link is shared across threads.
  void enable_compression(util::Codec codec, std::size_t threshold) {
    compress_ = true;
    codec_ = codec;
    compress_threshold_ = threshold;
  }

  void send(Message msg) override {
    std::lock_guard<std::mutex> lock(send_mutex_);
    if (closed_) {
      return;
    }
    const std::int32_t source = msg.source;
    const std::int32_t tag = msg.tag;
    const std::byte* body = msg.payload.data();
    std::uint64_t body_size = msg.payload.size();
    std::uint64_t size_field = body_size;
    // Negotiated wire compression: large frames shrink to a self-describing
    // util::compress() stream; incompressible payloads ship raw (bypass).
    std::vector<std::byte> packed;
    if (compress_ && body_size >= compress_threshold_) {
      packed = util::compress(body, body_size, codec_);
      if (packed.size() < body_size) {
        body = packed.data();
        body_size = packed.size();
        size_field = body_size | kWireCompressedFlag;
      }
    }
    if (!write_all(&source, sizeof(source)) || !write_all(&tag, sizeof(tag)) ||
        !write_all(&size_field, sizeof(size_field)) || !write_all(body, body_size)) {
      do_close();
    }
  }

  std::optional<Message> recv(std::chrono::milliseconds timeout) override {
    if (closed_.load()) {
      return std::nullopt;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
    if (ready <= 0) {
      // EINTR while waiting reads as a timeout; callers poll again.
      return std::nullopt;
    }
    std::int32_t source = 0;
    std::int32_t tag = 0;
    std::uint64_t size_field = 0;
    if (!read_all(&source, sizeof(source)) || !read_all(&tag, sizeof(tag)) ||
        !read_all(&size_field, sizeof(size_field))) {
      do_close();
      return std::nullopt;
    }
    const bool compressed = (size_field & kWireCompressedFlag) != 0;
    const std::uint64_t size = size_field & ~kWireCompressedFlag;
    if (size > (1ull << 32)) {  // sanity: 4 GiB frame cap
      do_close();
      return std::nullopt;
    }
    std::vector<std::byte> payload(size);
    if (!read_all(payload.data(), size)) {
      do_close();
      return std::nullopt;
    }
    if (compressed) {
      auto raw = util::decompress(payload.data(), payload.size());
      if (!raw) {
        VIRA_WARN("tcp_link") << "undecodable compressed frame; dropping link";
        do_close();
        return std::nullopt;
      }
      payload = std::move(*raw);
    }
    Message msg;
    msg.source = source;
    msg.tag = tag;
    msg.payload = util::ByteBuffer(std::move(payload));
    return msg;
  }

  void close() override {
    std::lock_guard<std::mutex> lock(send_mutex_);
    do_close();
  }

  bool closed() const override { return closed_; }

 private:
  /// Half-close: wakes any thread blocked in recv()/send() via shutdown();
  /// the descriptor stays open until destruction so concurrent syscalls
  /// never race against close().
  void do_close() {
    if (!closed_.exchange(true)) {
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

  /// Loops until every byte is out. Partial writes simply continue the
  /// loop; EINTR (a signal landed mid-syscall) retries instead of killing
  /// the link; MSG_NOSIGNAL turns a peer disconnect into EPIPE rather than
  /// a process-fatal SIGPIPE — a client vanishing mid-stream must never
  /// take the server down with it.
  bool write_all(const void* data, std::uint64_t size) {
    const char* cursor = static_cast<const char*>(data);
    while (size > 0) {
      const ssize_t written = ::send(fd_, cursor, size, MSG_NOSIGNAL);
      if (written < 0 && errno == EINTR) {
        continue;
      }
      if (written <= 0) {
        return false;
      }
      cursor += written;
      size -= static_cast<std::uint64_t>(written);
    }
    return true;
  }

  bool read_all(void* data, std::uint64_t size) {
    char* cursor = static_cast<char*>(data);
    while (size > 0) {
      const ssize_t got = ::recv(fd_, cursor, size, 0);
      if (got < 0 && errno == EINTR) {
        continue;
      }
      if (got <= 0) {
        return false;
      }
      cursor += got;
      size -= static_cast<std::uint64_t>(got);
    }
    return true;
  }

  int fd_;
  std::mutex send_mutex_;
  std::atomic<bool> closed_{false};
  bool compress_ = false;
  util::Codec codec_ = util::Codec::kStore;
  std::size_t compress_threshold_ = 4096;
};

}  // namespace

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error("TcpListener: socket() failed");
  }
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    throw std::runtime_error("TcpListener: bind() failed");
  }
  // Swarm-sized backlog: hundreds of clients connect in one burst during
  // bench_swarm; a backlog of 8 made the kernel drop SYNs under that storm.
  if (::listen(fd_, 512) != 0) {
    ::close(fd_);
    throw std::runtime_error("TcpListener: listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() { close(); }

void TcpListener::stop() {
  if (!stopped_.exchange(true) && fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

void TcpListener::close() {
  stop();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::unique_ptr<ClientLink> TcpListener::accept(std::chrono::milliseconds timeout) {
  if (fd_ < 0 || stopped_.load()) {
    return nullptr;
  }
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
  if (ready <= 0) {
    return nullptr;
  }
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) {
    return nullptr;
  }
  return std::make_unique<TcpLink>(client);
}

std::unique_ptr<ClientLink> tcp_connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error("tcp_connect: socket() failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("tcp_connect: bad host '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("tcp_connect: connect() to " + host + ":" + std::to_string(port) +
                             " failed");
  }
  return std::make_unique<TcpLink>(fd);
}

std::unique_ptr<ClientLink> tcp_connect(const std::string& host, std::uint16_t port,
                                        const WireOptions& options) {
  auto link = tcp_connect(host, port);

  WireHello hello;
  hello.features = options.compression ? kFeatureWireCompression : 0;
  hello.codec = options.codec;
  Message msg;
  msg.source = -1;
  msg.tag = kTagHello;
  hello.serialize(msg.payload);
  link->send(std::move(msg));

  // The ack is guaranteed to be the first server → client frame: the
  // scheduler only ever sends in response to a request, and we have not
  // submitted anything yet.
  auto reply = link->recv(options.hello_timeout);
  if (!reply || reply->tag != kTagHelloAck) {
    link->close();
    throw std::runtime_error("tcp_connect: no hello ack from " + host + ":" +
                             std::to_string(port));
  }
  const auto ack = WireHello::deserialize(reply->payload);
  if (ack.magic != kWireMagic) {
    link->close();
    throw std::runtime_error("tcp_connect: bad hello ack magic");
  }
  if ((ack.features & kFeatureWireCompression) != 0) {
    static_cast<TcpLink&>(*link).enable_compression(ack.codec, options.compress_threshold);
  }
  return link;
}

}  // namespace vira::comm
