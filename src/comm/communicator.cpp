#include "comm/communicator.hpp"

#include "util/clock.hpp"

namespace vira::comm {

namespace {
// Upper bound on a single blocking transport wait inside try_recv. It must
// stay small: with several threads receiving on one rank (worker loop,
// heartbeat poller, peer-transfer service), a sibling thread's pump can pull
// this caller's message off the transport and buffer it to pending_ — the
// caller only notices at its next slice boundary, so a long slice turns into
// added delivery latency (long enough to trip the scheduler's idle-grace
// watchdog when it exceeds that grace).
constexpr auto kPumpSlice = std::chrono::milliseconds(5);
}

Communicator::Communicator(std::shared_ptr<Transport> transport, int rank)
    : transport_(std::move(transport)), rank_(rank) {
  if (rank_ < 0 || rank_ >= transport_->size()) {
    throw std::out_of_range("Communicator: rank outside transport");
  }
}

void Communicator::send(int dest, int tag, util::ByteBuffer payload) {
  if (tag < 0) {
    throw std::invalid_argument("Communicator::send: negative tags are reserved");
  }
  send_internal(dest, tag, std::move(payload));
}

void Communicator::send_internal(int dest, int tag, util::ByteBuffer payload) {
  Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.payload = std::move(payload);
  transport_->send(dest, std::move(msg));
}

std::optional<Message> Communicator::take_buffered(int source, int tag) {
  std::lock_guard<std::mutex> lock(pending_mutex_);
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    const bool source_ok = source == kAnySource || it->source == source;
    const bool tag_ok = tag == kAnyTag || it->tag == tag;
    if (source_ok && tag_ok) {
      Message msg = std::move(*it);
      pending_.erase(it);
      return msg;
    }
  }
  return std::nullopt;
}

void Communicator::pump(std::chrono::milliseconds timeout) {
  // Drain everything already delivered before considering a timed wait.
  // Pulling a single message per call caps the mailbox drain rate at one
  // message per caller poll slice — under fan-in load (every worker
  // streaming fragments at rank 0) the transport queue then backlogs by
  // seconds while the receiver thinks it is keeping up. The drain is
  // bounded so one flooded pump cannot hold take_buffered() callers off
  // the pending list indefinitely.
  constexpr int kDrainBound = 1024;
  int drained = 0;
  while (drained < kDrainBound) {
    auto msg = transport_->recv(rank_, std::chrono::milliseconds(0));
    if (!msg) {
      break;
    }
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_.push_back(std::move(*msg));
    ++drained;
  }
  if (drained > 0) {
    return;
  }
  if (timeout.count() > 0) {
    auto msg = transport_->recv(rank_, timeout);
    if (msg) {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      pending_.push_back(std::move(*msg));
      return;
    }
  }
  if (transport_->is_shut_down()) {
    throw TransportClosed();
  }
}

Message Communicator::recv_matching(int source, int tag) {
  // Short pump slices: with several threads receiving on this rank, a
  // message buffered by a sibling thread is noticed at the next iteration.
  while (true) {
    if (auto msg = take_buffered(source, tag)) {
      return std::move(*msg);
    }
    pump(std::chrono::milliseconds(5));
  }
}

Message Communicator::recv(int source, int tag) { return recv_matching(source, tag); }

std::optional<Message> Communicator::try_recv(int source, int tag,
                                              std::chrono::milliseconds timeout) {
  // Deadline arithmetic uses the injectable clock: under a virtual clock
  // the transport's waits advance virtual time, so the deadline must be
  // measured on the same timeline.
  const auto deadline = util::clock_now() + timeout;
  bool pumped = false;
  while (true) {
    if (auto msg = take_buffered(source, tag)) {
      return msg;
    }
    const auto now = util::clock_now();
    if (now >= deadline) {
      if (pumped) {
        return std::nullopt;
      }
      // timeout == 0 still deserves one non-blocking pump: a poller that
      // never touches the transport can starve a backlogged queue forever
      // while reporting "nothing to do".
      pump(std::chrono::milliseconds(0));
      pumped = true;
      continue;
    }
    // Ceil, not truncate: with a sub-millisecond clock (virtual time), a
    // fractional remainder truncated to 0ms would make pump() return
    // without blocking — a busy spin that can never reach the deadline.
    const auto remaining = std::chrono::ceil<std::chrono::milliseconds>(deadline - now);
    pump(std::min(remaining, kPumpSlice));
    pumped = true;
  }
}

std::optional<std::pair<int, int>> Communicator::probe(std::chrono::milliseconds timeout) {
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    if (!pending_.empty()) {
      return std::make_pair(pending_.front().source, pending_.front().tag);
    }
  }
  auto msg = transport_->recv(rank_, timeout);
  if (msg) {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_.push_back(std::move(*msg));
    return std::make_pair(pending_.back().source, pending_.back().tag);
  }
  if (transport_->is_shut_down()) {
    throw TransportClosed();
  }
  return std::nullopt;
}

void Communicator::barrier() {
  constexpr int kRoot = 0;
  util::ByteBuffer token;
  if (rank_ == kRoot) {
    // Receive from each specific peer: per-pair FIFO then guarantees a
    // message from barrier N+1 can never be mistaken for barrier N.
    for (int peer = 1; peer < size(); ++peer) {
      (void)recv_matching(peer, kTagBarrierArrive);
    }
    for (int peer = 1; peer < size(); ++peer) {
      send_internal(peer, kTagBarrierRelease, util::ByteBuffer());
    }
  } else {
    send_internal(kRoot, kTagBarrierArrive, std::move(token));
    (void)recv_matching(kRoot, kTagBarrierRelease);
  }
}

util::ByteBuffer Communicator::broadcast(util::ByteBuffer payload, int root) {
  if (rank_ == root) {
    for (int peer = 0; peer < size(); ++peer) {
      if (peer != root) {
        util::ByteBuffer copy = payload;
        send_internal(peer, kTagBroadcast, std::move(copy));
      }
    }
    return payload;
  }
  return recv_matching(root, kTagBroadcast).payload;
}

std::vector<util::ByteBuffer> Communicator::gather(util::ByteBuffer payload, int root) {
  if (rank_ != root) {
    send_internal(root, kTagGather, std::move(payload));
    return {};
  }
  std::vector<util::ByteBuffer> results(static_cast<std::size_t>(size()));
  results[static_cast<std::size_t>(root)] = std::move(payload);
  // Per-source receives keep successive gather rounds separated (FIFO per
  // pair); ANY_SOURCE could steal a fast peer's next-round contribution.
  for (int peer = 0; peer < size(); ++peer) {
    if (peer == root) {
      continue;
    }
    Message msg = recv_matching(peer, kTagGather);
    results[static_cast<std::size_t>(peer)] = std::move(msg.payload);
  }
  return results;
}

double Communicator::reduce_sum(double value, int root) {
  if (rank_ != root) {
    util::ByteBuffer payload;
    payload.write<double>(value);
    send_internal(root, kTagReduce, std::move(payload));
    return value;
  }
  double sum = value;
  for (int peer = 0; peer < size(); ++peer) {
    if (peer == root) {
      continue;
    }
    Message msg = recv_matching(peer, kTagReduce);
    sum += msg.payload.read<double>();
  }
  return sum;
}

}  // namespace vira::comm
