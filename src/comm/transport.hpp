#pragma once

/// \file transport.hpp
/// Abstract rank-addressed transport (paper layer 1).
///
/// A Transport delivers Messages between a fixed set of endpoints
/// (0..size-1). Delivery is reliable and FIFO per (sender, receiver) pair —
/// the guarantees MPI point-to-point gives, which the middle layer's
/// collectives rely on. Implementations: InProcTransport (threads sharing
/// mailboxes — the role MPI played on the paper's shared-memory SUN Fire)
/// and, for the client link, the framed stream in `client_link.hpp`.
/// Decorators may weaken the guarantees deliberately: FaultInjectingTransport
/// (fault_transport.hpp) drops/delays/duplicates messages and crashes ranks
/// to exercise the runtime's failure model (DESIGN.md "Failure model").

#include <chrono>
#include <memory>
#include <optional>
#include <vector>

#include "comm/message.hpp"
#include "util/blocking_queue.hpp"

namespace vira::comm {

class Transport {
 public:
  virtual ~Transport() = default;

  virtual int size() const = 0;

  /// Delivers `msg` (whose `source` must already be set) to endpoint `dest`.
  /// Throws std::out_of_range for bad endpoints. Sends to a shut-down
  /// transport are dropped silently (shutdown is a teardown race, not an
  /// error).
  virtual void send(int dest, Message msg) = 0;

  /// Takes the next message addressed to endpoint `self`, blocking up to
  /// `timeout`. Returns nullopt on timeout or when the transport has shut
  /// down and the mailbox is drained.
  virtual std::optional<Message> recv(int self, std::chrono::milliseconds timeout) = 0;

  /// Releases all blocked receivers; subsequent sends are dropped.
  virtual void shutdown() = 0;

  /// True once shutdown() has been called.
  virtual bool is_shut_down() const = 0;
};

/// Shared-memory transport: one blocking mailbox per endpoint.
class InProcTransport final : public Transport {
 public:
  explicit InProcTransport(int size);

  int size() const override { return static_cast<int>(mailboxes_.size()); }
  void send(int dest, Message msg) override;
  std::optional<Message> recv(int self, std::chrono::milliseconds timeout) override;
  void shutdown() override;
  bool is_shut_down() const override;

 private:
  std::vector<std::unique_ptr<util::BlockingQueue<Message>>> mailboxes_;
};

}  // namespace vira::comm
