#pragma once

/// \file message.hpp
/// Wire unit of Viracocha's communication layer.
///
/// The paper's layer 1 "hides implementation details about used
/// communication protocols" — scheduler and workers talk through a generic
/// interface whether the bytes move over MPI or TCP/IP. A Message carries a
/// source endpoint, an integer tag (negative tags are reserved for the
/// framework's collectives and control traffic) and an opaque payload.

#include <cstdint>

#include "util/byte_buffer.hpp"

namespace vira::comm {

struct Message {
  int source = -1;
  int tag = 0;
  util::ByteBuffer payload;

  /// Local trace metadata (never serialized on any wire): the sender may
  /// annotate a message with the span context it belongs to, so a link
  /// implementation that defers the actual socket write (the event-loop
  /// frontend's queued sends) can open a child span covering queue + write
  /// time. 0 = untraced.
  std::uint64_t trace_request = 0;
  std::uint64_t trace_span = 0;
};

/// Wildcards for receive matching (mirroring MPI_ANY_SOURCE / MPI_ANY_TAG).
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = INT32_MIN;

}  // namespace vira::comm
