#pragma once

/// \file tags.hpp
/// Registry of the well-known rank-transport tag ranges, so a new subsystem
/// can claim a range without grepping every layer. Negative tags belong to
/// the Communicator's own collectives (comm/communicator.hpp); everything
/// else is positive and listed here:
///
///   1000–1009   scheduler ↔ worker control (core/protocol.hpp)
///   1100–1101   proxy → scheduler DMS traffic (core/remote_server_api.hpp)
///   1102–1104   proxy ↔ proxy peer transfer (below; payloads in
///               dms/peer_wire.hpp, narrative in docs/PROTOCOL.md)
///   2000000+    work-group gathers (request-derived)
///   3000000+    work-group barriers (request-derived)
///   4000000+    DMS reply tags (per-call unique)
///
/// Peer-fetch replies share the fixed kTagPeerBlock tag; the requester
/// matches them by the sequence number carried in the payload
/// (dms/peer_wire.hpp), so no per-call tag range is needed.
///
/// The peer-transfer tags are defined at the comm layer (not core) because
/// the DMS sits below core in the link graph: vira_dms speaks them over a
/// plain comm::Communicator with no scheduler involvement at all — that is
/// the point of the sharded path.

namespace vira::comm {

/// Proxy → owning proxy: "send me item X" (expects a kTagPeerBlock reply).
inline constexpr int kTagPeerFetch = 1102;
/// Owning proxy → requester: the block (or a signed miss).
inline constexpr int kTagPeerBlock = 1103;
/// Loader → replica owners: unsolicited replica placement after a disk load.
inline constexpr int kTagPeerPush = 1104;

}  // namespace vira::comm
