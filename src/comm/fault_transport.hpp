#pragma once

/// \file fault_transport.hpp
/// Fault-injecting Transport decorator (failure-model test harness).
///
/// Wraps any Transport and, driven by a seeded util::Rng, perturbs the
/// message flow the way flaky interconnects and dying nodes do in the
/// remote/distributed visualization deployments that followed Viracocha:
///
///   * drop      — the message silently never arrives,
///   * duplicate — the message is delivered twice,
///   * delay     — the message is held back by a background thread and
///                 delivered late (breaking FIFO, as reordering networks do),
///   * kill_rank — a rank "crashes": nothing is delivered to or from it any
///                 more, mid-request, until global shutdown.
///
/// With all rates at zero and no killed ranks the decorator is a strict
/// pass-through — zero behavior change — so the same test suite can run
/// with and without faults. All methods are thread-safe (the wrapped
/// Transport already must be).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "comm/transport.hpp"
#include "util/rng.hpp"

namespace vira::comm {

/// Probabilities are per message, evaluated independently in the order
/// drop → duplicate → delay.
struct FaultInjectionConfig {
  std::uint64_t seed = 0x5eedULL;
  double drop_rate = 0.0;
  double duplicate_rate = 0.0;
  double delay_rate = 0.0;
  /// Delayed messages are held a uniform [1, max_delay] ms.
  std::chrono::milliseconds max_delay{5};
};

/// Counters of everything the injector did (for benches and assertions).
struct FaultInjectionStats {
  std::uint64_t forwarded = 0;   ///< messages passed through unharmed
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;
  std::uint64_t suppressed_dead = 0;  ///< messages to/from killed ranks
};

class FaultInjectingTransport final : public Transport {
 public:
  FaultInjectingTransport(std::shared_ptr<Transport> inner, FaultInjectionConfig config);
  ~FaultInjectingTransport() override;

  int size() const override { return inner_->size(); }
  void send(int dest, Message msg) override;
  std::optional<Message> recv(int self, std::chrono::milliseconds timeout) override;
  void shutdown() override;
  bool is_shut_down() const override { return inner_->is_shut_down(); }

  /// Simulates a crash of `rank`: from now on nothing is delivered to or
  /// from it. Irreversible (a crashed process does not come back).
  void kill_rank(int rank);
  bool is_dead(int rank) const;
  std::size_t dead_count() const;

  FaultInjectionStats stats() const;

 private:
  bool faults_possible() const {
    return config_.drop_rate > 0.0 || config_.duplicate_rate > 0.0 || config_.delay_rate > 0.0;
  }
  void deliver_later(int dest, Message msg, std::chrono::milliseconds delay);
  void delay_loop();

  std::shared_ptr<Transport> inner_;
  FaultInjectionConfig config_;

  mutable std::mutex mutex_;  ///< guards rng_, dead_, stats_
  util::Rng rng_;
  std::set<int> dead_;
  FaultInjectionStats stats_;

  /// Delayed-delivery machinery (started lazily on the first delay).
  struct Delayed {
    std::chrono::steady_clock::time_point due;
    int dest;
    Message msg;
  };
  std::mutex delay_mutex_;
  std::condition_variable delay_cv_;
  std::vector<Delayed> delayed_;  ///< unsorted; the loop scans for the earliest
  std::thread delay_thread_;
  std::atomic<bool> delay_thread_running_{false};
  std::atomic<bool> stopping_{false};
};

}  // namespace vira::comm
