#include "comm/transport.hpp"

#include <stdexcept>

namespace vira::comm {

InProcTransport::InProcTransport(int size) {
  if (size <= 0) {
    throw std::invalid_argument("InProcTransport: size must be positive");
  }
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int endpoint = 0; endpoint < size; ++endpoint) {
    mailboxes_.push_back(std::make_unique<util::BlockingQueue<Message>>());
  }
}

void InProcTransport::send(int dest, Message msg) {
  if (dest < 0 || dest >= size()) {
    throw std::out_of_range("InProcTransport::send: bad destination endpoint");
  }
  mailboxes_[static_cast<std::size_t>(dest)]->push(std::move(msg));
}

std::optional<Message> InProcTransport::recv(int self, std::chrono::milliseconds timeout) {
  if (self < 0 || self >= size()) {
    throw std::out_of_range("InProcTransport::recv: bad endpoint");
  }
  return mailboxes_[static_cast<std::size_t>(self)]->pop_for(timeout);
}

void InProcTransport::shutdown() {
  for (auto& mailbox : mailboxes_) {
    mailbox->close();
  }
}

bool InProcTransport::is_shut_down() const { return mailboxes_.front()->closed(); }

}  // namespace vira::comm
