#include "comm/transport.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace vira::comm {

namespace {
struct TransportMetrics {
  obs::Counter& messages = obs::Registry::instance().counter("comm.messages_sent");
  obs::Counter& bytes = obs::Registry::instance().counter("comm.bytes_sent");
};

TransportMetrics& metrics() {
  static TransportMetrics* instruments = new TransportMetrics();
  return *instruments;
}
}  // namespace

InProcTransport::InProcTransport(int size) {
  if (size <= 0) {
    throw std::invalid_argument("InProcTransport: size must be positive");
  }
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int endpoint = 0; endpoint < size; ++endpoint) {
    mailboxes_.push_back(std::make_unique<util::BlockingQueue<Message>>());
  }
}

void InProcTransport::send(int dest, Message msg) {
  if (dest < 0 || dest >= size()) {
    throw std::out_of_range("InProcTransport::send: bad destination endpoint");
  }
  metrics().messages.add();
  metrics().bytes.add(msg.payload.size());
  // Gated span: only sends issued from traced work (a span context on this
  // thread) get a "comm.send" record — heartbeat/teardown chatter stays out
  // of the trace, and the no-sink path never reaches here.
  obs::ActiveSpan span;
  if (obs::current_context().span_id != 0) {
    span = obs::Tracer::instance().start_child("comm.send");
    if (span.active()) {
      span.arg("dest", dest);
      span.arg("tag", msg.tag);
      span.arg("bytes", static_cast<std::int64_t>(msg.payload.size()));
    }
  }
  mailboxes_[static_cast<std::size_t>(dest)]->push(std::move(msg));
}

std::optional<Message> InProcTransport::recv(int self, std::chrono::milliseconds timeout) {
  if (self < 0 || self >= size()) {
    throw std::out_of_range("InProcTransport::recv: bad endpoint");
  }
  return mailboxes_[static_cast<std::size_t>(self)]->pop_for(timeout);
}

void InProcTransport::shutdown() {
  for (auto& mailbox : mailboxes_) {
    mailbox->close();
  }
}

bool InProcTransport::is_shut_down() const { return mailboxes_.front()->closed(); }

}  // namespace vira::comm
