#pragma once

/// \file shard_map.hpp
/// Consistent-hash ownership map for the sharded DMS.
///
/// The namespace of ItemIds is spread over a ring of virtual nodes; each
/// participating proxy contributes `vnodes` points. An item's owner list is
/// found by hashing the id onto the ring and walking clockwise, collecting
/// the first `replication` distinct *live* proxies — primary first, then the
/// replicas. Two classic consistent-hashing properties carry the test tier:
///
///   * identical (seed, members, vnodes) ⇒ identical routing, on every rank,
///     with no coordination — proxies never have to agree at runtime;
///   * marking a proxy dead only changes the owner lists that contained it
///     (the ring walk simply skips its points), so a rank death moves the
///     expected ≈ R/N fraction of the keyspace and nothing else.
///
/// Death marks are learned locally (a peer fetch that times out marks the
/// peer dead) and are monotone per map instance; a proxy revived by the
/// operator gets a fresh map. All methods are thread-safe.

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "dms/data_item.hpp"

namespace vira::dms {

class ShardMap {
 public:
  struct Config {
    int members = 1;       ///< participating proxies: ids 0 .. members-1
    int replication = 1;   ///< R distinct owners per item (clamped to members)
    std::uint64_t seed = 0;
    int vnodes = 64;       ///< ring points per member
  };

  explicit ShardMap(Config config);

  /// The first `replication` distinct live owners for `id`, primary first.
  /// Empty only when every member is dead.
  std::vector<int> owners(ItemId id) const;

  /// The live primary owner, or -1 when every member is dead.
  int primary(ItemId id) const;

  /// True when `proxy` appears in owners(id).
  bool is_owner(ItemId id, int proxy) const;

  void mark_dead(int proxy);
  void mark_alive(int proxy);
  bool is_dead(int proxy) const;

  int members() const { return config_.members; }
  int replication() const { return config_.replication; }

 private:
  struct Point {
    std::uint64_t hash;
    int member;
  };

  Config config_;
  std::vector<Point> ring_;  ///< sorted by hash; immutable after construction

  mutable std::mutex mutex_;
  std::vector<bool> dead_;
};

}  // namespace vira::dms
