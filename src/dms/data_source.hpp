#pragma once

/// \file data_source.hpp
/// Application-layer "manipulation methods" (paper Sec. 4).
///
/// "Support of arbitrary data formats is given by dividing data and its
/// manipulation methods. The DMS handles raw data without any information
/// about its type or structure. For accessing this data, manipulation
/// methods have to be implemented on the application layer, which may be
/// used by the DMS for loading, saving, or transferring data."
///
/// A DataSource knows how to turn a DataItemName into bytes (and how big
/// those bytes are, which the fitness function needs). The CFD
/// implementation over .vmb datasets lives in core/vmb_data_source.hpp;
/// tests use in-memory sources.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dms/data_item.hpp"

namespace vira::dms {

class DataSource {
 public:
  virtual ~DataSource() = default;

  /// Reads exactly the item's bytes from backing storage (a "part of a
  /// file" read). Throws on unknown items or I/O failure.
  virtual util::ByteBuffer load(const DataItemName& name) = 0;

  /// Size of the item's payload without loading it.
  virtual std::uint64_t item_bytes(const DataItemName& name) const = 0;

  /// Size of the physical file the item lives in (collective I/O cost).
  virtual std::uint64_t file_bytes(const DataItemName& name) const = 0;

  /// Key identifying that physical file (concurrency tracking).
  virtual std::string file_key(const DataItemName& name) const = 0;

  /// Collective read: loads the whole file and returns every item in it
  /// (the requested one included). Default = just the single item.
  virtual std::vector<std::pair<DataItemName, util::ByteBuffer>> load_file(
      const DataItemName& name) {
    std::vector<std::pair<DataItemName, util::ByteBuffer>> items;
    items.emplace_back(name, load(name));
    return items;
  }
};

}  // namespace vira::dms
