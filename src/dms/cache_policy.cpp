#include "dms/cache_policy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vira::dms {

// ---------------------------------------------------------------------------
// LRU
// ---------------------------------------------------------------------------

void LruPolicy::on_insert(ItemId id) {
  if (where_.count(id) > 0) {
    touch(id);
    return;
  }
  order_.push_back(id);
  where_[id] = std::prev(order_.end());
}

void LruPolicy::touch(ItemId id) {
  auto it = where_.find(id);
  if (it == where_.end()) {
    return;
  }
  order_.splice(order_.end(), order_, it->second);
  it->second = std::prev(order_.end());
}

void LruPolicy::on_access(ItemId id) { touch(id); }

void LruPolicy::on_erase(ItemId id) {
  auto it = where_.find(id);
  if (it != where_.end()) {
    order_.erase(it->second);
    where_.erase(it);
  }
}

std::optional<ItemId> LruPolicy::victim(const EvictableFn& evictable) const {
  for (const ItemId id : order_) {  // front = least recently used
    if (evictable(id)) {
      return id;
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// LFU
// ---------------------------------------------------------------------------

void LfuPolicy::on_insert(ItemId id) {
  auto& entry = entries_[id];
  entry.count += 1;
  entry.last_use = ++clock_;
}

void LfuPolicy::on_access(ItemId id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return;
  }
  it->second.count += 1;
  it->second.last_use = ++clock_;
}

void LfuPolicy::on_erase(ItemId id) { entries_.erase(id); }

std::optional<ItemId> LfuPolicy::victim(const EvictableFn& evictable) const {
  std::optional<ItemId> best;
  std::uint64_t best_count = 0;
  std::uint64_t best_last = 0;
  for (const auto& [id, entry] : entries_) {
    if (!evictable(id)) {
      continue;
    }
    if (!best || entry.count < best_count ||
        (entry.count == best_count && entry.last_use < best_last)) {
      best = id;
      best_count = entry.count;
      best_last = entry.last_use;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// FBR
// ---------------------------------------------------------------------------

FbrPolicy::FbrPolicy(Params params) : params_(params) {
  if (params_.new_fraction < 0.0 || params_.old_fraction < 0.0 ||
      params_.new_fraction + params_.old_fraction > 1.0) {
    throw std::invalid_argument("FbrPolicy: section fractions invalid");
  }
  if (params_.max_count < 2) {
    throw std::invalid_argument("FbrPolicy: max_count must be >= 2");
  }
}

bool FbrPolicy::in_new_section(const Entry& entry) const {
  const auto new_count =
      static_cast<std::size_t>(std::ceil(params_.new_fraction * static_cast<double>(stack_.size())));
  std::size_t index = 0;
  for (auto it = stack_.begin(); it != stack_.end() && index < new_count; ++it, ++index) {
    if (it == entry.position) {
      return true;
    }
  }
  return false;
}

std::size_t FbrPolicy::old_section_start() const {
  const auto old_count =
      static_cast<std::size_t>(std::ceil(params_.old_fraction * static_cast<double>(stack_.size())));
  return stack_.size() - std::min(old_count, stack_.size());
}

void FbrPolicy::maybe_age() {
  bool needs_aging = false;
  for (const auto& [id, entry] : entries_) {
    if (entry.count >= params_.max_count) {
      needs_aging = true;
      break;
    }
  }
  if (needs_aging) {
    for (auto& [id, entry] : entries_) {
      entry.count = std::max<std::uint64_t>(1, entry.count / 2);
    }
  }
}

void FbrPolicy::touch(Entry& entry, ItemId id) {
  stack_.erase(entry.position);
  stack_.push_front(id);
  entry.position = stack_.begin();
  entry.last_use = ++clock_;
}

void FbrPolicy::on_insert(ItemId id) {
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    on_access(id);
    return;
  }
  stack_.push_front(id);
  Entry entry;
  entry.position = stack_.begin();
  entry.count = 1;
  entry.last_use = ++clock_;
  entries_.emplace(id, entry);
}

void FbrPolicy::on_access(ItemId id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return;
  }
  Entry& entry = it->second;
  // Count is bumped only when the item is re-referenced OUTSIDE the new
  // section: references inside it are attributed to short-term locality.
  if (!in_new_section(entry)) {
    entry.count += 1;
    maybe_age();
  }
  touch(entry, id);
}

void FbrPolicy::on_erase(ItemId id) {
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    stack_.erase(it->second.position);
    entries_.erase(it);
  }
}

std::optional<ItemId> FbrPolicy::victim(const EvictableFn& evictable) const {
  const std::size_t start = old_section_start();
  std::optional<ItemId> best;
  std::uint64_t best_count = 0;
  std::uint64_t best_last = 0;
  std::size_t index = 0;
  for (auto it = stack_.begin(); it != stack_.end(); ++it, ++index) {
    if (index < start) {
      continue;  // not in the old section
    }
    const ItemId id = *it;
    if (!evictable(id)) {
      continue;
    }
    const Entry& entry = entries_.at(id);
    if (!best || entry.count < best_count ||
        (entry.count == best_count && entry.last_use < best_last)) {
      best = id;
      best_count = entry.count;
      best_last = entry.last_use;
    }
  }
  if (best) {
    return best;
  }
  // Old section exhausted (everything pinned): fall back to any evictable
  // entry, least-recent first, so the cache can still make progress.
  for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
    if (evictable(*it)) {
      return *it;
    }
  }
  return std::nullopt;
}

std::uint64_t FbrPolicy::count_of(ItemId id) const {
  auto it = entries_.find(id);
  return it != entries_.end() ? it->second.count : 0;
}

std::unique_ptr<ReplacementPolicy> make_policy(const std::string& name) {
  if (name == "lru" || name == "LRU") {
    return std::make_unique<LruPolicy>();
  }
  if (name == "lfu" || name == "LFU") {
    return std::make_unique<LfuPolicy>();
  }
  if (name == "fbr" || name == "FBR") {
    return std::make_unique<FbrPolicy>();
  }
  throw std::invalid_argument("make_policy: unknown policy '" + name + "'");
}

}  // namespace vira::dms
