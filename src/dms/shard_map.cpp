#include "dms/shard_map.hpp"

#include <algorithm>
#include <stdexcept>

namespace vira::dms {

namespace {

/// splitmix64 — the same finalizer the rest of the codebase uses for
/// decorrelating seeds; good avalanche keeps ring points uniform.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Ring points and item targets must come from *disjoint* hash domains.
// Without the salts, member 0's vnode inputs (0 * 0x10001 + v = v) make its
// ring points mix(seed ^ mix(v)) — bit-for-bit equal to the target of
// ItemId v. Interned ids are small sequential integers, so every id below
// `vnodes` would land exactly on a member-0 point and member 0 would be
// primary for the whole working set.
constexpr std::uint64_t kRingDomain = 0x52494e47u;  // "RING"
constexpr std::uint64_t kItemDomain = 0x4954454du;  // "ITEM"

}  // namespace

ShardMap::ShardMap(Config config) : config_(config) {
  if (config_.members < 1) {
    throw std::invalid_argument("ShardMap: need at least one member");
  }
  config_.replication = std::clamp(config_.replication, 1, config_.members);
  config_.vnodes = std::max(1, config_.vnodes);
  dead_.assign(static_cast<std::size_t>(config_.members), false);
  ring_.reserve(static_cast<std::size_t>(config_.members) *
                static_cast<std::size_t>(config_.vnodes));
  for (int member = 0; member < config_.members; ++member) {
    for (int v = 0; v < config_.vnodes; ++v) {
      const std::uint64_t point =
          mix(config_.seed ^ kRingDomain ^
              mix(static_cast<std::uint64_t>(member) * 0x10001ull +
                  static_cast<std::uint64_t>(v)));
      ring_.push_back({point, member});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.member < b.member;
  });
}

std::vector<int> ShardMap::owners(ItemId id) const {
  const std::uint64_t target = mix(config_.seed ^ kItemDomain ^ mix(id));
  auto it = std::lower_bound(ring_.begin(), ring_.end(), target,
                             [](const Point& p, std::uint64_t h) { return p.hash < h; });
  std::vector<int> result;
  result.reserve(static_cast<std::size_t>(config_.replication));
  std::vector<bool> seen(static_cast<std::size_t>(config_.members), false);
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t step = 0; step < ring_.size(); ++step) {
    if (it == ring_.end()) {
      it = ring_.begin();
    }
    const int member = it->member;
    ++it;
    if (seen[static_cast<std::size_t>(member)] || dead_[static_cast<std::size_t>(member)]) {
      continue;
    }
    seen[static_cast<std::size_t>(member)] = true;
    result.push_back(member);
    if (static_cast<int>(result.size()) == config_.replication) {
      break;
    }
  }
  return result;
}

int ShardMap::primary(ItemId id) const {
  const auto list = owners(id);
  return list.empty() ? -1 : list.front();
}

bool ShardMap::is_owner(ItemId id, int proxy) const {
  const auto list = owners(id);
  return std::find(list.begin(), list.end(), proxy) != list.end();
}

void ShardMap::mark_dead(int proxy) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (proxy >= 0 && proxy < config_.members) {
    dead_[static_cast<std::size_t>(proxy)] = true;
  }
}

void ShardMap::mark_alive(int proxy) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (proxy >= 0 && proxy < config_.members) {
    dead_[static_cast<std::size_t>(proxy)] = false;
  }
}

bool ShardMap::is_dead(int proxy) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return proxy >= 0 && proxy < config_.members && dead_[static_cast<std::size_t>(proxy)];
}

}  // namespace vira::dms
