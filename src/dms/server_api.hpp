#pragma once

/// \file server_api.hpp
/// The proxy-facing surface of the central data manager server.
///
/// DataProxy talks to the server exclusively through this interface, which
/// has two implementations: DataServer itself (direct calls — the single-
/// process wiring) and core::RemoteServerApi (the paper's wiring: "a proxy
/// asks the data manager server which strategy to use" as a message to the
/// scheduler node, Sec. 4.3).

#include <cstdint>
#include <optional>
#include <string>

#include "dms/data_item.hpp"
#include "dms/loading.hpp"

namespace vira::dms {

/// Outcome of the server's per-load strategy decision.
struct StrategyDecision {
  StrategyKind kind = StrategyKind::kDirectDisk;
  int peer = -1;  ///< source proxy for peer transfer
};

class ServerApi {
 public:
  virtual ~ServerApi() = default;

  /// --- naming --------------------------------------------------------------
  virtual ItemId intern(const DataItemName& name) = 0;
  virtual std::optional<DataItemName> lookup(ItemId id) = 0;

  /// --- strategy decision ----------------------------------------------------
  virtual StrategyDecision choose_strategy(int proxy, ItemId id, std::uint64_t item_bytes,
                                           std::uint64_t file_bytes,
                                           const std::string& file_key) = 0;

  /// --- registry / telemetry (one-way notifications) -------------------------
  virtual void report_insert(int proxy, ItemId id) = 0;
  virtual void report_evict(int proxy, ItemId id) = 0;
  virtual void begin_file_read(const std::string& file_key) = 0;
  virtual void end_file_read(const std::string& file_key) = 0;
  virtual void observe_disk_bandwidth(double bytes_per_second) = 0;
};

}  // namespace vira::dms
