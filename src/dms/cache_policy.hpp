#pragma once

/// \file cache_policy.hpp
/// Block replacement policies (paper Sec. 4.2).
///
/// "Standard replacement algorithms such as LRU, LFU and FBR (frequency
/// based replacement, a trade-off between LFU and LRU, proposed in
/// [Robinson & Devarakonda 1990]) have been evaluated with respect to CFD
/// data requests. In this special case, strategies based on frequency,
/// foremost FBR, turned out to produce less cache misses."
///
/// Policies are pure bookkeeping (no payloads, no locking) so the same
/// objects drive the threaded BlockCache and the simulation replay, and so
/// the bench_cache_policies ablation can compare them on recorded traces.

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "dms/data_item.hpp"

namespace vira::dms {

/// Predicate deciding whether an item may be evicted (unpinned).
using EvictableFn = std::function<bool(ItemId)>;

class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  virtual void on_insert(ItemId id) = 0;
  virtual void on_access(ItemId id) = 0;
  virtual void on_erase(ItemId id) = 0;

  /// Chooses the next eviction victim among items satisfying `evictable`.
  /// Returns nullopt when nothing can be evicted.
  virtual std::optional<ItemId> victim(const EvictableFn& evictable) const = 0;

  virtual std::string name() const = 0;
  virtual std::size_t tracked() const = 0;
};

/// Least Recently Used.
class LruPolicy final : public ReplacementPolicy {
 public:
  void on_insert(ItemId id) override;
  void on_access(ItemId id) override;
  void on_erase(ItemId id) override;
  std::optional<ItemId> victim(const EvictableFn& evictable) const override;
  std::string name() const override { return "LRU"; }
  std::size_t tracked() const override { return order_.size(); }

 private:
  void touch(ItemId id);
  std::list<ItemId> order_;  // front = LRU, back = MRU
  std::unordered_map<ItemId, std::list<ItemId>::iterator> where_;
};

/// Least Frequently Used (ties broken towards least recent use).
class LfuPolicy final : public ReplacementPolicy {
 public:
  void on_insert(ItemId id) override;
  void on_access(ItemId id) override;
  void on_erase(ItemId id) override;
  std::optional<ItemId> victim(const EvictableFn& evictable) const override;
  std::string name() const override { return "LFU"; }
  std::size_t tracked() const override { return entries_.size(); }

 private:
  struct Entry {
    std::uint64_t count = 0;
    std::uint64_t last_use = 0;
  };
  std::unordered_map<ItemId, Entry> entries_;
  std::uint64_t clock_ = 0;
};

/// Frequency-Based Replacement (Robinson & Devarakonda, SIGMETRICS 1990).
///
/// The recency stack is split into a *new*, *middle* and *old* section.
/// Re-references inside the new section do NOT bump the frequency count
/// (this "factors out locality"); victims are taken from the old section,
/// least-frequent first, least-recent on ties. Counts are periodically
/// halved (Amax aging) so stale popularity decays.
class FbrPolicy final : public ReplacementPolicy {
 public:
  struct Params {
    double new_fraction;     ///< share of stack forming the new section
    double old_fraction;     ///< share (from the cold end) forming the old section
    std::uint64_t max_count; ///< Cmax: counts are halved when any hits this
  };

  explicit FbrPolicy(Params params = Params{0.25, 0.5, 64});

  void on_insert(ItemId id) override;
  void on_access(ItemId id) override;
  void on_erase(ItemId id) override;
  std::optional<ItemId> victim(const EvictableFn& evictable) const override;
  std::string name() const override { return "FBR"; }
  std::size_t tracked() const override { return entries_.size(); }

  /// Exposed for tests: current reference count of an item (0 if unknown).
  std::uint64_t count_of(ItemId id) const;

 private:
  struct Entry {
    std::list<ItemId>::iterator position;
    std::uint64_t count = 1;
    std::uint64_t last_use = 0;
  };

  bool in_new_section(const Entry& entry) const;
  std::size_t old_section_start() const;
  void maybe_age();
  void touch(Entry& entry, ItemId id);

  Params params_;
  std::list<ItemId> stack_;  // front = MRU ("new" end), back = LRU ("old" end)
  std::unordered_map<ItemId, Entry> entries_;
  std::uint64_t clock_ = 0;
};

/// Factory by name ("lru" / "lfu" / "fbr") for configs and benches.
std::unique_ptr<ReplacementPolicy> make_policy(const std::string& name);

}  // namespace vira::dms
