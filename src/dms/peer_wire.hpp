#pragma once

/// \file peer_wire.hpp
/// Payload layouts for the proxy↔proxy peer-transfer path (tags in
/// comm/tags.hpp, narrative in docs/PROTOCOL.md "Peer transfer").
///
/// Fetches are sequence-numbered per requesting proxy. The requester keeps
/// at most one fetch outstanding and matches replies by `seq`, so a reply
/// that arrives after its fetch timed out — or a transport duplicate of a
/// reply already consumed — is recognized and discarded instead of being
/// mistaken for the answer to a later fetch; the same (identity, dedup)
/// idea the exactly-once fragment machinery uses.

#include <cstdint>

#include "dms/data_item.hpp"
#include "util/byte_buffer.hpp"

namespace vira::dms {

/// kTagPeerFetch payload: requester → owner.
struct PeerFetchRequest {
  ItemId id = 0;
  std::uint64_t seq = 0;
  /// The requester's current dataset version: the owner must not answer
  /// from a replica stamped older than this (bump invalidation, Sec. 4.1
  /// name-service versioning + the PR-6 result-cache invalidation feed).
  std::uint64_t min_version = 0;
  /// Rank to reply to (the requester's transport rank).
  std::int32_t reply_rank = 0;

  void serialize(util::ByteBuffer& out) const {
    out.write<std::uint64_t>(id);
    out.write<std::uint64_t>(seq);
    out.write<std::uint64_t>(min_version);
    out.write<std::int32_t>(reply_rank);
  }
  static PeerFetchRequest deserialize(util::ByteBuffer& in) {
    PeerFetchRequest r;
    r.id = in.read<std::uint64_t>();
    r.seq = in.read<std::uint64_t>();
    r.min_version = in.read<std::uint64_t>();
    r.reply_rank = in.read<std::int32_t>();
    return r;
  }
};

/// kTagPeerBlock payload: owner → requester. `found == 0` is a signed miss
/// (not cached, stale, or misrouted); the requester then tries the next
/// replica or falls back to disk — it never waits on a silent peer.
struct PeerBlockReply {
  std::uint64_t seq = 0;
  std::uint8_t found = 0;
  std::uint64_t version = 0;
  util::ByteBuffer bytes;  ///< blob content; empty when found == 0

  void serialize(util::ByteBuffer& out) const {
    out.write<std::uint64_t>(seq);
    out.write<std::uint8_t>(found);
    out.write<std::uint64_t>(version);
    out.write<std::uint64_t>(bytes.size());
    out.write_raw(bytes.data(), bytes.size());
  }
  static PeerBlockReply deserialize(util::ByteBuffer& in) {
    PeerBlockReply r;
    r.seq = in.read<std::uint64_t>();
    r.found = in.read<std::uint8_t>();
    r.version = in.read<std::uint64_t>();
    const auto size = in.read<std::uint64_t>();
    std::vector<std::byte> raw(size);
    in.read_raw(raw.data(), size);
    r.bytes = util::ByteBuffer(std::move(raw));
    return r;
  }
};

/// kTagPeerPush payload: loader → replica owner, one-way. After a disk
/// load the loader places a copy on every live owner so a later owner
/// death is covered by a surviving replica instead of a disk respill.
struct PeerPush {
  ItemId id = 0;
  std::uint64_t version = 0;
  util::ByteBuffer bytes;

  void serialize(util::ByteBuffer& out) const {
    out.write<std::uint64_t>(id);
    out.write<std::uint64_t>(version);
    out.write<std::uint64_t>(bytes.size());
    out.write_raw(bytes.data(), bytes.size());
  }
  static PeerPush deserialize(util::ByteBuffer& in) {
    PeerPush p;
    p.id = in.read<std::uint64_t>();
    p.version = in.read<std::uint64_t>();
    const auto size = in.read<std::uint64_t>();
    std::vector<std::byte> raw(size);
    in.read_raw(raw.data(), size);
    p.bytes = util::ByteBuffer(std::move(raw));
    return p;
  }
};

}  // namespace vira::dms
