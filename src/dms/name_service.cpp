#include "dms/name_service.hpp"

namespace vira::dms {

ItemId NameService::intern(const DataItemName& name) {
  const std::string key = name.canonical();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_name_.find(key);
  if (it != by_name_.end()) {
    return it->second;
  }
  const ItemId id = by_id_.size();
  by_id_.push_back(name);
  by_name_.emplace(key, id);
  return id;
}

std::optional<DataItemName> NameService::lookup(ItemId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id >= by_id_.size()) {
    return std::nullopt;
  }
  return by_id_[id];
}

std::optional<ItemId> NameService::find(const DataItemName& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_name_.find(name.canonical());
  if (it == by_name_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::size_t NameService::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return by_id_.size();
}

void NameService::bump_data_version() {
  const std::uint64_t next = data_version_.fetch_add(1, std::memory_order_acq_rel) + 1;
  std::vector<std::function<void(std::uint64_t)>> listeners;
  {
    std::lock_guard<std::mutex> lock(listeners_mutex_);
    listeners = bump_listeners_;
  }
  for (const auto& listener : listeners) {
    listener(next);
  }
}

void NameService::on_bump(std::function<void(std::uint64_t)> listener) {
  std::lock_guard<std::mutex> lock(listeners_mutex_);
  bump_listeners_.push_back(std::move(listener));
}

ItemId NameResolver::resolve(const DataItemName& name) {
  const std::string key = name.canonical();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = forward_.find(key);
    if (it != forward_.end()) {
      return it->second;
    }
  }
  const ItemId id = resolve_(name);
  std::lock_guard<std::mutex> lock(mutex_);
  forward_.emplace(key, id);
  backward_.emplace(id, name);
  return id;
}

std::optional<DataItemName> NameResolver::reverse(ItemId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = backward_.find(id);
  if (it == backward_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::size_t NameResolver::cache_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return forward_.size();
}

}  // namespace vira::dms
