#include "dms/name_service.hpp"

namespace vira::dms {

ItemId NameService::intern(const DataItemName& name) {
  const std::string key = name.canonical();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_name_.find(key);
  if (it != by_name_.end()) {
    return it->second;
  }
  const ItemId id = by_id_.size();
  by_id_.push_back(name);
  by_name_.emplace(key, id);
  return id;
}

std::optional<DataItemName> NameService::lookup(ItemId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id >= by_id_.size()) {
    return std::nullopt;
  }
  return by_id_[id];
}

std::optional<ItemId> NameService::find(const DataItemName& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_name_.find(name.canonical());
  if (it == by_name_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::size_t NameService::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return by_id_.size();
}

ItemId NameResolver::resolve(const DataItemName& name) {
  const std::string key = name.canonical();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = forward_.find(key);
    if (it != forward_.end()) {
      return it->second;
    }
  }
  const ItemId id = resolve_(name);
  std::lock_guard<std::mutex> lock(mutex_);
  forward_.emplace(key, id);
  backward_.emplace(id, name);
  return id;
}

std::optional<DataItemName> NameResolver::reverse(ItemId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = backward_.find(id);
  if (it == backward_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::size_t NameResolver::cache_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return forward_.size();
}

}  // namespace vira::dms
