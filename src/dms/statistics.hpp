#pragma once

/// \file statistics.hpp
/// The DMS "statistical unit" (paper Sec. 4.2): it "records various
/// information of the system behavior" and feeds the system prefetcher and
/// the adaptive load-strategy selection. Also the source of every cache
/// metric the benches report.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "dms/data_item.hpp"

namespace vira::dms {

struct DmsCounters {
  std::uint64_t requests = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t misses = 0;           ///< forced loads (cold or capacity)
  std::uint64_t prefetch_issued = 0;
  std::uint64_t prefetch_useful = 0;  ///< prefetched items later requested
  std::uint64_t evictions_l1 = 0;
  std::uint64_t evictions_l2 = 0;
  /// Demotions re-triggered by an L2 promote: the promoted blob's re-insert
  /// into L1 evicted another resident, which spilled right back to disk.
  /// A high value relative to l2_hits means the tiers are thrashing.
  std::uint64_t l2_respills = 0;
  /// Demotions dropped because the blob alone exceeds the whole L2 budget.
  std::uint64_t demotions_dropped_oversize = 0;
  /// Demotions dropped because the spill-file write failed (disk full, I/O
  /// error); the item is NOT indexed and a later get() reloads it.
  std::uint64_t demotions_dropped_io = 0;
  std::uint64_t bytes_loaded = 0;
  double load_seconds = 0.0;

  double hit_rate() const {
    const auto total = requests;
    return total > 0 ? static_cast<double>(l1_hits + l2_hits) / static_cast<double>(total) : 0.0;
  }
  double miss_rate() const { return requests > 0 ? 1.0 - hit_rate() : 0.0; }
};

/// Thread-safe statistics collector with optional request-trace recording
/// (traces feed the Markov prefetcher's offline evaluation and the
/// cache-policy ablation bench).
class DmsStatistics {
 public:
  void record_request(ItemId id) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.requests;
    if (trace_enabled_) {
      trace_.push_back(id);
    }
  }
  void record_l1_hit() { bump(&DmsCounters::l1_hits); }
  void record_l2_hit() { bump(&DmsCounters::l2_hits); }
  void record_miss() { bump(&DmsCounters::misses); }
  void record_prefetch_issued() { bump(&DmsCounters::prefetch_issued); }
  void record_prefetch_useful() { bump(&DmsCounters::prefetch_useful); }
  void record_eviction_l1() { bump(&DmsCounters::evictions_l1); }
  void record_eviction_l2() { bump(&DmsCounters::evictions_l2); }
  void record_l2_respill() { bump(&DmsCounters::l2_respills); }
  void record_demotion_dropped_oversize() { bump(&DmsCounters::demotions_dropped_oversize); }
  void record_demotion_dropped_io() { bump(&DmsCounters::demotions_dropped_io); }

  void record_load(std::uint64_t bytes, double seconds) {
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.bytes_loaded += bytes;
    counters_.load_seconds += seconds;
  }

  /// Observed disk bandwidth in bytes/s (fed to the fitness function).
  double observed_load_bandwidth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_.load_seconds > 0.0
               ? static_cast<double>(counters_.bytes_loaded) / counters_.load_seconds
               : 0.0;
  }

  DmsCounters snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    counters_ = DmsCounters{};
    trace_.clear();
  }

  void enable_trace(bool enabled) {
    std::lock_guard<std::mutex> lock(mutex_);
    trace_enabled_ = enabled;
  }

  std::vector<ItemId> trace() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return trace_;
  }

 private:
  void bump(std::uint64_t DmsCounters::* member) {
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.*member += 1;
  }

  mutable std::mutex mutex_;
  DmsCounters counters_;
  bool trace_enabled_ = false;
  std::vector<ItemId> trace_;
};

}  // namespace vira::dms
