#pragma once

/// \file statistics.hpp
/// The DMS "statistical unit" (paper Sec. 4.2): it "records various
/// information of the system behavior" and feeds the system prefetcher and
/// the adaptive load-strategy selection. Also the source of every cache
/// metric the benches report.

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "dms/data_item.hpp"
#include "obs/metrics.hpp"

namespace vira::dms {

struct DmsCounters {
  std::uint64_t requests = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t misses = 0;           ///< forced loads (cold or capacity)
  std::uint64_t prefetch_issued = 0;
  std::uint64_t prefetch_useful = 0;  ///< prefetched items later requested
  /// Prefetched items that left the cache hierarchy (evicted from L1 with
  /// no L2, dropped demotion, L2 eviction, unreadable spill) before being
  /// requested even once: pure wasted bandwidth. Also what keeps the
  /// pending-prefetch bookkeeping bounded — before this counter existed,
  /// entries for evicted-unrequested items leaked forever.
  std::uint64_t prefetch_wasted = 0;
  std::uint64_t evictions_l1 = 0;
  std::uint64_t evictions_l2 = 0;
  /// Demotions re-triggered by an L2 promote: the promoted blob's re-insert
  /// into L1 evicted another resident, which spilled right back to disk.
  /// A high value relative to l2_hits means the tiers are thrashing.
  std::uint64_t l2_respills = 0;
  /// Demotions dropped because the blob alone exceeds the whole L2 budget.
  std::uint64_t demotions_dropped_oversize = 0;
  /// Demotions dropped because the spill-file write failed (disk full, I/O
  /// error); the item is NOT indexed and a later get() reloads it.
  std::uint64_t demotions_dropped_io = 0;
  /// Sharded-DMS peer transfer (DESIGN.md §12). A "promotion" is a fetch
  /// answered by a non-primary replica because an earlier owner in the ring
  /// order was dead or timed out — the failover the replica placement buys.
  std::uint64_t peer_fetches = 0;         ///< blocks obtained rank↔rank
  std::uint64_t peer_fetch_misses = 0;    ///< owner answered "not cached"
  std::uint64_t peer_fetch_timeouts = 0;  ///< owner silent; marked dead
  std::uint64_t peer_pushes = 0;          ///< replica placements sent
  std::uint64_t replica_promotions = 0;
  /// Non-owner loads that exhausted every owner and hit disk.
  std::uint64_t peer_fallback_disk = 0;
  /// Fetches this proxy was asked to serve for items it does not own.
  std::uint64_t shard_misroutes = 0;
  /// Peer fetches refused because the cached replica pre-dated the
  /// requester's dataset version (bump invalidation reached this replica).
  std::uint64_t stale_replica_rejects = 0;
  std::uint64_t bytes_loaded = 0;
  double load_seconds = 0.0;
  /// Async (pipelined) load accounting: submissions via request_async and
  /// their settlements (completed, failed, or cancelled before running).
  /// The in-flight gauge and peak are the DST bounded-memory oracle's
  /// evidence that pipeline backpressure actually bounds outstanding bytes.
  std::uint64_t async_submitted = 0;
  std::uint64_t async_settled = 0;
  std::uint64_t async_inflight_bytes = 0;
  std::uint64_t async_peak_bytes = 0;

  double hit_rate() const {
    const auto total = requests;
    return total > 0 ? static_cast<double>(l1_hits + l2_hits) / static_cast<double>(total) : 0.0;
  }
  double miss_rate() const { return requests > 0 ? 1.0 - hit_rate() : 0.0; }
};

/// Thread-safe statistics collector with optional request-trace recording
/// (traces feed the Markov prefetcher's offline evaluation and the
/// cache-policy ablation bench).
///
/// Every record_* additionally bumps the process-wide obs::Registry
/// instruments (dms.* names) so the metrics dump aggregates across all
/// proxies; the per-instance snapshot() stays the source the benches and
/// the adaptive strategy read.
class DmsStatistics {
 public:
  void record_request(ItemId id) {
    obs_.requests.add();
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.requests;
    if (trace_enabled_) {
      trace_.push_back(id);
    }
  }
  void record_l1_hit() { bump(&DmsCounters::l1_hits, obs_.l1_hits); }
  void record_l2_hit() { bump(&DmsCounters::l2_hits, obs_.l2_hits); }
  void record_miss() { bump(&DmsCounters::misses, obs_.misses); }
  void record_prefetch_issued() { bump(&DmsCounters::prefetch_issued, obs_.prefetch_issued); }
  void record_prefetch_useful() { bump(&DmsCounters::prefetch_useful, obs_.prefetch_useful); }
  void record_prefetch_wasted() { bump(&DmsCounters::prefetch_wasted, obs_.prefetch_wasted); }
  void record_eviction_l1() { bump(&DmsCounters::evictions_l1, obs_.evictions_l1); }
  void record_eviction_l2() { bump(&DmsCounters::evictions_l2, obs_.evictions_l2); }
  void record_l2_respill() { bump(&DmsCounters::l2_respills, obs_.l2_respills); }
  void record_demotion_dropped_oversize() {
    bump(&DmsCounters::demotions_dropped_oversize, obs_.demotions_dropped_oversize);
  }
  void record_demotion_dropped_io() {
    bump(&DmsCounters::demotions_dropped_io, obs_.demotions_dropped_io);
  }
  void record_peer_fetch() { bump(&DmsCounters::peer_fetches, obs_.peer_fetches); }
  void record_peer_fetch_miss() { bump(&DmsCounters::peer_fetch_misses, obs_.peer_fetch_misses); }
  void record_peer_fetch_timeout() {
    bump(&DmsCounters::peer_fetch_timeouts, obs_.peer_fetch_timeouts);
  }
  void record_peer_push() { bump(&DmsCounters::peer_pushes, obs_.peer_pushes); }
  void record_replica_promotion() {
    bump(&DmsCounters::replica_promotions, obs_.replica_promotions);
  }
  void record_peer_fallback_disk() {
    bump(&DmsCounters::peer_fallback_disk, obs_.peer_fallback_disk);
  }
  void record_shard_misroute() { bump(&DmsCounters::shard_misroutes, obs_.shard_misroutes); }
  void record_stale_replica_reject() {
    bump(&DmsCounters::stale_replica_rejects, obs_.stale_replica_rejects);
  }

  /// An async load was submitted; `bytes` is the item's expected size
  /// (known from the source before the load runs).
  void record_async_submit(std::uint64_t bytes) {
    obs_.async_loads.add();
    obs_.async_inflight_bytes.add(static_cast<std::int64_t>(bytes));
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.async_submitted;
    counters_.async_inflight_bytes += bytes;
    counters_.async_peak_bytes =
        std::max(counters_.async_peak_bytes, counters_.async_inflight_bytes);
  }

  /// The matching settlement — exactly once per submit, whatever the
  /// outcome (value delivered, load threw, or task cancelled unrun).
  void record_async_settle(std::uint64_t bytes) {
    obs_.async_inflight_bytes.add(-static_cast<std::int64_t>(bytes));
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.async_settled;
    counters_.async_inflight_bytes -= std::min(counters_.async_inflight_bytes, bytes);
  }

  void record_load(std::uint64_t bytes, double seconds) {
    obs_.bytes_loaded.add(bytes);
    obs_.load_seconds.observe(seconds);
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.bytes_loaded += bytes;
    counters_.load_seconds += seconds;
  }

  /// Observed disk bandwidth in bytes/s (fed to the fitness function).
  double observed_load_bandwidth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_.load_seconds > 0.0
               ? static_cast<double>(counters_.bytes_loaded) / counters_.load_seconds
               : 0.0;
  }

  DmsCounters snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    counters_ = DmsCounters{};
    trace_.clear();
  }

  void enable_trace(bool enabled) {
    std::lock_guard<std::mutex> lock(mutex_);
    trace_enabled_ = enabled;
  }

  std::vector<ItemId> trace() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return trace_;
  }

 private:
  /// Shared obs instruments (dms.* names, one set per process, resolved
  /// once per DmsStatistics instance — registration-time lookup only).
  struct ObsInstruments {
    obs::Counter& requests = obs::Registry::instance().counter("dms.requests");
    obs::Counter& l1_hits = obs::Registry::instance().counter("dms.l1_hits");
    obs::Counter& l2_hits = obs::Registry::instance().counter("dms.l2_hits");
    obs::Counter& misses = obs::Registry::instance().counter("dms.misses");
    obs::Counter& prefetch_issued = obs::Registry::instance().counter("dms.prefetch_issued");
    obs::Counter& prefetch_useful = obs::Registry::instance().counter("dms.prefetch_useful");
    obs::Counter& prefetch_wasted = obs::Registry::instance().counter("dms.prefetch_wasted");
    obs::Counter& evictions_l1 = obs::Registry::instance().counter("dms.evictions_l1");
    obs::Counter& evictions_l2 = obs::Registry::instance().counter("dms.evictions_l2");
    obs::Counter& l2_respills = obs::Registry::instance().counter("dms.l2_respills");
    obs::Counter& demotions_dropped_oversize =
        obs::Registry::instance().counter("dms.demotions_dropped_oversize");
    obs::Counter& demotions_dropped_io =
        obs::Registry::instance().counter("dms.demotions_dropped_io");
    obs::Counter& peer_fetches = obs::Registry::instance().counter("dms.peer_fetches");
    obs::Counter& peer_fetch_misses = obs::Registry::instance().counter("dms.peer_fetch_misses");
    obs::Counter& peer_fetch_timeouts =
        obs::Registry::instance().counter("dms.peer_fetch_timeouts");
    obs::Counter& peer_pushes = obs::Registry::instance().counter("dms.peer_pushes");
    obs::Counter& replica_promotions =
        obs::Registry::instance().counter("dms.replica_promotions");
    obs::Counter& peer_fallback_disk =
        obs::Registry::instance().counter("dms.peer_fallback_disk");
    obs::Counter& shard_misroutes = obs::Registry::instance().counter("dms.shard_misroutes");
    obs::Counter& stale_replica_rejects =
        obs::Registry::instance().counter("dms.stale_replica_rejects");
    obs::Counter& bytes_loaded = obs::Registry::instance().counter("dms.bytes_loaded");
    obs::Histogram& load_seconds = obs::Registry::instance().histogram("dms.load_seconds");
    obs::Counter& async_loads = obs::Registry::instance().counter("dms.async_loads");
    obs::Gauge& async_inflight_bytes =
        obs::Registry::instance().gauge("dms.async_inflight_bytes");
  };

  void bump(std::uint64_t DmsCounters::* member, obs::Counter& mirror) {
    mirror.add();
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.*member += 1;
  }

  mutable std::mutex mutex_;
  DmsCounters counters_;
  bool trace_enabled_ = false;
  std::vector<ItemId> trace_;
  ObsInstruments obs_;
};

}  // namespace vira::dms
