#include "dms/block_cache.hpp"

#include <stdexcept>

namespace vira::dms {

BlockCache::BlockCache(std::uint64_t capacity_bytes, std::unique_ptr<ReplacementPolicy> policy)
    : capacity_(capacity_bytes), policy_(std::move(policy)) {
  if (!policy_) {
    throw std::invalid_argument("BlockCache: null policy");
  }
}

Blob BlockCache::get(ItemId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return nullptr;
  }
  policy_->on_access(id);
  return it->second.blob;
}

Blob BlockCache::peek(ItemId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(id);
  return it != entries_.end() ? it->second.blob : nullptr;
}

bool BlockCache::contains(ItemId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(id) > 0;
}

std::vector<BlockCache::Evicted> BlockCache::put(ItemId id, Blob blob, bool* inserted) {
  if (!blob) {
    throw std::invalid_argument("BlockCache::put: null blob");
  }
  std::vector<Evicted> evicted;
  std::lock_guard<std::mutex> lock(mutex_);

  auto existing = entries_.find(id);
  if (existing != entries_.end()) {
    policy_->on_access(id);
    if (inserted != nullptr) {
      *inserted = false;
    }
    return evicted;
  }

  const std::uint64_t bytes = blob->size();
  if (bytes > capacity_) {
    if (inserted != nullptr) {
      *inserted = false;  // cannot ever fit
    }
    return evicted;
  }

  while (used_ + bytes > capacity_) {
    auto victim = policy_->victim([&](ItemId candidate) {
      auto it = entries_.find(candidate);
      return it != entries_.end() && it->second.pins == 0;
    });
    if (!victim) {
      // Everything pinned: refuse the insert rather than overflow.
      if (inserted != nullptr) {
        *inserted = false;
      }
      return evicted;
    }
    auto victim_it = entries_.find(*victim);
    used_ -= victim_it->second.blob->size();
    evicted.push_back(Evicted{*victim, std::move(victim_it->second.blob)});
    entries_.erase(victim_it);
    policy_->on_erase(*victim);
  }

  entries_.emplace(id, Entry{std::move(blob), 0});
  used_ += bytes;
  policy_->on_insert(id);
  if (inserted != nullptr) {
    *inserted = true;
  }
  return evicted;
}

void BlockCache::erase(ItemId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    used_ -= it->second.blob->size();
    entries_.erase(it);
    policy_->on_erase(id);
  }
}

void BlockCache::pin(ItemId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    ++it->second.pins;
  }
}

void BlockCache::unpin(ItemId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(id);
  if (it != entries_.end() && it->second.pins > 0) {
    --it->second.pins;
  }
}

std::uint64_t BlockCache::size_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return used_;
}

std::size_t BlockCache::item_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::vector<ItemId> BlockCache::resident() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ItemId> ids;
  ids.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    ids.push_back(id);
  }
  return ids;
}

}  // namespace vira::dms
