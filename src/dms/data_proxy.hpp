#pragma once

/// \file data_proxy.hpp
/// Per-node data proxy (paper Sec. 4.1).
///
/// "Every computing node owns a data proxy that is responsible for the
/// retrieval of data asked for by a command. Proxies act like a black box
/// with the possibility to change system parameters from outside but not
/// the result of a data request."
///
/// request() is the whole story from a command's point of view: cache hit
/// or — after asking the data server which loading strategy to use — a
/// load from disk, a peer proxy, or a collective file read. Around that
/// core the proxy runs the system prefetcher on a background thread
/// (suggestions from Sec. 4.2) and accepts user-initiated code prefetches.
/// In-flight loads are deduplicated so a demand request never re-reads a
/// block the prefetch thread is already fetching.

#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "dms/data_source.hpp"
#include "dms/name_service.hpp"
#include "dms/server_api.hpp"
#include "dms/prefetcher.hpp"
#include "dms/statistics.hpp"
#include "dms/two_tier_cache.hpp"
#include "util/blocking_queue.hpp"
#include "util/task_pool.hpp"

namespace vira::dms {

struct DataProxyConfig {
  int proxy_id = 0;
  TwoTierCache::Config cache;
  std::string prefetcher = "obl";
  std::size_t prefetch_depth = 2;   ///< max suggestions executed per request
  bool async_prefetch = true;       ///< run prefetches on a background thread
};

/// Fetches an item from another proxy's cache; null when unavailable.
/// Wired by the runtime ("proxies are able to communicate and exchange
/// data across work group boundaries").
using PeerFetchFn = std::function<Blob(int peer, ItemId id)>;

class DataProxy {
 public:
  DataProxy(DataProxyConfig config, std::shared_ptr<ServerApi> server,
            std::shared_ptr<DataSource> source,
            std::shared_ptr<DmsStatistics> stats = nullptr);
  ~DataProxy();
  DataProxy(const DataProxy&) = delete;
  DataProxy& operator=(const DataProxy&) = delete;

  /// The one entry point commands use. Blocking; never returns null
  /// (throws on unloadable items).
  Blob request(const DataItemName& name);

  /// Asynchronous request for the pipelined executor: a cache hit settles
  /// immediately (and still feeds the prefetcher, exactly like request());
  /// a miss is submitted to `pool` and the returned future delivers the
  /// blob when the load lands. In-flight dedup, strategy selection and
  /// cache insertion are the same code path as request(), so accounting
  /// stays honest. Outstanding bytes are tracked in DmsStatistics
  /// (async_inflight_bytes / async_peak_bytes) from submission until the
  /// task settles — including cancellation of a still-queued load, which
  /// releases its accounting through the task's captured settle token.
  util::Future<Blob> request_async(const DataItemName& name, util::TaskPool& pool);

  /// User-initiated code prefetch (paper: "the worker command itself is
  /// responsible to determine a suitable code location and a useful time
  /// to invoke code prefetches"). Non-blocking when async.
  void code_prefetch(const DataItemName& name);

  /// Installs the successor relation used by the sequential prefetchers;
  /// replaces the prefetcher configured at construction.
  void configure_prefetcher(const std::string& kind, SuccessorFn successor);

  void set_peer_fetch(PeerFetchFn fn);

  /// Blocks until queued prefetches finished (tests, phase boundaries).
  void quiesce();

  /// Drops cached content (cold-start switch for the benches).
  void clear_cache();

  int id() const { return config_.proxy_id; }
  TwoTierCache& cache() { return *cache_; }
  DmsStatistics& stats() { return *stats_; }
  NameResolver& resolver() { return resolver_; }
  ServerApi& server() { return *server_; }

 private:
  Blob load_item(ItemId id, const DataItemName& name, bool from_prefetch);
  Blob execute_load(ItemId id, const DataItemName& name, bool from_prefetch);
  void run_prefetch_suggestions();
  void prefetch_worker();
  void prefetch_one(ItemId id);

  DataProxyConfig config_;
  std::shared_ptr<ServerApi> server_;
  std::shared_ptr<DataSource> source_;
  std::shared_ptr<DmsStatistics> stats_;
  std::unique_ptr<TwoTierCache> cache_;
  NameResolver resolver_;
  PeerFetchFn peer_fetch_;

  std::mutex prefetcher_mutex_;
  std::unique_ptr<Prefetcher> prefetcher_;

  /// In-flight load deduplication. Waiters poll in clock-paced slices
  /// (util::clock_sleep) instead of a condition variable so virtual-time
  /// runs stay deterministic; see DESIGN.md "Testing strategy".
  std::mutex loading_mutex_;
  std::unordered_set<ItemId> loading_;

  /// Background prefetch machinery.
  util::BlockingQueue<ItemId> prefetch_queue_;
  std::thread prefetch_thread_;
  std::mutex idle_mutex_;
  int prefetch_inflight_ = 0;
};

}  // namespace vira::dms
