#pragma once

/// \file data_proxy.hpp
/// Per-node data proxy (paper Sec. 4.1).
///
/// "Every computing node owns a data proxy that is responsible for the
/// retrieval of data asked for by a command. Proxies act like a black box
/// with the possibility to change system parameters from outside but not
/// the result of a data request."
///
/// request() is the whole story from a command's point of view: cache hit
/// or — after asking the data server which loading strategy to use — a
/// load from disk, a peer proxy, or a collective file read. Around that
/// core the proxy runs the system prefetcher on a background thread
/// (suggestions from Sec. 4.2) and accepts user-initiated code prefetches.
/// In-flight loads are deduplicated so a demand request never re-reads a
/// block the prefetch thread is already fetching.
///
/// With configure_sharding() the proxy additionally joins the sharded DMS
/// (DESIGN.md §12): misses route by a consistent-hash ShardMap straight to
/// the owning proxies over kTagPeerFetch/kTagPeerBlock messages — no
/// central strategy round-trip — and a peer-service thread answers the
/// sibling proxies' fetches from this proxy's cache. Disk loads replicate
/// to every live owner (kTagPeerPush) so a killed rank's blocks re-serve
/// from a surviving replica instead of respilling from disk.

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "comm/communicator.hpp"
#include "dms/data_source.hpp"
#include "dms/name_service.hpp"
#include "dms/server_api.hpp"
#include "dms/prefetcher.hpp"
#include "dms/shard_map.hpp"
#include "dms/statistics.hpp"
#include "dms/two_tier_cache.hpp"
#include "util/blocking_queue.hpp"
#include "util/task_pool.hpp"

namespace vira::dms {

struct DataProxyConfig {
  int proxy_id = 0;
  TwoTierCache::Config cache;
  std::string prefetcher = "obl";
  std::size_t prefetch_depth = 2;   ///< max suggestions executed per request
  bool async_prefetch = true;       ///< run prefetches on a background thread
};

/// Fetches an item from another proxy's cache; null when unavailable.
/// Wired by the runtime ("proxies are able to communicate and exchange
/// data across work group boundaries").
using PeerFetchFn = std::function<Blob(int peer, ItemId id)>;

class DataProxy {
 public:
  DataProxy(DataProxyConfig config, std::shared_ptr<ServerApi> server,
            std::shared_ptr<DataSource> source,
            std::shared_ptr<DmsStatistics> stats = nullptr);
  ~DataProxy();
  DataProxy(const DataProxy&) = delete;
  DataProxy& operator=(const DataProxy&) = delete;

  /// The one entry point commands use. Blocking; never returns null
  /// (throws on unloadable items).
  Blob request(const DataItemName& name);

  /// Asynchronous request for the pipelined executor: a cache hit settles
  /// immediately (and still feeds the prefetcher, exactly like request());
  /// a miss is submitted to `pool` and the returned future delivers the
  /// blob when the load lands. In-flight dedup, strategy selection and
  /// cache insertion are the same code path as request(), so accounting
  /// stays honest. Outstanding bytes are tracked in DmsStatistics
  /// (async_inflight_bytes / async_peak_bytes) from submission until the
  /// task settles — including cancellation of a still-queued load, which
  /// releases its accounting through the task's captured settle token.
  util::Future<Blob> request_async(const DataItemName& name, util::TaskPool& pool);

  /// User-initiated code prefetch (paper: "the worker command itself is
  /// responsible to determine a suitable code location and a useful time
  /// to invoke code prefetches"). Non-blocking when async.
  void code_prefetch(const DataItemName& name);

  /// Installs the successor relation used by the sequential prefetchers;
  /// replaces the prefetcher configured at construction.
  void configure_prefetcher(const std::string& kind, SuccessorFn successor);

  void set_peer_fetch(PeerFetchFn fn);

  /// Joins the sharded DMS (DESIGN.md §12). Must be called before the
  /// proxy serves requests. Spawns the "dms.peer.<id>" service thread that
  /// answers sibling fetches/pushes on `comm` (rank = proxy_id + 1 on both
  /// ends), and switches execute_load() to the shard-routed path: no
  /// central strategy RPC, owners resolve via `map`, misses on non-owned
  /// items peer-fetch from the owner replicas with `fetch_timeout` per
  /// attempt before declaring an owner dead and promoting the next replica.
  void configure_sharding(std::shared_ptr<ShardMap> map,
                          std::shared_ptr<comm::Communicator> comm,
                          std::chrono::milliseconds fetch_timeout = std::chrono::milliseconds(50));

  /// Dataset-version feed (NameService::on_bump). Raises the proxy's
  /// version floor; cached entries stamped below it are lazily evicted on
  /// their next touch, and the peer service refuses to serve them — a
  /// stale replica cannot resurrect pre-bump bytes after the PR-6 result
  /// cache invalidated downstream results.
  void on_data_version(std::uint64_t version);

  bool sharded() const { return shard_map_ != nullptr; }
  std::uint64_t data_version() const { return data_version_.load(std::memory_order_acquire); }

  /// Blocks until queued prefetches finished (tests, phase boundaries).
  void quiesce();

  /// Drops cached content (cold-start switch for the benches).
  void clear_cache();

  int id() const { return config_.proxy_id; }
  TwoTierCache& cache() { return *cache_; }
  DmsStatistics& stats() { return *stats_; }
  NameResolver& resolver() { return resolver_; }
  ServerApi& server() { return *server_; }

 private:
  Blob load_item(ItemId id, const DataItemName& name, bool from_prefetch);
  Blob execute_load(ItemId id, const DataItemName& name, bool from_prefetch);
  Blob execute_load_sharded(ItemId id, const DataItemName& name, bool from_prefetch);
  Blob fetch_from_peer(int owner, ItemId id, std::uint64_t min_version, bool& timed_out,
                       std::uint64_t& version_out);
  void push_to_owners(ItemId id, const Blob& blob, const std::vector<int>& owners,
                      std::uint64_t version);
  void peer_service_loop();
  void serve_peer_fetch(const comm::Message& msg);
  void apply_peer_push(comm::Message& msg);
  /// Current-version stamp bookkeeping for the sharded path.
  void stamp_version(ItemId id, std::uint64_t version);
  std::uint64_t item_version(ItemId id) const;
  /// True when the cached entry may be served/returned (always in legacy
  /// mode; stamp >= version floor in sharded mode).
  bool fresh(ItemId id) const;
  /// Stale cache hit: drop the entry everywhere and tell the server.
  void evict_stale(ItemId id);
  void raise_data_version(std::uint64_t version);
  void run_prefetch_suggestions();
  void prefetch_worker();
  void prefetch_one(ItemId id);

  DataProxyConfig config_;
  std::shared_ptr<ServerApi> server_;
  std::shared_ptr<DataSource> source_;
  std::shared_ptr<DmsStatistics> stats_;
  std::unique_ptr<TwoTierCache> cache_;
  NameResolver resolver_;
  PeerFetchFn peer_fetch_;

  std::mutex prefetcher_mutex_;
  std::unique_ptr<Prefetcher> prefetcher_;

  /// In-flight load deduplication. Waiters poll in clock-paced slices
  /// (util::clock_sleep) instead of a condition variable so virtual-time
  /// runs stay deterministic; see DESIGN.md "Testing strategy".
  std::mutex loading_mutex_;
  std::unordered_set<ItemId> loading_;

  /// Background prefetch machinery.
  util::BlockingQueue<ItemId> prefetch_queue_;
  std::thread prefetch_thread_;
  std::mutex idle_mutex_;
  int prefetch_inflight_ = 0;

  /// Sharded-DMS state (null/empty in legacy mode; see configure_sharding).
  std::shared_ptr<ShardMap> shard_map_;
  std::shared_ptr<comm::Communicator> peer_comm_;
  std::chrono::milliseconds peer_fetch_timeout_{50};
  std::thread peer_thread_;
  std::atomic<bool> peer_stop_{false};
  /// Fetch sequence numbers: one outstanding fetch per proxy (guarded by
  /// peer_fetch_mutex_), replies matched by seq so late or duplicated
  /// kTagPeerBlock messages from earlier fetches are discarded, never
  /// mistaken for the current answer.
  std::mutex peer_fetch_mutex_;
  std::atomic<std::uint64_t> peer_seq_{0};
  /// Version floor (mirrors NameService::data_version) and per-item stamps
  /// assigned at insert time. A stamp below the floor marks the entry
  /// stale: evicted on the next local touch, refused on the peer wire.
  std::atomic<std::uint64_t> data_version_{1};
  mutable std::mutex version_mutex_;
  std::unordered_map<ItemId, std::uint64_t> item_version_;
};

}  // namespace vira::dms
