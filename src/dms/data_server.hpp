#pragma once

/// \file data_server.hpp
/// The centralized data manager server (paper Sec. 4.1).
///
/// "A centralized data server that resides at the scheduler node
/// coordinates all proxies. It maintains information about the proxies'
/// local state and deals with data requests [...] each time a block has to
/// be loaded into cache to fulfill a request, first of all, a proxy asks
/// the data manager server which strategy to use."
///
/// The server owns the name service, a registry of which proxy holds which
/// item (so peer transfer has somewhere to go), a per-file concurrency
/// gauge (input to the collective-I/O fitness), and the environment model
/// behind the fitness function. All methods are thread-safe. Proxies reach
/// it through the ServerApi interface: directly (single-process wiring) or
/// via rank messages serviced by the scheduler (core::RemoteServerApi —
/// the paper's deployment; BackendConfig::dms_over_messages).

#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>

#include "dms/loading.hpp"
#include "dms/name_service.hpp"
#include "dms/server_api.hpp"

namespace vira::dms {

class DataServer : public ServerApi {
 public:
  explicit DataServer(LoadEnvironment env = LoadEnvironment{});

  NameService& names() { return names_; }

  /// --- ServerApi: naming ----------------------------------------------------
  ItemId intern(const DataItemName& name) override { return names_.intern(name); }
  std::optional<DataItemName> lookup(ItemId id) override { return names_.lookup(id); }

  /// --- ServerApi: proxy state registry ---------------------------------------
  void report_insert(int proxy, ItemId id) override;
  void report_evict(int proxy, ItemId id) override;
  /// Any proxy (≠ `excluding`) holding the item in its primary cache.
  std::optional<int> holder_of(ItemId id, int excluding) const;
  std::size_t holder_count(ItemId id) const;

  /// --- ServerApi: file read concurrency --------------------------------------
  void begin_file_read(const std::string& file_key) override;
  void end_file_read(const std::string& file_key) override;
  int concurrent_readers(const std::string& file_key) const;

  /// --- ServerApi: strategy decision ------------------------------------------
  using Decision = StrategyDecision;

  Decision choose_strategy(int proxy, ItemId id, std::uint64_t item_bytes,
                           std::uint64_t file_bytes, const std::string& file_key) override;

  /// Full scoring for diagnostics / the loading-strategies ablation bench.
  std::vector<FitnessSelector::Scored> score_strategies(int proxy, ItemId id,
                                                        std::uint64_t item_bytes,
                                                        std::uint64_t file_bytes,
                                                        const std::string& file_key) const;

  /// --- environment -------------------------------------------------------
  void set_environment(const LoadEnvironment& env);
  LoadEnvironment environment() const;
  /// Feeds an observed disk bandwidth sample (exponential moving average) —
  /// how the DMS "reacts on environment changes like network traffic delays".
  void observe_disk_bandwidth(double bytes_per_second) override;

  /// Number of strategy decisions made, by kind (diagnostics).
  std::unordered_map<std::string, std::uint64_t> decision_counts() const;

 private:
  LoadRequestInfo build_request_info(int proxy, ItemId id, std::uint64_t item_bytes,
                                     std::uint64_t file_bytes,
                                     const std::string& file_key) const;

  mutable std::mutex mutex_;
  NameService names_;
  LoadEnvironment env_;
  FitnessSelector selector_;
  std::unordered_map<ItemId, std::set<int>> holders_;
  std::unordered_map<std::string, int> file_readers_;
  mutable std::unordered_map<std::string, std::uint64_t> decisions_;
};

}  // namespace vira::dms
