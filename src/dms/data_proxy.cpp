#include "dms/data_proxy.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>

#include "comm/tags.hpp"
#include "dms/peer_wire.hpp"
#include "obs/tracer.hpp"
#include "util/clock.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace vira::dms {

namespace {
/// Pacing slice for the clock-routed waits below (in-flight-load dedup,
/// prefetch pickup, quiesce). Under a virtual clock each slice is one
/// deterministic scheduling step; in real time it is a short poll.
constexpr auto kWaitSlice = std::chrono::milliseconds(2);
}  // namespace

DataProxy::DataProxy(DataProxyConfig config, std::shared_ptr<ServerApi> server,
                     std::shared_ptr<DataSource> source, std::shared_ptr<DmsStatistics> stats)
    : config_(std::move(config)),
      server_(std::move(server)),
      source_(std::move(source)),
      stats_(stats ? std::move(stats) : std::make_shared<DmsStatistics>()),
      resolver_([this](const DataItemName& name) { return server_->intern(name); }) {
  if (!server_ || !source_) {
    throw std::invalid_argument("DataProxy: server and source required");
  }
  cache_ = std::make_unique<TwoTierCache>(config_.cache, stats_);
  // Sequential prefetchers need a successor relation; until
  // configure_prefetcher() installs one, stay with NullPrefetcher.
  prefetcher_ = std::make_unique<NullPrefetcher>();
  if (config_.async_prefetch) {
    const std::string name = "dms.prefetch." + std::to_string(config_.proxy_id);
    util::global_clock().announce_thread(name);
    prefetch_thread_ = std::thread([this, name] {
      util::global_clock().thread_begin(name);
      prefetch_worker();
      util::global_clock().thread_end();
    });
  }
}

DataProxy::~DataProxy() {
  peer_stop_.store(true, std::memory_order_release);
  if (peer_thread_.joinable()) {
    util::global_clock().join_thread(peer_thread_);
  }
  prefetch_queue_.close();
  if (prefetch_thread_.joinable()) {
    util::global_clock().join_thread(prefetch_thread_);
  }
}

void DataProxy::configure_sharding(std::shared_ptr<ShardMap> map,
                                   std::shared_ptr<comm::Communicator> comm,
                                   std::chrono::milliseconds fetch_timeout) {
  if (!map || !comm) {
    throw std::invalid_argument("DataProxy::configure_sharding: map and comm required");
  }
  if (shard_map_) {
    throw std::logic_error("DataProxy::configure_sharding: already configured");
  }
  shard_map_ = std::move(map);
  peer_comm_ = std::move(comm);
  peer_fetch_timeout_ = fetch_timeout;
  const std::string name = "dms.peer." + std::to_string(config_.proxy_id);
  util::global_clock().announce_thread(name);
  peer_thread_ = std::thread([this, name] {
    util::global_clock().thread_begin(name);
    peer_service_loop();
    util::global_clock().thread_end();
  });
}

void DataProxy::on_data_version(std::uint64_t version) { raise_data_version(version); }

void DataProxy::raise_data_version(std::uint64_t version) {
  std::uint64_t current = data_version_.load(std::memory_order_acquire);
  while (version > current &&
         !data_version_.compare_exchange_weak(current, version, std::memory_order_acq_rel)) {
  }
}

void DataProxy::stamp_version(ItemId id, std::uint64_t version) {
  std::lock_guard<std::mutex> lock(version_mutex_);
  item_version_[id] = version;
}

std::uint64_t DataProxy::item_version(ItemId id) const {
  std::lock_guard<std::mutex> lock(version_mutex_);
  auto it = item_version_.find(id);
  return it == item_version_.end() ? 0 : it->second;
}

bool DataProxy::fresh(ItemId id) const {
  if (!shard_map_) {
    return true;  // legacy mode: versioning is the result cache's concern
  }
  return item_version(id) >= data_version_.load(std::memory_order_acquire);
}

void DataProxy::evict_stale(ItemId id) {
  cache_->erase(id);
  server_->report_evict(config_.proxy_id, id);
}

void DataProxy::configure_prefetcher(const std::string& kind, SuccessorFn successor) {
  std::lock_guard<std::mutex> lock(prefetcher_mutex_);
  prefetcher_ = make_prefetcher(kind, std::move(successor));
}

void DataProxy::set_peer_fetch(PeerFetchFn fn) { peer_fetch_ = std::move(fn); }

Blob DataProxy::request(const DataItemName& name) {
  const ItemId id = resolver_.resolve(name);

  // Fast path: cached (L1 or promoted from L2). A hit stamped below the
  // version floor is a pre-bump replica: drop it and reload.
  if (Blob blob = cache_->get(id)) {
    if (fresh(id)) {
      {
        std::lock_guard<std::mutex> lock(prefetcher_mutex_);
        prefetcher_->on_request(id, /*was_hit=*/true);
      }
      run_prefetch_suggestions();
      return blob;
    }
    evict_stale(id);
  }

  // Miss: load (deduplicated against concurrent loads of the same item).
  Blob blob = load_item(id, name, /*from_prefetch=*/false);
  {
    std::lock_guard<std::mutex> lock(prefetcher_mutex_);
    prefetcher_->on_request(id, /*was_hit=*/false);
  }
  run_prefetch_suggestions();
  return blob;
}

namespace {

/// Balances one record_async_submit with exactly one record_async_settle,
/// whichever way the task ends: completion, a thrown load error, or
/// cancellation before running (the pool drops the callable — and with it
/// this token — at cancel time).
class AsyncLoadToken {
 public:
  AsyncLoadToken(std::shared_ptr<DmsStatistics> stats, std::uint64_t bytes)
      : stats_(std::move(stats)), bytes_(bytes) {
    stats_->record_async_submit(bytes_);
  }
  ~AsyncLoadToken() { settle(); }
  AsyncLoadToken(const AsyncLoadToken&) = delete;
  AsyncLoadToken& operator=(const AsyncLoadToken&) = delete;

  void settle() {
    if (!settled_.exchange(true, std::memory_order_acq_rel)) {
      stats_->record_async_settle(bytes_);
    }
  }

 private:
  std::shared_ptr<DmsStatistics> stats_;
  std::uint64_t bytes_;
  std::atomic<bool> settled_{false};
};

}  // namespace

util::Future<Blob> DataProxy::request_async(const DataItemName& name, util::TaskPool& pool) {
  const ItemId id = resolver_.resolve(name);

  // Fast path: cached. Settle immediately; the prefetcher still sees the
  // request so its model and suggestions match the synchronous path.
  if (Blob blob = cache_->get(id)) {
    if (fresh(id)) {
      {
        std::lock_guard<std::mutex> lock(prefetcher_mutex_);
        prefetcher_->on_request(id, /*was_hit=*/true);
      }
      run_prefetch_suggestions();
      return util::Future<Blob>::ready_value(std::move(blob));
    }
    evict_stale(id);
  }

  // Miss: hand the load to the pool. The expected size is known up front,
  // so outstanding bytes are accounted from submission — the pipeline's
  // bounded window therefore bounds this gauge, which DST asserts.
  const std::uint64_t expected_bytes = source_->item_bytes(name);
  auto token = std::make_shared<AsyncLoadToken>(stats_, expected_bytes);
  return pool.submit([this, id, name, token]() -> Blob {
    Blob blob = load_item(id, name, /*from_prefetch=*/false);
    {
      std::lock_guard<std::mutex> lock(prefetcher_mutex_);
      prefetcher_->on_request(id, /*was_hit=*/false);
    }
    run_prefetch_suggestions();
    token->settle();
    return blob;
  });
}

Blob DataProxy::load_item(ItemId id, const DataItemName& name, bool from_prefetch) {
  // If someone else is loading this item, wait for them and use the cache.
  {
    std::unique_lock<std::mutex> lock(loading_mutex_);
    while (loading_.count(id) > 0) {
      lock.unlock();
      util::clock_sleep(kWaitSlice);
      lock.lock();
    }
    if (Blob blob = cache_->peek(id)) {
      if (fresh(id)) {
        return blob;
      }
      evict_stale(id);
    }
    loading_.insert(id);
  }

  Blob blob;
  try {
    blob = execute_load(id, name, from_prefetch);
  } catch (...) {
    std::lock_guard<std::mutex> lock(loading_mutex_);
    loading_.erase(id);
    throw;
  }

  {
    std::lock_guard<std::mutex> lock(loading_mutex_);
    loading_.erase(id);
  }
  return blob;
}

Blob DataProxy::execute_load(ItemId id, const DataItemName& name, bool from_prefetch) {
  if (shard_map_) {
    return execute_load_sharded(id, name, from_prefetch);
  }
  const std::uint64_t item_bytes = source_->item_bytes(name);
  const std::uint64_t file_bytes = source_->file_bytes(name);
  const std::string file_key = source_->file_key(name);

  // Demand loads run on the worker thread and inherit the worker.execute /
  // phase context; async prefetches run on the prefetch thread with no
  // context and trace as request-0 roots (exempted by trace validators).
  const auto& trace_ctx = obs::current_context();
  auto span = obs::Tracer::instance().start(from_prefetch ? "dms.prefetch" : "dms.load",
                                            trace_ctx.request_id, config_.proxy_id + 1,
                                            trace_ctx.span_id);
  if (span.active()) {
    span.arg("item", static_cast<std::int64_t>(id));
  }

  // Ask the central server which strategy to use (paper Sec. 4.3).
  const auto decision = server_->choose_strategy(config_.proxy_id, id, item_bytes, file_bytes,
                                                 file_key);

  util::WallTimer timer;
  Blob blob;

  if (decision.kind == StrategyKind::kPeerTransfer && peer_fetch_) {
    blob = peer_fetch_(decision.peer, id);
    if (blob) {
      VIRA_TRACE("dms") << "proxy " << config_.proxy_id << " got item " << id << " from peer "
                        << decision.peer;
    }
  }

  if (!blob && decision.kind == StrategyKind::kCollectiveIo) {
    server_->begin_file_read(file_key);
    auto items = source_->load_file(name);
    server_->end_file_read(file_key);
    for (auto& [item_name, buffer] : items) {
      const ItemId sibling = resolver_.resolve(item_name);
      Blob sibling_blob = make_blob(std::move(buffer));
      if (sibling == id) {
        blob = sibling_blob;
      }
      cache_->put(sibling, sibling_blob, /*from_prefetch=*/sibling != id);
      server_->report_insert(config_.proxy_id, sibling);
    }
  }

  if (!blob) {
    // Direct disk (also the fallback when a peer raced away or the
    // collective read failed to yield the item).
    server_->begin_file_read(file_key);
    util::ByteBuffer buffer;
    try {
      buffer = source_->load(name);
    } catch (...) {
      server_->end_file_read(file_key);
      throw;
    }
    server_->end_file_read(file_key);
    blob = make_blob(std::move(buffer));
  }

  const double seconds = timer.seconds();
  stats_->record_load(blob->size(), seconds);
  if (span.active()) {
    span.arg("bytes", static_cast<std::int64_t>(blob->size()));
    span.arg("strategy", static_cast<std::int64_t>(decision.kind));
  }
  if (seconds > 0.0) {
    server_->observe_disk_bandwidth(static_cast<double>(blob->size()) / seconds);
  }

  cache_->put(id, blob, from_prefetch);
  server_->report_insert(config_.proxy_id, id);
  return blob;
}

Blob DataProxy::execute_load_sharded(ItemId id, const DataItemName& name, bool from_prefetch) {
  // No central strategy round-trip: the ShardMap is the strategy. Owners
  // serve from their caches; everyone else peer-fetches from them, walking
  // the replica list when an owner is dead or silent.
  const auto& trace_ctx = obs::current_context();
  auto span = obs::Tracer::instance().start(from_prefetch ? "dms.prefetch" : "dms.load",
                                            trace_ctx.request_id, config_.proxy_id + 1,
                                            trace_ctx.span_id);
  if (span.active()) {
    span.arg("item", static_cast<std::int64_t>(id));
    span.arg("sharded", 1);
  }

  const std::vector<int> owners = shard_map_->owners(id);
  const bool self_owner =
      std::find(owners.begin(), owners.end(), config_.proxy_id) != owners.end();
  const std::uint64_t min_version = data_version_.load(std::memory_order_acquire);

  util::WallTimer timer;
  Blob blob;
  std::uint64_t blob_version = min_version;
  bool from_disk = false;

  if (!self_owner) {
    // A dead entry earlier in the owner list means whoever answers is a
    // promoted replica, not the primary — that distinction is the
    // `dms.replica_promotions` instrument the failover acceptance check
    // keys on.
    bool earlier_owner_failed = false;
    for (const int owner : owners) {
      if (shard_map_->is_dead(owner)) {
        earlier_owner_failed = true;
        continue;
      }
      bool timed_out = false;
      std::uint64_t version = 0;
      Blob fetched = fetch_from_peer(owner, id, min_version, timed_out, version);
      if (fetched) {
        blob = std::move(fetched);
        blob_version = std::max(blob_version, version);
        stats_->record_peer_fetch();
        if (earlier_owner_failed) {
          stats_->record_replica_promotion();
        }
        break;
      }
      if (timed_out) {
        stats_->record_peer_fetch_timeout();
        shard_map_->mark_dead(owner);
        earlier_owner_failed = true;
        continue;
      }
      // Signed miss: the owner is alive but does not hold the block (cold,
      // evicted, or stale-rejected). Replicas evict independently, so try
      // the rest of the list before paying for the disk.
      stats_->record_peer_fetch_miss();
    }
  }

  if (!blob) {
    // Disk: we own the item, or every owner replica missed or died.
    const std::string file_key = source_->file_key(name);
    server_->begin_file_read(file_key);
    util::ByteBuffer buffer;
    try {
      buffer = source_->load(name);
    } catch (...) {
      server_->end_file_read(file_key);
      throw;
    }
    server_->end_file_read(file_key);
    blob = make_blob(std::move(buffer));
    from_disk = true;
    if (!self_owner) {
      stats_->record_peer_fallback_disk();
    }
  }

  const double seconds = timer.seconds();
  stats_->record_load(blob->size(), seconds);
  if (span.active()) {
    span.arg("bytes", static_cast<std::int64_t>(blob->size()));
    span.arg("disk", from_disk ? 1 : 0);
  }
  if (from_disk && seconds > 0.0) {
    server_->observe_disk_bandwidth(static_cast<double>(blob->size()) / seconds);
  }

  cache_->put(id, blob, from_prefetch);
  stamp_version(id, blob_version);
  server_->report_insert(config_.proxy_id, id);
  if (from_disk) {
    // Replica placement: a disk load seeds every live owner, so a later
    // owner death is covered by a surviving copy instead of a respill.
    push_to_owners(id, blob, owners, blob_version);
  }
  return blob;
}

Blob DataProxy::fetch_from_peer(int owner, ItemId id, std::uint64_t min_version,
                                bool& timed_out, std::uint64_t& version_out) {
  timed_out = false;
  version_out = 0;
  // One outstanding fetch per proxy. Acquired cooperatively (try + clock
  // slice) because the holder parks in clock-routed waits below: a blocking
  // lock here would stall a virtual-time machine in real time.
  std::unique_lock<std::mutex> lock(peer_fetch_mutex_, std::try_to_lock);
  while (!lock.owns_lock()) {
    util::clock_sleep(kWaitSlice);
    (void)lock.try_lock();
  }
  PeerFetchRequest req;
  req.id = id;
  req.seq = peer_seq_.fetch_add(1, std::memory_order_acq_rel) + 1;
  req.min_version = min_version;
  req.reply_rank = peer_comm_->rank();
  util::ByteBuffer payload;
  req.serialize(payload);
  peer_comm_->send(owner + 1, comm::kTagPeerFetch, std::move(payload));

  std::chrono::milliseconds waited{0};
  while (true) {
    auto msg = peer_comm_->try_recv(comm::kAnySource, comm::kTagPeerBlock, kWaitSlice);
    if (!msg) {
      waited += kWaitSlice;
      if (waited >= peer_fetch_timeout_) {
        timed_out = true;
        return nullptr;
      }
      continue;
    }
    auto reply = PeerBlockReply::deserialize(msg->payload);
    if (reply.seq != req.seq) {
      // A reply to an earlier fetch that already timed out, or a transport
      // duplicate of one we consumed: identified by seq and dropped.
      continue;
    }
    if (reply.found == 0) {
      return nullptr;
    }
    version_out = reply.version;
    return make_blob(std::move(reply.bytes));
  }
}

void DataProxy::push_to_owners(ItemId id, const Blob& blob, const std::vector<int>& owners,
                               std::uint64_t version) {
  for (const int owner : owners) {
    if (owner == config_.proxy_id || shard_map_->is_dead(owner)) {
      continue;
    }
    PeerPush push;
    push.id = id;
    push.version = version;
    push.bytes = util::ByteBuffer::copy_of(blob->data(), blob->size());
    util::ByteBuffer payload;
    push.serialize(payload);
    peer_comm_->send(owner + 1, comm::kTagPeerPush, std::move(payload));
    stats_->record_peer_push();
  }
}

void DataProxy::peer_service_loop() {
  while (!peer_stop_.load(std::memory_order_acquire)) {
    try {
      if (auto msg = peer_comm_->try_recv(comm::kAnySource, comm::kTagPeerFetch, kWaitSlice)) {
        serve_peer_fetch(*msg);
        continue;
      }
      if (auto msg = peer_comm_->try_recv(comm::kAnySource, comm::kTagPeerPush,
                                          std::chrono::milliseconds(0))) {
        apply_peer_push(*msg);
      }
    } catch (const comm::TransportClosed&) {
      return;
    } catch (const std::exception& e) {
      VIRA_WARN("dms") << "peer service on proxy " << config_.proxy_id << ": " << e.what();
    }
  }
}

void DataProxy::serve_peer_fetch(const comm::Message& msg) {
  util::ByteBuffer payload = msg.payload;
  auto req = PeerFetchRequest::deserialize(payload);
  // The requester's version floor rides along on every fetch, so even an
  // owner whose bump listener lags learns of the invalidation here.
  raise_data_version(req.min_version);

  PeerBlockReply reply;
  reply.seq = req.seq;
  if (!shard_map_->is_owner(req.id, config_.proxy_id)) {
    // Routing disagreement (the requester's map is ahead or behind ours on
    // death marks). Still answered from cache if possible — but counted.
    stats_->record_shard_misroute();
  }
  if (Blob blob = cache_->peek_deep(req.id)) {
    const std::uint64_t version = item_version(req.id);
    if (version < req.min_version) {
      // Pre-bump replica: refusing is what keeps a stale copy from
      // resurrecting invalidated bytes. Drop it locally too.
      evict_stale(req.id);
      stats_->record_stale_replica_reject();
    } else {
      reply.found = 1;
      reply.version = version;
      reply.bytes = util::ByteBuffer::copy_of(blob->data(), blob->size());
    }
  }
  util::ByteBuffer out;
  reply.serialize(out);
  peer_comm_->send(req.reply_rank, comm::kTagPeerBlock, std::move(out));
}

void DataProxy::apply_peer_push(comm::Message& msg) {
  auto push = PeerPush::deserialize(msg.payload);
  raise_data_version(push.version);
  if (push.version < data_version_.load(std::memory_order_acquire)) {
    return;  // the push crossed a bump on the wire; its bytes are already stale
  }
  Blob blob = make_blob(std::move(push.bytes));
  cache_->put(push.id, blob, /*from_prefetch=*/false);
  stamp_version(push.id, push.version);
  server_->report_insert(config_.proxy_id, push.id);
}

void DataProxy::run_prefetch_suggestions() {
  std::vector<ItemId> suggestions;
  {
    std::lock_guard<std::mutex> lock(prefetcher_mutex_);
    suggestions = prefetcher_->suggest(config_.prefetch_depth);
  }
  for (const ItemId id : suggestions) {
    if (cache_->contains_l1(id)) {
      continue;  // already resident
    }
    stats_->record_prefetch_issued();
    if (config_.async_prefetch) {
      {
        std::lock_guard<std::mutex> lock(idle_mutex_);
        ++prefetch_inflight_;
      }
      if (!prefetch_queue_.push(id)) {
        std::lock_guard<std::mutex> lock(idle_mutex_);
        --prefetch_inflight_;
      }
    } else {
      prefetch_one(id);
    }
  }
}

void DataProxy::code_prefetch(const DataItemName& name) {
  const ItemId id = resolver_.resolve(name);
  if (cache_->contains_l1(id)) {
    return;
  }
  stats_->record_prefetch_issued();
  if (config_.async_prefetch) {
    {
      std::lock_guard<std::mutex> lock(idle_mutex_);
      ++prefetch_inflight_;
    }
    if (!prefetch_queue_.push(id)) {
      std::lock_guard<std::mutex> lock(idle_mutex_);
      --prefetch_inflight_;
    }
  } else {
    prefetch_one(id);
  }
}

void DataProxy::prefetch_worker() {
  while (true) {
    // Clock-paced pickup instead of a blocking pop: queued suggestions are
    // drained immediately, the idle thread sleeps through the injectable
    // clock (so virtual-time runs schedule it deterministically).
    auto id = prefetch_queue_.try_pop();
    if (!id) {
      if (prefetch_queue_.closed()) {
        break;
      }
      util::clock_sleep(kWaitSlice);
      continue;
    }
    try {
      prefetch_one(*id);
    } catch (const std::exception& e) {
      VIRA_WARN("dms") << "prefetch of item " << *id << " failed: " << e.what();
    }
    {
      std::lock_guard<std::mutex> lock(idle_mutex_);
      --prefetch_inflight_;
    }
  }
}

void DataProxy::prefetch_one(ItemId id) {
  if (cache_->contains_l1(id)) {
    return;
  }
  const auto name = resolver_.reverse(id);
  if (!name) {
    const auto looked_up = server_->lookup(id);
    if (!looked_up) {
      return;
    }
    (void)load_item(id, *looked_up, /*from_prefetch=*/true);
    return;
  }
  (void)load_item(id, *name, /*from_prefetch=*/true);
}

void DataProxy::quiesce() {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  while (prefetch_inflight_ > 0) {
    lock.unlock();
    util::clock_sleep(kWaitSlice);
    lock.lock();
  }
}

void DataProxy::clear_cache() {
  quiesce();
  for (const ItemId id : cache_->l1().resident()) {
    server_->report_evict(config_.proxy_id, id);
  }
  cache_->clear();
}

}  // namespace vira::dms
