#include "dms/data_proxy.hpp"

#include <atomic>
#include <chrono>
#include <stdexcept>

#include "obs/tracer.hpp"
#include "util/clock.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace vira::dms {

namespace {
/// Pacing slice for the clock-routed waits below (in-flight-load dedup,
/// prefetch pickup, quiesce). Under a virtual clock each slice is one
/// deterministic scheduling step; in real time it is a short poll.
constexpr auto kWaitSlice = std::chrono::milliseconds(2);
}  // namespace

DataProxy::DataProxy(DataProxyConfig config, std::shared_ptr<ServerApi> server,
                     std::shared_ptr<DataSource> source, std::shared_ptr<DmsStatistics> stats)
    : config_(std::move(config)),
      server_(std::move(server)),
      source_(std::move(source)),
      stats_(stats ? std::move(stats) : std::make_shared<DmsStatistics>()),
      resolver_([this](const DataItemName& name) { return server_->intern(name); }) {
  if (!server_ || !source_) {
    throw std::invalid_argument("DataProxy: server and source required");
  }
  cache_ = std::make_unique<TwoTierCache>(config_.cache, stats_);
  // Sequential prefetchers need a successor relation; until
  // configure_prefetcher() installs one, stay with NullPrefetcher.
  prefetcher_ = std::make_unique<NullPrefetcher>();
  if (config_.async_prefetch) {
    const std::string name = "dms.prefetch." + std::to_string(config_.proxy_id);
    util::global_clock().announce_thread(name);
    prefetch_thread_ = std::thread([this, name] {
      util::global_clock().thread_begin(name);
      prefetch_worker();
      util::global_clock().thread_end();
    });
  }
}

DataProxy::~DataProxy() {
  prefetch_queue_.close();
  if (prefetch_thread_.joinable()) {
    util::global_clock().join_thread(prefetch_thread_);
  }
}

void DataProxy::configure_prefetcher(const std::string& kind, SuccessorFn successor) {
  std::lock_guard<std::mutex> lock(prefetcher_mutex_);
  prefetcher_ = make_prefetcher(kind, std::move(successor));
}

void DataProxy::set_peer_fetch(PeerFetchFn fn) { peer_fetch_ = std::move(fn); }

Blob DataProxy::request(const DataItemName& name) {
  const ItemId id = resolver_.resolve(name);

  // Fast path: cached (L1 or promoted from L2).
  if (Blob blob = cache_->get(id)) {
    {
      std::lock_guard<std::mutex> lock(prefetcher_mutex_);
      prefetcher_->on_request(id, /*was_hit=*/true);
    }
    run_prefetch_suggestions();
    return blob;
  }

  // Miss: load (deduplicated against concurrent loads of the same item).
  Blob blob = load_item(id, name, /*from_prefetch=*/false);
  {
    std::lock_guard<std::mutex> lock(prefetcher_mutex_);
    prefetcher_->on_request(id, /*was_hit=*/false);
  }
  run_prefetch_suggestions();
  return blob;
}

namespace {

/// Balances one record_async_submit with exactly one record_async_settle,
/// whichever way the task ends: completion, a thrown load error, or
/// cancellation before running (the pool drops the callable — and with it
/// this token — at cancel time).
class AsyncLoadToken {
 public:
  AsyncLoadToken(std::shared_ptr<DmsStatistics> stats, std::uint64_t bytes)
      : stats_(std::move(stats)), bytes_(bytes) {
    stats_->record_async_submit(bytes_);
  }
  ~AsyncLoadToken() { settle(); }
  AsyncLoadToken(const AsyncLoadToken&) = delete;
  AsyncLoadToken& operator=(const AsyncLoadToken&) = delete;

  void settle() {
    if (!settled_.exchange(true, std::memory_order_acq_rel)) {
      stats_->record_async_settle(bytes_);
    }
  }

 private:
  std::shared_ptr<DmsStatistics> stats_;
  std::uint64_t bytes_;
  std::atomic<bool> settled_{false};
};

}  // namespace

util::Future<Blob> DataProxy::request_async(const DataItemName& name, util::TaskPool& pool) {
  const ItemId id = resolver_.resolve(name);

  // Fast path: cached. Settle immediately; the prefetcher still sees the
  // request so its model and suggestions match the synchronous path.
  if (Blob blob = cache_->get(id)) {
    {
      std::lock_guard<std::mutex> lock(prefetcher_mutex_);
      prefetcher_->on_request(id, /*was_hit=*/true);
    }
    run_prefetch_suggestions();
    return util::Future<Blob>::ready_value(std::move(blob));
  }

  // Miss: hand the load to the pool. The expected size is known up front,
  // so outstanding bytes are accounted from submission — the pipeline's
  // bounded window therefore bounds this gauge, which DST asserts.
  const std::uint64_t expected_bytes = source_->item_bytes(name);
  auto token = std::make_shared<AsyncLoadToken>(stats_, expected_bytes);
  return pool.submit([this, id, name, token]() -> Blob {
    Blob blob = load_item(id, name, /*from_prefetch=*/false);
    {
      std::lock_guard<std::mutex> lock(prefetcher_mutex_);
      prefetcher_->on_request(id, /*was_hit=*/false);
    }
    run_prefetch_suggestions();
    token->settle();
    return blob;
  });
}

Blob DataProxy::load_item(ItemId id, const DataItemName& name, bool from_prefetch) {
  // If someone else is loading this item, wait for them and use the cache.
  {
    std::unique_lock<std::mutex> lock(loading_mutex_);
    while (loading_.count(id) > 0) {
      lock.unlock();
      util::clock_sleep(kWaitSlice);
      lock.lock();
    }
    if (Blob blob = cache_->peek(id)) {
      return blob;
    }
    loading_.insert(id);
  }

  Blob blob;
  try {
    blob = execute_load(id, name, from_prefetch);
  } catch (...) {
    std::lock_guard<std::mutex> lock(loading_mutex_);
    loading_.erase(id);
    throw;
  }

  {
    std::lock_guard<std::mutex> lock(loading_mutex_);
    loading_.erase(id);
  }
  return blob;
}

Blob DataProxy::execute_load(ItemId id, const DataItemName& name, bool from_prefetch) {
  const std::uint64_t item_bytes = source_->item_bytes(name);
  const std::uint64_t file_bytes = source_->file_bytes(name);
  const std::string file_key = source_->file_key(name);

  // Demand loads run on the worker thread and inherit the worker.execute /
  // phase context; async prefetches run on the prefetch thread with no
  // context and trace as request-0 roots (exempted by trace validators).
  const auto& trace_ctx = obs::current_context();
  auto span = obs::Tracer::instance().start(from_prefetch ? "dms.prefetch" : "dms.load",
                                            trace_ctx.request_id, config_.proxy_id + 1,
                                            trace_ctx.span_id);
  if (span.active()) {
    span.arg("item", static_cast<std::int64_t>(id));
  }

  // Ask the central server which strategy to use (paper Sec. 4.3).
  const auto decision = server_->choose_strategy(config_.proxy_id, id, item_bytes, file_bytes,
                                                 file_key);

  util::WallTimer timer;
  Blob blob;

  if (decision.kind == StrategyKind::kPeerTransfer && peer_fetch_) {
    blob = peer_fetch_(decision.peer, id);
    if (blob) {
      VIRA_TRACE("dms") << "proxy " << config_.proxy_id << " got item " << id << " from peer "
                        << decision.peer;
    }
  }

  if (!blob && decision.kind == StrategyKind::kCollectiveIo) {
    server_->begin_file_read(file_key);
    auto items = source_->load_file(name);
    server_->end_file_read(file_key);
    for (auto& [item_name, buffer] : items) {
      const ItemId sibling = resolver_.resolve(item_name);
      Blob sibling_blob = make_blob(std::move(buffer));
      if (sibling == id) {
        blob = sibling_blob;
      }
      cache_->put(sibling, sibling_blob, /*from_prefetch=*/sibling != id);
      server_->report_insert(config_.proxy_id, sibling);
    }
  }

  if (!blob) {
    // Direct disk (also the fallback when a peer raced away or the
    // collective read failed to yield the item).
    server_->begin_file_read(file_key);
    util::ByteBuffer buffer;
    try {
      buffer = source_->load(name);
    } catch (...) {
      server_->end_file_read(file_key);
      throw;
    }
    server_->end_file_read(file_key);
    blob = make_blob(std::move(buffer));
  }

  const double seconds = timer.seconds();
  stats_->record_load(blob->size(), seconds);
  if (span.active()) {
    span.arg("bytes", static_cast<std::int64_t>(blob->size()));
    span.arg("strategy", static_cast<std::int64_t>(decision.kind));
  }
  if (seconds > 0.0) {
    server_->observe_disk_bandwidth(static_cast<double>(blob->size()) / seconds);
  }

  cache_->put(id, blob, from_prefetch);
  server_->report_insert(config_.proxy_id, id);
  return blob;
}

void DataProxy::run_prefetch_suggestions() {
  std::vector<ItemId> suggestions;
  {
    std::lock_guard<std::mutex> lock(prefetcher_mutex_);
    suggestions = prefetcher_->suggest(config_.prefetch_depth);
  }
  for (const ItemId id : suggestions) {
    if (cache_->contains_l1(id)) {
      continue;  // already resident
    }
    stats_->record_prefetch_issued();
    if (config_.async_prefetch) {
      {
        std::lock_guard<std::mutex> lock(idle_mutex_);
        ++prefetch_inflight_;
      }
      if (!prefetch_queue_.push(id)) {
        std::lock_guard<std::mutex> lock(idle_mutex_);
        --prefetch_inflight_;
      }
    } else {
      prefetch_one(id);
    }
  }
}

void DataProxy::code_prefetch(const DataItemName& name) {
  const ItemId id = resolver_.resolve(name);
  if (cache_->contains_l1(id)) {
    return;
  }
  stats_->record_prefetch_issued();
  if (config_.async_prefetch) {
    {
      std::lock_guard<std::mutex> lock(idle_mutex_);
      ++prefetch_inflight_;
    }
    if (!prefetch_queue_.push(id)) {
      std::lock_guard<std::mutex> lock(idle_mutex_);
      --prefetch_inflight_;
    }
  } else {
    prefetch_one(id);
  }
}

void DataProxy::prefetch_worker() {
  while (true) {
    // Clock-paced pickup instead of a blocking pop: queued suggestions are
    // drained immediately, the idle thread sleeps through the injectable
    // clock (so virtual-time runs schedule it deterministically).
    auto id = prefetch_queue_.try_pop();
    if (!id) {
      if (prefetch_queue_.closed()) {
        break;
      }
      util::clock_sleep(kWaitSlice);
      continue;
    }
    try {
      prefetch_one(*id);
    } catch (const std::exception& e) {
      VIRA_WARN("dms") << "prefetch of item " << *id << " failed: " << e.what();
    }
    {
      std::lock_guard<std::mutex> lock(idle_mutex_);
      --prefetch_inflight_;
    }
  }
}

void DataProxy::prefetch_one(ItemId id) {
  if (cache_->contains_l1(id)) {
    return;
  }
  const auto name = resolver_.reverse(id);
  if (!name) {
    const auto looked_up = server_->lookup(id);
    if (!looked_up) {
      return;
    }
    (void)load_item(id, *looked_up, /*from_prefetch=*/true);
    return;
  }
  (void)load_item(id, *name, /*from_prefetch=*/true);
}

void DataProxy::quiesce() {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  while (prefetch_inflight_ > 0) {
    lock.unlock();
    util::clock_sleep(kWaitSlice);
    lock.lock();
  }
}

void DataProxy::clear_cache() {
  quiesce();
  for (const ItemId id : cache_->l1().resident()) {
    server_->report_evict(config_.proxy_id, id);
  }
  cache_->clear();
}

}  // namespace vira::dms
