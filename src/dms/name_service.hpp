#pragma once

/// \file name_service.hpp
/// Cluster-wide item naming (paper Sec. 4.1).
///
/// "While the data manager server contains a name server handling
/// unambiguous identifiers, proxies include a name resolver that translates
/// data item names to identifiers and vice versa."
///
/// The NameService lives at the scheduler node and owns the name↔id
/// bijection; NameResolvers live at each proxy and memoize lookups so
/// repeated requests do not round-trip.

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dms/data_item.hpp"

namespace vira::dms {

/// Central authority. Thread-safe.
class NameService {
 public:
  /// Returns the id for `name`, allocating one on first sight.
  ItemId intern(const DataItemName& name);

  /// Reverse lookup; nullopt for unknown ids.
  std::optional<DataItemName> lookup(ItemId id) const;

  /// Forward lookup without allocation; nullopt if never interned.
  std::optional<ItemId> find(const DataItemName& name) const;

  std::size_t size() const;

  /// Monotonic dataset version. It starts at 1 and advances whenever the
  /// underlying data changes (a new simulation run replaced a file, a
  /// block was rewritten in place). The scheduler's result cache folds the
  /// version into its content-addressed keys, so a bump instantly makes
  /// every memoized result stale-proof.
  std::uint64_t data_version() const { return data_version_.load(std::memory_order_acquire); }
  void bump_data_version();

  /// Registers a bump listener, called with the new version after every
  /// bump_data_version(). The sharded DMS wires one per proxy so a bump
  /// invalidates the cached replicas on *every* rank, not just the result
  /// cache at the scheduler — a stale replica answering a peer fetch after
  /// an invalidation would silently resurrect pre-bump geometry.
  void on_bump(std::function<void(std::uint64_t)> listener);

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, ItemId> by_name_;
  std::vector<DataItemName> by_id_;
  std::atomic<std::uint64_t> data_version_{1};

  mutable std::mutex listeners_mutex_;
  std::vector<std::function<void(std::uint64_t)>> bump_listeners_;
};

/// Proxy-side memoizing resolver over any resolve function (a direct
/// NameService call in-process, an RPC in a distributed deployment).
class NameResolver {
 public:
  using ResolveFn = std::function<ItemId(const DataItemName&)>;

  explicit NameResolver(ResolveFn resolve) : resolve_(std::move(resolve)) {}

  ItemId resolve(const DataItemName& name);

  /// Cached reverse mapping (only names this resolver has seen).
  std::optional<DataItemName> reverse(ItemId id) const;

  std::size_t cache_size() const;

 private:
  mutable std::mutex mutex_;
  ResolveFn resolve_;
  std::unordered_map<std::string, ItemId> forward_;
  std::unordered_map<ItemId, DataItemName> backward_;
};

}  // namespace vira::dms
