#include "dms/two_tier_cache.hpp"

#include <fstream>

#include "util/log.hpp"

namespace vira::dms {

namespace {

/// Writes the spill file and reports whether every byte reached the stream.
/// A failed write (disk full, bad directory, I/O error) leaves no partial
/// file behind: a truncated spill that got indexed would later deserialize
/// as a corrupt block.
bool write_blob_file(const std::string& path, const util::ByteBuffer& blob) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out.write(reinterpret_cast<const char*>(blob.data()), static_cast<std::streamsize>(blob.size()));
  out.close();  // flushes; close failures surface in the stream state
  if (!out) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
    return false;
  }
  return true;
}

std::optional<util::ByteBuffer> read_blob_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return std::nullopt;
  }
  const auto end = in.tellg();
  if (end < 0) {
    return std::nullopt;  // tellg() failed; casting -1 would allocate 2^64
  }
  const auto size = static_cast<std::uint64_t>(end);
  in.seekg(0);
  std::vector<std::byte> data(size);
  in.read(reinterpret_cast<char*>(data.data()), static_cast<std::streamsize>(size));
  if (static_cast<std::uint64_t>(in.gcount()) != size) {
    return std::nullopt;
  }
  return util::ByteBuffer(std::move(data));
}

}  // namespace

TwoTierCache::TwoTierCache(Config config, std::shared_ptr<DmsStatistics> stats)
    : config_(std::move(config)),
      stats_(std::move(stats)),
      l1_(config_.l1_capacity_bytes, make_policy(config_.policy)) {
  if (!stats_) {
    stats_ = std::make_shared<DmsStatistics>();
  }
  if (!config_.l2_directory.empty()) {
    std::filesystem::create_directories(config_.l2_directory);
  }
}

TwoTierCache::~TwoTierCache() {
  if (!config_.l2_directory.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(config_.l2_directory, ec);
  }
}

std::string TwoTierCache::l2_path(ItemId id) const {
  return config_.l2_directory + "/item_" + std::to_string(id) + ".blob";
}

Blob TwoTierCache::get(ItemId id) {
  stats_->record_request(id);
  if (Blob blob = l1_.get(id)) {
    stats_->record_l1_hit();
    note_requested(id);
    return blob;
  }
  if (!config_.l2_directory.empty()) {
    if (Blob blob = promote(id)) {
      stats_->record_l2_hit();
      note_requested(id);
      return blob;
    }
  }
  stats_->record_miss();
  return nullptr;
}

void TwoTierCache::note_requested(ItemId id) {
  std::lock_guard<std::mutex> lock(prefetch_mutex_);
  auto it = prefetched_pending_.find(id);
  if (it != prefetched_pending_.end()) {
    stats_->record_prefetch_useful();
    prefetched_pending_.erase(it);
  }
}

void TwoTierCache::put(ItemId id, Blob blob, bool from_prefetch) {
  put_internal(id, std::move(blob), from_prefetch, /*respill=*/false);
}

void TwoTierCache::put_internal(ItemId id, Blob blob, bool from_prefetch, bool respill) {
  bool inserted = false;
  auto evicted = l1_.put(id, std::move(blob), &inserted);
  if (from_prefetch && inserted) {
    // Track only what actually entered the cache: an oversize blob L1
    // refused never becomes "useful", so a pending entry for it could
    // only ever leak.
    std::lock_guard<std::mutex> lock(prefetch_mutex_);
    prefetched_pending_[id] = true;
  }
  for (auto& victim : evicted) {
    stats_->record_eviction_l1();
    const bool demoted = !config_.l2_directory.empty() && demote(victim.id, victim.blob, respill);
    if (!demoted) {
      note_gone(victim.id);  // left the hierarchy: unrequested prefetch is wasted
    }
  }
}

std::size_t TwoTierCache::prefetch_pending_count() const {
  std::lock_guard<std::mutex> lock(prefetch_mutex_);
  return prefetched_pending_.size();
}

void TwoTierCache::note_gone(ItemId id) {
  std::lock_guard<std::mutex> lock(prefetch_mutex_);
  auto it = prefetched_pending_.find(id);
  if (it != prefetched_pending_.end()) {
    prefetched_pending_.erase(it);
    stats_->record_prefetch_wasted();
  }
}

Blob TwoTierCache::peek_deep(ItemId id) const {
  if (Blob blob = l1_.peek(id)) {
    return blob;
  }
  if (config_.l2_directory.empty()) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(l2_mutex_);
  if (l2_index_.count(id) == 0) {
    return nullptr;
  }
  auto buffer = read_blob_file(l2_path(id));
  if (!buffer) {
    return nullptr;  // unreadable spill; the owning get()/promote() path warns
  }
  return make_blob(std::move(*buffer));
}

void TwoTierCache::erase(ItemId id) {
  l1_.erase(id);
  if (!config_.l2_directory.empty()) {
    std::lock_guard<std::mutex> lock(l2_mutex_);
    auto it = l2_index_.find(id);
    if (it != l2_index_.end()) {
      l2_used_ -= it->second.second;
      l2_order_.erase(it->second.first);
      std::error_code ec;
      std::filesystem::remove(l2_path(id), ec);
      l2_index_.erase(it);
    }
  }
  note_gone(id);
}

bool TwoTierCache::contains(ItemId id) const {
  if (l1_.contains(id)) {
    return true;
  }
  if (config_.l2_directory.empty()) {
    return false;
  }
  std::lock_guard<std::mutex> lock(l2_mutex_);
  return l2_index_.count(id) > 0;
}

bool TwoTierCache::contains_l1(ItemId id) const { return l1_.contains(id); }

bool TwoTierCache::demote(ItemId id, const Blob& blob, bool respill) {
  std::lock_guard<std::mutex> lock(l2_mutex_);
  if (l2_index_.count(id) > 0) {
    return true;  // already spilled
  }
  const std::uint64_t bytes = blob->size();
  if (bytes > config_.l2_capacity_bytes) {
    // The blob alone outsizes the whole secondary tier; it is silently lost
    // from the cache hierarchy (a later request reloads it from storage).
    // Warn once — a misconfigured L2 budget otherwise looks like a slow disk.
    stats_->record_demotion_dropped_oversize();
    if (!warned_oversize_) {
      warned_oversize_ = true;
      VIRA_WARN("dms") << "L2 demotion dropped: item " << id << " (" << bytes
                       << " bytes) exceeds the entire secondary-cache budget ("
                       << config_.l2_capacity_bytes
                       << " bytes); further oversize drops are only counted";
    }
    return false;
  }
  evict_l2_to_fit(bytes);
  if (!write_blob_file(l2_path(id), *blob)) {
    stats_->record_demotion_dropped_io();
    VIRA_WARN("dms") << "L2 spill write failed for item " << id
                     << "; demotion dropped (not indexed)";
    return false;
  }
  if (respill) {
    stats_->record_l2_respill();
  }
  l2_order_.push_back(id);
  l2_index_[id] = {std::prev(l2_order_.end()), bytes};
  l2_used_ += bytes;
  return true;
}

void TwoTierCache::evict_l2_to_fit(std::uint64_t incoming) {
  while (l2_used_ + incoming > config_.l2_capacity_bytes && !l2_order_.empty()) {
    const ItemId victim = l2_order_.front();
    l2_order_.pop_front();
    auto it = l2_index_.find(victim);
    if (it != l2_index_.end()) {
      l2_used_ -= it->second.second;
      std::error_code ec;
      std::filesystem::remove(l2_path(victim), ec);
      l2_index_.erase(it);
      stats_->record_eviction_l2();
      note_gone(victim);  // fell off the bottom tier: gone for good
    }
  }
}

Blob TwoTierCache::promote(ItemId id) {
  std::unique_lock<std::mutex> lock(l2_mutex_);
  auto it = l2_index_.find(id);
  if (it == l2_index_.end()) {
    return nullptr;
  }
  auto buffer = read_blob_file(l2_path(id));
  // Remove from L2 (the blob moves back up).
  l2_used_ -= it->second.second;
  l2_order_.erase(it->second.first);
  l2_index_.erase(it);
  std::error_code ec;
  std::filesystem::remove(l2_path(id), ec);
  lock.unlock();

  if (!buffer) {
    VIRA_WARN("dms") << "L2 spill file for item " << id << " unreadable; treating as miss";
    note_gone(id);  // de-indexed above and unreadable: out of the hierarchy
    return nullptr;
  }
  Blob blob = make_blob(std::move(*buffer));
  // The re-insert may evict another L1 resident straight back to disk;
  // mark that demotion as a re-spill so tier thrashing is visible.
  put_internal(id, blob, /*from_prefetch=*/false, /*respill=*/true);
  return blob;
}

void TwoTierCache::clear() {
  for (const ItemId id : l1_.resident()) {
    l1_.erase(id);
  }
  std::lock_guard<std::mutex> lock(l2_mutex_);
  for (const auto& [id, entry] : l2_index_) {
    std::error_code ec;
    std::filesystem::remove(l2_path(id), ec);
  }
  l2_index_.clear();
  l2_order_.clear();
  l2_used_ = 0;
  std::lock_guard<std::mutex> plock(prefetch_mutex_);
  prefetched_pending_.clear();
}

std::uint64_t TwoTierCache::l2_size_bytes() const {
  std::lock_guard<std::mutex> lock(l2_mutex_);
  return l2_used_;
}

std::size_t TwoTierCache::l2_item_count() const {
  std::lock_guard<std::mutex> lock(l2_mutex_);
  return l2_index_.size();
}

}  // namespace vira::dms
