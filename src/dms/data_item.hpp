#pragma once

/// \file data_item.hpp
/// Data items and their names (paper Sec. 4).
///
/// "The minimal unit of data handling is a data item. [...] The source of a
/// data item can be a single file, a part of a file, or even a combination
/// of files. [...] A data item is fully named by a source file, a data type
/// and format as well as an optional parameter list."
///
/// The DMS never interprets an item's bytes — payloads are opaque blobs;
/// decoding happens in the application layer (grid::StructuredBlock for CFD
/// blocks). Items are identified cluster-wide by a dense integer id handed
/// out by the central name service.

#include <cstdint>
#include <memory>
#include <string>

#include "util/byte_buffer.hpp"
#include "util/param_list.hpp"

namespace vira::dms {

using ItemId = std::uint64_t;
inline constexpr ItemId kInvalidItem = ~0ull;

/// Immutable shared payload bytes.
using Blob = std::shared_ptr<const util::ByteBuffer>;

inline Blob make_blob(util::ByteBuffer buffer) {
  return std::make_shared<const util::ByteBuffer>(std::move(buffer));
}

struct DataItemName {
  std::string source;  ///< file (or file set) the item derives from
  std::string type;    ///< e.g. "block", "lambda2-field"
  std::string format;  ///< e.g. "vmb"
  util::ParamList params;

  /// Canonical rendering; equal names render equally (params are sorted).
  std::string canonical() const {
    return source + "|" + type + "|" + format + "|" + params.canonical();
  }

  bool operator==(const DataItemName& other) const {
    return source == other.source && type == other.type && format == other.format &&
           params == other.params;
  }

  void serialize(util::ByteBuffer& out) const {
    out.write_string(source);
    out.write_string(type);
    out.write_string(format);
    params.serialize(out);
  }

  static DataItemName deserialize(util::ByteBuffer& in) {
    DataItemName name;
    name.source = in.read_string();
    name.type = in.read_string();
    name.format = in.read_string();
    name.params = util::ParamList::deserialize(in);
    return name;
  }
};

/// Helper: the canonical name of one block of one time step of a dataset —
/// the item the CFD commands request all day.
inline DataItemName block_item(const std::string& dataset_dir, int step, int block) {
  DataItemName name;
  name.source = dataset_dir;
  name.type = "block";
  name.format = "vmb";
  name.params.set_int("step", step);
  name.params.set_int("block", block);
  return name;
}

}  // namespace vira::dms
