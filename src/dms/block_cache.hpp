#pragma once

/// \file block_cache.hpp
/// Capacity-bounded in-memory item cache (the DMS primary cache).
///
/// Eviction order is delegated to a ReplacementPolicy; items can be pinned
/// while a command is actively working on them so a concurrent prefetch
/// cannot evict the block under the algorithm's feet. put() returns what
/// was evicted so the TwoTierCache can demote those blobs to disk.

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dms/cache_policy.hpp"
#include "dms/data_item.hpp"

namespace vira::dms {

class BlockCache {
 public:
  BlockCache(std::uint64_t capacity_bytes, std::unique_ptr<ReplacementPolicy> policy);

  /// Returns the blob and records an access, or nullptr on miss.
  Blob get(ItemId id);

  /// Peek without touching the replacement state (used by peer transfer).
  Blob peek(ItemId id) const;

  bool contains(ItemId id) const;

  struct Evicted {
    ItemId id;
    Blob blob;
  };

  /// Inserts (or refreshes) an item, evicting as needed to respect
  /// capacity. Items larger than the whole cache are rejected (returned in
  /// the eviction list untouched is wrong — the blob is simply not cached;
  /// `inserted` tells the caller). Pinned items are never evicted.
  std::vector<Evicted> put(ItemId id, Blob blob, bool* inserted = nullptr);

  void erase(ItemId id);

  /// Pin/unpin; pins nest.
  void pin(ItemId id);
  void unpin(ItemId id);

  std::uint64_t size_bytes() const;
  std::uint64_t capacity_bytes() const { return capacity_; }
  std::size_t item_count() const;

  /// All resident ids (diagnostics / peer-transfer registry seeding).
  std::vector<ItemId> resident() const;

  const ReplacementPolicy& policy() const { return *policy_; }

 private:
  struct Entry {
    Blob blob;
    int pins = 0;
  };

  mutable std::mutex mutex_;
  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::unique_ptr<ReplacementPolicy> policy_;
  std::unordered_map<ItemId, Entry> entries_;
};

}  // namespace vira::dms
