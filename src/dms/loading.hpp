#pragma once

/// \file loading.hpp
/// Loading strategies and adaptive selection (paper Sec. 4.3).
///
/// "The Viracocha-DMS provides a set of loading strategies. A centralized
/// component located at the scheduler node decides on their usage. [...]
/// This decision is made based on a fitness function that depends on one
/// or more parameters like bandwidth, reliability, or latency."
///
/// Strategies here are *decision* objects: they score themselves for a
/// request (fitness) and tell the proxy how to execute the load (kind).
/// Execution lives in DataProxy, which owns the application-layer
/// manipulation methods (DataSource) and the peer-fetch path.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dms/data_item.hpp"

namespace vira::dms {

enum class StrategyKind {
  kDirectDisk,    ///< read the item's byte range from its file
  kPeerTransfer,  ///< copy from another proxy's cache
  kCollectiveIo,  ///< one reader loads the whole file for all requesters
};

std::string to_string(StrategyKind kind);

/// What the fitness function sees. Bandwidths in bytes/s, latencies in
/// seconds, reliabilities in [0,1].
struct LoadEnvironment {
  double disk_bandwidth = 80e6;
  double disk_latency = 8e-3;
  double disk_reliability = 0.98;
  double peer_bandwidth = 400e6;
  double peer_latency = 0.5e-3;
  double peer_reliability = 0.995;
  bool parallel_fs = false;  ///< collective calls only help on a parallel FS
};

/// Per-request facts gathered by the server before deciding.
struct LoadRequestInfo {
  std::uint64_t item_bytes = 0;
  std::uint64_t file_bytes = 0;
  int concurrent_same_file = 0;  ///< proxies currently reading the same file
  bool peer_has_item = false;
};

class LoadStrategy {
 public:
  virtual ~LoadStrategy() = default;
  virtual StrategyKind kind() const = 0;
  virtual std::string name() const = 0;

  /// Expected completion time in seconds; +inf when inapplicable.
  virtual double estimated_seconds(const LoadEnvironment& env,
                                   const LoadRequestInfo& request) const = 0;

  /// Fitness = reliability / estimated time; higher is better, <= 0 means
  /// "do not use".
  double fitness(const LoadEnvironment& env, const LoadRequestInfo& request) const;

 protected:
  virtual double reliability(const LoadEnvironment& env) const = 0;
};

class DirectDiskStrategy final : public LoadStrategy {
 public:
  StrategyKind kind() const override { return StrategyKind::kDirectDisk; }
  std::string name() const override { return "direct-disk"; }
  double estimated_seconds(const LoadEnvironment& env,
                           const LoadRequestInfo& request) const override;

 protected:
  double reliability(const LoadEnvironment& env) const override { return env.disk_reliability; }
};

class PeerTransferStrategy final : public LoadStrategy {
 public:
  StrategyKind kind() const override { return StrategyKind::kPeerTransfer; }
  std::string name() const override { return "peer-transfer"; }
  double estimated_seconds(const LoadEnvironment& env,
                           const LoadRequestInfo& request) const override;

 protected:
  double reliability(const LoadEnvironment& env) const override { return env.peer_reliability; }
};

class CollectiveIoStrategy final : public LoadStrategy {
 public:
  StrategyKind kind() const override { return StrategyKind::kCollectiveIo; }
  std::string name() const override { return "collective-io"; }
  double estimated_seconds(const LoadEnvironment& env,
                           const LoadRequestInfo& request) const override;

 protected:
  double reliability(const LoadEnvironment& env) const override { return env.disk_reliability; }
};

/// Scores every registered strategy and picks the fittest.
class FitnessSelector {
 public:
  FitnessSelector();  ///< registers the three built-in strategies

  struct Scored {
    StrategyKind kind;
    std::string name;
    double fitness;
    double estimated_seconds;
  };

  /// All strategies with their scores, best first.
  std::vector<Scored> score(const LoadEnvironment& env, const LoadRequestInfo& request) const;

  /// The winning strategy kind.
  StrategyKind choose(const LoadEnvironment& env, const LoadRequestInfo& request) const;

 private:
  std::vector<std::unique_ptr<LoadStrategy>> strategies_;
};

}  // namespace vira::dms
