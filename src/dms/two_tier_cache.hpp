#pragma once

/// \file two_tier_cache.hpp
/// The DMS "two-tiered data cache with a primary cache in main memory and
/// an optional secondary cache on local hard drives" (paper Sec. 4.2).
///
/// L1 evictions demote blobs to spill files in a per-proxy directory; L2
/// hits promote them back to L1. The secondary tier has its own byte
/// budget with LRU file eviction (frequency bookkeeping would be wasted on
/// the slow tier).

#include <cstdint>
#include <filesystem>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "dms/block_cache.hpp"
#include "dms/statistics.hpp"

namespace vira::dms {

class TwoTierCache {
 public:
  struct Config {
    std::uint64_t l1_capacity_bytes;
    std::string policy = "fbr";        ///< L1 replacement policy
    std::string l2_directory;          ///< empty = secondary tier disabled
    std::uint64_t l2_capacity_bytes = 0;
  };

  TwoTierCache(Config config, std::shared_ptr<DmsStatistics> stats);
  ~TwoTierCache();

  /// Looks the item up in L1 then (if enabled) L2; L2 hits are promoted.
  /// Records hit/miss statistics. nullptr = full miss, caller must load.
  Blob get(ItemId id);

  /// Inserts into L1; demotes L1 evictions into L2.
  /// `from_prefetch` marks speculative inserts for usefulness accounting.
  void put(ItemId id, Blob blob, bool from_prefetch = false);

  bool contains(ItemId id) const;
  /// True if resident in L1 (cheap check used by the prefetcher to skip
  /// suggestions that are already cached).
  bool contains_l1(ItemId id) const;

  void pin(ItemId id) { l1_.pin(id); }
  void unpin(ItemId id) { l1_.unpin(id); }

  /// Peek L1 without state changes (peer transfer source).
  Blob peek(ItemId id) const { return l1_.peek(id); }

  /// Peek both tiers without state changes: L1, else a read of the L2
  /// spill file with no promotion (the blob stays on disk, the LRU order
  /// is untouched). The sharded peer-service thread answers fetches with
  /// this so serving a sibling never perturbs the local replacement state
  /// or the hit/miss accounting.
  Blob peek_deep(ItemId id) const;

  /// Drops the item from both tiers (no demotion, no hit/miss accounting).
  /// Used by version invalidation: a bump makes the cached bytes stale, so
  /// the entry must leave the hierarchy before the reload.
  void erase(ItemId id);

  /// Drops everything (both tiers) — the benches' cold-start switch.
  void clear();

  const BlockCache& l1() const { return l1_; }
  std::uint64_t l2_size_bytes() const;
  std::size_t l2_item_count() const;

  /// Prefetched-but-never-requested items currently tracked. Bounded by
  /// cache residency: an item leaving both tiers is erased (and counted
  /// as prefetch_wasted), so the map cannot outgrow the cache itself.
  std::size_t prefetch_pending_count() const;

 private:
  std::string l2_path(ItemId id) const;
  void put_internal(ItemId id, Blob blob, bool from_prefetch, bool respill);
  void note_requested(ItemId id);
  /// The item left the cache hierarchy entirely (evicted with no L2,
  /// dropped demotion, L2 eviction, unreadable spill file). If it was a
  /// still-unrequested prefetch, the speculation is now provably wasted:
  /// count it and erase the pending entry — leaving it would leak one map
  /// slot per evicted prefetch for the life of the server.
  void note_gone(ItemId id);
  /// `respill` marks demotions caused by an L2 promote's re-insert (tier
  /// churn accounting). Returns true when the blob is indexed in L2
  /// afterwards (false = dropped: oversize or spill-write failure).
  bool demote(ItemId id, const Blob& blob, bool respill = false);
  Blob promote(ItemId id);
  void evict_l2_to_fit(std::uint64_t incoming);

  Config config_;
  std::shared_ptr<DmsStatistics> stats_;
  BlockCache l1_;

  mutable std::mutex l2_mutex_;
  /// LRU order of spilled items, front = oldest.
  std::list<ItemId> l2_order_;
  std::unordered_map<ItemId, std::pair<std::list<ItemId>::iterator, std::uint64_t>> l2_index_;
  std::uint64_t l2_used_ = 0;
  bool warned_oversize_ = false;  ///< guarded by l2_mutex_

  /// Items inserted by prefetch and not yet requested (usefulness metric).
  mutable std::mutex prefetch_mutex_;
  std::unordered_map<ItemId, bool> prefetched_pending_;
};

}  // namespace vira::dms
