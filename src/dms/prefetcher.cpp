#include "dms/prefetcher.hpp"

#include <algorithm>
#include <stdexcept>

namespace vira::dms {

// ---------------------------------------------------------------------------
// OBL
// ---------------------------------------------------------------------------

OblPrefetcher::OblPrefetcher(SuccessorFn successor, int lookahead)
    : successor_(std::move(successor)), lookahead_(lookahead) {
  if (!successor_) {
    throw std::invalid_argument("OblPrefetcher: successor relation required");
  }
  if (lookahead_ < 1) {
    throw std::invalid_argument("OblPrefetcher: lookahead must be >= 1");
  }
}

void OblPrefetcher::on_request(ItemId id, bool) {
  last_ = id;
  fresh_ = true;
}

std::vector<ItemId> OblPrefetcher::suggest(std::size_t max_items) {
  std::vector<ItemId> suggestions;
  if (!fresh_ || !last_) {
    return suggestions;
  }
  fresh_ = false;
  std::optional<ItemId> cursor = last_;
  for (int step = 0; step < lookahead_ && suggestions.size() < max_items; ++step) {
    cursor = successor_(*cursor);
    if (!cursor) {
      break;
    }
    suggestions.push_back(*cursor);
  }
  return suggestions;
}

// ---------------------------------------------------------------------------
// Prefetch-on-miss
// ---------------------------------------------------------------------------

PrefetchOnMissPrefetcher::PrefetchOnMissPrefetcher(SuccessorFn successor)
    : successor_(std::move(successor)) {
  if (!successor_) {
    throw std::invalid_argument("PrefetchOnMissPrefetcher: successor relation required");
  }
}

void PrefetchOnMissPrefetcher::on_request(ItemId id, bool was_hit) {
  if (!was_hit) {
    armed_from_ = id;
  }
}

std::vector<ItemId> PrefetchOnMissPrefetcher::suggest(std::size_t max_items) {
  std::vector<ItemId> suggestions;
  if (!armed_from_ || max_items == 0) {
    return suggestions;
  }
  if (auto next = successor_(*armed_from_)) {
    suggestions.push_back(*next);
  }
  armed_from_.reset();
  return suggestions;
}

// ---------------------------------------------------------------------------
// Markov
// ---------------------------------------------------------------------------

MarkovPrefetcher::MarkovPrefetcher(SuccessorFn fallback_successor, int order_hint)
    : fallback_(std::move(fallback_successor)) {
  (void)order_hint;  // first-order implementation (the paper's choice)
}

void MarkovPrefetcher::on_request(ItemId id, bool) {
  if (previous_ && *previous_ != id) {
    transitions_[*previous_][id] += 1;
  }
  previous_ = id;
  last_ = id;
  fresh_ = true;
}

std::vector<ItemId> MarkovPrefetcher::suggest(std::size_t max_items) {
  std::vector<ItemId> suggestions;
  if (!fresh_ || !last_ || max_items == 0) {
    return suggestions;
  }
  fresh_ = false;

  auto it = transitions_.find(*last_);
  if (it != transitions_.end() && !it->second.empty()) {
    // Rank successors by observed probability (count), best first.
    std::vector<std::pair<ItemId, std::uint64_t>> ranked(it->second.begin(), it->second.end());
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) {
        return a.second > b.second;
      }
      return a.first < b.first;  // deterministic ties
    });
    for (const auto& [next, count] : ranked) {
      if (suggestions.size() >= max_items) {
        break;
      }
      suggestions.push_back(next);
    }
    return suggestions;
  }

  // Learning phase: no successor information — fall back to OBL.
  if (fallback_) {
    if (auto next = fallback_(*last_)) {
      suggestions.push_back(*next);
    }
  }
  return suggestions;
}

std::uint64_t MarkovPrefetcher::transition_count(ItemId prev, ItemId next) const {
  auto it = transitions_.find(prev);
  if (it == transitions_.end()) {
    return 0;
  }
  auto jt = it->second.find(next);
  return jt != it->second.end() ? jt->second : 0;
}

std::optional<ItemId> MarkovPrefetcher::most_likely_successor(ItemId id) const {
  auto it = transitions_.find(id);
  if (it == transitions_.end() || it->second.empty()) {
    return std::nullopt;
  }
  ItemId best = 0;
  std::uint64_t best_count = 0;
  for (const auto& [next, count] : it->second) {
    if (count > best_count || (count == best_count && next < best)) {
      best = next;
      best_count = count;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

std::unique_ptr<Prefetcher> make_prefetcher(const std::string& name, SuccessorFn successor) {
  if (name == "none" || name.empty()) {
    return std::make_unique<NullPrefetcher>();
  }
  if (name == "obl") {
    return std::make_unique<OblPrefetcher>(std::move(successor));
  }
  if (name == "prefetch-on-miss" || name == "pom") {
    return std::make_unique<PrefetchOnMissPrefetcher>(std::move(successor));
  }
  if (name == "markov") {
    return std::make_unique<MarkovPrefetcher>(std::move(successor));
  }
  throw std::invalid_argument("make_prefetcher: unknown prefetcher '" + name + "'");
}

}  // namespace vira::dms
