#include "dms/loading.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace vira::dms {

std::string to_string(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kDirectDisk:
      return "direct-disk";
    case StrategyKind::kPeerTransfer:
      return "peer-transfer";
    case StrategyKind::kCollectiveIo:
      return "collective-io";
  }
  return "?";
}

double LoadStrategy::fitness(const LoadEnvironment& env, const LoadRequestInfo& request) const {
  const double seconds = estimated_seconds(env, request);
  if (!std::isfinite(seconds) || seconds <= 0.0) {
    return 0.0;
  }
  return reliability(env) / seconds;
}

double DirectDiskStrategy::estimated_seconds(const LoadEnvironment& env,
                                             const LoadRequestInfo& request) const {
  // Concurrent readers of the same file share the disk head / link.
  const double sharing = std::max(1, request.concurrent_same_file + 1);
  const double bandwidth = env.disk_bandwidth / sharing;
  return env.disk_latency + static_cast<double>(request.item_bytes) / bandwidth;
}

double PeerTransferStrategy::estimated_seconds(const LoadEnvironment& env,
                                               const LoadRequestInfo& request) const {
  if (!request.peer_has_item) {
    return std::numeric_limits<double>::infinity();
  }
  return env.peer_latency + static_cast<double>(request.item_bytes) / env.peer_bandwidth;
}

double CollectiveIoStrategy::estimated_seconds(const LoadEnvironment& env,
                                               const LoadRequestInfo& request) const {
  // A collective call only makes sense when several proxies want the same
  // file right now; the whole file is read once and striped.
  if (request.concurrent_same_file < 1 || request.file_bytes == 0) {
    return std::numeric_limits<double>::infinity();
  }
  const double readers = request.concurrent_same_file + 1;
  // Without a parallel file system the "collective" read still serializes
  // on one disk head, plus coordination overhead per participant — this is
  // why the paper found it "of limited use in Viracocha" (Sec. 4.3).
  const double coordination = 2e-3 * readers;
  // With a parallel FS the stripes are read concurrently (aggregate
  // bandwidth scales with participants); otherwise one head reads the whole
  // file for everyone.
  const double read_seconds = env.parallel_fs
                                  ? static_cast<double>(request.file_bytes) /
                                        (env.disk_bandwidth * readers)
                                  : static_cast<double>(request.file_bytes) / env.disk_bandwidth;
  return env.disk_latency + coordination + read_seconds;
}

FitnessSelector::FitnessSelector() {
  strategies_.push_back(std::make_unique<DirectDiskStrategy>());
  strategies_.push_back(std::make_unique<PeerTransferStrategy>());
  strategies_.push_back(std::make_unique<CollectiveIoStrategy>());
}

std::vector<FitnessSelector::Scored> FitnessSelector::score(const LoadEnvironment& env,
                                                            const LoadRequestInfo& request) const {
  std::vector<Scored> scored;
  scored.reserve(strategies_.size());
  for (const auto& strategy : strategies_) {
    scored.push_back(Scored{strategy->kind(), strategy->name(),
                            strategy->fitness(env, request),
                            strategy->estimated_seconds(env, request)});
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) { return a.fitness > b.fitness; });
  return scored;
}

StrategyKind FitnessSelector::choose(const LoadEnvironment& env,
                                     const LoadRequestInfo& request) const {
  const auto scored = score(env, request);
  if (scored.empty() || scored.front().fitness <= 0.0) {
    return StrategyKind::kDirectDisk;
  }
  return scored.front().kind;
}

}  // namespace vira::dms
