#include "dms/data_server.hpp"

namespace vira::dms {

DataServer::DataServer(LoadEnvironment env) : env_(env) {}

void DataServer::report_insert(int proxy, ItemId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  holders_[id].insert(proxy);
}

void DataServer::report_evict(int proxy, ItemId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = holders_.find(id);
  if (it != holders_.end()) {
    it->second.erase(proxy);
    if (it->second.empty()) {
      holders_.erase(it);
    }
  }
}

std::optional<int> DataServer::holder_of(ItemId id, int excluding) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = holders_.find(id);
  if (it == holders_.end()) {
    return std::nullopt;
  }
  for (const int proxy : it->second) {
    if (proxy != excluding) {
      return proxy;
    }
  }
  return std::nullopt;
}

std::size_t DataServer::holder_count(ItemId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = holders_.find(id);
  return it != holders_.end() ? it->second.size() : 0;
}

void DataServer::begin_file_read(const std::string& file_key) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++file_readers_[file_key];
}

void DataServer::end_file_read(const std::string& file_key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = file_readers_.find(file_key);
  if (it != file_readers_.end() && --it->second <= 0) {
    file_readers_.erase(it);
  }
}

int DataServer::concurrent_readers(const std::string& file_key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = file_readers_.find(file_key);
  return it != file_readers_.end() ? it->second : 0;
}

LoadRequestInfo DataServer::build_request_info(int proxy, ItemId id, std::uint64_t item_bytes,
                                               std::uint64_t file_bytes,
                                               const std::string& file_key) const {
  LoadRequestInfo info;
  info.item_bytes = item_bytes;
  info.file_bytes = file_bytes;
  auto readers_it = file_readers_.find(file_key);
  info.concurrent_same_file = readers_it != file_readers_.end() ? readers_it->second : 0;
  auto holders_it = holders_.find(id);
  if (holders_it != holders_.end()) {
    for (const int holder : holders_it->second) {
      if (holder != proxy) {
        info.peer_has_item = true;
        break;
      }
    }
  }
  return info;
}

DataServer::Decision DataServer::choose_strategy(int proxy, ItemId id, std::uint64_t item_bytes,
                                                 std::uint64_t file_bytes,
                                                 const std::string& file_key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto info = build_request_info(proxy, id, item_bytes, file_bytes, file_key);
  Decision decision;
  decision.kind = selector_.choose(env_, info);
  if (decision.kind == StrategyKind::kPeerTransfer) {
    auto it = holders_.find(id);
    if (it != holders_.end()) {
      for (const int holder : it->second) {
        if (holder != proxy) {
          decision.peer = holder;
          break;
        }
      }
    }
    if (decision.peer < 0) {
      decision.kind = StrategyKind::kDirectDisk;  // registry raced; fall back
    }
  }
  ++decisions_[to_string(decision.kind)];
  return decision;
}

std::vector<FitnessSelector::Scored> DataServer::score_strategies(
    int proxy, ItemId id, std::uint64_t item_bytes, std::uint64_t file_bytes,
    const std::string& file_key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return selector_.score(env_, build_request_info(proxy, id, item_bytes, file_bytes, file_key));
}

void DataServer::set_environment(const LoadEnvironment& env) {
  std::lock_guard<std::mutex> lock(mutex_);
  env_ = env;
}

LoadEnvironment DataServer::environment() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return env_;
}

void DataServer::observe_disk_bandwidth(double bytes_per_second) {
  if (bytes_per_second <= 0.0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  constexpr double kAlpha = 0.2;  // EMA smoothing
  env_.disk_bandwidth = (1.0 - kAlpha) * env_.disk_bandwidth + kAlpha * bytes_per_second;
}

std::unordered_map<std::string, std::uint64_t> DataServer::decision_counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return decisions_;
}

}  // namespace vira::dms
