#pragma once

/// \file prefetcher.hpp
/// System prefetchers (paper Sec. 4.2).
///
/// "The system prefetcher uses sequential prefetching with
/// one-block-lookahead (OBL) or prefetch-on-miss as well as a markov
/// prefetcher that learns relationships between blocks over time. [...]
/// Whenever the markov prefetcher is incapable to provide a prefetch
/// suggestion because of missing successor information about the current
/// block, the 'next' block is suggested by OBL."
///
/// Sequential prefetchers need an explicit successor relation because
/// "neighboring relations in 3-dimensional CFD data sets are not obvious";
/// the default relation is file order (the order blocks sit in the step
/// files), which is how most commands iterate.
///
/// Prefetchers are pure policy objects: on_request() feeds them the request
/// stream, suggest() returns what to fetch next. The DataProxy executes
/// suggestions on a background thread; the simulation replay executes them
/// in virtual time. Not thread-safe by themselves — callers serialize.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dms/data_item.hpp"

namespace vira::dms {

/// Successor relation: next item in the explicitly specified order, or
/// nullopt at the end of the sequence.
using SuccessorFn = std::function<std::optional<ItemId>(ItemId)>;

class Prefetcher {
 public:
  virtual ~Prefetcher() = default;

  /// Observes one request. `was_hit` tells whether the cache already held it.
  virtual void on_request(ItemId id, bool was_hit) = 0;

  /// Items worth fetching now, best first, at most `max_items`.
  virtual std::vector<ItemId> suggest(std::size_t max_items) = 0;

  virtual std::string name() const = 0;
};

/// Never prefetches (the "without prefetching" baseline of Figs. 11/14).
class NullPrefetcher final : public Prefetcher {
 public:
  void on_request(ItemId, bool) override {}
  std::vector<ItemId> suggest(std::size_t) override { return {}; }
  std::string name() const override { return "none"; }
};

/// One-Block-Lookahead: always suggest the successor of the last request.
class OblPrefetcher final : public Prefetcher {
 public:
  explicit OblPrefetcher(SuccessorFn successor, int lookahead = 1);

  void on_request(ItemId id, bool was_hit) override;
  std::vector<ItemId> suggest(std::size_t max_items) override;
  std::string name() const override { return "obl"; }

 private:
  SuccessorFn successor_;
  int lookahead_;
  std::optional<ItemId> last_;
  bool fresh_ = false;  ///< a new request arrived since the last suggest()
};

/// Prefetch-on-miss: like OBL but only armed by cache misses.
class PrefetchOnMissPrefetcher final : public Prefetcher {
 public:
  explicit PrefetchOnMissPrefetcher(SuccessorFn successor);

  void on_request(ItemId id, bool was_hit) override;
  std::vector<ItemId> suggest(std::size_t max_items) override;
  std::string name() const override { return "prefetch-on-miss"; }

 private:
  SuccessorFn successor_;
  std::optional<ItemId> armed_from_;
};

/// First-order Markov prefetcher with OBL fallback.
///
/// Learns a probability graph over observed (previous → next) transitions;
/// suggestions are the most likely successors of the last request. During
/// the learning phase — no successor information yet — it falls back to
/// OBL, exactly as the paper prescribes.
class MarkovPrefetcher final : public Prefetcher {
 public:
  /// `fallback_successor` may be null to disable the OBL fallback
  /// (used by tests to isolate the learned graph).
  explicit MarkovPrefetcher(SuccessorFn fallback_successor, int order_hint = 1);

  void on_request(ItemId id, bool was_hit) override;
  std::vector<ItemId> suggest(std::size_t max_items) override;
  std::string name() const override { return "markov"; }

  /// Transition count prev→next (tests / diagnostics).
  std::uint64_t transition_count(ItemId prev, ItemId next) const;
  /// Most probable successor of `id`, if any transition was recorded.
  std::optional<ItemId> most_likely_successor(ItemId id) const;

 private:
  SuccessorFn fallback_;
  std::optional<ItemId> previous_;
  std::optional<ItemId> last_;
  bool fresh_ = false;
  std::unordered_map<ItemId, std::unordered_map<ItemId, std::uint64_t>> transitions_;
};

/// Factory ("none" / "obl" / "prefetch-on-miss" / "markov").
std::unique_ptr<Prefetcher> make_prefetcher(const std::string& name, SuccessorFn successor);

}  // namespace vira::dms
