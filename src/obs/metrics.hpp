#pragma once

/// \file metrics.hpp
/// Process-wide metrics registry: monotonic counters, gauges and
/// fixed-bucket latency histograms.
///
/// Design contract (ISSUE 2): the hot path is lock-free — every instrument
/// is a handful of relaxed atomics — and *named lookup happens at
/// registration time only*. Call sites resolve their instrument once
/// (typically into a function-local static reference) and bump it forever
/// after without touching the registry mutex. Instruments live for the
/// process lifetime; references never dangle.
///
/// The registry absorbs the repo's historically scattered counters
/// (dms::DmsCounters, scheduler retry/lost-worker counts, fault-injection
/// stats) into one exportable view without replacing their existing
/// accessors: the owning structs keep their snapshots, and additionally
/// bump the shared instruments.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace vira::obs {

/// Monotonic counter. add() is wait-free (relaxed atomic).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Signed instantaneous value (queue depths, free workers, ...).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram over double samples (typically seconds). Bucket
/// bounds are immutable after construction, so observe() is a linear scan
/// over a small array plus three relaxed atomics — no locks, no allocation.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing; an implicit +inf bucket is
  /// appended. The default covers 1 µs .. 100 s latencies.
  explicit Histogram(std::vector<double> upper_bounds = default_latency_bounds());

  void observe(double value) noexcept;

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  /// Sum of all observed samples (accumulated in nanosample fixed-point to
  /// stay a relaxed integer atomic on the hot path).
  double sum() const noexcept {
    return static_cast<double>(sum_nano_.load(std::memory_order_relaxed)) * 1e-9;
  }
  double mean() const noexcept {
    const auto n = count();
    return n > 0 ? sum() / static_cast<double>(n) : 0.0;
  }

  const std::vector<double>& upper_bounds() const noexcept { return bounds_; }
  /// Per-bucket counts; index i counts samples <= bounds_[i], the final
  /// entry counts the +inf overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;

  /// Smallest bucket upper bound with cumulative count >= q * count()
  /// (+inf bucket reports the largest finite bound). 0 when empty.
  double quantile_upper_bound(double q) const;

  void reset() noexcept;

  static std::vector<double> default_latency_bounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  ///< bounds_.size() + 1 entries
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_nano_{0};
};

/// Name → instrument registry. Lookup (registration) takes a mutex; the
/// returned references are stable for the process lifetime.
class Registry {
 public:
  static Registry& instance();

  /// Returns the instrument registered under `name`, creating it on first
  /// use. Throws std::logic_error if `name` is already registered as a
  /// different instrument kind.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds = Histogram::default_latency_bounds());

  /// Plain-text dump of every instrument, sorted by name:
  ///   counter <name> <value>
  ///   gauge <name> <value>
  ///   histogram <name> count=<n> sum=<s> mean=<m> p50<=<b> p99<=<b>
  void dump(std::ostream& out) const;

  /// Zeroes every instrument (bench/test epoch boundary). Instruments stay
  /// registered; held references remain valid.
  void reset();

  /// Registered instrument names (sorted), for tests.
  std::vector<std::string> names() const;

 private:
  Registry() = default;

  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

}  // namespace vira::obs
