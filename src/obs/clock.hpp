#pragma once

/// \file clock.hpp
/// The one monotonic clock of the observability layer.
///
/// Every span timestamp, every log record and every latency histogram
/// sample is taken against the same process-wide steady_clock epoch
/// (util::steady_epoch()), so interleaved worker logs, Chrome-trace spans
/// and metrics line up on a single timeline. Nanosecond ticks keep the
/// arithmetic integral on the hot path; exporters convert to µs/seconds.

#include <chrono>
#include <cstdint>

#include "util/timer.hpp"

namespace vira::obs {

/// The shared trace clock: a fixed steady_clock epoch plus helpers to read
/// it. All obs timestamps are nanoseconds since this epoch.
class TraceClock {
 public:
  std::chrono::steady_clock::time_point epoch() const noexcept { return util::steady_epoch(); }

  std::uint64_t now_ns() const noexcept {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                          std::chrono::steady_clock::now() - util::steady_epoch())
                                          .count());
  }
};

/// Process-wide clock instance shared by tracer, metrics and util::Logger
/// (the logger reads util::steady_epoch() directly to avoid a layering
/// cycle; both views are the same epoch by construction).
inline const TraceClock& clock() noexcept {
  static const TraceClock instance;
  return instance;
}

inline std::uint64_t now_ns() noexcept { return clock().now_ns(); }

inline double ns_to_seconds(std::uint64_t ns) noexcept { return static_cast<double>(ns) * 1e-9; }

}  // namespace vira::obs
