#pragma once

/// \file timeline.hpp
/// Per-command timeline report (ISSUE 2 tentpole, part 4).
///
/// One uniform compute / read / send breakdown for every bench and tool,
/// fed either by real traced spans (from_spans) or by simulated phase
/// totals (from_phases — the perf::replay_extraction path used by
/// bench_fig15_breakdown). Replaces the hand-rolled percentage math that
/// each bench previously reimplemented.

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/tracer.hpp"

namespace vira::obs {

class TimelineReport {
 public:
  /// Builds a report from explicit phase totals (e.g. a ReplayResult or a
  /// merged PhaseTimer). `wall_seconds` 0 means "unknown"; shares are then
  /// relative to the phase total only.
  static TimelineReport from_phases(const std::map<std::string, double>& phases,
                                    double wall_seconds = 0.0);

  /// Builds a report from traced spans. Considers spans whose request_id
  /// matches (`request_id` 0 = all). Phase seconds sum the leaf phase
  /// spans ("compute" / "read" / "send" — the PhaseTimer mirror); the wall
  /// window is the "client.request" span when present, else the overall
  /// span extent; coverage is the unioned server-side (rank >= 0) span
  /// time inside that window divided by its length.
  static TimelineReport from_spans(const std::vector<SpanRecord>& spans,
                                   std::uint64_t request_id = 0);

  /// Seconds attributed to a phase (0 for unknown names).
  double seconds(const std::string& phase) const;

  /// Phase share of the phase total, in [0, 1] (0 when the total is 0).
  double share(const std::string& phase) const;

  /// Sum over all phases.
  double total() const;

  /// Wall window of the underlying request (0 when unknown).
  double wall_seconds() const noexcept { return wall_seconds_; }

  /// Fraction of the wall window covered by server-side spans, in [0, 1].
  /// Only meaningful for from_spans reports (0 otherwise).
  double coverage() const noexcept { return coverage_; }

  const std::map<std::string, double>& phases() const noexcept { return phases_; }

  /// Attaches the extraction-kernel gauges (kernel.cells_per_sec /
  /// kernel.simd_active) so print() shows kernel throughput next to the
  /// phase shares. A rate of 0 detaches.
  void set_kernel(double cells_per_sec, bool simd_active);

  /// Prints one Fig. 15-style breakdown row:
  ///   "  <label>  compute xx.x%   read xx.x%   send xx.x%"
  /// (plus "   kernel xx.xM cells/s (simd)" when attached) followed by
  /// "(no samples)" when the phase total is zero.
  void print(std::ostream& out, const std::string& label) const;

 private:
  std::map<std::string, double> phases_;
  double wall_seconds_ = 0.0;
  double coverage_ = 0.0;
  double kernel_cells_per_sec_ = 0.0;
  bool kernel_simd_active_ = false;
};

}  // namespace vira::obs
