#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vira::obs {

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: need at least one bucket bound");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i] > bounds_[i - 1])) {
      throw std::invalid_argument("Histogram: bounds must be strictly increasing");
    }
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

std::vector<double> Histogram::default_latency_bounds() {
  // Exponential 1 µs .. 100 s, four steps per decade — covers cache hits
  // through multi-second extractions with ~16% relative resolution.
  std::vector<double> bounds;
  for (double decade = 1e-6; decade < 1e2; decade *= 10.0) {
    for (const double step : {1.0, 1.8, 3.2, 5.6}) {
      bounds.push_back(decade * step);
    }
  }
  bounds.push_back(1e2);
  return bounds;
}

void Histogram::observe(double value) noexcept {
  if (std::isnan(value)) {
    return;
  }
  std::size_t bucket = bounds_.size();  // +inf overflow
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const double clamped = std::clamp(value * 1e9, -9.2e18, 9.2e18);
  sum_nano_.fetch_add(static_cast<std::int64_t>(clamped), std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::quantile_upper_bound(double q) const {
  const auto counts = bucket_counts();
  std::uint64_t total = 0;
  for (const auto c : counts) {
    total += c;
  }
  if (total == 0) {
    return 0.0;
  }
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= target) {
      return i < bounds_.size() ? bounds_[i] : bounds_.back();
    }
  }
  return bounds_.back();
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_nano_.store(0, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  static Registry* registry = new Registry();  // never destroyed: references outlive main
  return *registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = Kind::kCounter;
    entry.counter = std::make_unique<Counter>();
    it = entries_.emplace(name, std::move(entry)).first;
  } else if (it->second.kind != Kind::kCounter) {
    throw std::logic_error("Registry: '" + name + "' is not a counter");
  }
  return *it->second.counter;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = Kind::kGauge;
    entry.gauge = std::make_unique<Gauge>();
    it = entries_.emplace(name, std::move(entry)).first;
  } else if (it->second.kind != Kind::kGauge) {
    throw std::logic_error("Registry: '" + name + "' is not a gauge");
  }
  return *it->second.gauge;
}

Histogram& Registry::histogram(const std::string& name, std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = Kind::kHistogram;
    entry.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
    it = entries_.emplace(name, std::move(entry)).first;
  } else if (it->second.kind != Kind::kHistogram) {
    throw std::logic_error("Registry: '" + name + "' is not a histogram");
  }
  return *it->second.histogram;
}

void Registry::dump(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        out << "counter " << name << ' ' << entry.counter->value() << '\n';
        break;
      case Kind::kGauge:
        out << "gauge " << name << ' ' << entry.gauge->value() << '\n';
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        out << "histogram " << name << " count=" << h.count() << " sum=" << h.sum()
            << " mean=" << h.mean() << " p50<=" << h.quantile_upper_bound(0.5)
            << " p99<=" << h.quantile_upper_bound(0.99) << '\n';
        break;
      }
    }
  }
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        entry.counter->reset();
        break;
      case Kind::kGauge:
        entry.gauge->reset();
        break;
      case Kind::kHistogram:
        entry.histogram->reset();
        break;
    }
  }
}

std::vector<std::string> Registry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace vira::obs
