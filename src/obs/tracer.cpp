#include "obs/tracer.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <functional>
#include <thread>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace vira::obs {

namespace {

thread_local SpanContext tls_context;

std::uint64_t this_thread_id() {
  return static_cast<std::uint64_t>(std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

}  // namespace

const SpanContext& current_context() noexcept { return tls_context; }

SpanContext swap_current_context(SpanContext ctx) noexcept {
  SpanContext previous = tls_context;
  tls_context = ctx;
  return previous;
}

ActiveSpan& ActiveSpan::operator=(ActiveSpan&& other) noexcept {
  if (this != &other) {
    end();
    name_ = std::move(other.name_);
    request_id_ = other.request_id_;
    rank_ = other.rank_;
    span_id_ = other.span_id_;
    parent_id_ = other.parent_id_;
    begin_ns_ = other.begin_ns_;
    args_ = std::move(other.args_);
    live_ = other.live_;
    other.live_ = false;
  }
  return *this;
}

void ActiveSpan::arg(const char* key, std::int64_t value) {
  if (live_) {
    args_.emplace_back(key, value);
  }
}

void ActiveSpan::end() {
  if (!live_) {
    return;
  }
  live_ = false;
  SpanRecord record;
  record.name = std::move(name_);
  record.request_id = request_id_;
  record.rank = rank_;
  record.span_id = span_id_;
  record.parent_id = parent_id_;
  record.begin_ns = begin_ns_;
  record.end_ns = now_ns();
  record.thread_id = this_thread_id();
  record.args = std::move(args_);
  Tracer::instance().commit(std::move(record));
}

Tracer& Tracer::instance() {
  static Tracer* tracer = new Tracer();  // never destroyed: spans may end during shutdown
  return *tracer;
}

ActiveSpan Tracer::start(std::string name, std::uint64_t request_id, std::int32_t rank,
                         std::uint64_t parent_id) {
  ActiveSpan span;
  if (!enabled()) {
    return span;
  }
  span.name_ = std::move(name);
  span.request_id_ = request_id;
  span.rank_ = rank;
  span.span_id_ = next_id_.fetch_add(1, std::memory_order_relaxed);
  span.parent_id_ = parent_id;
  span.begin_ns_ = now_ns();
  span.live_ = true;
  return span;
}

ActiveSpan Tracer::start_child(std::string name) {
  const SpanContext& ctx = tls_context;
  return start(std::move(name), ctx.request_id, ctx.rank, ctx.span_id);
}

void Tracer::commit(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (records_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  records_.push_back(std::move(record));
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

void Tracer::set_capacity(std::size_t max_records) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = max_records;
}

namespace {

void append_json_escaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string process_label(std::int32_t rank) {
  if (rank == kClientRank) {
    return "client";
  }
  if (rank == 0) {
    return "scheduler (rank 0)";
  }
  if (rank > 0) {
    return "worker (rank " + std::to_string(rank) + ")";
  }
  return "untracked";
}

}  // namespace

void write_chrome_trace(std::ostream& out) {
  const auto records = Tracer::instance().snapshot();

  // pid = rank + 2 keeps pids positive: client (rank -1) → 1, scheduler → 2,
  // worker N → N + 2, untracked (kNoRank) → 0.
  out << "{\"traceEvents\":[";
  bool first = true;
  std::vector<std::int32_t> ranks_seen;
  for (const auto& record : records) {
    bool seen = false;
    for (const auto r : ranks_seen) {
      seen = seen || r == record.rank;
    }
    if (!seen) {
      ranks_seen.push_back(record.rank);
      std::string label;
      append_json_escaped(label, process_label(record.rank));
      if (!first) {
        out << ',';
      }
      first = false;
      out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << (record.rank + 2)
          << ",\"tid\":0,\"args\":{\"name\":\"" << label << "\"}}";
    }

    std::string name;
    append_json_escaped(name, record.name);
    const double ts_us = static_cast<double>(record.begin_ns) * 1e-3;
    const double dur_us =
        record.end_ns >= record.begin_ns ? static_cast<double>(record.end_ns - record.begin_ns) * 1e-3
                                         : 0.0;
    char header[256];
    std::snprintf(header, sizeof(header),
                  ",{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,"
                  "\"tid\":%" PRIu64,
                  name.c_str(), ts_us, dur_us, record.rank + 2,
                  record.thread_id % 1000000);
    out << header;
    out << ",\"args\":{\"request_id\":" << record.request_id << ",\"span_id\":" << record.span_id
        << ",\"parent_id\":" << record.parent_id << ",\"rank\":" << record.rank;
    for (const auto& [key, value] : record.args) {
      std::string escaped;
      append_json_escaped(escaped, key);
      out << ",\"" << escaped << "\":" << value;
    }
    out << "}}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    VIRA_WARN("obs") << "cannot open trace file '" << path << "'";
    return false;
  }
  write_chrome_trace(out);
  out.flush();
  return static_cast<bool>(out);
}

void write_metrics_text(std::ostream& out) { Registry::instance().dump(out); }

bool write_metrics_file(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    VIRA_WARN("obs") << "cannot open metrics file '" << path << "'";
    return false;
  }
  write_metrics_text(out);
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace vira::obs
