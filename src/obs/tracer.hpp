#pragma once

/// \file tracer.hpp
/// Span-based tracer with explicit parent/child context across threads and
/// ranks (ISSUE 2 tentpole).
///
/// A span is a named interval on the shared obs clock, annotated with the
/// (request_id, rank, span_id) triple that travels inside message headers
/// (core::CommandRequest::parent_span, core::ExecuteOrder::parent_span /
/// trace_request, core::FragmentHeader::span_id) so one streamed request
/// stitches end-to-end: client submit → scheduler attempt → every worker's
/// execute + phase spans → DMS loads → client-link sends. A retried attempt
/// opens a second "sched.request" span tree under the same client span, so
/// failure recovery is visible in the trace rather than averaged away.
///
/// Cost model: compiled in always. With no sink attached (the default)
/// starting a span is one relaxed atomic load and returns an inert handle —
/// no clock read, no allocation, no lock. With a sink attached each span
/// costs two clock reads and one short mutex section at end() (the commit
/// into the in-memory ring). The record store is bounded (set_capacity);
/// overflow drops new spans and counts them instead of growing without
/// limit — sampled tracing under sustained load.
///
/// Exporters: Chrome trace_event JSON (chrome://tracing / Perfetto) and the
/// plain-text metrics dump, wired into viracocha-server (dump on
/// shutdown/SIGUSR1) and viracocha-cli (--trace-out / --metrics-out).

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace vira::obs {

/// Rank of the visualization client in trace coordinates (workers are
/// 1..N, the scheduler is 0 — matching the rank transport).
inline constexpr std::int32_t kClientRank = -1;
/// Rank not known / not applicable.
inline constexpr std::int32_t kNoRank = -2;

/// The triple that propagates a trace across threads and ranks. span_id 0
/// means "no span" (tracing disabled or no parent).
struct SpanContext {
  std::uint64_t request_id = 0;
  std::int32_t rank = kNoRank;
  std::uint64_t span_id = 0;
};

/// One finished span as stored by the tracer.
struct SpanRecord {
  std::string name;
  std::uint64_t request_id = 0;
  std::int32_t rank = kNoRank;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root
  std::uint64_t begin_ns = 0;   ///< obs::clock() nanoseconds
  std::uint64_t end_ns = 0;
  std::uint64_t thread_id = 0;  ///< hashed std::thread::id
  std::vector<std::pair<std::string, std::int64_t>> args;

  double seconds() const noexcept {
    return end_ns >= begin_ns ? static_cast<double>(end_ns - begin_ns) * 1e-9 : 0.0;
  }
};

class Tracer;

/// Movable RAII handle for an open span. Inert (active() == false) when the
/// tracer had no sink at start time; every operation on an inert handle is
/// a no-op. end() commits the record and is idempotent.
class ActiveSpan {
 public:
  ActiveSpan() = default;
  ActiveSpan(const ActiveSpan&) = delete;
  ActiveSpan& operator=(const ActiveSpan&) = delete;
  ActiveSpan(ActiveSpan&& other) noexcept { *this = std::move(other); }
  ActiveSpan& operator=(ActiveSpan&& other) noexcept;
  ~ActiveSpan() { end(); }

  bool active() const noexcept { return live_; }
  /// (request_id, rank, span_id) of this span; all zero/kNoRank when inert.
  SpanContext context() const noexcept { return {request_id_, rank_, span_id_}; }

  /// Attaches a small integer annotation (exported into Chrome "args").
  void arg(const char* key, std::int64_t value);

  void end();

 private:
  friend class Tracer;
  std::string name_;
  std::uint64_t request_id_ = 0;
  std::int32_t rank_ = kNoRank;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_id_ = 0;
  std::uint64_t begin_ns_ = 0;
  std::vector<std::pair<std::string, std::int64_t>> args_;
  bool live_ = false;
};

class Tracer {
 public:
  static Tracer& instance();

  /// Attaches the in-memory sink: spans started from now on are recorded.
  void enable() noexcept { enabled_.store(true, std::memory_order_relaxed); }
  /// Detaches the sink; already-started spans still commit on end().
  void disable() noexcept { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const noexcept { return enabled_.load(std::memory_order_relaxed); }

  /// Opens a span. `parent_id` 0 makes a root span. Returns an inert handle
  /// when no sink is attached.
  ActiveSpan start(std::string name, std::uint64_t request_id, std::int32_t rank,
                   std::uint64_t parent_id);

  /// Opens a span inheriting (request, rank, parent) from the calling
  /// thread's current context (see current_context()).
  ActiveSpan start_child(std::string name);

  /// Completed spans recorded so far (copy; safe while tracing continues).
  std::vector<SpanRecord> snapshot() const;
  std::size_t size() const;
  void clear();

  /// Bounds the record store; spans finishing beyond the cap are dropped
  /// (and counted) instead of growing memory without limit.
  void set_capacity(std::size_t max_records);
  std::uint64_t dropped() const noexcept { return dropped_.load(std::memory_order_relaxed); }

 private:
  friend class ActiveSpan;
  Tracer() = default;
  void commit(SpanRecord record);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex mutex_;
  std::size_t capacity_ = 1u << 20;
  std::vector<SpanRecord> records_;
};

/// The calling thread's current span context (what new child spans and
/// outgoing message headers inherit). Default-initialized per thread.
const SpanContext& current_context() noexcept;

/// Replaces the thread's current context, returning the previous one (for
/// non-scoped transitions like PhaseTimer phase changes).
SpanContext swap_current_context(SpanContext ctx) noexcept;

/// RAII: makes `ctx` the thread's current context, restores on destruction.
class ContextScope {
 public:
  explicit ContextScope(const SpanContext& ctx) : previous_(swap_current_context(ctx)) {}
  ~ContextScope() { swap_current_context(previous_); }
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  SpanContext previous_;
};

/// --- exporters -------------------------------------------------------------

/// Chrome trace_event JSON ("X" complete events, pid = rank + 1 with
/// process_name metadata) from the tracer's current records.
void write_chrome_trace(std::ostream& out);
/// Writes the trace to `path`; false (with a log record) on I/O failure.
bool write_chrome_trace_file(const std::string& path);

/// Plain-text metrics dump (Registry::dump).
void write_metrics_text(std::ostream& out);
bool write_metrics_file(const std::string& path);

}  // namespace vira::obs
