#include "obs/timeline.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace vira::obs {

namespace {

/// Total length of the union of [begin, end) intervals clipped to
/// [window_begin, window_end).
std::uint64_t union_length(std::vector<std::pair<std::uint64_t, std::uint64_t>> intervals,
                           std::uint64_t window_begin, std::uint64_t window_end) {
  std::sort(intervals.begin(), intervals.end());
  std::uint64_t covered = 0;
  std::uint64_t cursor = window_begin;
  for (const auto& [begin, end] : intervals) {
    const std::uint64_t lo = std::max(std::max(begin, cursor), window_begin);
    const std::uint64_t hi = std::min(end, window_end);
    if (hi > lo) {
      covered += hi - lo;
      cursor = hi;
    }
  }
  return covered;
}

}  // namespace

TimelineReport TimelineReport::from_phases(const std::map<std::string, double>& phases,
                                           double wall_seconds) {
  TimelineReport report;
  for (const auto& [name, secs] : phases) {
    if (secs > 0.0) {
      report.phases_[name] = secs;
    }
  }
  report.wall_seconds_ = wall_seconds > 0.0 ? wall_seconds : 0.0;
  if (report.wall_seconds_ > 0.0) {
    report.coverage_ = std::min(1.0, report.total() / report.wall_seconds_);
  }
  return report;
}

TimelineReport TimelineReport::from_spans(const std::vector<SpanRecord>& spans,
                                          std::uint64_t request_id) {
  TimelineReport report;
  std::uint64_t window_begin = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t window_end = 0;
  bool have_client_span = false;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> server_intervals;

  for (const auto& span : spans) {
    if (request_id != 0 && span.request_id != request_id) {
      continue;
    }
    if (span.end_ns < span.begin_ns) {
      continue;  // malformed; validators flag these separately
    }
    if (span.name == "compute" || span.name == "read" || span.name == "send") {
      report.phases_[span.name] += span.seconds();
    }
    if (span.name == "client.request") {
      // The client-side wall window; prefer it over the raw span extent so
      // coverage measures "how much of what the user waited for is
      // accounted".
      if (!have_client_span || span.end_ns - span.begin_ns > window_end - window_begin) {
        window_begin = span.begin_ns;
        window_end = span.end_ns;
        have_client_span = true;
      }
      continue;
    }
    if (!have_client_span) {
      window_begin = std::min(window_begin, span.begin_ns);
      window_end = std::max(window_end, span.end_ns);
    }
    if (span.rank >= 0) {
      server_intervals.emplace_back(span.begin_ns, span.end_ns);
    }
  }

  if (window_end > window_begin && window_begin != std::numeric_limits<std::uint64_t>::max()) {
    report.wall_seconds_ = static_cast<double>(window_end - window_begin) * 1e-9;
    const std::uint64_t covered =
        union_length(std::move(server_intervals), window_begin, window_end);
    report.coverage_ =
        static_cast<double>(covered) / static_cast<double>(window_end - window_begin);
  }
  return report;
}

double TimelineReport::seconds(const std::string& phase) const {
  const auto it = phases_.find(phase);
  return it != phases_.end() ? it->second : 0.0;
}

double TimelineReport::total() const {
  double sum = 0.0;
  for (const auto& [name, secs] : phases_) {
    sum += secs;
  }
  return sum;
}

double TimelineReport::share(const std::string& phase) const {
  const double sum = total();
  return sum > 0.0 ? seconds(phase) / sum : 0.0;
}

void TimelineReport::set_kernel(double cells_per_sec, bool simd_active) {
  kernel_cells_per_sec_ = cells_per_sec > 0.0 ? cells_per_sec : 0.0;
  kernel_simd_active_ = simd_active;
}

void TimelineReport::print(std::ostream& out, const std::string& label) const {
  char row[192];
  if (total() <= 0.0) {
    std::snprintf(row, sizeof(row), "  %-20s (no samples)\n", label.c_str());
    out << row;
    return;
  }
  std::snprintf(row, sizeof(row), "  %-20s compute %5.1f%%   read %5.1f%%   send %5.1f%%",
                label.c_str(), 100.0 * share("compute"), 100.0 * share("read"),
                100.0 * share("send"));
  out << row;
  if (kernel_cells_per_sec_ > 0.0) {
    std::snprintf(row, sizeof(row), "   kernel %6.2fM cells/s (%s)",
                  kernel_cells_per_sec_ * 1e-6, kernel_simd_active_ ? "simd" : "scalar");
    out << row;
  }
  out << '\n';
}

}  // namespace vira::obs
