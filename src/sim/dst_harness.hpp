#pragma once

/// \file dst_harness.hpp
/// Deterministic simulation-testing harness: runs the *real* scheduler /
/// worker / DMS stack (no models) under sim::VirtualClock +
/// sim::VirtualTransport against a seeded Scenario, and checks invariant
/// oracles over the outcome (DESIGN.md "Testing strategy").
///
/// Oracles:
///   1. exactly-once — no duplicated (request, partition, sequence)
///      fragment reaches the client (transport duplicates and retry
///      recomputation included),
///   2. terminal outcome — every submitted request receives exactly one
///      kTagComplete; any retried request surfaced kTagDegraded first,
///   3. worker conservation — after the last completion the pool settles to
///      free + lost == worker_count with no group leaked,
///   4. cache accounting — per proxy: requests == l1_hits + l2_hits +
///      misses, resident bytes equal the byte-count bookkeeping, and both
///      tiers respect their capacity,
///   5. stall budget — the scenario makes progress within a (virtual) bound;
///      a silent stall is a liveness bug, not a timeout.
///   6. terminal answer — every submission ends in exactly one of
///      kTagComplete or kTagRejected, never both (admission control and the
///      QoS dispatch may not drop or double-answer a request),
///   7. no starvation — under kFairShare no queue head is ever bypassed
///      more than the configured aging bound (max_head_bypass),
///   8. result-cache integrity (rc= scenarios) — a cache-hit completion is
///      successful, retry-free, and its fragment stream is byte-identical
///      to one a real work group previously computed for the same
///      workload; no completion ever reports a dataset version older than
///      the version current when it was submitted (no stale geometry after
///      an invalidation),
///   9. replica consistency (shards>1 scenarios) — after the run settles,
///      every block resident in any proxy's L1 is byte-identical to the
///      synthetic source's content for that id: no matter which replica
///      served it (owner, promoted survivor, peer push), the bytes are the
///      ones the original store produced.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "comm/fault_transport.hpp"
#include "sim/dst_clock.hpp"
#include "sim/dst_transport.hpp"

namespace vira::sim {

/// One client request in the scenario's workload mix.
struct DstRequest {
  int width = 0;        ///< worker count (0 = all alive)
  int partials = 2;     ///< streamed fragments per group member
  int payload = 64;     ///< bytes per fragment
  int dms_items = 0;    ///< proxy requests per fragment
  int first_item = 0;   ///< starting index into the synthetic item space
  bool barrier = false; ///< group barrier between fragments
  int fail_rank = -1;   ///< partition that throws (command failure path)
  int submit_at_ms = 0; ///< virtual submit time
  int item_sleep_us = 0;  ///< virtual compute per fragment
  int client = 0;         ///< submitting client link (clamped to Scenario::clients)
  int cancel_at_ms = -1;  ///< virtual time to send kTagCancel (-1 = never)
};

/// A complete deterministic scenario: workload × fault schedule × stack
/// configuration. Serializes to a one-line string for replay and shrinking.
struct Scenario {
  std::uint64_t seed = 0;  ///< generator seed (0 = hand-built)
  int workers = 3;
  std::vector<DstRequest> requests;

  /// Transport faults (rates in [0,1]; kills are (virtual ms, rank)).
  double drop_rate = 0.0;
  double duplicate_rate = 0.0;
  double delay_rate = 0.0;
  int max_delay_ms = 5;
  std::vector<std::pair<int, int>> kills;

  /// DMS configuration.
  std::string policy = "fbr";
  std::uint64_t l1_bytes = 16 * 1024;
  bool l2 = false;
  std::uint64_t l2_bytes = 64 * 1024;
  std::string prefetcher = "obl";
  bool async_prefetch = true;
  int item_count = 32;
  int item_bytes = 1024;

  /// Scheduler / worker liveness knobs (virtual milliseconds).
  int heartbeat_ms = 20;
  int death_ms = 150;
  int idle_grace_ms = 40;
  int max_retries = 3;
  int backoff_ms = 5;
  int request_timeout_ms = 0;
  /// Exactly-once switch — disabled only to demonstrate that the oracle
  /// catches the resulting duplicates (the deliberate-violation demo).
  bool fragment_dedup = true;

  /// Multi-client QoS knobs (scheduler SchedPolicy et al.). `clients` link
  /// pairs are attached; each request routes through its DstRequest::client.
  int clients = 1;
  bool qos_fair = true;  ///< false = SchedPolicy::kFifo (the seed discipline)
  int max_queue = 0;     ///< per-client admission bound (0 = unbounded)
  int head_bypass = 8;   ///< aging bound (SchedulerConfig::max_head_bypass)

  /// Pipelined (async) executor knobs: worker task-pool threads and the
  /// bounded in-flight window DstWorkCommand uses for its DMS loads. Both
  /// zero = the seed's serial request path. When enabled, a sixth oracle
  /// checks async-load accounting: every submission settles and the peak
  /// outstanding bytes respect the window bound (backpressure really
  /// bounds memory).
  int pipeline_threads = 0;
  int pipeline_window = 0;

  /// Scheduler result cache: primary-tier budget in KiB (0 = disabled).
  /// The cache reuses the scenario's `policy` for replacement so all three
  /// policy classes get fuzzed here too.
  int result_cache_kb = 0;
  /// Virtual times (ms) at which the dataset version is bumped — each bump
  /// invalidates every memoized result; the no-stale oracle checks that no
  /// later completion reports an older version.
  std::vector<int> bumps;

  /// Sharded DMS (DESIGN.md §12): shards > 1 spreads block ownership over
  /// the first min(shards, workers) proxies by consistent hashing and
  /// routes misses proxy→proxy; repl >= 2 replicates each block across
  /// that many owners so kills compose with peer transfer (the replica-
  /// failover scenarios). The default (1, 1) is the legacy central path —
  /// trajectories of pre-shard scenario strings are unchanged.
  int shards = 1;
  int repl = 1;

  /// Virtual progress bound for the stall oracle.
  int stall_budget_ms = 8000;

  std::string to_string() const;
  static std::optional<Scenario> parse(const std::string& text);
};

/// Everything a scenario run produces (all deterministic per scenario).
struct ScenarioResult {
  std::vector<std::string> violations;  ///< empty = all oracles passed
  std::uint64_t trajectory_hash = 0;
  std::uint64_t transport_events = 0;
  std::uint64_t context_switches = 0;
  std::int64_t virtual_end_ns = 0;
  int completed = 0;  ///< requests that reached kTagComplete
  int succeeded = 0;
  int failed = 0;     ///< completed unsuccessfully (kTagError seen)
  int degraded = 0;   ///< requests that retried at least once
  int rejected = 0;   ///< refused by admission control (kTagRejected)
  std::uint64_t fragments = 0;  ///< partial/final packets accepted
  std::uint64_t backfills = 0;  ///< scheduler backfill dispatches
  int max_head_bypass_seen = 0;  ///< vs the scenario's aging bound
  int cache_hits = 0;  ///< completions served from the result cache

  /// Sharded-DMS aggregates (all proxies summed; zero in shards=1 runs).
  std::uint64_t peer_fetches = 0;
  std::uint64_t peer_pushes = 0;
  std::uint64_t replica_promotions = 0;
  std::uint64_t peer_fallback_disk = 0;
  std::uint64_t stale_replica_rejects = 0;
  /// peer_fallback_disk accrued after the last scheduled kill fired — the
  /// replica-coverage measure: with R >= 2 and warm replicas, blocks owned
  /// by the killed rank re-serve from survivors and this stays 0 (the
  /// targeted failover tests assert exactly that).
  std::uint64_t peer_fallback_disk_after_kill = 0;

  /// Per-request terminal record, keyed by request id (index + 1): virtual
  /// completion time plus the width the group actually ran at vs asked for.
  /// Lets targeted tests assert ordering ("the narrow request finished
  /// while the wide stream was still running") and molding in virtual time.
  struct Terminal {
    std::int64_t at_ns = 0;
    int workers = 0;
    int requested_workers = 0;
    bool success = false;
    bool rejected = false;
    bool cache_hit = false;             ///< served from the result cache
    std::uint64_t data_version = 0;     ///< version the result was computed against
  };
  std::map<std::uint64_t, Terminal> terminals;
  comm::FaultInjectionStats faults;
  std::size_t ranks_killed = 0;

  bool ok() const { return violations.empty(); }
};

/// Runs one scenario under virtual time. Installs the virtual clock as the
/// process-global util clock for the duration; the process must be
/// otherwise quiescent (no concurrent real-mode vira threads).
ScenarioResult run_scenario(const Scenario& scenario);

}  // namespace vira::sim
