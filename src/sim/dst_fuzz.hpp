#pragma once

/// \file dst_fuzz.hpp
/// Scenario fuzzer for the DST harness: seed → Scenario generation, batch
/// execution with determinism cross-checks, and greedy shrinking of failing
/// scenarios to a minimal reproduction.
///
/// Every generated scenario is a pure function of its seed, and every
/// scenario run is deterministic (see dst_clock.hpp), so a failure report
/// is fully described by one integer — re-running the seed replays the
/// identical trajectory. The shrinker exploits the same property: each
/// candidate simplification is re-run and kept only if the violation
/// persists, converging on a scenario where every remaining element is
/// load-bearing.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/dst_harness.hpp"

namespace vira::sim {

/// Deterministic scenario generation: same seed, same scenario. Generated
/// scenarios are liveness-safe by construction (e.g. a lossy transport is
/// always paired with a whole-attempt request timeout), so every oracle
/// violation they produce is a real bug, not a configured-to-hang setup.
Scenario generate_scenario(std::uint64_t seed);

/// One shrink step's outcome.
struct ShrinkResult {
  Scenario minimal;        ///< smallest still-violating scenario found
  ScenarioResult failure;  ///< its run result (violations non-empty)
  int attempts = 0;        ///< candidate scenarios executed
  int accepted = 0;        ///< simplifications that kept the violation
};

/// Greedily minimizes a failing scenario: repeatedly tries dropping
/// requests and kills, zeroing fault rates, and simplifying workload /
/// stack knobs, accepting any change that still violates an oracle, until
/// a fixpoint (or `max_attempts` runs). The input must itself fail.
ShrinkResult shrink_scenario(const Scenario& scenario, int max_attempts = 160);

struct FuzzOptions {
  std::uint64_t first_seed = 1;
  int count = 200;
  /// Re-run every Nth scenario and require an identical trajectory hash
  /// (0 = no determinism cross-check).
  int verify_every = 0;
  bool shrink_failures = true;
};

struct FuzzFailure {
  std::uint64_t seed = 0;
  std::vector<std::string> violations;
  std::string scenario;  ///< original (replayable) scenario string
  std::string shrunk;    ///< minimal still-failing scenario (if shrunk)
};

struct FuzzReport {
  int scenarios_run = 0;
  int determinism_checks = 0;
  std::uint64_t total_transport_events = 0;
  std::vector<FuzzFailure> failures;
  /// Seeds whose re-run produced a different trajectory hash — a bug in
  /// the DST machinery itself (or a nondeterministic product code path).
  std::vector<std::uint64_t> nondeterministic_seeds;

  bool ok() const { return failures.empty() && nondeterministic_seeds.empty(); }
};

/// Runs `count` generated scenarios starting at `first_seed`.
FuzzReport run_fuzz(const FuzzOptions& options);

}  // namespace vira::sim
